module protozoa

go 1.22
