// blocksweep reproduces the Table 1 experiment for a few contrasting
// workloads: how a conventional MESI hierarchy trades miss rate,
// invalidations, and data utilization as the fixed block size sweeps
// from 16 to 128 bytes — the motivation for decoupling the
// granularities in the first place.
package main

import (
	"fmt"
	"log"

	"protozoa"
)

func main() {
	// Three opposite corners of the design space:
	//  - linear-regression: false sharing wants small blocks,
	//  - matrix-multiply: streaming locality wants large blocks,
	//  - blackscholes: sparse fields waste most of any large block.
	workloads := []string{"linear-regression", "matrix-multiply", "blackscholes"}
	o := protozoa.Options{Cores: 16, Scale: 2, Workloads: workloads}

	res, err := protozoa.CollectTable1(o)
	if err != nil {
		log.Fatal(err)
	}

	for _, w := range workloads {
		fmt.Printf("%s\n", w)
		fmt.Printf("  %8s %10s %10s %8s\n", "block", "MPKI", "INV", "used%")
		for _, bs := range []int{16, 32, 64, 128} {
			c := res.Cells[w][bs]
			fmt.Printf("  %7dB %10.2f %10d %7.1f%%\n", bs, c.MPKI, c.Inv, c.UsedPct)
		}
		fmt.Printf("  optimal fixed size: %s bytes\n\n", res.Optimal(w))
	}

	fmt.Println("No single fixed size wins everywhere — the paper's Table 1 point:")
	fmt.Println("storage/communication and coherence granularity must adapt per")
	fmt.Println("application (and Protozoa adapts them per block, at run time).")
	fmt.Println()
	fmt.Print(res.Render())
}
