// Quickstart: simulate one workload under the MESI baseline and
// Protozoa-MW and compare the headline metrics — the five-minute tour
// of what adaptive granularity coherence buys.
package main

import (
	"fmt"
	"log"

	"protozoa"
)

func main() {
	opts := protozoa.Options{Cores: 16, Scale: 2}
	const workload = "linear-regression" // the paper's Figure 1 pathology

	fmt.Printf("simulating %q on 16 cores...\n\n", workload)
	mesi, err := protozoa.Run(workload, protozoa.MESI, opts)
	if err != nil {
		log.Fatal(err)
	}
	mw, err := protozoa.Run(workload, protozoa.ProtozoaMW, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s %14s %14s %9s\n", "metric", "MESI", "Protozoa-MW", "ratio")
	row := func(name string, a, b float64) {
		ratio := 0.0
		if a != 0 {
			ratio = b / a
		}
		fmt.Printf("%-22s %14.1f %14.1f %8.2fx\n", name, a, b, ratio)
	}
	row("misses (MPKI)", mesi.MPKI(), mw.MPKI())
	row("invalidations", float64(mesi.Invalidations), float64(mw.Invalidations))
	row("traffic (KB)", float64(mesi.TrafficTotal())/1024, float64(mw.TrafficTotal())/1024)
	row("unused data (KB)", float64(mesi.UnusedDataBytes)/1024, float64(mw.UnusedDataBytes)/1024)
	row("flit-hops (K)", float64(mesi.FlitHops)/1000, float64(mw.FlitHops)/1000)
	row("exec cycles (K)", float64(mesi.ExecCycles)/1000, float64(mw.ExecCycles)/1000)

	fmt.Printf("\nProtozoa-MW invalidates at the granularity of the write, so the\n")
	fmt.Printf("adjacent per-thread counters stop ping-ponging: the false sharing\n")
	fmt.Printf("that dominates this workload disappears (paper Section 1: up to a\n")
	fmt.Printf("99%% miss reduction and a 2.2x speedup on linear regression).\n")
}
