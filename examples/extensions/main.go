// extensions demonstrates the Section 6 design alternatives on one
// contended workload: 3-hop direct forwarding, the TL-style bloom
// directory, Amoeba block merging, and the non-inclusive L2, each
// compared against the paper's baseline configuration.
package main

import (
	"fmt"
	"log"

	"protozoa"
	"protozoa/internal/core"
	"protozoa/internal/workloads"
)

func run(name string, mutate func(*protozoa.SystemConfig)) {
	cfg := protozoa.DefaultSystemConfig(protozoa.ProtozoaMW)
	mutate(&cfg)
	spec, err := workloads.Get("barnes")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, spec.Streams(cfg.Cores, 1))
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	st := sys.Stats()
	fmt.Printf("%-22s %9d %12d %12d %9d %9d\n",
		name, st.L1Misses, st.TrafficTotal(), st.ExecCycles,
		st.DirectForwards, st.ControlBytes[4]) // NACK bytes
}

func main() {
	fmt.Println("barnes under Protozoa-MW, 16 cores, one configuration knob at a time")
	fmt.Printf("%-22s %9s %12s %12s %9s %9s\n",
		"config", "misses", "traffic(B)", "cycles", "3hop-fwd", "NACK(B)")
	run("baseline (Table 4)", func(*protozoa.SystemConfig) {})
	run("3-hop forwarding", func(c *protozoa.SystemConfig) { c.ThreeHop = true })
	run("bloom directory", func(c *protozoa.SystemConfig) {
		c.Directory = protozoa.DirBloom
		c.BloomHashes = 2
		c.BloomBuckets = 16 // small on purpose: show the aliasing cost
	})
	run("block merging", func(c *protozoa.SystemConfig) { c.MergeL1Blocks = true })
	run("non-inclusive L2", func(c *protozoa.SystemConfig) { c.NonInclusiveL2 = true })
	run("finite L2 (8/tile)", func(c *protozoa.SystemConfig) { c.L2RegionsPerTile = 8 })

	fmt.Println()
	fmt.Println("3-hop trades a little directory bookkeeping for lower miss latency;")
	fmt.Println("an undersized bloom directory stays correct but pays NACKed probes;")
	fmt.Println("the non-inclusive L2 re-fetches dropped words from memory; a finite")
	fmt.Println("L2 adds recall invalidations. Every variant runs under the same")
	fmt.Println("SWMR/golden-value checker (cmd/protozoa-verify).")
}
