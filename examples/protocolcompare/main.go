// protocolcompare runs the whole protocol family over a cross-section
// of the workload suite and prints the paper's headline comparisons:
// traffic breakdown (Figure 9), miss rate (Figure 13), and
// interconnect energy (Figure 15).
package main

import (
	"fmt"
	"log"

	"protozoa"
)

func main() {
	o := protozoa.Options{
		Cores: 16,
		Scale: 2,
		Workloads: []string{
			"linear-regression", // false sharing: MW's showcase
			"histogram",         // false sharing + streaming input
			"canneal",           // sparse pointers: SW's showcase
			"string-match",      // extreme fine-grain multi-writer
			"streamcluster",     // shared read-only + fine-grain RW
			"matrix-multiply",   // private + full locality: no change
		},
	}
	fmt.Println("running 6 workloads x 4 protocols on 16 cores...")
	m, err := protozoa.Collect(o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(m.Fig9Traffic())
	fmt.Println()
	fmt.Print(m.Fig13MPKI())
	fmt.Println()
	fmt.Print(m.Fig15FlitHops())
}
