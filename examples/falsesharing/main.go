// falsesharing reconstructs the paper's Figure 1 by hand: the OpenMP
// counter program where every thread increments its own word of one
// cache line. It drives the simulator with custom traces through the
// public API and shows how each member of the protocol family treats
// the line — MESI ping-pongs it, Protozoa-SW moves single words but
// still invalidates the whole region, and Protozoa-MW lets all the
// writers coexist.
package main

import (
	"fmt"
	"log"

	"protozoa"
)

// counterStreams builds the Figure 1 program: Item[core]++ in a loop.
func counterStreams(cores, iters int) []protozoa.Stream {
	streams := make([]protozoa.Stream, cores)
	for c := 0; c < cores; c++ {
		var recs []protozoa.Access
		addr := protozoa.Addr(0x1000 + c*8) // Item[c]: adjacent words, one region
		for i := 0; i < iters; i++ {
			recs = append(recs, protozoa.Access{Kind: protozoa.Load, Addr: addr, PC: 0x400, Think: 2})
			recs = append(recs, protozoa.Access{Kind: protozoa.Store, Addr: addr, PC: 0x408, Think: 1})
		}
		streams[c] = protozoa.NewSliceStream(recs)
	}
	return streams
}

func main() {
	const cores, iters = 8, 500
	counterRegion := protozoa.RegionOf(0x1000)
	fmt.Printf("Figure 1: %d threads increment adjacent words of one cache line, %d times each\n\n", cores, iters)
	fmt.Printf("%-15s %9s %9s %13s %12s %11s %8s %13s\n",
		"protocol", "misses", "invals", "traffic(KB)", "flit-hops", "cycles", "util", "counter-line")

	for _, p := range protozoa.Protocols() {
		cfg := protozoa.DefaultSystemConfig(p)
		cfg.Cores = cores
		cfg.Noc.DimX, cfg.Noc.DimY = 4, 2
		sys, err := protozoa.NewSystem(cfg, counterStreams(cores, iters))
		if err != nil {
			log.Fatal(err)
		}
		tr := sys.EnableAttribution()
		if err := sys.Run(); err != nil {
			log.Fatal(err)
		}
		st := sys.Stats()
		pattern := tr.PatternOf(counterRegion)
		fmt.Printf("%-15s %9d %9d %13.1f %12d %11d %7.1f%% %13s\n",
			p, st.L1Misses, st.Invalidations,
			float64(st.TrafficTotal())/1024, st.FlitHops, st.ExecCycles,
			tr.UtilPct(), pattern)

		// The attribution layer must see what the paper's Figure 1
		// describes: region-granularity coherence false-shares the
		// counter line, word-granularity coherence partitions it.
		if p == protozoa.MESI && pattern != protozoa.PatternFalseShared {
			log.Fatalf("MESI classified the counter line %v, want false-shared", pattern)
		}
		if p == protozoa.ProtozoaMW && pattern == protozoa.PatternFalseShared {
			log.Fatalf("Protozoa-MW classified the counter line false-shared; its disjoint writers should coexist")
		}
	}

	fmt.Printf("\nMESI and Protozoa-SW ping-pong the line (SW just moves 8-byte words\n")
	fmt.Printf("instead of 64-byte blocks); Protozoa-SW+MR still allows only one\n")
	fmt.Printf("writer at a time; Protozoa-MW caches the disjoint words for writing\n")
	fmt.Printf("concurrently, so after one cold miss per core the traffic stops.\n")
	fmt.Printf("The util/counter-line columns are the attribution layer's view:\n")
	fmt.Printf("the region is false-shared until the protocol reaches word\n")
	fmt.Printf("granularity, where it becomes partitioned and utilization jumps.\n")
}
