# Tier-1 verify: build, vet, full tests, a race pass over the
# concurrency layer (worker-pool runner, event engine) and the
# simulator hot path (core protocol + cache storage), and a 1-iteration
# benchmark smoke so throughput regressions that crash or deadlock are
# caught before they reach a real benchmarking session.
verify:
	go build ./...
	go vet ./...
	go test ./...
	go test -race ./internal/runner ./internal/engine
	go test -race ./internal/core ./internal/cache
	go test -run '^$$' -bench SimulatorThroughput -benchtime 1x .

# bench runs the simulator throughput benchmark with allocation
# accounting in a benchstat-friendly shape (-count 5). Compare against
# the committed BENCH_2.json numbers after hot-path changes.
bench:
	go test -run '^$$' -bench SimulatorThroughput -benchmem -benchtime 2s -count 5 .

.PHONY: verify bench
