# Tier-1 verify: build, vet, full tests, a race pass over the
# concurrency layer (worker-pool runner, event engine) and the
# simulator hot path (core protocol + cache storage), a 1-iteration
# benchmark smoke so throughput regressions that crash or deadlock are
# caught before they reach a real benchmarking session, and the
# observability smoke (trace + metrics JSON must parse).
verify:
	go build ./...
	go vet ./...
	go test ./...
	go test -race ./internal/runner ./internal/engine
	go test -race ./internal/core ./internal/cache
	go test -run '^$$' -bench SimulatorThroughput -benchtime 1x .
	$(MAKE) trace-smoke

# trace-smoke: a 1-iteration simulation with event tracing and the
# metrics registry enabled, validating both JSON artifacts parse
# (python3 json.tool; Perfetto loads anything that passes).
trace-smoke:
	@mkdir -p /tmp/protozoa-smoke
	go run ./cmd/protozoa-sim -workload histogram -protocol mw -scale 1 \
		-trace-out /tmp/protozoa-smoke/trace.json \
		-metrics-out /tmp/protozoa-smoke/metrics.json > /dev/null
	python3 -m json.tool /tmp/protozoa-smoke/trace.json > /dev/null
	python3 -m json.tool /tmp/protozoa-smoke/metrics.json > /dev/null
	@echo "trace-smoke: trace.json and metrics.json parse OK"

# bench runs the simulator throughput benchmark with allocation
# accounting in a benchstat-friendly shape (-count 5). Compare against
# the committed BENCH_2.json numbers after hot-path changes.
bench:
	go test -run '^$$' -bench SimulatorThroughput -benchmem -benchtime 2s -count 5 .

.PHONY: verify bench trace-smoke
