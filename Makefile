# Tier-1 verify: build, vet, full tests, a race pass over the
# concurrency layer (worker-pool runner, event engine, live-metrics
# server) and the simulator hot path (core protocol + cache storage),
# a 1-iteration benchmark smoke so throughput regressions that crash or
# deadlock are caught before they reach a real benchmarking session,
# the observability smoke (trace + metrics JSON must parse, live
# metrics endpoint must serve Prometheus text during a run), and the
# PDES determinism smoke (parallel window-loop results byte-identical
# across worker counts).
verify:
	go build ./...
	go vet ./...
	go test ./...
	go test -race ./internal/runner ./internal/engine
	go test -race ./internal/core ./internal/cache
	go test -race ./internal/obs
	go test -run '^$$' -bench SimulatorThroughput -benchtime 1x .
	$(MAKE) obs-smoke
	$(MAKE) pdes-smoke

# pdes-smoke: one workload under the parallel window loop at 1 and 4
# workers; the full JSON stats dump must be byte-identical (the
# determinism contract -workers rests on, end to end through the CLI).
pdes-smoke:
	@mkdir -p /tmp/protozoa-smoke
	go build -o /tmp/protozoa-smoke/protozoa-sim ./cmd/protozoa-sim
	@/tmp/protozoa-smoke/protozoa-sim -workload barnes -protocol mw -scale 1 \
		-workers 1 -json > /tmp/protozoa-smoke/w1.json
	@/tmp/protozoa-smoke/protozoa-sim -workload barnes -protocol mw -scale 1 \
		-workers 4 -json > /tmp/protozoa-smoke/w4.json
	@cmp /tmp/protozoa-smoke/w1.json /tmp/protozoa-smoke/w4.json \
		|| { echo "pdes-smoke: -workers 1 and -workers 4 diverge"; exit 1; }
	@echo "pdes-smoke: -workers 1 and -workers 4 stats byte-identical"

# trace-smoke: a 1-iteration simulation with event tracing and the
# metrics registry enabled, validating both JSON artifacts parse
# (python3 json.tool; Perfetto loads anything that passes).
trace-smoke:
	@mkdir -p /tmp/protozoa-smoke
	go run ./cmd/protozoa-sim -workload histogram -protocol mw -scale 1 \
		-trace-out /tmp/protozoa-smoke/trace.json \
		-metrics-out /tmp/protozoa-smoke/metrics.json > /dev/null
	python3 -m json.tool /tmp/protozoa-smoke/trace.json > /dev/null
	python3 -m json.tool /tmp/protozoa-smoke/metrics.json > /dev/null
	@echo "trace-smoke: trace.json and metrics.json parse OK"

# obs-smoke: trace-smoke plus a live scrape — run protozoa-sim with
# -serve, curl /metrics mid-run, and validate every non-comment line is
# Prometheus `name value` text including the attribution gauges.
obs-smoke: trace-smoke
	@mkdir -p /tmp/protozoa-smoke
	go build -o /tmp/protozoa-smoke/protozoa-sim ./cmd/protozoa-sim
	@/tmp/protozoa-smoke/protozoa-sim -workload histogram -protocol mw \
		-cores 16 -scale 60 -serve 127.0.0.1:18099 > /dev/null 2>/tmp/protozoa-smoke/serve.err & \
	pid=$$!; \
	ok=0; \
	for i in $$(seq 1 100); do \
		if curl -sf http://127.0.0.1:18099/metrics > /tmp/protozoa-smoke/metrics.prom 2>/dev/null \
			&& grep -q '^protozoa_snapshots_total [1-9]' /tmp/protozoa-smoke/metrics.prom; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	wait $$pid || { echo "obs-smoke: simulator failed"; cat /tmp/protozoa-smoke/serve.err; exit 1; }; \
	[ $$ok -eq 1 ] || { echo "obs-smoke: live endpoint never answered"; exit 1; }
	@grep -q '^protozoa_attrib_fetched_words ' /tmp/protozoa-smoke/metrics.prom \
		|| { echo "obs-smoke: attribution gauges missing"; exit 1; }
	@awk '!/^#/ { if (NF != 2 || $$1 !~ /^protozoa_[a-zA-Z0-9_:]+$$/ || $$2 !~ /^[0-9.eE+-]+$$/) \
		{ print "obs-smoke: bad metrics line: " $$0; exit 1 } }' /tmp/protozoa-smoke/metrics.prom
	@echo "obs-smoke: live /metrics served valid Prometheus text mid-run"

# bench runs the simulator throughput benchmark with allocation
# accounting in a benchstat-friendly shape (-count 5). Compare against
# the committed BENCH_2.json numbers after hot-path changes.
bench:
	go test -run '^$$' -bench SimulatorThroughput -benchmem -benchtime 2s -count 5 .

.PHONY: verify bench trace-smoke obs-smoke pdes-smoke
