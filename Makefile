# Tier-1 verify: build, vet, full tests, a race pass over the
# concurrency layer (worker-pool runner, event engine, live-metrics
# server) and the simulator hot path (core protocol + cache storage),
# a 1-iteration benchmark smoke so throughput regressions that crash or
# deadlock are caught before they reach a real benchmarking session,
# the observability smoke (trace + metrics JSON must parse, live
# metrics endpoint must serve Prometheus text during a run), and the
# PDES determinism smoke (parallel window-loop results byte-identical
# across worker counts).
verify:
	go build ./...
	go vet ./...
	go test ./...
	go test -race ./internal/runner ./internal/engine ./internal/resultcache
	go test -race ./internal/core ./internal/cache
	go test -race ./internal/obs ./internal/obs/attrib ./internal/obs/selfprof
	go test -run '^$$' -bench SimulatorThroughput -benchtime 1x .
	$(MAKE) obs-smoke
	$(MAKE) pdes-smoke
	$(MAKE) flight-smoke
	$(MAKE) cache-smoke

# Every smoke target works in its own mktemp -d scratch directory,
# removed on exit (success or failure), so concurrent invocations never
# trample each other and nothing accumulates in /tmp.

# pdes-smoke: one workload under the parallel window loop at 1 and 4
# workers; the full JSON stats dump must be byte-identical (the
# determinism contract -workers rests on, end to end through the CLI).
pdes-smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	go build -o $$d/protozoa-sim ./cmd/protozoa-sim; \
	$$d/protozoa-sim -workload barnes -protocol mw -scale 1 \
		-workers 1 -json > $$d/w1.json; \
	$$d/protozoa-sim -workload barnes -protocol mw -scale 1 \
		-workers 4 -json > $$d/w4.json; \
	cmp $$d/w1.json $$d/w4.json \
		|| { echo "pdes-smoke: -workers 1 and -workers 4 diverge"; exit 1; }; \
	echo "pdes-smoke: -workers 1 and -workers 4 stats byte-identical"

# flight-smoke: record the flight log for the same run at -workers 1
# and -workers 2 — the files must be byte-identical (the merged
# per-tile rings are worker-count invariant) — then validate the log
# end to end through protozoa-inspect -check.
flight-smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	go build -o $$d/protozoa-sim ./cmd/protozoa-sim; \
	go build -o $$d/protozoa-inspect ./cmd/protozoa-inspect; \
	$$d/protozoa-sim -workload barnes -protocol mw -scale 1 \
		-workers 1 -flight $$d/w1.pzfl > /dev/null; \
	$$d/protozoa-sim -workload barnes -protocol mw -scale 1 \
		-workers 2 -flight $$d/w2.pzfl > /dev/null; \
	cmp $$d/w1.pzfl $$d/w2.pzfl \
		|| { echo "flight-smoke: -workers 1 and -workers 2 flight logs diverge"; exit 1; }; \
	$$d/protozoa-inspect -check $$d/w1.pzfl \
		|| { echo "flight-smoke: recorded log failed validation"; exit 1; }; \
	echo "flight-smoke: flight logs byte-identical across workers and inspect-clean"

# trace-smoke: a 1-iteration simulation with event tracing and the
# metrics registry enabled, validating both JSON artifacts parse
# (python3 json.tool; Perfetto loads anything that passes).
trace-smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	go run ./cmd/protozoa-sim -workload histogram -protocol mw -scale 1 \
		-trace-out $$d/trace.json \
		-metrics-out $$d/metrics.json > /dev/null; \
	python3 -m json.tool $$d/trace.json > /dev/null; \
	python3 -m json.tool $$d/metrics.json > /dev/null; \
	echo "trace-smoke: trace.json and metrics.json parse OK"

# obs-smoke: trace-smoke plus a live scrape — run protozoa-sim with
# -serve, curl /metrics mid-run, and validate every non-comment line is
# Prometheus `name value` text including the attribution gauges.
obs-smoke: trace-smoke
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	go build -o $$d/protozoa-sim ./cmd/protozoa-sim; \
	$$d/protozoa-sim -workload histogram -protocol mw \
		-cores 16 -scale 60 -serve 127.0.0.1:18099 > /dev/null 2>$$d/serve.err & \
	pid=$$!; \
	ok=0; \
	for i in $$(seq 1 100); do \
		if curl -sf http://127.0.0.1:18099/metrics > $$d/metrics.prom 2>/dev/null \
			&& grep -q '^protozoa_snapshots_total [1-9]' $$d/metrics.prom; then ok=1; break; fi; \
		sleep 0.1; \
	done; \
	wait $$pid || { echo "obs-smoke: simulator failed"; cat $$d/serve.err; exit 1; }; \
	[ $$ok -eq 1 ] || { echo "obs-smoke: live endpoint never answered"; exit 1; }; \
	grep -q '^protozoa_attrib_fetched_words ' $$d/metrics.prom \
		|| { echo "obs-smoke: attribution gauges missing"; exit 1; }; \
	awk '!/^#/ { if (NF != 2 || $$1 !~ /^protozoa_[a-zA-Z0-9_:]+$$/ || $$2 !~ /^[0-9.eE+-]+$$/) \
		{ print "obs-smoke: bad metrics line: " $$0; exit 1 } }' $$d/metrics.prom; \
	echo "obs-smoke: live /metrics served valid Prometheus text mid-run"

# cache-smoke: the persistent result cache end to end, in two acts.
# Warm: a cold sweep populates a fresh -cache-dir, then the identical
# grid re-runs against it — every cell must come back cached and the
# CSV must be byte-identical. Resume: a second cold sweep into a fresh
# directory is killed once its first entries land on disk, then re-run
# — the interrupted grid must finish with at least one cell resumed
# from the cache and the same byte-identical CSV.
CACHE_SMOKE_GRID = -workloads linear-regression,barnes -protocols all -scale 8

cache-smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	go build -o $$d/protozoa-sweep ./cmd/protozoa-sweep; \
	$$d/protozoa-sweep $(CACHE_SMOKE_GRID) \
		-cache-dir $$d/cache \
		> $$d/cold.csv 2>/dev/null; \
	$$d/protozoa-sweep $(CACHE_SMOKE_GRID) \
		-cache-dir $$d/cache -progress \
		> $$d/warm.csv 2>$$d/warm.err; \
	cmp $$d/cold.csv $$d/warm.csv \
		|| { echo "cache-smoke: warm CSV differs from cold"; exit 1; }; \
	grep -q '8 cells (0 failed, 8 cached)' $$d/warm.err \
		|| { echo "cache-smoke: warm run re-simulated cells:"; \
		     tail -1 $$d/warm.err; exit 1; }; \
	echo "cache-smoke: warm re-run 100% cached, CSV byte-identical"; \
	$$d/protozoa-sweep $(CACHE_SMOKE_GRID) \
		-cache-dir $$d/cache-resume \
		> /dev/null 2>&1 & \
	pid=$$!; \
	for i in $$(seq 1 200); do \
		n=$$(find $$d/cache-resume -name '*.pzc' 2>/dev/null | wc -l); \
		[ $$n -ge 2 ] && break; \
		sleep 0.05; \
	done; \
	kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null || true; \
	n=$$(find $$d/cache-resume -name '*.pzc' | wc -l); \
	[ $$n -ge 1 ] || { echo "cache-smoke: no entries persisted before the kill"; exit 1; }; \
	[ $$n -le 7 ] || echo "cache-smoke: note: grid finished before the kill ($$n entries)"; \
	$$d/protozoa-sweep $(CACHE_SMOKE_GRID) \
		-cache-dir $$d/cache-resume -progress \
		> $$d/resume.csv 2>$$d/resume.err; \
	cmp $$d/cold.csv $$d/resume.csv \
		|| { echo "cache-smoke: resumed CSV differs from cold"; exit 1; }; \
	grep -Eq '8 cells \(0 failed, [1-8] cached\)' $$d/resume.err \
		|| { echo "cache-smoke: resume run reused nothing:"; \
		     tail -1 $$d/resume.err; exit 1; }; \
	echo "cache-smoke: kill-mid-grid resume reused persisted cells, CSV byte-identical"

# bench runs the simulator throughput benchmark with allocation
# accounting in a benchstat-friendly shape (-count 5). Compare against
# the latest committed BENCH_*.json numbers after hot-path changes.
bench:
	go test -run '^$$' -bench SimulatorThroughput -benchmem -benchtime 2s -count 5 .

# bench-compare is the regression workflow behind the committed
# BENCH_*.json snapshots: run the parallel-throughput benchmark at
# -count 5, diff per-benchmark medians against the most recent
# snapshot, and emit the next one. benchstat is used when present;
# cmd/protozoa-benchdiff (in-repo, no dependencies) always runs and
# writes the snapshot. Override the endpoints with
# `make bench-compare BENCH_BASELINE=BENCH_6.json BENCH_OUT=/tmp/x.json`;
# BENCH_CHANGE sets the snapshot's one-line description.
BENCH_BASELINE ?= $(shell ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1)
BENCH_OUT ?=
BENCH_CHANGE ?= uncommitted working tree
bench-compare:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	go build -o $$d/protozoa-benchdiff ./cmd/protozoa-benchdiff; \
	go test -run '^$$' -bench SimulatorThroughputParallel -benchmem \
		-benchtime 2s -count 5 . | tee $$d/bench.txt; \
	if command -v benchstat >/dev/null 2>&1; then benchstat $$d/bench.txt; fi; \
	$$d/protozoa-benchdiff -baseline "$(BENCH_BASELINE)" \
		$(if $(BENCH_OUT),-out "$(BENCH_OUT)") \
		-change "$(BENCH_CHANGE)" < $$d/bench.txt

# bench-gate is the CI perf-regression gate: a shorter benchmark pass
# (median-of-3 at 1s) diffed against the latest committed BENCH_*.json
# with a tolerance band. It exits non-zero when median throughput falls
# more than BENCH_GATE_TOL percent below the baseline and writes no
# snapshot — informational on PRs (the CI job is non-blocking, so noisy
# runners can't flake tier-1), and a local pre-push check after
# hot-path changes.
BENCH_GATE_TOL ?= 15
bench-gate:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	go build -o $$d/protozoa-benchdiff ./cmd/protozoa-benchdiff; \
	go test -run '^$$' -bench SimulatorThroughputParallel \
		-benchtime 1s -count 3 . | tee $$d/bench.txt; \
	$$d/protozoa-benchdiff -baseline "$(BENCH_BASELINE)" \
		-gate $(BENCH_GATE_TOL) < $$d/bench.txt

.PHONY: verify bench bench-compare bench-gate trace-smoke obs-smoke pdes-smoke flight-smoke cache-smoke
