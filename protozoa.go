// Package protozoa is a from-scratch reproduction of "Protozoa:
// Adaptive Granularity Cache Coherence" (Zhao, Shriraman, Kumar,
// Dwarkadas — ISCA 2013): a family of directory coherence protocols
// that decouple storage/communication granularity from coherence
// granularity over an Amoeba-Cache L1.
//
// The package is the public facade over the full simulator:
//
//   - Run simulates one workload of the built-in suite under one
//     protocol and returns its measurements.
//   - Collect runs the whole workload x protocol matrix and renders
//     the paper's Figures 9-15 as text tables; CollectTable1 sweeps
//     MESI block sizes for Table 1.
//   - NewSystem gives direct access to the simulated machine for
//     custom access streams (see examples/falsesharing).
//
// Quick start:
//
//	st, err := protozoa.Run("linear-regression", protozoa.ProtozoaMW, protozoa.DefaultOptions())
//	if err != nil { ... }
//	fmt.Printf("MPKI %.2f, traffic %d bytes\n", st.MPKI(), st.TrafficTotal())
package protozoa

import (
	"protozoa/internal/core"
	"protozoa/internal/harness"
	"protozoa/internal/mem"
	"protozoa/internal/obs/attrib"
	"protozoa/internal/profile"
	"protozoa/internal/resultcache"
	"protozoa/internal/runner"
	"protozoa/internal/stats"
	"protozoa/internal/trace"
	"protozoa/internal/workloads"
)

// Protocol selects a member of the protocol family.
type Protocol = core.Protocol

// The protocol family, in the order the paper's figures use.
const (
	// MESI is the conventional fixed-granularity 4-hop directory baseline.
	MESI = core.MESI
	// ProtozoaSW adapts storage/communication granularity only.
	ProtozoaSW = core.ProtozoaSW
	// ProtozoaSWMR adds multiple non-overlapping readers beside one writer.
	ProtozoaSWMR = core.ProtozoaSWMR
	// ProtozoaMW allows multiple non-overlapping writers: word-granularity SWMR.
	ProtozoaMW = core.ProtozoaMW
)

// Protocols returns the family in figure order.
func Protocols() []Protocol { return core.AllProtocols }

// Stats holds one run's measurements (miss rates, traffic breakdown,
// flit-hops, execution cycles, distributions).
type Stats = stats.Stats

// Options sizes an experiment (cores, workload scale, subset) and its
// parallelism: Jobs bounds how many matrix cells simulate concurrently
// (results are identical at any setting) and Progress optionally
// streams per-cell completion lines.
type Options = harness.Options

// DefaultOptions is the paper's 16-core configuration.
func DefaultOptions() Options { return harness.DefaultOptions() }

// ResultCache is the two-tier content-addressed result store; assign
// one to Options.Cache to memoize matrix cells across calls (and, with
// a directory, across processes). See docs/CACHING.md.
type ResultCache = resultcache.Cache

// OpenCache opens a result cache for Options.Cache: enabled=false
// returns nil (no caching), an empty dir keeps results in memory only,
// and a directory adds the persistent tier that makes repeated and
// interrupted experiment grids resume instead of re-simulating.
func OpenCache(enabled bool, dir string) (*ResultCache, error) {
	return runner.OpenCache(enabled, dir)
}

// Run simulates one built-in workload under one protocol.
func Run(workload string, p Protocol, o Options) (*Stats, error) {
	return harness.Run(workload, p, o)
}

// WorkloadNames lists the built-in workload suite.
func WorkloadNames() []string { return workloads.Names() }

// Workload describes one member of the suite.
type Workload struct {
	Name   string // figure label
	Models string // paper application it reproduces
	Suite  string // paper benchmark suite
	About  string // sharing/locality signature
}

// Workloads describes the full suite.
func Workloads() []Workload {
	var out []Workload
	for _, s := range workloads.All() {
		out = append(out, Workload{Name: s.Name, Models: s.Models, Suite: s.Suite, About: s.About})
	}
	return out
}

// Matrix holds the full workload x protocol result grid and renders
// the paper's figures.
type Matrix = harness.Matrix

// Collect runs the full matrix for the Figure 9-15 reproductions.
func Collect(o Options) (*Matrix, error) { return harness.Collect(o) }

// Table1Result is the MESI block-size sweep.
type Table1Result = harness.Table1Result

// CollectTable1 sweeps MESI over 16/32/64/128-byte blocks (Table 1).
func CollectTable1(o Options) (*Table1Result, error) { return harness.CollectTable1(o) }

// --- direct machine access for custom traces -----------------------------

// SystemConfig configures a simulated machine directly, including the
// Section 6 extensions: ThreeHop direct forwarding, the bloom-filter
// Directory, MergeL1Blocks Amoeba coalescing, and a finite
// L2RegionsPerTile with inclusion recalls.
type SystemConfig = core.Config

// System is one assembled machine.
type System = core.System

// DirectoryKind selects precise or bloom-filter sharer tracking.
type DirectoryKind = core.DirectoryKind

// Directory kinds.
const (
	DirPrecise = core.DirPrecise
	DirBloom   = core.DirBloom
)

// Checker is the Section 3.6 random-tester oracle: SWMR at the
// protocol's granularity plus golden-value integrity.
type Checker = core.Checker

// NewChecker attaches a checker to a system as its observer.
func NewChecker(sys *System) *Checker { return core.NewChecker(sys) }

// DefaultSystemConfig is the paper's Table 4 machine for a protocol.
func DefaultSystemConfig(p Protocol) SystemConfig { return core.DefaultConfig(p) }

// NewSystem builds a machine running the given per-core streams.
func NewSystem(cfg SystemConfig, streams []Stream) (*System, error) {
	return core.NewSystem(cfg, streams)
}

// Access is one trace record; Stream produces a core's records.
type (
	Access = trace.Access
	Stream = trace.Stream
)

// Trace record kinds.
const (
	Load    = trace.Load
	Store   = trace.Store
	Barrier = trace.Barrier
)

// NewSliceStream adapts a record slice to a Stream.
func NewSliceStream(recs []Access) Stream { return trace.NewSliceStream(recs) }

// Addr is a byte address in the simulated physical address space.
type Addr = mem.Addr

// RegionID identifies a coherence region (a 64-byte-aligned block at
// the default geometry).
type RegionID = mem.RegionID

// RegionOf maps an address to its region at the default geometry.
func RegionOf(a Addr) RegionID { return mem.DefaultGeometry.Region(a) }

// Attribution is the coherence-traffic attribution tracker: per-region
// word utilization, sharing-pattern classification, and invalidation
// attribution. Attach with System.EnableAttribution before Run.
type Attribution = attrib.Tracker

// SharingPattern classifies a region's observed sharing behaviour.
type SharingPattern = attrib.Pattern

// Sharing patterns, from word-level reader/writer footprints.
const (
	PatternPrivate     = attrib.Private
	PatternReadOnly    = attrib.ReadOnly
	PatternPartitioned = attrib.Partitioned
	PatternFalseShared = attrib.FalseShared
	PatternMigratory   = attrib.Migratory
	PatternReadWrite   = attrib.ReadWrite
)

// RenderAttribution formats one run's attribution report: the
// utilization summary plus the top-N offender regions.
func RenderAttribution(tr *Attribution, topN int) string {
	return harness.RenderAttribution(tr, topN)
}

// SharingProfile is the Section 2 trace-level analysis: per-region
// sharing classification and spatial footprint.
type SharingProfile = profile.Report

// Profile analyzes a built-in workload's access streams without
// simulating a machine (cmd/protozoa-profile's engine).
func Profile(workload string, cores, scale int) (*SharingProfile, error) {
	spec, err := workloads.Get(workload)
	if err != nil {
		return nil, err
	}
	return profile.Analyze(spec.Streams(cores, scale), mem.DefaultGeometry), nil
}

// EnergyModel converts a run's event counts into dynamic energy.
type EnergyModel = stats.EnergyModel

// DefaultEnergyModel returns representative per-event coefficients.
func DefaultEnergyModel() EnergyModel { return stats.DefaultEnergyModel() }
