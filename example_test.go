package protozoa_test

// Runnable godoc examples for the public API.

import (
	"fmt"

	"protozoa"
)

// ExampleRun simulates one built-in workload and reports whether the
// adaptive protocol moved less data than the baseline.
func ExampleRun() {
	opts := protozoa.Options{Cores: 4, Scale: 1}
	mesi, err := protozoa.Run("linear-regression", protozoa.MESI, opts)
	if err != nil {
		panic(err)
	}
	mw, err := protozoa.Run("linear-regression", protozoa.ProtozoaMW, opts)
	if err != nil {
		panic(err)
	}
	fmt.Println("MW moves less data:", mw.TrafficTotal() < mesi.TrafficTotal())
	fmt.Println("MW misses fewer:", mw.L1Misses < mesi.L1Misses)
	// Output:
	// MW moves less data: true
	// MW misses fewer: true
}

// ExampleNewSystem drives the simulator with a custom trace: one core
// writes a word, the other reads it after a barrier.
func ExampleNewSystem() {
	cfg := protozoa.DefaultSystemConfig(protozoa.ProtozoaMW)
	cfg.Cores = 2
	cfg.Noc.DimX, cfg.Noc.DimY = 2, 1
	streams := []protozoa.Stream{
		protozoa.NewSliceStream([]protozoa.Access{
			{Kind: protozoa.Store, Addr: 0x1000, PC: 0x4},
			{Kind: protozoa.Barrier},
		}),
		protozoa.NewSliceStream([]protozoa.Access{
			{Kind: protozoa.Barrier},
			{Kind: protozoa.Load, Addr: 0x1000, PC: 0x8},
		}),
	}
	sys, err := protozoa.NewSystem(cfg, streams)
	if err != nil {
		panic(err)
	}
	if err := sys.Run(); err != nil {
		panic(err)
	}
	st := sys.Stats()
	fmt.Println("accesses:", st.Accesses, "misses:", st.L1Misses)
	// Output:
	// accesses: 2 misses: 2
}

// ExampleWorkloads lists a few members of the built-in suite.
func ExampleWorkloads() {
	for _, w := range protozoa.Workloads()[:3] {
		fmt.Printf("%s (%s)\n", w.Name, w.Suite)
	}
	// Output:
	// apache (commercial)
	// barnes (SPLASH-2)
	// blackscholes (PARSEC)
}

// ExampleNewChecker verifies a run with the SWMR/golden-value oracle.
func ExampleNewChecker() {
	cfg := protozoa.DefaultSystemConfig(protozoa.ProtozoaMW)
	cfg.Cores = 2
	cfg.Noc.DimX, cfg.Noc.DimY = 2, 1
	streams := []protozoa.Stream{
		protozoa.NewSliceStream([]protozoa.Access{{Kind: protozoa.Store, Addr: 0x40, PC: 1}}),
		protozoa.NewSliceStream([]protozoa.Access{{Kind: protozoa.Store, Addr: 0x48, PC: 2}}),
	}
	sys, err := protozoa.NewSystem(cfg, streams)
	if err != nil {
		panic(err)
	}
	chk := protozoa.NewChecker(sys)
	if err := sys.Run(); err != nil {
		panic(err)
	}
	fmt.Println("violations:", len(chk.Violations()))
	// Output:
	// violations: 0
}
