// protozoa-figs regenerates the paper's evaluation figures (9-15) by
// running the workload x protocol matrix once and rendering each
// figure's rows as a text table.
//
// Usage:
//
//	protozoa-figs                 # all figures
//	protozoa-figs -fig 13         # one figure
//	protozoa-figs -workloads linear-regression,histogram -scale 4
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"protozoa"
	"protozoa/internal/runner"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 9-15 (0 = all)")
	cores := flag.Int("cores", 16, "number of cores (1, 2, 4, or 16)")
	scale := flag.Int("scale", 2, "workload iteration multiplier")
	subset := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	csvOut := flag.String("csv", "", "also export all metrics to this CSV file")
	chart := flag.Bool("chart", false, "render bar charts instead of tables (figures 9, 13, 15)")
	seed := flag.Uint64("seed", 0, "trace-randomization seed (0 = canonical)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent matrix cells (figures are identical at any setting)")
	progress := flag.Bool("progress", false, "stream per-cell wall-time/event-count lines and a summary to stderr")
	cacheOn := flag.Bool("cache", true, "memoize matrix cells in the in-process result cache")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory; warm re-runs resume from it")
	version := flag.Bool("version", false, "print build provenance (result-cache schema and code stamp) and exit")
	flag.Parse()

	if *version {
		fmt.Println(runner.VersionString())
		return
	}
	if *fig != 0 && (*fig < 9 || *fig > 16) {
		fmt.Fprintln(os.Stderr, "protozoa-figs: -fig must be 9..16 (or 0 for all; 16 = miss classification)")
		os.Exit(1)
	}

	o := protozoa.Options{Cores: *cores, Scale: *scale, TraceSeed: *seed, Jobs: *jobs}
	if *progress {
		o.Progress = os.Stderr
	}
	if *subset != "" {
		o.Workloads = strings.Split(*subset, ",")
	}
	cache, err := protozoa.OpenCache(*cacheOn, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-figs:", err)
		os.Exit(1)
	}
	o.Cache = cache
	m, err := protozoa.Collect(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-figs:", err)
		os.Exit(1)
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "protozoa-figs:", err)
			os.Exit(1)
		}
		if err := m.ExportCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "protozoa-figs:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "protozoa-figs:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *csvOut)
	}
	renders := map[int]func() string{
		9:  m.Fig9Traffic,
		10: m.Fig10Control,
		11: m.Fig11Owners,
		12: m.Fig12BlockDist,
		13: m.Fig13MPKI,
		14: m.Fig14Exec,
		15: m.Fig15FlitHops,
		16: m.FigMissClass, // beyond the paper: cold/capacity/coherence/granularity
	}
	if *chart {
		renders[9] = m.ChartTraffic
		renders[13] = m.ChartMPKI
		renders[15] = m.ChartFlitHops
	}
	if *fig != 0 {
		fmt.Print(renders[*fig]())
		return
	}
	for f := 9; f <= 16; f++ {
		fmt.Print(renders[f]())
		fmt.Println()
	}
}
