// protozoa-sweep runs a grid of configurations — protocols x workloads
// x design knobs x region sizes — and emits one CSV row per cell: the
// generic engine behind the ablation studies. The grid fans out over
// internal/runner's worker pool; output is byte-identical at any -jobs
// setting, and a failing cell is reported on stderr while every
// completed cell's row is still written.
//
// Usage:
//
//	protozoa-sweep -workloads histogram,barnes -protocols mesi,mw
//	protozoa-sweep -knobs threehop,bloom -protocols mw -workloads barnes
//	protozoa-sweep -regions 32,64,128 -protocols mw -jobs 8 -progress
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/obs"
	"protozoa/internal/obs/selfprof"
	"protozoa/internal/resultcache"
	"protozoa/internal/runner"
)

func main() {
	wls := flag.String("workloads", "linear-regression,histogram", "comma-separated workloads")
	protos := flag.String("protocols", "all", "comma-separated protocols (mesi, sw, swmr, mw, all)")
	knobs := flag.String("knobs", "baseline", "comma-separated design knobs: "+strings.Join(runner.KnobNames(), ", "))
	regions := flag.String("regions", "64", "comma-separated RMAX region sizes")
	cores := flag.Int("cores", 16, "cores (1, 2, 4, or 16)")
	scale := flag.Int("scale", 1, "workload scale")
	seed := flag.Uint64("seed", 0, "trace-randomization seed (0 = canonical)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent cells (CSV order and content are identical at any setting)")
	workers := flag.Int("workers", 0, "parallel window-loop goroutines per cell (0 = sequential engine; rows are byte-identical for any value >= 1)")
	progress := flag.Bool("progress", false, "stream per-cell wall-time/event-count lines and a summary to stderr")
	cacheOn := flag.Bool("cache", true, "memoize cells in the in-process result cache (identical cells simulate once)")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory; warm re-runs and interrupted sweeps resume from it")
	serve := flag.String("serve", "", "serve live sweep-progress metrics at this address (e.g. 127.0.0.1:8080) for the grid's duration")
	selfProf := flag.Bool("self-prof", false, "profile the simulator across the grid; aggregate summary to stderr, CSV unchanged (cached cells contribute nothing)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	version := flag.Bool("version", false, "print build provenance (result-cache schema and code stamp) and exit")
	flag.Parse()

	if *version {
		fmt.Println(runner.VersionString())
		return
	}
	stopProfiles, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}

	ps, err := runner.ParseProtocols(*protos)
	if err != nil {
		fail(err)
	}
	regionSizes, err := runner.ParseRegions(*regions)
	if err != nil {
		fail(err)
	}
	knobList, err := runner.ParseKnobs(*knobs)
	if err != nil {
		fail(err)
	}

	cells, err := runner.Grid{
		Workloads: strings.Split(*wls, ","),
		Protocols: ps,
		Knobs:     knobList,
		Regions:   regionSizes,
		Cores:     *cores,
		Scale:     *scale,
		TraceSeed: *seed,
		Workers:   *workers,
	}.Cells()
	if err != nil {
		fail(err)
	}

	var profc *selfprof.Collector
	if *selfProf {
		// Self-profiling is invisible to the result cache: cached cells
		// never run AfterRun, so the rollup covers simulated work only
		// and the CSV stays byte-identical either way.
		profc = &selfprof.Collector{}
		for i := range cells {
			cells[i].Observe = func(sys *core.System) { sys.EnableSelfProf() }
			cells[i].AfterRun = func(sys *core.System) { profc.Add(sys.SelfProf().Report()) }
		}
	}

	pool := runner.Pool{Jobs: *jobs}
	if *progress {
		pool.Progress = os.Stderr
	}
	if pool.Cache, err = runner.OpenCache(*cacheOn, *cacheDir); err != nil {
		fail(err)
	}
	if *serve != "" {
		live, err := newSweepLive(*serve, len(cells), pool.Cache)
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "protozoa-sweep: serving live metrics at http://%s/metrics\n", live.srv.Addr())
		pool.OnResult = live.observe
		defer func() {
			if err := live.srv.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "protozoa-sweep: metrics server:", err)
			}
		}()
	}
	results, sum := pool.Run(cells)

	// Completed rows always reach stdout, even when other cells failed.
	if err := runner.WriteCSV(os.Stdout, results); err != nil {
		fail(err)
	}
	if err := stopProfiles(); err != nil {
		fail(err)
	}
	if profc != nil {
		profc.WriteSummary(os.Stderr)
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, "protozoa-sweep:", r.Err)
		}
	}
	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "protozoa-sweep: %d of %d cells failed; completed rows were still written\n",
			sum.Failed, sum.Cells)
		os.Exit(1)
	}
}

// sweepLive aggregates completed cells into a live endpoint. observe
// runs under the pool's result mutex, so the plain counters need no
// extra locking; every update publishes a fresh snapshot.
type sweepLive struct {
	srv   *obs.LiveServer
	total uint64
	cache *resultcache.Cache // nil when the pool runs uncached

	done, failed, cached, events, simCycles    uint64
	fetched, used, wasted, invals, falseShared uint64
}

var sweepLiveDescs = []obs.MetricDesc{
	{Name: "sweep_cells_total", Help: "cells in the grid"},
	{Name: "sweep_cells_done", Help: "cells completed (ok or failed)"},
	{Name: "sweep_cells_failed", Help: "cells that returned an error"},
	{Name: "sweep_cells_cached", Help: "cells answered from the result cache without simulating"},
	{Name: "sweep_events_total", Help: "engine events across completed cells"},
	{Name: "sweep_sim_cycles_total", Help: "simulated cycles across completed cells"},
	{Name: "cache_hits", Help: "result-cache lookup hits (memory + disk tiers)"},
	{Name: "cache_misses", Help: "result-cache lookup misses"},
	{Name: "cache_bytes_read", Help: "payload bytes read from the result cache's disk tier"},
	{Name: "cache_bytes_written", Help: "payload bytes written to the result cache's disk tier"},
	{Name: "attrib_fetched_words", Help: "words fetched into L1s across completed cells"},
	{Name: "attrib_used_words", Help: "fetched words used across completed cells"},
	{Name: "attrib_wasted_bytes", Help: "bytes fetched but never used across completed cells"},
	{Name: "attrib_invalidations", Help: "invalidation events across completed cells"},
	{Name: "attrib_false_shared_regions", Help: "regions classified false-shared across completed cells"},
}

func newSweepLive(addr string, total int, cache *resultcache.Cache) (*sweepLive, error) {
	srv, err := obs.NewLiveServer(addr, sweepLiveDescs)
	if err != nil {
		return nil, err
	}
	l := &sweepLive{srv: srv, total: uint64(total), cache: cache}
	l.publish()
	return l, nil
}

func (l *sweepLive) observe(r runner.Result) {
	l.done++
	if r.Err != nil {
		l.failed++
	}
	if r.Cached {
		l.cached++
	}
	l.events += r.Events
	if r.Stats != nil {
		l.simCycles += r.Stats.ExecCycles
	}
	if tr := r.Attrib; tr != nil {
		l.fetched += tr.FetchedWords
		l.used += tr.UsedWords
		l.wasted += tr.WastedBytes()
		l.invals += tr.Invalidations
		l.falseShared += tr.FalseSharedRegions()
	}
	l.publish()
}

func (l *sweepLive) publish() {
	var cc resultcache.Counters
	if l.cache != nil {
		cc = l.cache.Counters()
	}
	l.srv.Publish(l.simCycles, []float64{
		float64(l.total), float64(l.done), float64(l.failed), float64(l.cached),
		float64(l.events), float64(l.simCycles),
		float64(cc.Hits()), float64(cc.Misses),
		float64(cc.BytesRead), float64(cc.BytesWritten),
		float64(l.fetched), float64(l.used), float64(l.wasted),
		float64(l.invals), float64(l.falseShared),
	})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "protozoa-sweep:", err)
	os.Exit(1)
}
