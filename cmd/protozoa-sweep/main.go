// protozoa-sweep runs a grid of configurations — protocols x workloads
// x design knobs x region sizes — and emits one CSV row per cell: the
// generic engine behind the ablation studies. The grid fans out over
// internal/runner's worker pool; output is byte-identical at any -jobs
// setting, and a failing cell is reported on stderr while every
// completed cell's row is still written.
//
// Usage:
//
//	protozoa-sweep -workloads histogram,barnes -protocols mesi,mw
//	protozoa-sweep -knobs threehop,bloom -protocols mw -workloads barnes
//	protozoa-sweep -regions 32,64,128 -protocols mw -jobs 8 -progress
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"protozoa/internal/runner"
)

func main() {
	wls := flag.String("workloads", "linear-regression,histogram", "comma-separated workloads")
	protos := flag.String("protocols", "all", "comma-separated protocols (mesi, sw, swmr, mw, all)")
	knobs := flag.String("knobs", "baseline", "comma-separated design knobs: "+strings.Join(runner.KnobNames(), ", "))
	regions := flag.String("regions", "64", "comma-separated RMAX region sizes")
	cores := flag.Int("cores", 16, "cores (1, 2, 4, or 16)")
	scale := flag.Int("scale", 1, "workload scale")
	seed := flag.Uint64("seed", 0, "trace-randomization seed (0 = canonical)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent cells (CSV order and content are identical at any setting)")
	progress := flag.Bool("progress", false, "stream per-cell wall-time/event-count lines and a summary to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	stopProfiles, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fail(err)
	}

	ps, err := runner.ParseProtocols(*protos)
	if err != nil {
		fail(err)
	}
	regionSizes, err := runner.ParseRegions(*regions)
	if err != nil {
		fail(err)
	}
	knobList, err := runner.ParseKnobs(*knobs)
	if err != nil {
		fail(err)
	}

	cells, err := runner.Grid{
		Workloads: strings.Split(*wls, ","),
		Protocols: ps,
		Knobs:     knobList,
		Regions:   regionSizes,
		Cores:     *cores,
		Scale:     *scale,
		TraceSeed: *seed,
	}.Cells()
	if err != nil {
		fail(err)
	}

	pool := runner.Pool{Jobs: *jobs}
	if *progress {
		pool.Progress = os.Stderr
	}
	results, sum := pool.Run(cells)

	// Completed rows always reach stdout, even when other cells failed.
	if err := runner.WriteCSV(os.Stdout, results); err != nil {
		fail(err)
	}
	if err := stopProfiles(); err != nil {
		fail(err)
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintln(os.Stderr, "protozoa-sweep:", r.Err)
		}
	}
	if sum.Failed > 0 {
		fmt.Fprintf(os.Stderr, "protozoa-sweep: %d of %d cells failed; completed rows were still written\n",
			sum.Failed, sum.Cells)
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "protozoa-sweep:", err)
	os.Exit(1)
}
