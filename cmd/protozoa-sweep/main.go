// protozoa-sweep runs a grid of configurations — protocols x workloads
// x design knobs — and emits one CSV row per cell: the generic engine
// behind the ablation studies.
//
// Usage:
//
//	protozoa-sweep -workloads histogram,barnes -protocols mesi,mw
//	protozoa-sweep -knobs threehop,bloom -protocols mw -workloads barnes
//	protozoa-sweep -regions 32,64,128 -protocols mw -workloads histogram
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/noc"
	"protozoa/internal/workloads"
)

var knobSetters = map[string]func(*core.Config){
	"baseline":     func(*core.Config) {},
	"threehop":     func(c *core.Config) { c.ThreeHop = true },
	"bloom":        func(c *core.Config) { c.Directory = core.DirBloom },
	"merge":        func(c *core.Config) { c.MergeL1Blocks = true },
	"noninclusive": func(c *core.Config) { c.NonInclusiveL2 = true },
	"contention":   func(c *core.Config) { c.Noc.ModelContention = true },
	"ring":         func(c *core.Config) { c.Noc.Topology = noc.TopoRing },
	"crossbar":     func(c *core.Config) { c.Noc.Topology = noc.TopoCrossbar },
}

func parseProtocols(s string) ([]core.Protocol, error) {
	var out []core.Protocol
	for _, tok := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(tok)) {
		case "mesi":
			out = append(out, core.MESI)
		case "sw":
			out = append(out, core.ProtozoaSW)
		case "swmr", "sw+mr":
			out = append(out, core.ProtozoaSWMR)
		case "mw":
			out = append(out, core.ProtozoaMW)
		case "all":
			out = append(out, core.AllProtocols...)
		default:
			return nil, fmt.Errorf("unknown protocol %q", tok)
		}
	}
	return out, nil
}

func main() {
	wls := flag.String("workloads", "linear-regression,histogram", "comma-separated workloads")
	protos := flag.String("protocols", "all", "comma-separated protocols (mesi, sw, swmr, mw, all)")
	knobs := flag.String("knobs", "baseline", "comma-separated design knobs: baseline, threehop, bloom, merge, noninclusive, contention, ring, crossbar")
	regions := flag.String("regions", "64", "comma-separated RMAX region sizes")
	cores := flag.Int("cores", 16, "cores (1, 2, 4, or 16)")
	scale := flag.Int("scale", 1, "workload scale")
	flag.Parse()

	ps, err := parseProtocols(*protos)
	if err != nil {
		fail(err)
	}
	var regionSizes []int
	for _, tok := range strings.Split(*regions, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			fail(fmt.Errorf("bad region size %q", tok))
		}
		regionSizes = append(regionSizes, v)
	}
	knobList := strings.Split(*knobs, ",")
	for _, k := range knobList {
		if _, ok := knobSetters[strings.TrimSpace(k)]; !ok {
			fail(fmt.Errorf("unknown knob %q", k))
		}
	}

	w := csv.NewWriter(os.Stdout)
	w.Write([]string{
		"workload", "protocol", "knob", "region_bytes",
		"misses", "mpki", "traffic_bytes", "used_pct", "flit_hops", "exec_cycles",
	})
	for _, wlName := range strings.Split(*wls, ",") {
		wlName = strings.TrimSpace(wlName)
		spec, err := workloads.Get(wlName)
		if err != nil {
			fail(err)
		}
		for _, p := range ps {
			for _, knob := range knobList {
				knob = strings.TrimSpace(knob)
				for _, rb := range regionSizes {
					cfg := core.DefaultConfig(p)
					cfg.Cores = *cores
					cfg.RegionBytes = rb
					switch *cores {
					case 16:
					case 4:
						cfg.Noc.DimX, cfg.Noc.DimY = 2, 2
					case 2:
						cfg.Noc.DimX, cfg.Noc.DimY = 2, 1
					case 1:
						cfg.Noc.DimX, cfg.Noc.DimY = 1, 1
					default:
						fail(fmt.Errorf("cores must be 1, 2, 4, or 16"))
					}
					knobSetters[knob](&cfg)
					sys, err := core.NewSystem(cfg, spec.Streams(*cores, *scale))
					if err != nil {
						fail(err)
					}
					if err := sys.Run(); err != nil {
						fail(fmt.Errorf("%s/%s/%s: %w", wlName, p, knob, err))
					}
					st := sys.Stats()
					w.Write([]string{
						wlName, p.String(), knob, strconv.Itoa(rb),
						strconv.FormatUint(st.L1Misses, 10),
						strconv.FormatFloat(st.MPKI(), 'f', 3, 64),
						strconv.FormatUint(st.TrafficTotal(), 10),
						strconv.FormatFloat(st.UsedPct(), 'f', 1, 64),
						strconv.FormatUint(st.FlitHops, 10),
						strconv.FormatUint(st.ExecCycles, 10),
					})
				}
			}
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "protozoa-sweep:", err)
	os.Exit(1)
}
