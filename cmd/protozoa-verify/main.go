// protozoa-verify runs the paper's random protocol tester (Section
// 3.6) from the command line: seeded random access streams drive the
// full machine while the checker validates the SWMR invariant at the
// protocol's granularity and golden-value integrity of every cached
// word and completed load. The selected protocols verify concurrently
// on internal/runner's pool; the report stays in protocol order.
//
// Usage:
//
//	protozoa-verify                          # 1M accesses across the family
//	protozoa-verify -protocol mw -accesses 250000 -seed 7
//	protozoa-verify -threehop -bloom         # verify the extensions too
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"

	"protozoa/internal/core"
	"protozoa/internal/mem"
	"protozoa/internal/resultcache"
	"protozoa/internal/runner"
	"protozoa/internal/trace"
)

func main() {
	proto := flag.String("protocol", "all", "protocols to verify: mesi, sw, swmr, mw, all (comma-separated)")
	accesses := flag.Int("accesses", 1_000_000, "total accesses across all selected protocols")
	cores := flag.Int("cores", 16, "cores (1, 2, 4, or 16)")
	regions := flag.Int("regions", 16, "regions in the contended pool")
	storePct := flag.Int("stores", 40, "store percentage")
	seed := flag.Uint64("seed", 2013, "random seed")
	threeHop := flag.Bool("threehop", false, "enable 3-hop forwarding")
	bloom := flag.Bool("bloom", false, "use the bloom-filter directory")
	l2cap := flag.Int("l2cap", 0, "L2 regions per tile (0 = unbounded)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent protocol runs")
	progress := flag.Bool("progress", false, "stream per-protocol wall-time/event-count lines and a summary to stderr")
	cacheOn := flag.Bool("cache", true, "memoize runs in the in-process result cache")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory (repeat verifications replay the stored checker outcome)")
	version := flag.Bool("version", false, "print build provenance (result-cache schema and code stamp) and exit")
	flag.Parse()

	if *version {
		fmt.Println(runner.VersionString())
		return
	}
	ps, err := runner.ParseProtocols(*proto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-verify:", err)
		os.Exit(1)
	}
	perCore := *accesses / (len(ps) * *cores)

	cells := make([]runner.Cell, len(ps))
	chks := make([]*core.Checker, len(ps))
	for i, p := range ps {
		resolve := func() (core.Config, error) {
			cfg := core.DefaultConfig(p)
			cfg.ThreeHop = *threeHop
			cfg.L2RegionsPerTile = *l2cap
			if *bloom {
				cfg.Directory = core.DirBloom
			}
			err := runner.ConfigureCores(&cfg, *cores)
			return cfg, err
		}
		var key resultcache.Key
		if cfg, err := resolve(); err == nil {
			// The random streams are fully determined by the seed and
			// the stream-shape parameters, so they cache-key cleanly; a
			// config that fails to resolve stays uncacheable and lets
			// Build surface the error under the cell's label.
			key = runner.CellSpec{
				Config: cfg,
				Seed:   *seed,
				Extra: [][2]string{
					{"stream", "verify-random"},
					{"per-core", strconv.Itoa(perCore)},
					{"regions", strconv.Itoa(*regions)},
					{"stores", strconv.Itoa(*storePct)},
				},
				Extract: "checker-summary-v1",
			}.Key()
		}
		cells[i] = runner.Cell{
			Label:    p.String(),
			Protocol: p,
			Key:      key,
			Build: func() (*core.System, error) {
				cfg, err := resolve()
				if err != nil {
					return nil, err
				}
				streams := make([]trace.Stream, *cores)
				for c := 0; c < *cores; c++ {
					rng := trace.NewRNG(*seed*1000 + uint64(c))
					recs := make([]trace.Access, 0, perCore)
					for j := 0; j < perCore; j++ {
						addr := mem.Addr(rng.Intn(*regions)*64 + rng.Intn(8)*8)
						kind := trace.Load
						if rng.Intn(100) < *storePct {
							kind = trace.Store
						}
						recs = append(recs, trace.Access{Kind: kind, Addr: addr, PC: uint64(0x400 + rng.Intn(8)*4)})
					}
					streams[c] = trace.NewSliceStream(recs)
				}
				return core.NewSystem(cfg, streams)
			},
			Observe: func(sys *core.System) { chks[i] = core.NewChecker(sys) },
			Extract: func(*core.System) ([]byte, error) { return json.Marshal(chks[i].Summary()) },
		}
	}

	pool := runner.Pool{Jobs: *jobs}
	if *progress {
		pool.Progress = os.Stderr
	}
	if pool.Cache, err = runner.OpenCache(*cacheOn, *cacheDir); err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-verify:", err)
		os.Exit(1)
	}
	results, _ := pool.Run(cells)

	failed := false
	for i, r := range results {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "protozoa-verify: %v\n", r.Err)
			failed = true
			continue
		}
		// The checker outcome travels in Result.Extra so a cached run
		// reports exactly what the original simulation did.
		var sum core.CheckerSummary
		if err := json.Unmarshal(r.Extra, &sum); err != nil {
			fmt.Fprintf(os.Stderr, "protozoa-verify: %s: bad checker summary: %v\n", ps[i], err)
			failed = true
			continue
		}
		status := "OK"
		if len(sum.Violations) > 0 {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-15s %8d accesses  %8d loads checked  %8d quiescent scans  %s\n",
			ps[i], r.Stats.Accesses, sum.Loads, sum.Checks, status)
		for _, v := range sum.Violations {
			fmt.Printf("  violation: %s\n", v)
		}
	}
	if failed {
		os.Exit(1)
	}
}
