// protozoa-verify runs the paper's random protocol tester (Section
// 3.6) from the command line: seeded random access streams drive the
// full machine while the checker validates the SWMR invariant at the
// protocol's granularity and golden-value integrity of every cached
// word and completed load.
//
// Usage:
//
//	protozoa-verify                          # 1M accesses across the family
//	protozoa-verify -protocol mw -accesses 250000 -seed 7
//	protozoa-verify -threehop -bloom         # verify the extensions too
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

func protocols(sel string) ([]core.Protocol, error) {
	if sel == "all" {
		return core.AllProtocols, nil
	}
	switch strings.ToLower(sel) {
	case "mesi":
		return []core.Protocol{core.MESI}, nil
	case "sw":
		return []core.Protocol{core.ProtozoaSW}, nil
	case "swmr", "sw+mr":
		return []core.Protocol{core.ProtozoaSWMR}, nil
	case "mw":
		return []core.Protocol{core.ProtozoaMW}, nil
	}
	return nil, fmt.Errorf("unknown protocol %q", sel)
}

func main() {
	proto := flag.String("protocol", "all", "protocol to verify: mesi, sw, swmr, mw, all")
	accesses := flag.Int("accesses", 1_000_000, "total accesses across all selected protocols")
	cores := flag.Int("cores", 16, "cores (1, 2, 4, or 16)")
	regions := flag.Int("regions", 16, "regions in the contended pool")
	storePct := flag.Int("stores", 40, "store percentage")
	seed := flag.Uint64("seed", 2013, "random seed")
	threeHop := flag.Bool("threehop", false, "enable 3-hop forwarding")
	bloom := flag.Bool("bloom", false, "use the bloom-filter directory")
	l2cap := flag.Int("l2cap", 0, "L2 regions per tile (0 = unbounded)")
	flag.Parse()

	ps, err := protocols(*proto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-verify:", err)
		os.Exit(1)
	}
	perCore := *accesses / (len(ps) * *cores)
	failed := false
	for _, p := range ps {
		cfg := core.DefaultConfig(p)
		cfg.Cores = *cores
		cfg.ThreeHop = *threeHop
		cfg.L2RegionsPerTile = *l2cap
		if *bloom {
			cfg.Directory = core.DirBloom
		}
		switch *cores {
		case 16:
		case 4:
			cfg.Noc.DimX, cfg.Noc.DimY = 2, 2
		case 2:
			cfg.Noc.DimX, cfg.Noc.DimY = 2, 1
		case 1:
			cfg.Noc.DimX, cfg.Noc.DimY = 1, 1
		default:
			fmt.Fprintln(os.Stderr, "protozoa-verify: cores must be 1, 2, 4, or 16")
			os.Exit(1)
		}

		streams := make([]trace.Stream, *cores)
		for c := 0; c < *cores; c++ {
			rng := trace.NewRNG(*seed*1000 + uint64(c))
			recs := make([]trace.Access, 0, perCore)
			for i := 0; i < perCore; i++ {
				addr := mem.Addr(rng.Intn(*regions)*64 + rng.Intn(8)*8)
				kind := trace.Load
				if rng.Intn(100) < *storePct {
					kind = trace.Store
				}
				recs = append(recs, trace.Access{Kind: kind, Addr: addr, PC: uint64(0x400 + rng.Intn(8)*4)})
			}
			streams[c] = trace.NewSliceStream(recs)
		}
		sys, err := core.NewSystem(cfg, streams)
		if err != nil {
			fmt.Fprintln(os.Stderr, "protozoa-verify:", err)
			os.Exit(1)
		}
		chk := core.NewChecker(sys)
		if err := sys.Run(); err != nil {
			fmt.Fprintf(os.Stderr, "protozoa-verify: %s: %v\n", p, err)
			failed = true
			continue
		}
		status := "OK"
		if chk.Err() != nil {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-15s %8d accesses  %8d loads checked  %8d quiescent scans  %s\n",
			p, sys.Stats().Accesses, chk.Loads, chk.Checks, status)
		for _, v := range chk.Violations() {
			fmt.Printf("  violation: %s\n", v)
		}
	}
	if failed {
		os.Exit(1)
	}
}
