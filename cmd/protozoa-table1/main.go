// protozoa-table1 regenerates the paper's Table 1: conventional MESI
// behaviour (MPKI trend, invalidation trend, optimal size, used-data
// fraction) as the fixed block size sweeps 16 -> 32 -> 64 -> 128 bytes.
//
// Usage:
//
//	protozoa-table1 [-cores 16] [-scale 2] [-workloads a,b,c]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"protozoa"
	"protozoa/internal/runner"
)

func main() {
	cores := flag.Int("cores", 16, "number of cores (1, 2, 4, or 16)")
	scale := flag.Int("scale", 2, "workload iteration multiplier")
	subset := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	seed := flag.Uint64("seed", 0, "trace-randomization seed (0 = canonical)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent sweep cells (the table is identical at any setting)")
	progress := flag.Bool("progress", false, "stream per-cell wall-time/event-count lines and a summary to stderr")
	cacheOn := flag.Bool("cache", true, "memoize sweep cells in the in-process result cache")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory; warm re-runs resume from it")
	version := flag.Bool("version", false, "print build provenance (result-cache schema and code stamp) and exit")
	flag.Parse()

	if *version {
		fmt.Println(runner.VersionString())
		return
	}

	o := protozoa.Options{Cores: *cores, Scale: *scale, TraceSeed: *seed, Jobs: *jobs}
	if *progress {
		o.Progress = os.Stderr
	}
	if *subset != "" {
		o.Workloads = strings.Split(*subset, ",")
	}
	cache, err := protozoa.OpenCache(*cacheOn, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-table1:", err)
		os.Exit(1)
	}
	o.Cache = cache
	res, err := protozoa.CollectTable1(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-table1:", err)
		os.Exit(1)
	}
	fmt.Print(res.Render())
}
