// protozoa-report reproduces the paper's entire evaluation in one
// command — verification, the Section 2 profile, Table 1, Figures
// 9-15, and the headline geomeans — as a self-contained markdown
// document on stdout.
//
// Usage:
//
//	protozoa-report > report.md
//	protozoa-report -scale 4 -workloads linear-regression,histogram
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"protozoa"
	"protozoa/internal/harness"
)

func main() {
	cores := flag.Int("cores", 16, "number of cores (1, 2, 4, or 16)")
	scale := flag.Int("scale", 2, "workload iteration multiplier")
	subset := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	seed := flag.Uint64("seed", 0, "trace-randomization seed (0 = canonical)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "concurrent matrix cells (the report is identical at any setting)")
	progress := flag.Bool("progress", false, "stream per-cell wall-time/event-count lines and a summary to stderr")
	cacheOn := flag.Bool("cache", true, "memoize matrix cells in the in-process result cache")
	cacheDir := flag.String("cache-dir", "", "persistent result-cache directory; warm re-runs resume from it")
	flag.Parse()

	o := protozoa.Options{Cores: *cores, Scale: *scale, TraceSeed: *seed, Jobs: *jobs}
	if *progress {
		o.Progress = os.Stderr
	}
	if *subset != "" {
		o.Workloads = strings.Split(*subset, ",")
	}
	cache, err := protozoa.OpenCache(*cacheOn, *cacheDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-report:", err)
		os.Exit(1)
	}
	o.Cache = cache
	if err := harness.GenerateReport(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-report:", err)
		os.Exit(1)
	}
}
