// protozoa-trace captures built-in workloads as trace files (the
// equivalent of the paper's Pin-generated traces), inspects them, and
// replays them through the simulator.
//
// Usage:
//
//	protozoa-trace -dump -workload canneal -o canneal.pztr
//	protozoa-trace -info canneal.pztr
//	protozoa-trace -run canneal.pztr -protocol mw
package main

import (
	"flag"
	"fmt"
	"os"

	"protozoa/internal/core"
	"protozoa/internal/harness"
	"protozoa/internal/runner"
	"protozoa/internal/trace"
	"protozoa/internal/workloads"
)

func main() {
	dump := flag.Bool("dump", false, "capture a workload to a trace file")
	workload := flag.String("workload", "linear-regression", "workload to capture (with -dump)")
	out := flag.String("o", "trace.pztr", "output path (with -dump)")
	info := flag.String("info", "", "print a trace file's summary")
	run := flag.String("run", "", "replay a trace file through the simulator")
	proto := flag.String("protocol", "mw", "protocol for -run: mesi, sw, swmr, mw")
	cores := flag.Int("cores", 16, "cores for -dump (1, 2, 4, or 16)")
	scale := flag.Int("scale", 2, "workload scale for -dump")
	flag.Parse()

	switch {
	case *dump:
		if err := doDump(*workload, *out, *cores, *scale); err != nil {
			fail(err)
		}
	case *info != "":
		if err := doInfo(*info); err != nil {
			fail(err)
		}
	case *run != "":
		if err := doRun(*run, *proto); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "protozoa-trace: one of -dump, -info, or -run is required")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "protozoa-trace:", err)
	os.Exit(1)
}

func doDump(workload, out string, cores, scale int) error {
	spec, err := workloads.Get(workload)
	if err != nil {
		return err
	}
	streams := spec.Streams(cores, scale)
	perCore := make([][]trace.Access, len(streams))
	for c, s := range streams {
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			perCore[c] = append(perCore[c], a)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteTraces(f, perCore); err != nil {
		return err
	}
	total := 0
	for _, r := range perCore {
		total += len(r)
	}
	fmt.Printf("wrote %s: %d cores, %d records\n", out, len(perCore), total)
	return f.Close()
}

func doInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	perCore, err := trace.ReadTraces(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d cores\n", path, len(perCore))
	for c, recs := range perCore {
		loads, stores, barriers := 0, 0, 0
		for _, a := range recs {
			switch a.Kind {
			case trace.Load:
				loads++
			case trace.Store:
				stores++
			case trace.Barrier:
				barriers++
			}
		}
		fmt.Printf("  core %2d: %7d records (%d loads, %d stores, %d barriers)\n",
			c, len(recs), loads, stores, barriers)
	}
	return nil
}

func doRun(path, proto string) error {
	ps, err := runner.ParseProtocols(proto)
	if err != nil {
		return err
	}
	if len(ps) != 1 {
		return fmt.Errorf("-run replays under exactly one protocol, got %q", proto)
	}
	p := ps[0]
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	streams, err := trace.ReadStreams(f)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(p)
	if err := runner.ConfigureCores(&cfg, len(streams)); err != nil {
		return fmt.Errorf("trace has %d cores: %w", len(streams), err)
	}
	sys, err := core.NewSystem(cfg, streams)
	if err != nil {
		return err
	}
	if err := sys.Run(); err != nil {
		return err
	}
	fmt.Print(harness.RenderStats(path, p, sys.Stats()))
	return nil
}
