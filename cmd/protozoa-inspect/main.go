// protozoa-inspect reads a flight log recorded by protozoa-sim -flight
// and reconstructs what the protocol did: per-transaction timelines
// with per-phase dwell times, raw record transcripts, or a validity
// check. Filters cut the log down to one region, address, core, or
// cycle window before rendering.
//
// Usage:
//
//	protozoa-inspect flight.pzfl                 per-transaction timelines
//	protozoa-inspect -records flight.pzfl        raw record transcript
//	protozoa-inspect -summary flight.pzfl        header + per-kind counts
//	protozoa-inspect -check flight.pzfl          validate, exit nonzero if corrupt
//	protozoa-inspect -region 17 -records f.pzfl  one region's causal history
//	protozoa-inspect -addr 0x4400 f.pzfl         filter by address (maps to its region)
//	protozoa-inspect -core 3 -cycles 1000:2000 f.pzfl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"protozoa/internal/obs/flight"
)

func main() {
	region := flag.Int64("region", -1, "keep only records for this region id")
	addr := flag.String("addr", "", "keep only records for the region containing this byte address (hex ok)")
	core := flag.Int("core", -1, "keep only records involving this core (as source or requester)")
	cycles := flag.String("cycles", "", "keep only records in this cycle window, as START:END (either side may be empty)")
	records := flag.Bool("records", false, "print the raw record transcript instead of transaction timelines")
	last := flag.Int("last", 0, "print only the last N entries (0 = all)")
	summary := flag.Bool("summary", false, "print the log header and per-kind record counts, then exit")
	check := flag.Bool("check", false, "validate the log (format, field counts, cycle order) and print one status line")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: protozoa-inspect [flags] flight.pzfl   (or - for stdin)")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), options{
		region: *region, addr: *addr, core: *core, cycles: *cycles,
		records: *records, last: *last, summary: *summary, check: *check,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-inspect:", err)
		os.Exit(1)
	}
}

type options struct {
	region  int64
	addr    string
	core    int
	cycles  string
	records bool
	last    int
	summary bool
	check   bool
}

func run(path string, opt options) error {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	meta, recs, err := flight.ReadLog(in)
	if err != nil {
		return err
	}
	if opt.check {
		return checkLog(&meta, recs)
	}
	if opt.summary {
		printSummary(&meta, recs)
		return nil
	}

	recs, err = filter(&meta, recs, opt)
	if err != nil {
		return err
	}
	names := meta.Names()
	if opt.records {
		if opt.last > 0 && len(recs) > opt.last {
			recs = recs[len(recs)-opt.last:]
		}
		return flight.WriteTranscript(os.Stdout, recs, names)
	}
	printTxns(flight.Reconstruct(recs), names, opt.last)
	return nil
}

// checkLog validates what ReadLog does not: the record count matches
// the header and the merged stream is cycle-ordered (the worker-count
// invariance guarantee). Parse errors already surfaced in ReadLog.
func checkLog(meta *flight.Meta, recs []flight.Record) error {
	if len(recs) != meta.Records {
		return fmt.Errorf("header says %d records, file has %d", meta.Records, len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Cycle < recs[i-1].Cycle {
			return fmt.Errorf("record %d: cycle %d after %d — log is not cycle-ordered",
				i, recs[i].Cycle, recs[i-1].Cycle)
		}
	}
	txns := flight.Reconstruct(recs)
	open := 0
	for i := range txns {
		if txns[i].Open {
			open++
		}
	}
	var span string
	if len(recs) > 0 {
		span = fmt.Sprintf(", cycles %d..%d", recs[0].Cycle, recs[len(recs)-1].Cycle)
	}
	fmt.Printf("ok: %s %s, %d cores, %d records%s, %d txns (%d open), %d dropped at record time\n",
		meta.Protocol, meta.Format, meta.Cores, len(recs), span, len(txns), open, meta.Dropped)
	return nil
}

func printSummary(meta *flight.Meta, recs []flight.Record) {
	fmt.Printf("protocol    %s\n", meta.Protocol)
	fmt.Printf("cores       %d\n", meta.Cores)
	fmt.Printf("region      %d bytes\n", meta.RegionBytes)
	fmt.Printf("records     %d (%d dropped at record time)\n", len(recs), meta.Dropped)
	if len(recs) > 0 {
		fmt.Printf("cycles      %d..%d\n", recs[0].Cycle, recs[len(recs)-1].Cycle)
	}
	counts := make([]int, len(meta.Kinds))
	for i := range recs {
		if k := int(recs[i].Kind); k < len(counts) {
			counts[k]++
		}
	}
	fmt.Printf("by kind:\n")
	for k, n := range counts {
		if n > 0 {
			fmt.Printf("  %-14s %d\n", meta.Kinds[k], n)
		}
	}
}

func filter(meta *flight.Meta, recs []flight.Record, opt options) ([]flight.Record, error) {
	region := opt.region
	if opt.addr != "" {
		a, err := strconv.ParseUint(opt.addr, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("bad -addr %q (decimal or 0x-prefixed hex): %w", opt.addr, err)
		}
		if meta.RegionBytes <= 0 {
			return nil, fmt.Errorf("log header has no region size; cannot map -addr")
		}
		r := int64(a / uint64(meta.RegionBytes))
		if region >= 0 && region != r {
			return nil, fmt.Errorf("-region %d and -addr %s (region %d) disagree", region, opt.addr, r)
		}
		region = r
	}
	lo, hi, err := parseWindow(opt.cycles)
	if err != nil {
		return nil, err
	}
	out := recs[:0]
	for i := range recs {
		r := recs[i]
		if region >= 0 && r.Region != uint64(region) {
			continue
		}
		if opt.core >= 0 && int(r.Src) != opt.core && int(r.Req) != opt.core {
			continue
		}
		if uint64(r.Cycle) < lo || uint64(r.Cycle) > hi {
			continue
		}
		out = append(out, r)
	}
	return out, nil
}

func parseWindow(s string) (lo, hi uint64, err error) {
	hi = ^uint64(0)
	if s == "" {
		return lo, hi, nil
	}
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("bad -cycles %q: want START:END", s)
	}
	if a != "" {
		if lo, err = strconv.ParseUint(a, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("bad -cycles start %q: %w", a, err)
		}
	}
	if b != "" {
		if hi, err = strconv.ParseUint(b, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("bad -cycles end %q: %w", b, err)
		}
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("bad -cycles %q: start after end", s)
	}
	return lo, hi, nil
}

// printTxns renders reconstructed transactions, one line each plus the
// phase dwell breakdown. The dwells sum to the total latency exactly
// (the same clamp algebra as the simulator's latency breakdown), so
// summing a column over a run reproduces the per-phase report.
func printTxns(txns []flight.Txn, names *flight.Names, last int) {
	if last > 0 && len(txns) > last {
		txns = txns[len(txns)-last:]
	}
	if len(txns) == 0 {
		fmt.Println("no transactions in the filtered window")
		return
	}
	fmt.Printf("%-6s %-5s %-8s %-10s %-10s %-10s %8s | %s\n",
		"txn", "core", "region", "request", "issue", "complete", "total",
		strings.Join(flight.PhaseNames[:], " "))
	for i := range txns {
		t := &txns[i]
		req := names.Sub(t.Sub)
		if req == "" {
			req = "?"
		}
		if t.Open {
			fmt.Printf("%-6d %-5d %-8d %-10s %-10d %-10s %8s | still open\n",
				i, t.Core, t.Region, req, t.Issue, "-", "-")
			continue
		}
		var dwells []string
		for p, d := range t.Dwell {
			dwells = append(dwells, fmt.Sprintf("%s=%d", flight.PhaseNames[p], d))
		}
		fmt.Printf("%-6d %-5d %-8d %-10s %-10d %-10d %8d | %s\n",
			i, t.Core, t.Region, req, t.Issue, t.Complete, t.Total(),
			strings.Join(dwells, " "))
	}
}
