// protozoa-sim runs one workload of the built-in suite under one
// coherence protocol and prints the full measurement report.
//
// Usage:
//
//	protozoa-sim [-workload linear-regression] [-protocol mw] [-cores 16] [-scale 2]
//	protozoa-sim -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"protozoa"
	"protozoa/internal/core"
	"protozoa/internal/engine"
	"protozoa/internal/harness"
	"protozoa/internal/obs"
	"protozoa/internal/runner"
	"protozoa/internal/workloads"
)

func parseProtocol(s string) (protozoa.Protocol, error) {
	switch strings.ToLower(s) {
	case "mesi":
		return protozoa.MESI, nil
	case "sw", "protozoa-sw":
		return protozoa.ProtozoaSW, nil
	case "swmr", "sw+mr", "protozoa-sw+mr":
		return protozoa.ProtozoaSWMR, nil
	case "mw", "protozoa-mw":
		return protozoa.ProtozoaMW, nil
	}
	return 0, fmt.Errorf("unknown protocol %q (mesi, sw, swmr, mw)", s)
}

func main() {
	workload := flag.String("workload", "linear-regression", "workload name (-list to enumerate)")
	proto := flag.String("protocol", "mw", "coherence protocol: mesi, sw, swmr, mw")
	cores := flag.Int("cores", 16, "number of cores (1, 2, 4, or 16)")
	scale := flag.Int("scale", 2, "workload iteration multiplier")
	workers := flag.Int("workers", 0, "parallel window-loop goroutines (0 = sequential engine; results are byte-identical for any value >= 1)")
	list := flag.Bool("list", false, "list the workload suite and exit")
	msglog := flag.Int("msglog", 0, "dump the last N coherence messages after the run")
	flightOut := flag.String("flight", "", "record a protocol flight log (every message, state transition, and directory step) and write it to this file for protozoa-inspect")
	flightCap := flag.Int("flight-cap", 0, "flight recorder capacity in records (0 = default 32Ki; oldest records drop on wrap)")
	stallCycles := flag.Int("stall-cycles", 0, "arm the stall watchdog: dump any transaction outstanding longer than N cycles to stderr")
	jsonOut := flag.Bool("json", false, "emit the raw stats as JSON instead of the report")
	timeline := flag.Int("timeline", 0, "sample the run every N cycles and print per-window rates")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (Perfetto-loadable) to this file")
	traceCap := flag.Int("trace-cap", 0, "event recorder capacity (0 = default 1Mi events)")
	metricsOut := flag.String("metrics-out", "", "write the sampled metrics registry as JSON to this file")
	attribOut := flag.Bool("attrib", false, "print the traffic-attribution report (utilization, sharing patterns, top offenders)")
	serve := flag.String("serve", "", "serve live Prometheus metrics at this address (e.g. 127.0.0.1:8080) for the run's duration")
	selfProf := flag.Bool("self-prof", false, "profile the simulator itself (PDES rounds, queue introspection); summary to stderr, results unchanged")
	selfProfOut := flag.String("self-prof-out", "", "write the self-profile report as JSON to this file (implies -self-prof)")
	selfProfTrace := flag.String("self-prof-trace", "", "write the self-profile's wall-clock round spans as Chrome trace JSON to this file (implies -self-prof)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	version := flag.Bool("version", false, "print build provenance (result-cache schema and code stamp) and exit")
	flag.Parse()

	if *version {
		fmt.Println(runner.VersionString())
		return
	}
	if *list {
		fmt.Printf("%-24s %-18s %-11s %s\n", "name", "models", "suite", "signature")
		for _, w := range protozoa.Workloads() {
			fmt.Printf("%-24s %-18s %-11s %s\n", w.Name, w.Models, w.Suite, w.About)
		}
		for _, w := range workloads.Micros() {
			fmt.Printf("%-24s %-18s %-11s %s\n", w.Name, w.Models, w.Suite, w.About)
		}
		return
	}

	p, err := parseProtocol(*proto)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-sim:", err)
		os.Exit(1)
	}
	stopProfiles, err := runner.StartProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-sim:", err)
		os.Exit(1)
	}
	doSelfProf := *selfProf || *selfProfOut != "" || *selfProfTrace != ""
	if *msglog > 0 || *timeline > 0 || *traceOut != "" || *metricsOut != "" || *attribOut || *serve != "" || doSelfProf || *flightOut != "" || *stallCycles > 0 {
		err := runInstrumented(*workload, p, *cores, *scale, *workers, *msglog, *timeline, instrumentOut{
			traceOut: *traceOut, traceCap: *traceCap, metricsOut: *metricsOut,
			attrib: *attribOut, serve: *serve,
			selfProf: doSelfProf, selfProfOut: *selfProfOut, selfProfTrace: *selfProfTrace,
			flightOut: *flightOut, flightCap: *flightCap, stallCycles: *stallCycles,
		})
		if perr := stopProfiles(); err == nil {
			err = perr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "protozoa-sim:", err)
			os.Exit(1)
		}
		return
	}
	st, err := protozoa.Run(*workload, p, protozoa.Options{Cores: *cores, Scale: *scale, Workers: *workers})
	if perr := stopProfiles(); err == nil {
		err = perr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "protozoa-sim:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st); err != nil {
			fmt.Fprintln(os.Stderr, "protozoa-sim:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(harness.RenderStats(*workload, core.Protocol(p), st))
}

// instrumentOut carries the observability output destinations.
type instrumentOut struct {
	traceOut      string
	traceCap      int
	metricsOut    string
	attrib        bool
	serve         string
	selfProf      bool
	selfProfOut   string
	selfProfTrace string
	flightOut     string
	flightCap     int
	stallCycles   int
}

// runInstrumented builds the system directly so protocol transcripts,
// timelines, event traces, and metrics can be captured and dumped.
func runInstrumented(workload string, p protozoa.Protocol, cores, scale, workers, msglog, timeline int, out instrumentOut) error {
	spec, err := workloads.Get(workload)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(core.Protocol(p))
	cfg.Workers = workers
	if err := runner.ConfigureCores(&cfg, cores); err != nil {
		return err
	}
	sys, err := core.NewSystem(cfg, spec.Streams(cores, scale))
	if err != nil {
		return err
	}
	if msglog > 0 {
		sys.EnableMessageLog(msglog)
	}
	if timeline > 0 {
		sys.EnableTimeline(engine.Cycle(timeline))
	}
	if out.traceOut != "" {
		sys.EnableEventTrace(out.traceCap)
	}
	if out.metricsOut != "" {
		sys.EnableMetrics()
	}
	if out.attrib {
		sys.EnableAttribution()
	}
	if out.selfProf {
		sys.EnableSelfProf()
	}
	if out.flightOut != "" {
		sys.EnableFlightRecorder(out.flightCap)
	}
	if out.stallCycles > 0 {
		// Watchdog dumps stream to stderr so stdout stays byte-identical
		// across worker counts (and with the flag off).
		sys.EnableStallWatchdog(engine.Cycle(out.stallCycles), os.Stderr)
	}
	if out.serve != "" {
		// The endpoint exposes the attribution gauges, so arm the
		// tracker alongside the registry.
		sys.EnableAttribution()
		reg := sys.EnableMetrics()
		live, err := obs.NewLiveServer(out.serve, reg.Descs())
		if err != nil {
			return err
		}
		// Announce before Run so a watcher can connect while the
		// simulation is still going.
		fmt.Fprintf(os.Stderr, "protozoa-sim: serving live metrics at http://%s/metrics\n", live.Addr())
		sys.SetSampleHook(func(cycle uint64) { live.Publish(cycle, reg.Eval()) })
		defer func() {
			if cerr := live.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "protozoa-sim: metrics server:", cerr)
			}
		}()
		defer func() {
			// Final snapshot so late scrapes see the completed run.
			live.Publish(sys.Stats().ExecCycles, reg.Eval())
		}()
	}
	if err := sys.Run(); err != nil {
		return err
	}
	if out.traceOut != "" {
		if err := writeTo(out.traceOut, sys.WriteChromeTrace); err != nil {
			return err
		}
	}
	if out.metricsOut != "" {
		if err := writeTo(out.metricsOut, sys.Metrics().WriteJSON); err != nil {
			return err
		}
	}
	if out.selfProf {
		report := sys.SelfProf().Report()
		// The summary goes to stderr so the measurement report on
		// stdout stays byte-identical with the flag off.
		report.WriteSummary(os.Stderr)
		if out.selfProfOut != "" {
			if err := writeTo(out.selfProfOut, report.WriteJSON); err != nil {
				return err
			}
		}
		if out.selfProfTrace != "" {
			// The meta-trace is wall-clock simulator time; it never mixes
			// into the simulated machine's -trace-out file.
			if err := writeTo(out.selfProfTrace, sys.SelfProf().WriteChromeTrace); err != nil {
				return err
			}
		}
	}
	fmt.Print(harness.RenderStats(workload, core.Protocol(p), sys.Stats()))
	if timeline > 0 {
		fmt.Printf("\ntimeline (%d-cycle windows):\n", timeline)
		fmt.Printf("  %10s %10s %10s %12s\n", "cycle", "accesses", "misses", "traffic(B)")
		var prev core.TimelineSample
		for _, s := range sys.Timeline() {
			fmt.Printf("  %10d %10d %10d %12d\n",
				s.Cycle, s.Accesses-prev.Accesses, s.Misses-prev.Misses, s.Traffic-prev.Traffic)
			prev = s
		}
	}
	if msglog > 0 {
		fmt.Printf("\nlast %d coherence messages:\n", msglog)
		for _, e := range sys.MessageLog() {
			fmt.Println(" ", e)
		}
	}
	if out.attrib {
		fmt.Printf("\n%s", harness.RenderAttribution(sys.Attribution(), 10))
	}
	if out.flightOut != "" {
		if err := writeTo(out.flightOut, sys.WriteFlightLog); err != nil {
			return err
		}
		fmt.Printf("\nflight recorder: %d records kept, %d dropped -> %s\n",
			sys.FlightRecorder().Len(), sys.FlightDropped(), out.flightOut)
	}
	if out.stallCycles > 0 {
		fmt.Printf("\nstall watchdog: %d transaction(s) exceeded %d cycles\n",
			len(sys.Stalls()), out.stallCycles)
	}
	return nil
}

// writeTo streams a dump function into a freshly created file.
func writeTo(path string, dump func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := dump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
