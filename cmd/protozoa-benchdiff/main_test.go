package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
BenchmarkSimulatorThroughputParallel/sequential-1 	      45	  26305847 ns/op	   1216456 accesses/s	12110150 B/op	   28481 allocs/op
BenchmarkSimulatorThroughputParallel/sequential-1 	      45	  27105847 ns/op	   1180456 accesses/s	12110150 B/op	   28482 allocs/op
BenchmarkSimulatorThroughputParallel/sequential-1 	      45	  25005847 ns/op	   1279456 accesses/s	12110150 B/op	   28480 allocs/op
BenchmarkSimulatorThroughputParallel/workers1-1   	      30	  40305847 ns/op	    793456 accesses/s	12655740 B/op	   35421 allocs/op
PASS
`

func TestParseBenchMedians(t *testing.T) {
	samples, order := parseBench(splitLines(sample))
	if len(order) != 2 || order[0] != "sequential" || order[1] != "workers1" {
		t.Fatalf("order = %v", order)
	}
	if got := median(samples["sequential"]["ns_per_op"]); got != 26305847 {
		t.Errorf("sequential ns/op median = %v, want 26305847", got)
	}
	if got := median(samples["sequential"]["allocs_per_op"]); got != 28481 {
		t.Errorf("sequential allocs/op median = %v, want 28481", got)
	}
	if got := median(samples["workers1"]["accesses_per_s"]); got != 793456 {
		t.Errorf("workers1 accesses/s median = %v, want 793456", got)
	}
}

func splitLines(s string) []string {
	var out []string
	for len(s) > 0 {
		i := 0
		for i < len(s) && s[i] != '\n' {
			i++
		}
		out = append(out, s[:i])
		if i == len(s) {
			break
		}
		s = s[i+1:]
	}
	return out
}

// TestFindBaselines checks the generic walk over a prior snapshot's
// JSON: results blocks are found wherever they nest, and a snapshot's
// own carried-forward baseline block is skipped.
func TestFindBaselines(t *testing.T) {
	raw := `{
	  "pdes_alloc_overhead": {
	    "baseline_median_of_5_BENCH_6": {
	      "sequential": {"ns_per_op": 40410286, "allocs_per_op": 43970}
	    },
	    "after_median_of_5": {
	      "sequential": {"ns_per_op": 43340905, "accesses_per_s": 738333},
	      "workers1":   {"ns_per_op": 96017699}
	    }
	  }
	}`
	var v any
	if err := json.Unmarshal([]byte(raw), &v); err != nil {
		t.Fatal(err)
	}
	base := map[string]map[string]float64{}
	findBaselines(v, base)
	if got := base["sequential"]["ns_per_op"]; got != 43340905 {
		t.Errorf("sequential ns_per_op = %v, want the after block's 43340905", got)
	}
	if got := base["sequential"]["accesses_per_s"]; got != 738333 {
		t.Errorf("sequential accesses_per_s = %v, want 738333", got)
	}
	if got := base["workers1"]["ns_per_op"]; got != 96017699 {
		t.Errorf("workers1 ns_per_op = %v, want 96017699", got)
	}
}

func gateMetrics(accessesPerS, nsPerOp float64) map[string]float64 {
	m := map[string]float64{}
	if accessesPerS > 0 {
		m["accesses_per_s"] = accessesPerS
	}
	if nsPerOp > 0 {
		m["ns_per_op"] = nsPerOp
	}
	return m
}

func TestGateFailures(t *testing.T) {
	base := map[string]map[string]float64{
		"sequential": gateMetrics(1_000_000, 40_000_000),
		"workers4":   gateMetrics(2_000_000, 20_000_000),
	}

	t.Run("within-band passes", func(t *testing.T) {
		got := gateFailures(base, map[string]map[string]float64{
			"sequential": gateMetrics(950_000, 42_000_000), // -5% throughput
			"workers4":   gateMetrics(2_500_000, 16_000_000),
		}, 10)
		if len(got) != 0 {
			t.Errorf("unexpected failures: %v", got)
		}
	})

	t.Run("throughput drop beyond band fails", func(t *testing.T) {
		got := gateFailures(base, map[string]map[string]float64{
			"sequential": gateMetrics(800_000, 50_000_000), // -20%
			"workers4":   gateMetrics(2_000_000, 20_000_000),
		}, 10)
		if len(got) != 1 || !strings.Contains(got[0], "sequential") ||
			!strings.Contains(got[0], "accesses_per_s") {
			t.Errorf("failures = %v", got)
		}
	})

	t.Run("falls back to ns_per_op", func(t *testing.T) {
		old := map[string]map[string]float64{"sequential": gateMetrics(0, 40_000_000)}
		got := gateFailures(old, map[string]map[string]float64{
			"sequential": gateMetrics(900_000, 50_000_000), // +25% ns/op
		}, 10)
		if len(got) != 1 || !strings.Contains(got[0], "ns_per_op") {
			t.Errorf("failures = %v", got)
		}
		got = gateFailures(old, map[string]map[string]float64{
			"sequential": gateMetrics(900_000, 41_000_000), // +2.5% ns/op
		}, 10)
		if len(got) != 0 {
			t.Errorf("unexpected failures: %v", got)
		}
	})

	t.Run("benchmarks absent from the baseline are skipped", func(t *testing.T) {
		got := gateFailures(base, map[string]map[string]float64{
			"sequential": gateMetrics(1_000_000, 40_000_000),
			"workers16":  gateMetrics(1, 1_000_000_000), // new benchmark, no baseline
		}, 10)
		if len(got) != 0 {
			t.Errorf("unexpected failures: %v", got)
		}
	})

	t.Run("nothing comparable fails closed", func(t *testing.T) {
		got := gateFailures(base, map[string]map[string]float64{
			"renamed": gateMetrics(1_000_000, 40_000_000),
		}, 10)
		if len(got) != 1 || !strings.Contains(got[0], "no comparable") {
			t.Errorf("failures = %v", got)
		}
	})
}

func TestNextOutName(t *testing.T) {
	for in, want := range map[string]string{
		"BENCH_7.json":      "BENCH_8.json",
		"sub/BENCH_19.json": "sub/BENCH_20.json",
		"odd.json":          "BENCH_next.json",
	} {
		if got := nextOutName(in); got != want {
			t.Errorf("nextOutName(%q) = %q, want %q", in, got, want)
		}
	}
}
