// protozoa-benchdiff compares `go test -bench` output against a
// committed BENCH_*.json baseline and emits the next BENCH_*.json.
//
// It reads the raw benchmark output (typically -count 5) on stdin,
// takes the per-benchmark median of every reported metric, prints a
// delta table against the baseline, and writes a stable-schema JSON
// snapshot. It is the in-repo fallback for benchstat: no external
// tooling, no new dependencies, deterministic output.
//
//	go test -run '^$' -bench SimulatorThroughputParallel -benchmem \
//	    -benchtime 2s -count 5 . | protozoa-benchdiff \
//	    -baseline BENCH_7.json -out BENCH_8.json -change "..."
//
// Baselines are located generically: any JSON object in the baseline
// file that contains a numeric "ns_per_op" is treated as the metrics
// of the benchmark named by its key (e.g. "sequential", "workers1"),
// unless it sits under a key containing "baseline" — so a snapshot's
// own carried-forward baseline block is not mistaken for its results.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line of `go test -bench` output:
// name (with optional -GOMAXPROCS suffix), iteration count, then
// whitespace-separated value/unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+(.+)$`)

// unitKey maps a `go test` metric unit to its stable JSON key.
func unitKey(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	case "accesses/s":
		return "accesses_per_s"
	}
	r := strings.NewReplacer("/", "_per_", "%", "pct", "-", "_", ">", "_")
	return r.Replace(unit)
}

// shortName strips the Benchmark prefix and parent path: the leaf
// sub-benchmark name used as the JSON key ("sequential", "workers4").
func shortName(full string) string {
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return strings.TrimPrefix(full, "Benchmark")
}

// parseBench collects every metric sample per benchmark from raw
// `go test -bench` output. Returned maps: name -> metric -> samples.
func parseBench(lines []string) (map[string]map[string][]float64, []string) {
	samples := map[string]map[string][]float64{}
	var order []string
	for _, line := range lines {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := shortName(m[1])
		fields := strings.Fields(m[3])
		if samples[name] == nil {
			samples[name] = map[string][]float64{}
			order = append(order, name)
		}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			k := unitKey(fields[i+1])
			samples[name][k] = append(samples[name][k], v)
		}
	}
	return samples, order
}

// median returns the middle sample (lower of two for even counts, so
// the result is always a value that actually occurred).
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[(len(s)-1)/2]
}

// findBaselines walks arbitrary baseline JSON for objects that carry a
// numeric ns_per_op, keyed by benchmark short name. Subtrees under a
// key containing "baseline" are skipped (they are the previous
// snapshot's own comparison block, not its results).
func findBaselines(v any, out map[string]map[string]float64) {
	obj, ok := v.(map[string]any)
	if !ok {
		return
	}
	for k, child := range obj {
		if strings.Contains(strings.ToLower(k), "baseline") {
			continue
		}
		if m, ok := child.(map[string]any); ok {
			if _, has := m["ns_per_op"].(float64); has {
				metrics := map[string]float64{}
				for mk, mv := range m {
					if f, ok := mv.(float64); ok {
						metrics[mk] = f
					}
				}
				out[k] = metrics
				continue
			}
		}
		findBaselines(child, out)
	}
}

// nextOutName derives BENCH_(N+1).json from a BENCH_N.json baseline
// path, so bench-compare stays self-maintaining as snapshots accrue.
func nextOutName(baseline string) string {
	re := regexp.MustCompile(`^(.*BENCH_)(\d+)(\.json)$`)
	m := re.FindStringSubmatch(baseline)
	if m == nil {
		return "BENCH_next.json"
	}
	n, _ := strconv.Atoi(m[2])
	return m[1] + strconv.Itoa(n+1) + m[3]
}

// cpuModel reads the host CPU model from /proc/cpuinfo (best effort).
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

func pctDelta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

// gateFailures evaluates the perf-regression gate: each benchmark
// present in both runs is compared on throughput (accesses_per_s,
// higher is better), falling back to ns_per_op (lower is better) when
// the baseline predates the throughput metric. A benchmark fails when
// it is worse than the baseline median by more than tolPct percent;
// improvements and within-band noise pass. The returned messages are
// the failures — empty means the gate is green.
func gateFailures(base, medians map[string]map[string]float64, tolPct float64) []string {
	var names []string
	for name := range medians {
		if _, ok := base[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var fails []string
	checked := 0
	for _, name := range names {
		nv, ov := medians[name], base[name]
		if n, o := nv["accesses_per_s"], ov["accesses_per_s"]; n > 0 && o > 0 {
			checked++
			if n < o*(1-tolPct/100) {
				fails = append(fails, fmt.Sprintf(
					"%s: accesses_per_s %.0f -> %.0f (%.1f%% below baseline, tolerance %.0f%%)",
					name, o, n, 100*(o-n)/o, tolPct))
			}
			continue
		}
		if n, o := nv["ns_per_op"], ov["ns_per_op"]; n > 0 && o > 0 {
			checked++
			if n > o*(1+tolPct/100) {
				fails = append(fails, fmt.Sprintf(
					"%s: ns_per_op %.0f -> %.0f (%.1f%% above baseline, tolerance %.0f%%)",
					name, o, n, 100*(n-o)/o, tolPct))
			}
		}
	}
	if checked == 0 {
		fails = append(fails, "no comparable benchmarks between the baseline and this run")
	}
	return fails
}

func main() {
	baseline := flag.String("baseline", "", "previous BENCH_*.json to diff against (optional)")
	out := flag.String("out", "", "snapshot to write (default: baseline's number + 1)")
	change := flag.String("change", "", "one-line description recorded in the snapshot")
	gate := flag.Float64("gate", 0, "perf-regression gate: exit 1 when throughput is worse than the baseline median by more than this percent; requires -baseline, writes no snapshot unless -out is set")
	flag.Parse()

	if *gate > 0 && *baseline == "" {
		fmt.Fprintln(os.Stderr, "protozoa-benchdiff: -gate requires -baseline")
		os.Exit(1)
	}

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	samples, order := parseBench(lines)
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "protozoa-benchdiff: no benchmark lines on stdin")
		os.Exit(1)
	}

	medians := map[string]map[string]float64{}
	counts := map[string]int{}
	for name, metrics := range samples {
		medians[name] = map[string]float64{}
		for k, xs := range metrics {
			medians[name][k] = median(xs)
			if len(xs) > counts[name] {
				counts[name] = len(xs)
			}
		}
	}

	base := map[string]map[string]float64{}
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "protozoa-benchdiff: %v\n", err)
			os.Exit(1)
		}
		var v any
		if err := json.Unmarshal(raw, &v); err != nil {
			fmt.Fprintf(os.Stderr, "protozoa-benchdiff: %s: %v\n", *baseline, err)
			os.Exit(1)
		}
		findBaselines(v, base)
	}

	// Delta table: one row per (benchmark, metric) present in both runs.
	deltas := map[string]map[string]string{}
	w := bufio.NewWriter(os.Stdout)
	fmt.Fprintf(w, "%-12s %-16s %16s %16s %9s\n", "benchmark", "metric", "old(med)", "new(med)", "delta")
	for _, name := range order {
		keys := make([]string, 0, len(medians[name]))
		for k := range medians[name] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			nv := medians[name][k]
			ov, has := base[name][k]
			if !has {
				fmt.Fprintf(w, "%-12s %-16s %16s %16.0f %9s\n", name, k, "-", nv, "new")
				continue
			}
			d := pctDelta(ov, nv)
			if deltas[name] == nil {
				deltas[name] = map[string]string{}
			}
			deltas[name][k] = fmt.Sprintf("%.0f -> %.0f (%s)", ov, nv, d)
			fmt.Fprintf(w, "%-12s %-16s %16.0f %16.0f %9s\n", name, k, ov, nv, d)
		}
	}
	w.Flush()

	if *gate > 0 {
		fails := gateFailures(base, medians, *gate)
		if len(fails) > 0 {
			for _, f := range fails {
				fmt.Fprintln(os.Stderr, "protozoa-benchdiff: GATE FAIL:", f)
			}
			os.Exit(1)
		}
		fmt.Printf("gate OK: within %.0f%% of %s\n", *gate, *baseline)
		// The gate is a read-only CI check; it emits a snapshot only on
		// explicit request.
		if *out == "" {
			return
		}
	}

	outPath := *out
	if outPath == "" {
		outPath = nextOutName(*baseline)
	}
	snapshot := map[string]any{
		"change":    *change,
		"cpu":       fmt.Sprintf("%s (GOMAXPROCS=%d)", cpuModel(), runtime.GOMAXPROCS(0)),
		"benchmark": "BenchmarkSimulatorThroughputParallel",
		"command":   "make bench-compare (go test -run '^$' -bench SimulatorThroughputParallel -benchmem -benchtime 2s -count 5 .)",
		fmt.Sprintf("median_of_%d", counts[order[0]]): medians,
	}
	if *baseline != "" {
		snapshot["baseline_file"] = *baseline
		snapshot["delta_vs_baseline"] = deltas
	}
	enc, err := json.MarshalIndent(snapshot, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "protozoa-benchdiff: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(outPath, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "protozoa-benchdiff: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", outPath)
}
