// protozoa-profile prints the Section 2 motivation analysis for the
// workload suite: per-region sharing classification (private /
// read-only / false-shared / true-shared) and the spatial footprint —
// the application-intrinsic properties that make fixed-granularity
// hierarchies waste bandwidth and ping-pong falsely shared lines.
//
// Usage:
//
//	protozoa-profile                      # the whole suite, summary table
//	protozoa-profile -workload h2         # one workload, full report
package main

import (
	"flag"
	"fmt"
	"os"

	"protozoa/internal/mem"
	"protozoa/internal/profile"
	"protozoa/internal/workloads"
)

func main() {
	one := flag.String("workload", "", "profile a single workload in detail")
	cores := flag.Int("cores", 16, "number of cores")
	scale := flag.Int("scale", 1, "workload iteration multiplier")
	flag.Parse()

	if *one != "" {
		spec, err := workloads.Get(*one)
		if err != nil {
			fmt.Fprintln(os.Stderr, "protozoa-profile:", err)
			os.Exit(1)
		}
		r := profile.Analyze(spec.Streams(*cores, *scale), mem.DefaultGeometry)
		fmt.Print(r.Render(*one))
		return
	}

	fmt.Printf("%-18s %9s %10s %13s %12s %10s\n",
		"workload", "private", "read-only", "false-shared", "true-shared", "footprint")
	for _, spec := range workloads.All() {
		r := profile.Analyze(spec.Streams(*cores, *scale), mem.DefaultGeometry)
		fmt.Printf("%-18s %8.1f%% %9.1f%% %12.1f%% %11.1f%% %9.0f%%\n",
			spec.Name,
			r.ClassPct(profile.Private), r.ClassPct(profile.ReadOnlyShared),
			r.ClassPct(profile.FalseShared), r.ClassPct(profile.TrueShared),
			r.FootprintPct())
	}
}
