// Package cmd_test builds every CLI binary once and exercises its
// primary paths end to end — the integration layer unit tests cannot
// reach. Skipped under -short (it compiles ten binaries).
package cmd_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

var tools = []string{
	"protozoa-sim", "protozoa-table1", "protozoa-figs", "protozoa-verify",
	"protozoa-trace", "protozoa-profile", "protozoa-sweep", "protozoa-report",
	"protozoa-benchdiff", "protozoa-inspect",
}

// buildAll compiles the binaries into a shared temp dir.
func buildAll(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI integration skipped in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range tools {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./"+tool)
		cmd.Dir = mustSelfDir(t)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, b)
		}
	}
	return dir
}

// mustSelfDir returns the cmd/ directory (this test file's package dir).
func mustSelfDir(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

// startServing launches a -serve driver, parses the advertised
// endpoint address off its stderr, and registers a kill on cleanup.
func startServing(t *testing.T, cmd *exec.Cmd, toolName string) string {
	t.Helper()
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })
	marker := toolName + ": serving live metrics at http://"
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, marker) {
			continue
		}
		addr := strings.TrimSuffix(strings.TrimPrefix(line, marker), "/metrics")
		// Drain the rest of stderr so the child never blocks on a full pipe.
		go io.Copy(io.Discard, stderr)
		return addr
	}
	t.Fatalf("%s never advertised its metrics endpoint (scan err: %v)", toolName, sc.Err())
	return ""
}

// scrapeMetrics polls GET /metrics while the run is in flight until a
// body with at least one published snapshot arrives.
func scrapeMetrics(t *testing.T, addr string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			time.Sleep(50 * time.Millisecond)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode == http.StatusOK &&
			!strings.Contains(string(body), "protozoa_snapshots_total 0") {
			return string(body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("no published metrics snapshot before the deadline")
	return ""
}

// checkPrometheusFormat validates the text exposition format: every
// non-comment line is "name value" with a parseable float.
func checkPrometheusFormat(t *testing.T, body string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("metrics line not `name value`: %q", line)
			continue
		}
		if !strings.HasPrefix(fields[0], "protozoa_") {
			t.Errorf("metric %q missing protozoa_ prefix", fields[0])
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Errorf("metric %q value %q: %v", fields[0], fields[1], err)
		}
	}
}

// waitEndpointDown asserts the endpoint stops answering once the
// driver exits (graceful shutdown, no leaked listener).
func waitEndpointDown(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			return
		}
		resp.Body.Close()
		time.Sleep(50 * time.Millisecond)
	}
	t.Error("metrics endpoint still answering after the driver exited")
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIs(t *testing.T) {
	dir := buildAll(t)
	bin := func(name string) string { return filepath.Join(dir, name) }

	t.Run("sim", func(t *testing.T) {
		out := run(t, bin("protozoa-sim"), "-workload", "fft", "-cores", "4", "-scale", "1", "-protocol", "mw")
		for _, want := range []string{"workload fft under Protozoa-MW", "L1 hits/misses", "miss classes", "energy"} {
			if !strings.Contains(out, want) {
				t.Errorf("sim output missing %q", want)
			}
		}
		out = run(t, bin("protozoa-sim"), "-list")
		if !strings.Contains(out, "linear-regression") || !strings.Contains(out, "micro-ticket-lock") {
			t.Error("sim -list missing workloads")
		}
		out = run(t, bin("protozoa-sim"), "-workload", "fft", "-cores", "4", "-scale", "1", "-json")
		if !strings.Contains(out, "\"L1Misses\"") {
			t.Error("sim -json missing counters")
		}
		out = run(t, bin("protozoa-sim"), "-workload", "fft", "-cores", "4", "-scale", "1", "-msglog", "5", "-timeline", "5000")
		if !strings.Contains(out, "coherence messages") || !strings.Contains(out, "timeline") {
			t.Error("sim instrumentation output incomplete")
		}
		traceOut := filepath.Join(dir, "trace.json")
		metricsOut := filepath.Join(dir, "metrics.json")
		run(t, bin("protozoa-sim"), "-workload", "fft", "-cores", "4", "-scale", "1",
			"-trace-out", traceOut, "-metrics-out", metricsOut)
		var trace struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		data, err := os.ReadFile(traceOut)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &trace); err != nil || len(trace.TraceEvents) == 0 {
			t.Errorf("-trace-out did not produce a parseable trace (%v, %d events)", err, len(trace.TraceEvents))
		}
		var metrics struct {
			Final map[string]float64 `json:"final"`
		}
		data, err = os.ReadFile(metricsOut)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &metrics); err != nil {
			t.Errorf("-metrics-out did not produce parseable JSON: %v", err)
		}
		if _, ok := metrics.Final["event_queue_high_water"]; !ok {
			t.Errorf("metrics.json missing standard gauges: %v", metrics.Final)
		}
	})

	t.Run("table1", func(t *testing.T) {
		out := run(t, bin("protozoa-table1"), "-cores", "4", "-scale", "1", "-workloads", "word-count")
		if !strings.Contains(out, "word-count") || !strings.Contains(out, "optimal") {
			t.Errorf("table1 output:\n%s", out)
		}
	})

	t.Run("figs", func(t *testing.T) {
		csv := filepath.Join(dir, "figs.csv")
		out := run(t, bin("protozoa-figs"), "-fig", "13", "-cores", "4", "-scale", "1",
			"-workloads", "swaptions", "-csv", csv)
		if !strings.Contains(out, "swaptions") {
			t.Errorf("figs output:\n%s", out)
		}
		if data, err := os.ReadFile(csv); err != nil || !strings.Contains(string(data), "mpki") {
			t.Errorf("figs csv: %v", err)
		}
		out = run(t, bin("protozoa-figs"), "-fig", "16", "-cores", "4", "-scale", "1", "-workloads", "swaptions")
		if !strings.Contains(out, "coherence") {
			t.Error("fig 16 missing classification")
		}
	})

	t.Run("verify", func(t *testing.T) {
		out := run(t, bin("protozoa-verify"), "-accesses", "8000", "-cores", "4")
		if strings.Count(out, "OK") != 4 {
			t.Errorf("verify output:\n%s", out)
		}
	})

	t.Run("trace", func(t *testing.T) {
		pztr := filepath.Join(dir, "t.pztr")
		run(t, bin("protozoa-trace"), "-dump", "-workload", "fft", "-cores", "4", "-scale", "1", "-o", pztr)
		out := run(t, bin("protozoa-trace"), "-info", pztr)
		if !strings.Contains(out, "4 cores") {
			t.Errorf("trace -info:\n%s", out)
		}
		out = run(t, bin("protozoa-trace"), "-run", pztr, "-protocol", "mesi")
		if !strings.Contains(out, "under MESI") {
			t.Errorf("trace -run:\n%s", out)
		}
	})

	t.Run("profile", func(t *testing.T) {
		out := run(t, bin("protozoa-profile"), "-cores", "4", "-workload", "canneal")
		if !strings.Contains(out, "true-shared") {
			t.Errorf("profile output:\n%s", out)
		}
	})

	t.Run("sweep", func(t *testing.T) {
		out := run(t, bin("protozoa-sweep"), "-workloads", "fft", "-protocols", "mesi",
			"-knobs", "baseline,crossbar", "-cores", "4")
		if strings.Count(out, "\n") != 3 { // header + 2 rows
			t.Errorf("sweep output:\n%s", out)
		}
	})

	t.Run("sweep-parallel-deterministic", func(t *testing.T) {
		// 2 workloads x 4 protocols x 3 regions = 24 cells; stdout must
		// be byte-identical at any -jobs width. "all,mesi" also pins the
		// duplicate-protocol fix: MESI must not be simulated twice.
		grid := []string{"-workloads", "swaptions,histogram", "-protocols", "all,mesi",
			"-regions", "32,64,128", "-cores", "4"}
		stdout := func(jobs string) string {
			cmd := exec.Command(bin("protozoa-sweep"), append(grid, "-jobs", jobs)...)
			out, err := cmd.Output()
			if err != nil {
				t.Fatalf("sweep -jobs %s: %v", jobs, err)
			}
			return string(out)
		}
		serial := stdout("1")
		parallel := stdout("8")
		if serial != parallel {
			t.Errorf("sweep CSV differs between -jobs 1 and -jobs 8:\n%s\n---\n%s", serial, parallel)
		}
		if n := strings.Count(serial, "\n"); n != 25 { // header + 24 rows, no duplicated MESI
			t.Errorf("sweep grid emitted %d lines, want 25:\n%s", n, serial)
		}
	})

	t.Run("sim-attrib", func(t *testing.T) {
		out := run(t, bin("protozoa-sim"), "-workload", "histogram", "-cores", "4", "-scale", "1", "-attrib")
		for _, want := range []string{"attribution:", "top offenders", "util"} {
			if !strings.Contains(out, want) {
				t.Errorf("sim -attrib output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("sim-serve", func(t *testing.T) {
		cmd := exec.Command(bin("protozoa-sim"),
			"-workload", "histogram", "-cores", "16", "-scale", "60", "-serve", "127.0.0.1:0")
		cmd.Stdout = io.Discard
		addr := startServing(t, cmd, "protozoa-sim")
		body := scrapeMetrics(t, addr)
		checkPrometheusFormat(t, body)
		for _, want := range []string{"protozoa_sim_cycle", "protozoa_attrib_fetched_words", "protozoa_mshr_live"} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %q:\n%s", want, body)
			}
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("sim -serve exited with error: %v", err)
		}
		waitEndpointDown(t, addr)
	})

	t.Run("sweep-serve", func(t *testing.T) {
		cmd := exec.Command(bin("protozoa-sweep"),
			"-workloads", "histogram,swaptions", "-protocols", "all", "-cores", "4",
			"-serve", "127.0.0.1:0")
		cmd.Stdout = io.Discard
		addr := startServing(t, cmd, "protozoa-sweep")
		body := scrapeMetrics(t, addr)
		checkPrometheusFormat(t, body)
		for _, want := range []string{"protozoa_sweep_cells_total 8", "protozoa_attrib_fetched_words"} {
			if !strings.Contains(body, want) {
				t.Errorf("/metrics missing %q:\n%s", want, body)
			}
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("sweep -serve exited with error: %v", err)
		}
		waitEndpointDown(t, addr)
	})

	t.Run("version", func(t *testing.T) {
		for _, tool := range []string{"protozoa-sim", "protozoa-sweep", "protozoa-figs",
			"protozoa-table1", "protozoa-verify"} {
			out := run(t, bin(tool), "-version")
			if !strings.Contains(out, "result-cache schema v") || !strings.Contains(out, "code stamp:") {
				t.Errorf("%s -version output:\n%s", tool, out)
			}
		}
	})

	t.Run("sim-self-prof", func(t *testing.T) {
		args := []string{"-workload", "histogram", "-cores", "4", "-scale", "1", "-workers", "2"}
		spOut := filepath.Join(dir, "selfprof.json")
		spTrace := filepath.Join(dir, "selfprof-trace.json")
		cmd := exec.Command(bin("protozoa-sim"), append(args,
			"-self-prof", "-self-prof-out", spOut, "-self-prof-trace", spTrace)...)
		var stdout, stderr strings.Builder
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("sim -self-prof: %v\n%s", err, stderr.String())
		}
		for _, want := range []string{"self-profile (pdes", "rounds", "queue:"} {
			if !strings.Contains(stderr.String(), want) {
				t.Errorf("self-prof summary missing %q:\n%s", want, stderr.String())
			}
		}
		var report struct {
			Mode   string `json:"mode"`
			Rounds uint64 `json:"rounds"`
			Tiles  []json.RawMessage `json:"tiles"`
		}
		data, err := os.ReadFile(spOut)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &report); err != nil || report.Mode != "pdes" ||
			report.Rounds == 0 || len(report.Tiles) != 4 {
			t.Errorf("-self-prof-out report (%v): mode=%q rounds=%d tiles=%d",
				err, report.Mode, report.Rounds, len(report.Tiles))
		}
		var meta struct {
			TraceEvents []json.RawMessage `json:"traceEvents"`
		}
		data, err = os.ReadFile(spTrace)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &meta); err != nil || len(meta.TraceEvents) == 0 {
			t.Errorf("-self-prof-trace (%v, %d events)", err, len(meta.TraceEvents))
		}
		// The measurement report on stdout must be byte-identical with
		// the profiler off.
		plain := exec.Command(bin("protozoa-sim"), args...)
		base, err := plain.Output()
		if err != nil {
			t.Fatal(err)
		}
		if stdout.String() != string(base) {
			t.Error("-self-prof changed the stdout report")
		}
	})

	t.Run("sim-flight-inspect", func(t *testing.T) {
		// Record the same run at two worker counts: the flight logs must
		// be byte-identical, and inspect must validate and reconstruct
		// transactions whose phase dwells tile the total latency.
		logs := make([][]byte, 2)
		for i, w := range []string{"1", "2"} {
			path := filepath.Join(dir, "flight-w"+w+".pzfl")
			out := run(t, bin("protozoa-sim"), "-workload", "fft", "-cores", "4", "-scale", "1",
				"-workers", w, "-flight", path, "-flight-cap", "65536")
			if !strings.Contains(out, "flight recorder:") {
				t.Errorf("sim report missing the flight recorder line:\n%s", out)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			logs[i] = data
		}
		if string(logs[0]) != string(logs[1]) {
			t.Error("flight logs differ between -workers 1 and -workers 2")
		}
		log := filepath.Join(dir, "flight-w1.pzfl")
		out := run(t, bin("protozoa-inspect"), "-check", log)
		if !strings.HasPrefix(out, "ok:") || !strings.Contains(out, "(0 open)") {
			t.Errorf("inspect -check output:\n%s", out)
		}
		out = run(t, bin("protozoa-inspect"), "-summary", log)
		for _, want := range []string{"protocol    Protozoa-MW", "msg-send", "miss-start", "l1-state"} {
			if !strings.Contains(out, want) {
				t.Errorf("inspect -summary missing %q:\n%s", want, out)
			}
		}
		out = run(t, bin("protozoa-inspect"), "-last", "5", log)
		if !strings.Contains(out, "req-noc") || !strings.Contains(out, "GETS") {
			t.Errorf("inspect timeline output:\n%s", out)
		}
		// A region filter must yield a coherent single-region transcript.
		out = run(t, bin("protozoa-inspect"), "-records", "-last", "3", log)
		var region string
		fields := strings.Fields(out)
		for i, f := range fields {
			if f == "region" && i+1 < len(fields) {
				region = fields[i+1]
				break
			}
		}
		if region == "" {
			t.Fatalf("no region in transcript:\n%s", out)
		}
		out = run(t, bin("protozoa-inspect"), "-records", "-region", region, log)
		for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
			if !strings.Contains(line, "region "+region) {
				t.Errorf("record for another region leaked through the filter: %q", line)
			}
		}
	})

	t.Run("report", func(t *testing.T) {
		out := run(t, bin("protozoa-report"), "-cores", "4", "-scale", "1", "-workloads", "swaptions")
		if !strings.Contains(out, "# Protozoa reproduction report") ||
			!strings.Contains(out, "Headline geomeans") {
			t.Errorf("report output truncated")
		}
	})

	t.Run("benchdiff", func(t *testing.T) {
		work := t.TempDir()
		baseline := filepath.Join(work, "BENCH_1.json")
		if err := os.WriteFile(baseline, []byte(`{
			"results": {"sequential": {"ns_per_op": 40000000, "accesses_per_s": 800000}}
		}`), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command(bin("protozoa-benchdiff"), "-baseline", baseline, "-change", "cli test")
		cmd.Dir = work
		cmd.Stdin = strings.NewReader(
			"BenchmarkSimulatorThroughputParallel/sequential-1 \t 50\t  20000000 ns/op\t 1600000 accesses/s\n" +
				"BenchmarkSimulatorThroughputParallel/sequential-1 \t 50\t  22000000 ns/op\t 1450000 accesses/s\n" +
				"BenchmarkSimulatorThroughputParallel/sequential-1 \t 50\t  21000000 ns/op\t 1500000 accesses/s\n")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("benchdiff: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "-47.5%") { // 40e6 -> 21e6 ns/op median
			t.Errorf("delta table missing the ns/op improvement:\n%s", out)
		}
		raw, err := os.ReadFile(filepath.Join(work, "BENCH_2.json"))
		if err != nil {
			t.Fatalf("derived snapshot not written: %v", err)
		}
		var snap map[string]any
		if err := json.Unmarshal(raw, &snap); err != nil {
			t.Fatalf("snapshot not valid JSON: %v", err)
		}
		med, _ := snap["median_of_3"].(map[string]any)
		seq, _ := med["sequential"].(map[string]any)
		if seq["ns_per_op"] != 21000000.0 {
			t.Errorf("snapshot median ns_per_op = %v, want 21000000", seq["ns_per_op"])
		}
	})
}
