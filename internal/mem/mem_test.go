package mem

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryValidSizes(t *testing.T) {
	for _, sz := range []int{16, 32, 64, 128} {
		g, err := NewGeometry(sz)
		if err != nil {
			t.Fatalf("NewGeometry(%d): %v", sz, err)
		}
		if g.WordsPerRegion() != sz/WordBytes {
			t.Errorf("NewGeometry(%d).WordsPerRegion() = %d, want %d", sz, g.WordsPerRegion(), sz/WordBytes)
		}
	}
}

func TestNewGeometryRejectsBadSizes(t *testing.T) {
	for _, sz := range []int{0, 8, 24, 63, 256, -64} {
		if _, err := NewGeometry(sz); err == nil {
			t.Errorf("NewGeometry(%d) succeeded, want error", sz)
		}
	}
}

func TestRegionAndBaseRoundTrip(t *testing.T) {
	g := DefaultGeometry
	for _, a := range []Addr{0, 1, 63, 64, 65, 4096, 0xdeadbeef} {
		r := g.Region(a)
		base := g.Base(r)
		if base > a || a-base >= Addr(g.RegionBytes) {
			t.Errorf("Base(Region(%#x)) = %#x, not within region", a, base)
		}
	}
}

func TestWordOffset(t *testing.T) {
	g := DefaultGeometry
	cases := []struct {
		a    Addr
		want uint8
	}{
		{0, 0}, {7, 0}, {8, 1}, {56, 7}, {63, 7}, {64, 0}, {72, 1},
	}
	for _, c := range cases {
		if got := g.WordOffset(c.a); got != c.want {
			t.Errorf("WordOffset(%d) = %d, want %d", c.a, got, c.want)
		}
	}
}

func TestWordAddr(t *testing.T) {
	g := DefaultGeometry
	if got := g.WordAddr(2, 3); got != 128+24 {
		t.Errorf("WordAddr(2, 3) = %d, want %d", got, 128+24)
	}
	if g.WordOffset(g.WordAddr(5, 6)) != 6 {
		t.Error("WordOffset(WordAddr(5, 6)) != 6")
	}
}

func TestFullRange(t *testing.T) {
	for _, sz := range []int{16, 32, 64, 128} {
		g := MustGeometry(sz)
		fr := g.FullRange()
		if fr.Words() != g.WordsPerRegion() {
			t.Errorf("geometry %d: FullRange().Words() = %d, want %d", sz, fr.Words(), g.WordsPerRegion())
		}
	}
}

func TestRangeOverlaps(t *testing.T) {
	cases := []struct {
		a, b Range
		want bool
	}{
		{Range{0, 3}, Range{4, 7}, false},
		{Range{0, 3}, Range{3, 7}, true},
		{Range{2, 5}, Range{0, 7}, true},
		{Range{1, 1}, Range{1, 1}, true},
		{Range{0, 0}, Range{7, 7}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestRangeIntersect(t *testing.T) {
	r, ok := (Range{0, 5}).Intersect(Range{3, 7})
	if !ok || r != (Range{3, 5}) {
		t.Errorf("Intersect = %v, %v; want {3,5}, true", r, ok)
	}
	if _, ok := (Range{0, 2}).Intersect(Range{5, 7}); ok {
		t.Error("disjoint ranges intersect")
	}
}

func TestRangeSpan(t *testing.T) {
	got := (Range{1, 2}).Span(Range{5, 6})
	if got != (Range{1, 6}) {
		t.Errorf("Span = %v, want {1,6}", got)
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{2, 5}
	for w := uint8(0); w < 8; w++ {
		want := w >= 2 && w <= 5
		if r.Contains(w) != want {
			t.Errorf("Contains(%d) = %v, want %v", w, r.Contains(w), want)
		}
	}
	if !r.ContainsRange(Range{3, 4}) || r.ContainsRange(Range{3, 6}) {
		t.Error("ContainsRange wrong")
	}
}

func TestRangeWordsAndBytes(t *testing.T) {
	r := Range{2, 5}
	if r.Words() != 4 || r.Bytes() != 32 {
		t.Errorf("Words/Bytes = %d/%d, want 4/32", r.Words(), r.Bytes())
	}
	if OneWord(3).Words() != 1 {
		t.Error("OneWord.Words() != 1")
	}
}

func TestRangeBitmap(t *testing.T) {
	b := Range{1, 3}.Bitmap()
	if b != 0b1110 {
		t.Errorf("Bitmap = %b, want 1110", b)
	}
}

func TestRangeString(t *testing.T) {
	if (Range{0, 3}).String() != "0--3" {
		t.Errorf("String() = %q", Range{0, 3}.String())
	}
	if (Range{5, 5}).String() != "5" {
		t.Errorf("String() = %q", Range{5, 5}.String())
	}
}

func TestBitmapBasics(t *testing.T) {
	var b Bitmap
	b = b.Set(0).Set(3).Set(7)
	if !b.Has(0) || !b.Has(3) || !b.Has(7) || b.Has(1) {
		t.Error("Set/Has wrong")
	}
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	if b.CountIn(Range{0, 3}) != 2 {
		t.Errorf("CountIn = %d, want 2", b.CountIn(Range{0, 3}))
	}
	if b.Union(Bitmap(0b10)).Count() != 4 {
		t.Error("Union wrong")
	}
	if b.Intersect(Bitmap(0b1001)) != Bitmap(0b1001) {
		t.Error("Intersect wrong")
	}
}

func TestBitmapRunContaining(t *testing.T) {
	g := DefaultGeometry
	b := Bitmap(0b01111010) // words 1, 3..6
	r, ok := b.RunContaining(4, g)
	if !ok || r != (Range{3, 6}) {
		t.Errorf("RunContaining(4) = %v, %v; want {3,6}, true", r, ok)
	}
	r, ok = b.RunContaining(1, g)
	if !ok || r != (Range{1, 1}) {
		t.Errorf("RunContaining(1) = %v, %v; want {1,1}, true", r, ok)
	}
	if _, ok := b.RunContaining(0, g); ok {
		t.Error("RunContaining(0) on clear bit succeeded")
	}
	// Run reaching the region edge must clamp to words-1.
	full := g.FullRange().Bitmap()
	r, ok = full.RunContaining(7, g)
	if !ok || r != g.FullRange() {
		t.Errorf("RunContaining on full bitmap = %v, want full range", r)
	}
}

// clampRange turns arbitrary fuzz bytes into a valid range for g.
func clampRange(g Geometry, a, b uint8) Range {
	w := uint8(g.WordsPerRegion())
	a, b = a%w, b%w
	if a > b {
		a, b = b, a
	}
	return Range{Start: a, End: b}
}

func TestQuickIntersectWithinBoth(t *testing.T) {
	g := DefaultGeometry
	f := func(a1, a2, b1, b2 uint8) bool {
		ra, rb := clampRange(g, a1, a2), clampRange(g, b1, b2)
		in, ok := ra.Intersect(rb)
		if !ok {
			return !ra.Overlaps(rb)
		}
		return ra.ContainsRange(in) && rb.ContainsRange(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSpanContainsBoth(t *testing.T) {
	g := DefaultGeometry
	f := func(a1, a2, b1, b2 uint8) bool {
		ra, rb := clampRange(g, a1, a2), clampRange(g, b1, b2)
		sp := ra.Span(rb)
		return sp.ContainsRange(ra) && sp.ContainsRange(rb) && sp.Valid(g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBitmapCountMatchesRangeWords(t *testing.T) {
	g := DefaultGeometry
	f := func(a, b uint8) bool {
		r := clampRange(g, a, b)
		return r.Bitmap().Count() == r.Words()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOverlapMatchesBitmapIntersect(t *testing.T) {
	g := DefaultGeometry
	f := func(a1, a2, b1, b2 uint8) bool {
		ra, rb := clampRange(g, a1, a2), clampRange(g, b1, b2)
		return ra.Overlaps(rb) == (ra.Bitmap().Intersect(rb.Bitmap()) != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
