// Package mem provides the address arithmetic shared by every layer of
// the simulator: byte addresses, the REGION geometry that Protozoa's
// coherence metadata is indexed by, word-granularity ranges within a
// region (the <Start, End> markers of an Amoeba block), and per-word
// usage bitmaps.
//
// Terminology follows the paper: a REGION is an aligned block of RMAX
// bytes (64 by default) and is the indexing granularity of the
// directory and the MSHRs; an Amoeba block is a sub-range of words
// within a single region and is the granularity of storage and
// communication.
package mem

import "fmt"

// WordBytes is the size of a machine word; all data transfer sizes are
// multiples of it.
const WordBytes = 8

// MaxRegionWords is the largest region's word count (128-byte regions
// have 16 words), the bound for per-word arrays and bitmaps.
const MaxRegionWords = 16

// Addr is a byte address in the simulated physical address space.
type Addr uint64

// RegionID identifies an aligned region (Addr >> log2(RegionBytes)).
type RegionID uint64

// Geometry fixes the region size for a simulation. The paper uses
// 64-byte regions for all Protozoa variants; the Table 1 block-size
// sweep instantiates MESI with 16-128 byte geometries.
type Geometry struct {
	RegionBytes int // power of two, 16..128
	regionShift uint
	words       int
}

// NewGeometry returns the geometry for the given region size in bytes.
// The size must be a power of two between 16 and 128 (2 to 16 words).
func NewGeometry(regionBytes int) (Geometry, error) {
	switch regionBytes {
	case 16, 32, 64, 128:
	default:
		return Geometry{}, fmt.Errorf("mem: unsupported region size %d (want 16, 32, 64, or 128)", regionBytes)
	}
	shift := uint(0)
	for 1<<shift != regionBytes {
		shift++
	}
	return Geometry{RegionBytes: regionBytes, regionShift: shift, words: regionBytes / WordBytes}, nil
}

// MustGeometry is NewGeometry for known-good constants.
func MustGeometry(regionBytes int) Geometry {
	g, err := NewGeometry(regionBytes)
	if err != nil {
		panic(err)
	}
	return g
}

// DefaultGeometry is the paper's 64-byte, 8-word REGION.
var DefaultGeometry = MustGeometry(64)

// WordsPerRegion reports how many words a region holds.
func (g Geometry) WordsPerRegion() int { return g.words }

// Region maps a byte address to its region identifier.
func (g Geometry) Region(a Addr) RegionID { return RegionID(uint64(a) >> g.regionShift) }

// Base returns the first byte address of a region.
func (g Geometry) Base(r RegionID) Addr { return Addr(uint64(r) << g.regionShift) }

// WordOffset returns the word index of address a within its region.
func (g Geometry) WordOffset(a Addr) uint8 {
	return uint8((uint64(a) >> 3) & uint64(g.words-1))
}

// WordAddr returns the byte address of word w of region r.
func (g Geometry) WordAddr(r RegionID, w uint8) Addr {
	return g.Base(r) + Addr(uint64(w)*WordBytes)
}

// FullRange is the range covering the entire region.
func (g Geometry) FullRange() Range { return Range{Start: 0, End: uint8(g.words - 1)} }

// Range is an inclusive range [Start, End] of word offsets within a
// single region: the <Start, End> markers of an Amoeba block. A valid
// range has Start <= End < WordsPerRegion.
type Range struct {
	Start, End uint8
}

// OneWord is the range holding only word w.
func OneWord(w uint8) Range { return Range{Start: w, End: w} }

// Valid reports whether the range is well formed for geometry g.
func (r Range) Valid(g Geometry) bool {
	return r.Start <= r.End && int(r.End) < g.words
}

// Words is the number of words the range covers.
func (r Range) Words() int { return int(r.End) - int(r.Start) + 1 }

// Bytes is the number of data bytes the range covers.
func (r Range) Bytes() int { return r.Words() * WordBytes }

// Contains reports whether word w lies within the range.
func (r Range) Contains(w uint8) bool { return w >= r.Start && w <= r.End }

// ContainsRange reports whether o lies entirely within r.
func (r Range) ContainsRange(o Range) bool { return o.Start >= r.Start && o.End <= r.End }

// Overlaps reports whether the two ranges share at least one word.
func (r Range) Overlaps(o Range) bool { return r.Start <= o.End && o.Start <= r.End }

// Intersect returns the overlap of two ranges; ok is false when they
// are disjoint.
func (r Range) Intersect(o Range) (Range, bool) {
	if !r.Overlaps(o) {
		return Range{}, false
	}
	out := Range{Start: max8(r.Start, o.Start), End: min8(r.End, o.End)}
	return out, true
}

// Span returns the smallest range covering both r and o (they need not
// overlap).
func (r Range) Span(o Range) Range {
	return Range{Start: min8(r.Start, o.Start), End: max8(r.End, o.End)}
}

// Bitmap returns the word-usage bitmap with exactly the range's words set.
func (r Range) Bitmap() Bitmap {
	var b Bitmap
	for w := r.Start; ; w++ {
		b = b.Set(w)
		if w == r.End {
			break
		}
	}
	return b
}

// String renders the range like the paper's figures ("0--3").
func (r Range) String() string {
	if r.Start == r.End {
		return fmt.Sprintf("%d", r.Start)
	}
	return fmt.Sprintf("%d--%d", r.Start, r.End)
}

// Bitmap is a per-word bit vector within one region (regions have at
// most 16 words, so 16 bits suffice for every geometry). Bit w is set
// when word w is marked.
type Bitmap uint16

// Set returns the bitmap with bit w set.
func (b Bitmap) Set(w uint8) Bitmap { return b | 1<<w }

// Has reports whether bit w is set.
func (b Bitmap) Has(w uint8) bool { return b&(1<<w) != 0 }

// Union returns the union of two bitmaps.
func (b Bitmap) Union(o Bitmap) Bitmap { return b | o }

// Intersect returns the intersection of two bitmaps.
func (b Bitmap) Intersect(o Bitmap) Bitmap { return b & o }

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for v := b; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// CountIn returns the number of set bits inside range r.
func (b Bitmap) CountIn(r Range) int {
	return b.Intersect(r.Bitmap()).Count()
}

// RunContaining returns the maximal contiguous run of set bits that
// contains word w; ok is false when bit w is clear.
func (b Bitmap) RunContaining(w uint8, g Geometry) (Range, bool) {
	if !b.Has(w) {
		return Range{}, false
	}
	start, end := w, w
	for start > 0 && b.Has(start-1) {
		start--
	}
	for int(end) < g.words-1 && b.Has(end+1) {
		end++
	}
	return Range{Start: start, End: end}, true
}

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

func max8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}
