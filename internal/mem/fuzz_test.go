package mem

import "testing"

// FuzzRangeAlgebra: intersect/span/bitmap identities over arbitrary
// (clamped) ranges for every geometry.
func FuzzRangeAlgebra(f *testing.F) {
	f.Add(uint8(0), uint8(3), uint8(4), uint8(7), 64)
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), 16)
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2 uint8, sz int) {
		sizes := []int{16, 32, 64, 128}
		g := MustGeometry(sizes[sz&3])
		clamp := func(x, y uint8) Range {
			w := uint8(g.WordsPerRegion())
			x, y = x%w, y%w
			if x > y {
				x, y = y, x
			}
			return Range{Start: x, End: y}
		}
		ra, rb := clamp(a1, a2), clamp(b1, b2)
		in, ok := ra.Intersect(rb)
		if ok != ra.Overlaps(rb) {
			t.Fatalf("Intersect ok=%v but Overlaps=%v", ok, ra.Overlaps(rb))
		}
		if ok {
			if !ra.ContainsRange(in) || !rb.ContainsRange(in) {
				t.Fatalf("intersection %v escapes %v/%v", in, ra, rb)
			}
			if in.Bitmap() != ra.Bitmap().Intersect(rb.Bitmap()) {
				t.Fatalf("bitmap intersect mismatch")
			}
		}
		sp := ra.Span(rb)
		if !sp.ContainsRange(ra) || !sp.ContainsRange(rb) || !sp.Valid(g) {
			t.Fatalf("span %v does not cover %v/%v", sp, ra, rb)
		}
		if ra.Bitmap().Count() != ra.Words() {
			t.Fatalf("bitmap count %d != words %d", ra.Bitmap().Count(), ra.Words())
		}
		for w := ra.Start; ; w++ {
			if run, ok := ra.Bitmap().RunContaining(w, g); !ok || !run.ContainsRange(ra) {
				t.Fatalf("RunContaining(%d) on solid range = %v, %v", w, run, ok)
			}
			if w == ra.End {
				break
			}
		}
	})
}
