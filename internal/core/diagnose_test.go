package core

import (
	"strings"
	"testing"

	"protozoa/internal/trace"
)

func TestDiagnoseRendersQuiescentMachine(t *testing.T) {
	sys := runSys(t, testConfig(MESI, 2), [][]trace.Access{{ld(0x0)}, nil})
	out := sys.diagnose()
	for _, want := range []string{"core  0: done", "core  1: done", "no busy directory entries", "barrier: 0 arrived, 2 cores done"} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnose missing %q:\n%s", want, out)
		}
	}
}

func TestWatchdogErrorIncludesDiagnosis(t *testing.T) {
	// A watchdog small enough to fire mid-run: the error must describe
	// the stalled machine (open MSHRs or busy directory entries).
	cfg := testConfig(MESI, 2)
	cfg.MaxEvents = 10
	var recs []trace.Access
	for i := 0; i < 50; i++ {
		recs = append(recs, st(regAddr(i)))
	}
	sys, err := NewSystem(cfg, []trace.Stream{
		trace.NewSliceStream(recs),
		trace.NewSliceStream(recs),
	})
	if err != nil {
		t.Fatal(err)
	}
	runErr := sys.Run()
	if runErr == nil {
		t.Fatal("watchdog did not fire")
	}
	msg := runErr.Error()
	if !strings.Contains(msg, "machine state at") {
		t.Errorf("watchdog error lacks diagnosis:\n%s", msg)
	}
	if !strings.Contains(msg, "MSHRs") && !strings.Contains(msg, "busy") {
		t.Errorf("diagnosis lacks stall detail:\n%s", msg)
	}
}
