package core

import (
	"bytes"
	"testing"

	"protozoa/internal/trace"
)

// runSelfProfWorkload is runPDESWorkload plus EnableSelfProf, minus the
// observability layers the perturbation test arms separately.
func runSelfProfWorkload(t *testing.T, p Protocol, workers int) *System {
	t.Helper()
	cfg := testConfig(p, 4)
	cfg.Workers = workers
	perCore := pdesWorkload()
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = trace.NewSliceStream(perCore[i])
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableSelfProf()
	if err := sys.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return sys
}

// TestSelfProfReconciles pins the round-telemetry invariants — the
// analog of the latency layer's reconciliation contract. Running at
// workers 2 and 4 in-package also puts the shard writes under the
// tier-1 -race pass.
func TestSelfProfReconciles(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		sys := runSelfProfWorkload(t, ProtozoaMW, workers)
		p := sys.SelfProf()
		if p.Rounds == 0 {
			t.Fatalf("workers=%d: no rounds recorded", workers)
		}

		// Every coordinator round classifies every tile exactly once.
		var events, pushes uint64
		for i := range p.Tiles {
			ts := &p.Tiles[i]
			if ts.BusyRounds+ts.IdleRounds != p.Rounds {
				t.Errorf("workers=%d tile %d: busy %d + idle %d != rounds %d",
					workers, i, ts.BusyRounds, ts.IdleRounds, p.Rounds)
			}
			if ts.SkippedWithWork > ts.IdleRounds {
				t.Errorf("workers=%d tile %d: skipped %d > idle %d",
					workers, i, ts.SkippedWithWork, ts.IdleRounds)
			}
			events += ts.Events

			// Clean drain: everything pushed was popped, so the three
			// push paths tile the tile's processed-event count exactly.
			tilePushes := ts.Queue.RingPushes + ts.Queue.FarPushes + ts.MicroHits
			if got := sys.tiles[i].eng.Processed(); tilePushes != got {
				t.Errorf("workers=%d tile %d: ring %d + far %d + micro %d = %d pushes, %d processed",
					workers, i, ts.Queue.RingPushes, ts.Queue.FarPushes, ts.MicroHits,
					tilePushes, got)
			}
			pushes += tilePushes
		}
		if total := sys.EventsProcessed(); events != total {
			t.Errorf("workers=%d: per-tile events sum %d != EventsProcessed %d",
				workers, events, total)
		}
		if pushes != sys.EventsProcessed() {
			t.Errorf("workers=%d: push accounting %d != EventsProcessed %d",
				workers, pushes, sys.EventsProcessed())
		}

		// One width observation per round; the min tile always runs.
		if p.Width.N != p.Rounds {
			t.Errorf("workers=%d: %d width observations for %d rounds",
				workers, p.Width.N, p.Rounds)
		}
		if p.InlineRounds > p.Rounds {
			t.Errorf("workers=%d: inline %d > rounds %d", workers, p.InlineRounds, p.Rounds)
		}
		if workers == 1 && p.InlineRounds != p.Rounds {
			t.Errorf("workers=1: every round should be inline, got %d of %d",
				p.InlineRounds, p.Rounds)
		}
		if p.BarrierReleases == 0 {
			t.Errorf("workers=%d: barrier workload recorded no releases", workers)
		}
		if p.InjectedMsgs == 0 {
			t.Errorf("workers=%d: sharing workload injected no cross-tile messages", workers)
		}

		// The stats-side self-observability fields agree with the
		// profile's queue totals.
		r := p.Report()
		if sys.Stats().ZeroDelayHits != r.Queue.MicroHits {
			t.Errorf("workers=%d: stats ZeroDelayHits %d != profile micro %d",
				workers, sys.Stats().ZeroDelayHits, r.Queue.MicroHits)
		}
		if r.TotalEvents != sys.EventsProcessed() {
			t.Errorf("workers=%d: report TotalEvents %d != %d",
				workers, r.TotalEvents, sys.EventsProcessed())
		}

		// The telemetry is schedule-determined, so everything except
		// wall-clock must be worker-count invariant; spot-check the
		// core counters against the workers=1 run via a second pass.
		if workers == 1 {
			continue
		}
		base := runSelfProfWorkload(t, ProtozoaMW, 1).SelfProf()
		if base.Rounds != p.Rounds || base.InjectedMsgs != p.InjectedMsgs ||
			base.SoloExtendedRounds != p.SoloExtendedRounds ||
			base.BarrierReleases != p.BarrierReleases {
			t.Errorf("workers=%d: round telemetry diverges from workers=1: rounds %d/%d injected %d/%d solo %d/%d releases %d/%d",
				workers, p.Rounds, base.Rounds, p.InjectedMsgs, base.InjectedMsgs,
				p.SoloExtendedRounds, base.SoloExtendedRounds,
				p.BarrierReleases, base.BarrierReleases)
		}
	}
}

// TestSelfProfDoesNotPerturbResults is the byte-identical acceptance
// contract: every observable of a fully-instrumented run matches
// exactly with self-prof on vs off, in both execution modes.
func TestSelfProfDoesNotPerturbResults(t *testing.T) {
	run := func(workers int, selfProf bool) *System {
		cfg := testConfig(ProtozoaSW, 4)
		cfg.Workers = workers
		perCore := pdesWorkload()
		streams := make([]trace.Stream, 4)
		for i := range streams {
			streams[i] = trace.NewSliceStream(perCore[i])
		}
		sys, err := NewSystem(cfg, streams)
		if err != nil {
			t.Fatal(err)
		}
		sys.EnableTimeline(500)
		sys.EnableEventTrace(1 << 14)
		sys.EnableAttribution()
		if selfProf {
			sys.EnableSelfProf()
		}
		if err := sys.Run(); err != nil {
			t.Fatalf("workers=%d selfprof=%v: %v", workers, selfProf, err)
		}
		return sys
	}
	for _, workers := range []int{0, 2} {
		base := run(workers, false)
		prof := run(workers, true)
		assertJSONEqual(t, workers, "stats", base.Stats(), prof.Stats())
		assertJSONEqual(t, workers, "timeline", base.Timeline(), prof.Timeline())
		assertJSONEqual(t, workers, "trace", base.Recorder().Snapshot(), prof.Recorder().Snapshot())
		assertJSONEqual(t, workers, "attribution", base.Attribution().Summarize(), prof.Attribution().Summarize())
	}
}

// TestSelfProfSequentialMode: with Workers == 0 there is no window
// loop, but the queue introspection still works on the shared engine.
func TestSelfProfSequentialMode(t *testing.T) {
	sys := runSelfProfWorkload(t, MESI, 0)
	p := sys.SelfProf()
	if p.Mode != "sequential" {
		t.Fatalf("mode = %q", p.Mode)
	}
	if p.Rounds != 0 {
		t.Errorf("sequential run recorded %d rounds", p.Rounds)
	}
	r := p.Report()
	if got := sys.EventsProcessed(); r.Queue.RingPushes+r.Queue.FarPushes+r.Queue.MicroHits != got {
		t.Errorf("queue pushes %d+%d+%d != %d events processed",
			r.Queue.RingPushes, r.Queue.FarPushes, r.Queue.MicroHits, got)
	}
	if r.TotalEvents != sys.EventsProcessed() {
		t.Errorf("TotalEvents %d != %d", r.TotalEvents, sys.EventsProcessed())
	}
	if sys.Stats().ZeroDelayHits != r.Queue.MicroHits {
		t.Errorf("stats ZeroDelayHits %d != %d", sys.Stats().ZeroDelayHits, r.Queue.MicroHits)
	}
	if sys.Stats().EventQueueHighWater == 0 {
		t.Error("EventQueueHighWater not set")
	}
	var buf bytes.Buffer
	r.WriteSummary(&buf)
	if buf.Len() == 0 {
		t.Error("empty summary")
	}
}
