// Package core implements the paper's primary contribution: the
// Protozoa family of adaptive-granularity coherence protocols, built
// as extensions of a 4-hop MESI directory protocol over a tiled,
// inclusive shared L2 with an in-cache directory.
//
// The four protocols (Section 3):
//
//   - MESI: fixed-granularity baseline. Storage, communication, and
//     coherence all happen at the region (cache block) granularity.
//   - Protozoa-SW: adaptive storage/communication granularity
//     (variable Amoeba blocks move through the network) with fixed
//     REGION coherence granularity — a single writer per region.
//   - Protozoa-SW+MR: multiple concurrent readers may coexist with one
//     writer as long as their sub-blocks do not overlap.
//   - Protozoa-MW: multiple concurrent non-overlapping writers and
//     readers; the SWMR invariant is maintained at word granularity.
//
// Stable states follow Table 2 (L1: M/E/S/I; directory: O, SS, I with
// dirty-at-L2 tracked alongside), and the message vocabulary is the
// MESI set plus the Table 3 additions: WBACK vs WBACK_LAST from an L1
// that evicts one of several resident sub-blocks of a region, the
// non-overlapping acknowledgment ACK-S, and NACKs from stale sharers.
package core

import (
	"fmt"

	"protozoa/internal/mem"
	"protozoa/internal/stats"
)

// Protocol selects a member of the protocol family.
type Protocol uint8

const (
	// MESI is the conventional fixed-granularity 4-hop directory
	// baseline (64-byte blocks in the paper's evaluation).
	MESI Protocol = iota
	// ProtozoaSW adapts storage/communication granularity but keeps
	// region-granularity coherence with a single writer.
	ProtozoaSW
	// ProtozoaSWMR allows multiple non-overlapping readers concurrent
	// with a single writer.
	ProtozoaSWMR
	// ProtozoaMW allows multiple non-overlapping writers and readers:
	// word-granularity SWMR.
	ProtozoaMW
)

// AllProtocols lists the family in the order the paper's figures use.
var AllProtocols = []Protocol{MESI, ProtozoaSW, ProtozoaSWMR, ProtozoaMW}

// String returns the paper's name for the protocol.
func (p Protocol) String() string {
	switch p {
	case MESI:
		return "MESI"
	case ProtozoaSW:
		return "Protozoa-SW"
	case ProtozoaSWMR:
		return "Protozoa-SW+MR"
	case ProtozoaMW:
		return "Protozoa-MW"
	}
	return fmt.Sprintf("Protocol(%d)", uint8(p))
}

// Adaptive reports whether the protocol uses variable-granularity
// storage/communication (everything except the MESI baseline).
func (p Protocol) Adaptive() bool { return p != MESI }

// MsgType enumerates the coherence messages. The first block is the
// conventional MESI vocabulary; the rest are the Table 3 additions.
type MsgType uint8

const (
	// MsgGetS is a read miss request (L1 -> directory).
	MsgGetS MsgType = iota
	// MsgGetX is a write miss request.
	MsgGetX
	// MsgUpgrade asks for write permission on data already cached clean.
	MsgUpgrade
	// MsgFwdGetS is a directory-forwarded read probe to an owner.
	MsgFwdGetS
	// MsgFwdGetX is a directory-forwarded write probe to an owner.
	MsgFwdGetX
	// MsgInv is an invalidation probe to a (non-owner) sharer.
	MsgInv
	// MsgData carries words to a requester, granting Shared.
	MsgData
	// MsgDataE carries words, granting Exclusive (no other sharers).
	MsgDataE
	// MsgDataM carries words, granting Modified (write permission).
	MsgDataM
	// MsgGrant grants write permission without data (upgrade hit).
	MsgGrant
	// MsgAck acknowledges a probe; the responder dropped its last block
	// of the region (or was only partially resident and kept nothing).
	MsgAck
	// MsgAckS is the paper's ACK-S: the probe is acknowledged but the
	// responder retains non-overlapping sub-blocks and must remain a
	// sharer (and, under Protozoa-MW, possibly an owner).
	MsgAckS
	// MsgNack reports that the probed node holds nothing of the region
	// (a stale directory entry after a silent clean eviction).
	MsgNack
	// MsgWback carries dirty words back to the shared L2 while other
	// sub-blocks of the region remain cached at the sender.
	MsgWback
	// MsgWbackLast is a WBACK for the final resident sub-block of a
	// region: the directory may stop tracking the sender.
	MsgWbackLast
	// MsgUnblock tells the directory the requester installed its fill,
	// letting the next queued transaction for the region proceed. This
	// closes the fill-versus-next-probe race the same way the GEMS
	// MESI_CMP_directory protocol does.
	MsgUnblock
	// MsgRecall is a directory-internal transaction marker for L2
	// inclusion evictions (the probes it triggers are ordinary INVs);
	// it never travels on the network.
	MsgRecall
)

var msgNames = [...]string{
	"GETS", "GETX", "UPGRADE", "FWD_GETS", "FWD_GETX", "INV",
	"DATA", "DATA_E", "DATA_M", "GRANT", "ACK", "ACK_S", "NACK",
	"WBACK", "WBACK_LAST", "UNBLOCK", "RECALL",
}

// String returns the protocol-diagram name of the message type.
func (t MsgType) String() string {
	if int(t) < len(msgNames) {
		return msgNames[t]
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// CtrlBytes is the fixed control/header cost of every message
// (8 bytes, matching the paper's base protocol metadata).
const CtrlBytes = 8

// Msg is one coherence message. Data-bearing messages carry the words
// flagged in Valid; Dirty flags the subset that must be patched into
// the shared L2.
type Msg struct {
	Type     MsgType
	Src, Dst int // NoC nodes (tile IDs; L1 i and directory slice i share tile i)

	Region mem.RegionID
	R      mem.Range // requested or supplied range

	Valid mem.Bitmap // words present in Words
	Dirty mem.Bitmap // words that are dirty (writebacks)
	Words [16]uint64 // word values, indexed by region offset

	Requester int    // original requester, echoed through probes
	TxnID     uint64 // directory transaction ID; 0 = spontaneous writeback

	// Probe-reply bookkeeping: whether the responder still holds any
	// sub-block of the region (remain in the sharer vector) and whether
	// it still holds dirty/exclusive sub-blocks (remain in the owner
	// vector under Protozoa-MW).
	StillSharer bool
	StillOwner  bool

	// 3-hop support (Section 6, "3-hop vs 4-hop"): Direct marks a probe
	// whose receiver should forward data straight to Requester when its
	// resident blocks fully cover R; ForwardedData on the reply tells
	// the directory the requester was already supplied, so it must not
	// send data itself. Partial or no coverage falls back to 4-hop.
	Direct        bool
	ForwardedData bool

	// Scheduling state for the allocation-free hot path: messages come
	// from the owning System's free list and double as their own engine
	// events (phase selects what Run does next). Not protocol state.
	sys   *System
	phase msgPhase
}

// msgPhase is the next scheduled action for a pooled message acting as
// its own engine event.
type msgPhase uint8

const (
	// phaseDeliver hands the message to its destination controller
	// (the mesh's delivery callback).
	phaseDeliver msgPhase = iota
	// phaseSend puts the message on the mesh after a scheduled delay
	// (e.g. the multi-block gather penalty).
	phaseSend
	// phaseActivate starts the directory transaction for a queued
	// request after the 1-cycle dequeue delay.
	phaseActivate
	// phaseProcess runs the directory state machine after the L2
	// access latency.
	phaseProcess
)

// Run dispatches the message's scheduled action; Msg implements
// engine.Runner so the hot path schedules no closures.
func (m *Msg) Run() {
	switch m.phase {
	case phaseDeliver:
		m.sys.deliver(m)
	case phaseSend:
		// Src is always stamped before a phaseSend is scheduled, and the
		// delayed send runs on the sending tile's engine.
		m.sys.tiles[m.Src].send(m)
	case phaseActivate:
		d := m.sys.dirs[m.Dst]
		d.activate(d.mustEntry(m.Region), m)
	case phaseProcess:
		d := m.sys.dirs[m.Dst]
		d.process(d.mustEntry(m.Region), m)
	}
}

// PayloadWords is the number of data words the message carries.
func (m *Msg) PayloadWords() int { return m.Valid.Count() }

// Bytes is the message's total size on the network.
func (m *Msg) Bytes() int { return CtrlBytes + mem.WordBytes*m.PayloadWords() }

// Class maps the message to its Figure 10 control-byte category.
func (m *Msg) Class() stats.Class {
	switch m.Type {
	case MsgGetS, MsgGetX, MsgUpgrade:
		return stats.ClassREQ
	case MsgFwdGetS, MsgFwdGetX:
		return stats.ClassFWD
	case MsgInv:
		return stats.ClassINV
	case MsgAck, MsgAckS, MsgGrant, MsgUnblock:
		return stats.ClassACK
	case MsgNack:
		return stats.ClassNACK
	case MsgData, MsgDataE, MsgDataM:
		return stats.ClassDATA
	case MsgWback, MsgWbackLast:
		return stats.ClassWB
	}
	panic(fmt.Sprintf("core: unclassified message type %v", m.Type))
}

// Virtual networks: requests, forwards, and responses travel on
// separate networks so responses are never blocked behind requests —
// the standard directory-protocol deadlock-avoidance discipline.
const (
	VnetRequest  = 0
	VnetForward  = 1
	VnetResponse = 2
)

// VNet returns the virtual network the message travels on.
func (m *Msg) VNet() int {
	switch m.Type {
	case MsgGetS, MsgGetX, MsgUpgrade:
		return VnetRequest
	case MsgFwdGetS, MsgFwdGetX, MsgInv:
		return VnetForward
	default:
		return VnetResponse
	}
}
