package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"protozoa/internal/engine"
	"protozoa/internal/obs"
	"protozoa/internal/stats"
)

// This file is the conservative parallel-discrete-event (PDES) driver
// behind Config.Workers. The machine is partitioned by tile (core + L1
// + co-located L2/directory slice + router accounting), each tile owns
// a private event queue, and the partitions execute concurrently inside
// bounded time windows.
//
// The lookahead contract makes this safe: every cross-tile interaction
// is a coherence message, and the mesh charges at least
// Lookahead() = RouterLat + HopLatency cycles between send and
// delivery. A window [T, T+W) with W = Lookahead() therefore cannot
// carry a message sent inside the window back into the same window: a
// send at cycle >= T arrives at cycle >= T+W. Cross-tile sends park in
// the sender's outbox and the coordinator moves them to the destination
// queue at the window barrier, so within a window every tile runs on
// purely local state.
//
// Determinism does not depend on the worker count. Tiles are mutually
// independent inside a window, so which worker runs which tile (and in
// what order) cannot change any tile's event sequence; every
// cross-window interaction funnels through the single-threaded
// coordinator, which iterates tiles in index order. Workers=1 and
// Workers=N produce byte-identical stats, traces, timelines and
// attribution for every N.

// runPDES executes the machine to completion with the window loop.
// System.Run dispatches here when Config.Workers > 0.
func (s *System) runPDES() error {
	if err := s.pdesCheck(); err != nil {
		return err
	}
	W := s.mesh.Lookahead()
	for _, c := range s.cpus {
		c.tl.eng.ScheduleRunner(0, &c.stepEv)
	}
	workers := s.cfg.Workers
	if workers > len(s.tiles) {
		workers = len(s.tiles)
	}
	pool := newPDESPool(workers)
	defer pool.stop()

	if s.timelineInterval > 0 {
		s.nextSample = s.timelineInterval
	}

	var prevEnd engine.Cycle
	active := make([]*tile, 0, len(s.tiles))
	for {
		// Deliver the previous window's cross-tile messages. Their
		// arrival cycles are >= prevEnd by the lookahead contract, so
		// they land in the destination's future.
		for _, t := range s.tiles {
			for _, om := range t.outbox {
				s.tiles[om.m.Dst].eng.ScheduleRunnerAt(om.at, om.m)
			}
			t.outbox = t.outbox[:0]
		}

		// Global barrier release. Arrival is recorded per tile as the
		// arrival events run; the count-and-release that the sequential
		// mode performs inline happens here, at the window edge, which
		// is the earliest globally-consistent point.
		arrived, done := 0, 0
		for _, t := range s.tiles {
			if t.coreDone {
				done++
			}
			if t.barrierArrived {
				arrived++
			}
		}
		if arrived > 0 && arrived+done == s.cfg.Cores {
			for _, t := range s.tiles {
				if t.barrierArrived {
					t.barrierArrived = false
					t.eng.ScheduleRunnerAt(prevEnd, &s.cpus[t.id].stepEv)
				}
			}
		}

		var T engine.Cycle
		found := false
		for _, t := range s.tiles {
			if at, ok := t.eng.PeekCycle(); ok && (!found || at < T) {
				T, found = at, true
			}
		}
		if !found {
			break
		}
		windowEnd := T + W

		active = active[:0]
		for _, t := range s.tiles {
			if at, ok := t.eng.PeekCycle(); ok && at < windowEnd {
				active = append(active, t)
			}
		}
		if pool == nil || len(active) == 1 {
			for _, t := range active {
				t.eng.RunUntil(windowEnd)
			}
		} else {
			pool.run(active, windowEnd)
		}

		prevEnd = windowEnd
		s.pdesNow = windowEnd

		if s.cfg.MaxEvents > 0 && s.EventsProcessed() >= s.cfg.MaxEvents && s.pdesPending() > 0 {
			return fmt.Errorf("core: watchdog fired after %d events (livelock?)\n%s",
				s.EventsProcessed(), s.diagnose())
		}

		// Timeline ticks are nominal: a sample labelled cycle C is taken
		// at the first window edge past C. The edge sequence depends only
		// on event timings, so samples are worker-count independent.
		if s.timelineInterval > 0 {
			for s.nextSample < windowEnd {
				s.samplePDES(s.nextSample)
				s.nextSample += s.timelineInterval
			}
		}
	}

	s.coresDone, s.barrierArrived = 0, 0
	for _, t := range s.tiles {
		if t.coreDone {
			s.coresDone++
		}
		if t.barrierArrived {
			s.barrierArrived++
		}
	}
	if s.coresDone != s.cfg.Cores {
		return fmt.Errorf("core: deadlock: %d/%d cores finished, %d at barrier\n%s",
			s.coresDone, s.cfg.Cores, s.barrierArrived, s.diagnose())
	}
	var last engine.Cycle
	for _, t := range s.tiles {
		if t.retire > last {
			last = t.retire
		}
	}
	s.lastRetire = last
	s.flushResidual()
	s.mergePDES()
	s.st.ExecCycles = uint64(last)
	// Clean finish: every tile queue is drained (the window loop broke
	// on "no queued event anywhere"), so hand the bucket rings back to
	// the engine's storage pool for the next run. Error paths skip this
	// because diagnose() wants to inspect the queues.
	for _, t := range s.tiles {
		t.eng.Recycle()
	}
	return nil
}

// pdesCheck rejects configurations whose hooks assume a single global
// event order. These remain available in the sequential mode.
func (s *System) pdesCheck() error {
	if W := s.mesh.Lookahead(); W < 1 {
		return fmt.Errorf("core: parallel run needs positive NoC lookahead, got %d", W)
	}
	if s.obs != nil {
		return fmt.Errorf("core: workers > 0 is incompatible with a correctness observer (needs a global event order)")
	}
	if s.log != nil {
		return fmt.Errorf("core: workers > 0 is incompatible with the message log (global ring); run with workers 0")
	}
	if s.cfg.Noc.ModelContention {
		return fmt.Errorf("core: workers > 0 is incompatible with NoC contention modelling (shared link state)")
	}
	return nil
}

// pdesPending counts work anywhere in the machine: queued events plus
// parked outbox messages.
func (s *System) pdesPending() int {
	n := 0
	for _, t := range s.tiles {
		n += t.eng.Pending() + len(t.outbox)
	}
	return n
}

// samplePDES takes one nominal timeline tick: rebuild the merged stats
// view, append the sample, and feed the metrics registry and live hook.
func (s *System) samplePDES(cycle engine.Cycle) {
	s.mergeShardStats()
	s.timeline = append(s.timeline, TimelineSample{
		Cycle:    cycle,
		Accesses: s.st.Accesses,
		Misses:   s.st.L1Misses,
		Traffic:  s.st.TrafficTotal(),
		FlitHops: s.st.FlitHops,
	})
	if s.metrics != nil {
		s.metrics.Sample(uint64(cycle))
	}
	if s.onSample != nil {
		s.onSample(uint64(cycle))
	}
}

// mergeShardStats rebuilds s.st from the per-tile shards. The shards
// stay authoritative for the whole run and the rebuild starts from
// zero, so mid-run samples and the final merge use the same path.
func (s *System) mergeShardStats() {
	per := s.st.PerCore
	*s.st = stats.Stats{PerCore: per}
	for i := range per {
		per[i] = stats.CoreStats{}
	}
	for _, t := range s.tiles {
		s.st.Merge(t.st)
	}
}

// mergePDES folds every per-tile/per-core observability shard into the
// targets handed out by the Enable* methods before the run.
func (s *System) mergePDES() {
	s.mergeShardStats()
	if s.lat != nil {
		for _, sh := range s.latShards {
			s.lat.Merge(sh)
		}
	}
	if s.attrib != nil {
		for _, t := range s.tiles {
			s.attrib.Merge(t.attrib)
		}
	}
	if s.rec != nil {
		var evs []obs.Event
		var dropped uint64
		for _, t := range s.tiles {
			evs = append(evs, t.rec.Snapshot()...)
			dropped += t.rec.Dropped()
		}
		// Stable sort: ties keep tile order, so the merged trace is
		// worker-count independent.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
		for _, ev := range evs {
			s.rec.Record(ev)
		}
		s.rec.AddDropped(dropped)
	}
	if s.transitions != nil {
		for _, t := range s.tiles {
			for k, v := range t.transitions {
				s.transitions[k] += v
			}
		}
	}
}

// pdesPool is the persistent worker crew behind the window loop. The
// window-loop goroutine doubles as worker 0; workers 1..n-1 spin on an
// epoch counter, so handing off a window costs two atomic operations
// rather than a park/unpark round trip — a window is typically a few
// microseconds of work, and futex wakeups would dominate it.
type pdesPool struct {
	workers int
	active  []*tile
	limit   engine.Cycle
	epoch   atomic.Uint64
	done    []padUint64
	quit    atomic.Bool
}

// padUint64 keeps each worker's completion counter on its own cache
// line so the coordinator's polling doesn't bounce lines between
// workers.
type padUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

func newPDESPool(workers int) *pdesPool {
	if workers <= 1 {
		return nil
	}
	p := &pdesPool{workers: workers, done: make([]padUint64, workers)}
	for w := 1; w < workers; w++ {
		go p.work(w)
	}
	return p
}

// work is worker w's loop: wait for a new epoch, run the tiles dealt to
// this worker by static stride, post completion. The epoch increment
// happens-after the coordinator writes active/limit, and the done store
// happens-after the tile runs, so no other synchronization is needed.
func (p *pdesPool) work(w int) {
	var seen uint64
	for {
		e := p.epoch.Load()
		if e == seen {
			if p.quit.Load() {
				return
			}
			runtime.Gosched()
			continue
		}
		seen = e
		for i := w; i < len(p.active); i += p.workers {
			p.active[i].eng.RunUntil(p.limit)
		}
		p.done[w].v.Store(e)
	}
}

// run executes one window across the crew. Tiles are independent inside
// a window, so the round-robin deal cannot affect results — only load
// balance.
func (p *pdesPool) run(active []*tile, limit engine.Cycle) {
	p.active = active
	p.limit = limit
	e := p.epoch.Add(1)
	for i := 0; i < len(active); i += p.workers {
		active[i].eng.RunUntil(limit)
	}
	for w := 1; w < p.workers; w++ {
		for p.done[w].v.Load() != e {
			runtime.Gosched()
		}
	}
}

// stop retires the crew; nil-safe so the single-worker path can defer
// it unconditionally.
func (p *pdesPool) stop() {
	if p == nil {
		return
	}
	p.quit.Store(true)
}
