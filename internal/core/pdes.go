package core

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"protozoa/internal/engine"
	"protozoa/internal/obs"
	"protozoa/internal/obs/selfprof"
	"protozoa/internal/stats"
)

// This file is the conservative parallel-discrete-event (PDES) driver
// behind Config.Workers. The machine is partitioned by tile (core + L1
// + co-located L2/directory slice + router accounting), each tile owns
// a private event queue, and the partitions execute concurrently inside
// bounded time windows.
//
// The lookahead contract makes this safe: every cross-tile interaction
// is a coherence message, and the mesh charges at least
// Lookahead() = RouterLat + HopLatency cycles between send and
// delivery. Each round, tile i runs events strictly below its own
// bound: with p_j the earliest queued cycle on tile j at the round
// edge, no tile can send before its own p_j, so nothing can ARRIVE at
// i before min over other tiles of p_j, plus W = Lookahead(). Tiles
// whose next events lie at or past their bound skip the round
// entirely (their worker slot is never claimed), and a tile running
// alone gets an extended window that self-caps when it actually sends
// (Engine.LimitTo in tile.send): a message parked with arrival a can
// have causal consequences for the sender no earlier than a+W.
// Cross-tile sends park in the sender's outbox and the coordinator
// moves them to the destination queue at the round barrier, so within
// a round every tile runs on purely local state, and an injected
// arrival is never in the receiver's past (a >= sender's p + W >=
// receiver's bound > receiver's clock).
//
// Determinism does not depend on the worker count. Tiles are mutually
// independent inside a round, so which worker runs which tile (and in
// what order) cannot change any tile's event sequence; every
// cross-round interaction funnels through the single-threaded
// coordinator, which iterates tiles in index order. The bounds are
// functions of the tiles' queue states and the tiles' own sends, both
// of which are schedule-independent, so Workers=1 and Workers=N
// produce byte-identical stats, traces, timelines and attribution for
// every N, under either queue implementation.

// soloSlice caps how far a tile may run past the rest of the machine
// in one round, so the MaxEvents watchdog (checked between rounds)
// keeps its teeth even when a lone tile drains a long private queue.
const soloSlice = engine.Cycle(1) << 16

// runPDES executes the machine to completion with the window loop.
// System.Run dispatches here when Config.Workers > 0.
func (s *System) runPDES() error {
	if err := s.pdesCheck(); err != nil {
		return err
	}
	for _, c := range s.cpus {
		c.tl.eng.ScheduleRunner(0, &c.stepEv)
	}
	workers := s.cfg.Workers
	if workers > len(s.tiles) {
		workers = len(s.tiles)
	}
	pool := newPDESPool(workers, s.selfProf)
	defer pool.stop()

	if s.timelineInterval > 0 {
		s.nextSample = s.timelineInterval
	}

	// The coordinator loop runs under a pprof label so -cpuprofile
	// splits window-loop bookkeeping (and worker-0 simulation work)
	// from the labelled crew goroutines; see docs/OBSERVABILITY.md.
	var runErr error
	pprof.Do(context.Background(), pprof.Labels("pdes", "coordinator"), func(context.Context) {
		runErr = s.windowLoop(pool)
	})
	if runErr != nil {
		return runErr
	}

	s.coresDone, s.barrierArrived = 0, 0
	for _, t := range s.tiles {
		if t.coreDone {
			s.coresDone++
		}
		if t.barrierArrived {
			s.barrierArrived++
		}
	}
	if s.coresDone != s.cfg.Cores {
		return fmt.Errorf("core: deadlock: %d/%d cores finished, %d at barrier\n%s",
			s.coresDone, s.cfg.Cores, s.barrierArrived, s.diagnose())
	}
	var last engine.Cycle
	for _, t := range s.tiles {
		if t.retire > last {
			last = t.retire
		}
	}
	s.lastRetire = last
	s.flushResidual()
	var mergeStart time.Time
	if s.selfProf != nil {
		mergeStart = time.Now()
	}
	s.mergePDES()
	if s.selfProf != nil {
		s.selfProf.MergeNs += int64(time.Since(mergeStart))
	}
	s.st.ExecCycles = uint64(last)
	// Self-observability counters are set after the shard merge (which
	// rebuilds s.st from zero) and regardless of self-prof, so the
	// stats are byte-identical with the profiler on or off.
	s.st.EventQueueHighWater = uint64(s.queueHighWater())
	s.st.ZeroDelayHits = s.queueZeroDelayHits()
	s.finishSelfProf()
	// Clean finish: every tile queue is drained (the window loop broke
	// on "no queued event anywhere"), so hand the bucket rings back to
	// the engine's storage pool for the next run. Error paths skip this
	// because diagnose() wants to inspect the queues.
	for _, t := range s.tiles {
		t.eng.Recycle()
	}
	return nil
}

// windowLoop is the coordinator: release barriers, compute per-tile
// bounds, run the active tiles, inject the messages they parked,
// repeat until no tile has work. It returns only the watchdog error.
//
// The loop is round-heavy — tightly coupled tiles advance only about
// one lookahead per round — so its bookkeeping is incremental: tile
// peeks live in a cached array (only tiles that ran or received an
// injection can change), barrier and completion counts are maintained
// as flags flip rather than recounted, and each round's scans touch
// the active tiles plus one pass over the compact peek array.
func (s *System) windowLoop(pool *pdesPool) error {
	W := s.mesh.Lookahead()
	active := make([]*tile, 0, len(s.tiles))
	peeks := make([]engine.Cycle, len(s.tiles))
	const noWork = ^engine.Cycle(0) // sentinel: tile's queue is empty
	for i, t := range s.tiles {
		peeks[i] = noWork
		if at, ok := t.eng.PeekCycle(); ok {
			peeks[i] = at
		}
	}
	arrived, done := 0, 0

	// Self-profiling (EnableSelfProf). Every telemetry site below
	// guards on this one pointer, so the disabled loop pays a handful
	// of predictable branches per round and zero clock reads.
	prof := s.selfProf
	var loopStart, roundStart time.Time
	var lastEvents uint64
	if prof != nil {
		loopStart = time.Now()
	}

	// simNow is the deterministic high-water mark of executed cycles:
	// the max of every tile's clock across all completed rounds. It is
	// a function of the tiles' event histories only (bounds derive from
	// queue states, self-caps from the tiles' own sends), so it is
	// identical across worker counts and queue implementations.
	var simNow engine.Cycle

	for {
		// Global barrier release. Arrival is recorded per tile as the
		// arrival events run and counted at the round edge below; the
		// count-and-release that the sequential mode performs inline
		// happens here, the earliest globally-consistent point. The
		// resume cycle simNow is past every tile's clock, so the
		// released cores schedule cleanly, and any requests they then
		// issue arrive at other tiles at simNow+W or later — past
		// every bound computed from their resume events.
		if arrived > 0 && arrived+done == s.cfg.Cores {
			for i, t := range s.tiles {
				if t.barrierArrived {
					t.barrierArrived = false
					t.barrierCounted = false
					t.eng.ScheduleRunnerAt(simNow, &s.cpus[t.id].stepEv)
					if simNow < peeks[i] {
						peeks[i] = simNow
					}
				}
			}
			arrived = 0
			if prof != nil {
				prof.BarrierReleases++
			}
		}

		// One pass over the peek array finds the earliest queued cycle
		// (min1, at minIdx) and the earliest elsewhere (min2). A tie
		// leaves min2 == min1, which is exactly right: a same-cycle
		// peer bounds the minimum tile like any other tile does.
		min1, min2 := noWork, noWork
		minIdx := -1
		for i, p := range peeks {
			if p < min1 {
				min2 = min1
				min1, minIdx = p, i
			} else if p < min2 {
				min2 = p
			}
		}
		if minIdx < 0 {
			break // every queue drained: the machine is done
		}
		if prof != nil {
			prof.Rounds++
			roundStart = time.Now()
		}

		// Per-tile bounds. Ordinary tiles may run below min1+W (nothing
		// can reach them earlier). The minimum tile is bounded by the
		// REST of the machine, min2+W — when the rest is idle or far in
		// the future this is the window-skipping/coalescing case: one
		// extended run (capped at soloSlice so the watchdog keeps its
		// teeth) replaces what used to be a train of W-cycle windows
		// with a full scan-and-barrier round each. Extended runs
		// self-cap on their own sends via Engine.LimitTo. Tiles whose
		// bound doesn't clear their peek skip the round without
		// claiming a worker slot.
		boundOthers := min1 + W
		for i, p := range peeks {
			if p >= boundOthers {
				if prof != nil {
					ts := &prof.Tiles[i]
					ts.IdleRounds++
					if p != noWork {
						ts.SkippedWithWork++
					}
				}
				continue
			}
			t := s.tiles[i]
			if i != minIdx {
				t.bound = boundOthers
			} else {
				t.bound = min1 + soloSlice
				if min2 != noWork && min2+W < t.bound {
					t.bound = min2 + W
				}
				if prof != nil {
					prof.Width.Observe(uint64(t.bound - min1))
					if t.bound > boundOthers {
						prof.SoloExtendedRounds++
					}
				}
			}
			if prof != nil {
				ts := &prof.Tiles[i]
				ts.BusyRounds++
				// The round number rides the epoch release into the
				// worker that stamps this tile's span.
				ts.CurRound = prof.Rounds
			}
			active = append(active, t)
		}

		var runStart time.Time
		if prof != nil {
			runStart = time.Now()
		}
		if pool == nil || len(active) == 1 {
			if prof != nil {
				prof.InlineRounds++
			}
			for _, t := range active {
				t.runWindow()
			}
		} else {
			pool.run(active)
		}
		if prof != nil {
			prof.RunNs += int64(time.Since(runStart))
		}

		// Post-round pass over the tiles that ran (only they can have
		// moved their clock, parked messages, or flipped flags):
		// advance simNow, inject parked cross-tile messages — an
		// arrival is never in the receiver's past: it is at least the
		// sender's round-start peek plus W, which bounded the
		// receiver's round — and refresh the peek cache. An injection
		// lowers the destination's cached peek directly; the sender's
		// own queue is re-peeked after its run.
		for _, t := range active {
			if now := t.eng.Now(); now > simNow {
				simNow = now
			}
			for _, om := range t.outbox {
				s.tiles[om.m.Dst].eng.ScheduleRunnerAt(om.at, om.m)
				if om.at < peeks[om.m.Dst] {
					peeks[om.m.Dst] = om.at
				}
			}
			if prof != nil {
				prof.InjectedMsgs += uint64(len(t.outbox))
			}
			t.outbox = t.outbox[:0]
			peeks[t.id] = noWork
			if at, ok := t.eng.PeekCycle(); ok {
				peeks[t.id] = at
			}
			if t.coreDone && !t.doneCounted {
				t.doneCounted = true
				done++
			}
			if t.barrierArrived && !t.barrierCounted {
				t.barrierCounted = true
				arrived++
			}
		}
		active = active[:0]
		s.pdesNow = simNow

		if prof != nil {
			cur := s.EventsProcessed()
			prof.RecordRound(selfprof.Span{
				Round:   prof.Rounds,
				StartNs: int64(roundStart.Sub(prof.Start)),
				DurNs:   int64(time.Since(roundStart)),
				Clock:   uint64(simNow),
				Events:  cur - lastEvents,
			})
			lastEvents = cur
		}

		if s.cfg.MaxEvents > 0 && s.EventsProcessed() >= s.cfg.MaxEvents && s.pdesPending() > 0 {
			return fmt.Errorf("core: watchdog fired after %d events (livelock?)\n%s",
				s.EventsProcessed(), s.diagnose())
		}

		// Timeline ticks are nominal: a sample labelled cycle C is
		// taken at the first round edge at or past C. The round
		// sequence depends only on event timings, so samples are
		// worker-count independent.
		if s.timelineInterval > 0 {
			for s.nextSample <= simNow {
				s.samplePDES(s.nextSample)
				s.nextSample += s.timelineInterval
			}
		}
	}
	if prof != nil {
		prof.LoopNs = int64(time.Since(loopStart))
	}
	return nil
}

// pdesCheck rejects configurations whose hooks assume a single global
// event order. These remain available in the sequential mode.
func (s *System) pdesCheck() error {
	if W := s.mesh.Lookahead(); W < 1 {
		return fmt.Errorf("core: parallel run needs positive NoC lookahead, got %d", W)
	}
	if s.obs != nil {
		return fmt.Errorf("core: workers > 0 is incompatible with a correctness observer (its invariant checks need one global event order); run with workers 0")
	}
	if s.cfg.Noc.ModelContention {
		return fmt.Errorf("core: workers > 0 is incompatible with NoC contention modelling (links are shared state across tiles); run with workers 0")
	}
	return nil
}

// pdesPending counts work anywhere in the machine: queued events plus
// parked outbox messages.
func (s *System) pdesPending() int {
	n := 0
	for _, t := range s.tiles {
		n += t.eng.Pending() + len(t.outbox)
	}
	return n
}

// samplePDES takes one nominal timeline tick: rebuild the merged stats
// view, append the sample, and feed the metrics registry and live hook.
func (s *System) samplePDES(cycle engine.Cycle) {
	s.mergeShardStats()
	s.checkStalls(cycle)
	s.timeline = append(s.timeline, TimelineSample{
		Cycle:    cycle,
		Accesses: s.st.Accesses,
		Misses:   s.st.L1Misses,
		Traffic:  s.st.TrafficTotal(),
		FlitHops: s.st.FlitHops,
	})
	if s.metrics != nil {
		s.metrics.Sample(uint64(cycle))
	}
	if s.onSample != nil {
		s.onSample(uint64(cycle))
	}
}

// mergeShardStats rebuilds s.st from the per-tile shards. The shards
// stay authoritative for the whole run and the rebuild starts from
// zero, so mid-run samples and the final merge use the same path.
func (s *System) mergeShardStats() {
	per := s.st.PerCore
	*s.st = stats.Stats{PerCore: per}
	for i := range per {
		per[i] = stats.CoreStats{}
	}
	for _, t := range s.tiles {
		s.st.Merge(t.st)
	}
}

// mergePDES folds every per-tile/per-core observability shard into the
// targets handed out by the Enable* methods before the run.
func (s *System) mergePDES() {
	s.mergeShardStats()
	if s.lat != nil {
		for _, sh := range s.latShards {
			s.lat.Merge(sh)
		}
	}
	if s.attrib != nil {
		for _, t := range s.tiles {
			s.attrib.Merge(t.attrib)
		}
	}
	if s.rec != nil {
		var evs []obs.Event
		var dropped uint64
		for _, t := range s.tiles {
			evs = append(evs, t.rec.Snapshot()...)
			dropped += t.rec.Dropped()
		}
		// Stable sort: ties keep tile order, so the merged trace is
		// worker-count independent.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
		for _, ev := range evs {
			s.rec.Record(ev)
		}
		s.rec.AddDropped(dropped)
	}
	if s.transitions != nil {
		for _, t := range s.tiles {
			for k, v := range t.transitions {
				s.transitions[k] += v
			}
		}
	}
}

// runWindow executes this tile's window for the current round. It is
// the single call shape every execution path uses — the inline
// coordinator path and the crew's stride loops — so busy wall-clock,
// per-round event deltas, and round spans have exactly one accounting
// point. With self-prof disabled it degrades to one nil check in front
// of RunUntil.
func (t *tile) runWindow() {
	ts := t.prof
	if ts == nil {
		t.eng.RunUntil(t.bound)
		return
	}
	start := time.Now()
	before := t.eng.Processed()
	t.eng.RunUntil(t.bound)
	dur := time.Since(start)
	ev := t.eng.Processed() - before
	ts.Events += ev
	ts.WallNs += int64(dur)
	ts.RecordSpan(selfprof.Span{
		Round:   ts.CurRound,
		StartNs: int64(start.Sub(ts.Epoch)),
		DurNs:   int64(dur),
		Bound:   uint64(t.bound),
		Clock:   uint64(t.eng.Now()),
		Events:  ev,
	})
}

// pdesPool is the persistent worker crew behind the window loop. The
// window-loop goroutine doubles as worker 0; workers 1..n-1 spin on an
// epoch counter, so handing off a window costs two atomic operations
// rather than a park/unpark round trip — a window is typically a few
// microseconds of work, and futex wakeups would dominate it.
type pdesPool struct {
	workers int
	active  []*tile
	epoch   atomic.Uint64
	done    []padUint64
	quit    atomic.Bool

	// prof, when non-nil, receives per-worker spin/busy wall-clock and
	// the coordinator's barrier wait. Set before the crew launches.
	prof *selfprof.Profile
}

// padUint64 keeps each worker's completion counter on its own cache
// line so the coordinator's polling doesn't bounce lines between
// workers.
type padUint64 struct {
	v atomic.Uint64
	_ [56]byte
}

func newPDESPool(workers int, prof *selfprof.Profile) *pdesPool {
	if workers <= 1 {
		return nil
	}
	p := &pdesPool{workers: workers, done: make([]padUint64, workers), prof: prof}
	for w := 1; w < workers; w++ {
		go func(w int) {
			// Label the crew goroutines so -cpuprofile attributes
			// simulation work per worker; see docs/OBSERVABILITY.md.
			pprof.Do(context.Background(),
				pprof.Labels("pdes", "worker-"+strconv.Itoa(w)),
				func(context.Context) { p.work(w) })
		}(w)
	}
	return p
}

// work is worker w's loop: wait for a new epoch, run the tiles dealt to
// this worker by static stride, post completion. The epoch increment
// happens-after the coordinator writes active, and the done store
// happens-after the tile runs, so no other synchronization is needed.
func (p *pdesPool) work(w int) {
	var seen uint64
	// Self-prof: bracket the spin and busy stretches with clock reads.
	// The shard writes are ordered against the coordinator's reads by
	// the done-counter store below (and the epoch load above), so plain
	// fields suffice; with prof disabled no clock is ever read.
	var ws *selfprof.WorkerShard
	var waitStart time.Time
	if p.prof != nil {
		ws = &p.prof.WorkerWait[w]
		waitStart = time.Now()
	}
	for {
		e := p.epoch.Load()
		if e == seen {
			if p.quit.Load() {
				return
			}
			runtime.Gosched()
			continue
		}
		seen = e
		var busyStart time.Time
		if ws != nil {
			busyStart = time.Now()
			ws.SpinNs += int64(busyStart.Sub(waitStart))
			ws.Rounds++
		}
		for i := w; i < len(p.active); i += p.workers {
			p.active[i].runWindow()
		}
		if ws != nil {
			waitStart = time.Now()
			ws.BusyNs += int64(waitStart.Sub(busyStart))
		}
		p.done[w].v.Store(e)
	}
}

// run executes one round across the crew. The active list holds only
// tiles with runnable work (idle tiles never claim a slot), each tagged
// with its own bound. Tiles are independent inside a round, so the
// round-robin deal cannot affect results — only load balance.
func (p *pdesPool) run(active []*tile) {
	p.active = active
	e := p.epoch.Add(1)
	for i := 0; i < len(active); i += p.workers {
		active[i].runWindow()
	}
	var waitStart time.Time
	if p.prof != nil {
		waitStart = time.Now()
	}
	for w := 1; w < p.workers; w++ {
		for p.done[w].v.Load() != e {
			runtime.Gosched()
		}
	}
	if p.prof != nil {
		p.prof.CoordWaitNs += int64(time.Since(waitStart))
	}
}

// stop retires the crew; nil-safe so the single-worker path can defer
// it unconditionally.
func (p *pdesPool) stop() {
	if p == nil {
		return
	}
	p.quit.Store(true)
}
