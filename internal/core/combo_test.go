package core

// Everything-at-once stress: all Section 6 extensions and models
// enabled simultaneously, under the full SWMR/golden-value checker.
// Feature interactions (3-hop forwarding into a bloom-tracked,
// non-inclusive, finite, contended machine with merging caches and
// RMWs in the mix) are where protocols usually break.

import (
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/noc"
	"protozoa/internal/trace"
)

func TestEverythingCombinedStress(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			cfg.ThreeHop = true
			cfg.Directory = DirBloom
			cfg.BloomHashes = 2
			cfg.BloomBuckets = 16 // aggressive aliasing
			cfg.NonInclusiveL2 = true
			cfg.L2RegionsPerTile = 2 // 14 regions over 4 tiles: must recall
			cfg.MergeL1Blocks = true
			cfg.Noc.ModelContention = true
			cfg.Noc.Topology = noc.TopoRing
			cfg.L1Sets = 2
			cfg.L1SetBudget = 144
			cfg.MaxEvents = 12_000_000

			streams := make([]trace.Stream, 4)
			for c := 0; c < 4; c++ {
				rng := trace.NewRNG(uint64(31337 + c))
				var recs []trace.Access
				for i := 0; i < 1200; i++ {
					a := trace.Access{
						Addr: mem.Addr(rng.Intn(14)*64 + rng.Intn(8)*8),
						PC:   uint64(0x400 + rng.Intn(6)*4),
					}
					switch r := rng.Intn(100); {
					case r < 45:
						a.Kind = trace.Load
					case r < 80:
						a.Kind = trace.Store
					default:
						a.Kind = trace.RMW
					}
					recs = append(recs, a)
				}
				streams[c] = trace.NewSliceStream(recs)
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(t, sys)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if chk.Checks == 0 || chk.Loads == 0 {
				t.Error("checker idle")
			}
			st := sys.Stats()
			// Every enabled feature must actually have fired.
			if st.Recalls == 0 {
				t.Error("finite L2 never recalled")
			}
			if st.LinkStallCycles == 0 {
				t.Error("contention model never stalled")
			}
			if st.Accesses != 4800 {
				t.Errorf("accesses = %d, want 4800", st.Accesses)
			}
		})
	}
}

// TestFlowSWMRRevocation is the Section 3.5 discussion case: under
// SW+MR, when Core-0 writes words 0-3 while Core-3 owns word 7, the
// protocol revokes Core-3's write permission (it stays only a sharer),
// so "subsequent readers do not need to ping Core-3" — unlike MW,
// which keeps Core-3 an owner.
func TestFlowSWMRRevocation(t *testing.T) {
	run := func(p Protocol) *System {
		cfg := testConfig(p, 4)
		cfg.PredictorOverride = oneWordOverride
		base := mem.Addr(512 * 64)
		bar := trace.Access{Kind: trace.Barrier}
		streams := []trace.Stream{
			trace.NewSliceStream([]trace.Access{bar, st(base), bar}), // Core-0: GETX word 0
			trace.NewSliceStream([]trace.Access{bar, bar}),
			trace.NewSliceStream([]trace.Access{bar, bar, ld(base + 8)}),   // reader after the write
			trace.NewSliceStream([]trace.Access{st(base + 7*8), bar, bar}), // Core-3: owner of word 7
		}
		sys, err := NewSystem(cfg, streams)
		if err != nil {
			t.Fatal(err)
		}
		sys.EnableMessageLog(0)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys
	}

	// SW+MR: Core-3's reply to the FWD_GETX reports StillOwner=false,
	// and the later read probes nobody.
	swmr := run(ProtozoaSWMR)
	var revoked, readerForwards bool
	var sawWrite bool
	for _, e := range swmr.MessagesForRegion(512) {
		m := &e.Msg
		switch {
		case m.Type == MsgFwdGetX && m.Dst == 3:
			sawWrite = true
		case sawWrite && m.Src == 3 && (m.Type == MsgAckS || m.Type == MsgAck || m.Type == MsgWback):
			if !m.StillOwner {
				revoked = true
			}
		case revoked && m.Type == MsgFwdGetS && m.Dst == 3:
			readerForwards = true
		}
	}
	if !revoked {
		t.Fatal("SW+MR did not revoke the non-overlapping owner")
	}
	if readerForwards {
		t.Error("SW+MR reader still pinged the revoked owner")
	}

	// MW: Core-3 stays an owner, so the read must forward to it.
	mw := run(ProtozoaMW)
	var mwReaderForward bool
	for _, e := range mw.MessagesForRegion(512) {
		if e.Msg.Type == MsgFwdGetS && e.Msg.Dst == 3 {
			mwReaderForward = true
		}
	}
	if !mwReaderForward {
		t.Error("MW reader did not ping the retained owner (Section 3.5 contrast)")
	}
}
