package core

// Protocol-property audits: Table 3's per-variant message distinctions
// asserted over complete random-run transcripts.

import (
	"testing"

	"protozoa/internal/trace"
)

func runAudited(t *testing.T, p Protocol, seed uint64) *System {
	t.Helper()
	cfg := testConfig(p, 4)
	cfg.L1Sets = 2 // force evictions so WBACK/WBACK_LAST both appear
	cfg.L1SetBudget = 144
	cfg.MaxEvents = 5_000_000
	perCore := randomStreams(4, 1200, 10, 40, seed)
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = trace.NewSliceStream(perCore[i])
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableMessageLog(1 << 20)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestAuditRegionGranularityInvalidation: under MESI and Protozoa-SW,
// an invalidation probe always removes the responder's entire region
// footprint — no probe reply may keep the responder a sharer.
func TestAuditRegionGranularityInvalidation(t *testing.T) {
	for _, p := range []Protocol{MESI, ProtozoaSW} {
		t.Run(p.String(), func(t *testing.T) {
			sys := runAudited(t, p, 101)
			probed := make(map[uint64]bool) // TxnIDs of FwdGetX/Inv probes
			for _, e := range sys.MessageLog() {
				switch e.Msg.Type {
				case MsgFwdGetX, MsgInv:
					probed[e.Msg.TxnID] = true
				case MsgAck, MsgAckS, MsgWback, MsgWbackLast:
					if e.Msg.TxnID != 0 && probed[e.Msg.TxnID] && e.Msg.StillSharer {
						t.Fatalf("region-granularity protocol kept a sharer on invalidation: %s", e)
					}
				}
			}
		})
	}
}

// TestAuditAckSOnlyInAdaptiveCoherence: ACK-S with retained residency
// on a write probe is the SW+MR/MW addition (Table 3); it must occur
// there under contention.
func TestAuditAckSOnlyInAdaptiveCoherence(t *testing.T) {
	for _, p := range []Protocol{ProtozoaSWMR, ProtozoaMW} {
		t.Run(p.String(), func(t *testing.T) {
			sys := runAudited(t, p, 101)
			probed := make(map[uint64]bool)
			found := false
			for _, e := range sys.MessageLog() {
				switch e.Msg.Type {
				case MsgFwdGetX, MsgInv:
					probed[e.Msg.TxnID] = true
				case MsgAckS:
					if e.Msg.TxnID != 0 && probed[e.Msg.TxnID] && e.Msg.StillSharer {
						found = true
					}
				}
			}
			if !found {
				t.Error("no ACK-S with retained residency under adaptive coherence")
			}
		})
	}
}

// TestAuditSingleWriterRevocation: Protozoa-SW+MR's probed owners are
// always fully revoked (StillOwner never survives a FWD_GETX reply).
func TestAuditSingleWriterRevocation(t *testing.T) {
	sys := runAudited(t, ProtozoaSWMR, 202)
	fwdX := make(map[uint64]bool)
	fwdXDst := make(map[uint64]map[int]bool)
	for _, e := range sys.MessageLog() {
		m := &e.Msg
		switch m.Type {
		case MsgFwdGetX:
			fwdX[m.TxnID] = true
			if fwdXDst[m.TxnID] == nil {
				fwdXDst[m.TxnID] = make(map[int]bool)
			}
			fwdXDst[m.TxnID][m.Dst] = true
		case MsgAck, MsgAckS, MsgWback, MsgWbackLast:
			// Only replies from nodes that received FWD_GETX (owners).
			if m.TxnID != 0 && fwdX[m.TxnID] && fwdXDst[m.TxnID][m.Src] && m.StillOwner {
				t.Fatalf("SW+MR owner survived a write probe: %s", e)
			}
		}
	}
}

// TestAuditMultiOwnerOnlyInMW: more than one concurrent owner of a
// region is Protozoa-MW's defining relaxation.
func TestAuditMultiOwnerOnlyInMW(t *testing.T) {
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			sys := runAudited(t, p, 303)
			multi := sys.Stats().DirMultiOwner
			if p == ProtozoaMW && multi == 0 {
				t.Error("MW random run never reached a multi-owner state")
			}
			if p != ProtozoaMW && multi != 0 {
				t.Errorf("%v recorded %d multi-owner directory states", p, multi)
			}
		})
	}
}

// TestAuditWbackLastDistinction: the WBACK vs WBACK_LAST split exists
// because Protozoa keeps multiple blocks per region; MESI's
// fixed-granularity evictions are always the last block.
func TestAuditWbackLastDistinction(t *testing.T) {
	count := func(p Protocol) (wback, last int) {
		sys := runAudited(t, p, 404)
		for _, e := range sys.MessageLog() {
			if e.Msg.TxnID != 0 {
				continue // probe replies reuse the WBACK type; evictions are spontaneous
			}
			switch e.Msg.Type {
			case MsgWback:
				wback++
			case MsgWbackLast:
				last++
			}
		}
		return
	}
	if wback, last := count(MESI); wback != 0 || last == 0 {
		t.Errorf("MESI evictions: %d non-last WBACKs (want 0), %d WBACK_LAST (want > 0)", wback, last)
	}
	if wback, _ := count(ProtozoaMW); wback == 0 {
		t.Error("Protozoa-MW evictions never produced a non-last WBACK")
	}
}

// TestAuditUpgradeNeverForwarded: UPGRADE requests carry no data, so
// the directory must never mark their probes for direct forwarding.
func TestAuditUpgradeNeverForwarded(t *testing.T) {
	cfg := testConfig(ProtozoaMW, 4)
	cfg.ThreeHop = true
	cfg.MaxEvents = 5_000_000
	perCore := randomStreams(4, 1200, 8, 40, 505)
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = trace.NewSliceStream(perCore[i])
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableMessageLog(1 << 20)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	upgradeTxns := make(map[uint64]bool)
	// Map probes back to the request type via transaction ordering: an
	// UPGRADE's probes share its region and follow it. Simpler and
	// sufficient: no GRANT may ever follow a direct-forwarded fill, and
	// no Direct probe may belong to a txn that ends in GRANT.
	directTxns := make(map[uint64]bool)
	for _, e := range sys.MessageLog() {
		if e.Msg.Direct {
			directTxns[e.Msg.TxnID] = true
		}
		if e.Msg.Type == MsgGrant {
			upgradeTxns[e.Msg.TxnID] = true
		}
	}
	for id := range directTxns {
		if id != 0 && upgradeTxns[id] {
			t.Fatalf("txn %d used direct forwarding for an upgrade", id)
		}
	}
}
