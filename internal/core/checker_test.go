package core

// The oracle itself must be falsifiable: feed the Checker wrong values
// and confirm it records violations (so the zero-violation results of
// the stress suite mean something).

import (
	"strings"
	"testing"

	"protozoa/internal/trace"
)

func TestCheckerDetectsWrongLoadValue(t *testing.T) {
	cfg := testConfig(MESI, 1)
	sys, err := NewSystem(cfg, []trace.Stream{trace.NewSliceStream(nil)})
	if err != nil {
		t.Fatal(err)
	}
	chk := NewChecker(sys)
	chk.OnStore(0, 0x100, 42)
	chk.OnLoad(0, 0x100, 42) // correct: no violation
	if chk.Err() != nil {
		t.Fatalf("false positive: %v", chk.Err())
	}
	chk.OnLoad(0, 0x100, 7) // wrong value
	if chk.Err() == nil {
		t.Fatal("checker missed a wrong load value")
	}
	if len(chk.Violations()) != 1 {
		t.Errorf("violations = %d, want 1", len(chk.Violations()))
	}
	if !strings.Contains(chk.Err().Error(), "golden") {
		t.Errorf("Err = %v", chk.Err())
	}
}

func TestCheckerDetectsStaleCachedValue(t *testing.T) {
	// Run a tiny workload, then move the golden value from under the
	// resident copy: the quiescent scan must flag it.
	cfg := testConfig(MESI, 1)
	sys, err := NewSystem(cfg, []trace.Stream{
		trace.NewSliceStream([]trace.Access{ld(0x40)}),
	})
	if err != nil {
		t.Fatal(err)
	}
	chk := NewChecker(sys)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if chk.Err() != nil {
		t.Fatalf("clean run flagged: %v", chk.Err())
	}
	chk.OnStore(0, 0x40, 999) // golden diverges from the cached zero
	chk.OnTxnEnd(1)
	if chk.Err() == nil {
		t.Fatal("checker missed a stale cached value")
	}
}

func TestCheckerDetectsSWMRViolationShape(t *testing.T) {
	// Force a fake multi-writer situation by running MW (where two
	// cores legitimately hold disjoint words M) and then asking the
	// checker to apply the stricter region rule: reuse the internal
	// walk by constructing a Protozoa-SW system whose caches we seed by
	// running MW traffic is not possible; instead verify MaxViolations
	// capping on the load path.
	cfg := testConfig(MESI, 1)
	sys, err := NewSystem(cfg, []trace.Stream{trace.NewSliceStream(nil)})
	if err != nil {
		t.Fatal(err)
	}
	chk := NewChecker(sys)
	chk.OnStore(0, 0x8, 1)
	for i := 0; i < 2*MaxViolations; i++ {
		chk.OnLoad(0, 0x8, 12345)
	}
	if got := len(chk.Violations()); got != MaxViolations {
		t.Errorf("violations = %d, want capped at %d", got, MaxViolations)
	}
}

func TestSystemIntrospectionHelpers(t *testing.T) {
	sys := runSys(t, testConfig(MESI, 2), [][]trace.Access{{st(0x0)}, nil})
	if sys.Engine() == nil || sys.Engine().Processed() == 0 {
		t.Error("Engine() not exposed")
	}
	// Region 0 homes on tile 0; word 0 was stored, so the L2 entry
	// exists (value possibly stale in L2 until writeback — existence is
	// what we assert).
	if _, ok := sys.L2Word(0, 0); !ok {
		t.Error("L2Word missed the touched region")
	}
	if _, ok := sys.L2Word(999, 0); ok {
		t.Error("L2Word invented an untouched region")
	}
	if sys.DirBusy(0) {
		t.Error("region busy after quiescence")
	}
	if sys.DirBusy(999) {
		t.Error("untouched region reported busy")
	}
}
