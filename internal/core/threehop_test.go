package core

// Tests for the 3-hop extension (Section 6, "3-hop vs 4-hop"): direct
// owner-to-requester forwarding with 4-hop fallback when the forward
// cannot complete at the owner.

import (
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

// regAddr is the base address of the i-th 64-byte region.
func regAddr(i int) mem.Addr { return mem.Addr(i * 64) }

func threeHopCfg(p Protocol, n int) Config {
	cfg := testConfig(p, n)
	cfg.ThreeHop = true
	return cfg
}

func TestThreeHopForwardsOwnerData(t *testing.T) {
	// Core 1 dirties a region; core 0 reads it. The owner covers the
	// whole (full-region) request, so it must forward directly.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			sys := runSys(t, threeHopCfg(p, 2), [][]trace.Access{
				{{Kind: trace.Barrier}, ld(0x1000)},
				{st(0x1000), {Kind: trace.Barrier}},
			})
			if sys.Stats().DirectForwards == 0 {
				t.Error("no direct forwards on an owned-region read")
			}
		})
	}
}

func TestThreeHopValueCorrect(t *testing.T) {
	// The forwarded data must carry the owner's dirty value.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := threeHopCfg(p, 2)
			streams := []trace.Stream{
				trace.NewSliceStream([]trace.Access{{Kind: trace.Barrier}, ld(0x1000)}),
				trace.NewSliceStream([]trace.Access{st(0x1000), {Kind: trace.Barrier}}),
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			rec := &loadRecorder{}
			sys.SetObserver(rec)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			want := uint64(2)<<40 | 1
			if len(rec.loads) != 1 || rec.loads[0].val != want {
				t.Errorf("loads = %+v, want value %#x", rec.loads, want)
			}
		})
	}
}

func TestThreeHopFallbackOnPartialCoverage(t *testing.T) {
	// With a one-word predictor, the owner holds only word 0 while the
	// requester asks for word 4's fill trimmed range — for MESI-style
	// full requests the owner holds word 0 only, so a read of words
	// beyond it cannot complete at the owner and falls back to 4-hop.
	cfg := threeHopCfg(ProtozoaSW, 2)
	cfg.PredictorOverride = oneWordOverride
	sys := runSys(t, cfg, [][]trace.Access{
		{{Kind: trace.Barrier}, ld(0x1020)}, // word 4: owner has only word 0
		{st(0x1000), {Kind: trace.Barrier}},
	})
	st := sys.Stats()
	if st.DirectForwards != 0 {
		t.Errorf("direct forwards = %d, want 0 (partial coverage must fall back)", st.DirectForwards)
	}
	if st.L1Misses != 2 {
		t.Errorf("misses = %d, want 2", st.L1Misses)
	}
}

func TestThreeHopFallbackOnStaleOwner(t *testing.T) {
	// The owner silently dropped its clean-exclusive block: the forward
	// cannot complete (the paper's E-dropped case) and the directory
	// supplies the data itself after the NACK.
	cfg := threeHopCfg(MESI, 2)
	cfg.L1Sets = 1
	var c0 []trace.Access
	c0 = append(c0, ld(0x0)) // E grant
	for i := 1; i <= 8; i++ {
		c0 = append(c0, ld(regAddr(i))) // silently evict region 0
	}
	c0 = append(c0, trace.Access{Kind: trace.Barrier})
	sys := runSys(t, cfg, [][]trace.Access{
		c0,
		{{Kind: trace.Barrier}, ld(0x0)},
	})
	st := sys.Stats()
	if st.DirectForwards != 0 {
		t.Errorf("direct forwards = %d, want 0 (stale owner)", st.DirectForwards)
	}
	if st.ControlBytes[4] == 0 { // ClassNACK
		t.Error("expected a NACK from the stale owner")
	}
}

func TestThreeHopReducesLatency(t *testing.T) {
	// A chain of owner-to-owner transfers: 3-hop should not be slower
	// than 4-hop and should normally be faster.
	mk := func() [][]trace.Access {
		var a, b []trace.Access
		for i := 0; i < 120; i++ {
			addr := regAddr(i % 8)
			a = append(a, st(addr))
			b = append(b, st(addr))
		}
		return [][]trace.Access{a, b}
	}
	four := runSys(t, testConfig(MESI, 2), mk())
	three := runSys(t, threeHopCfg(MESI, 2), mk())
	if three.Stats().ExecCycles > four.Stats().ExecCycles {
		t.Errorf("3-hop cycles %d > 4-hop cycles %d", three.Stats().ExecCycles, four.Stats().ExecCycles)
	}
	if three.Stats().DirectForwards == 0 {
		t.Error("3-hop never forwarded on a migratory chain")
	}
}

func TestThreeHopStress(t *testing.T) {
	// The full random tester with golden-value checking under 3-hop.
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			cfg.ThreeHop = true
			cfg.MaxEvents = 5_000_000
			perCore := randomStreams(4, 1500, 8, 40, 77)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(t, sys)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if chk.Checks == 0 {
				t.Error("checker never ran")
			}
		})
	}
}
