package core

import (
	"fmt"
	"sort"
	"strings"
)

// diagnose renders a stalled machine's state — the report attached to
// deadlock and watchdog errors so a protocol bug can be localized
// without re-running under a debugger: per-core progress and open
// MSHRs, busy directory entries with their transaction and queue
// state, and the barrier population.
func (s *System) diagnose() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine state at %d cycles (%d events):\n", s.simNow(), s.EventsProcessed())
	for _, c := range s.cpus {
		status := "running"
		if c.done {
			status = "done"
		}
		fmt.Fprintf(&b, "  core %2d: %-7s", c.id, status)
		l1 := s.l1s[c.id]
		if !l1.msLive {
			fmt.Fprintf(&b, " no open MSHRs\n")
			continue
		}
		ms := &l1.ms
		kind := "GETS"
		if ms.upgrade {
			kind = "UPGRADE"
		} else if ms.mode.write() {
			kind = "GETX"
		}
		fmt.Fprintf(&b, " MSHR: region %d %s [%s] since cycle %d\n",
			ms.region, kind, ms.want, ms.issuedAt)
	}
	busy := 0
	for _, d := range s.dirs {
		var entries []*dirEntry
		for _, chunk := range d.dense {
			for _, e := range chunk {
				if e != nil {
					entries = append(entries, e)
				}
			}
		}
		for _, e := range d.sparse {
			entries = append(entries, e)
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].region < entries[j].region })
		for _, e := range entries {
			if !e.busy {
				continue
			}
			busy++
			fmt.Fprintf(&b, "  %s\n", dirEntryLine(d, e))
		}
	}
	if busy == 0 {
		fmt.Fprintf(&b, "  no busy directory entries\n")
	}
	fmt.Fprintf(&b, "  barrier: %d arrived, %d cores done\n", s.barrierArrived, s.coresDone)
	if tail := s.flightTail(stallTranscriptCap); tail != "" {
		fmt.Fprintf(&b, "flight transcript (last %d records):\n%s", stallTranscriptCap, tail)
	}
	return b.String()
}
