package core

import (
	"fmt"
	"sort"
	"strings"

	"protozoa/internal/mem"
)

// diagnose renders a stalled machine's state — the report attached to
// deadlock and watchdog errors so a protocol bug can be localized
// without re-running under a debugger: per-core progress and open
// MSHRs, busy directory entries with their transaction and queue
// state, and the barrier population.
func (s *System) diagnose() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine state at %d cycles (%d events):\n", s.eng.Now(), s.eng.Processed())
	for _, c := range s.cpus {
		status := "running"
		if c.done {
			status = "done"
		}
		fmt.Fprintf(&b, "  core %2d: %-7s", c.id, status)
		l1 := s.l1s[c.id]
		if len(l1.mshrs) == 0 {
			fmt.Fprintf(&b, " no open MSHRs\n")
			continue
		}
		var regions []string
		for region, ms := range l1.mshrs {
			kind := "GETS"
			if ms.upgrade {
				kind = "UPGRADE"
			} else if ms.mode.write() {
				kind = "GETX"
			}
			regions = append(regions, fmt.Sprintf("region %d %s [%s] since cycle %d",
				region, kind, ms.want, ms.issuedAt))
		}
		sort.Strings(regions)
		fmt.Fprintf(&b, " MSHRs: %s\n", strings.Join(regions, "; "))
	}
	busy := 0
	for _, d := range s.dirs {
		var regions []uint64
		for region := range d.entries {
			regions = append(regions, uint64(region))
		}
		sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
		for _, region := range regions {
			e := d.entries[mem.RegionID(region)]
			if !e.busy {
				continue
			}
			busy++
			fmt.Fprintf(&b, "  dir %2d region %d: busy sharers=%v owners=%v queue=%d",
				d.node, region, e.sharers, e.owners, len(e.queue))
			if e.txn != nil {
				fmt.Fprintf(&b, " txn=%d (%s) waiting=%d", e.txn.id, e.txn.req.Type, e.txn.waiting)
			} else {
				fmt.Fprintf(&b, " awaiting unblock")
			}
			if e.pendingUnblock {
				fmt.Fprintf(&b, " (unblock parked)")
			}
			fmt.Fprintf(&b, "\n")
		}
	}
	if busy == 0 {
		fmt.Fprintf(&b, "  no busy directory entries\n")
	}
	fmt.Fprintf(&b, "  barrier: %d arrived, %d cores done\n", s.barrierArrived, s.coresDone)
	return b.String()
}
