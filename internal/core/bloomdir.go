package core

// Bloom-filter sharer tracking: the Section 6 design alternative the
// paper points to ("bloom filter-based coherence directories that can
// summarize the blocks in the cache in fixed space ... can accommodate
// the variable number of amoeba blocks without significant tuning").
//
// Following the TL (Tagless) design quoted in the paper text — k hash
// functions over the region address, each selecting a bucket holding a
// P-bit sharing vector, with the lookup ANDing the k vectors — this
// implementation keeps one small counting filter per node per hash
// table. Counting makes removal sound for (region, node) pairs that
// were actually inserted; aliasing can only produce false-positive
// sharers, never false negatives, so extra probes are answered by
// NACKs and safety is preserved.
//
// Because a bloom filter cannot tolerate unpaired removals, bloom mode
// disables silent clean evictions: an L1 dropping its last block of a
// region notifies the directory (a data-less WBACK_LAST), exactly the
// replacement-notification discipline of the TL paper. A NACK in bloom
// mode therefore indicates a filter false positive and must not touch
// the counters.

import (
	"protozoa/internal/directory"
	"protozoa/internal/mem"
)

// DirectoryKind selects the sharer-tracking structure.
type DirectoryKind uint8

const (
	// DirPrecise is the paper's default in-cache directory: an exact
	// P-bit sharer vector per region.
	DirPrecise DirectoryKind = iota
	// DirBloom replaces the sharer vector with a TL-style counting
	// bloom filter (owners stay precise, as Protozoa-SW+MR's log-P
	// writer field and Protozoa-MW's writer vector require).
	DirBloom
)

// Default TL geometry from the design quoted in the paper: four hash
// tables with 64 buckets each.
const (
	DefaultBloomHashes  = 4
	DefaultBloomBuckets = 64
)

// bloomDir is one tile's counting-bloom sharer tracker.
type bloomDir struct {
	hashes  int
	buckets int
	nodes   int
	// counts[h][bucket*nodes + node]
	counts [][]uint16
}

func newBloomDir(hashes, buckets, nodes int) *bloomDir {
	b := &bloomDir{hashes: hashes, buckets: buckets, nodes: nodes}
	b.counts = make([][]uint16, hashes)
	for h := range b.counts {
		b.counts[h] = make([]uint16, buckets*nodes)
	}
	return b
}

// bucket hashes a region for table h (odd multiplicative constants
// give independent mixes).
func (b *bloomDir) bucket(h int, r mem.RegionID) int {
	x := uint64(r) * (0x9E3779B97F4A7C15 + 2*uint64(h)*0xBF58476D1CE4E5B9 + 1)
	x ^= x >> 29
	return int(x % uint64(b.buckets))
}

// add records node as a sharer of region r.
func (b *bloomDir) add(r mem.RegionID, node int) {
	for h := 0; h < b.hashes; h++ {
		b.counts[h][b.bucket(h, r)*b.nodes+node]++
	}
}

// remove erases one prior add of (r, node). It must only be called
// with pairs that were added (the replacement-notification discipline
// guarantees this).
func (b *bloomDir) remove(r mem.RegionID, node int) {
	for h := 0; h < b.hashes; h++ {
		idx := b.bucket(h, r)*b.nodes + node
		if b.counts[h][idx] > 0 {
			b.counts[h][idx]--
		}
	}
}

// sharers returns the (superset) sharer vector for region r: the AND
// over the k tables of each node's non-zero counters.
func (b *bloomDir) sharers(r mem.RegionID) directory.NodeSet {
	var out directory.NodeSet
	for n := 0; n < b.nodes; n++ {
		member := true
		for h := 0; h < b.hashes; h++ {
			if b.counts[h][b.bucket(h, r)*b.nodes+n] == 0 {
				member = false
				break
			}
		}
		if member {
			out = out.Add(n)
		}
	}
	return out
}
