package core

import (
	"fmt"
	"sort"
	"strings"

	"protozoa/internal/cache"
	"protozoa/internal/mem"
)

// Transition auditing: the simulator can record every observed
// (controller, state, event -> state) triple, the protocol's state
// machine as it actually executes. The conformance tests check the
// observed set against the documented legal machine (Figure 8 plus
// the Table 2/3 additions), so any change that introduces a novel
// transition fails loudly.

// Transition is one observed state-machine edge.
type Transition struct {
	Ctrl  string // "L1" or "Dir"
	From  string // state before the event
	Event string
	To    string // state after the event
}

// String renders the edge like a protocol table row.
func (t Transition) String() string {
	return fmt.Sprintf("%s: %s --%s--> %s", t.Ctrl, t.From, t.Event, t.To)
}

// EnableTransitionAudit starts recording transitions. Call before Run.
// Under PDES each tile records into its own map (merged into the
// returned table when the run completes); in legacy mode every tile
// shares the machine-wide map.
func (s *System) EnableTransitionAudit() {
	s.transitions = make(map[Transition]uint64)
	for _, t := range s.tiles {
		if s.pdes {
			t.transitions = make(map[Transition]uint64)
		} else {
			t.transitions = s.transitions
		}
	}
}

// Transitions returns the observed transition counts (nil if auditing
// was not enabled).
func (s *System) Transitions() map[Transition]uint64 { return s.transitions }

// TransitionTable renders the observed machine sorted for goldens.
func (s *System) TransitionTable() string {
	var keys []Transition
	for k := range s.transitions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Ctrl != b.Ctrl {
			return a.Ctrl < b.Ctrl
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		return a.To < b.To
	})
	var out strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&out, "%s (%d)\n", k, s.transitions[k])
	}
	return out.String()
}

func (t *tile) recordTransition(ctrl, from, event, to string) {
	if t.transitions == nil {
		return
	}
	t.transitions[Transition{Ctrl: ctrl, From: from, Event: event, To: to}]++
}

// l1RegionState summarizes a region's L1 state the way a protocol
// table names it: the strongest resident block state (I/S/E/M), with
// the MSHR transient appended when a miss is outstanding (e.g. "I_IM",
// "S_SM", "M_IS" — the Figure 6 race state).
func (l *l1Ctrl) regionState(region mem.RegionID) string {
	strongest := cache.Invalid
	for _, b := range l.cache.BlocksInRegion(region) {
		if b.State > strongest {
			strongest = b.State
		}
	}
	st := strongest.String()
	if ms := l.openMSHR(region); ms != nil {
		switch {
		case ms.upgrade:
			st += "_SM"
		case ms.mode.write():
			st += "_IM"
		default:
			st += "_IS"
		}
	}
	return st
}

// dirState names a directory entry's stable state per Table 2: O when
// any owner exists (O+ for Protozoa-MW's multiple owners), SS when only
// sharers exist, I otherwise.
func (d *dirSlice) dirState(e *dirEntry) string {
	switch {
	case e.owners.Count() > 1:
		return "O+"
	case e.owners.Count() == 1:
		return "O"
	case !e.sharers.Empty():
		return "SS"
	default:
		return "I"
	}
}
