package core

import (
	"fmt"
	"strings"

	"protozoa/internal/engine"
	"protozoa/internal/mem"
	"protozoa/internal/obs/flight"
)

// The message log is a view over the flight recorder: EnableMessageLog
// arms the recorder (sized in records to hold at least the requested
// message count) and MessageLog reconstructs MsgEvents from the merged
// msg-send records. Routing the legacy log through the sharded flight
// rings is what makes it legal under PDES — the old implementation was
// a single global ring, which assumed one global event order.

// MsgEvent is one logged coherence message.
type MsgEvent struct {
	Cycle engine.Cycle
	Msg   Msg // reconstructed from the flight record (no payload words)
}

// String renders the event like the paper's transaction diagrams:
// "GETX C0->T1 region 5 [0--3]".
func (e MsgEvent) String() string {
	m := &e.Msg
	var b strings.Builder
	fmt.Fprintf(&b, "@%-8d %-10s C%d->T%d region %d", e.Cycle, m.Type, m.Src, m.Dst, m.Region)
	switch m.Type {
	case MsgGetS, MsgGetX, MsgUpgrade, MsgFwdGetS, MsgFwdGetX, MsgInv,
		MsgData, MsgDataE, MsgDataM:
		fmt.Fprintf(&b, " [%s]", m.R)
	}
	if m.PayloadWords() > 0 {
		fmt.Fprintf(&b, " %dw", m.PayloadWords())
	}
	if m.Type == MsgAckS || m.Type == MsgAck || m.Type == MsgNack || m.Type == MsgWback || m.Type == MsgWbackLast {
		fmt.Fprintf(&b, " sharer=%v owner=%v", m.StillSharer, m.StillOwner)
	}
	if m.Direct {
		b.WriteString(" direct")
	}
	if m.ForwardedData {
		b.WriteString(" forwarded")
	}
	return b.String()
}

// EnableMessageLog starts recording the most recent capacity messages
// sent on the mesh — the protocol-transcript facility used by the
// golden flow tests and protozoa-sim's -msglog flag. Call before Run.
// Implemented on the flight recorder's per-tile rings, so it works
// under PDES with worker-count-independent output. If the flight
// recorder is already enabled its sizing wins.
func (s *System) EnableMessageLog(capacity int) {
	if capacity <= 0 {
		capacity = 4096
	}
	s.msgCap = capacity
	s.EnableFlightRecorder(capacity * flightRecordsPerMsg)
}

// msgEvent rebuilds a MsgEvent from a msg-send flight record. Payload
// word values are not retained by the recorder, only the Valid/Dirty
// masks — every transcript consumer keys on types, routes, ranges, and
// flags.
func msgEvent(r flight.Record) MsgEvent {
	return MsgEvent{
		Cycle: r.Cycle,
		Msg: Msg{
			Type: MsgType(r.Sub), Src: int(r.Src), Dst: int(r.Dst),
			Region: mem.RegionID(r.Region), R: r.R,
			Valid: r.Valid, Dirty: r.Dirty,
			Requester: int(r.Req), TxnID: r.Txn,
			StillSharer:   r.Flags&flight.FlagStillSharer != 0,
			StillOwner:    r.Flags&flight.FlagStillOwner != 0,
			Direct:        r.Flags&flight.FlagDirect != 0,
			ForwardedData: r.Flags&flight.FlagForwarded != 0,
		},
	}
}

// MessageLog returns the recorded messages in send order (oldest
// first, bounded by the enabled capacity).
func (s *System) MessageLog() []MsgEvent {
	if s.msgCap == 0 || s.flight == nil {
		return nil
	}
	var out []MsgEvent
	for _, r := range s.flight.Records() {
		if r.Kind == flight.KindMsgSend {
			out = append(out, msgEvent(r))
		}
	}
	if len(out) > s.msgCap {
		out = out[len(out)-s.msgCap:]
	}
	return out
}

// MessagesForRegion filters the log to one region's transcript.
func (s *System) MessagesForRegion(r mem.RegionID) []MsgEvent {
	var out []MsgEvent
	for _, e := range s.MessageLog() {
		if e.Msg.Region == r {
			out = append(out, e)
		}
	}
	return out
}
