package core

import (
	"fmt"
	"strings"

	"protozoa/internal/engine"
	"protozoa/internal/mem"
)

// MsgEvent is one logged coherence message.
type MsgEvent struct {
	Cycle engine.Cycle
	Msg   Msg // copied at send time
}

// String renders the event like the paper's transaction diagrams:
// "GETX C0->T1 region 5 [0--3]".
func (e MsgEvent) String() string {
	m := &e.Msg
	var b strings.Builder
	fmt.Fprintf(&b, "@%-8d %-10s C%d->T%d region %d", e.Cycle, m.Type, m.Src, m.Dst, m.Region)
	switch m.Type {
	case MsgGetS, MsgGetX, MsgUpgrade, MsgFwdGetS, MsgFwdGetX, MsgInv,
		MsgData, MsgDataE, MsgDataM:
		fmt.Fprintf(&b, " [%s]", m.R)
	}
	if m.PayloadWords() > 0 {
		fmt.Fprintf(&b, " %dw", m.PayloadWords())
	}
	if m.Type == MsgAckS || m.Type == MsgAck || m.Type == MsgNack || m.Type == MsgWback || m.Type == MsgWbackLast {
		fmt.Fprintf(&b, " sharer=%v owner=%v", m.StillSharer, m.StillOwner)
	}
	if m.Direct {
		b.WriteString(" direct")
	}
	if m.ForwardedData {
		b.WriteString(" forwarded")
	}
	return b.String()
}

// msgLog is a bounded ring of message events.
type msgLog struct {
	events []MsgEvent
	next   int
	filled bool
}

func (l *msgLog) record(at engine.Cycle, m *Msg) {
	ev := MsgEvent{Cycle: at, Msg: *m}
	if len(l.events) < cap(l.events) {
		l.events = append(l.events, ev)
		return
	}
	l.events[l.next] = ev
	l.next = (l.next + 1) % len(l.events)
	l.filled = true
}

func (l *msgLog) snapshot() []MsgEvent {
	if !l.filled {
		out := make([]MsgEvent, len(l.events))
		copy(out, l.events)
		return out
	}
	out := make([]MsgEvent, 0, len(l.events))
	out = append(out, l.events[l.next:]...)
	out = append(out, l.events[:l.next]...)
	return out
}

// EnableMessageLog starts recording the most recent capacity messages
// sent on the mesh — the protocol-transcript facility used by the
// golden flow tests and protozoa-sim's -msglog flag. Call before Run.
func (s *System) EnableMessageLog(capacity int) {
	if capacity <= 0 {
		capacity = 4096
	}
	s.log = &msgLog{events: make([]MsgEvent, 0, capacity)}
}

// MessageLog returns the recorded messages in send order (oldest
// first, bounded by the enabled capacity).
func (s *System) MessageLog() []MsgEvent {
	if s.log == nil {
		return nil
	}
	return s.log.snapshot()
}

// MessagesForRegion filters the log to one region's transcript.
func (s *System) MessagesForRegion(r mem.RegionID) []MsgEvent {
	var out []MsgEvent
	for _, e := range s.MessageLog() {
		if e.Msg.Region == r {
			out = append(out, e)
		}
	}
	return out
}
