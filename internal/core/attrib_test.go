package core

import (
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/obs/attrib"
	"protozoa/internal/trace"
)

// TestAttributionReconciles is the tentpole's accounting invariant,
// mirroring the miss-latency reconciliation discipline: with the
// tracker enabled, every fetched word is classified used or unused
// exactly once, and the attribution's invalidation/upgrade counts
// equal the stats counters — globally and per core.
func TestAttributionReconciles(t *testing.T) {
	type variant struct {
		name string
		cfg  func() Config
	}
	variants := []variant{}
	for _, p := range AllProtocols {
		p := p
		variants = append(variants, variant{p.String(), func() Config { return testConfig(p, 4) }})
	}
	// Inclusion recalls invalidate without a requesting core: they must
	// land in RecallInvalidations, not on core 0.
	variants = append(variants, variant{"mw-recall-3hop", func() Config {
		cfg := testConfig(ProtozoaMW, 4)
		cfg.ThreeHop = true
		cfg.L2RegionsPerTile = 4
		return cfg
	}})
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := v.cfg()
			perCore := randomStreams(4, 800, 10, 40, 13)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			tr := sys.EnableAttribution()
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			st := sys.Stats()

			if err := tr.Reconcile(); err != nil {
				t.Error(err)
			}
			if tr.FetchedWords == 0 {
				t.Fatal("tracker saw no fills")
			}
			if tr.Invalidations != st.Invalidations {
				t.Errorf("attrib invalidations %d != stats %d", tr.Invalidations, st.Invalidations)
			}
			for c := range st.PerCore {
				if tr.InvByVictim[c] != st.PerCore[c].Invalidations {
					t.Errorf("core %d: attrib victim invalidations %d != stats %d",
						c, tr.InvByVictim[c], st.PerCore[c].Invalidations)
				}
			}
			if tr.Upgrades != st.UpgradeMisses {
				t.Errorf("attrib upgrades %d != stats upgrade misses %d", tr.Upgrades, st.UpgradeMisses)
			}
			var byOffender uint64
			for _, n := range tr.InvByOffender {
				byOffender += n
			}
			if byOffender+tr.RecallInvalidations != tr.Invalidations {
				t.Errorf("offender attribution %d + recalls %d != invalidations %d",
					byOffender, tr.RecallInvalidations, tr.Invalidations)
			}
			// Pattern counts partition the region population.
			var patterns uint64
			for _, n := range tr.PatternCounts() {
				patterns += n
			}
			if patterns != uint64(tr.RegionCount()) {
				t.Errorf("pattern counts sum %d != %d regions", patterns, tr.RegionCount())
			}
		})
	}
}

// TestAttributionRecallsNotBlamedOnCore0 pins the Requester=-1 recall
// fix: with a tiny L2 forcing inclusion recalls, the recall bucket
// must absorb them (under MESI a recall INV always extracts whole
// regions, so recalls reaching a sharer are guaranteed to count).
func TestAttributionRecallsNotBlamedOnCore0(t *testing.T) {
	cfg := testConfig(MESI, 4)
	cfg.L2RegionsPerTile = 2
	perCore := randomStreams(4, 1500, 32, 30, 7)
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = trace.NewSliceStream(perCore[i])
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	tr := sys.EnableAttribution()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Recalls == 0 {
		t.Skip("workload produced no recalls")
	}
	if tr.RecallInvalidations == 0 {
		t.Error("recalls happened but none were attributed to the recall bucket")
	}
	if err := tr.Reconcile(); err != nil {
		t.Error(err)
	}
}

// figure1Streams is the falsesharing example's trace: each core
// load/stores its own word of one region.
func figure1Streams(cores, iters int) []trace.Stream {
	streams := make([]trace.Stream, cores)
	for c := 0; c < cores; c++ {
		addr := mem.Addr(0x1000 + c*8)
		recs := make([]trace.Access, 0, 2*iters)
		for i := 0; i < iters; i++ {
			recs = append(recs,
				trace.Access{Kind: trace.Load, Addr: addr, PC: 0x400},
				trace.Access{Kind: trace.Store, Addr: addr, PC: 0x408})
		}
		streams[c] = trace.NewSliceStream(recs)
	}
	return streams
}

// TestFalseSharingClassification is the end-to-end classifier check:
// the Figure 1 counter line is false-shared under region-granularity
// coherence (MESI, SW, SW+MR invalidate over it) and partitioned under
// Protozoa-MW (disjoint writers coexist, zero invalidations).
func TestFalseSharingClassification(t *testing.T) {
	region := mem.DefaultGeometry.Region(0x1000)
	utils := map[Protocol]float64{}
	for _, p := range AllProtocols {
		sys, err := NewSystem(testConfig(p, 4), figure1Streams(4, 200))
		if err != nil {
			t.Fatal(err)
		}
		tr := sys.EnableAttribution()
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		pattern := tr.PatternOf(region)
		if p == ProtozoaMW {
			if pattern != attrib.Partitioned {
				t.Errorf("%s: counter region classified %v, want partitioned", p, pattern)
			}
			if got := tr.PatternCounts()[attrib.FalseShared]; got != 0 {
				t.Errorf("%s: %d false-shared regions, want 0", p, got)
			}
		} else if pattern != attrib.FalseShared {
			t.Errorf("%s: counter region classified %v, want false-shared", p, pattern)
		}
		if err := tr.Reconcile(); err != nil {
			t.Errorf("%s: %v", p, err)
		}
		utils[p] = tr.UtilPct()
	}
	// The adaptive protocols fetch only the words the cores want, so
	// their fill utilization must strictly beat the MESI baseline.
	for _, p := range []Protocol{ProtozoaSW, ProtozoaSWMR, ProtozoaMW} {
		if utils[p] <= utils[MESI] {
			t.Errorf("%s utilization %.1f%% not above MESI %.1f%%", p, utils[p], utils[MESI])
		}
	}
}

// TestAttributionDisabledByDefault guards the zero-cost discipline:
// no tracker exists unless EnableAttribution ran.
func TestAttributionDisabledByDefault(t *testing.T) {
	sys, err := NewSystem(testConfig(MESI, 4), figure1Streams(4, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Attribution() != nil {
		t.Error("Attribution non-nil without EnableAttribution")
	}
}

// TestSampleHookFires covers the live-endpoint publish path: the hook
// must fire on timeline ticks with monotone cycles.
func TestSampleHookFires(t *testing.T) {
	sys, err := NewSystem(testConfig(ProtozoaMW, 4), figure1Streams(4, 400))
	if err != nil {
		t.Fatal(err)
	}
	reg := sys.EnableMetrics()
	var cycles []uint64
	sys.SetSampleHook(func(cycle uint64) { cycles = append(cycles, cycle) })
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(cycles) == 0 {
		t.Fatal("sample hook never fired")
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] < cycles[i-1] {
			t.Fatalf("sample cycles not monotone: %v", cycles)
		}
	}
	if len(reg.Samples()) != len(cycles) {
		t.Errorf("hook fired %d times, registry sampled %d rows", len(cycles), len(reg.Samples()))
	}
}
