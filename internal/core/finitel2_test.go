package core

// Tests for the finite inclusive L2 with recall-on-eviction.

import (
	"testing"

	"protozoa/internal/trace"
)

func TestFiniteL2RecallsAndWritesBack(t *testing.T) {
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 1)
			cfg.L2RegionsPerTile = 4
			var recs []trace.Access
			// Dirty 12 regions on one tile (1 core = 1 tile): far over
			// the 4-region L2, forcing recalls with memory writebacks.
			for i := 0; i < 12; i++ {
				recs = append(recs, st(regAddr(i)))
			}
			sys := runSys(t, cfg, [][]trace.Access{recs})
			st := sys.Stats()
			if st.Recalls == 0 {
				t.Error("no recalls with a 4-region L2 and 12 dirty regions")
			}
			if st.MemWritebacks == 0 {
				t.Error("no memory writebacks on dirty recalls")
			}
		})
	}
}

func TestFiniteL2RecallPreservesValues(t *testing.T) {
	// Write all regions, thrash the L2, then read everything back: each
	// load must return the stored token (data survives recall through
	// the memory backing store).
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 1)
			cfg.L2RegionsPerTile = 4
			cfg.L1Sets = 1 // tiny L1, so reads after thrash go to L2/memory
			const n = 12
			var recs []trace.Access
			for i := 0; i < n; i++ {
				recs = append(recs, st(regAddr(i)))
			}
			for i := 0; i < n; i++ {
				recs = append(recs, ld(regAddr(i)))
			}
			streams := []trace.Stream{trace.NewSliceStream(recs)}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(t, sys)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			_ = chk // load values validated against golden by the checker
		})
	}
}

func TestFiniteL2InclusionInvalidatesL1Copies(t *testing.T) {
	// Core 1 keeps region 0 cached; core 0 thrashes the same home
	// tile's L2. When region 0 is recalled, core 1's copy must be
	// invalidated (inclusion), and core 1's next read misses.
	cfg := testConfig(MESI, 2)
	cfg.L2RegionsPerTile = 3
	var c0, c1 []trace.Access
	c1 = append(c1, ld(0x0), trace.Access{Kind: trace.Barrier})
	c0 = append(c0, trace.Access{Kind: trace.Barrier})
	for i := 1; i <= 8; i++ {
		c0 = append(c0, st(regAddr(2*i))) // home tile 0, evicts region 0
	}
	c0 = append(c0, trace.Access{Kind: trace.Barrier})
	c1 = append(c1, trace.Access{Kind: trace.Barrier}, ld(0x0))
	sys := runSys(t, cfg, [][]trace.Access{c0, c1})
	st := sys.Stats()
	if st.Recalls == 0 {
		t.Fatal("L2 never recalled")
	}
	if st.Invalidations == 0 {
		t.Error("recall did not invalidate the L1 copy (inclusion broken)")
	}
	// Core 1's second read of region 0 must be a miss: 1 (c1 first) +
	// 8 (c0 stores) + 1 (c1 re-read) = 10 misses minimum.
	if st.L1Misses < 10 {
		t.Errorf("misses = %d, want >= 10 (re-read must miss)", st.L1Misses)
	}
}

func TestFiniteL2Stress(t *testing.T) {
	// Random stress with golden-value checking while the L2 thrashes.
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			cfg.L2RegionsPerTile = 3
			cfg.MaxEvents = 8_000_000
			perCore := randomStreams(4, 1200, 16, 40, 55)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(t, sys)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if chk.Checks == 0 {
				t.Error("checker never ran")
			}
			if sys.Stats().Recalls == 0 {
				t.Error("stress run never recalled (L2 bound ineffective)")
			}
		})
	}
}
