package core

// The random protocol tester, following the paper's validation
// methodology ("We have tested protozoa extensively with the random
// tester (1 million accesses)"). Random multi-core access streams
// drive the full system while an observer checks, at every directory
// quiescent point:
//
//   - the SWMR invariant at the protocol's granularity: region
//     granularity for MESI/Protozoa-SW, word granularity for
//     SW+MR/MW, plus the single-writer-per-region rule for SW+MR;
//   - value integrity: every word cached anywhere equals the golden
//     value (the last value written in coherence order), so lost
//     writebacks, stale copies, or mis-patched L2 data are caught;
//   - every completed load observed the golden value at completion.

import (
	"fmt"
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

// newChecker attaches the library Checker (internal/core/checker.go)
// and reports its violations as test failures when the test ends.
func newChecker(t *testing.T, sys *System) *Checker {
	t.Helper()
	c := NewChecker(sys)
	t.Cleanup(func() {
		for _, v := range c.Violations() {
			t.Error(v)
		}
	})
	return c
}

// randomStreams builds seeded random load/store streams confined to a
// small region pool so cores collide constantly.
func randomStreams(cores, accesses, regions int, storePct int, seed uint64) [][]trace.Access {
	out := make([][]trace.Access, cores)
	for c := 0; c < cores; c++ {
		rng := trace.NewRNG(seed*1000 + uint64(c))
		recs := make([]trace.Access, 0, accesses)
		for i := 0; i < accesses; i++ {
			addr := mem.Addr(rng.Intn(regions)*64 + rng.Intn(8)*8)
			kind := trace.Load
			if rng.Intn(100) < storePct {
				kind = trace.Store
			}
			recs = append(recs, trace.Access{
				Kind: kind, Addr: addr,
				PC: uint64(0x400 + rng.Intn(8)*4),
			})
		}
		out[c] = recs
	}
	return out
}

func runRandomStress(t *testing.T, p Protocol, cores, accesses, regions int, seed uint64, smallCache bool) {
	t.Helper()
	cfg := testConfig(p, cores)
	cfg.MaxEvents = uint64(cores*accesses)*40 + 1_000_000
	if smallCache {
		// Tiny cache: constant evictions exercise WBACK/WBACK_LAST,
		// silent drops, and NACK paths.
		cfg.L1Sets = 2
		cfg.L1SetBudget = 144
	}
	streams := make([]trace.Stream, cores)
	perCore := randomStreams(cores, accesses, regions, 40, seed)
	for i := range streams {
		streams[i] = trace.NewSliceStream(perCore[i])
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	chk := newChecker(t, sys)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if chk.Checks == 0 {
		t.Error("checker never ran")
	}
	if got := sys.Stats().Accesses; got != uint64(cores*accesses) {
		t.Errorf("completed %d accesses, want %d", got, cores*accesses)
	}
}

func TestRandomStressAllProtocols(t *testing.T) {
	for _, p := range AllProtocols {
		for seed := uint64(1); seed <= 3; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", p, seed), func(t *testing.T) {
				runRandomStress(t, p, 4, 1500, 8, seed, false)
			})
		}
	}
}

func TestRandomStressSmallCache(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			runRandomStress(t, p, 4, 1500, 12, 99, true)
		})
	}
}

func TestRandomStressWithContention(t *testing.T) {
	// Golden-value checking with NoC link contention enabled, and the
	// contended run must not finish earlier than the uncontended one.
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			run := func(contention bool) *System {
				cfg := testConfig(p, 4)
				cfg.Noc.ModelContention = contention
				cfg.MaxEvents = 5_000_000
				perCore := randomStreams(4, 1500, 8, 40, 42)
				streams := make([]trace.Stream, 4)
				for i := range streams {
					streams[i] = trace.NewSliceStream(perCore[i])
				}
				sys, err := NewSystem(cfg, streams)
				if err != nil {
					t.Fatal(err)
				}
				if contention {
					newChecker(t, sys)
				}
				if err := sys.Run(); err != nil {
					t.Fatal(err)
				}
				return sys
			}
			base := run(false)
			cont := run(true)
			if cont.Stats().ExecCycles < base.Stats().ExecCycles {
				t.Errorf("contended run (%d cycles) faster than uncontended (%d)",
					cont.Stats().ExecCycles, base.Stats().ExecCycles)
			}
			if cont.Stats().LinkStallCycles == 0 {
				t.Error("no link stalls under a contended random workload")
			}
		})
	}
}

func TestRandomStressWithBlockMerging(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			cfg.MergeL1Blocks = true
			cfg.MaxEvents = 5_000_000
			perCore := randomStreams(4, 1500, 8, 40, 19)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(t, sys)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if chk.Checks == 0 {
				t.Error("checker never ran")
			}
		})
	}
}

func TestRandomStressSixteenCores(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			runRandomStress(t, p, 16, 400, 6, 7, false)
		})
	}
}

// TestRandomStressMillion reproduces the paper's full-scale random
// test: one million checked accesses across the protocol family
// (250k per protocol, 16 cores). Skipped under -short.
func TestRandomStressMillion(t *testing.T) {
	if testing.Short() {
		t.Skip("million-access stress skipped in -short mode")
	}
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			runRandomStress(t, p, 16, 15625, 16, 2013, false)
		})
	}
}
