package core

// Memory-consistency litmus tests. The machine's cores are in-order
// and block on every reference, so the system must be sequentially
// consistent for every protocol and extension: the classic forbidden
// outcomes can never appear, under any interleaving. Interleavings are
// explored by sweeping per-core start delays (think cycles), which
// shifts the racing accesses across each other's coherence windows.

import (
	"fmt"
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

// litmusThread is one core's straight-line program. Loads append their
// observed values to the outcome in program order.
type litmusThread []trace.Access

// runLitmus executes the threads with the given per-core start delays
// and returns the loaded values in (core, program) order.
func runLitmus(t *testing.T, p Protocol, threads []litmusThread, delays []uint16, mutate func(*Config)) []uint64 {
	t.Helper()
	n := len(threads)
	if n != 2 && n != 4 {
		t.Fatalf("litmus supports 2 or 4 threads, got %d", n)
	}
	cfg := testConfig(p, n)
	if mutate != nil {
		mutate(&cfg)
	}
	streams := make([]trace.Stream, n)
	for c, th := range threads {
		recs := make([]trace.Access, len(th))
		copy(recs, th)
		if len(recs) > 0 {
			recs[0].Think = delays[c]
		}
		streams[c] = trace.NewSliceStream(recs)
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	type ev struct {
		core int
		val  uint64
	}
	var loads []ev
	sys.SetObserver(observerFuncs{
		onLoad: func(core int, _ mem.Addr, val uint64) {
			loads = append(loads, ev{core, val})
		},
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Group by core in program order, then flatten by core index.
	var out []uint64
	for c := 0; c < n; c++ {
		for _, e := range loads {
			if e.core == c {
				out = append(out, e.val)
			}
		}
	}
	return out
}

// observerFuncs adapts closures to the Observer interface.
type observerFuncs struct {
	onLoad func(int, mem.Addr, uint64)
}

func (o observerFuncs) OnStore(int, mem.Addr, uint64) {}
func (o observerFuncs) OnTxnEnd(mem.RegionID)         {}
func (o observerFuncs) OnLoad(c int, a mem.Addr, v uint64) {
	if o.onLoad != nil {
		o.onLoad(c, a, v)
	}
}

// sweep2 and sweep4 enumerate start-delay combinations. A cold write
// miss costs ~330-700 cycles (memory + hops), so the delays span from
// a few cycles (racing inside one transaction window) to beyond a full
// miss (strictly ordered) to reach every outcome class.
var sweepDelays = []uint16{0, 4, 12, 40, 150, 400, 800}

var sweep2 = func() [][]uint16 {
	var out [][]uint16
	for _, a := range sweepDelays {
		for _, b := range sweepDelays {
			out = append(out, []uint16{a, b})
		}
	}
	return out
}()

var sweep4 = func() [][]uint16 {
	short := []uint16{0, 40, 400}
	var out [][]uint16
	for _, a := range short {
		for _, b := range short {
			for _, c := range short {
				for _, d := range short {
					out = append(out, []uint16{a, b, c, d})
				}
			}
		}
	}
	return out
}()

// Distinct variables on distinct regions; stores write token
// (core+1)<<40|seq, so "wrote" means val != 0.
const (
	litX = mem.Addr(0x10040)
	litY = mem.Addr(0x20040)
)

func wrote(v uint64) int {
	if v != 0 {
		return 1
	}
	return 0
}

// TestLitmusMessagePassing: W x; W y || R y; R x — observing y=1 and
// then x=0 is forbidden under SC.
func TestLitmusMessagePassing(t *testing.T) {
	threads := []litmusThread{
		{st(litX), st(litY)},
		{ld(litY), ld(litX)},
	}
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for _, delays := range sweep2 {
				out := runLitmus(t, p, threads, delays, nil)
				ry, rx := wrote(out[0]), wrote(out[1])
				if ry == 1 && rx == 0 {
					t.Fatalf("delays %v: observed y before x (MP violation)", delays)
				}
			}
		})
	}
}

// TestLitmusStoreBuffering: W x; R y || W y; R x — both reads zero is
// forbidden under SC (possible only with store buffers, which the
// in-order blocking cores do not have).
func TestLitmusStoreBuffering(t *testing.T) {
	threads := []litmusThread{
		{st(litX), ld(litY)},
		{st(litY), ld(litX)},
	}
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			both := map[string]bool{}
			for _, delays := range sweep2 {
				out := runLitmus(t, p, threads, delays, nil)
				ry, rx := wrote(out[0]), wrote(out[1])
				if ry == 0 && rx == 0 {
					t.Fatalf("delays %v: r1=r2=0 (SB violation: not SC)", delays)
				}
				both[fmt.Sprintf("%d%d", ry, rx)] = true
			}
			if len(both) < 2 {
				t.Errorf("sweep explored only outcomes %v; want real interleaving", both)
			}
		})
	}
}

// TestLitmusCoherenceRR: R x; R x racing a remote W x — the two reads
// may straddle the write but never observe it and then un-observe it.
func TestLitmusCoherenceRR(t *testing.T) {
	threads := []litmusThread{
		{ld(litX), ld(litX)},
		{st(litX)},
	}
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for _, delays := range sweep2 {
				out := runLitmus(t, p, threads, delays, nil)
				r1, r2 := wrote(out[0]), wrote(out[1])
				if r1 == 1 && r2 == 0 {
					t.Fatalf("delays %v: value reversal r1=1, r2=0 (CoRR violation)", delays)
				}
			}
		})
	}
}

// TestLitmusIRIW: two writers to independent variables, two readers
// reading them in opposite orders — the readers disagreeing on the
// write order is forbidden under SC.
func TestLitmusIRIW(t *testing.T) {
	threads := []litmusThread{
		{st(litX)},
		{st(litY)},
		{ld(litX), ld(litY)},
		{ld(litY), ld(litX)},
	}
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for _, delays := range sweep4 {
				out := runLitmus(t, p, threads, delays, nil)
				// out = [r2.x, r2.y, r3.y, r3.x]
				if wrote(out[0]) == 1 && wrote(out[1]) == 0 &&
					wrote(out[2]) == 1 && wrote(out[3]) == 0 {
					t.Fatalf("delays %v: readers disagree on write order (IRIW violation)", delays)
				}
			}
		})
	}
}

// TestLitmusUnderExtensions repeats message passing with the Section 6
// extensions enabled: consistency must survive 3-hop forwarding, the
// bloom directory, and the non-inclusive L2 combined.
func TestLitmusUnderExtensions(t *testing.T) {
	threads := []litmusThread{
		{st(litX), st(litY)},
		{ld(litY), ld(litX)},
	}
	mutate := func(c *Config) {
		c.ThreeHop = true
		c.Directory = DirBloom
		c.NonInclusiveL2 = true
	}
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			for _, delays := range sweep2 {
				out := runLitmus(t, p, threads, delays, mutate)
				if wrote(out[0]) == 1 && wrote(out[1]) == 0 {
					t.Fatalf("delays %v: MP violation under extensions", delays)
				}
			}
		})
	}
}
