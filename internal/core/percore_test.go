package core

import (
	"testing"

	"protozoa/internal/trace"
)

// TestPerCoreStatsSumToAggregates: the per-core breakdown must
// partition the aggregate counters exactly, on every protocol.
func TestPerCoreStatsSumToAggregates(t *testing.T) {
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			perCore := randomStreams(4, 800, 8, 40, 606)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			s := sys.Stats()
			var acc, loads, stores, hits, misses, invals uint64
			for _, cs := range s.PerCore {
				acc += cs.Accesses
				loads += cs.Loads
				stores += cs.Stores
				hits += cs.Hits
				misses += cs.Misses
				invals += cs.Invalidations
			}
			if acc != s.Accesses || loads != s.Loads || stores != s.Stores {
				t.Errorf("access sums %d/%d/%d != aggregates %d/%d/%d",
					acc, loads, stores, s.Accesses, s.Loads, s.Stores)
			}
			if hits != s.L1Hits || misses != s.L1Misses {
				t.Errorf("hit/miss sums %d/%d != aggregates %d/%d", hits, misses, s.L1Hits, s.L1Misses)
			}
			if invals != s.Invalidations {
				t.Errorf("invalidation sum %d != aggregate %d", invals, s.Invalidations)
			}
		})
	}
}

// TestPerCoreStatsAttributed: an idle core records nothing; a busy one
// records its own accesses.
func TestPerCoreStatsAttributed(t *testing.T) {
	sys := runSys(t, testConfig(MESI, 2), [][]trace.Access{
		{ld(0x0), st(0x0), ld(0x40)},
		nil,
	})
	s := sys.Stats()
	if s.PerCore[0].Accesses != 3 || s.PerCore[0].Misses != 2 {
		t.Errorf("core 0 = %+v, want 3 accesses, 2 misses", s.PerCore[0])
	}
	if s.PerCore[1].Accesses != 0 {
		t.Errorf("idle core 1 = %+v, want zero", s.PerCore[1])
	}
}
