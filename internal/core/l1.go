package core

import (
	"fmt"

	"protozoa/internal/stats"

	"protozoa/internal/cache"
	"protozoa/internal/engine"
	"protozoa/internal/mem"
	"protozoa/internal/obs"
	"protozoa/internal/obs/flight"
	"protozoa/internal/predictor"
)

// l1Ctrl is one core's private L1 cache controller. It owns the
// Amoeba storage, the PC predictor, and the region-indexed MSHRs, and
// implements the L1 half of every protocol variant: miss issue,
// fills, upgrades, and the multi-block CHECK/GATHER snoop handling of
// Figure 3 (including the Figure 6 race where a forwarded probe
// arrives while a miss to another sub-block of the same region is
// outstanding).
type l1Ctrl struct {
	sys   *System
	tl    *tile // this core's partition: engine, stats shard, msg pool
	id    int
	cache *cache.Cache
	pred  predictor.Predictor

	// ms is the single MSHR: the in-order core blocks on every miss, so
	// at most one is ever live (the hardware indexes MSHRs at REGION
	// granularity; with one outstanding miss a single slot is the exact
	// same structure, without a map allocation per miss).
	ms     mshr
	msLive bool

	// wordCause remembers, per word, why this L1 last lost it — the
	// cold/capacity/coherence/granularity miss classification.
	wordCause map[mem.RegionID]*[mem.MaxRegionWords]deathCause
}

// completer receives the value of a finished memory reference; the cpu
// implements it. A plain interface instead of a func(uint64) field
// keeps the per-access path closure-free.
type completer interface {
	complete(val uint64)
}

// deathCause classifies how a word last left this L1.
type deathCause uint8

const (
	neverResident deathCause = iota
	diedByEviction
	diedByInvalidation
)

// mshr tracks one outstanding CPU-side miss. The in-order core has at
// most one, but the map is keyed by region to mirror the hardware
// structure (the paper indexes MSHRs at REGION granularity and
// serializes multiple misses to the same region).
// accessMode distinguishes the CPU reference kinds at the L1.
type accessMode uint8

const (
	accRead accessMode = iota
	accWrite
	accRMW
)

func (m accessMode) write() bool { return m != accRead }

type mshr struct {
	region   mem.RegionID
	mode     accessMode
	upgrade  bool
	upgradeR mem.Range // resident block an UPGRADE covers
	want     mem.Range
	word     uint8
	pc       uint64
	storeVal uint64
	issuedAt engine.Cycle // miss-latency accounting
	done     completer
}

func newL1(sys *System, tl *tile, id int, c *cache.Cache, p predictor.Predictor) *l1Ctrl {
	return &l1Ctrl{
		sys: sys, tl: tl, id: id, cache: c, pred: p,
		wordCause: make(map[mem.RegionID]*[mem.MaxRegionWords]deathCause),
	}
}

// openMSHR returns the live MSHR for the region, or nil.
func (l *l1Ctrl) openMSHR(region mem.RegionID) *mshr {
	if l.msLive && l.ms.region == region {
		return &l.ms
	}
	return nil
}

// markDeath records how a dead block's words left the cache.
func (l *l1Ctrl) markDeath(b *cache.Block, cause deathCause) {
	wc := l.wordCause[b.Region]
	if wc == nil {
		wc = new([mem.MaxRegionWords]deathCause)
		l.wordCause[b.Region] = wc
	}
	for w := b.R.Start; ; w++ {
		wc[w] = cause
		if w == b.R.End {
			break
		}
	}
}

// classifyMiss attributes a miss to cold / capacity / coherence /
// granularity. An upgrade re-acquiring write permission on resident
// data counts as a coherence miss (a prior invalidation or shared
// grant forces it); a miss on a word of a partially resident region is
// a granularity miss (adaptive storage underfetched); otherwise the
// region's last death decides.
func (l *l1Ctrl) classifyMiss(region mem.RegionID, w uint8, upgrade bool) {
	if upgrade {
		l.tl.st.MissesCoherence++
		return
	}
	var cause deathCause
	if wc := l.wordCause[region]; wc != nil {
		cause = wc[w]
	}
	switch cause {
	case diedByEviction:
		l.tl.st.MissesCapacity++
	case diedByInvalidation:
		l.tl.st.MissesCoherence++
	default:
		if l.cache.HasRegion(region) {
			l.tl.st.MissesGranularity++
		} else {
			l.tl.st.MissesCold++
		}
	}
}

// cs is this core's per-core counter slice (in the tile's shard).
func (l *l1Ctrl) cs() *stats.CoreStats { return &l.tl.st.PerCore[l.id] }

// applyWrite commits a store or RMW to a writable block and returns
// the value the CPU observes (the stored value, or the pre-increment
// value for an RMW).
func applyWrite(b *cache.Block, w uint8, mode accessMode, storeVal uint64) uint64 {
	b.State = cache.Modified
	b.Touch(w)
	if mode == accRMW {
		old := b.Word(w)
		b.SetWord(w, old+1)
		return old
	}
	b.SetWord(w, storeVal)
	return storeVal
}

// resolve performs one CPU memory reference at the end of the L1
// pipeline: the fused per-core event fires it L1HitLat cycles after
// issue, so values bind at completion time. done.complete is invoked
// with the loaded value (or the stored value) when the reference
// completes; the in-order core issues at most one reference at a time.
func (l *l1Ctrl) resolve(addr mem.Addr, mode accessMode, pc, storeVal uint64, done completer) {
	g := l.sys.geom
	region, w := g.Region(addr), g.WordOffset(addr)
	if l.tl.attrib != nil {
		l.tl.attrib.Access(l.id, region, w, mode.write())
	}
	audit := l.auditFrom(region)
	event := "Load"
	if mode.write() {
		event = "Store"
	}
	b := l.cache.Lookup(region, w)
	if b != nil {
		if !mode.write() {
			l.tl.st.L1Hits++
			l.cs().Hits++
			b.Touch(w)
			audit(event)
			done.complete(b.Word(w))
			return
		}
		switch b.State {
		case cache.Modified, cache.Exclusive:
			l.tl.st.L1Hits++
			l.cs().Hits++
			val := applyWrite(b, w, mode, storeVal)
			audit(event)
			done.complete(val)
			return
		case cache.Shared:
			// Write to a clean shared block: upgrade miss.
			l.tl.st.L1Misses++
			l.cs().Misses++
			l.tl.st.UpgradeMisses++
			if l.tl.attrib != nil {
				l.tl.attrib.Upgrade(l.id, region)
			}
			l.classifyMiss(region, w, true)
			l.startMiss(mshr{
				region: region, mode: mode, upgrade: true, upgradeR: b.R,
				want: b.R, word: w, pc: pc, storeVal: storeVal, done: done,
			}, MsgUpgrade)
			audit(event)
			return
		}
	}
	// Plain miss: predict the fetch range and trim it against resident
	// sub-blocks so blocks never overlap.
	l.tl.st.L1Misses++
	l.cs().Misses++
	l.classifyMiss(region, w, false)
	want := l.cache.TrimFill(region, l.pred.Predict(pc, region, w), w)
	ms := mshr{
		region: region, mode: mode,
		want: want, word: w, pc: pc, storeVal: storeVal, done: done,
	}
	if mode.write() {
		l.startMiss(ms, MsgGetX)
	} else {
		l.startMiss(ms, MsgGetS)
	}
	audit(event)
}

// nopAudit is the shared no-op closure returned when every audit
// consumer is disabled (no per-call allocation on the hot path).
var nopAudit = func(string) {}

// auditFrom snapshots the region state and returns a closure that
// records the transition once the event has been applied — to the
// transition-audit table, the flight recorder, or both. A no-op when
// neither is enabled.
func (l *l1Ctrl) auditFrom(region mem.RegionID) func(event string) {
	if l.tl.transitions == nil && l.tl.flight == nil {
		return nopAudit
	}
	var from string
	if l.tl.transitions != nil {
		from = l.regionState(region)
	}
	var fromCode uint8
	if l.tl.flight != nil {
		fromCode = l.flightStateCode(region)
	}
	return func(event string) {
		if l.tl.transitions != nil {
			l.tl.recordTransition("L1", from, event, l.regionState(region))
		}
		if f := l.tl.flight; f != nil {
			if to := l.flightStateCode(region); to != fromCode {
				f.Record(flight.Record{
					Cycle: l.tl.eng.Now(), Tile: int16(l.tl.id),
					Kind: flight.KindL1State, Sub: causeCode(event),
					Src: int16(l.id), Dst: -1, Req: int16(l.id),
					Region: uint64(region), From: fromCode, To: to,
				})
			}
		}
	}
}

func (l *l1Ctrl) startMiss(ms mshr, t MsgType) {
	if l.msLive {
		panic(fmt.Sprintf("core: L1 %d issued a second miss to region %d (in-order core)", l.id, ms.region))
	}
	ms.issuedAt = l.tl.eng.Now()
	l.ms = ms
	l.msLive = true
	l.tl.mshrLive++
	if lt := l.sys.latFor(l.id); lt != nil {
		lt.Issue(l.id, uint64(ms.issuedAt))
	}
	if l.tl.rec != nil {
		l.tl.rec.Record(obs.Event{
			Cycle: ms.issuedAt, Kind: obs.KindMissStart, Sub: uint8(t),
			Node: int16(l.id), Peer: -1, Region: uint64(ms.region),
		})
	}
	if f := l.tl.flight; f != nil {
		f.Record(flight.Record{
			Cycle: ms.issuedAt, Tile: int16(l.tl.id),
			Kind: flight.KindMissStart, Sub: uint8(t),
			Src: int16(l.id), Dst: int16(l.sys.home(ms.region)), Req: int16(l.id),
			Region: uint64(ms.region), R: ms.want,
		})
	}
	m := l.tl.newMsg()
	m.Type = t
	m.Src = l.id
	m.Dst = l.sys.home(ms.region)
	m.Region = ms.region
	m.R = ms.want
	m.Requester = l.id
	l.tl.send(m)
}

// retireMiss records the completed miss's latency. The breakdown's
// Complete stamp uses the same Now() as RecordMissLatency, so the
// phase sums reconcile exactly against stats.AvgMissLatency.
func (l *l1Ctrl) retireMiss(ms *mshr) {
	now := l.tl.eng.Now()
	l.tl.st.RecordMissLatency(uint64(now - ms.issuedAt))
	l.tl.mshrLive--
	if lt := l.sys.latFor(l.id); lt != nil {
		lt.Complete(l.id, uint64(now))
	}
	if l.tl.rec != nil {
		l.tl.rec.Record(obs.Event{
			Cycle: now, Kind: obs.KindMissEnd,
			Node: int16(l.id), Peer: -1, Region: uint64(ms.region),
		})
	}
	if f := l.tl.flight; f != nil {
		f.Record(flight.Record{
			Cycle: now, Tile: int16(l.tl.id),
			Kind: flight.KindMissEnd, Sub: flight.SubNone,
			Src: int16(l.id), Dst: -1, Req: int16(l.id),
			Region: uint64(ms.region),
		})
	}
}

// recv dispatches a directory-to-L1 message.
func (l *l1Ctrl) recv(m *Msg) {
	switch m.Type {
	case MsgData, MsgDataE, MsgDataM:
		l.fill(m)
	case MsgGrant:
		l.grant(m)
	case MsgFwdGetS:
		l.probeGetS(m)
	case MsgFwdGetX, MsgInv:
		l.probeInval(m)
	default:
		panic(fmt.Sprintf("core: L1 %d received unexpected %v", l.id, m.Type))
	}
}

// fill installs an arriving data response and completes the miss.
func (l *l1Ctrl) fill(m *Msg) {
	ms := l.openMSHR(m.Region)
	if ms == nil {
		panic(fmt.Sprintf("core: L1 %d data for region %d without MSHR", l.id, m.Region))
	}
	defer l.auditFrom(m.Region)(m.Type.String())
	var st cache.State
	switch m.Type {
	case MsgData:
		st = cache.Shared
	case MsgDataE:
		st = cache.Exclusive
	case MsgDataM:
		st = cache.Modified
	}
	blk := cache.Block{
		Region: m.Region, R: m.R, State: st,
		FetchPC: ms.pc, FetchWord: ms.word,
		Data: make([]uint64, m.R.Words()),
	}
	for w := m.R.Start; ; w++ {
		blk.Data[w-m.R.Start] = m.Words[w]
		if w == m.R.End {
			break
		}
	}
	l.tl.st.RecordFill(m.R.Words())
	l.tl.st.DataWordsIn += uint64(m.PayloadWords())
	if l.tl.attrib != nil {
		l.tl.attrib.Fill(l.id, m.Region, m.R.Words())
	}
	victims := l.cache.Insert(blk)
	l.handleVictims(victims)

	b := l.cache.Lookup(m.Region, ms.word)
	if b == nil {
		panic("core: filled block immediately evicted (set budget too small)")
	}
	b.Touch(ms.word)
	val := b.Word(ms.word)
	if ms.mode.write() {
		val = applyWrite(b, ms.word, ms.mode, ms.storeVal)
	}
	done := ms.done
	l.msLive = false
	l.retireMiss(ms)
	l.sendUnblock(m.Region)
	done.complete(val)
}

// sendUnblock reopens the region at the directory once a response has
// been installed.
func (l *l1Ctrl) sendUnblock(region mem.RegionID) {
	m := l.tl.newMsg()
	m.Type = MsgUnblock
	m.Src = l.id
	m.Dst = l.sys.home(region)
	m.Region = region
	l.tl.send(m)
}

// grant completes an upgrade. If a racing remote write invalidated the
// block while the upgrade was queued at the directory (the L1 answered
// ACK-S for its other sub-blocks, so the directory still saw it as a
// sharer), the upgrade is reissued as a full GETX — the SM -> IM path.
func (l *l1Ctrl) grant(m *Msg) {
	ms := l.openMSHR(m.Region)
	if ms == nil || !ms.upgrade {
		panic(fmt.Sprintf("core: L1 %d grant for region %d without upgrade MSHR", l.id, m.Region))
	}
	b := l.cache.Peek(m.Region, ms.word)
	if b == nil {
		defer l.auditFrom(m.Region)("GrantReissue")
		// Block was invalidated under us: unblock the directory, then
		// retry as a full write miss (it will queue behind any activity).
		l.sendUnblock(m.Region)
		ms.upgrade = false
		ms.want = l.cache.TrimFill(ms.region, ms.upgradeR, ms.word)
		retry := l.tl.newMsg()
		retry.Type = MsgGetX
		retry.Src = l.id
		retry.Dst = l.sys.home(ms.region)
		retry.Region = ms.region
		retry.R = ms.want
		retry.Requester = l.id
		l.tl.send(retry)
		return
	}
	audit := l.auditFrom(m.Region)
	val := applyWrite(b, ms.word, ms.mode, ms.storeVal)
	done := ms.done
	l.msLive = false
	l.retireMiss(ms)
	l.sendUnblock(m.Region)
	audit("Grant")
	done.complete(val)
}

// probeGetS handles a forwarded read probe: the L1 is (possibly) an
// owner and must surrender write permission on the requested words.
// MESI and Protozoa-SW downgrade the whole region (region-granularity
// coherence); SW+MR and MW downgrade only overlapping sub-blocks, so
// non-overlapping dirty data stays writable (adaptive coherence
// granularity).
func (l *l1Ctrl) probeGetS(m *Msg) {
	defer l.auditFrom(m.Region)("FwdGetS")
	blocks := l.cache.BlocksInRegion(m.Region)
	if len(blocks) == 0 {
		l.nack(m)
		return
	}
	reply := l.tl.newMsg()
	reply.Type = MsgAck
	reply.Src = l.id
	reply.Dst = m.Src
	reply.Region = m.Region
	reply.TxnID = m.TxnID
	reply.ForwardedData = m.Direct && l.tryDirectForward(m, MsgData)
	scopeOverlap := l.overlapCoherence()
	processed := 0
	for _, b := range blocks {
		if scopeOverlap && !b.R.Overlaps(m.R) {
			continue
		}
		processed++
		switch b.State {
		case cache.Modified:
			l.carry(reply, b)
			b.State = cache.Shared
		case cache.Exclusive:
			b.State = cache.Shared
		}
	}
	reply.StillSharer = true
	reply.StillOwner = l.anyDirtyOrExclusive(m.Region)
	l.finishReply(reply, processed)
}

// probeInval handles FWD_GETX and INV probes: a remote writer needs
// the requested words, so overlapping sub-blocks must be invalidated
// (the whole region under MESI/Protozoa-SW). Under SW+MR an owner
// additionally loses write permission on its non-overlapping blocks —
// the single-writer rule — while under MW they stay writable.
func (l *l1Ctrl) probeInval(m *Msg) {
	defer l.auditFrom(m.Region)(m.Type.String())
	if m.Type == MsgInv {
		l.tl.st.InvMsgs++
	}
	if !l.cache.HasRegion(m.Region) {
		l.nack(m)
		return
	}
	reply := l.tl.newMsg()
	reply.Type = MsgAck
	reply.Src = l.id
	reply.Dst = m.Src
	reply.Region = m.Region
	reply.TxnID = m.TxnID
	if m.Type == MsgFwdGetX {
		// Capture the words before they are extracted below.
		reply.ForwardedData = m.Direct && l.tryDirectForward(m, MsgDataM)
	}
	var extracted []cache.Block
	if l.overlapCoherence() {
		extracted = l.cache.ExtractOverlapping(m.Region, m.R)
	} else {
		extracted = l.cache.ExtractRegion(m.Region)
	}

	processed := len(extracted)
	for i := range extracted {
		b := &extracted[i]
		l.markDeath(b, diedByInvalidation)
		l.classifyDeath(b)
		if b.State == cache.Modified {
			l.carry(reply, b)
		}
	}
	if len(extracted) > 0 {
		l.tl.st.Invalidations++
		l.cs().Invalidations++
		if l.tl.attrib != nil {
			words := 0
			for i := range extracted {
				words += extracted[i].R.Words()
			}
			// Recall INVs carry Requester -1: no core is the offender.
			l.tl.attrib.Invalidation(m.Region, m.Requester, l.id, words)
		}
	}
	// Protozoa-SW+MR: the probed owner is fully revoked — remaining
	// dirty blocks are written back and downgraded to Shared, so only
	// one writer exists at a time.
	if l.sys.cfg.Protocol == ProtozoaSWMR && m.Type == MsgFwdGetX {
		for _, b := range l.cache.BlocksInRegion(m.Region) {
			switch b.State {
			case cache.Modified:
				l.carry(reply, b)
				b.State = cache.Shared
				processed++
			case cache.Exclusive:
				b.State = cache.Shared
				processed++
			}
		}
	}
	reply.StillSharer = l.cache.HasRegion(m.Region)
	reply.StillOwner = l.anyDirtyOrExclusive(m.Region)
	l.finishReply(reply, processed)
}

// overlapCoherence reports whether probes act at the granularity of
// the request (adaptive coherence) or the whole region.
func (l *l1Ctrl) overlapCoherence() bool {
	p := l.sys.cfg.Protocol
	return p == ProtozoaSWMR || p == ProtozoaMW
}

func (l *l1Ctrl) anyDirtyOrExclusive(region mem.RegionID) bool {
	for _, b := range l.cache.BlocksInRegion(region) {
		if b.State == cache.Modified || b.State == cache.Exclusive {
			return true
		}
	}
	return false
}

// carry adds a dirty block's words to a writeback reply and classifies
// the outgoing payload bytes as used or unused.
func (l *l1Ctrl) carry(reply *Msg, b *cache.Block) {
	reply.Type = MsgWback
	for w := b.R.Start; ; w++ {
		reply.Words[w] = b.Word(w)
		if w == b.R.End {
			break
		}
	}
	reply.Valid = reply.Valid.Union(b.R.Bitmap())
	reply.Dirty = reply.Dirty.Union(b.R.Bitmap())
	l.classifyWriteback(b)
}

// finishReply fixes the reply type from what was gathered and sends it
// after the multi-block gather penalty (the CPU_B/COH_B blocking states
// of Figure 8 cost one cycle per extra gathered block).
func (l *l1Ctrl) finishReply(reply *Msg, processed int) {
	if reply.Type != MsgWback {
		if reply.StillSharer {
			reply.Type = MsgAckS
		} else {
			reply.Type = MsgAck
		}
	}
	if reply.Type == MsgWback {
		l.tl.st.Writebacks++
		l.tl.st.DataWordsOut += uint64(reply.PayloadWords())
	}
	delay := engine.Cycle(0)
	if processed > 1 {
		delay = engine.Cycle(processed - 1)
	}
	reply.phase = phaseSend
	l.tl.eng.ScheduleRunner(delay, reply)
}

// tryDirectForward implements the 3-hop fast path (Section 6): when
// the probed L1's resident blocks fully cover the requested range, it
// supplies the requester directly and tells the directory via the
// reply's ForwardedData flag. Partial or no coverage returns false —
// the transaction falls back to 4-hop and the directory supplies the
// data from the (patched) L2.
func (l *l1Ctrl) tryDirectForward(m *Msg, grant MsgType) bool {
	// Probe coverage first, so no message is taken from the pool on the
	// fall-back-to-4-hop path.
	for w := m.R.Start; ; w++ {
		if l.cache.Peek(m.Region, w) == nil {
			return false
		}
		if w == m.R.End {
			break
		}
	}
	data := l.tl.newMsg()
	data.Type = grant
	data.Src = l.id
	data.Dst = m.Requester
	data.Region = m.Region
	data.R = m.R
	data.Valid = m.R.Bitmap()
	for w := m.R.Start; ; w++ {
		data.Words[w] = l.cache.Peek(m.Region, w).Word(w)
		if w == m.R.End {
			break
		}
	}
	l.tl.st.DirectForwards++
	l.tl.send(data)
	return true
}

// nack answers a probe when nothing of the region is resident: the
// stale-directory-entry case after a silent clean eviction.
func (l *l1Ctrl) nack(probe *Msg) {
	m := l.tl.newMsg()
	m.Type = MsgNack
	m.Src = l.id
	m.Dst = probe.Src
	m.Region = probe.Region
	m.TxnID = probe.TxnID
	l.tl.send(m)
}

// handleVictims processes capacity evictions: classify each dead
// block, train the predictor, and write back dirty victims with the
// WBACK/WBACK_LAST distinction of Section 3.3 (clean victims drop
// silently, leaving the directory stale until a NACK cleans it up).
func (l *l1Ctrl) handleVictims(victims []cache.Block) {
	for i := range victims {
		v := &victims[i]
		l.tl.st.Evictions++
		l.markDeath(v, diedByEviction)
		l.classifyDeath(v)
		if v.State != cache.Modified {
			// Bloom directories cannot tolerate silent drops: notify the
			// home when the last block of a region leaves (the TL
			// replacement-notification discipline). Precise directories
			// keep the paper's silent-drop-then-NACK behaviour.
			if l.sys.cfg.Directory == DirBloom && !l.cache.HasRegion(v.Region) {
				note := l.tl.newMsg()
				note.Type = MsgWbackLast
				note.Src = l.id
				note.Dst = l.sys.home(v.Region)
				note.Region = v.Region
				l.tl.send(note)
			}
			continue
		}
		wb := l.tl.newMsg()
		wb.Src = l.id
		wb.Dst = l.sys.home(v.Region)
		wb.Region = v.Region
		wb.Valid = v.R.Bitmap()
		wb.Dirty = v.R.Bitmap()
		for w := v.R.Start; ; w++ {
			wb.Words[w] = v.Word(w)
			if w == v.R.End {
				break
			}
		}
		wb.StillSharer = l.cache.HasRegion(v.Region)
		wb.StillOwner = l.anyDirtyOrExclusive(v.Region)
		if wb.StillSharer {
			wb.Type = MsgWback
		} else {
			wb.Type = MsgWbackLast
		}
		l.tl.st.Writebacks++
		l.tl.st.DataWordsOut += uint64(wb.PayloadWords())
		l.classifyWriteback(v)
		l.tl.send(wb)
	}
}

// classifyDeath attributes a dead block's fetched words as used or
// unused (Figure 9) and trains the predictor on the observed usage.
func (l *l1Ctrl) classifyDeath(b *cache.Block) {
	used := b.UsedWords()
	l.tl.st.UsedDataBytes += uint64(used) * mem.WordBytes
	l.tl.st.UnusedDataBytes += uint64(b.R.Words()-used) * mem.WordBytes
	if l.tl.attrib != nil {
		// Every fill eventually reaches one of the classifyDeath sites
		// (eviction, invalidation, or Run's residual flush), so the
		// tracker's fetched == used + unused reconciles exactly.
		l.tl.attrib.Death(l.id, b.Region, used, b.R.Words())
	}
	l.pred.Train(b.FetchPC, b.Region, b.FetchWord, b.Touched, b.R)
}

// classifyWriteback attributes an outgoing writeback payload's words.
func (l *l1Ctrl) classifyWriteback(b *cache.Block) {
	used := b.UsedWords()
	l.tl.st.UsedDataBytes += uint64(used) * mem.WordBytes
	l.tl.st.UnusedDataBytes += uint64(b.R.Words()-used) * mem.WordBytes
}
