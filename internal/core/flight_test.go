package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"protozoa/internal/obs"
	"protozoa/internal/obs/flight"
	"protozoa/internal/trace"
)

// TestStallWatchdogFires wedges a transaction artificially — memory
// latency far beyond the watchdog threshold — and requires the watchdog
// to flag it at a timeline tick, exactly once, with a dump carrying the
// blocking directory entry and the region's causal transcript.
func TestStallWatchdogFires(t *testing.T) {
	cfg := testConfig(MESI, 1)
	cfg.MemLat = 100_000 // the "stuck" transaction: a miss pinned in flight
	sys, err := NewSystem(cfg, []trace.Stream{
		trace.NewSliceStream([]trace.Access{ld(regAddr(3))}),
	})
	if err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	sys.EnableTimeline(1000)
	sys.EnableStallWatchdog(5000, &dump)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	stalls := sys.Stalls()
	if len(stalls) != 1 {
		t.Fatalf("%d stall reports, want exactly 1 (dedup per miss): %v", len(stalls), stalls)
	}
	rep := stalls[0]
	if rep.Core != 0 || rep.Request != "GETS" {
		t.Errorf("flagged %+v, want core 0 GETS", rep)
	}
	if rep.FlaggedAt-rep.IssuedAt < 5000 {
		t.Errorf("flagged after only %d cycles, threshold 5000", rep.FlaggedAt-rep.IssuedAt)
	}
	out := dump.String()
	for _, want := range []string{"stall watchdog", "dir ", "transcript (region", "msg-send"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestStallWatchdogUnderPDES: detections happen at nominal round-edge
// ticks under the parallel loop, so arming the watchdog must not be
// rejected and must still flag the wedged miss.
func TestStallWatchdogUnderPDES(t *testing.T) {
	cfg := testConfig(MESI, 4)
	cfg.Workers = 2
	cfg.MemLat = 100_000
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = trace.NewSliceStream([]trace.Access{ld(regAddr(10 + i))})
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTimeline(1000)
	sys.EnableStallWatchdog(5000, nil)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sys.Stalls()) == 0 {
		t.Fatal("watchdog flagged nothing under PDES")
	}
}

// TestCheckerViolationAutoDump: when the random-tester oracle trips
// with the flight recorder armed, the first violation snapshots the
// transcript and Err carries it — a protocol trace, not a bare message.
func TestCheckerViolationAutoDump(t *testing.T) {
	cfg := testConfig(MESI, 1)
	sys, err := NewSystem(cfg, []trace.Stream{
		trace.NewSliceStream([]trace.Access{ld(regAddr(2))}),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableFlightRecorder(0)
	c := NewChecker(sys)
	// Poison the golden value for an address the core only loads:
	// memory returns zero, the oracle expects 0xbad — a guaranteed
	// "violation" that exercises the dump path on a healthy machine.
	c.golden[regAddr(2)] = 0xbad
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c.Violations()) == 0 {
		t.Fatal("poisoned golden produced no violation")
	}
	if c.Transcript() == "" {
		t.Fatal("no transcript captured at first violation")
	}
	if !strings.Contains(c.Transcript(), "msg-send") {
		t.Errorf("transcript has no message records:\n%s", c.Transcript())
	}
	errText := c.Err().Error()
	if !strings.Contains(errText, "flight transcript at first violation") ||
		!strings.Contains(errText, "msg-send") {
		t.Errorf("Err() does not carry the transcript:\n%s", errText)
	}
}

// TestViolationTranscriptGolden pins the auto-dumped transcript's
// exact rendering — record vocabulary, field layout, state names — for
// the deterministic single-core violation scenario above. Regenerate
// with `go test ./internal/core -run ViolationTranscriptGolden -update`
// after an intentional format or protocol-sequence change.
func TestViolationTranscriptGolden(t *testing.T) {
	cfg := testConfig(MESI, 1)
	sys, err := NewSystem(cfg, []trace.Stream{
		trace.NewSliceStream([]trace.Access{ld(regAddr(2)), st(regAddr(2))}),
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableFlightRecorder(0)
	c := NewChecker(sys)
	c.golden[regAddr(2)] = 0xbad
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	got := c.Transcript()
	if got == "" {
		t.Fatal("no transcript captured")
	}
	path := filepath.Join("testdata", "violation_transcript.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("violation transcript drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFlightPhaseReconciliation is the inspect-side acceptance
// invariant: transactions reconstructed from the flight log must carry
// exactly the per-phase dwell times the PR 3 latency breakdown
// measured — same miss count, same per-phase sums, same total.
func TestFlightPhaseReconciliation(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			perCore := randomStreams(4, 600, 10, 40, 17)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			lat := sys.EnableLatencyBreakdown()
			sys.EnableFlightRecorder(1 << 18)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if d := sys.FlightDropped(); d != 0 {
				t.Fatalf("ring dropped %d records; size the ring up for this test", d)
			}
			txns := flight.Reconstruct(sys.FlightRecords())
			var closed uint64
			var total uint64
			var phases [flight.NumPhases]uint64
			for _, txn := range txns {
				if txn.Open {
					t.Errorf("txn core %d region %d still open after a drained run", txn.Core, txn.Region)
					continue
				}
				closed++
				total += txn.Total()
				for ph, d := range txn.Dwell {
					phases[ph] += d
				}
			}
			if closed != lat.Count {
				t.Errorf("reconstructed %d closed txns, breakdown counted %d misses", closed, lat.Count)
			}
			if total != lat.TotalSum {
				t.Errorf("reconstructed total %d cycles, breakdown %d", total, lat.TotalSum)
			}
			for ph := 0; ph < flight.NumPhases; ph++ {
				if phases[ph] != lat.PhaseSum[obs.Phase(ph)] {
					t.Errorf("phase %s: reconstructed %d cycles, breakdown %d",
						flight.PhaseNames[ph], phases[ph], lat.PhaseSum[obs.Phase(ph)])
				}
			}
		})
	}
}
