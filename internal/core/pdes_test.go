package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

// pdesWorkload is a sharing-heavy 4-core schedule with barriers:
// every core hammers a shared region set (forcing cross-tile probes,
// upgrades, and invalidation rounds) interleaved with private work,
// with two barrier episodes so the window coordinator's count-and-
// release path runs.
func pdesWorkload() [][]trace.Access {
	perCore := make([][]trace.Access, 4)
	for c := 0; c < 4; c++ {
		var recs []trace.Access
		for round := 0; round < 30; round++ {
			for r := 0; r < 6; r++ {
				recs = append(recs, ld(regAddr(r)))
				if (round+c+r)%3 == 0 {
					recs = append(recs, st(regAddr(r)))
				}
			}
			recs = append(recs, ld(regAddr(100+c)), st(regAddr(100+c)))
			if round == 10 || round == 20 {
				recs = append(recs, trace.Access{Kind: trace.Barrier, Think: uint16(c)})
			}
		}
		perCore[c] = recs
	}
	return perCore
}

func runPDESWorkload(t *testing.T, p Protocol, workers int) *System {
	t.Helper()
	cfg := testConfig(p, 4)
	cfg.Workers = workers
	perCore := pdesWorkload()
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = trace.NewSliceStream(perCore[i])
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTimeline(500)
	sys.EnableEventTrace(1 << 14)
	sys.EnableLatencyBreakdown()
	sys.EnableAttribution()
	sys.EnableTransitionAudit()
	sys.EnableFlightRecorder(1 << 16)
	if err := sys.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return sys
}

func flightLogBytes(t *testing.T, sys *System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.WriteFlightLog(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPDESWorkerCountInvariance runs the window loop at 1, 2, and 4
// workers over a sharing-and-barrier-heavy schedule and requires every
// observable — stats, timeline, trace events, latency breakdown,
// attribution, transition audit — to match exactly. Running in package
// core puts the worker crew under the tier-1 -race pass.
func TestPDESWorkerCountInvariance(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			base := runPDESWorkload(t, p, 1)
			for _, w := range []int{2, 4} {
				got := runPDESWorkload(t, p, w)
				assertJSONEqual(t, w, "stats", base.Stats(), got.Stats())
				assertJSONEqual(t, w, "timeline", base.Timeline(), got.Timeline())
				assertJSONEqual(t, w, "trace", base.Recorder().Snapshot(), got.Recorder().Snapshot())
				assertJSONEqual(t, w, "latency", base.LatencyBreakdown(), got.LatencyBreakdown())
				assertJSONEqual(t, w, "attribution", base.Attribution().Summarize(), got.Attribution().Summarize())
				if bt, gt := base.TransitionTable(), got.TransitionTable(); bt != gt {
					t.Errorf("transition table diverges between workers=1 and workers=%d:\n%s\n---\n%s", w, bt, gt)
				}
				// The serialized flight log — header and every record —
				// must be byte-identical, not just semantically equal.
				if bf, gf := flightLogBytes(t, base), flightLogBytes(t, got); !bytes.Equal(bf, gf) {
					t.Errorf("flight log diverges between workers=1 and workers=%d (%d vs %d bytes)",
						w, len(bf), len(gf))
				}
			}
		})
	}
}

func assertJSONEqual(t *testing.T, workers int, what string, a, b any) {
	t.Helper()
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatalf("marshal %s: %v", what, err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal %s: %v", what, err)
	}
	if string(aj) != string(bj) {
		t.Errorf("%s diverges between workers=1 and workers=%d:\n%s\n---\n%s", what, workers, aj, bj)
	}
}

// TestPDESRejectsGlobalOrderHooks: configurations that assume one
// global event order must fail loudly at Run rather than race or
// silently reorder.
func TestPDESRejectsGlobalOrderHooks(t *testing.T) {
	build := func(mutate func(*Config), arm func(*System)) error {
		cfg := testConfig(MESI, 1)
		cfg.Workers = 2
		if mutate != nil {
			mutate(&cfg)
		}
		sys, err := NewSystem(cfg, []trace.Stream{trace.NewSliceStream([]trace.Access{ld(0x40)})})
		if err != nil {
			t.Fatal(err)
		}
		if arm != nil {
			arm(sys)
		}
		return sys.Run()
	}
	if err := build(nil, func(s *System) { s.SetObserver(nopObserver{}) }); err == nil {
		t.Error("observer accepted under PDES")
	}
	// The message log rides the per-tile flight rings now, so it no
	// longer forces a global event order and must run under PDES.
	if err := build(nil, func(s *System) { s.EnableMessageLog(8) }); err != nil {
		t.Errorf("message log rejected under PDES: %v", err)
	}
	if err := build(func(c *Config) { c.Noc.ModelContention = true }, nil); err == nil {
		t.Error("NoC contention accepted under PDES")
	}
	if err := build(nil, nil); err != nil {
		t.Errorf("plain PDES config rejected: %v", err)
	}
}

type nopObserver struct{}

func (nopObserver) OnStore(int, mem.Addr, uint64) {}
func (nopObserver) OnLoad(int, mem.Addr, uint64)  {}
func (nopObserver) OnTxnEnd(mem.RegionID)         {}
