package core

// Exact timing-model tests: known flows must cost precisely the cycle
// counts the Table 4 parameters predict, pinning the latency model
// against accidental drift.

import (
	"testing"

	"protozoa/internal/engine"
	"protozoa/internal/trace"
)

// latencies used by testConfig (DefaultConfig): L1 2, L2 14, mem 300;
// NoC: router 2, hop 4, serialization 2 per extra flit, local 1.

func execCycles(t *testing.T, cfg Config, recs []trace.Access) engine.Cycle {
	t.Helper()
	streams := make([]trace.Stream, cfg.Cores)
	streams[0] = trace.NewSliceStream(recs)
	for i := 1; i < cfg.Cores; i++ {
		streams[i] = trace.NewSliceStream(nil)
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return engine.Cycle(sys.Stats().ExecCycles)
}

func TestTimingL1Hit(t *testing.T) {
	// Cold miss then one hit: the hit adds exactly L1HitLat cycles.
	cfg := testConfig(MESI, 1)
	missOnly := execCycles(t, cfg, []trace.Access{ld(0x0)})
	withHit := execCycles(t, cfg, []trace.Access{ld(0x0), ld(0x8)})
	if got := withHit - missOnly; got != cfg.L1HitLat {
		t.Errorf("hit cost = %d cycles, want %d", got, cfg.L1HitLat)
	}
}

func TestTimingColdMissSingleTile(t *testing.T) {
	// One core, one tile: every message is local (LocalLat each).
	// miss = L1HitLat (lookup) + LocalLat (GETS) + L2Lat + MemLat
	//      + LocalLat (DATA) + done; the fill completes the access.
	cfg := testConfig(MESI, 1)
	got := execCycles(t, cfg, []trace.Access{ld(0x0)})
	want := cfg.L1HitLat + cfg.Noc.LocalLat + cfg.L2Lat + cfg.MemLat + cfg.Noc.LocalLat
	if got != want {
		t.Errorf("cold miss = %d cycles, want %d", got, want)
	}
}

func TestTimingWarmMissCheaperByMemLat(t *testing.T) {
	// Second region touch at the L2 (after an eviction) skips MemLat.
	cfg := testConfig(MESI, 1)
	cfg.L1Sets = 1
	var recs []trace.Access
	// Touch regions 0..4 (5 > 4 ways: region 0 evicted), then re-read 0.
	for i := 0; i <= 4; i++ {
		recs = append(recs, ld(regAddr(i)))
	}
	base := execCycles(t, cfg, recs)
	withReread := execCycles(t, cfg, append(append([]trace.Access{}, recs...), ld(regAddr(0))))
	rereadCost := withReread - base
	coldCost := cfg.L1HitLat + cfg.Noc.LocalLat + cfg.L2Lat + cfg.MemLat + cfg.Noc.LocalLat
	if rereadCost != coldCost-cfg.MemLat {
		t.Errorf("warm re-read = %d cycles, want %d (cold %d minus MemLat)",
			rereadCost, coldCost-cfg.MemLat, coldCost)
	}
}

func TestTimingRemoteMissAddsHops(t *testing.T) {
	// Two tiles: region 1 homes on tile 1, so core 0's miss crosses one
	// hop each way. Request: 8 B = 1 flit; response: 8+64 B = 5 flits.
	cfg := testConfig(MESI, 2)
	local := execCycles(t, cfg, []trace.Access{ld(regAddr(0))})  // home tile 0
	remote := execCycles(t, cfg, []trace.Access{ld(regAddr(1))}) // home tile 1
	reqLat := cfg.Noc.RouterLat + cfg.Noc.HopLatency
	respLat := cfg.Noc.RouterLat + cfg.Noc.HopLatency + 4*cfg.Noc.SerialLat
	wantDelta := (reqLat - cfg.Noc.LocalLat) + (respLat - cfg.Noc.LocalLat)
	if got := remote - local; got != wantDelta {
		t.Errorf("remote-home delta = %d cycles, want %d", got, wantDelta)
	}
}

func TestTimingGatherPenalty(t *testing.T) {
	// A probe that gathers two blocks delays its reply by exactly one
	// cycle over a single-block probe (the COH_B multi-step snoop of
	// Figure 3). Measured as the probe-send to reply-send gap in the
	// message transcript, which is independent of payload flits.
	replyGap := func(twoBlocks bool) engine.Cycle {
		cfg := testConfig(ProtozoaSW, 2)
		cfg.PredictorOverride = oneWordOverride
		owner := []trace.Access{st(regAddr(2))}
		if twoBlocks {
			owner = append(owner, st(regAddr(2)+8*4)) // word 4, same region
		}
		owner = append(owner, trace.Access{Kind: trace.Barrier})
		reader := []trace.Access{{Kind: trace.Barrier}, st(regAddr(2))}
		sys, err := NewSystem(cfg, []trace.Stream{
			trace.NewSliceStream(reader),
			trace.NewSliceStream(owner),
		})
		if err != nil {
			t.Fatal(err)
		}
		sys.EnableMessageLog(0)
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		var probeAt, replyAt engine.Cycle
		for _, e := range sys.MessagesForRegion(2) {
			switch {
			case e.Msg.Type == MsgFwdGetX && e.Msg.Dst == 1:
				probeAt = e.Cycle
			case e.Msg.Type == MsgWback && e.Msg.Src == 1 && probeAt != 0:
				replyAt = e.Cycle
			}
		}
		if probeAt == 0 || replyAt == 0 {
			t.Fatal("probe/reply not found in transcript")
		}
		return replyAt - probeAt
	}
	one := replyGap(false)
	two := replyGap(true)
	if two != one+1 {
		t.Errorf("two-block gather gap = %d cycles vs one-block %d, want +1", two, one)
	}
}
