package core

// State-machine conformance: record every transition the protocols
// take under random traffic and check the structural invariants of the
// Figure 8 machine and the Table 2/3 per-variant rules. Unlike a
// golden whitelist, these predicates hold for any seed.

import (
	"strings"
	"testing"

	"protozoa/internal/trace"
)

func collectTransitions(t *testing.T, p Protocol, seed uint64) *System {
	t.Helper()
	cfg := testConfig(p, 4)
	cfg.L1Sets = 2
	cfg.L1SetBudget = 144
	cfg.MaxEvents = 5_000_000
	perCore := randomStreams(4, 2000, 10, 40, seed)
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = trace.NewSliceStream(perCore[i])
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTransitionAudit()
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// stable extracts the stable-state letter of an L1 region state label
// ("M_IS" -> "M").
func stable(state string) string {
	if i := strings.IndexByte(state, '_'); i >= 0 {
		return state[:i]
	}
	return state
}

func TestTransitionConformance(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			sys := collectTransitions(t, p, 7)
			if len(sys.Transitions()) == 0 {
				t.Fatal("no transitions recorded")
			}
			for tr := range sys.Transitions() {
				if tr.Ctrl == "L1" {
					checkL1Transition(t, p, tr)
				} else {
					checkDirTransition(t, p, tr)
				}
			}
		})
	}
}

func checkL1Transition(t *testing.T, p Protocol, tr Transition) {
	t.Helper()
	from, to := stable(tr.From), stable(tr.To)
	switch tr.Event {
	case "FWD_GETX", "INV":
		// Region-granularity protocols surrender everything; SW+MR
		// owners are fully revoked to at most Shared; MW may keep
		// non-overlapping dirty blocks.
		switch p {
		case MESI, ProtozoaSW:
			if to != "I" {
				t.Errorf("%v: %s must invalidate fully", p, tr)
			}
		case ProtozoaSWMR:
			if to == "M" || to == "E" {
				t.Errorf("%v: %s left write permission behind", p, tr)
			}
		}
	case "FwdGetS":
		// A read probe removes write permission on the probed range;
		// MESI/SW downgrade the whole region.
		if p == MESI || p == ProtozoaSW {
			if to == "M" || to == "E" {
				t.Errorf("%v: %s left write permission after a read probe", p, tr)
			}
		}
	case "Grant", "DATA_M":
		if to != "M" {
			t.Errorf("%v: %s must end Modified", p, tr)
		}
	case "DATA":
		if to != "S" && to != "M" && to != "E" {
			// S normally; M/E possible when other blocks of the region
			// are already held dirty (Protozoa multi-block regions).
			t.Errorf("%v: %s ended %q", p, tr, to)
		}
		if (p == MESI) && to != "S" {
			t.Errorf("%v: %s must end Shared at fixed granularity", p, tr)
		}
	case "Load", "Store":
		if from == "I" && !strings.Contains(tr.To, "_") {
			t.Errorf("%v: %s from Invalid must start a miss", p, tr)
		}
	}
	// Transients resolve only through fills/grants: an event that is
	// not a fill or grant must never clear an outstanding miss.
	if strings.Contains(tr.From, "_") && !strings.Contains(tr.To, "_") {
		switch tr.Event {
		case "DATA", "DATA_E", "DATA_M", "Grant":
		default:
			t.Errorf("%v: %s cleared a transient without a response", p, tr)
		}
	}
}

func checkDirTransition(t *testing.T, p Protocol, tr Transition) {
	t.Helper()
	// Multiple owners exist only under Protozoa-MW.
	if (tr.From == "O+" || tr.To == "O+") && p != ProtozoaMW {
		t.Errorf("%v: multi-owner state in %s", p, tr)
	}
	switch tr.Event {
	case "GETX", "UPGRADE":
		if tr.To != "O" && tr.To != "O+" {
			t.Errorf("%v: %s must leave an owner", p, tr)
		}
	case "GETS":
		if tr.To == "I" {
			t.Errorf("%v: %s cannot empty the directory", p, tr)
		}
		// After a read under region-granularity single-writer rules the
		// previous owner is downgraded: O survives a GETS only for the
		// secondary-GETS-from-owner case (requester is the owner) — for
		// MESI that is impossible at fixed granularity unless the E/M
		// holder re-misses after a silent drop, which re-grants E.
	case "WBACK_LAST":
		// The final eviction may empty the entry or leave other sharers.
		if tr.To == "O+" && p != ProtozoaMW {
			t.Errorf("%v: %s left multiple owners", p, tr)
		}
	}
}

// TestTransitionTableRendering exercises the golden-table renderer.
func TestTransitionTableRendering(t *testing.T) {
	sys := collectTransitions(t, MESI, 3)
	out := sys.TransitionTable()
	for _, want := range []string{"L1: I --Load--> I_IS", "Dir: SS --GETX--> O", "DATA_M"} {
		if !strings.Contains(out, want) {
			t.Errorf("transition table missing %q:\n%s", want, out)
		}
	}
	// Sorted and counted.
	if !strings.Contains(out, "(") {
		t.Error("table missing counts")
	}
}

// TestTransitionAuditCapturesFigure6State: the Figure 6 race state — a
// dirty block plus an outstanding read miss (M_IS) receiving a
// forwarded write probe — must occur under Protozoa-SW random traffic.
func TestTransitionAuditCapturesFigure6State(t *testing.T) {
	sys := collectTransitions(t, ProtozoaSW, 7)
	found := false
	for tr := range sys.Transitions() {
		if tr.Ctrl == "L1" && tr.From == "M_IS" && (tr.Event == "FWD_GETX" || tr.Event == "FwdGetS") {
			found = true
			break
		}
	}
	if !found {
		t.Error("Figure 6 race state (M_IS probed) never exercised")
	}
}
