package core

import "protozoa/internal/engine"

// TimelineSample is a cumulative-counter snapshot taken mid-run.
// Consumers diff adjacent samples to get per-window rates — warmup
// versus steady-state behaviour, the phase structure of barrier
// workloads, and so on.
type TimelineSample struct {
	Cycle    engine.Cycle
	Accesses uint64
	Misses   uint64
	Traffic  uint64
	FlitHops uint64
}

// EnableTimeline samples the run every interval cycles. Call before
// Run; sampling stops when every core has finished.
func (s *System) EnableTimeline(interval engine.Cycle) {
	if interval == 0 {
		interval = 1000
	}
	s.timelineInterval = interval
}

// Timeline returns the collected samples in time order.
func (s *System) Timeline() []TimelineSample { return s.timeline }

// timelineEvent is the pre-bound engine.Runner behind sampleTimeline:
// rescheduling it re-queues the same struct instead of capturing a new
// closure per sample.
type timelineEvent struct{ s *System }

func (ev *timelineEvent) Run() { ev.s.sampleTimeline() }

func (s *System) sampleTimeline() {
	s.checkStalls(s.eng.Now())
	s.timeline = append(s.timeline, TimelineSample{
		Cycle:    s.eng.Now(),
		Accesses: s.st.Accesses,
		Misses:   s.st.L1Misses,
		Traffic:  s.st.TrafficTotal(),
		FlitHops: s.st.FlitHops,
	})
	if s.metrics != nil {
		s.metrics.Sample(uint64(s.eng.Now()))
	}
	if s.onSample != nil {
		s.onSample(uint64(s.eng.Now()))
	}
	if s.coresDone < s.cfg.Cores {
		s.eng.ScheduleRunner(s.timelineInterval, &s.timelineEv)
	}
}
