package core

import (
	"fmt"

	"protozoa/internal/cache"
	"protozoa/internal/engine"
	"protozoa/internal/mem"
	"protozoa/internal/noc"
	"protozoa/internal/obs"
	"protozoa/internal/obs/attrib"
	"protozoa/internal/predictor"
	"protozoa/internal/stats"
	"protozoa/internal/trace"
)

// Config assembles a simulated machine. DefaultConfig reproduces the
// paper's Table 4 system.
type Config struct {
	Protocol Protocol
	Cores    int // one L1 + one L2/directory tile per core

	// Geometry: RegionBytes is the coherence/directory granularity and
	// the maximum block size (RMAX). The MESI baseline uses it as the
	// fixed block size, which is how the Table 1 sweep varies 16-128 B.
	RegionBytes int

	// L1 sizing (per-set byte budget, tag overhead charged per block).
	L1Sets, L1SetBudget, L1TagBytes int

	// MergeL1Blocks enables Amoeba block coalescing: adjacent
	// same-state fragments of a region re-join on fill.
	MergeL1Blocks bool

	// ThreeHop enables owner-to-requester direct data forwarding when a
	// transaction has a single owner target whose blocks fully cover
	// the request (Section 6); all other cases fall back to 4-hop.
	ThreeHop bool

	// Directory selects precise sharer vectors (the paper's default) or
	// the Section 6 TL-style counting bloom filter. Bloom mode disables
	// silent clean evictions (the L1 notifies the directory when the
	// last block of a region leaves).
	Directory    DirectoryKind
	BloomHashes  int // 0 = DefaultBloomHashes
	BloomBuckets int // 0 = DefaultBloomBuckets

	// L2RegionsPerTile bounds each tile's L2 slice (0 = unbounded, the
	// evaluation default — Table 4's 2 MB/tile is effectively infinite
	// for the simulated working sets). A full slice evicts its
	// least-recently-used region, recalling L1 copies first to keep the
	// L2 inclusive, and writes dirty data back to memory.
	L2RegionsPerTile int

	// NonInclusiveL2 models the Section 6 "Non-Inclusive Shared Cache"
	// design issue: the L2 drops its copy of words granted exclusively
	// to an L1, so a later response may have to combine a remote
	// owner's writeback with words re-fetched from memory — the
	// multi-source assembly the paper describes. Off by default (the
	// paper's protocols use the inclusive L2 to simplify this case).
	NonInclusiveL2 bool

	// SpatialPredictor selects the PC predictor; MESI always uses the
	// fixed full-region predictor regardless of this setting.
	SpatialPredictor bool
	PredictorTable   int

	// PredictorOverride, when non-nil, supplies each L1's predictor and
	// overrides SpatialPredictor — used by directed tests and the
	// predictor ablation study (e.g. an oracle or one-word predictor).
	PredictorOverride func(core int) predictor.Predictor

	// Latencies in core cycles (Table 4: 2-cycle L1, 14-cycle L2,
	// 300-cycle memory).
	L1HitLat, L2Lat, MemLat engine.Cycle

	Noc noc.Config

	// MaxEvents bounds the event count as a livelock watchdog;
	// 0 disables the bound.
	MaxEvents uint64
}

// DefaultConfig is the Table 4 16-core system for the given protocol.
func DefaultConfig(p Protocol) Config {
	return Config{
		Protocol:         p,
		Cores:            16,
		RegionBytes:      64,
		L1Sets:           256,
		L1SetBudget:      288,
		L1TagBytes:       8,
		SpatialPredictor: p.Adaptive(),
		PredictorTable:   predictor.DefaultTableSize,
		L1HitLat:         2,
		L2Lat:            14,
		MemLat:           300,
		Noc:              noc.DefaultConfig(),
		MaxEvents:        0,
	}
}

// Observer receives correctness-checking hooks; see the random tester.
type Observer interface {
	// OnStore fires when a store retires with write permission held.
	OnStore(core int, addr mem.Addr, val uint64)
	// OnLoad fires when a load's value is returned to the core.
	OnLoad(core int, addr mem.Addr, val uint64)
	// OnTxnEnd fires when the directory completes a transaction for the
	// region — a quiescent point for invariant checks.
	OnTxnEnd(region mem.RegionID)
}

// System is one assembled machine: cores, private L1s, the mesh, and
// the tiled shared L2 with its in-cache directory.
type System struct {
	cfg  Config
	geom mem.Geometry
	eng  *engine.Engine
	mesh *noc.Mesh
	st   *stats.Stats

	l1s  []*l1Ctrl
	dirs []*dirSlice
	cpus []*cpu

	obs Observer
	log *msgLog

	// Observability hooks (internal/obs). All nil/zero unless the
	// corresponding Enable* method ran; every use site guards with a
	// single nil check so the disabled path costs one branch.
	rec     *obs.Recorder
	lat     *obs.LatencyBreakdown
	metrics *obs.Registry
	attrib  *attrib.Tracker

	// onSample, when non-nil, runs after every timeline tick's metrics
	// sample — the live-endpoint publish hook (SetSampleHook).
	onSample func(cycle uint64)

	// Pool and occupancy gauges feeding the metrics registry.
	poolHits   uint64 // newMsg served from the free list
	poolAllocs uint64 // newMsg had to allocate
	mshrLive   int    // misses outstanding across all cores

	// nextTxn issues globally unique directory transaction IDs (so
	// transcripts are unambiguous across tiles).
	nextTxn uint64

	// transitions records the observed protocol state machine when
	// EnableTransitionAudit was called (nil otherwise).
	transitions map[Transition]uint64

	// Timeline sampling (EnableTimeline). timelineEv is the pre-bound
	// engine.Runner the sampler reschedules itself through.
	timelineInterval engine.Cycle
	timeline         []TimelineSample
	timelineEv       timelineEvent

	// lastRetire is the cycle the final core finished its stream.
	lastRetire engine.Cycle

	barrierWait    []*cpu
	barrierArrived int
	coresDone      int
	ran            bool

	// msgPool is the free list behind newMsg/freeMsg: the machine is
	// single-goroutine, so recycling needs no synchronization. At steady
	// state every coherence message comes from here.
	msgPool []*Msg
}

// newMsg takes a zeroed message from the free list (or allocates one).
func (s *System) newMsg() *Msg {
	if n := len(s.msgPool); n > 0 {
		m := s.msgPool[n-1]
		s.msgPool = s.msgPool[:n-1]
		s.poolHits++
		return m
	}
	s.poolAllocs++
	return &Msg{sys: s}
}

// freeMsg recycles a message whose lifecycle has ended: delivered and
// fully handled, with no controller retaining a reference.
func (s *System) freeMsg(m *Msg) {
	*m = Msg{sys: s}
	s.msgPool = append(s.msgPool, m)
}

// NewSystem builds a machine executing the given per-core streams.
// len(streams) must equal cfg.Cores, and the mesh must have exactly
// one node per core.
func NewSystem(cfg Config, streams []trace.Stream) (*System, error) {
	if cfg.Cores <= 0 || cfg.Cores > 32 {
		return nil, fmt.Errorf("core: bad core count %d (directory vectors hold up to 32)", cfg.Cores)
	}
	if len(streams) != cfg.Cores {
		return nil, fmt.Errorf("core: %d streams for %d cores", len(streams), cfg.Cores)
	}
	if cfg.Noc.DimX*cfg.Noc.DimY != cfg.Cores {
		return nil, fmt.Errorf("core: mesh %dx%d does not match %d cores", cfg.Noc.DimX, cfg.Noc.DimY, cfg.Cores)
	}
	geom, err := mem.NewGeometry(cfg.RegionBytes)
	if err != nil {
		return nil, err
	}
	st := &stats.Stats{PerCore: make([]stats.CoreStats, cfg.Cores)}
	eng := engine.New()
	mesh, err := noc.New(cfg.Noc, eng, st)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, geom: geom, eng: eng, mesh: mesh, st: st}
	for i := 0; i < cfg.Cores; i++ {
		l1cache, err := cache.New(cache.Config{
			Sets:           cfg.L1Sets,
			SetBudgetBytes: cfg.L1SetBudget,
			TagBytes:       cfg.L1TagBytes,
			Geom:           geom,
			MergeBlocks:    cfg.MergeL1Blocks,
		})
		if err != nil {
			return nil, err
		}
		var pred predictor.Predictor
		switch {
		case cfg.PredictorOverride != nil:
			pred = cfg.PredictorOverride(i)
		case cfg.SpatialPredictor && cfg.Protocol.Adaptive():
			pred = predictor.NewSpatial(geom, cfg.PredictorTable)
		default:
			pred = predictor.Fixed{Geom: geom}
		}
		s.l1s = append(s.l1s, newL1(s, i, l1cache, pred))
		s.dirs = append(s.dirs, newDirSlice(s, i))
		c := &cpu{id: i, sys: s, stream: streams[i]}
		c.thinkEv = cpuThink{s: s, c: c}
		c.stepEv = cpuStep{s: s, c: c}
		s.cpus = append(s.cpus, c)
	}
	return s, nil
}

// SetObserver installs correctness hooks; pass nil to remove.
func (s *System) SetObserver(o Observer) { s.obs = o }

// Stats exposes the run's counters.
func (s *System) Stats() *stats.Stats { return s.st }

// Engine exposes the event engine (tests and the random tester).
func (s *System) Engine() *engine.Engine { return s.eng }

// Protocol reports the configured protocol.
func (s *System) Protocol() Protocol { return s.cfg.Protocol }

// Geometry reports the region geometry.
func (s *System) Geometry() mem.Geometry { return s.geom }

// home returns the tile whose L2 slice and directory own the region
// (low-order interleaving across tiles, as in tiled CMPs).
func (s *System) home(r mem.RegionID) int {
	return int(uint64(r) % uint64(s.cfg.Cores))
}

// send puts a message on the mesh and accounts its control bytes.
// Data payload bytes are classified used/unused at block-death and
// writeback time by the L1s, so they are not accounted here.
func (s *System) send(m *Msg) {
	s.st.AddControl(m.Class(), CtrlBytes)
	if s.log != nil {
		s.log.record(s.eng.Now(), m)
	}
	if s.rec != nil {
		s.rec.Record(obs.Event{
			Cycle: s.eng.Now(), Kind: obs.KindMsgSend, Sub: uint8(m.Type),
			Node: int16(m.Src), Peer: int16(m.Dst),
			Region: uint64(m.Region), Txn: m.TxnID,
		})
	}
	m.sys = s
	m.phase = phaseDeliver
	s.mesh.SendRunner(m.Src, m.Dst, m.VNet(), m.Bytes(), m)
}

// deliver hands an arriving message to its destination controller.
// Requests are retained by the directory (queued or held by the active
// transaction) and recycled when their transaction finishes; every
// other message is dead once its handler returns and goes back to the
// pool here.
func (s *System) deliver(m *Msg) {
	if s.rec != nil {
		s.rec.Record(obs.Event{
			Cycle: s.eng.Now(), Kind: obs.KindMsgDeliver, Sub: uint8(m.Type),
			Node: int16(m.Src), Peer: int16(m.Dst),
			Region: uint64(m.Region), Txn: m.TxnID,
		})
	}
	switch m.Type {
	case MsgGetS, MsgGetX, MsgUpgrade:
		s.dirs[m.Dst].recvRequest(m)
	case MsgAck, MsgAckS, MsgNack, MsgWback, MsgWbackLast, MsgUnblock:
		s.dirs[m.Dst].recvResponse(m)
		s.freeMsg(m)
	default:
		s.l1s[m.Dst].recv(m)
		s.freeMsg(m)
	}
}

// Run executes the machine to completion. It returns an error when
// the event queue drains with stalled cores (a protocol deadlock) or
// the watchdog fires.
func (s *System) Run() error {
	if s.ran {
		return fmt.Errorf("core: system already ran")
	}
	s.ran = true
	for _, c := range s.cpus {
		s.eng.ScheduleRunner(0, &c.stepEv)
	}
	if s.timelineInterval > 0 {
		s.timelineEv.s = s
		s.eng.ScheduleRunner(s.timelineInterval, &s.timelineEv)
	}
	drained := s.eng.Run(s.cfg.MaxEvents)
	if !drained {
		return fmt.Errorf("core: watchdog fired after %d events (livelock?)\n%s",
			s.eng.Processed(), s.diagnose())
	}
	if s.coresDone != s.cfg.Cores {
		return fmt.Errorf("core: deadlock: %d/%d cores finished, %d at barrier\n%s",
			s.coresDone, s.cfg.Cores, s.barrierArrived, s.diagnose())
	}
	s.st.ExecCycles = uint64(s.lastRetire)
	s.flushResidual()
	return nil
}

// flushResidual classifies data still resident at the end of the run so
// every fetched word is counted exactly once as used or unused.
func (s *System) flushResidual() {
	for _, l1 := range s.l1s {
		l1.cache.Blocks(func(b *cache.Block) {
			l1.classifyDeath(b)
		})
	}
}

// ForEachCachedWord walks every word resident in any L1 — the hook the
// SWMR invariant checker uses.
func (s *System) ForEachCachedWord(fn func(core int, region mem.RegionID, w uint8, st cache.State, val uint64)) {
	for _, l1 := range s.l1s {
		core := l1.id
		l1.cache.Blocks(func(b *cache.Block) {
			for w := b.R.Start; ; w++ {
				fn(core, b.Region, w, b.State, b.Word(w))
				if w == b.R.End {
					break
				}
			}
		})
	}
}

// L2Word returns the shared L2's value for a word, and whether the
// region has been allocated at the L2 at all.
func (s *System) L2Word(region mem.RegionID, w uint8) (uint64, bool) {
	d := s.dirs[s.home(region)]
	e := d.lookup(region)
	if e == nil {
		return 0, false
	}
	return e.data[w], true
}

// DirBusy reports whether the region has an active directory
// transaction (checker support: invariants are only guaranteed at
// quiescent points).
func (s *System) DirBusy(region mem.RegionID) bool {
	e := s.dirs[s.home(region)].lookup(region)
	return e != nil && e.busy
}
