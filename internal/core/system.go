package core

import (
	"fmt"
	"io"

	"protozoa/internal/cache"
	"protozoa/internal/engine"
	"protozoa/internal/mem"
	"protozoa/internal/noc"
	"protozoa/internal/obs"
	"protozoa/internal/obs/attrib"
	"protozoa/internal/obs/flight"
	"protozoa/internal/obs/selfprof"
	"protozoa/internal/predictor"
	"protozoa/internal/stats"
	"protozoa/internal/trace"
)

// Config assembles a simulated machine. DefaultConfig reproduces the
// paper's Table 4 system.
type Config struct {
	Protocol Protocol
	Cores    int // one L1 + one L2/directory tile per core

	// Geometry: RegionBytes is the coherence/directory granularity and
	// the maximum block size (RMAX). The MESI baseline uses it as the
	// fixed block size, which is how the Table 1 sweep varies 16-128 B.
	RegionBytes int

	// L1 sizing (per-set byte budget, tag overhead charged per block).
	L1Sets, L1SetBudget, L1TagBytes int

	// MergeL1Blocks enables Amoeba block coalescing: adjacent
	// same-state fragments of a region re-join on fill.
	MergeL1Blocks bool

	// ThreeHop enables owner-to-requester direct data forwarding when a
	// transaction has a single owner target whose blocks fully cover
	// the request (Section 6); all other cases fall back to 4-hop.
	ThreeHop bool

	// Directory selects precise sharer vectors (the paper's default) or
	// the Section 6 TL-style counting bloom filter. Bloom mode disables
	// silent clean evictions (the L1 notifies the directory when the
	// last block of a region leaves).
	Directory    DirectoryKind
	BloomHashes  int // 0 = DefaultBloomHashes
	BloomBuckets int // 0 = DefaultBloomBuckets

	// L2RegionsPerTile bounds each tile's L2 slice (0 = unbounded, the
	// evaluation default — Table 4's 2 MB/tile is effectively infinite
	// for the simulated working sets). A full slice evicts its
	// least-recently-used region, recalling L1 copies first to keep the
	// L2 inclusive, and writes dirty data back to memory.
	L2RegionsPerTile int

	// NonInclusiveL2 models the Section 6 "Non-Inclusive Shared Cache"
	// design issue: the L2 drops its copy of words granted exclusively
	// to an L1, so a later response may have to combine a remote
	// owner's writeback with words re-fetched from memory — the
	// multi-source assembly the paper describes. Off by default (the
	// paper's protocols use the inclusive L2 to simplify this case).
	NonInclusiveL2 bool

	// SpatialPredictor selects the PC predictor; MESI always uses the
	// fixed full-region predictor regardless of this setting.
	SpatialPredictor bool
	PredictorTable   int

	// PredictorOverride, when non-nil, supplies each L1's predictor and
	// overrides SpatialPredictor — used by directed tests and the
	// predictor ablation study (e.g. an oracle or one-word predictor).
	PredictorOverride func(core int) predictor.Predictor

	// Latencies in core cycles (Table 4: 2-cycle L1, 14-cycle L2,
	// 300-cycle memory).
	L1HitLat, L2Lat, MemLat engine.Cycle

	Noc noc.Config

	// MaxEvents bounds the event count as a livelock watchdog;
	// 0 disables the bound.
	MaxEvents uint64

	// Workers selects the execution mode. 0 (the default) runs the
	// whole machine on one shared event queue, exactly as before. Any
	// value >= 1 partitions the machine by tile and drives it with the
	// conservative PDES window loop using that many worker goroutines;
	// results are byte-identical across every Workers >= 1 setting.
	// The two modes schedule same-cycle cross-tile events differently,
	// so 0 and 1 are distinct (each internally deterministic) schedules.
	Workers int
}

// DefaultConfig is the Table 4 16-core system for the given protocol.
func DefaultConfig(p Protocol) Config {
	return Config{
		Protocol:         p,
		Cores:            16,
		RegionBytes:      64,
		L1Sets:           256,
		L1SetBudget:      288,
		L1TagBytes:       8,
		SpatialPredictor: p.Adaptive(),
		PredictorTable:   predictor.DefaultTableSize,
		L1HitLat:         2,
		L2Lat:            14,
		MemLat:           300,
		Noc:              noc.DefaultConfig(),
		MaxEvents:        0,
	}
}

// Observer receives correctness-checking hooks; see the random tester.
type Observer interface {
	// OnStore fires when a store retires with write permission held.
	OnStore(core int, addr mem.Addr, val uint64)
	// OnLoad fires when a load's value is returned to the core.
	OnLoad(core int, addr mem.Addr, val uint64)
	// OnTxnEnd fires when the directory completes a transaction for the
	// region — a quiescent point for invariant checks.
	OnTxnEnd(region mem.RegionID)
}

// System is one assembled machine: cores, private L1s, the mesh, and
// the tiled shared L2 with its in-cache directory.
type System struct {
	cfg  Config
	geom mem.Geometry
	eng  *engine.Engine
	mesh *noc.Mesh
	st   *stats.Stats

	l1s  []*l1Ctrl
	dirs []*dirSlice
	cpus []*cpu

	obs Observer

	// tiles are the PDES partitions (one per core: core + L1 + L2/dir
	// slice + router). In the legacy single-queue mode every tile
	// aliases the shared engine, stats, and message pool, so the
	// controllers always account through their tile and never branch.
	tiles []*tile
	pdes  bool         // Workers > 0: run the window loop instead of Engine.Run
	// Observability hooks (internal/obs). All nil/zero unless the
	// corresponding Enable* method ran; every use site guards with a
	// single nil check so the disabled path costs one branch.
	rec     *obs.Recorder
	lat     *obs.LatencyBreakdown
	metrics *obs.Registry
	attrib  *attrib.Tracker

	// flight is the flight recorder (EnableFlightRecorder): per-tile
	// record rings merged deterministically on read. msgCap, when
	// nonzero, bounds the legacy MessageLog view reconstructed from the
	// flight transcript. The stall* fields belong to the watchdog
	// (EnableStallWatchdog), checked on timeline ticks.
	flight         *flight.Recorder
	msgCap         int
	stallThreshold engine.Cycle
	stallOut       io.Writer
	stallSeen      map[stallKey]bool
	stalls         []StallReport

	// selfProf observes the simulator itself (EnableSelfProf): PDES
	// round telemetry and engine queue introspection. nil = disabled.
	selfProf *selfprof.Profile

	// latShards holds per-core latency-breakdown shards under PDES
	// (indexed by the core whose miss is being stamped — directory
	// slices stamp for the requesting core, which may live on another
	// tile, but each core's stamps form a causal chain so a shard is
	// only ever touched by one tile per window). nil in legacy mode.
	latShards []*obs.LatencyBreakdown

	// onSample, when non-nil, runs after every timeline tick's metrics
	// sample — the live-endpoint publish hook (SetSampleHook).
	onSample func(cycle uint64)

	// pool is the shared message free list in legacy mode (PDES tiles
	// carry their own).
	pool msgPool

	// transitions records the observed protocol state machine when
	// EnableTransitionAudit was called (nil otherwise). Under PDES it
	// is the merge target; tiles record into their own maps.
	transitions map[Transition]uint64

	// pdesNow is the last completed window edge — the "current cycle"
	// reported by gauges while the window loop runs. nextSample is the
	// next timeline-sample cycle due.
	pdesNow    engine.Cycle
	nextSample engine.Cycle

	// Timeline sampling (EnableTimeline). timelineEv is the pre-bound
	// engine.Runner the sampler reschedules itself through.
	timelineInterval engine.Cycle
	timeline         []TimelineSample
	timelineEv       timelineEvent

	// lastRetire is the cycle the final core finished its stream.
	lastRetire engine.Cycle

	barrierWait    []*cpu
	barrierArrived int
	coresDone      int
	ran            bool
}

// msgPool is the free list behind newMsg/freeMsg. Each user (the whole
// machine in legacy mode, one tile under PDES) is single-goroutine, so
// recycling needs no synchronization. At steady state every coherence
// message comes from a pool.
type msgPool struct {
	free   []*Msg
	hits   uint64 // newMsg served from the free list
	allocs uint64 // newMsg had to allocate
}

// outMsg is a cross-tile message parked in the sender's outbox until
// the window barrier, when the coordinator moves it to the destination
// tile's queue. at is its precomputed arrival cycle.
type outMsg struct {
	at engine.Cycle
	m  *Msg
}

// tile is one PDES partition: a core, its L1, the co-located L2/dir
// slice, and the router's share of accounting. In legacy mode all
// tiles alias the machine-wide engine, stats, and pool, so controller
// code is identical in both modes.
type tile struct {
	id  int
	sys *System
	eng *engine.Engine
	st  *stats.Stats
	pool *msgPool

	// Per-tile observability shards (nil/shared depending on mode; set
	// by the Enable* methods).
	rec         *obs.Recorder
	flight      *flight.Ring
	attrib      *attrib.Tracker
	prof        *selfprof.TileShard
	transitions map[Transition]uint64

	mshrLive int // misses outstanding at this tile's core

	// PDES window state, untouched in legacy mode.
	outbox         []outMsg
	bound          engine.Cycle   // this round's window bound (exclusive)
	wRow           []engine.Cycle // wRow[j] = mesh.LookaheadBetween(j, id)
	coreDone       bool
	retire         engine.Cycle // cycle this tile's core finished its stream
	barrierArrived bool

	// doneCounted / barrierCounted mark flags the window loop has
	// already folded into its incremental counters, so the per-round
	// bookkeeping touches only the tiles that just ran.
	doneCounted    bool
	barrierCounted bool
}

// newMsg takes a zeroed message from the free list (or allocates one).
func (t *tile) newMsg() *Msg {
	p := t.pool
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		p.hits++
		return m
	}
	p.allocs++
	return &Msg{sys: t.sys}
}

// freeMsg recycles a message whose lifecycle has ended: delivered and
// fully handled, with no controller retaining a reference. Messages are
// freed into the pool of the tile where they died, which may differ
// from the pool that allocated them — pools only recycle memory, they
// carry no identity.
func (t *tile) freeMsg(m *Msg) {
	// The free record is taken before the message is zeroed — it copies
	// every field it keeps, so no record ever aliases a recycled Msg.
	if t.flight != nil {
		t.flightMsg(flight.KindMsgFree, t.eng.Now(), m)
	}
	*m = Msg{sys: t.sys}
	t.pool.free = append(t.pool.free, m)
}

// NewSystem builds a machine executing the given per-core streams.
// len(streams) must equal cfg.Cores, and the mesh must have exactly
// one node per core.
func NewSystem(cfg Config, streams []trace.Stream) (*System, error) {
	if cfg.Cores <= 0 || cfg.Cores > 32 {
		return nil, fmt.Errorf("core: bad core count %d (directory vectors hold up to 32)", cfg.Cores)
	}
	if len(streams) != cfg.Cores {
		return nil, fmt.Errorf("core: %d streams for %d cores", len(streams), cfg.Cores)
	}
	if cfg.Noc.DimX*cfg.Noc.DimY != cfg.Cores {
		return nil, fmt.Errorf("core: mesh %dx%d does not match %d cores", cfg.Noc.DimX, cfg.Noc.DimY, cfg.Cores)
	}
	geom, err := mem.NewGeometry(cfg.RegionBytes)
	if err != nil {
		return nil, err
	}
	st := &stats.Stats{PerCore: make([]stats.CoreStats, cfg.Cores)}
	eng := engine.New()
	mesh, err := noc.New(cfg.Noc, eng, st)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, geom: geom, eng: eng, mesh: mesh, st: st}
	s.pdes = cfg.Workers > 0
	for i := 0; i < cfg.Cores; i++ {
		t := &tile{id: i, sys: s}
		if s.pdes {
			t.eng = engine.New()
			t.wRow = make([]engine.Cycle, cfg.Cores)
			for j := 0; j < cfg.Cores; j++ {
				t.wRow[j] = mesh.LookaheadBetween(j, i)
			}
			t.st = &stats.Stats{PerCore: make([]stats.CoreStats, cfg.Cores)}
			t.pool = &msgPool{}
		} else {
			t.eng = eng
			t.st = st
			t.pool = &s.pool
		}
		s.tiles = append(s.tiles, t)
	}
	for i := 0; i < cfg.Cores; i++ {
		l1cache, err := cache.New(cache.Config{
			Sets:           cfg.L1Sets,
			SetBudgetBytes: cfg.L1SetBudget,
			TagBytes:       cfg.L1TagBytes,
			Geom:           geom,
			MergeBlocks:    cfg.MergeL1Blocks,
		})
		if err != nil {
			return nil, err
		}
		var pred predictor.Predictor
		switch {
		case cfg.PredictorOverride != nil:
			pred = cfg.PredictorOverride(i)
		case cfg.SpatialPredictor && cfg.Protocol.Adaptive():
			pred = predictor.NewSpatial(geom, cfg.PredictorTable)
		default:
			pred = predictor.Fixed{Geom: geom}
		}
		s.l1s = append(s.l1s, newL1(s, s.tiles[i], i, l1cache, pred))
		s.dirs = append(s.dirs, newDirSlice(s, s.tiles[i], i))
		c := &cpu{id: i, sys: s, tl: s.tiles[i], stream: streams[i]}
		c.accessEv = cpuAccess{s: s, c: c}
		c.stepEv = cpuStep{s: s, c: c}
		s.cpus = append(s.cpus, c)
	}
	return s, nil
}

// SetObserver installs correctness hooks; pass nil to remove.
func (s *System) SetObserver(o Observer) { s.obs = o }

// Stats exposes the run's counters.
func (s *System) Stats() *stats.Stats { return s.st }

// Engine exposes the event engine (tests and the random tester). Under
// PDES this is the construction-time engine, which never runs; use
// EventsProcessed for the machine-wide event count.
func (s *System) Engine() *engine.Engine { return s.eng }

// EventsProcessed reports how many events the machine has run, across
// all partitions in PDES mode.
func (s *System) EventsProcessed() uint64 {
	if s.pdes {
		var n uint64
		for _, t := range s.tiles {
			n += t.eng.Processed()
		}
		return n
	}
	return s.eng.Processed()
}

// simNow is the machine's notion of "now" for gauges and diagnostics:
// the shared engine's clock in legacy mode, the last completed window
// edge under PDES.
func (s *System) simNow() engine.Cycle {
	if s.pdes {
		return s.pdesNow
	}
	return s.eng.Now()
}

// queuePending and queueHighWater aggregate the engine-queue gauges
// across partitions under PDES; legacy mode reads the shared engine.
func (s *System) queuePending() int {
	if !s.pdes {
		return s.eng.Pending()
	}
	n := 0
	for _, t := range s.tiles {
		n += t.eng.Pending()
	}
	return n
}

func (s *System) queueHighWater() int {
	if !s.pdes {
		return s.eng.HighWater()
	}
	n := 0
	for _, t := range s.tiles {
		n += t.eng.HighWater()
	}
	return n
}

// queueZeroDelayHits aggregates the engines' zero-delay fast-path hit
// counters (always on — the count shares the fast path's branch).
func (s *System) queueZeroDelayHits() uint64 {
	if !s.pdes {
		return s.eng.MicroHits()
	}
	var n uint64
	for _, t := range s.tiles {
		n += t.eng.MicroHits()
	}
	return n
}

// poolCounts aggregates message-pool hit/alloc counters across the
// pools in use (one shared pool in legacy mode, one per tile in PDES).
func (s *System) poolCounts() (hits, allocs uint64) {
	if !s.pdes {
		return s.pool.hits, s.pool.allocs
	}
	for _, t := range s.tiles {
		hits += t.pool.hits
		allocs += t.pool.allocs
	}
	return hits, allocs
}

// latFor returns the latency-breakdown sink for stamps belonging to the
// given core's misses: the per-core shard under PDES, the shared
// tracker otherwise (nil when the breakdown is disabled).
func (s *System) latFor(core int) *obs.LatencyBreakdown {
	if s.latShards != nil {
		return s.latShards[core]
	}
	return s.lat
}

// Protocol reports the configured protocol.
func (s *System) Protocol() Protocol { return s.cfg.Protocol }

// Geometry reports the region geometry.
func (s *System) Geometry() mem.Geometry { return s.geom }

// home returns the tile whose L2 slice and directory own the region
// (low-order interleaving across tiles, as in tiled CMPs).
func (s *System) home(r mem.RegionID) int {
	return int(uint64(r) % uint64(s.cfg.Cores))
}

// send puts a message on the mesh and accounts its control bytes into
// the sending tile's stats shard. Data payload bytes are classified
// used/unused at block-death and writeback time by the L1s, so they are
// not accounted here. Under PDES a cross-tile message parks in the
// sender's outbox (its arrival cycle lies beyond the window edge, by
// the lookahead contract) until the coordinator injects it at the next
// barrier; same-tile and legacy sends schedule directly.
func (t *tile) send(m *Msg) {
	s := t.sys
	t.st.AddControl(m.Class(), CtrlBytes)
	if t.flight != nil {
		t.flightMsg(flight.KindMsgSend, t.eng.Now(), m)
	}
	if t.rec != nil {
		t.rec.Record(obs.Event{
			Cycle: t.eng.Now(), Kind: obs.KindMsgSend, Sub: uint8(m.Type),
			Node: int16(m.Src), Peer: int16(m.Dst),
			Region: uint64(m.Region), Txn: m.TxnID,
		})
	}
	m.sys = s
	m.phase = phaseDeliver
	at := s.mesh.Arrival(t.eng.Now(), m.Src, m.Dst, m.VNet(), m.Bytes(), t.st)
	if !s.pdes || m.Dst == t.id {
		t.eng.ScheduleRunnerAt(at, m)
	} else {
		t.outbox = append(t.outbox, outMsg{at: at, m: m})
		// Self-cap the window this tile is running: any causal
		// consequence of this send reaches this tile no sooner than
		// the arrival plus the destination-to-here lookahead (a relay
		// through a third tile is never faster — hop distances obey
		// the triangle inequality). Events before that stay safe to
		// run, so extended (beyond the round bound) windows cut
		// themselves off exactly where the conservative contract
		// requires.
		t.eng.LimitTo(at + t.wRow[m.Dst])
	}
}

// deliver hands an arriving message to its destination controller.
// Requests are retained by the directory (queued or held by the active
// transaction) and recycled when their transaction finishes; every
// other message is dead once its handler returns and goes back to the
// pool here.
func (s *System) deliver(m *Msg) {
	t := s.tiles[m.Dst]
	if t.flight != nil {
		t.flightMsg(flight.KindMsgDeliver, t.eng.Now(), m)
	}
	if t.rec != nil {
		t.rec.Record(obs.Event{
			Cycle: t.eng.Now(), Kind: obs.KindMsgDeliver, Sub: uint8(m.Type),
			Node: int16(m.Src), Peer: int16(m.Dst),
			Region: uint64(m.Region), Txn: m.TxnID,
		})
	}
	switch m.Type {
	case MsgGetS, MsgGetX, MsgUpgrade:
		s.dirs[m.Dst].recvRequest(m)
	case MsgAck, MsgAckS, MsgNack, MsgWback, MsgWbackLast, MsgUnblock:
		s.dirs[m.Dst].recvResponse(m)
		t.freeMsg(m)
	default:
		s.l1s[m.Dst].recv(m)
		t.freeMsg(m)
	}
}

// Run executes the machine to completion. It returns an error when
// the event queue drains with stalled cores (a protocol deadlock) or
// the watchdog fires.
func (s *System) Run() error {
	if s.ran {
		return fmt.Errorf("core: system already ran")
	}
	s.ran = true
	if s.pdes {
		return s.runPDES()
	}
	for _, c := range s.cpus {
		s.eng.ScheduleRunner(0, &c.stepEv)
	}
	if s.timelineInterval > 0 {
		s.timelineEv.s = s
		s.eng.ScheduleRunner(s.timelineInterval, &s.timelineEv)
	}
	drained := s.eng.Run(s.cfg.MaxEvents)
	if !drained {
		return fmt.Errorf("core: watchdog fired after %d events (livelock?)\n%s",
			s.eng.Processed(), s.diagnose())
	}
	if s.coresDone != s.cfg.Cores {
		return fmt.Errorf("core: deadlock: %d/%d cores finished, %d at barrier\n%s",
			s.coresDone, s.cfg.Cores, s.barrierArrived, s.diagnose())
	}
	s.st.ExecCycles = uint64(s.lastRetire)
	s.flushResidual()
	// Engine self-observability counters land in the stats at the very
	// end of the run (they describe the whole run) — always set, so the
	// stats JSON is byte-identical whether or not self-prof is enabled.
	s.st.EventQueueHighWater = uint64(s.eng.HighWater())
	s.st.ZeroDelayHits = s.eng.MicroHits()
	s.finishSelfProf()
	// Clean drain: return the bucket ring to the engine's storage pool
	// so the next cell in this process reuses it instead of paying the
	// fixed ring allocation again. Error paths keep the queue intact
	// for diagnose().
	s.eng.Recycle()
	return nil
}

// flushResidual classifies data still resident at the end of the run so
// every fetched word is counted exactly once as used or unused.
func (s *System) flushResidual() {
	for _, l1 := range s.l1s {
		l1.cache.Blocks(func(b *cache.Block) {
			l1.classifyDeath(b)
		})
	}
}

// ForEachCachedWord walks every word resident in any L1 — the hook the
// SWMR invariant checker uses.
func (s *System) ForEachCachedWord(fn func(core int, region mem.RegionID, w uint8, st cache.State, val uint64)) {
	for _, l1 := range s.l1s {
		core := l1.id
		l1.cache.Blocks(func(b *cache.Block) {
			for w := b.R.Start; ; w++ {
				fn(core, b.Region, w, b.State, b.Word(w))
				if w == b.R.End {
					break
				}
			}
		})
	}
}

// L2Word returns the shared L2's value for a word, and whether the
// region has been allocated at the L2 at all.
func (s *System) L2Word(region mem.RegionID, w uint8) (uint64, bool) {
	d := s.dirs[s.home(region)]
	e := d.lookup(region)
	if e == nil {
		return 0, false
	}
	return e.data[w], true
}

// DirBusy reports whether the region has an active directory
// transaction (checker support: invariants are only guaranteed at
// quiescent points).
func (s *System) DirBusy(region mem.RegionID) bool {
	e := s.dirs[s.home(region)].lookup(region)
	return e != nil && e.busy
}
