package core

// Golden message-flow tests: the transaction diagrams of the paper's
// Figures 4, 6, and 7 reproduced message for message against the
// protocol transcript.

import (
	"fmt"
	"strings"
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/predictor"
	"protozoa/internal/trace"
)

// rangePred predicts a configured range for any word it contains, and
// a single word otherwise — the directed-test way to pin request
// ranges to the paper's examples.
type rangePred struct {
	ranges []mem.Range
}

func (p rangePred) Predict(_ uint64, _ mem.RegionID, w uint8) mem.Range {
	for _, r := range p.ranges {
		if r.Contains(w) {
			return r
		}
	}
	return mem.OneWord(w)
}
func (rangePred) Train(uint64, mem.RegionID, uint8, mem.Bitmap, mem.Range) {}

// flowOf compresses a region transcript to "TYPE src->dst" strings.
func flowOf(sys *System, region mem.RegionID) []string {
	var out []string
	for _, e := range sys.MessagesForRegion(region) {
		out = append(out, fmt.Sprintf("%s %d->%d", e.Msg.Type, e.Msg.Src, e.Msg.Dst))
	}
	return out
}

func expectFlow(t *testing.T, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("flow length %d, want %d:\ngot  %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flow[%d] = %q, want %q\nfull: %v", i, got[i], want[i], got)
		}
	}
}

// TestFlowFigure4 reproduces Figure 4, write-miss handling in
// Protozoa-SW: Core-1 owns words 2-6 dirty; Core-0 issues GETX 0-3.
// The directory forwards to the owner, which writes back its whole
// block (all words, overlapping or not) and invalidates; the L2
// patches and supplies exactly the requested words.
func TestFlowFigure4(t *testing.T) {
	cfg := testConfig(ProtozoaSW, 2)
	cfg.PredictorOverride = func(int) predictor.Predictor {
		return rangePred{ranges: []mem.Range{{Start: 2, End: 6}, {Start: 0, End: 1}}}
	}
	// Region 256 homes on tile 0 (256 % 2 == 0).
	base := mem.Addr(256 * 64)
	streams := []trace.Stream{
		trace.NewSliceStream([]trace.Access{{Kind: trace.Barrier}, st(base)}),       // Core-0: GETX word 0 -> range 0-1
		trace.NewSliceStream([]trace.Access{st(base + 2*8), {Kind: trace.Barrier}}), // Core-1: GETX word 2 -> range 2-6
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableMessageLog(0)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	expectFlow(t, flowOf(sys, 256), []string{
		"GETX 1->0",     // 1: Core-1 acquires 2-6 (setup)
		"DATA_M 0->1",   //    5-word fill
		"UNBLOCK 1->0",  //
		"GETX 0->0",     // 1: requestor sends GETX to directory
		"FWD_GETX 0->1", // 2: request forwarded to Core-1
		"WBACK 1->0",    // 3: Core-1 writes back all words, overlapping or not
		"DATA_M 0->0",   // 4: L2 sets the new owner and provides DATA 0-1
		"UNBLOCK 0->0",
	})
	// The writeback carried the whole 5-word block; the fill only the
	// requested words.
	var wbWords, fillWords int
	for _, e := range sys.MessagesForRegion(256) {
		switch {
		case e.Msg.Type == MsgWback:
			wbWords = e.Msg.PayloadWords()
		case e.Msg.Type == MsgDataM && e.Msg.Dst == 0:
			fillWords = e.Msg.PayloadWords()
		}
	}
	if wbWords != 5 {
		t.Errorf("writeback words = %d, want 5 (whole block)", wbWords)
	}
	if fillWords != 2 {
		t.Errorf("fill words = %d, want 2 (requested range only)", fillWords)
	}
}

// TestFlowFigure6 reproduces Figure 6, the race between an outstanding
// GETS and a forwarded GETX in Protozoa-SW: Core-0 holds words 5-7
// dirty and issues GETS 0-3; Core-1's concurrent GETX 0-7 is activated
// first (it is local to the home tile), so the forwarded invalidation
// reaches Core-0 while its read miss is still outstanding. Core-0
// writes back 5-7 and stays in the transient state; after Core-1 is
// downgraded to sharer, the directory supplies 0-3.
func TestFlowFigure6(t *testing.T) {
	cfg := testConfig(ProtozoaSW, 2)
	cfg.PredictorOverride = func(core int) predictor.Predictor {
		if core == 0 {
			return rangePred{ranges: []mem.Range{{Start: 5, End: 7}, {Start: 0, End: 3}}}
		}
		return rangePred{ranges: []mem.Range{{Start: 0, End: 7}}}
	}
	// Region 257 homes on tile 1, making Core-1's request the first to
	// activate when both issue in the same cycle.
	base := mem.Addr(257 * 64)
	streams := []trace.Stream{
		trace.NewSliceStream([]trace.Access{st(base + 5*8), {Kind: trace.Barrier}, ld(base)}),
		trace.NewSliceStream([]trace.Access{{Kind: trace.Barrier}, st(base)}),
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableMessageLog(0)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	expectFlow(t, flowOf(sys, 257), []string{
		"GETX 0->1", // setup: Core-0 acquires 5-7
		"DATA_M 1->0",
		"UNBLOCK 0->1",
		"GETX 1->1",     // 2: Core-1's write miss for 0-7 races...
		"GETS 0->1",     // 1: ...Core-0's read miss for 0-3 (sent the same cycle)
		"FWD_GETX 1->0", //    the GETX activates first and is forwarded
		"WBACK 0->1",    // 3: dirty 5-7 written back mid-miss
		"DATA_M 1->1",   //    Core-1 owns 0-7
		"UNBLOCK 1->1",
		"FWD_GETS 1->1", // 4: the queued GETS downgrades Core-1...
		"WBACK 1->1",
		"DATA 1->0", //    ...and the directory supplies 0-3
		"UNBLOCK 0->1",
	})
}

// TestFlowFigure7 reproduces Figure 7, write-miss handling in
// Protozoa-MW: Core-1 is an overlapping dirty sharer (writes back and
// invalidates), Core-2 an overlapping clean sharer (invalidates, ACK),
// Core-3 a non-overlapping dirty sharer (ACK-S, remains owner), and
// the L2 supplies the requested range to Core-0.
func TestFlowFigure7(t *testing.T) {
	cfg := testConfig(ProtozoaMW, 4)
	cfg.PredictorOverride = func(core int) predictor.Predictor {
		switch core {
		case 0:
			return rangePred{ranges: []mem.Range{{Start: 0, End: 3}}} // the GETX range
		case 1:
			return rangePred{ranges: []mem.Range{{Start: 2, End: 6}}} // dirty sub-block
		default:
			return oneWordPred{} // Core-2 reads word 1, Core-3 writes word 7
		}
	}
	// Region 512 homes on tile 0 (512 % 4 == 0).
	base := mem.Addr(512 * 64)
	bar := trace.Access{Kind: trace.Barrier}
	streams := []trace.Stream{
		trace.NewSliceStream([]trace.Access{bar, bar, bar, st(base)}),       // Core-0: GETX 0-3
		trace.NewSliceStream([]trace.Access{st(base + 2*8), bar, bar, bar}), // Core-1: M 2-6
		trace.NewSliceStream([]trace.Access{bar, ld(base + 8), bar, bar}),   // Core-2: S 1 (overlapping reader)
		trace.NewSliceStream([]trace.Access{bar, bar, st(base + 7*8), bar}), // Core-3: M 7 (non-overlapping writer)
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableMessageLog(0)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	// The final transaction: every reply type of Figure 7 must appear.
	events := sys.MessagesForRegion(512)
	var sawFwd1, sawFwd3, sawInv2 bool
	var wback1, ack2, ackS3, dataM0 *MsgEvent
	for i := range events {
		e := &events[i]
		m := &e.Msg
		switch {
		case m.Type == MsgFwdGetX && m.Dst == 1:
			sawFwd1 = true
		case m.Type == MsgFwdGetX && m.Dst == 3:
			sawFwd3 = true
		case m.Type == MsgInv && m.Dst == 2:
			sawInv2 = true
		case m.Type == MsgWback && m.Src == 1 && sawFwd1:
			wback1 = e
		case m.Type == MsgAck && m.Src == 2:
			ack2 = e
		case m.Type == MsgAckS && m.Src == 3:
			ackS3 = e
		case m.Type == MsgDataM && m.Dst == 0:
			dataM0 = e
		}
	}
	if !sawFwd1 || !sawFwd3 || !sawInv2 {
		t.Fatalf("missing probes: fwd1=%v fwd3=%v inv2=%v\n%s", sawFwd1, sawFwd3, sawInv2, transcript(events))
	}
	if wback1 == nil || wback1.Msg.StillOwner || wback1.Msg.StillSharer {
		t.Errorf("Core-1 must write back and fully invalidate: %+v", wback1)
	}
	if ack2 == nil || ack2.Msg.StillSharer {
		t.Errorf("Core-2 must invalidate and ACK: %+v", ack2)
	}
	if ackS3 == nil || !ackS3.Msg.StillOwner || !ackS3.Msg.StillSharer {
		t.Errorf("Core-3 must ACK-S and remain an owner: %+v", ackS3)
	}
	if dataM0 == nil || dataM0.Msg.PayloadWords() != 4 {
		t.Errorf("L2 must supply exactly the requested 4 words: %+v", dataM0)
	}
}

func transcript(events []MsgEvent) string {
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintln(&b, e.String())
	}
	return b.String()
}

func TestMessageLogRingBuffer(t *testing.T) {
	sys := runSysWithLog(t, 4)
	all := sys.MessageLog()
	if len(all) > 4 {
		t.Fatalf("ring of 4 returned %d events", len(all))
	}
	// Events must be in nondecreasing cycle order after wrap.
	for i := 1; i < len(all); i++ {
		if all[i].Cycle < all[i-1].Cycle {
			t.Fatalf("log out of order at %d: %v", i, all)
		}
	}
}

func runSysWithLog(t *testing.T, capacity int) *System {
	t.Helper()
	cfg := testConfig(MESI, 2)
	streams := []trace.Stream{
		trace.NewSliceStream([]trace.Access{st(0x0), st(0x40), st(0x80)}),
		trace.NewSliceStream(nil),
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableMessageLog(capacity)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestMsgEventString(t *testing.T) {
	e := MsgEvent{Cycle: 7, Msg: Msg{Type: MsgGetX, Src: 0, Dst: 1, Region: 5, R: mem.Range{Start: 0, End: 3}}}
	s := e.String()
	for _, want := range []string{"GETX", "C0->T1", "region 5", "[0--3]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
