package core

import (
	"fmt"
	"io"
	"strings"

	"protozoa/internal/cache"
	"protozoa/internal/engine"
	"protozoa/internal/mem"
	"protozoa/internal/obs/flight"
)

// This file wires the flight recorder (internal/obs/flight) into the
// machine: per-tile rings fed by nil-checked hooks at every protocol
// step, the stall watchdog sampled on timeline ticks, and the log
// export behind protozoa-sim's -flight flag. Like the rest of the
// observability layer, everything here is opt-in and the disabled
// machine pays one nil check per potential record.

// DefaultStallCycles is the watchdog threshold when the caller passes 0:
// far beyond any healthy transaction (a worst-case miss is a few
// thousand cycles with memory and fan-out), small enough to flag a
// wedged transaction long before the event-count watchdog gives up.
const DefaultStallCycles = 50_000

// flightRecordsPerMsg sizes the flight ring when capacity is expressed
// in messages (the legacy EnableMessageLog contract): a message's life
// is bounded by send + deliver + free plus its share of miss/txn/state
// records.
const flightRecordsPerMsg = 8

// EnableFlightRecorder attaches the flight recorder, keeping the most
// recent capacity records (<= 0 selects flight.DefaultCap). Call before
// Run. Sequential machines share one ring across tiles (exact execution
// order); under PDES each tile records into its own ring and
// FlightRecords merges them deterministically, so the transcript is
// byte-identical at any Workers >= 1. Idempotent: the first call sizes
// the rings.
func (s *System) EnableFlightRecorder(capacity int) *flight.Recorder {
	if s.flight != nil {
		return s.flight
	}
	rings := 1
	if s.pdes {
		rings = len(s.tiles)
	}
	rec := flight.NewRecorder(rings, capacity)
	for i, t := range s.tiles {
		if s.pdes {
			t.flight = rec.Ring(i)
		} else {
			t.flight = rec.Ring(0)
		}
	}
	s.flight = rec
	return s.flight
}

// FlightRecorder returns the attached recorder, nil when disabled.
func (s *System) FlightRecorder() *flight.Recorder { return s.flight }

// FlightRecords returns the merged, cycle-ordered transcript (nil when
// the recorder is disabled). Under PDES ties keep tile order, so the
// result is worker-count independent.
func (s *System) FlightRecords() []flight.Record {
	if s.flight == nil {
		return nil
	}
	return s.flight.Records()
}

// FlightDropped reports records evicted by ring wrap (0 when disabled).
func (s *System) FlightDropped() uint64 {
	if s.flight == nil {
		return 0
	}
	return s.flight.Dropped()
}

// flightNames is the Sub vocabulary for rendering core-recorded logs.
func flightNames() *flight.Names {
	return &flight.Names{Msgs: append([]string(nil), msgNames[:]...)}
}

// WriteFlightLog exports the merged transcript in the .pzfl format
// protozoa-inspect reads. EnableFlightRecorder must have been called.
func (s *System) WriteFlightLog(w io.Writer) error {
	if s.flight == nil {
		return fmt.Errorf("core: flight recorder not enabled")
	}
	meta := flight.Meta{
		Protocol:    s.cfg.Protocol.String(),
		Cores:       s.cfg.Cores,
		RegionBytes: s.cfg.RegionBytes,
		Dropped:     s.flight.Dropped(),
		Msgs:        append([]string(nil), msgNames[:]...),
	}
	return flight.WriteLog(w, meta, s.flight.Records())
}

// causeCodes maps the transition-audit event vocabulary (message names
// plus the core-side causes) onto flight Sub codes.
var causeCodes = func() map[string]uint8 {
	m := make(map[string]uint8, len(msgNames)+5)
	for i, n := range msgNames {
		m[n] = uint8(i)
	}
	m["Load"] = flight.CauseLoad
	m["Store"] = flight.CauseStore
	m["GrantReissue"] = flight.CauseReissue
	m["Grant"] = uint8(MsgGrant)
	m["FwdGetS"] = uint8(MsgFwdGetS)
	return m
}()

func causeCode(event string) uint8 {
	if c, ok := causeCodes[event]; ok {
		return c
	}
	return flight.SubNone
}

// flightMsg records one message-lifecycle step. Every field is copied
// out of the message, so the record stays valid after the message is
// recycled into a pool.
func (t *tile) flightMsg(k flight.Kind, at engine.Cycle, m *Msg) {
	var flags uint8
	if m.StillSharer {
		flags |= flight.FlagStillSharer
	}
	if m.StillOwner {
		flags |= flight.FlagStillOwner
	}
	if m.Direct {
		flags |= flight.FlagDirect
	}
	if m.ForwardedData {
		flags |= flight.FlagForwarded
	}
	t.flight.Record(flight.Record{
		Cycle: at, Tile: int16(t.id), Kind: k, Sub: uint8(m.Type),
		Src: int16(m.Src), Dst: int16(m.Dst), Req: int16(m.Requester),
		Region: uint64(m.Region), Txn: m.TxnID,
		R: m.R, Valid: m.Valid, Dirty: m.Dirty, Flags: flags,
	})
}

// flightDir records one directory-transaction step at this tile's
// slice. req is the requesting core (-1 for inclusion recalls).
func (t *tile) flightDir(k flight.Kind, region mem.RegionID, txn uint64, req int, sub uint8) {
	t.flight.Record(flight.Record{
		Cycle: t.eng.Now(), Tile: int16(t.id), Kind: k, Sub: sub,
		Src: int16(t.id), Dst: -1, Req: int16(req),
		Region: uint64(region), Txn: txn,
	})
}

// flightStateCode packs the L1's current region state (strongest
// resident stable state + MSHR transient) into a flight code.
func (l *l1Ctrl) flightStateCode(region mem.RegionID) uint8 {
	strongest := cache.Invalid
	for _, b := range l.cache.BlocksInRegion(region) {
		if b.State > strongest {
			strongest = b.State
		}
	}
	tr := flight.TransNone
	if ms := l.openMSHR(region); ms != nil {
		switch {
		case ms.upgrade:
			tr = flight.TransSM
		case ms.mode.write():
			tr = flight.TransIM
		default:
			tr = flight.TransIS
		}
	}
	return flight.L1Code(uint8(strongest), tr)
}

// flightDirCode packs a directory entry's stable state (Table 2).
func (d *dirSlice) flightDirCode(e *dirEntry) uint8 {
	switch {
	case e.owners.Count() > 1:
		return flight.DirOPlus
	case e.owners.Count() == 1:
		return flight.DirO
	case !e.sharers.Empty():
		return flight.DirSS
	default:
		return flight.DirI
	}
}

// StallReport is one watchdog detection: a transaction outstanding
// longer than the threshold at a timeline tick.
type StallReport struct {
	Core      int
	Region    mem.RegionID
	Request   string // GETS / GETX / UPGRADE
	IssuedAt  engine.Cycle
	FlaggedAt engine.Cycle
}

func (r StallReport) String() string {
	return fmt.Sprintf("core %d %s region %d outstanding %d cycles (issued @%d, flagged @%d)",
		r.Core, r.Request, r.Region, r.FlaggedAt-r.IssuedAt, r.IssuedAt, r.FlaggedAt)
}

// stallKey deduplicates watchdog detections: one report per miss, not
// one per tick it stays stuck.
type stallKey struct {
	core   int
	issued engine.Cycle
}

// EnableStallWatchdog arms the stall watchdog: at every timeline tick,
// any miss outstanding longer than threshold cycles (<= 0 selects
// DefaultStallCycles) is reported once — its causal transcript (the
// region's recent flight records) plus the blocking directory entry's
// queue state stream to out (nil discards the dumps; Stalls() keeps the
// reports either way). Arms the flight recorder and timeline sampling
// if the caller has not configured them. Call before Run.
func (s *System) EnableStallWatchdog(threshold engine.Cycle, out io.Writer) {
	if threshold <= 0 {
		threshold = DefaultStallCycles
	}
	s.stallThreshold = threshold
	s.stallOut = out
	s.stallSeen = make(map[stallKey]bool)
	s.EnableFlightRecorder(0)
	if s.timelineInterval == 0 {
		s.EnableTimeline(0)
	}
}

// Stalls returns the watchdog's detections in flag order.
func (s *System) Stalls() []StallReport { return s.stalls }

// checkStalls runs at every timeline tick (both the sequential sampler
// and the PDES round-edge sampler, so detections are worker-count
// independent). now is the tick's nominal cycle; a PDES tile may have
// run slightly past it, so misses issued after the tick are skipped.
func (s *System) checkStalls(now engine.Cycle) {
	if s.stallThreshold == 0 {
		return
	}
	for _, l1 := range s.l1s {
		if !l1.msLive {
			continue
		}
		ms := &l1.ms
		if ms.issuedAt > now || now-ms.issuedAt < s.stallThreshold {
			continue
		}
		key := stallKey{core: l1.id, issued: ms.issuedAt}
		if s.stallSeen[key] {
			continue
		}
		s.stallSeen[key] = true
		kind := "GETS"
		if ms.upgrade {
			kind = "UPGRADE"
		} else if ms.mode.write() {
			kind = "GETX"
		}
		rep := StallReport{
			Core: l1.id, Region: ms.region, Request: kind,
			IssuedAt: ms.issuedAt, FlaggedAt: now,
		}
		s.stalls = append(s.stalls, rep)
		if s.stallOut != nil {
			fmt.Fprint(s.stallOut, s.stallDump(rep))
		}
	}
}

// stallDump renders one detection: the report line, the home directory
// entry blocking the region, and the region's causal transcript.
func (s *System) stallDump(rep StallReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "protozoa: stall watchdog: %s\n", rep)
	d := s.dirs[s.home(rep.Region)]
	if e := d.lookup(rep.Region); e != nil {
		fmt.Fprintf(&b, "  %s\n", dirEntryLine(d, e))
	} else {
		fmt.Fprintf(&b, "  dir %2d region %d: no entry\n", d.node, rep.Region)
	}
	recs := s.flightForRegion(rep.Region, stallTranscriptCap)
	fmt.Fprintf(&b, "  transcript (region %d, last %d records):\n", rep.Region, len(recs))
	names := flightNames()
	for _, r := range recs {
		fmt.Fprintf(&b, "    %s\n", r.Format(names))
	}
	return b.String()
}

// stallTranscriptCap / violationTranscriptCap bound the transcripts
// attached to watchdog dumps and checker violations.
const (
	stallTranscriptCap     = 32
	violationTranscriptCap = 64
)

// flightForRegion filters the merged transcript to one region's last n
// records.
func (s *System) flightForRegion(region mem.RegionID, n int) []flight.Record {
	if s.flight == nil {
		return nil
	}
	var out []flight.Record
	for _, r := range s.flight.Records() {
		if r.Region == uint64(region) {
			out = append(out, r)
		}
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// flightTail renders the merged transcript's last n records — the
// auto-dump attached to checker violations and deadlock diagnoses.
func (s *System) flightTail(n int) string {
	if s.flight == nil {
		return ""
	}
	recs := s.flight.Records()
	if len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return flight.Transcript(recs, flightNames())
}

// dirEntryLine renders one directory entry's live state (shared by the
// deadlock diagnosis and the stall watchdog's queue-state dump).
func dirEntryLine(d *dirSlice, e *dirEntry) string {
	var b strings.Builder
	status := "idle"
	if e.busy {
		status = "busy"
	}
	fmt.Fprintf(&b, "dir %2d region %d: %s sharers=%v owners=%v queue=%d",
		d.node, uint64(e.region), status, e.sharers, e.owners, len(e.queue))
	if e.txn != nil {
		fmt.Fprintf(&b, " txn=%d (%s) waiting=%d", e.txn.id, e.txn.req.Type, e.txn.waiting)
	} else if e.busy {
		fmt.Fprintf(&b, " awaiting unblock")
	}
	if e.pendingUnblock {
		fmt.Fprintf(&b, " (unblock parked)")
	}
	return b.String()
}
