package core

// Miss-classification tests: the four classes must partition the miss
// count exactly, and each class must dominate where its mechanism
// dominates.

import (
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

func classSum(sys *System) uint64 {
	s := sys.Stats()
	return s.MissesCold + s.MissesCapacity + s.MissesCoherence + s.MissesGranularity
}

func TestMissClassesPartitionMisses(t *testing.T) {
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			cfg.L1Sets = 2
			cfg.L1SetBudget = 144
			perCore := randomStreams(4, 1500, 10, 40, 77)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if got, want := classSum(sys), sys.Stats().L1Misses; got != want {
				t.Errorf("class sum %d != misses %d", got, want)
			}
		})
	}
}

func TestMissClassColdOnly(t *testing.T) {
	// Streaming through fresh regions: everything cold.
	var recs []trace.Access
	for i := 0; i < 40; i++ {
		recs = append(recs, ld(regAddr(i)))
	}
	sys := runSys(t, testConfig(MESI, 1), [][]trace.Access{recs})
	s := sys.Stats()
	if s.MissesCold != s.L1Misses || s.MissesCoherence != 0 || s.MissesCapacity != 0 {
		t.Errorf("classes = %d/%d/%d/%d, want all cold",
			s.MissesCold, s.MissesCapacity, s.MissesCoherence, s.MissesGranularity)
	}
}

func TestMissClassCapacity(t *testing.T) {
	// Thrash one set, then re-read: the re-reads are capacity misses.
	cfg := testConfig(MESI, 1)
	cfg.L1Sets = 1
	var recs []trace.Access
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 8; i++ { // 8 regions > 4 ways
			recs = append(recs, ld(regAddr(i)))
		}
	}
	sys := runSys(t, cfg, [][]trace.Access{recs})
	s := sys.Stats()
	if s.MissesCapacity == 0 {
		t.Error("no capacity misses while thrashing")
	}
	if s.MissesCoherence != 0 {
		t.Errorf("coherence misses = %d on a single core", s.MissesCoherence)
	}
	if s.MissesCold != 8 {
		t.Errorf("cold misses = %d, want 8", s.MissesCold)
	}
}

func TestMissClassCoherenceOnFalseSharing(t *testing.T) {
	// MESI on the false-sharing counter: after the two cold misses,
	// every miss is a coherence miss. Under MW (one-word fills) the
	// coherence column collapses to the warm-up upgrades.
	mesi := runSys(t, testConfig(MESI, 2), falseSharingStreams(150))
	s := mesi.Stats()
	if s.MissesCoherence < s.L1Misses*9/10-2 {
		t.Errorf("MESI coherence misses = %d of %d, want nearly all", s.MissesCoherence, s.L1Misses)
	}

	cfg := testConfig(ProtozoaMW, 2)
	cfg.PredictorOverride = oneWordOverride
	mw := runSys(t, cfg, falseSharingStreams(150))
	sm := mw.Stats()
	if sm.MissesCoherence > 2 {
		t.Errorf("MW coherence misses = %d, want <= 2 (the warm-up upgrade)", sm.MissesCoherence)
	}
}

func TestMissClassGranularityUnderfetch(t *testing.T) {
	// One-word fills over an 8-word streaming region: 1 cold miss plus
	// 7 granularity misses per region.
	cfg := testConfig(ProtozoaSW, 1)
	cfg.PredictorOverride = oneWordOverride
	var recs []trace.Access
	for r := 0; r < 4; r++ {
		for w := 0; w < 8; w++ {
			recs = append(recs, ld(regAddr(r)+mem.Addr(w*8)))
		}
	}
	sys := runSys(t, cfg, [][]trace.Access{recs})
	s := sys.Stats()
	if s.MissesCold != 4 || s.MissesGranularity != 28 {
		t.Errorf("cold/granularity = %d/%d, want 4/28", s.MissesCold, s.MissesGranularity)
	}
}
