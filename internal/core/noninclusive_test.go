package core

// Tests for the Section 6 "Non-Inclusive Shared Cache" design issue:
// the L2 drops exclusively granted words and must later assemble
// responses from an owner writeback plus re-fetched memory words.

import (
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/predictor"
	"protozoa/internal/trace"
)

func nonInclusiveCfg(p Protocol, n int) Config {
	cfg := testConfig(p, n)
	cfg.NonInclusiveL2 = true
	return cfg
}

// TestNonInclusiveAssemblyFlow is the paper's Section 6 fallback
// scenario: a block granted Exclusive is silently dropped, so neither
// the stale owner (NACK) nor the non-inclusive L2 (copy dropped at
// grant time) has the words — the directory must re-fetch them from
// memory to complete the response.
func TestNonInclusiveAssemblyFlow(t *testing.T) {
	cfg := nonInclusiveCfg(MESI, 2)
	cfg.L1Sets = 1
	var c0 []trace.Access
	c0 = append(c0, ld(0x0)) // DataE: the L2 drops its copy of region 0
	for i := 1; i <= 8; i++ {
		c0 = append(c0, ld(regAddr(2*i))) // silently evict region 0
	}
	c0 = append(c0, trace.Access{Kind: trace.Barrier})
	sys := runSys(t, cfg, [][]trace.Access{
		c0,
		{{Kind: trace.Barrier}, ld(0x0)},
	})
	st := sys.Stats()
	if st.MemFetches == 0 {
		t.Error("non-inclusive L2 never re-fetched dropped words")
	}
	if st.ControlBytes[4] == 0 { // ClassNACK: the stale owner
		t.Error("expected the stale owner's NACK")
	}
}

// TestNonInclusivePartialOwnerCoverage: the owner was granted only a
// sub-range; after it is revoked, a request spanning more than the
// owner's words assembles from its writeback plus L2-valid words.
func TestNonInclusivePartialOwnerCoverage(t *testing.T) {
	cfg := nonInclusiveCfg(ProtozoaSW, 2)
	cfg.PredictorOverride = func(int) predictor.Predictor {
		return rangePred{ranges: []mem.Range{{Start: 2, End: 6}, {Start: 0, End: 3}}}
	}
	base := mem.Addr(256 * 64)
	streams := []trace.Stream{
		trace.NewSliceStream([]trace.Access{{Kind: trace.Barrier}, ld(base)}), // GETS 0-3
		trace.NewSliceStream([]trace.Access{st(base + 2*8), {Kind: trace.Barrier}}),
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	rec := &loadRecorder{}
	sys.SetObserver(rec)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	// Words 0-1 stayed L2-valid (never granted), 2-3 come back with the
	// owner's writeback: no memory fetch needed, values correct.
	if sys.Stats().MemFetches != 0 {
		t.Errorf("mem fetches = %d, want 0 (writeback covers the gap)", sys.Stats().MemFetches)
	}
	if len(rec.loads) != 1 || rec.loads[0].val != 0 {
		t.Errorf("load = %+v, want untouched word 0 (zero)", rec.loads)
	}
}

func TestNonInclusiveValueIntegrity(t *testing.T) {
	// A written value must survive the L2 dropping its copy: write,
	// evict the L1 block (writeback restores L2 validity), read back.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := nonInclusiveCfg(p, 1)
			cfg.L1Sets = 1
			var recs []trace.Access
			recs = append(recs, st(0x0))
			for i := 1; i <= 8; i++ {
				recs = append(recs, ld(regAddr(i)))
			}
			recs = append(recs, ld(0x0))
			streams := []trace.Stream{trace.NewSliceStream(recs)}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(t, sys)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			_ = chk
		})
	}
}

func TestNonInclusiveStress(t *testing.T) {
	// Full random stress with golden-value checking over the
	// non-inclusive L2, for every protocol, plus the finite-L2 combo.
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := nonInclusiveCfg(p, 4)
			cfg.L2RegionsPerTile = 4
			cfg.MaxEvents = 8_000_000
			perCore := randomStreams(4, 1200, 12, 40, 808)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(t, sys)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if chk.Checks == 0 {
				t.Error("checker never ran")
			}
		})
	}
}
