package core

import (
	"testing"

	"protozoa/internal/trace"
)

func TestTimelineSampling(t *testing.T) {
	cfg := testConfig(MESI, 2)
	perCore := randomStreams(2, 500, 8, 40, 11)
	streams := []trace.Stream{
		trace.NewSliceStream(perCore[0]),
		trace.NewSliceStream(perCore[1]),
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTimeline(500)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	tl := sys.Timeline()
	if len(tl) < 3 {
		t.Fatalf("timeline has %d samples, want several", len(tl))
	}
	for i := 1; i < len(tl); i++ {
		if tl[i].Cycle <= tl[i-1].Cycle {
			t.Fatalf("samples out of order at %d", i)
		}
		if tl[i].Accesses < tl[i-1].Accesses || tl[i].Misses < tl[i-1].Misses ||
			tl[i].Traffic < tl[i-1].Traffic || tl[i].FlitHops < tl[i-1].FlitHops {
			t.Fatalf("cumulative counters decreased at %d", i)
		}
	}
	last := tl[len(tl)-1]
	if last.Accesses != sys.Stats().Accesses && last.Accesses > sys.Stats().Accesses {
		t.Errorf("last sample accesses %d beyond final %d", last.Accesses, sys.Stats().Accesses)
	}
}

func TestTimelineWarmupVisible(t *testing.T) {
	// Re-reading a small working set: the first window must carry most
	// of the misses (cold fills), later windows almost none.
	cfg := testConfig(MESI, 1)
	var recs []trace.Access
	for pass := 0; pass < 30; pass++ {
		for r := 0; r < 16; r++ {
			recs = append(recs, ld(regAddr(r)))
		}
	}
	sys, err := NewSystem(cfg, []trace.Stream{trace.NewSliceStream(recs)})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTimeline(400)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	tl := sys.Timeline()
	if len(tl) < 2 {
		t.Skip("run too short for windows")
	}
	// All 16 cold misses happen in the first pass; by the time a third
	// of the accesses have retired, the miss counter must be done.
	total := sys.Stats().Accesses
	for _, sm := range tl {
		if sm.Accesses >= total/3 && sm.Misses != sys.Stats().L1Misses {
			t.Errorf("at %d accesses: %d misses, want all %d (warmup should be over)",
				sm.Accesses, sm.Misses, sys.Stats().L1Misses)
			break
		}
	}
}

func TestTimelineDisabledByDefault(t *testing.T) {
	sys := runSys(t, testConfig(MESI, 1), [][]trace.Access{{ld(0x0)}})
	if len(sys.Timeline()) != 0 {
		t.Error("timeline collected without EnableTimeline")
	}
}
