package core

import (
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/noc"
	"protozoa/internal/predictor"
	"protozoa/internal/trace"
)

// --- test scaffolding ---------------------------------------------------

// testConfig builds a small machine: n cores on a minimal mesh, the
// default Table 4 latencies, and a watchdog.
func testConfig(p Protocol, n int) Config {
	cfg := DefaultConfig(p)
	cfg.Cores = n
	switch n {
	case 1:
		cfg.Noc = noc.Config{DimX: 1, DimY: 1, FlitBytes: 16, HopLatency: 4, RouterLat: 2, SerialLat: 2, LocalLat: 1}
	case 2:
		cfg.Noc = noc.Config{DimX: 2, DimY: 1, FlitBytes: 16, HopLatency: 4, RouterLat: 2, SerialLat: 2, LocalLat: 1}
	case 4:
		cfg.Noc = noc.Config{DimX: 2, DimY: 2, FlitBytes: 16, HopLatency: 4, RouterLat: 2, SerialLat: 2, LocalLat: 1}
	case 16:
		// default 4x4
	default:
		panic("testConfig: unsupported core count")
	}
	cfg.MaxEvents = 5_000_000
	return cfg
}

// oneWordPred always fetches exactly the missing word: the limiting
// fine-granularity case, used to exercise adaptive coherence paths
// deterministically.
type oneWordPred struct{}

func (oneWordPred) Predict(_ uint64, _ mem.RegionID, w uint8) mem.Range      { return mem.OneWord(w) }
func (oneWordPred) Train(uint64, mem.RegionID, uint8, mem.Bitmap, mem.Range) {}

func oneWordOverride(int) predictor.Predictor { return oneWordPred{} }

// ld and st build trace records; addresses are word-aligned bytes.
func ld(addr mem.Addr) trace.Access { return trace.Access{Kind: trace.Load, Addr: addr, PC: 0x400} }
func st(addr mem.Addr) trace.Access { return trace.Access{Kind: trace.Store, Addr: addr, PC: 0x500} }

func ldPC(addr mem.Addr, pc uint64) trace.Access {
	return trace.Access{Kind: trace.Load, Addr: addr, PC: pc}
}

func runSys(t *testing.T, cfg Config, perCore [][]trace.Access) *System {
	t.Helper()
	streams := make([]trace.Stream, cfg.Cores)
	for i := range streams {
		var recs []trace.Access
		if i < len(perCore) {
			recs = perCore[i]
		}
		streams[i] = trace.NewSliceStream(recs)
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	return sys
}

// loadRecorder captures every completed load for value checks.
type loadRecorder struct {
	loads []loadEvent
}

type loadEvent struct {
	core int
	addr mem.Addr
	val  uint64
}

func (r *loadRecorder) OnStore(int, mem.Addr, uint64) {}
func (r *loadRecorder) OnTxnEnd(mem.RegionID)         {}
func (r *loadRecorder) OnLoad(core int, a mem.Addr, v uint64) {
	r.loads = append(r.loads, loadEvent{core, a, v})
}

// --- basic single-core behaviour ----------------------------------------

func TestSingleCoreColdMissThenHit(t *testing.T) {
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			sys := runSys(t, testConfig(p, 1), [][]trace.Access{{
				ld(0x1000), ld(0x1008), // same region; cold predictor fetches full region
			}})
			st := sys.Stats()
			if st.L1Misses != 1 || st.L1Hits != 1 {
				t.Errorf("misses/hits = %d/%d, want 1/1", st.L1Misses, st.L1Hits)
			}
			if st.Accesses != 2 || st.Loads != 2 {
				t.Errorf("accesses/loads = %d/%d, want 2/2", st.Accesses, st.Loads)
			}
		})
	}
}

func TestSingleCoreSilentEtoM(t *testing.T) {
	// Load then store the same word: the load fills Exclusive (no other
	// sharers) and the store upgrades silently with no second miss.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			sys := runSys(t, testConfig(p, 1), [][]trace.Access{{
				ld(0x2000), st(0x2000),
			}})
			if m := sys.Stats().L1Misses; m != 1 {
				t.Errorf("misses = %d, want 1 (silent E->M)", m)
			}
			if u := sys.Stats().UpgradeMisses; u != 0 {
				t.Errorf("upgrade misses = %d, want 0", u)
			}
		})
	}
}

func TestSingleCoreStoreThenLoadValue(t *testing.T) {
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 1)
			streams := []trace.Stream{trace.NewSliceStream([]trace.Access{
				st(0x3000), ld(0x3000),
			})}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			rec := &loadRecorder{}
			sys.SetObserver(rec)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if len(rec.loads) != 1 {
				t.Fatalf("recorded %d loads, want 1", len(rec.loads))
			}
			if rec.loads[0].val == 0 {
				t.Error("load did not observe the store's value")
			}
		})
	}
}

func TestUntouchedWordsCountedUnused(t *testing.T) {
	// MESI fetches the full 64-byte region but the core touches one
	// word: 8 used bytes, 56 unused.
	sys := runSys(t, testConfig(MESI, 1), [][]trace.Access{{ld(0x4000)}})
	st := sys.Stats()
	if st.UsedDataBytes != 8 || st.UnusedDataBytes != 56 {
		t.Errorf("used/unused = %d/%d, want 8/56", st.UsedDataBytes, st.UnusedDataBytes)
	}
}

func TestDataAccountingBalances(t *testing.T) {
	// Every data word that crossed the network must be classified
	// exactly once: used+unused == 8*(wordsIn + wordsOut).
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			var accs [][]trace.Access
			for c := 0; c < 4; c++ {
				var recs []trace.Access
				for i := 0; i < 50; i++ {
					a := mem.Addr(0x1000 + (i*56+c*8)%1024)
					if i%3 == 0 {
						recs = append(recs, st(a))
					} else {
						recs = append(recs, ld(a))
					}
				}
				accs = append(accs, recs)
			}
			sys := runSys(t, testConfig(p, 4), accs)
			s := sys.Stats()
			want := 8 * (s.DataWordsIn + s.DataWordsOut)
			if got := s.DataTotal(); got != want {
				t.Errorf("used+unused = %d, want %d (in=%d out=%d)", got, want, s.DataWordsIn, s.DataWordsOut)
			}
		})
	}
}

// --- two-core sharing behaviour ------------------------------------------

func TestSharedReadThenUpgrade(t *testing.T) {
	// Both cores read a word; core 0 then writes it: an UPGRADE miss
	// that invalidates core 1.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			sys := runSys(t, testConfig(p, 2), [][]trace.Access{
				{ld(0x1000), {Kind: trace.Barrier}, {Kind: trace.Barrier}, st(0x1000)},
				{ld(0x1000), {Kind: trace.Barrier}, {Kind: trace.Barrier}},
			})
			s := sys.Stats()
			if s.UpgradeMisses != 1 {
				t.Errorf("upgrade misses = %d, want 1", s.UpgradeMisses)
			}
			if s.Invalidations < 1 {
				t.Errorf("invalidations = %d, want >= 1", s.Invalidations)
			}
		})
	}
}

func TestWriteMissForwardsToOwner(t *testing.T) {
	// Figure 4: core 1 dirties the region; core 0 then writes to it.
	// The directory forwards to the owner, which writes back.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			sys := runSys(t, testConfig(p, 2), [][]trace.Access{
				{{Kind: trace.Barrier}, st(0x1000)},
				{st(0x1008), {Kind: trace.Barrier}},
			})
			s := sys.Stats()
			if s.Writebacks < 1 {
				t.Errorf("writebacks = %d, want >= 1 (owner supplies dirty data)", s.Writebacks)
			}
			if s.L1Misses != 2 {
				t.Errorf("misses = %d, want 2", s.L1Misses)
			}
		})
	}
}

func TestReaderSeesRemoteWrite(t *testing.T) {
	// Core 1 writes, barrier, core 0 reads: the read must observe the
	// written token (dirty data forwarded through the L2).
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 2)
			streams := []trace.Stream{
				trace.NewSliceStream([]trace.Access{{Kind: trace.Barrier}, ld(0x1000)}),
				trace.NewSliceStream([]trace.Access{st(0x1000), {Kind: trace.Barrier}}),
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			rec := &loadRecorder{}
			sys.SetObserver(rec)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if len(rec.loads) != 1 {
				t.Fatalf("loads = %d, want 1", len(rec.loads))
			}
			// Core 1's first store token is (1+1)<<40 | 1.
			want := uint64(2)<<40 | 1
			if rec.loads[0].val != want {
				t.Errorf("load value = %#x, want %#x", rec.loads[0].val, want)
			}
		})
	}
}

// --- the Figure 1 false-sharing example ----------------------------------

// falseSharingStreams builds the OpenMP counter example: each core
// increments its own word of one shared region, iters times.
func falseSharingStreams(iters int) [][]trace.Access {
	var out [][]trace.Access
	for c := 0; c < 2; c++ {
		var recs []trace.Access
		addr := mem.Addr(0x8000 + c*8)
		for i := 0; i < iters; i++ {
			recs = append(recs, trace.Access{Kind: trace.Load, Addr: addr, PC: 0x400})
			recs = append(recs, trace.Access{Kind: trace.Store, Addr: addr, PC: 0x500})
		}
		out = append(out, recs)
	}
	return out
}

func TestMWEliminatesFalseSharing(t *testing.T) {
	// With a one-word predictor (the trained steady state), Protozoa-MW
	// lets both writers cache their disjoint words: exactly one miss
	// per core and zero invalidations after warm-up.
	cfg := testConfig(ProtozoaMW, 2)
	cfg.PredictorOverride = oneWordOverride
	sys := runSys(t, cfg, falseSharingStreams(200))
	s := sys.Stats()
	// Three cold misses total: core 0 loads (E) and silently upgrades;
	// core 1 loads (S) and needs one UPGRADE. After that, zero misses
	// and zero invalidations across 200 iterations.
	if s.L1Misses != 3 {
		t.Errorf("MW misses = %d, want 3 (cold only)", s.L1Misses)
	}
	if s.Invalidations != 0 {
		t.Errorf("MW invalidations = %d, want 0", s.Invalidations)
	}
}

func TestMESIPingPongsOnFalseSharing(t *testing.T) {
	// Misses alternate at miss-latency granularity (each stalled core
	// lets the other run hits), so the ping-pong count is dozens, not
	// one per iteration — but far above the 3 cold misses MW needs.
	sys := runSys(t, testConfig(MESI, 2), falseSharingStreams(200))
	if m := sys.Stats().L1Misses; m < 40 {
		t.Errorf("MESI misses = %d, want ping-pong (>= 40)", m)
	}
}

func TestSWStillPingPongsButMovesLessData(t *testing.T) {
	// Protozoa-SW keeps region-granularity coherence: the writers still
	// invalidate each other, but each miss moves one word, not 64 bytes.
	cfgSW := testConfig(ProtozoaSW, 2)
	cfgSW.PredictorOverride = oneWordOverride
	sysSW := runSys(t, cfgSW, falseSharingStreams(200))
	sysMESI := runSys(t, testConfig(MESI, 2), falseSharingStreams(200))

	if m := sysSW.Stats().L1Misses; m < 40 {
		t.Errorf("SW misses = %d, want ping-pong (>= 40)", m)
	}
	swData := sysSW.Stats().DataTotal()
	mesiData := sysMESI.Stats().DataTotal()
	if swData*3 > mesiData {
		t.Errorf("SW data %d not well below MESI data %d", swData, mesiData)
	}
}

func TestSWMRAllowsReadersWithOneWriter(t *testing.T) {
	// Core 0 writes word 0; core 1 only reads word 1. Under SW+MR the
	// reader's non-overlapping block survives the writer's misses.
	mk := func() [][]trace.Access {
		var w, r []trace.Access
		for i := 0; i < 200; i++ {
			w = append(w, st(0x8000))
			r = append(r, ld(0x8008))
		}
		return [][]trace.Access{w, r}
	}
	cfg := testConfig(ProtozoaSWMR, 2)
	cfg.PredictorOverride = oneWordOverride
	sys := runSys(t, cfg, mk())
	s := sys.Stats()
	if s.L1Misses > 4 {
		t.Errorf("SW+MR misses = %d, want <= 4 (reader coexists with writer)", s.L1Misses)
	}

	// Protozoa-SW, by contrast, ping-pongs reader and writer.
	cfgSW := testConfig(ProtozoaSW, 2)
	cfgSW.PredictorOverride = oneWordOverride
	sysSW := runSys(t, cfgSW, mk())
	if m := sysSW.Stats().L1Misses; m < 20 {
		t.Errorf("SW misses = %d, want read-write ping-pong (>= 20)", m)
	}
}

func TestSWMRRevokesConcurrentWriters(t *testing.T) {
	// Two disjoint writers: MW lets both keep writing; SW+MR allows only
	// one writer at a time, so it keeps missing.
	cfg := testConfig(ProtozoaSWMR, 2)
	cfg.PredictorOverride = oneWordOverride
	sys := runSys(t, cfg, falseSharingStreams(200))
	if m := sys.Stats().L1Misses; m < 20 {
		t.Errorf("SW+MR misses = %d, want single-writer ping-pong (>= 20)", m)
	}
}

// --- Section 3.3 add-ons --------------------------------------------------

func TestSecondaryGetXFromOwner(t *testing.T) {
	// An owner holding words 0 issues another write miss for word 4 of
	// the same region. The directory must answer directly instead of
	// forwarding the request back to the owner (Figure 5, top).
	for _, p := range []Protocol{ProtozoaSW, ProtozoaSWMR, ProtozoaMW} {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 2)
			cfg.PredictorOverride = oneWordOverride
			sys := runSys(t, cfg, [][]trace.Access{
				{st(0x9000), st(0x9020)},
				nil,
			})
			s := sys.Stats()
			if s.L1Misses != 2 {
				t.Errorf("misses = %d, want 2", s.L1Misses)
			}
			if s.ControlBytes[1] != 0 { // ClassFWD: nothing should be forwarded
				t.Errorf("forward bytes = %d, want 0 (no forward to self)", s.ControlBytes[1])
			}
		})
	}
}

func TestMultipleBlocksFromRegionCoexistInL1(t *testing.T) {
	// Protozoa keeps several distinct sub-blocks of a region in the L1
	// at once (Figure 5): two one-word writes, then hits on both.
	cfg := testConfig(ProtozoaSW, 1)
	cfg.PredictorOverride = oneWordOverride
	sys := runSys(t, cfg, [][]trace.Access{
		{st(0x9000), st(0x9020), ld(0x9000), ld(0x9020)},
	})
	s := sys.Stats()
	if s.L1Misses != 2 || s.L1Hits != 2 {
		t.Errorf("misses/hits = %d/%d, want 2/2", s.L1Misses, s.L1Hits)
	}
}

func TestNackFromStaleSharer(t *testing.T) {
	// Core 0 reads region A, then silently evicts it by reading many
	// conflicting regions (clean drop). When core 1 writes A the
	// directory still probes core 0, which NACKs.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 2)
			cfg.L1Sets = 1
			cfg.L1SetBudget = 288
			var c0 []trace.Access
			c0 = append(c0, ld(0x0))
			for i := 1; i <= 8; i++ {
				c0 = append(c0, ld(mem.Addr(i*64))) // evict region 0
			}
			c0 = append(c0, trace.Access{Kind: trace.Barrier})
			sys := runSys(t, cfg, [][]trace.Access{
				c0,
				{{Kind: trace.Barrier}, st(0x0)},
			})
			s := sys.Stats()
			if s.ControlBytes[4] == 0 { // ClassNACK
				t.Error("expected a NACK from the stale sharer")
			}
		})
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// A dirty block evicted by capacity pressure must write back, and a
	// later read must observe the value from the L2.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 1)
			cfg.L1Sets = 1
			var recs []trace.Access
			recs = append(recs, st(0x0))
			for i := 1; i <= 8; i++ {
				recs = append(recs, ld(mem.Addr(i*64)))
			}
			recs = append(recs, ld(0x0))
			streams := []trace.Stream{trace.NewSliceStream(recs)}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			rec := &loadRecorder{}
			sys.SetObserver(rec)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if sys.Stats().Writebacks < 1 {
				t.Error("no writeback on dirty eviction")
			}
			last := rec.loads[len(rec.loads)-1]
			want := uint64(1)<<40 | 1
			if last.addr == 0 && last.val != want {
				t.Errorf("reloaded value = %#x, want %#x", last.val, want)
			}
		})
	}
}

func TestMESIMatchesSWWithFixedPredictor(t *testing.T) {
	// Correctness invariant (i) from Section 3.6: with a fixed
	// full-region prediction, Protozoa transitions exactly like MESI.
	mk := func() [][]trace.Access {
		var a, b []trace.Access
		for i := 0; i < 120; i++ {
			addr := mem.Addr(0x1000 + (i%6)*64 + (i%8)*8)
			if i%4 == 0 {
				a = append(a, st(addr))
				b = append(b, ld(addr+512))
			} else {
				a = append(a, ld(addr))
				b = append(b, st(addr+512))
			}
		}
		return [][]trace.Access{a, b}
	}
	mesi := runSys(t, testConfig(MESI, 2), mk())

	cfgSW := testConfig(ProtozoaSW, 2)
	cfgSW.SpatialPredictor = false
	sw := runSys(t, cfgSW, mk())

	sm, ss := mesi.Stats(), sw.Stats()
	if sm.L1Misses != ss.L1Misses || sm.L1Hits != ss.L1Hits {
		t.Errorf("MESI misses/hits %d/%d != SW-fixed %d/%d", sm.L1Misses, sm.L1Hits, ss.L1Misses, ss.L1Hits)
	}
	if sm.TrafficTotal() != ss.TrafficTotal() {
		t.Errorf("MESI traffic %d != SW-fixed traffic %d", sm.TrafficTotal(), ss.TrafficTotal())
	}
	if sm.ExecCycles != ss.ExecCycles {
		t.Errorf("MESI cycles %d != SW-fixed cycles %d", sm.ExecCycles, ss.ExecCycles)
	}
}

// --- configuration validation ---------------------------------------------

func TestNewSystemValidation(t *testing.T) {
	mk := func(n int) []trace.Stream {
		s := make([]trace.Stream, n)
		for i := range s {
			s[i] = trace.NewSliceStream(nil)
		}
		return s
	}
	cfg := testConfig(MESI, 2)
	if _, err := NewSystem(cfg, mk(3)); err == nil {
		t.Error("stream/core mismatch accepted")
	}
	bad := cfg
	bad.Cores = 3 // mesh is 2x1
	if _, err := NewSystem(bad, mk(3)); err == nil {
		t.Error("mesh/core mismatch accepted")
	}
	bad = cfg
	bad.RegionBytes = 48
	if _, err := NewSystem(bad, mk(2)); err == nil {
		t.Error("bad region size accepted")
	}
	bad = cfg
	bad.Cores = 64
	if _, err := NewSystem(bad, mk(64)); err == nil {
		t.Error("64 cores accepted (NodeSet holds 32)")
	}
}

func TestRunTwiceFails(t *testing.T) {
	cfg := testConfig(MESI, 1)
	sys, err := NewSystem(cfg, []trace.Stream{trace.NewSliceStream(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err == nil {
		t.Error("second Run succeeded")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Without the barrier core 0's store could race ahead; with it the
	// load must observe the store.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			streams := []trace.Stream{
				trace.NewSliceStream([]trace.Access{st(0x7000), {Kind: trace.Barrier}}),
				trace.NewSliceStream([]trace.Access{{Kind: trace.Barrier}, ld(0x7000)}),
				trace.NewSliceStream([]trace.Access{{Kind: trace.Barrier}}),
				trace.NewSliceStream([]trace.Access{{Kind: trace.Barrier}}),
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			rec := &loadRecorder{}
			sys.SetObserver(rec)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			want := uint64(1)<<40 | 1
			if len(rec.loads) != 1 || rec.loads[0].val != want {
				t.Errorf("loads = %+v, want one load of %#x", rec.loads, want)
			}
		})
	}
}

// --- block size distribution ----------------------------------------------

func TestBlockSizeHistogramReflectsPredictor(t *testing.T) {
	cfg := testConfig(ProtozoaMW, 1)
	cfg.PredictorOverride = oneWordOverride
	sys := runSys(t, cfg, [][]trace.Access{{st(0x1000), st(0x2000), st(0x3000)}})
	h := sys.Stats().BlockSizeHist
	if h[0] != 3 {
		t.Errorf("1-word fills = %d, want 3", h[0])
	}
	mesi := runSys(t, testConfig(MESI, 1), [][]trace.Access{{st(0x1000), st(0x2000)}})
	if mesi.Stats().BlockSizeHist[7] != 2 {
		t.Errorf("MESI 8-word fills = %d, want 2", mesi.Stats().BlockSizeHist[7])
	}
}

func TestSpatialPredictorShrinksTraffic(t *testing.T) {
	// A sparse strided workload (one word per region) under the real
	// spatial predictor: after warm-up, fills shrink and unused data
	// drops well below MESI's.
	mk := func() [][]trace.Access {
		var recs []trace.Access
		for i := 0; i < 400; i++ {
			recs = append(recs, ldPC(mem.Addr(0x10000+i*64), 0x777))
		}
		return [][]trace.Access{recs}
	}
	cfg := testConfig(ProtozoaSW, 1)
	cfg.L1Sets = 8 // force evictions so the predictor trains
	sw := runSys(t, cfg, mk())
	cfgM := testConfig(MESI, 1)
	cfgM.L1Sets = 8
	mesi := runSys(t, cfgM, mk())
	if swU, mU := sw.Stats().UnusedDataBytes, mesi.Stats().UnusedDataBytes; swU*2 > mU {
		t.Errorf("SW unused %d not well below MESI unused %d", swU, mU)
	}
}
