package core

import (
	"fmt"
	"io"
	"time"

	"protozoa/internal/obs"
	"protozoa/internal/obs/attrib"
	"protozoa/internal/obs/selfprof"
)

// This file wires the internal/obs observability layer into the
// machine. Nothing here runs unless the corresponding Enable* method
// was called before Run; the hot-path emit sites in system.go, l1.go,
// dir.go and the mesh all guard on a single nil check.

// EnableEventTrace attaches a ring-buffer event recorder holding the
// most recent capacity events (capacity <= 0 selects the default 1 Mi).
// Call before Run. The collected events export as a Perfetto-loadable
// Chrome trace via WriteChromeTrace.
// Under PDES the returned recorder is the merge target: each tile
// records into its own shard (an equal split of the capacity) and the
// shards are folded into the target, cycle-ordered, when Run completes.
func (s *System) EnableEventTrace(capacity int) *obs.Recorder {
	if capacity <= 0 {
		capacity = obs.DefaultRecorderCap
	}
	s.rec = obs.NewRecorder(capacity)
	s.mesh.SetRecorder(s.rec)
	for _, t := range s.tiles {
		if s.pdes {
			per := capacity / len(s.tiles)
			if per < 1 {
				per = 1
			}
			t.rec = obs.NewRecorder(per)
		} else {
			t.rec = s.rec
		}
	}
	return s.rec
}

// Recorder returns the attached event recorder, nil when tracing is
// disabled.
func (s *System) Recorder() *obs.Recorder { return s.rec }

// EnableLatencyBreakdown attaches per-transaction phase timing: every
// miss's life is stamped at issue, directory accept, activation, L2
// access, last probe ack, and completion. Call before Run.
// Under PDES the returned breakdown is the merge target: stamps go to
// per-core shards (a core's stamps form a causal chain that never runs
// concurrently with itself) merged into the target when Run completes.
func (s *System) EnableLatencyBreakdown() *obs.LatencyBreakdown {
	s.lat = obs.NewLatencyBreakdown(s.cfg.Cores)
	if s.pdes {
		s.latShards = make([]*obs.LatencyBreakdown, s.cfg.Cores)
		for i := range s.latShards {
			s.latShards[i] = obs.NewLatencyBreakdown(s.cfg.Cores)
		}
	}
	return s.lat
}

// LatencyBreakdown returns the attached breakdown, nil when disabled.
func (s *System) LatencyBreakdown() *obs.LatencyBreakdown { return s.lat }

// EnableAttribution attaches the coherence-traffic attribution
// tracker: per-region reader/writer word footprints, fetched-vs-used
// word accounting, sharing-pattern classification, and
// invalidation/upgrade attribution to offending regions and cores.
// Call before Run.
// Under PDES the returned tracker is the merge target for the per-tile
// trackers folded in when Run completes.
func (s *System) EnableAttribution() *attrib.Tracker {
	if s.attrib == nil {
		s.attrib = attrib.New(s.cfg.Cores)
		for _, t := range s.tiles {
			if s.pdes {
				t.attrib = attrib.New(s.cfg.Cores)
			} else {
				t.attrib = s.attrib
			}
		}
	}
	return s.attrib
}

// Attribution returns the attached tracker, nil when disabled.
func (s *System) Attribution() *attrib.Tracker { return s.attrib }

// EnableSelfProf attaches the simulator self-profiling layer
// (internal/obs/selfprof): PDES round/window telemetry, per-tile
// busy/idle accounting, wall-clock round spans, barrier-wait timing,
// and engine queue introspection. Call before Run; read the returned
// profile only after Run. Results are unaffected — the layer observes
// the simulator, never the simulated machine, so stats, traces, and
// CSV output are byte-identical with it on or off.
// In sequential mode (Workers == 0) the round telemetry is empty and
// the profile carries the shared engine's queue counters only.
func (s *System) EnableSelfProf() *selfprof.Profile {
	if s.selfProf != nil {
		return s.selfProf
	}
	if s.pdes {
		workers := s.cfg.Workers
		if workers > len(s.tiles) {
			workers = len(s.tiles)
		}
		p := selfprof.New(len(s.tiles), workers, 0)
		p.Mode = "pdes"
		p.LookaheadW = uint64(s.mesh.Lookahead())
		for i, t := range s.tiles {
			t.prof = &p.Tiles[i]
			t.eng.SetProf(&p.Tiles[i].Queue)
		}
		s.selfProf = p
	} else {
		p := selfprof.New(1, 0, 0)
		p.Mode = "sequential"
		s.eng.SetProf(&p.Tiles[0].Queue)
		s.selfProf = p
	}
	return s.selfProf
}

// SelfProf returns the attached self-profile, nil when disabled.
func (s *System) SelfProf() *selfprof.Profile { return s.selfProf }

// finishSelfProf stamps the end-of-run fields readers expect: per-tile
// zero-delay hit counts (kept in the engine, not the shard), the
// machine-wide event total, and total wall-clock. Called from both
// run modes after the final merge; no-op when self-prof is disabled.
func (s *System) finishSelfProf() {
	p := s.selfProf
	if p == nil {
		return
	}
	if s.pdes {
		for i, t := range s.tiles {
			p.Tiles[i].MicroHits = t.eng.MicroHits()
		}
	} else {
		p.Tiles[0].MicroHits = s.eng.MicroHits()
		p.Tiles[0].Events = s.eng.Processed()
	}
	p.TotalEvents = s.EventsProcessed()
	p.TotalNs = int64(time.Since(p.Start))
}

// SetSampleHook installs a callback invoked after every timeline
// tick's metrics sample — the live-metrics publish point. Timeline
// sampling is armed at its default interval if not yet configured.
// Call before Run; pass nil to remove.
func (s *System) SetSampleHook(fn func(cycle uint64)) {
	s.onSample = fn
	if fn != nil && s.timelineInterval == 0 {
		s.EnableTimeline(0)
	}
}

// EnableMetrics attaches the metrics registry and registers the
// machine's standard gauges. The registry is sampled on the timeline
// tick, so timeline sampling is switched on (at its default interval)
// if the caller has not configured it. Call before Run.
func (s *System) EnableMetrics() *obs.Registry {
	if s.metrics != nil {
		return s.metrics
	}
	r := &obs.Registry{}
	r.Register("event_queue_depth", "events pending in the engine queue",
		func() float64 { return float64(s.queuePending()) })
	r.Register("event_queue_high_water", "deepest the engine queue has been",
		func() float64 { return float64(s.queueHighWater()) })
	r.Register("event_queue_zero_delay_hits", "events that rode the zero-delay fast path",
		func() float64 { return float64(s.queueZeroDelayHits()) })
	r.Register("msg_pool_hit_rate", "fraction of messages served from the free list",
		func() float64 {
			hits, allocs := s.poolCounts()
			total := hits + allocs
			if total == 0 {
				return 0
			}
			return float64(hits) / float64(total)
		})
	r.Register("dir_busy_txns", "regions with an active directory transaction",
		func() float64 {
			busy := 0
			for _, d := range s.dirs {
				busy += d.busyTxns
			}
			return float64(busy)
		})
	r.Register("mshr_live", "misses outstanding across all cores",
		func() float64 {
			live := 0
			for _, t := range s.tiles {
				live += t.mshrLive
			}
			return float64(live)
		})
	r.Register("mshr_stall_cycles", "cumulative core cycles stalled on L1 misses",
		func() float64 { return float64(s.st.MissLatencySum) })
	r.Register("noc_link_utilization", "flit-hops per link-cycle across the interconnect",
		func() float64 {
			cycles := float64(s.simNow()) * float64(s.mesh.LinkCount())
			if cycles == 0 {
				return 0
			}
			return float64(s.st.FlitHops) / cycles
		})
	r.Register("noc_link_stall_cycles", "cumulative cycles messages queued behind busy links",
		func() float64 { return float64(s.st.LinkStallCycles) })
	r.Register("l1_resident_words", "data words resident across all L1s",
		func() float64 {
			resident := 0
			for _, l1 := range s.l1s {
				r, _ := l1.cache.Usage()
				resident += r
			}
			return float64(resident)
		})
	r.Register("l1_resident_used_pct", "percent of resident L1 words touched since fill",
		func() float64 {
			resident, touched := 0, 0
			for _, l1 := range s.l1s {
				r, t := l1.cache.Usage()
				resident += r
				touched += t
			}
			if resident == 0 {
				return 100
			}
			return 100 * float64(touched) / float64(resident)
		})
	// Attribution gauges read 0 until EnableAttribution runs; the
	// nil-checks keep metrics-only runs paying nothing for them.
	r.Register("attrib_fetched_words", "words fetched into L1s (attribution tracker)",
		func() float64 {
			if s.attrib == nil {
				return 0
			}
			return float64(s.attrib.FetchedWords)
		})
	r.Register("attrib_used_words", "fetched words touched before block death",
		func() float64 {
			if s.attrib == nil {
				return 0
			}
			return float64(s.attrib.UsedWords)
		})
	r.Register("attrib_wasted_bytes", "bytes fetched over the NoC but never used",
		func() float64 {
			if s.attrib == nil {
				return 0
			}
			return float64(s.attrib.WastedBytes())
		})
	r.Register("attrib_invalidations", "invalidation events attributed to regions",
		func() float64 {
			if s.attrib == nil {
				return 0
			}
			return float64(s.attrib.Invalidations)
		})
	r.Register("attrib_false_shared_regions", "regions currently classified false-shared",
		func() float64 {
			if s.attrib == nil {
				return 0
			}
			return float64(s.attrib.FalseSharedRegions())
		})
	// Self-profiling gauges read 0 until EnableSelfProf runs. They are
	// sampled at round edges (the PDES timeline tick), inside the
	// window loop's happens-before chain, so the shard reads are safe.
	r.Register("selfprof_rounds", "PDES window-loop rounds completed (self-prof)",
		func() float64 {
			if s.selfProf == nil {
				return 0
			}
			return float64(s.selfProf.Rounds)
		})
	r.Register("selfprof_inline_rounds", "rounds run without dispatching the worker crew (self-prof)",
		func() float64 {
			if s.selfProf == nil {
				return 0
			}
			return float64(s.selfProf.InlineRounds)
		})
	r.Register("selfprof_solo_extended_rounds", "rounds whose minimum tile ran an extended window (self-prof)",
		func() float64 {
			if s.selfProf == nil {
				return 0
			}
			return float64(s.selfProf.SoloExtendedRounds)
		})
	r.Register("selfprof_injected_msgs", "cross-tile messages injected at round barriers (self-prof)",
		func() float64 {
			if s.selfProf == nil {
				return 0
			}
			return float64(s.selfProf.InjectedMsgs)
		})
	r.Register("selfprof_limit_cuts", "engine window self-caps via LimitTo across tiles (self-prof)",
		func() float64 {
			if s.selfProf == nil {
				return 0
			}
			var n uint64
			for i := range s.selfProf.Tiles {
				n += s.selfProf.Tiles[i].Queue.LimitCuts
			}
			return float64(n)
		})
	r.Register("selfprof_refusals", "bounded runs stopped by the window edge with work queued (self-prof)",
		func() float64 {
			if s.selfProf == nil {
				return 0
			}
			var n uint64
			for i := range s.selfProf.Tiles {
				n += s.selfProf.Tiles[i].Queue.Refusals
			}
			return float64(n)
		})
	// Flight-recorder gauges read 0 until EnableFlightRecorder (or the
	// stall watchdog) runs, same nil-guard discipline as above.
	r.Register("flight_dropped", "flight records evicted by ring wrap",
		func() float64 {
			if s.flight == nil {
				return 0
			}
			return float64(s.flight.Dropped())
		})
	r.Register("flight_stalled_txns", "transactions the stall watchdog has flagged",
		func() float64 { return float64(len(s.stalls)) })
	s.metrics = r
	if s.timelineInterval == 0 {
		s.EnableTimeline(0)
	}
	return r
}

// Metrics returns the attached registry, nil when disabled.
func (s *System) Metrics() *obs.Registry { return s.metrics }

// WriteChromeTrace exports the recorded events as Chrome trace-event
// JSON (load in Perfetto / chrome://tracing). EnableEventTrace must
// have been called.
func (s *System) WriteChromeTrace(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("core: event tracing not enabled")
	}
	return obs.WriteChromeTrace(w, s.rec.Snapshot(), s.rec.Dropped(), obs.TraceOptions{
		Process: fmt.Sprintf("protozoa %s", s.cfg.Protocol),
		SubName: func(k obs.Kind, sub uint8) string {
			if k == obs.KindLinkStall {
				return "link-stall"
			}
			return MsgType(sub).String()
		},
	})
}
