package core

import (
	"fmt"
	"io"

	"protozoa/internal/obs"
)

// This file wires the internal/obs observability layer into the
// machine. Nothing here runs unless the corresponding Enable* method
// was called before Run; the hot-path emit sites in system.go, l1.go,
// dir.go and the mesh all guard on a single nil check.

// EnableEventTrace attaches a ring-buffer event recorder holding the
// most recent capacity events (capacity <= 0 selects the default 1 Mi).
// Call before Run. The collected events export as a Perfetto-loadable
// Chrome trace via WriteChromeTrace.
func (s *System) EnableEventTrace(capacity int) *obs.Recorder {
	s.rec = obs.NewRecorder(capacity)
	s.mesh.SetRecorder(s.rec)
	return s.rec
}

// Recorder returns the attached event recorder, nil when tracing is
// disabled.
func (s *System) Recorder() *obs.Recorder { return s.rec }

// EnableLatencyBreakdown attaches per-transaction phase timing: every
// miss's life is stamped at issue, directory accept, activation, L2
// access, last probe ack, and completion. Call before Run.
func (s *System) EnableLatencyBreakdown() *obs.LatencyBreakdown {
	s.lat = obs.NewLatencyBreakdown(s.cfg.Cores)
	return s.lat
}

// LatencyBreakdown returns the attached breakdown, nil when disabled.
func (s *System) LatencyBreakdown() *obs.LatencyBreakdown { return s.lat }

// EnableMetrics attaches the metrics registry and registers the
// machine's standard gauges. The registry is sampled on the timeline
// tick, so timeline sampling is switched on (at its default interval)
// if the caller has not configured it. Call before Run.
func (s *System) EnableMetrics() *obs.Registry {
	if s.metrics != nil {
		return s.metrics
	}
	r := &obs.Registry{}
	r.Register("event_queue_depth", "events pending in the engine queue",
		func() float64 { return float64(s.eng.Pending()) })
	r.Register("event_queue_high_water", "deepest the engine queue has been",
		func() float64 { return float64(s.eng.HighWater()) })
	r.Register("msg_pool_hit_rate", "fraction of messages served from the free list",
		func() float64 {
			total := s.poolHits + s.poolAllocs
			if total == 0 {
				return 0
			}
			return float64(s.poolHits) / float64(total)
		})
	r.Register("dir_busy_txns", "regions with an active directory transaction",
		func() float64 {
			busy := 0
			for _, d := range s.dirs {
				busy += d.busyTxns
			}
			return float64(busy)
		})
	r.Register("mshr_live", "misses outstanding across all cores",
		func() float64 { return float64(s.mshrLive) })
	r.Register("mshr_stall_cycles", "cumulative core cycles stalled on L1 misses",
		func() float64 { return float64(s.st.MissLatencySum) })
	r.Register("noc_link_utilization", "flit-hops per link-cycle across the interconnect",
		func() float64 {
			cycles := float64(s.eng.Now()) * float64(s.mesh.LinkCount())
			if cycles == 0 {
				return 0
			}
			return float64(s.st.FlitHops) / cycles
		})
	r.Register("noc_link_stall_cycles", "cumulative cycles messages queued behind busy links",
		func() float64 { return float64(s.st.LinkStallCycles) })
	s.metrics = r
	if s.timelineInterval == 0 {
		s.EnableTimeline(0)
	}
	return r
}

// Metrics returns the attached registry, nil when disabled.
func (s *System) Metrics() *obs.Registry { return s.metrics }

// WriteChromeTrace exports the recorded events as Chrome trace-event
// JSON (load in Perfetto / chrome://tracing). EnableEventTrace must
// have been called.
func (s *System) WriteChromeTrace(w io.Writer) error {
	if s.rec == nil {
		return fmt.Errorf("core: event tracing not enabled")
	}
	return obs.WriteChromeTrace(w, s.rec.Snapshot(), s.rec.Dropped(), obs.TraceOptions{
		Process: fmt.Sprintf("protozoa %s", s.cfg.Protocol),
		SubName: func(k obs.Kind, sub uint8) string {
			if k == obs.KindLinkStall {
				return "link-stall"
			}
			return MsgType(sub).String()
		},
	})
}
