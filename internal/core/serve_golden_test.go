package core

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"protozoa/internal/obs"
	"protozoa/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// TestServeGaugeSetGolden pins the Prometheus text-format contract of
// the -serve endpoint: the set of gauge names and their declared types,
// in registry order. A scraper's dashboards key on these names, so a
// rename or silent drop must fail loudly here; adding a gauge is a
// deliberate golden update (go test ./internal/core -run ServeGauge
// -update).
func TestServeGaugeSetGolden(t *testing.T) {
	cfg := testConfig(ProtozoaMW, 4)
	perCore := pdesWorkload()
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = trace.NewSliceStream(perCore[i])
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	// Arm every gauge-contributing layer so the full set registers.
	sys.EnableAttribution()
	sys.EnableSelfProf()
	reg := sys.EnableMetrics()

	srv, err := obs.NewLiveServer("127.0.0.1:0", reg.Descs())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Publish(0, reg.Eval())

	var body string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && resp.StatusCode == http.StatusOK {
			body = string(raw)
			break
		}
	}
	if body == "" {
		t.Fatal("no /metrics response before the deadline")
	}

	// The golden covers names and types only — values vary per run.
	var types []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			types = append(types, line)
		}
	}
	got := strings.Join(types, "\n") + "\n"

	golden := filepath.Join("testdata", "prometheus_gauges.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("gauge name/type set drifted from %s (run with -update if intentional)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}
