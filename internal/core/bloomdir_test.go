package core

import (
	"testing"
	"testing/quick"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

func TestBloomDirAddLookupRemove(t *testing.T) {
	b := newBloomDir(4, 64, 16)
	b.add(42, 3)
	if !b.sharers(42).Has(3) {
		t.Fatal("added sharer not found")
	}
	b.remove(42, 3)
	if b.sharers(42).Has(3) {
		t.Fatal("removed sharer still present")
	}
}

func TestBloomDirSupersetProperty(t *testing.T) {
	// Whatever was added and not removed must always be reported:
	// false positives are allowed, false negatives never.
	f := func(seed uint64) bool {
		rng := trace.NewRNG(seed)
		b := newBloomDir(4, 64, 16)
		exact := make(map[[2]uint64]int) // (region, node) -> count
		for i := 0; i < 300; i++ {
			r := mem.RegionID(rng.Intn(500))
			n := rng.Intn(16)
			k := [2]uint64{uint64(r), uint64(n)}
			if rng.Intn(2) == 0 {
				b.add(r, n)
				exact[k]++
			} else if exact[k] > 0 {
				b.remove(r, n)
				exact[k]--
			}
		}
		for k, cnt := range exact {
			if cnt > 0 && !b.sharers(mem.RegionID(k[0])).Has(int(k[1])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBloomDirAliasingProducesFalsePositivesOnly(t *testing.T) {
	// With a tiny filter, unrelated regions alias: the lookup may
	// report node 5 for region B after only adding it for region A —
	// but removing A's membership must never hide a real member.
	b := newBloomDir(2, 2, 16)
	b.add(1, 5)
	b.add(2, 5)
	b.remove(1, 5)
	if !b.sharers(2).Has(5) {
		t.Fatal("real member hidden after an unrelated removal")
	}
}

func bloomCfg(p Protocol, n int) Config {
	cfg := testConfig(p, n)
	cfg.Directory = DirBloom
	return cfg
}

func TestBloomDirectoryStress(t *testing.T) {
	// Full random stress with golden-value + SWMR checking under the
	// bloom directory, including tiny caches (eviction notifications).
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := bloomCfg(p, 4)
			cfg.L1Sets = 2
			cfg.L1SetBudget = 144
			cfg.MaxEvents = 5_000_000
			perCore := randomStreams(4, 1500, 12, 40, 31)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(t, sys)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if chk.Checks == 0 {
				t.Error("checker never ran")
			}
		})
	}
}

func TestBloomFalsePositiveProbesNack(t *testing.T) {
	// A deliberately tiny filter aliases heavily: writes to unrelated
	// regions probe non-sharers, which answer NACK. The run must stay
	// correct — the NACKs are pure overhead.
	cfg := bloomCfg(MESI, 2)
	cfg.BloomHashes = 1
	cfg.BloomBuckets = 2
	// All regions even, so they home on tile 0 and alias in the same
	// per-tile filter; the cores' region sets stay disjoint.
	var c0, c1 []trace.Access
	for i := 0; i < 40; i++ {
		c0 = append(c0, ld(regAddr(4*i)))
		c1 = append(c1, st(regAddr(4*i+2)))
	}
	sys := runSys(t, cfg, [][]trace.Access{c0, c1})
	if sys.Stats().ControlBytes[4] == 0 { // ClassNACK
		t.Error("tiny bloom filter produced no false-positive NACK probes")
	}
}

func TestBloomMatchesPreciseResultsOnPrivateWorkload(t *testing.T) {
	// With no sharing there are no probes, so bloom and precise must
	// agree on misses (traffic differs only by eviction notifications).
	mk := func() [][]trace.Access {
		var a, b []trace.Access
		for i := 0; i < 150; i++ {
			a = append(a, st(regAddr(i%24)))
			b = append(b, st(regAddr(100+i%24)))
		}
		return [][]trace.Access{a, b}
	}
	precise := runSys(t, testConfig(ProtozoaMW, 2), mk())
	bloom := runSys(t, bloomCfg(ProtozoaMW, 2), mk())
	if precise.Stats().L1Misses != bloom.Stats().L1Misses {
		t.Errorf("misses: precise %d != bloom %d", precise.Stats().L1Misses, bloom.Stats().L1Misses)
	}
}
