package core

import (
	"fmt"

	"protozoa/internal/directory"
	"protozoa/internal/engine"
	"protozoa/internal/mem"
	"protozoa/internal/obs"
	"protozoa/internal/obs/flight"
)

// dirSlice is one tile's slice of the shared inclusive L2 with its
// in-cache directory. Sharers are tracked at REGION granularity with a
// precise bit vector; Protozoa-MW keeps a second vector separating
// writers (owners) from readers, exactly as the paper's Section 3.4
// directory does. The slice serializes coherence: at most one
// transaction is active per region, later requests queue behind it,
// and spontaneous (eviction) writebacks are response-class messages
// processed even while the region is busy.
type dirSlice struct {
	sys  *System
	tl   *tile // the home tile's partition: engine, stats shard, pool
	node int

	// Entry table. Homes interleave regions low-order across tiles
	// (home = region % cores), so region/cores is a dense, collision-free
	// per-tile index: the hot path is two bounds checks and two slice
	// loads instead of a map lookup. The table is chunked — a directory
	// of lazily allocated fixed-size chunks — so workloads whose arenas
	// sit high in the address space only allocate the 4 KiB spans they
	// touch, and growth never copies entry pointers. Regions beyond
	// denseDirSlots (sparse gigantic address spaces in directed tests)
	// fall back to a map.
	dense  [][]*dirEntry
	sparse map[mem.RegionID]*dirEntry // lazily allocated overflow
	count  int                        // live entries across dense+sparse

	// One-entry memo: coherence traffic is bursty per region (request,
	// probes, replies, unblock all hit the same entry back to back).
	lastRegion mem.RegionID
	lastEntry  *dirEntry

	// txnSeq feeds newTxnID: transaction IDs are issued per slice so no
	// cross-partition counter is shared, yet stay globally unique (and
	// independent of worker count) by striding the sequence across tiles.
	txnSeq uint64

	touchSeq uint64
	bloom    *bloomDir // non-nil when Config.Directory == DirBloom

	// busyTxns counts regions with an active transaction on this slice —
	// the directory-occupancy gauge. Maintained by setBusy/clearBusy so
	// sampling is O(1) instead of a table walk.
	busyTxns int

	// memory holds regions written back on inclusion evictions; absent
	// regions read as zero (fresh physical memory).
	memory map[mem.RegionID][]uint64
}

// denseDirSlots caps the directly indexed entry table at 8 MiB of
// pointers per tile; regions above it live in the sparse map. The
// table is split into 512-slot (4 KiB) chunks allocated on first
// touch.
const (
	denseDirSlots = 1 << 20
	dirChunkBits  = 9
	dirChunkSlots = 1 << dirChunkBits
	dirChunkMask  = dirChunkSlots - 1
)

// dirEntry is one region's directory entry plus its L2 data block.
type dirEntry struct {
	region  mem.RegionID
	sharers directory.NodeSet // every L1 possibly caching a sub-block
	owners  directory.NodeSet // subset possibly holding dirty/exclusive sub-blocks

	data       []uint64   // the fixed-granularity L2 data block
	valid      mem.Bitmap // words present at the L2 (always full when inclusive)
	l2dirty    bool       // L2 newer than memory
	memTouched bool       // first-touch memory fetch already paid

	busy           bool
	txn            *dirTxn // nil when idle; points at txnStore when active
	txnStore       dirTxn  // in-place transaction storage (no per-txn alloc)
	queue          []*Msg
	pendingUnblock bool   // 3-hop: requester unblocked before the probes retired
	auditFrom      string // state at transaction activation (transition audit)
	auditFromCode  uint8  // same snapshot as a flight state code (flight recorder)

	touch uint64 // LRU stamp for finite-L2 inclusion eviction
}

// dirTxn is one active coherence transaction.
type dirTxn struct {
	id        uint64
	req       *Msg
	waiting   int  // probe replies outstanding
	forwarded bool // a 3-hop owner already supplied the requester
}

// newTxnID issues the slice's next transaction ID: nonzero (0 marks
// spontaneous writebacks) and distinct across all slices because each
// slice's sequence occupies its own residue class modulo the tile count.
func (d *dirSlice) newTxnID() uint64 {
	d.txnSeq++
	return d.txnSeq*uint64(d.sys.cfg.Cores) + uint64(d.node) + 1
}

func newDirSlice(sys *System, tl *tile, node int) *dirSlice {
	d := &dirSlice{
		sys: sys, tl: tl, node: node,
		memory: make(map[mem.RegionID][]uint64),
	}
	if sys.cfg.Directory == DirBloom {
		hashes, buckets := sys.cfg.BloomHashes, sys.cfg.BloomBuckets
		if hashes <= 0 {
			hashes = DefaultBloomHashes
		}
		if buckets <= 0 {
			buckets = DefaultBloomBuckets
		}
		d.bloom = newBloomDir(hashes, buckets, sys.cfg.Cores)
	}
	return d
}

// setBusy and clearBusy are the only writers of dirEntry.busy, keeping
// the busyTxns occupancy gauge exact.
func (d *dirSlice) setBusy(e *dirEntry) {
	if !e.busy {
		e.busy = true
		d.busyTxns++
	}
}

func (d *dirSlice) clearBusy(e *dirEntry) {
	if e.busy {
		e.busy = false
		d.busyTxns--
	}
}

// sharersOf returns the sharer set the directory hardware would see:
// the exact vector in precise mode, the AND-of-k-filters superset in
// bloom mode.
func (d *dirSlice) sharersOf(e *dirEntry) directory.NodeSet {
	if d.bloom != nil {
		return d.bloom.sharers(e.region)
	}
	return e.sharers
}

// addSharer and removeSharer keep e.sharers as the exactly-paired
// insert/remove bookkeeping. In bloom mode that mirrors what TL
// hardware gets for free from the L1s' own tags (an L1 knows whether
// it already holds blocks of a region, and bloom mode's replacement
// notifications make removals explicit); the counting filter is
// updated only on genuine membership changes, so aliasing can create
// false positives but never false negatives.
func (d *dirSlice) addSharer(e *dirEntry, n int) {
	if e.sharers.Has(n) {
		return
	}
	e.sharers = e.sharers.Add(n)
	if d.bloom != nil {
		d.bloom.add(e.region, n)
	}
}

func (d *dirSlice) removeSharer(e *dirEntry, n int) {
	if !e.sharers.Has(n) {
		return
	}
	e.sharers = e.sharers.Remove(n)
	if d.bloom != nil {
		d.bloom.remove(e.region, n)
	}
}

// slot maps a region homed on this tile to its dense table index.
func (d *dirSlice) slot(region mem.RegionID) uint64 {
	return uint64(region) / uint64(d.sys.cfg.Cores)
}

// lookup returns the region's entry without creating it or touching
// the LRU stamp (checker and scheduled-event paths).
func (d *dirSlice) lookup(region mem.RegionID) *dirEntry {
	if d.lastEntry != nil && d.lastRegion == region {
		return d.lastEntry
	}
	var e *dirEntry
	if idx := d.slot(region); idx < denseDirSlots {
		if ch := idx >> dirChunkBits; ch < uint64(len(d.dense)) && d.dense[ch] != nil {
			e = d.dense[ch][idx&dirChunkMask]
		}
	} else {
		e = d.sparse[region]
	}
	if e != nil {
		d.lastRegion = region
		d.lastEntry = e
	}
	return e
}

// mustEntry is lookup for scheduled transaction steps: the entry is
// pinned by its busy/queued state, so absence is a protocol bug.
func (d *dirSlice) mustEntry(region mem.RegionID) *dirEntry {
	e := d.lookup(region)
	if e == nil {
		panic(fmt.Sprintf("core: dir %d lost entry for region %d mid-transaction", d.node, region))
	}
	return e
}

func (d *dirSlice) insert(region mem.RegionID, e *dirEntry) {
	if idx := d.slot(region); idx < denseDirSlots {
		ch := idx >> dirChunkBits
		if ch >= uint64(len(d.dense)) {
			// The chunk directory holds one pointer per 512 slots, so
			// growing it copies at most 2 KiB even at the table cap.
			grown := make([][]*dirEntry, ch+1)
			copy(grown, d.dense)
			d.dense = grown
		}
		if d.dense[ch] == nil {
			d.dense[ch] = make([]*dirEntry, dirChunkSlots)
		}
		d.dense[ch][idx&dirChunkMask] = e
	} else {
		if d.sparse == nil {
			d.sparse = make(map[mem.RegionID]*dirEntry)
		}
		d.sparse[region] = e
	}
	d.count++
	d.lastRegion = region
	d.lastEntry = e
}

func (d *dirSlice) entry(region mem.RegionID) *dirEntry {
	e := d.lookup(region)
	if e == nil {
		if cap := d.sys.cfg.L2RegionsPerTile; cap > 0 && d.count >= cap {
			d.evictLRURegion()
		}
		e = &dirEntry{
			region: region,
			data:   make([]uint64, d.sys.geom.WordsPerRegion()),
			valid:  d.sys.geom.FullRange().Bitmap(),
		}
		if saved, hit := d.memory[region]; hit {
			copy(e.data, saved)
		}
		d.insert(region, e)
	}
	d.touchSeq++
	e.touch = d.touchSeq
	return e
}

// evictLRURegion frees one L2 slot: the least-recently-touched idle
// region is recalled (its L1 copies invalidated, preserving inclusion)
// and its dirty data written back to memory. Busy regions are never
// victims; if everything is busy the slice briefly overshoots, like a
// hardware MSHR-full stall resolved a few cycles later.
func (d *dirSlice) evictLRURegion() {
	var victim *dirEntry
	consider := func(e *dirEntry) {
		if e == nil || e.busy || len(e.queue) > 0 {
			return
		}
		if victim == nil || e.touch < victim.touch ||
			(e.touch == victim.touch && e.region < victim.region) {
			victim = e
		}
	}
	for _, chunk := range d.dense {
		for _, e := range chunk {
			consider(e)
		}
	}
	for _, e := range d.sparse {
		consider(e)
	}
	if victim == nil {
		return
	}
	d.tl.st.Recalls++
	targets := victim.sharers.Union(victim.owners)
	if targets.Empty() {
		d.dropEntry(victim)
		return
	}
	d.setBusy(victim)
	if d.tl.rec != nil {
		d.tl.rec.Record(obs.Event{
			Cycle: d.tl.eng.Now(), Kind: obs.KindTxnStart, Sub: uint8(MsgRecall),
			Node: int16(d.node), Peer: -1, Region: uint64(victim.region),
		})
	}
	if d.tl.flight != nil {
		d.tl.flightDir(flight.KindTxnStart, victim.region, 0, -1, uint8(MsgRecall))
	}
	req := d.tl.newMsg()
	req.Type = MsgRecall
	req.Dst = d.node
	req.Region = victim.region
	victim.txnStore = dirTxn{
		id:      d.newTxnID(),
		req:     req,
		waiting: targets.Count(),
	}
	victim.txn = &victim.txnStore
	if d.tl.attrib != nil {
		d.tl.attrib.Fanout(victim.region, targets.Count())
	}
	full := d.sys.geom.FullRange()
	targets.ForEach(func(t int) {
		inv := d.tl.newMsg()
		inv.Type = MsgInv
		inv.Src = d.node
		inv.Dst = t
		inv.Region = victim.region
		inv.R = full
		// No core is behind an inclusion recall: Requester -1 keeps the
		// attribution tracker from blaming core 0 for the invalidation.
		inv.Requester = -1
		inv.TxnID = victim.txn.id
		d.tl.send(inv)
	})
}

// dropEntry writes a dirty region back to memory and frees the slot.
func (d *dirSlice) dropEntry(e *dirEntry) {
	if e.l2dirty {
		d.tl.st.MemWritebacks++
		d.persistWords(e, e.valid)
	}
	if idx := d.slot(e.region); idx < denseDirSlots {
		if ch := idx >> dirChunkBits; ch < uint64(len(d.dense)) &&
			d.dense[ch] != nil && d.dense[ch][idx&dirChunkMask] == e {
			d.dense[ch][idx&dirChunkMask] = nil
		}
	} else {
		delete(d.sparse, e.region)
	}
	d.count--
	if d.lastEntry == e {
		d.lastEntry = nil
	}
}

// persistWords updates the memory image with the entry's words covered
// by mask (only L2-valid data may be persisted).
func (d *dirSlice) persistWords(e *dirEntry, mask mem.Bitmap) {
	mask = mask.Intersect(e.valid)
	if mask == 0 {
		return
	}
	saved, ok := d.memory[e.region]
	if !ok {
		saved = make([]uint64, len(e.data))
		d.memory[e.region] = saved
	}
	for w := 0; w < len(e.data); w++ {
		if mask.Has(uint8(w)) {
			saved[w] = e.data[w]
		}
	}
}

// fetchMissing re-fetches words absent from a non-inclusive L2 from
// the memory image and reports whether a memory access was needed —
// the multi-source assembly of Section 6.
func (d *dirSlice) fetchMissing(e *dirEntry, need mem.Bitmap) bool {
	missing := need.Intersect(e.valid ^ d.sys.geom.FullRange().Bitmap())
	if missing == 0 {
		return false
	}
	saved := d.memory[e.region] // nil reads as zero memory
	for w := 0; w < len(e.data); w++ {
		if missing.Has(uint8(w)) {
			if saved != nil {
				e.data[w] = saved[w]
			} else {
				e.data[w] = 0
			}
		}
	}
	e.valid = e.valid.Union(missing)
	return true
}

// recvRequest accepts GETS/GETX/UPGRADE. One transaction per region:
// a busy region queues the request.
func (d *dirSlice) recvRequest(m *Msg) {
	if lt := d.sys.latFor(m.Src); lt != nil {
		lt.DirAccept(m.Src, uint64(d.tl.eng.Now()))
	}
	if d.tl.flight != nil {
		d.tl.flightDir(flight.KindDirAccept, m.Region, 0, m.Src, uint8(m.Type))
	}
	e := d.entry(m.Region)
	if e.busy {
		if d.tl.flight != nil {
			d.tl.flightDir(flight.KindQueuePark, m.Region, 0, m.Src, uint8(m.Type))
		}
		e.queue = append(e.queue, m)
		return
	}
	d.activate(e, m)
}

// activate starts a transaction: pay the L2 access latency (plus the
// one-time memory fetch for the region's first touch) and then process.
func (d *dirSlice) activate(e *dirEntry, m *Msg) {
	d.setBusy(e)
	if lt := d.sys.latFor(m.Src); lt != nil {
		lt.Activate(m.Src, uint64(d.tl.eng.Now()))
	}
	if d.tl.rec != nil {
		d.tl.rec.Record(obs.Event{
			Cycle: d.tl.eng.Now(), Kind: obs.KindTxnStart, Sub: uint8(m.Type),
			Node: int16(d.node), Peer: -1, Region: uint64(m.Region),
		})
	}
	if d.tl.flight != nil {
		d.tl.flightDir(flight.KindTxnStart, m.Region, 0, m.Src, uint8(m.Type))
	}
	lat := d.sys.cfg.L2Lat
	if !e.memTouched {
		e.memTouched = true
		d.tl.st.MemReads++
		lat += d.sys.cfg.MemLat
	}
	m.sys = d.sys
	m.phase = phaseProcess
	d.tl.eng.ScheduleRunner(lat, m)
}

// process runs the directory state machine for one request.
func (d *dirSlice) process(e *dirEntry, m *Msg) {
	if lt := d.sys.latFor(m.Src); lt != nil {
		lt.Process(m.Src, uint64(d.tl.eng.Now()))
	}
	if d.tl.transitions != nil {
		e.auditFrom = d.dirState(e)
	}
	if d.tl.flight != nil {
		e.auditFromCode = d.flightDirCode(e)
		d.tl.flightDir(flight.KindTxnProcess, m.Region, 0, m.Src, uint8(m.Type))
	}
	// Figure 11 accounting: record the sharer mix every time a request
	// reaches an entry in Owned state.
	if !e.owners.Empty() {
		switch {
		case e.owners.Count() > 1:
			d.tl.st.DirMultiOwner++
		case d.sharersOf(e).Without(e.owners).Empty():
			d.tl.st.DirOwnerOneOnly++
		default:
			d.tl.st.DirOwnerPlusSharers++
		}
	}

	req := m.Src
	var targets directory.NodeSet
	switch m.Type {
	case MsgGetS:
		// Readers are never probed on a read; only (possible) owners
		// must surrender write permission.
		targets = e.owners.Remove(req)
	case MsgGetX, MsgUpgrade:
		targets = d.sharersOf(e).Union(e.owners).Remove(req)
	default:
		panic(fmt.Sprintf("core: directory activated on %v", m.Type))
	}
	if targets.Empty() {
		d.finish(e, m, false)
		return
	}
	e.txnStore = dirTxn{id: d.newTxnID(), req: m, waiting: targets.Count()}
	e.txn = &e.txnStore
	if d.tl.attrib != nil {
		d.tl.attrib.Fanout(m.Region, targets.Count())
	}
	// 3-hop: with exactly one target that is an owner and a data-bearing
	// request, let the owner forward the data straight to the requester.
	direct := d.sys.cfg.ThreeHop && targets.Count() == 1 &&
		(m.Type == MsgGetS || m.Type == MsgGetX)
	targets.ForEach(func(t int) {
		probe := d.tl.newMsg()
		probe.Src = d.node
		probe.Dst = t
		probe.Region = m.Region
		probe.R = m.R
		probe.Requester = req
		probe.TxnID = e.txn.id
		switch {
		case m.Type == MsgGetS:
			probe.Type = MsgFwdGetS
		case e.owners.Has(t):
			probe.Type = MsgFwdGetX
		default:
			probe.Type = MsgInv
		}
		probe.Direct = direct && e.owners.Has(t)
		d.tl.send(probe)
	})
}

// recvResponse accepts probe replies and spontaneous writebacks. Both
// patch the L2 and refresh the sharer/owner vectors from the
// responder's StillSharer/StillOwner flags; probe replies additionally
// retire the active transaction.
func (d *dirSlice) recvResponse(m *Msg) {
	e := d.entry(m.Region)
	if m.Type == MsgUnblock {
		if e.txn != nil {
			// 3-hop: the owner-supplied fill beat the probe replies to
			// the directory; hold the unblock until the txn retires.
			e.pendingUnblock = true
			return
		}
		d.unblock(e)
		return
	}
	// Patch dirty words into the L2 (restoring their validity when the
	// non-inclusive L2 had dropped them).
	carried := m.Valid.Intersect(m.Dirty)
	if carried != 0 {
		for w := uint8(0); int(w) < d.sys.geom.WordsPerRegion(); w++ {
			if carried.Has(w) {
				e.data[w] = m.Words[w]
			}
		}
		e.valid = e.valid.Union(carried)
		e.l2dirty = true
	}
	var evictAudit func()
	if d.tl.transitions != nil && m.TxnID == 0 {
		from := d.dirState(e)
		evictAudit = func() {
			d.tl.recordTransition("Dir", from, m.Type.String(), d.dirState(e))
		}
	}
	// Spontaneous writebacks mutate the vectors outside any transaction;
	// snapshot the state code so the edge they cause is recorded too.
	var wbFromCode uint8
	wbFlight := d.tl.flight != nil && m.TxnID == 0
	if wbFlight {
		wbFromCode = d.flightDirCode(e)
	}
	if !m.StillSharer {
		d.removeSharer(e, m.Src)
	}
	if !m.StillOwner {
		e.owners = e.owners.Remove(m.Src)
	}
	if evictAudit != nil {
		evictAudit()
	}
	if wbFlight {
		if to := d.flightDirCode(e); to != wbFromCode {
			d.tl.flight.Record(flight.Record{
				Cycle: d.tl.eng.Now(), Tile: int16(d.tl.id),
				Kind: flight.KindDirState, Sub: uint8(m.Type),
				Src: int16(m.Src), Dst: -1, Req: -1,
				Region: uint64(e.region), From: wbFromCode, To: to,
			})
		}
	}
	if m.TxnID != 0 && e.txn != nil && m.TxnID == e.txn.id {
		if m.ForwardedData {
			e.txn.forwarded = true
		}
		e.txn.waiting--
		if e.txn.waiting == 0 {
			req := e.txn.req
			forwarded := e.txn.forwarded
			e.txn = nil
			if req.Type != MsgRecall {
				// Recall transactions carry Src=0, not a requester core.
				if lt := d.sys.latFor(req.Src); lt != nil {
					lt.LastAck(req.Src, uint64(d.tl.eng.Now()))
				}
				if d.tl.flight != nil {
					d.tl.flightDir(flight.KindTxnLastAck, e.region, m.TxnID, req.Src, uint8(req.Type))
				}
			}
			d.finish(e, req, forwarded)
		}
	}
}

// finish completes a transaction: reply to the requester (unless a
// 3-hop owner already did) and update the vectors for its new
// permissions.
func (d *dirSlice) finish(e *dirEntry, m *Msg, forwarded bool) {
	if m.Type == MsgRecall {
		// Inclusion eviction completed: every copy is invalidated and
		// dirty data patched. If a request raced in while the recall
		// ran, abandon the eviction and serve it (the data is current);
		// otherwise free the slot.
		if d.tl.rec != nil {
			d.tl.rec.Record(obs.Event{
				Cycle: d.tl.eng.Now(), Kind: obs.KindTxnEnd, Sub: uint8(MsgRecall),
				Node: int16(d.node), Peer: -1, Region: uint64(e.region),
			})
		}
		if d.tl.flight != nil {
			d.tl.flightDir(flight.KindTxnEnd, e.region, 0, -1, uint8(MsgRecall))
		}
		if len(e.queue) > 0 {
			e.txn = nil
			d.popQueue(e)
		} else {
			d.clearBusy(e)
			d.dropEntry(e)
		}
		d.tl.freeMsg(m)
		return
	}
	req := m.Src
	reply := d.tl.newMsg()
	reply.Src = d.node
	reply.Dst = req
	reply.Region = m.Region
	reply.R = m.R
	switch m.Type {
	case MsgGetS:
		if d.sharersOf(e).Remove(req).Empty() && e.owners.Remove(req).Empty() {
			// No cached copies anywhere else — any remaining requester
			// bits are stale leftovers of its own silent clean drop:
			// grant Exclusive and track the holder as a potential
			// (silent-M) owner.
			reply.Type = MsgDataE
			e.owners = e.owners.Add(req)
		} else {
			reply.Type = MsgData
		}
		d.addSharer(e, req)
	case MsgGetX, MsgUpgrade:
		if m.Type == MsgUpgrade && d.sharersOf(e).Has(req) {
			// The requester's clean copy survived: permission only.
			reply.Type = MsgGrant
		} else {
			reply.Type = MsgDataM
		}
		if d.sys.cfg.Protocol == ProtozoaMW {
			e.owners = e.owners.Add(req)
		} else {
			e.owners = directory.NodeSet(0).Add(req)
		}
		d.addSharer(e, req)
	}

	// Assemble the payload. A non-inclusive L2 may have to re-fetch
	// words it dropped when it granted them exclusively (Section 6:
	// "request them from the lower level and combine them with the
	// block obtained from Core-1").
	dataBearing := reply.Type == MsgData || reply.Type == MsgDataE || reply.Type == MsgDataM
	var delay engine.Cycle
	if dataBearing && !forwarded {
		if d.sys.cfg.NonInclusiveL2 && d.fetchMissing(e, m.R.Bitmap()) {
			d.tl.st.MemFetches++
			delay = d.sys.cfg.MemLat
		}
		d.loadPayload(e, reply)
	}
	// A non-inclusive L2 drops its copy of exclusively granted words
	// (persisting dirty data to memory first so it is never lost).
	if d.sys.cfg.NonInclusiveL2 &&
		(m.Type == MsgGetX || m.Type == MsgUpgrade || reply.Type == MsgDataE) {
		granted := m.R.Bitmap()
		if e.l2dirty {
			d.persistWords(e, granted)
		}
		e.valid = e.valid.Intersect(granted ^ d.sys.geom.FullRange().Bitmap())
	}
	if !forwarded {
		if delay > 0 {
			reply.phase = phaseSend
			d.tl.eng.ScheduleRunner(delay, reply)
		} else {
			d.tl.send(reply)
		}
	} else {
		// A 3-hop owner already supplied the requester; the unsent
		// reply goes straight back to the pool.
		d.tl.freeMsg(reply)
	}
	if d.tl.transitions != nil {
		d.tl.recordTransition("Dir", e.auditFrom, m.Type.String(), d.dirState(e))
	}
	if d.tl.flight != nil {
		if to := d.flightDirCode(e); to != e.auditFromCode {
			d.tl.flight.Record(flight.Record{
				Cycle: d.tl.eng.Now(), Tile: int16(d.tl.id),
				Kind: flight.KindDirState, Sub: uint8(m.Type),
				Src: int16(d.node), Dst: -1, Req: int16(req),
				Region: uint64(e.region), From: e.auditFromCode, To: to,
			})
		}
	}
	// The region stays busy until the requester's UNBLOCK confirms the
	// fill is installed; only then may the next transaction's probes
	// fly, so a probe can never overtake the data it conflicts with.
	// With 3-hop forwarding the unblock may already have arrived.
	if e.pendingUnblock {
		e.pendingUnblock = false
		d.unblock(e)
	}
	// The request's transaction is fully retired: recycle it.
	d.tl.freeMsg(m)
}

// unblock reopens the region after the requester installed its fill
// and activates the next queued transaction, if any.
func (d *dirSlice) unblock(e *dirEntry) {
	if d.tl.rec != nil {
		d.tl.rec.Record(obs.Event{
			Cycle: d.tl.eng.Now(), Kind: obs.KindTxnEnd,
			Node: int16(d.node), Peer: -1, Region: uint64(e.region),
		})
	}
	if d.tl.flight != nil {
		d.tl.flightDir(flight.KindTxnEnd, e.region, 0, -1, flight.SubNone)
	}
	if d.sys.obs != nil {
		d.sys.obs.OnTxnEnd(e.region)
	}
	if len(e.queue) > 0 {
		d.popQueue(e)
	} else {
		d.clearBusy(e)
	}
}

// popQueue dequeues the region's next waiting request and schedules
// its activation after the 1-cycle dequeue delay. The queue compacts
// in place so its backing array is reused for the region's lifetime.
func (d *dirSlice) popQueue(e *dirEntry) {
	next := e.queue[0]
	if d.tl.flight != nil {
		d.tl.flightDir(flight.KindQueueUnpark, e.region, 0, next.Src, uint8(next.Type))
	}
	n := copy(e.queue, e.queue[1:])
	e.queue[n] = nil
	e.queue = e.queue[:n]
	next.phase = phaseActivate
	d.tl.eng.ScheduleRunner(1, next)
}

// loadPayload fills a data reply with the requested words from the L2
// block.
func (d *dirSlice) loadPayload(e *dirEntry, reply *Msg) {
	for w := reply.R.Start; ; w++ {
		reply.Words[w] = e.data[w]
		if w == reply.R.End {
			break
		}
	}
	reply.Valid = reply.R.Bitmap()
}
