package core

import (
	"fmt"

	"protozoa/internal/directory"
	"protozoa/internal/engine"
	"protozoa/internal/mem"
)

// dirSlice is one tile's slice of the shared inclusive L2 with its
// in-cache directory. Sharers are tracked at REGION granularity with a
// precise bit vector; Protozoa-MW keeps a second vector separating
// writers (owners) from readers, exactly as the paper's Section 3.4
// directory does. The slice serializes coherence: at most one
// transaction is active per region, later requests queue behind it,
// and spontaneous (eviction) writebacks are response-class messages
// processed even while the region is busy.
type dirSlice struct {
	sys      *System
	node     int
	entries  map[mem.RegionID]*dirEntry
	touchSeq uint64
	bloom    *bloomDir // non-nil when Config.Directory == DirBloom

	// memory holds regions written back on inclusion evictions; absent
	// regions read as zero (fresh physical memory).
	memory map[mem.RegionID][]uint64
}

// dirEntry is one region's directory entry plus its L2 data block.
type dirEntry struct {
	region  mem.RegionID
	sharers directory.NodeSet // every L1 possibly caching a sub-block
	owners  directory.NodeSet // subset possibly holding dirty/exclusive sub-blocks

	data       []uint64   // the fixed-granularity L2 data block
	valid      mem.Bitmap // words present at the L2 (always full when inclusive)
	l2dirty    bool       // L2 newer than memory
	memTouched bool       // first-touch memory fetch already paid

	busy           bool
	txn            *dirTxn
	queue          []*Msg
	pendingUnblock bool   // 3-hop: requester unblocked before the probes retired
	auditFrom      string // state at transaction activation (transition audit)

	touch uint64 // LRU stamp for finite-L2 inclusion eviction
}

// dirTxn is one active coherence transaction.
type dirTxn struct {
	id        uint64
	req       *Msg
	waiting   int  // probe replies outstanding
	forwarded bool // a 3-hop owner already supplied the requester
}

func newDirSlice(sys *System, node int) *dirSlice {
	d := &dirSlice{
		sys: sys, node: node,
		entries: make(map[mem.RegionID]*dirEntry),
		memory:  make(map[mem.RegionID][]uint64),
	}
	if sys.cfg.Directory == DirBloom {
		hashes, buckets := sys.cfg.BloomHashes, sys.cfg.BloomBuckets
		if hashes <= 0 {
			hashes = DefaultBloomHashes
		}
		if buckets <= 0 {
			buckets = DefaultBloomBuckets
		}
		d.bloom = newBloomDir(hashes, buckets, sys.cfg.Cores)
	}
	return d
}

// sharersOf returns the sharer set the directory hardware would see:
// the exact vector in precise mode, the AND-of-k-filters superset in
// bloom mode.
func (d *dirSlice) sharersOf(e *dirEntry) directory.NodeSet {
	if d.bloom != nil {
		return d.bloom.sharers(e.region)
	}
	return e.sharers
}

// addSharer and removeSharer keep e.sharers as the exactly-paired
// insert/remove bookkeeping. In bloom mode that mirrors what TL
// hardware gets for free from the L1s' own tags (an L1 knows whether
// it already holds blocks of a region, and bloom mode's replacement
// notifications make removals explicit); the counting filter is
// updated only on genuine membership changes, so aliasing can create
// false positives but never false negatives.
func (d *dirSlice) addSharer(e *dirEntry, n int) {
	if e.sharers.Has(n) {
		return
	}
	e.sharers = e.sharers.Add(n)
	if d.bloom != nil {
		d.bloom.add(e.region, n)
	}
}

func (d *dirSlice) removeSharer(e *dirEntry, n int) {
	if !e.sharers.Has(n) {
		return
	}
	e.sharers = e.sharers.Remove(n)
	if d.bloom != nil {
		d.bloom.remove(e.region, n)
	}
}

func (d *dirSlice) entry(region mem.RegionID) *dirEntry {
	e, ok := d.entries[region]
	if !ok {
		if cap := d.sys.cfg.L2RegionsPerTile; cap > 0 && len(d.entries) >= cap {
			d.evictLRURegion()
		}
		e = &dirEntry{
			region: region,
			data:   make([]uint64, d.sys.geom.WordsPerRegion()),
			valid:  d.sys.geom.FullRange().Bitmap(),
		}
		if saved, hit := d.memory[region]; hit {
			copy(e.data, saved)
		}
		d.entries[region] = e
	}
	d.touchSeq++
	e.touch = d.touchSeq
	return e
}

// evictLRURegion frees one L2 slot: the least-recently-touched idle
// region is recalled (its L1 copies invalidated, preserving inclusion)
// and its dirty data written back to memory. Busy regions are never
// victims; if everything is busy the slice briefly overshoots, like a
// hardware MSHR-full stall resolved a few cycles later.
func (d *dirSlice) evictLRURegion() {
	var victim *dirEntry
	for _, e := range d.entries {
		if e.busy || len(e.queue) > 0 {
			continue
		}
		if victim == nil || e.touch < victim.touch ||
			(e.touch == victim.touch && e.region < victim.region) {
			victim = e
		}
	}
	if victim == nil {
		return
	}
	d.sys.st.Recalls++
	targets := victim.sharers.Union(victim.owners)
	if targets.Empty() {
		d.dropEntry(victim)
		return
	}
	victim.busy = true
	d.sys.nextTxn++
	victim.txn = &dirTxn{
		id:      d.sys.nextTxn,
		req:     &Msg{Type: MsgRecall, Region: victim.region},
		waiting: targets.Count(),
	}
	full := d.sys.geom.FullRange()
	targets.ForEach(func(t int) {
		d.sys.send(&Msg{
			Type: MsgInv, Src: d.node, Dst: t,
			Region: victim.region, R: full, TxnID: victim.txn.id,
		})
	})
}

// dropEntry writes a dirty region back to memory and frees the slot.
func (d *dirSlice) dropEntry(e *dirEntry) {
	if e.l2dirty {
		d.sys.st.MemWritebacks++
		d.persistWords(e, e.valid)
	}
	delete(d.entries, e.region)
}

// persistWords updates the memory image with the entry's words covered
// by mask (only L2-valid data may be persisted).
func (d *dirSlice) persistWords(e *dirEntry, mask mem.Bitmap) {
	mask = mask.Intersect(e.valid)
	if mask == 0 {
		return
	}
	saved, ok := d.memory[e.region]
	if !ok {
		saved = make([]uint64, len(e.data))
		d.memory[e.region] = saved
	}
	for w := 0; w < len(e.data); w++ {
		if mask.Has(uint8(w)) {
			saved[w] = e.data[w]
		}
	}
}

// fetchMissing re-fetches words absent from a non-inclusive L2 from
// the memory image and reports whether a memory access was needed —
// the multi-source assembly of Section 6.
func (d *dirSlice) fetchMissing(e *dirEntry, need mem.Bitmap) bool {
	missing := need.Intersect(e.valid ^ d.sys.geom.FullRange().Bitmap())
	if missing == 0 {
		return false
	}
	saved := d.memory[e.region] // nil reads as zero memory
	for w := 0; w < len(e.data); w++ {
		if missing.Has(uint8(w)) {
			if saved != nil {
				e.data[w] = saved[w]
			} else {
				e.data[w] = 0
			}
		}
	}
	e.valid = e.valid.Union(missing)
	return true
}

// recvRequest accepts GETS/GETX/UPGRADE. One transaction per region:
// a busy region queues the request.
func (d *dirSlice) recvRequest(m *Msg) {
	e := d.entry(m.Region)
	if e.busy {
		e.queue = append(e.queue, m)
		return
	}
	d.activate(e, m)
}

// activate starts a transaction: pay the L2 access latency (plus the
// one-time memory fetch for the region's first touch) and then process.
func (d *dirSlice) activate(e *dirEntry, m *Msg) {
	e.busy = true
	lat := d.sys.cfg.L2Lat
	if !e.memTouched {
		e.memTouched = true
		d.sys.st.MemReads++
		lat += d.sys.cfg.MemLat
	}
	d.sys.eng.Schedule(lat, func() { d.process(e, m) })
}

// process runs the directory state machine for one request.
func (d *dirSlice) process(e *dirEntry, m *Msg) {
	if d.sys.transitions != nil {
		e.auditFrom = d.dirState(e)
	}
	// Figure 11 accounting: record the sharer mix every time a request
	// reaches an entry in Owned state.
	if !e.owners.Empty() {
		switch {
		case e.owners.Count() > 1:
			d.sys.st.DirMultiOwner++
		case d.sharersOf(e).Without(e.owners).Empty():
			d.sys.st.DirOwnerOneOnly++
		default:
			d.sys.st.DirOwnerPlusSharers++
		}
	}

	req := m.Src
	var targets directory.NodeSet
	switch m.Type {
	case MsgGetS:
		// Readers are never probed on a read; only (possible) owners
		// must surrender write permission.
		targets = e.owners.Remove(req)
	case MsgGetX, MsgUpgrade:
		targets = d.sharersOf(e).Union(e.owners).Remove(req)
	default:
		panic(fmt.Sprintf("core: directory activated on %v", m.Type))
	}
	if targets.Empty() {
		d.finish(e, m, false)
		return
	}
	d.sys.nextTxn++
	e.txn = &dirTxn{id: d.sys.nextTxn, req: m, waiting: targets.Count()}
	// 3-hop: with exactly one target that is an owner and a data-bearing
	// request, let the owner forward the data straight to the requester.
	direct := d.sys.cfg.ThreeHop && targets.Count() == 1 &&
		(m.Type == MsgGetS || m.Type == MsgGetX)
	targets.ForEach(func(t int) {
		probe := &Msg{
			Src: d.node, Dst: t,
			Region: m.Region, R: m.R,
			Requester: req, TxnID: e.txn.id,
		}
		switch {
		case m.Type == MsgGetS:
			probe.Type = MsgFwdGetS
		case e.owners.Has(t):
			probe.Type = MsgFwdGetX
		default:
			probe.Type = MsgInv
		}
		probe.Direct = direct && e.owners.Has(t)
		d.sys.send(probe)
	})
}

// recvResponse accepts probe replies and spontaneous writebacks. Both
// patch the L2 and refresh the sharer/owner vectors from the
// responder's StillSharer/StillOwner flags; probe replies additionally
// retire the active transaction.
func (d *dirSlice) recvResponse(m *Msg) {
	e := d.entry(m.Region)
	if m.Type == MsgUnblock {
		if e.txn != nil {
			// 3-hop: the owner-supplied fill beat the probe replies to
			// the directory; hold the unblock until the txn retires.
			e.pendingUnblock = true
			return
		}
		d.unblock(e)
		return
	}
	// Patch dirty words into the L2 (restoring their validity when the
	// non-inclusive L2 had dropped them).
	carried := m.Valid.Intersect(m.Dirty)
	if carried != 0 {
		for w := uint8(0); int(w) < d.sys.geom.WordsPerRegion(); w++ {
			if carried.Has(w) {
				e.data[w] = m.Words[w]
			}
		}
		e.valid = e.valid.Union(carried)
		e.l2dirty = true
	}
	var evictAudit func()
	if d.sys.transitions != nil && m.TxnID == 0 {
		from := d.dirState(e)
		evictAudit = func() {
			d.sys.recordTransition("Dir", from, m.Type.String(), d.dirState(e))
		}
	}
	if !m.StillSharer {
		d.removeSharer(e, m.Src)
	}
	if !m.StillOwner {
		e.owners = e.owners.Remove(m.Src)
	}
	if evictAudit != nil {
		evictAudit()
	}
	if m.TxnID != 0 && e.txn != nil && m.TxnID == e.txn.id {
		if m.ForwardedData {
			e.txn.forwarded = true
		}
		e.txn.waiting--
		if e.txn.waiting == 0 {
			req := e.txn.req
			forwarded := e.txn.forwarded
			e.txn = nil
			d.finish(e, req, forwarded)
		}
	}
}

// finish completes a transaction: reply to the requester (unless a
// 3-hop owner already did) and update the vectors for its new
// permissions.
func (d *dirSlice) finish(e *dirEntry, m *Msg, forwarded bool) {
	if m.Type == MsgRecall {
		// Inclusion eviction completed: every copy is invalidated and
		// dirty data patched. If a request raced in while the recall
		// ran, abandon the eviction and serve it (the data is current);
		// otherwise free the slot.
		if len(e.queue) > 0 {
			next := e.queue[0]
			e.queue = e.queue[1:]
			e.txn = nil
			d.sys.eng.Schedule(1, func() { d.activate(e, next) })
		} else {
			e.busy = false
			d.dropEntry(e)
		}
		return
	}
	req := m.Src
	reply := &Msg{
		Src: d.node, Dst: req,
		Region: m.Region, R: m.R,
	}
	switch m.Type {
	case MsgGetS:
		if d.sharersOf(e).Remove(req).Empty() && e.owners.Remove(req).Empty() {
			// No cached copies anywhere else — any remaining requester
			// bits are stale leftovers of its own silent clean drop:
			// grant Exclusive and track the holder as a potential
			// (silent-M) owner.
			reply.Type = MsgDataE
			e.owners = e.owners.Add(req)
		} else {
			reply.Type = MsgData
		}
		d.addSharer(e, req)
	case MsgGetX, MsgUpgrade:
		if m.Type == MsgUpgrade && d.sharersOf(e).Has(req) {
			// The requester's clean copy survived: permission only.
			reply.Type = MsgGrant
		} else {
			reply.Type = MsgDataM
		}
		if d.sys.cfg.Protocol == ProtozoaMW {
			e.owners = e.owners.Add(req)
		} else {
			e.owners = directory.NodeSet(0).Add(req)
		}
		d.addSharer(e, req)
	}

	// Assemble the payload. A non-inclusive L2 may have to re-fetch
	// words it dropped when it granted them exclusively (Section 6:
	// "request them from the lower level and combine them with the
	// block obtained from Core-1").
	dataBearing := reply.Type == MsgData || reply.Type == MsgDataE || reply.Type == MsgDataM
	var delay engine.Cycle
	if dataBearing && !forwarded {
		if d.sys.cfg.NonInclusiveL2 && d.fetchMissing(e, m.R.Bitmap()) {
			d.sys.st.MemFetches++
			delay = d.sys.cfg.MemLat
		}
		d.loadPayload(e, reply)
	}
	// A non-inclusive L2 drops its copy of exclusively granted words
	// (persisting dirty data to memory first so it is never lost).
	if d.sys.cfg.NonInclusiveL2 &&
		(m.Type == MsgGetX || m.Type == MsgUpgrade || reply.Type == MsgDataE) {
		granted := m.R.Bitmap()
		if e.l2dirty {
			d.persistWords(e, granted)
		}
		e.valid = e.valid.Intersect(granted ^ d.sys.geom.FullRange().Bitmap())
	}
	if !forwarded {
		if delay > 0 {
			d.sys.eng.Schedule(delay, func() { d.sys.send(reply) })
		} else {
			d.sys.send(reply)
		}
	}
	if d.sys.transitions != nil {
		d.sys.recordTransition("Dir", e.auditFrom, m.Type.String(), d.dirState(e))
	}
	// The region stays busy until the requester's UNBLOCK confirms the
	// fill is installed; only then may the next transaction's probes
	// fly, so a probe can never overtake the data it conflicts with.
	// With 3-hop forwarding the unblock may already have arrived.
	if e.pendingUnblock {
		e.pendingUnblock = false
		d.unblock(e)
	}
}

// unblock reopens the region after the requester installed its fill
// and activates the next queued transaction, if any.
func (d *dirSlice) unblock(e *dirEntry) {
	if d.sys.obs != nil {
		d.sys.obs.OnTxnEnd(e.region)
	}
	if len(e.queue) > 0 {
		next := e.queue[0]
		e.queue = e.queue[1:]
		d.sys.eng.Schedule(1, func() { d.activate(e, next) })
	} else {
		e.busy = false
	}
}

// loadPayload fills a data reply with the requested words from the L2
// block.
func (d *dirSlice) loadPayload(e *dirEntry, reply *Msg) {
	for w := reply.R.Start; ; w++ {
		reply.Words[w] = e.data[w]
		if w == reply.R.End {
			break
		}
	}
	reply.Valid = reply.R.Bitmap()
}
