package core

import (
	"fmt"
	"sort"

	"protozoa/internal/cache"
	"protozoa/internal/mem"
)

// Checker is the random-tester correctness oracle (Section 3.6). It
// observes a System and verifies, at every directory quiescent point:
//
//   - word-granularity SWMR: a word cached with write permission (M or
//     E) anywhere has exactly one holder system-wide;
//   - the protocol's own granularity: region-level SWMR for MESI and
//     Protozoa-SW, at most one writing core per region for
//     Protozoa-SW+MR;
//   - value integrity: every cached word equals the golden value (the
//     last value written in coherence order), catching lost
//     writebacks, stale copies, and mis-patched L2 data;
//   - load integrity: every completed load observed the golden value.
//
// Violations are recorded (up to MaxViolations) rather than panicking,
// so tests and the protozoa-verify tool can report them.
type Checker struct {
	sys    *System
	golden map[mem.Addr]uint64

	// Checks counts quiescent-point scans performed.
	Checks int
	// Loads counts load values validated.
	Loads int

	violations []string

	// transcript is the flight recorder's tail captured at the first
	// violation (empty when the recorder is disabled): the record of
	// what the machine was doing when the invariant broke, before
	// later traffic rotates it out of the bounded rings.
	transcript string
}

// MaxViolations bounds the recorded diagnostics.
const MaxViolations = 32

// NewChecker attaches a fresh checker to the system as its observer.
func NewChecker(sys *System) *Checker {
	c := &Checker{sys: sys, golden: make(map[mem.Addr]uint64)}
	sys.SetObserver(c)
	return c
}

// Violations returns the recorded diagnostics.
func (c *Checker) Violations() []string { return c.violations }

// CheckerSummary is the serializable outcome of a checked run — what
// protozoa-verify reports per cell, in a form the result cache can
// store and replay byte-identically.
type CheckerSummary struct {
	Loads      int
	Checks     int
	Violations []string `json:",omitempty"`
}

// Summary snapshots the checker's outcome.
func (c *Checker) Summary() CheckerSummary {
	return CheckerSummary{
		Loads:      c.Loads,
		Checks:     c.Checks,
		Violations: append([]string(nil), c.violations...),
	}
}

// Err summarizes the violations as an error, or nil if none occurred.
// When the flight recorder was enabled the error carries the transcript
// captured at the first violation, so a random-tester failure reads as
// a protocol trace instead of a bare invariant message.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	err := fmt.Errorf("checker: %d violation(s), first: %s", len(c.violations), c.violations[0])
	if c.transcript != "" {
		err = fmt.Errorf("%w\nflight transcript at first violation (last %d records):\n%s",
			err, violationTranscriptCap, c.transcript)
	}
	return err
}

// Transcript returns the flight-recorder tail captured at the first
// violation (empty when none occurred or the recorder was disabled).
func (c *Checker) Transcript() string { return c.transcript }

func (c *Checker) fail(format string, args ...interface{}) {
	if len(c.violations) == 0 {
		// Auto-dump on the first violation: snapshot the flight tail
		// now, while the records leading up to the break are still in
		// the rings.
		c.transcript = c.sys.flightTail(violationTranscriptCap)
	}
	if len(c.violations) < MaxViolations {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
}

// OnStore implements Observer.
func (c *Checker) OnStore(_ int, addr mem.Addr, val uint64) {
	c.golden[addr] = val
}

// OnLoad implements Observer.
func (c *Checker) OnLoad(core int, addr mem.Addr, val uint64) {
	c.Loads++
	if want := c.golden[addr]; val != want {
		c.fail("core %d loaded %#x from %#x, want golden %#x", core, val, addr, want)
	}
}

// OnTxnEnd implements Observer.
func (c *Checker) OnTxnEnd(mem.RegionID) {
	c.Checks++
	c.checkValues()
	c.checkSWMR()
}

func (c *Checker) checkValues() {
	g := c.sys.Geometry()
	c.sys.ForEachCachedWord(func(core int, region mem.RegionID, w uint8, st cache.State, val uint64) {
		addr := g.WordAddr(region, w)
		if want := c.golden[addr]; val != want {
			c.fail("core %d caches %#x=%#x in %v, golden %#x", core, addr, val, st, want)
		}
	})
}

func (c *Checker) checkSWMR() {
	type key struct {
		region mem.RegionID
		w      uint8
	}
	wordWriters := make(map[key][]int)
	wordHolders := make(map[key][]int)
	regionWriters := make(map[mem.RegionID]map[int]bool)
	regionHolders := make(map[mem.RegionID]map[int]bool)

	c.sys.ForEachCachedWord(func(core int, region mem.RegionID, w uint8, st cache.State, _ uint64) {
		k := key{region, w}
		wordHolders[k] = append(wordHolders[k], core)
		if regionHolders[region] == nil {
			regionHolders[region] = make(map[int]bool)
		}
		regionHolders[region][core] = true
		if st == cache.Modified || st == cache.Exclusive {
			wordWriters[k] = append(wordWriters[k], core)
			if regionWriters[region] == nil {
				regionWriters[region] = make(map[int]bool)
			}
			regionWriters[region][core] = true
		}
	})

	// Word-granularity SWMR holds for every protocol (region SWMR
	// implies it): a written word has exactly one holder.
	for k, writers := range wordWriters {
		if len(writers) > 1 {
			c.fail("word %d of region %d writable at cores %v", k.w, k.region, writers)
		}
		if len(wordHolders[k]) > 1 {
			c.fail("word %d of region %d written at core %d but cached at %v",
				k.w, k.region, writers[0], wordHolders[k])
		}
	}

	switch c.sys.Protocol() {
	case MESI, ProtozoaSW:
		// Region-granularity SWMR: a region with any written word has
		// exactly one L1 caching anything of it.
		for region, writers := range regionWriters {
			if len(writers) > 0 && len(regionHolders[region]) > 1 {
				c.fail("%v: region %d has writer(s) %v and holders %v",
					c.sys.Protocol(), region, coreList(writers), coreList(regionHolders[region]))
			}
		}
	case ProtozoaSWMR:
		// At most one writing core per region.
		for region, writers := range regionWriters {
			if len(writers) > 1 {
				c.fail("SW+MR: region %d has %d writers %v", region, len(writers), coreList(writers))
			}
		}
	}
}

func coreList(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
