package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"protozoa/internal/engine"
	"protozoa/internal/mem"
	"protozoa/internal/obs"
	"protozoa/internal/obs/flight"
	"protozoa/internal/trace"
)

// TestFlightRecordsOutlivePooledMsg proves flight records (and the
// message-log view over them) survive message recycling: every field a
// record keeps is copied out at record time, so pool-zeroing the
// message and scribbling fresh fields over the same backing struct must
// not change the transcript.
func TestFlightRecordsOutlivePooledMsg(t *testing.T) {
	cfg := testConfig(MESI, 1)
	sys, err := NewSystem(cfg, []trace.Stream{trace.NewSliceStream(nil)})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableMessageLog(16)

	m := sys.tiles[0].newMsg()
	m.Type = MsgGetX
	m.Src = 0
	m.Dst = 0
	m.Region = 7
	m.R = mem.Range{Start: 1, End: 3}
	m.TxnID = 55
	m.StillOwner = true
	m.Valid = 0xe
	m.Words[3] = 0xdead
	sys.tiles[0].flightMsg(flight.KindMsgSend, 42, m)

	// The message dies: the pool zeroes it for reuse, and the next
	// taker scribbles fresh fields over the same backing struct.
	sys.tiles[0].freeMsg(m)
	reused := sys.tiles[0].newMsg()
	if reused != m {
		t.Fatalf("free list did not hand back the same message")
	}
	reused.Type = MsgAck
	reused.Region = 99
	reused.R = mem.Range{Start: 7, End: 7}
	reused.TxnID = 1
	reused.Valid = 0x1
	reused.Words[3] = 0xbeef

	got := sys.MessageLog()
	if len(got) != 1 {
		t.Fatalf("%d logged events, want 1 (the free record is not a send)", len(got))
	}
	e := got[0]
	if e.Cycle != 42 || e.Msg.Type != MsgGetX || e.Msg.Region != 7 ||
		e.Msg.R != (mem.Range{Start: 1, End: 3}) || e.Msg.TxnID != 55 ||
		!e.Msg.StillOwner || e.Msg.Valid != 0xe {
		t.Errorf("logged copy mutated by pool recycling: %+v", e)
	}
	// Records keep the Valid/Dirty masks, not the word values —
	// reconstruction never aliases (or even sees) the recycled payload.
	if e.Msg.Words[3] != 0 {
		t.Errorf("reconstructed event carries payload words: %#x", e.Msg.Words[3])
	}
	// The raw transcript saw both lifecycle steps with pre-free fields.
	recs := sys.FlightRecords()
	if len(recs) != 2 || recs[0].Kind != flight.KindMsgSend || recs[1].Kind != flight.KindMsgFree {
		t.Fatalf("flight transcript = %+v, want send+free", recs)
	}
	if recs[1].Region != 7 || MsgType(recs[1].Sub) != MsgGetX {
		t.Errorf("free record aliased the recycled message: %+v", recs[1])
	}
}

// TestTimelineDefaultInterval covers EnableTimeline(0): the documented
// 1000-cycle default must apply and produce evenly spaced samples.
func TestTimelineDefaultInterval(t *testing.T) {
	cfg := testConfig(MESI, 1)
	var recs []trace.Access
	for pass := 0; pass < 40; pass++ {
		for r := 0; r < 8; r++ {
			recs = append(recs, ld(regAddr(r)))
		}
	}
	sys, err := NewSystem(cfg, []trace.Stream{trace.NewSliceStream(recs)})
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableTimeline(0)
	if sys.timelineInterval != 1000 {
		t.Fatalf("interval %d after EnableTimeline(0), want 1000", sys.timelineInterval)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	tl := sys.Timeline()
	if len(tl) == 0 {
		t.Fatal("no samples with the default interval")
	}
	for i, s := range tl {
		if want := engine.Cycle((i + 1) * 1000); s.Cycle != want {
			t.Fatalf("sample %d at cycle %d, want %d", i, s.Cycle, want)
		}
	}
}

// TestTimelineStopsAfterCompletion asserts the sampler does not keep
// rescheduling once every core has finished: at most one sample lands
// at or after the last retirement, and the run's final cycle stays
// within one interval of the last sample.
func TestTimelineStopsAfterCompletion(t *testing.T) {
	cfg := testConfig(MESI, 2)
	perCore := randomStreams(2, 400, 8, 30, 7)
	sys, err := NewSystem(cfg, []trace.Stream{
		trace.NewSliceStream(perCore[0]),
		trace.NewSliceStream(perCore[1]),
	})
	if err != nil {
		t.Fatal(err)
	}
	const interval = 200
	sys.EnableTimeline(interval)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	tl := sys.Timeline()
	if len(tl) < 2 {
		t.Skipf("run too short: %d samples", len(tl))
	}
	end := sys.Stats().ExecCycles
	past := 0
	for _, s := range tl {
		if uint64(s.Cycle) >= end {
			past++
		}
	}
	if past > 1 {
		t.Errorf("%d samples at/after the last retirement (cycle %d) — sampler did not stop", past, end)
	}
	// Monotonic cumulative counters under the Runner-based scheduler.
	for i := 1; i < len(tl); i++ {
		if tl[i].Cycle != tl[i-1].Cycle+interval {
			t.Fatalf("sample spacing broken at %d: %d -> %d", i, tl[i-1].Cycle, tl[i].Cycle)
		}
		if tl[i].Accesses < tl[i-1].Accesses || tl[i].Misses < tl[i-1].Misses ||
			tl[i].Traffic < tl[i-1].Traffic || tl[i].FlitHops < tl[i-1].FlitHops {
			t.Fatalf("cumulative counters decreased at sample %d", i)
		}
	}
}

// TestLatencyBreakdownReconciles is the acceptance invariant: with the
// breakdown enabled, every L1 miss completes exactly one stamped
// transaction, the phase sums tile each miss's interval, and the
// aggregate equals stats.MissLatencySum — so the report's per-phase
// averages sum to AvgMissLatency exactly.
func TestLatencyBreakdownReconciles(t *testing.T) {
	type variant struct {
		name string
		cfg  func() Config
	}
	variants := []variant{}
	for _, p := range AllProtocols {
		p := p
		variants = append(variants, variant{p.String(), func() Config { return testConfig(p, 4) }})
	}
	// Recalls (Src=0 transactions) and 3-hop forwarded fills are the
	// paths where stale stamps can arise; the clamped chain must still
	// tile exactly.
	variants = append(variants, variant{"mw-recall-3hop", func() Config {
		cfg := testConfig(ProtozoaMW, 4)
		cfg.ThreeHop = true
		cfg.L2RegionsPerTile = 4
		return cfg
	}})
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			cfg := v.cfg()
			perCore := randomStreams(4, 800, 10, 40, 13)
			streams := make([]trace.Stream, 4)
			for i := range streams {
				streams[i] = trace.NewSliceStream(perCore[i])
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			lat := sys.EnableLatencyBreakdown()
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			st := sys.Stats()
			if lat.Count != st.L1Misses {
				t.Errorf("breakdown completed %d misses, stats counted %d", lat.Count, st.L1Misses)
			}
			if lat.TotalSum != st.MissLatencySum {
				t.Errorf("breakdown total %d cycles, stats %d", lat.TotalSum, st.MissLatencySum)
			}
			var phases uint64
			for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
				phases += lat.PhaseSum[ph]
			}
			if phases != lat.TotalSum {
				t.Errorf("phases sum to %d, total %d", phases, lat.TotalSum)
			}
			if st.L1Misses > 0 && lat.PhaseSum[obs.PhaseL2Access] == 0 {
				t.Error("no L2-access time recorded across an entire run")
			}
		})
	}
}

// TestEventTraceExports runs a sharing-heavy workload with tracing on
// and round-trips the exported Chrome trace through a JSON parser.
func TestEventTraceExports(t *testing.T) {
	cfg := testConfig(ProtozoaMW, 4)
	perCore := randomStreams(4, 300, 6, 40, 21)
	streams := make([]trace.Stream, 4)
	for i := range streams {
		streams[i] = trace.NewSliceStream(perCore[i])
	}
	sys, err := NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	rec := sys.EnableEventTrace(1 << 16)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no events recorded")
	}
	var buf bytes.Buffer
	if err := sys.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed obs.ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	var slices, metas int
	for _, e := range parsed.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
		case "M":
			metas++
		}
	}
	if slices == 0 || metas == 0 {
		t.Errorf("trace has %d slices and %d metadata records, want both > 0", slices, metas)
	}
}

// TestMetricsRegistryOnSystem covers EnableMetrics end to end: the
// gauges sample on the timeline tick, the dump parses, and the final
// occupancy gauges read zero on a drained machine.
func TestMetricsRegistryOnSystem(t *testing.T) {
	cfg := testConfig(MESI, 2)
	perCore := randomStreams(2, 500, 8, 30, 5)
	sys, err := NewSystem(cfg, []trace.Stream{
		trace.NewSliceStream(perCore[0]),
		trace.NewSliceStream(perCore[1]),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := sys.EnableMetrics()
	if sys.timelineInterval == 0 {
		t.Fatal("EnableMetrics did not arm timeline sampling")
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if len(reg.Samples()) == 0 {
		t.Fatal("registry collected no samples")
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc obs.MetricsDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if doc.Final["dir_busy_txns"] != 0 || doc.Final["mshr_live"] != 0 {
		t.Errorf("occupancy gauges nonzero on a drained machine: %+v", doc.Final)
	}
	if hr := doc.Final["msg_pool_hit_rate"]; hr <= 0 || hr > 1 {
		t.Errorf("pool hit rate %f out of range", hr)
	}
	if doc.Final["event_queue_high_water"] < 1 {
		t.Errorf("queue high-water %f, want >= 1", doc.Final["event_queue_high_water"])
	}
}
