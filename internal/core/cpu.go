package core

import (
	"protozoa/internal/engine"
	"protozoa/internal/trace"
)

// cpu is one in-order core (Table 4: 16-way, in-order). It retires one
// think-instruction per cycle and blocks on L1 misses, so execution
// time differences between protocols come from miss behaviour — the
// same first-order model the paper's in-order configuration yields.
type cpu struct {
	id       int
	stream   trace.Stream
	storeSeq uint64
	done     bool
}

// storeToken produces the unique value a store writes; the random
// tester uses it to validate coherence end to end.
func (c *cpu) storeToken() uint64 {
	c.storeSeq++
	return uint64(c.id+1)<<40 | c.storeSeq
}

// step advances a core to its next trace record.
func (s *System) step(c *cpu) {
	a, ok := c.stream.Next()
	if !ok {
		c.done = true
		s.coresDone++
		if s.coresDone == s.cfg.Cores {
			// Execution time is the last core's retirement; the queue
			// may still drain trailing unblocks/writebacks afterwards.
			s.lastRetire = s.eng.Now()
		}
		s.releaseBarrierIfReady()
		return
	}
	think := engine.Cycle(a.Think)
	switch a.Kind {
	case trace.Barrier:
		s.st.Instructions += uint64(a.Think)
		s.eng.Schedule(think, func() { s.arriveBarrier(c) })
	case trace.Load, trace.Store, trace.RMW:
		s.st.Instructions += uint64(a.Think) + 1
		s.eng.Schedule(think, func() { s.issueAccess(c, a) })
	default:
		panic("core: unknown trace record kind")
	}
}

func (s *System) issueAccess(c *cpu, a trace.Access) {
	s.st.Accesses++
	cs := &s.st.PerCore[c.id]
	cs.Accesses++
	switch a.Kind {
	case trace.Store:
		s.st.Stores++
		cs.Stores++
		val := c.storeToken()
		s.l1s[c.id].access(a.Addr, accWrite, a.PC, val, func(uint64) {
			if s.obs != nil {
				s.obs.OnStore(c.id, a.Addr, val)
			}
			s.step(c)
		})
	case trace.RMW:
		// Atomic fetch-and-increment: counted as a store (it acquires
		// write permission) and observed as both a load of the old
		// value and a store of old+1.
		s.st.Stores++
		s.st.RMWs++
		cs.Stores++
		s.l1s[c.id].access(a.Addr, accRMW, a.PC, 0, func(old uint64) {
			if s.obs != nil {
				s.obs.OnLoad(c.id, a.Addr, old)
				s.obs.OnStore(c.id, a.Addr, old+1)
			}
			s.step(c)
		})
	default:
		s.st.Loads++
		cs.Loads++
		s.l1s[c.id].access(a.Addr, accRead, a.PC, 0, func(loaded uint64) {
			if s.obs != nil {
				s.obs.OnLoad(c.id, a.Addr, loaded)
			}
			s.step(c)
		})
	}
}

// arriveBarrier parks the core until every live core reaches the
// barrier. Cores whose streams already finished count as arrived, so a
// workload may give cores unequal record counts after their last
// common barrier.
func (s *System) arriveBarrier(c *cpu) {
	s.barrierArrived++
	s.barrierWait = append(s.barrierWait, func() { s.step(c) })
	s.releaseBarrierIfReady()
}

func (s *System) releaseBarrierIfReady() {
	if s.barrierArrived == 0 || s.barrierArrived+s.coresDone < s.cfg.Cores {
		return
	}
	waiters := s.barrierWait
	s.barrierWait = nil
	s.barrierArrived = 0
	for _, resume := range waiters {
		resume := resume
		s.eng.Schedule(1, resume)
	}
}
