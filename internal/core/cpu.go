package core

import (
	"protozoa/internal/engine"
	"protozoa/internal/trace"
)

// cpu is one in-order core (Table 4: 16-way, in-order). It retires one
// think-instruction per cycle and blocks on L1 misses, so execution
// time differences between protocols come from miss behaviour — the
// same first-order model the paper's in-order configuration yields.
//
// Because the core is in-order it has at most one reference in flight,
// so its scheduling state lives in two reusable event structs (think
// delay, barrier resume) and a pending-access slot instead of
// per-access closures — the hot path allocates nothing per reference.
type cpu struct {
	id       int
	sys      *System
	tl       *tile
	stream   trace.Stream
	storeSeq uint64
	done     bool

	// pend is the access currently in flight (filled by step, consumed
	// by issueAccess/complete); pendVal is the token a pending store
	// writes.
	pend    trace.Access
	pendVal uint64

	accessEv cpuAccess // fused think-delay + L1-lookup event
	stepEv   cpuStep   // resumes the stream (kickoff and barrier release)
}

// cpuAccess is the fused per-access event. step schedules it at
// +Think+L1HitLat for memory references — the cycle the old
// thinkEv→resolveEv pair resolved the L1 lookup — and at +Think for
// barrier arrivals. Issue accounting and the lookup both happen at
// fire time, so each reference costs one queue round trip instead of
// two; lookup/complete/miss-issue cycles are unchanged (the lookup
// always happened at resolve time), only same-cycle seq tie-breaks
// shift.
type cpuAccess struct {
	s *System
	c *cpu
}

func (ev *cpuAccess) Run() {
	if ev.c.pend.Kind == trace.Barrier {
		ev.s.arriveBarrier(ev.c)
	} else {
		ev.s.issueAccess(ev.c)
	}
}

// cpuStep resumes a core's trace stream.
type cpuStep struct {
	s *System
	c *cpu
}

func (ev *cpuStep) Run() { ev.s.step(ev.c) }

// storeToken produces the unique value a store writes; the random
// tester uses it to validate coherence end to end.
func (c *cpu) storeToken() uint64 {
	c.storeSeq++
	return uint64(c.id+1)<<40 | c.storeSeq
}

// complete finishes the in-flight reference: fire the observer hooks
// with the bound value and advance the stream. It implements the
// completer interface the L1 invokes when an access resolves.
func (c *cpu) complete(val uint64) {
	s := c.sys
	if s.obs != nil {
		switch c.pend.Kind {
		case trace.Store:
			s.obs.OnStore(c.id, c.pend.Addr, c.pendVal)
		case trace.RMW:
			// Observed as both a load of the old value and a store of
			// old+1 (atomic fetch-and-increment).
			s.obs.OnLoad(c.id, c.pend.Addr, val)
			s.obs.OnStore(c.id, c.pend.Addr, val+1)
		default:
			s.obs.OnLoad(c.id, c.pend.Addr, val)
		}
	}
	s.step(c)
}

// step advances a core to its next trace record.
func (s *System) step(c *cpu) {
	t := c.tl
	a, ok := c.stream.Next()
	if !ok {
		c.done = true
		if s.pdes {
			// The window coordinator counts finished tiles and releases
			// barriers at window edges; retirement is per tile.
			t.coreDone = true
			t.retire = t.eng.Now()
			return
		}
		s.coresDone++
		if s.coresDone == s.cfg.Cores {
			// Execution time is the last core's retirement; the queue
			// may still drain trailing unblocks/writebacks afterwards.
			s.lastRetire = s.eng.Now()
		}
		s.releaseBarrierIfReady()
		return
	}
	c.pend = a
	var delay engine.Cycle
	switch a.Kind {
	case trace.Barrier:
		t.st.Instructions += uint64(a.Think)
		delay = engine.Cycle(a.Think)
	case trace.Load, trace.Store, trace.RMW:
		t.st.Instructions += uint64(a.Think) + 1
		delay = engine.Cycle(a.Think) + s.cfg.L1HitLat
	default:
		panic("core: unknown trace record kind")
	}
	t.eng.ScheduleRunner(delay, &c.accessEv)
}

func (s *System) issueAccess(c *cpu) {
	a := c.pend
	t := c.tl
	t.st.Accesses++
	cs := &t.st.PerCore[c.id]
	cs.Accesses++
	switch a.Kind {
	case trace.Store:
		t.st.Stores++
		cs.Stores++
		c.pendVal = c.storeToken()
		s.l1s[c.id].resolve(a.Addr, accWrite, a.PC, c.pendVal, c)
	case trace.RMW:
		// Atomic fetch-and-increment: counted as a store (it acquires
		// write permission) and observed as both a load of the old
		// value and a store of old+1.
		t.st.Stores++
		t.st.RMWs++
		cs.Stores++
		s.l1s[c.id].resolve(a.Addr, accRMW, a.PC, 0, c)
	default:
		t.st.Loads++
		cs.Loads++
		s.l1s[c.id].resolve(a.Addr, accRead, a.PC, 0, c)
	}
}

// arriveBarrier parks the core until every live core reaches the
// barrier. Cores whose streams already finished count as arrived, so a
// workload may give cores unequal record counts after their last
// common barrier. Under PDES arrival is per-tile state; the window
// coordinator performs the global count and release at window edges.
func (s *System) arriveBarrier(c *cpu) {
	if s.pdes {
		c.tl.barrierArrived = true
		return
	}
	s.barrierArrived++
	s.barrierWait = append(s.barrierWait, c)
	s.releaseBarrierIfReady()
}

func (s *System) releaseBarrierIfReady() {
	if s.barrierArrived == 0 || s.barrierArrived+s.coresDone < s.cfg.Cores {
		return
	}
	waiters := s.barrierWait
	s.barrierWait = s.barrierWait[:0]
	s.barrierArrived = 0
	for _, c := range waiters {
		s.eng.ScheduleRunner(1, &c.stepEv)
	}
}
