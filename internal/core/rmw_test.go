package core

// Atomic read-modify-write tests: RMW is fetch-and-increment under a
// single write-permission acquisition, so concurrent increments to a
// shared counter must never lose an update — the classic coherence
// atomicity check, and a direct consequence of the SWMR invariant.

import (
	"bytes"
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

func rmw(addr mem.Addr) trace.Access {
	return trace.Access{Kind: trace.RMW, Addr: addr, PC: 0x600}
}

func roundTripStreams(t *testing.T, perCore [][]trace.Access) []trace.Stream {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteTraces(&buf, perCore); err != nil {
		t.Fatal(err)
	}
	streams, err := trace.ReadStreams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return streams
}

func TestRMWSingleCoreSemantics(t *testing.T) {
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 1)
			streams := []trace.Stream{trace.NewSliceStream([]trace.Access{
				rmw(0x100), rmw(0x100), rmw(0x100), ld(0x100),
			})}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			rec := &loadRecorder{}
			sys.SetObserver(rec)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			// OnLoad fires for each RMW's old value (0, 1, 2) and then
			// for the final load (3).
			if len(rec.loads) != 4 || rec.loads[3].val != 3 {
				t.Errorf("loads = %+v, want final value 3", rec.loads)
			}
			s := sys.Stats()
			if s.RMWs != 3 || s.Stores != 3 || s.Loads != 1 {
				t.Errorf("RMWs/Stores/Loads = %d/%d/%d, want 3/3/1", s.RMWs, s.Stores, s.Loads)
			}
			// Second and third increments hit in M.
			if s.L1Misses != 1 {
				t.Errorf("misses = %d, want 1", s.L1Misses)
			}
		})
	}
}

func TestRMWNoLostUpdates(t *testing.T) {
	// Four cores hammer one shared counter; the final value must be
	// exactly the total number of increments under every protocol and
	// extension combination.
	const perCore = 150
	configs := map[string]func(*Config){
		"baseline": func(*Config) {},
		"threehop": func(c *Config) { c.ThreeHop = true },
		"bloom":    func(c *Config) { c.Directory = DirBloom },
	}
	for name, mutate := range configs {
		for _, p := range AllProtocols {
			t.Run(p.String()+"/"+name, func(t *testing.T) {
				cfg := testConfig(p, 4)
				mutate(&cfg)
				streams := make([]trace.Stream, 4)
				for c := 0; c < 4; c++ {
					var recs []trace.Access
					for i := 0; i < perCore; i++ {
						recs = append(recs, rmw(0x2000))
					}
					recs = append(recs, trace.Access{Kind: trace.Barrier})
					if c == 0 {
						recs = append(recs, ld(0x2000))
					}
					streams[c] = trace.NewSliceStream(recs)
				}
				sys, err := NewSystem(cfg, streams)
				if err != nil {
					t.Fatal(err)
				}
				rec := &loadRecorder{}
				sys.SetObserver(rec)
				if err := sys.Run(); err != nil {
					t.Fatal(err)
				}
				// Every RMW also observes its pre-increment value, so the
				// final plain load is the last recorded event.
				want := uint64(4 * perCore)
				last := rec.loads[len(rec.loads)-1]
				if last.val != want {
					t.Errorf("counter = %d, want %d (lost updates!)", last.val, want)
				}
			})
		}
	}
}

func TestRMWUpgradePath(t *testing.T) {
	// Read first (S copy), then RMW: the increment goes through the
	// UPGRADE path and must still see the coherent old value.
	for _, p := range AllProtocols {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 2)
			streams := []trace.Stream{
				trace.NewSliceStream([]trace.Access{
					{Kind: trace.Barrier}, ld(0x3000), rmw(0x3000), {Kind: trace.Barrier}, ld(0x3000),
				}),
				trace.NewSliceStream([]trace.Access{
					rmw(0x3000), {Kind: trace.Barrier}, {Kind: trace.Barrier},
				}),
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			rec := &loadRecorder{}
			sys.SetObserver(rec)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			// Core 1 incremented to 1; core 0 read 1, incremented to 2,
			// and read 2 back.
			last := rec.loads[len(rec.loads)-1]
			if last.val != 2 {
				t.Errorf("final value = %d, want 2", last.val)
			}
		})
	}
}

func TestRMWTraceFileRoundTrip(t *testing.T) {
	// RMW records survive the PZTR format.
	perCore := [][]trace.Access{{rmw(0x40), {Kind: trace.Barrier}, rmw(0x48)}}
	streams := roundTripStreams(t, perCore)
	a, _ := streams[0].Next()
	if a.Kind != trace.RMW || a.Addr != 0x40 {
		t.Errorf("record = %+v", a)
	}
}

func TestRMWRandomStress(t *testing.T) {
	// Random mix including RMWs under the full checker: golden-value
	// tracking follows the fetch-and-increment semantics.
	for _, p := range AllProtocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig(p, 4)
			cfg.MaxEvents = 5_000_000
			streams := make([]trace.Stream, 4)
			for c := 0; c < 4; c++ {
				rng := trace.NewRNG(uint64(9000 + c))
				var recs []trace.Access
				for i := 0; i < 1200; i++ {
					addr := mem.Addr(rng.Intn(8)*64 + rng.Intn(8)*8)
					a := trace.Access{Addr: addr, PC: uint64(0x400 + rng.Intn(4)*4)}
					switch r := rng.Intn(100); {
					case r < 40:
						a.Kind = trace.Load
					case r < 70:
						a.Kind = trace.Store
					default:
						a.Kind = trace.RMW
					}
					recs = append(recs, a)
				}
				streams[c] = trace.NewSliceStream(recs)
			}
			sys, err := NewSystem(cfg, streams)
			if err != nil {
				t.Fatal(err)
			}
			chk := newChecker(t, sys)
			if err := sys.Run(); err != nil {
				t.Fatal(err)
			}
			if chk.Loads == 0 {
				t.Error("checker observed no loads")
			}
		})
	}
}
