package trace

// Trace file format: the serialized equivalent of the paper's
// Pin-generated traces, so workloads can be captured once and replayed
// into the simulator (or inspected offline with protozoa-trace).
//
// Layout (little-endian, varint-compressed):
//
//	magic   "PZTR"         4 bytes
//	version uvarint        (currently 1)
//	cores   uvarint
//	for each core:
//	    records uvarint
//	    records x {
//	        kind  byte       (Load/Store/Barrier)
//	        think uvarint
//	        addr  uvarint    (delta-from-previous, zig-zag)  [not for Barrier]
//	        pc    uvarint    (delta-from-previous, zig-zag)  [not for Barrier]
//	    }
//
// Address and PC streams are delta-encoded because real traces are
// dominated by small strides; zig-zag keeps negative deltas short.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"protozoa/internal/mem"
)

const (
	fileMagic   = "PZTR"
	fileVersion = 1
)

func zigzag(v int64) uint64   { return uint64((v << 1) ^ (v >> 63)) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteTraces serializes per-core record slices to w.
func WriteTraces(w io.Writer, perCore [][]Access) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(fileVersion); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(perCore))); err != nil {
		return err
	}
	for _, recs := range perCore {
		if err := putUvarint(uint64(len(recs))); err != nil {
			return err
		}
		var prevAddr, prevPC int64
		for _, a := range recs {
			if err := bw.WriteByte(byte(a.Kind)); err != nil {
				return err
			}
			if err := putUvarint(uint64(a.Think)); err != nil {
				return err
			}
			if a.Kind == Barrier {
				continue
			}
			if err := putUvarint(zigzag(int64(a.Addr) - prevAddr)); err != nil {
				return err
			}
			prevAddr = int64(a.Addr)
			if err := putUvarint(zigzag(int64(a.PC) - prevPC)); err != nil {
				return err
			}
			prevPC = int64(a.PC)
		}
	}
	return bw.Flush()
}

// ReadTraces parses a trace file into per-core record slices.
func ReadTraces(r io.Reader) ([][]Access, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading version: %w", err)
	}
	if version != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	cores, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading core count: %w", err)
	}
	if cores > 1024 {
		return nil, fmt.Errorf("trace: implausible core count %d", cores)
	}
	out := make([][]Access, cores)
	for c := range out {
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: core %d record count: %w", c, err)
		}
		if count > 1<<28 {
			return nil, fmt.Errorf("trace: implausible record count %d for core %d", count, c)
		}
		// Grow incrementally: the count is untrusted input, so never
		// preallocate more than a bounded chunk up front.
		prealloc := count
		if prealloc > 4096 {
			prealloc = 4096
		}
		recs := make([]Access, 0, prealloc)
		var prevAddr, prevPC int64
		for i := uint64(0); i < count; i++ {
			kind, err := br.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("trace: core %d record %d kind: %w", c, i, err)
			}
			if Kind(kind) > RMW {
				return nil, fmt.Errorf("trace: core %d record %d: bad kind %d", c, i, kind)
			}
			think, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: core %d record %d think: %w", c, i, err)
			}
			a := Access{Kind: Kind(kind), Think: uint16(think)}
			if a.Kind != Barrier {
				d, err := binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("trace: core %d record %d addr: %w", c, i, err)
				}
				prevAddr += unzigzag(d)
				a.Addr = mem.Addr(prevAddr)
				d, err = binary.ReadUvarint(br)
				if err != nil {
					return nil, fmt.Errorf("trace: core %d record %d pc: %w", c, i, err)
				}
				prevPC += unzigzag(d)
				a.PC = uint64(prevPC)
			}
			recs = append(recs, a)
		}
		out[c] = recs
	}
	return out, nil
}

// ReadStreams is ReadTraces adapted to the Stream interface.
func ReadStreams(r io.Reader) ([]Stream, error) {
	perCore, err := ReadTraces(r)
	if err != nil {
		return nil, err
	}
	streams := make([]Stream, len(perCore))
	for i, recs := range perCore {
		streams[i] = NewSliceStream(recs)
	}
	return streams, nil
}
