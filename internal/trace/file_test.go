package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"protozoa/internal/mem"
)

func roundTrip(t *testing.T, perCore [][]Access) [][]Access {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTraces(&buf, perCore); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestFileRoundTrip(t *testing.T) {
	perCore := [][]Access{
		{
			{Kind: Load, Addr: 0x1000, PC: 0x400, Think: 2},
			{Kind: Store, Addr: 0x1008, PC: 0x404, Think: 0},
			{Kind: Barrier, Think: 1},
			{Kind: Load, Addr: 0x40, PC: 0x500}, // negative address delta
		},
		{}, // an idle core
		{
			{Kind: Store, Addr: 0xFFFF_FFF8, PC: 0x99999, Think: 65535},
		},
	}
	got := roundTrip(t, perCore)
	if len(got) != len(perCore) {
		t.Fatalf("cores = %d, want %d", len(got), len(perCore))
	}
	for c := range perCore {
		if len(got[c]) != len(perCore[c]) {
			t.Fatalf("core %d: %d records, want %d", c, len(got[c]), len(perCore[c]))
		}
		for i := range perCore[c] {
			if got[c][i] != perCore[c][i] {
				t.Fatalf("core %d record %d: %+v != %+v", c, i, got[c][i], perCore[c][i])
			}
		}
	}
}

func TestFileRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOPE\x01\x01",
		"truncated": "PZTR\x01",
	}
	for name, in := range cases {
		if _, err := ReadTraces(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestFileRejectsBadKind(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("PZTR")
	buf.WriteByte(1) // version
	buf.WriteByte(1) // cores
	buf.WriteByte(1) // records
	buf.WriteByte(9) // bad kind
	buf.WriteByte(0) // think
	if _, err := ReadTraces(&buf); err == nil {
		t.Error("bad kind accepted")
	}
}

func TestFileRejectsImplausibleCoreCount(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("PZTR")
	buf.WriteByte(1)                 // version
	buf.Write([]byte{0xFF, 0xFF, 3}) // cores = huge varint
	if _, err := ReadTraces(&buf); err == nil {
		t.Error("implausible core count accepted")
	}
}

func TestReadStreams(t *testing.T) {
	perCore := [][]Access{{{Kind: Load, Addr: 8, PC: 1}}}
	var buf bytes.Buffer
	if err := WriteTraces(&buf, perCore); err != nil {
		t.Fatal(err)
	}
	streams, err := ReadStreams(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := streams[0].Next()
	if !ok || a.Addr != 8 {
		t.Fatalf("stream record = %+v, %v", a, ok)
	}
}

func TestQuickFileRoundTrip(t *testing.T) {
	f := func(seed uint64, nCores uint8) bool {
		rng := NewRNG(seed)
		cores := int(nCores%4) + 1
		perCore := make([][]Access, cores)
		for c := range perCore {
			n := rng.Intn(50)
			for i := 0; i < n; i++ {
				a := Access{
					Kind:  Kind(rng.Intn(3)),
					Think: uint16(rng.Intn(100)),
				}
				if a.Kind != Barrier {
					a.Addr = mem.Addr(rng.Next() % (1 << 40))
					a.PC = rng.Next() % (1 << 30)
				}
				perCore[c] = append(perCore[c], a)
			}
		}
		var buf bytes.Buffer
		if err := WriteTraces(&buf, perCore); err != nil {
			return false
		}
		got, err := ReadTraces(&buf)
		if err != nil || len(got) != cores {
			return false
		}
		for c := range perCore {
			if len(got[c]) != len(perCore[c]) {
				return false
			}
			for i := range perCore[c] {
				if got[c][i] != perCore[c][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
