package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTraces: arbitrary bytes must never panic the trace parser —
// they either parse or return an error.
func FuzzReadTraces(f *testing.F) {
	// Seed with a valid file and a few near-misses.
	var valid bytes.Buffer
	_ = WriteTraces(&valid, [][]Access{
		{{Kind: Load, Addr: 0x1000, PC: 0x400, Think: 2}, {Kind: Barrier}},
		{{Kind: Store, Addr: 0x40, PC: 0x8}},
	})
	f.Add(valid.Bytes())
	f.Add([]byte("PZTR"))
	f.Add([]byte("PZTR\x01\x01\x01\x09\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		perCore, err := ReadTraces(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever parsed must round-trip.
		var buf bytes.Buffer
		if err := WriteTraces(&buf, perCore); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadTraces(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(perCore) {
			t.Fatalf("round trip changed core count")
		}
	})
}
