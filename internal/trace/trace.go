// Package trace defines the memory-reference streams the simulated
// cores execute. It replaces the paper's Pin-based trace front end:
// instead of tracing real binaries, workload generators produce
// deterministic per-core streams of loads, stores, and barriers that
// reproduce the sharing and spatial-locality signatures of the paper's
// benchmark suite (see internal/workloads).
package trace

import "protozoa/internal/mem"

// Kind classifies a trace record.
type Kind uint8

const (
	// Load is a memory read of one word.
	Load Kind = iota
	// Store is a memory write of one word.
	Store
	// Barrier makes the core wait until every core reaches the same
	// barrier before continuing (models pthread/OpenMP barriers).
	Barrier
	// RMW is an atomic read-modify-write (fetch-and-increment): the
	// core reads the word and writes back old+1 under one write
	// permission acquisition — the primitive behind the locks and
	// atomic counters in the paper's pthreads/OpenMP workloads.
	RMW
)

// Access is one record of a core's instruction stream: Think non-memory
// instructions followed by one memory reference (or a barrier).
type Access struct {
	Kind  Kind
	Addr  mem.Addr // byte address of the referenced word (Load/Store)
	PC    uint64   // static instruction address, feeds the predictor
	Think uint16   // non-memory instructions retired before this record
}

// Stream produces a core's accesses lazily. Implementations must be
// deterministic: two iterations of the same workload yield identical
// streams.
type Stream interface {
	// Next returns the next access; ok is false when the stream ends.
	Next() (a Access, ok bool)
}

// SliceStream adapts a materialized access slice to a Stream.
type SliceStream struct {
	recs []Access
	pos  int
}

// NewSliceStream wraps recs.
func NewSliceStream(recs []Access) *SliceStream { return &SliceStream{recs: recs} }

// Next implements Stream.
func (s *SliceStream) Next() (Access, bool) {
	if s.pos >= len(s.recs) {
		return Access{}, false
	}
	a := s.recs[s.pos]
	s.pos++
	return a, true
}

// FuncStream adapts a generator function to a Stream.
type FuncStream func() (Access, bool)

// Next implements Stream.
func (f FuncStream) Next() (Access, bool) { return f() }

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and
// deterministic across platforms, so every workload stream is exactly
// reproducible.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 random bits.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	return int(r.Next() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}
