package trace

import "testing"

func TestSliceStream(t *testing.T) {
	recs := []Access{
		{Kind: Load, Addr: 0x100},
		{Kind: Store, Addr: 0x108},
		{Kind: Barrier},
	}
	s := NewSliceStream(recs)
	for i := range recs {
		a, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if a != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, a, recs[i])
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("stream did not end")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream restarted")
	}
}

func TestFuncStream(t *testing.T) {
	n := 0
	s := FuncStream(func() (Access, bool) {
		if n >= 2 {
			return Access{}, false
		}
		n++
		return Access{Kind: Load, Addr: 8}, true
	})
	count := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		count++
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds agree on %d/100 draws", same)
	}
}

func TestRNGIntnInRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
}

func TestRNGFloat64InRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of range", v)
		}
	}
}
