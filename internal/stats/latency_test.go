package stats

import "testing"

func TestRecordMissLatency(t *testing.T) {
	var s Stats
	s.L1Misses = 4
	for _, lat := range []uint64{1, 10, 100, 1000} {
		s.RecordMissLatency(lat)
	}
	if s.MissLatencySum != 1111 || s.MissLatencyMax != 1000 {
		t.Errorf("sum/max = %d/%d", s.MissLatencySum, s.MissLatencyMax)
	}
	if got := s.AvgMissLatency(); got != 1111.0/4 {
		t.Errorf("avg = %v", got)
	}
}

func TestMissLatencyBuckets(t *testing.T) {
	var s Stats
	s.RecordMissLatency(1)    // bucket 0
	s.RecordMissLatency(2)    // bucket 1
	s.RecordMissLatency(3)    // bucket 1
	s.RecordMissLatency(1024) // bucket 10
	if s.MissLatencyHist[0] != 1 || s.MissLatencyHist[1] != 2 || s.MissLatencyHist[10] != 1 {
		t.Errorf("hist = %v", s.MissLatencyHist[:12])
	}
}

func TestMissLatencyPercentiles(t *testing.T) {
	var s Stats
	for i := 0; i < 90; i++ {
		s.RecordMissLatency(40) // bucket 5, upper bound 64
	}
	for i := 0; i < 10; i++ {
		s.RecordMissLatency(500) // bucket 8, upper bound 512
	}
	if p := s.MissLatencyP(50); p != 64 {
		t.Errorf("p50 = %d, want 64", p)
	}
	// Bucket 8's upper bound is 512, but no latency above 500 was ever
	// recorded, so the bound clamps to the observed maximum.
	if p := s.MissLatencyP(95); p != 500 {
		t.Errorf("p95 = %d, want 500", p)
	}
	var empty Stats
	if empty.MissLatencyP(50) != 0 || empty.AvgMissLatency() != 0 {
		t.Error("empty stats percentile not zero")
	}
}

func TestMissLatencyPercentileClamps(t *testing.T) {
	tests := []struct {
		name      string
		latencies []uint64
		p         float64
		want      uint64
	}{
		{"zero-cycle", []uint64{0, 0, 0}, 100, 0},
		{"one-cycle", []uint64{1, 1, 1}, 100, 1},
		{"zero-and-one", []uint64{0, 1}, 50, 1},
		{"single-mid-bucket", []uint64{5}, 100, 5},
		{"mixed-small", []uint64{1, 5}, 50, 2},
		{"overflow-bucket", []uint64{1<<23 + 10}, 100, 1<<23 + 10},
		{"overflow-above-cap", []uint64{1<<24 + 5}, 100, 1 << 24},
		{"mid-bucket-not-clamped", []uint64{40, 1000}, 50, 64},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			var s Stats
			for _, l := range tc.latencies {
				s.RecordMissLatency(l)
			}
			if got := s.MissLatencyP(tc.p); got != tc.want {
				t.Errorf("P%g(%v) = %d, want %d", tc.p, tc.latencies, got, tc.want)
			}
		})
	}
}

func TestMissLatencyHugeValueClamps(t *testing.T) {
	var s Stats
	s.RecordMissLatency(1 << 40) // beyond the last bucket
	if s.MissLatencyHist[len(s.MissLatencyHist)-1] != 1 {
		t.Error("huge latency not clamped to last bucket")
	}
}
