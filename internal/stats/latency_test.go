package stats

import "testing"

func TestRecordMissLatency(t *testing.T) {
	var s Stats
	s.L1Misses = 4
	for _, lat := range []uint64{1, 10, 100, 1000} {
		s.RecordMissLatency(lat)
	}
	if s.MissLatencySum != 1111 || s.MissLatencyMax != 1000 {
		t.Errorf("sum/max = %d/%d", s.MissLatencySum, s.MissLatencyMax)
	}
	if got := s.AvgMissLatency(); got != 1111.0/4 {
		t.Errorf("avg = %v", got)
	}
}

func TestMissLatencyBuckets(t *testing.T) {
	var s Stats
	s.RecordMissLatency(1)    // bucket 0
	s.RecordMissLatency(2)    // bucket 1
	s.RecordMissLatency(3)    // bucket 1
	s.RecordMissLatency(1024) // bucket 10
	if s.MissLatencyHist[0] != 1 || s.MissLatencyHist[1] != 2 || s.MissLatencyHist[10] != 1 {
		t.Errorf("hist = %v", s.MissLatencyHist[:12])
	}
}

func TestMissLatencyPercentiles(t *testing.T) {
	var s Stats
	for i := 0; i < 90; i++ {
		s.RecordMissLatency(40) // bucket 5, upper bound 64
	}
	for i := 0; i < 10; i++ {
		s.RecordMissLatency(500) // bucket 8, upper bound 512
	}
	if p := s.MissLatencyP(50); p != 64 {
		t.Errorf("p50 = %d, want 64", p)
	}
	if p := s.MissLatencyP(95); p != 512 {
		t.Errorf("p95 = %d, want 512", p)
	}
	var empty Stats
	if empty.MissLatencyP(50) != 0 || empty.AvgMissLatency() != 0 {
		t.Error("empty stats percentile not zero")
	}
}

func TestMissLatencyHugeValueClamps(t *testing.T) {
	var s Stats
	s.RecordMissLatency(1 << 40) // beyond the last bucket
	if s.MissLatencyHist[len(s.MissLatencyHist)-1] != 1 {
		t.Error("huge latency not clamped to last bucket")
	}
}
