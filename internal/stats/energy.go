package stats

import (
	"fmt"
	"strings"
)

// EnergyModel converts event counts into dynamic energy. The paper
// reports interconnect energy as flit-hops (Figure 15, citing the WETI
// report that on-chip networks reach 28% of chip power); this model
// extends the proxy to the whole memory system with per-event
// coefficients so protocol comparisons can be expressed in joules.
// The defaults are representative 32 nm-era figures; they are knobs,
// not measurements — relative comparisons are the point.
type EnergyModel struct {
	FlitHopPJ  float64 // per flit per hop (link + router traversal)
	L1AccessPJ float64 // per L1 lookup (hit or miss)
	L2AccessPJ float64 // per L2/directory activation
	MemPJ      float64 // per off-chip memory access
}

// DefaultEnergyModel returns the representative coefficients.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{FlitHopPJ: 12, L1AccessPJ: 8, L2AccessPJ: 40, MemPJ: 2000}
}

// EnergyBreakdown is the per-component estimate in nanojoules.
type EnergyBreakdown struct {
	NetworkNJ float64
	L1NJ      float64
	L2NJ      float64
	MemNJ     float64
}

// Total sums the components.
func (e EnergyBreakdown) Total() float64 {
	return e.NetworkNJ + e.L1NJ + e.L2NJ + e.MemNJ
}

// String renders the breakdown.
func (e EnergyBreakdown) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "network %.1f nJ, L1 %.1f nJ, L2 %.1f nJ, memory %.1f nJ (total %.1f nJ)",
		e.NetworkNJ, e.L1NJ, e.L2NJ, e.MemNJ, e.Total())
	return b.String()
}

// Estimate applies the model to a run's counters. L1 activity is the
// demand accesses plus the probes the protocol sent there; L2 activity
// is every transaction activation (misses) plus writeback patches;
// memory is first-touch reads, non-inclusive re-fetches, and eviction
// writebacks.
func (m EnergyModel) Estimate(s *Stats) EnergyBreakdown {
	l1Events := float64(s.Accesses + s.InvMsgs + s.Invalidations)
	l2Events := float64(s.L1Misses + s.Writebacks)
	memEvents := float64(s.MemReads + s.MemFetches + s.MemWritebacks)
	return EnergyBreakdown{
		NetworkNJ: float64(s.FlitHops) * m.FlitHopPJ / 1000,
		L1NJ:      l1Events * m.L1AccessPJ / 1000,
		L2NJ:      l2Events * m.L2AccessPJ / 1000,
		MemNJ:     memEvents * m.MemPJ / 1000,
	}
}
