package stats

import (
	"strings"
	"testing"
)

func TestEnergyEstimate(t *testing.T) {
	m := EnergyModel{FlitHopPJ: 10, L1AccessPJ: 5, L2AccessPJ: 50, MemPJ: 1000}
	s := &Stats{
		FlitHops: 1000, Accesses: 200, InvMsgs: 10, Invalidations: 10,
		L1Misses: 40, Writebacks: 10, MemReads: 3, MemFetches: 1, MemWritebacks: 1,
	}
	e := m.Estimate(s)
	if e.NetworkNJ != 10.0 {
		t.Errorf("network = %v, want 10", e.NetworkNJ)
	}
	if e.L1NJ != 220*5/1000.0 {
		t.Errorf("L1 = %v", e.L1NJ)
	}
	if e.L2NJ != 50*50/1000.0 {
		t.Errorf("L2 = %v", e.L2NJ)
	}
	if e.MemNJ != 5.0 {
		t.Errorf("mem = %v, want 5", e.MemNJ)
	}
	if e.Total() != e.NetworkNJ+e.L1NJ+e.L2NJ+e.MemNJ {
		t.Error("total mismatch")
	}
	if !strings.Contains(e.String(), "network") || !strings.Contains(e.String(), "total") {
		t.Errorf("String = %q", e.String())
	}
}

func TestDefaultEnergyModelSane(t *testing.T) {
	m := DefaultEnergyModel()
	if m.FlitHopPJ <= 0 || m.MemPJ < m.L2AccessPJ || m.L2AccessPJ < m.L1AccessPJ {
		t.Errorf("implausible defaults %+v", m)
	}
}
