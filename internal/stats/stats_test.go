package stats

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMPKI(t *testing.T) {
	s := Stats{Instructions: 10_000, L1Misses: 25}
	if !almostEq(s.MPKI(), 2.5) {
		t.Errorf("MPKI = %v, want 2.5", s.MPKI())
	}
	var zero Stats
	if zero.MPKI() != 0 {
		t.Error("MPKI with zero instructions should be 0")
	}
}

func TestUsedPct(t *testing.T) {
	s := Stats{UsedDataBytes: 30, UnusedDataBytes: 70}
	if !almostEq(s.UsedPct(), 30) {
		t.Errorf("UsedPct = %v, want 30", s.UsedPct())
	}
	var zero Stats
	if zero.UsedPct() != 0 {
		t.Error("UsedPct with no data should be 0")
	}
}

func TestControlTotals(t *testing.T) {
	var s Stats
	s.AddControl(ClassREQ, 8)
	s.AddControl(ClassACK, 8)
	s.AddControl(ClassACK, 8)
	if s.ControlTotal() != 24 {
		t.Errorf("ControlTotal = %d, want 24", s.ControlTotal())
	}
	s.UsedDataBytes = 16
	s.UnusedDataBytes = 8
	if s.TrafficTotal() != 48 {
		t.Errorf("TrafficTotal = %d, want 48", s.TrafficTotal())
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{
		ClassREQ: "REQ", ClassFWD: "FWD", ClassINV: "INV",
		ClassACK: "ACK", ClassNACK: "NACK", ClassDATA: "DATAHDR", ClassWB: "WBHDR",
	}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
	if Class(200).String() == "" {
		t.Error("unknown class should still render")
	}
}

func TestRecordFillAndBuckets(t *testing.T) {
	var s Stats
	s.RecordFill(1)
	s.RecordFill(2)
	s.RecordFill(4)
	s.RecordFill(8)
	b := s.BlockDistBuckets()
	if !almostEq(b[0], 50) || !almostEq(b[1], 25) || !almostEq(b[2], 0) || !almostEq(b[3], 25) {
		t.Errorf("buckets = %v, want [50 25 0 25]", b)
	}
	s.RecordFill(0)  // ignored
	s.RecordFill(17) // ignored
	var total uint64
	for _, n := range s.BlockSizeHist {
		total += n
	}
	if total != 4 {
		t.Errorf("histogram total = %d, want 4", total)
	}
}

func TestBlockDistFoldsWideBlocks(t *testing.T) {
	var s Stats
	s.RecordFill(16) // 128-byte block folds into the 7-8 bucket
	b := s.BlockDistBuckets()
	if !almostEq(b[3], 100) {
		t.Errorf("wide block bucket = %v, want 100 in last", b)
	}
}

func TestOwnerMix(t *testing.T) {
	s := Stats{DirOwnerOneOnly: 1, DirOwnerPlusSharers: 1, DirMultiOwner: 2}
	a, b, c := s.OwnerMix()
	if !almostEq(a, 25) || !almostEq(b, 25) || !almostEq(c, 50) {
		t.Errorf("OwnerMix = %v %v %v, want 25 25 50", a, b, c)
	}
	var zero Stats
	a, b, c = zero.OwnerMix()
	if a != 0 || b != 0 || c != 0 {
		t.Error("OwnerMix on empty stats should be zeros")
	}
}

func TestMissRatePct(t *testing.T) {
	s := Stats{Accesses: 200, L1Misses: 10}
	if !almostEq(s.MissRatePct(), 5) {
		t.Errorf("MissRatePct = %v, want 5", s.MissRatePct())
	}
}
