package stats

import (
	"fmt"
	"reflect"
)

// Merge folds another run shard into s — the PDES per-tile stats merge.
// Every counter is additive except MissLatencyMax and ExecCycles, which
// take the maximum. The walk is reflective so a newly added Stats field
// cannot be dropped silently: a field kind the merge does not know how
// to combine panics (and the package test exercises every field).
func (s *Stats) Merge(o *Stats) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(o).Elem()
	t := sv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		dst, src := sv.Field(i), ov.Field(i)
		switch {
		case f.Name == "MissLatencyMax" || f.Name == "ExecCycles":
			if src.Uint() > dst.Uint() {
				dst.SetUint(src.Uint())
			}
		case f.Type.Kind() == reflect.Uint64:
			dst.SetUint(dst.Uint() + src.Uint())
		case f.Type.Kind() == reflect.Array && f.Type.Elem().Kind() == reflect.Uint64:
			for j := 0; j < f.Type.Len(); j++ {
				d := dst.Index(j)
				d.SetUint(d.Uint() + src.Index(j).Uint())
			}
		case f.Name == "PerCore":
			if src.Len() != dst.Len() {
				panic(fmt.Sprintf("stats: merging PerCore slices of length %d and %d",
					dst.Len(), src.Len()))
			}
			for j := 0; j < dst.Len(); j++ {
				dc, sc := dst.Index(j), src.Index(j)
				for k := 0; k < dc.NumField(); k++ {
					d := dc.Field(k)
					d.SetUint(d.Uint() + sc.Field(k).Uint())
				}
			}
		default:
			panic(fmt.Sprintf("stats: Merge cannot combine field %s (%s)", f.Name, f.Type))
		}
	}
}
