// Package stats collects the measurements reported in the paper's
// evaluation: traffic broken down into Used DATA / Unused DATA /
// control-by-class (Figures 9 and 10), miss rates in MPKI (Figure 13,
// Table 1), invalidation counts (Table 1), block-granularity
// distribution (Figure 12), directory owner-state occupancy
// (Figure 11), flit-hops as the interconnect dynamic-energy proxy
// (Figure 15), and execution cycles (Figure 14).
//
// The simulator is single-goroutine per run, so the counters are plain
// integers.
package stats

import "fmt"

// Class labels a control-message byte category, matching the paper's
// Figure 10 breakdown (REQ, FWD, INV, ACK, NACK) plus the identifier
// headers of data-bearing messages, which the paper folds into
// "message and data identifiers".
type Class uint8

const (
	ClassREQ  Class = iota // GETS/GETX/UPGRADE request headers
	ClassFWD               // directory-forwarded requests
	ClassINV               // invalidation probes
	ClassACK               // ACK, ACK-S, GRANT, WB_ACK
	ClassNACK              // negative acks from stale or non-overlapping sharers
	ClassDATA              // headers of DATA/DATA_E messages
	ClassWB                // headers of WBACK/WBACK_LAST messages
	numClasses
)

// String returns the paper's label for the class.
func (c Class) String() string {
	switch c {
	case ClassREQ:
		return "REQ"
	case ClassFWD:
		return "FWD"
	case ClassINV:
		return "INV"
	case ClassACK:
		return "ACK"
	case ClassNACK:
		return "NACK"
	case ClassDATA:
		return "DATAHDR"
	case ClassWB:
		return "WBHDR"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// NumClasses is the number of control classes.
const NumClasses = int(numClasses)

// MaxBlockWords bounds the block-size histogram (128-byte regions have
// 16 words).
const MaxBlockWords = 16

// Stats accumulates one simulation run's measurements.
type Stats struct {
	// Core-side activity.
	Instructions uint64 // retired instructions (memory + think)
	Accesses     uint64 // memory references issued
	Loads        uint64
	Stores       uint64 // includes RMWs (they acquire write permission)
	RMWs         uint64 // atomic read-modify-writes (subset of Stores)

	// L1 behaviour.
	L1Hits   uint64
	L1Misses uint64
	// Miss classification (region granularity): first-ever touch by
	// the core (cold), re-miss after a capacity eviction (capacity),
	// re-miss after a coherence invalidation or upgrade (coherence —
	// the false- and true-sharing misses adaptive coherence targets),
	// or a miss on a word of a partially resident region (granularity
	// — the underfetch cost unique to adaptive storage).
	MissesCold        uint64
	MissesCapacity    uint64
	MissesCoherence   uint64
	MissesGranularity uint64
	Invalidations     uint64 // INV/FWD probes that removed at least one block
	InvMsgs           uint64 // INV probes received, whether or not they hit
	Evictions         uint64 // capacity evictions at the L1
	Writebacks        uint64 // dirty blocks written back (eviction or snoop)
	UpgradeMisses     uint64 // write misses satisfied without data transfer

	// Traffic at the L1s, in bytes (sent plus received), split the way
	// Figure 9 reports it.
	UsedDataBytes   uint64
	UnusedDataBytes uint64
	ControlBytes    [NumClasses]uint64

	// Data-word bookkeeping used to attribute used/unused bytes.
	DataWordsIn  uint64 // words delivered to L1s in DATA messages
	DataWordsOut uint64 // words leaving L1s in WBACK messages

	// Network.
	FlitHops uint64 // Figure 15 energy proxy
	Flits    uint64
	Messages uint64

	// DirectForwards counts 3-hop owner-to-requester data transfers
	// (zero unless the 3-hop option is enabled).
	DirectForwards uint64

	// LinkStallCycles accumulates queueing delay beyond the uncontended
	// latency (zero unless NoC contention modeling is enabled).
	LinkStallCycles uint64

	// MemWritebacks counts L2 regions written back to memory on
	// inclusion evictions (zero with an unbounded L2).
	MemWritebacks uint64
	// Recalls counts L2 inclusion-victim recall transactions.
	Recalls uint64
	// MemFetches counts responses a non-inclusive L2 had to assemble
	// with words re-fetched from memory (Section 6).
	MemFetches uint64
	// MemReads counts first-touch memory fetches at the L2.
	MemReads uint64

	// Fill-granularity histogram, indexed by words-1 (Figure 12).
	BlockSizeHist [MaxBlockWords]uint64

	// Miss latency: total cycles, maximum, and a log2-bucket histogram
	// (bucket k counts misses with latency in [2^k, 2^(k+1))). The
	// paper's Figure 14 argument — parallelism hides the extra misses'
	// latency — is quantified by comparing these across protocols.
	MissLatencySum  uint64
	MissLatencyMax  uint64
	MissLatencyHist [24]uint64

	// Directory owner-state occupancy (Figure 11): every time a request
	// reaches a directory entry in Owned state, record the sharer mix.
	DirOwnerOneOnly     uint64 // 1 owner, no other sharers
	DirOwnerPlusSharers uint64 // 1 owner plus >=1 sharers
	DirMultiOwner       uint64 // >1 owners (Protozoa-MW only)

	// Simulator self-observability (properties of the run's execution,
	// not of the simulated machine): the event queue's deepest
	// occupancy and the count of events that rode the engine's
	// zero-delay fast path. Both are deterministic for a given schedule
	// — identical across worker counts >= 1 and across the two queue
	// implementations — and are summed across PDES tile shards, like
	// the high-water gauge. Set once at the end of Run.
	EventQueueHighWater uint64
	ZeroDelayHits       uint64

	// Outcome.
	ExecCycles uint64

	// PerCore breaks the core-side counters down by core (allocated by
	// the system at construction); the per-core values always sum to
	// the aggregates above.
	PerCore []CoreStats
}

// CoreStats is one core's slice of the run.
type CoreStats struct {
	Accesses      uint64
	Loads         uint64
	Stores        uint64
	Hits          uint64
	Misses        uint64
	Invalidations uint64 // probes that removed blocks from this core's L1
}

// AddControl accrues control bytes of the given class.
func (s *Stats) AddControl(c Class, bytes int) {
	s.ControlBytes[c] += uint64(bytes)
}

// ControlTotal is the sum over all control classes.
func (s *Stats) ControlTotal() uint64 {
	var t uint64
	for _, v := range s.ControlBytes {
		t += v
	}
	return t
}

// DataTotal is used plus unused data bytes.
func (s *Stats) DataTotal() uint64 { return s.UsedDataBytes + s.UnusedDataBytes }

// TrafficTotal is all bytes sent or received at the L1s.
func (s *Stats) TrafficTotal() uint64 { return s.DataTotal() + s.ControlTotal() }

// MPKI is misses per kilo-instruction.
func (s *Stats) MPKI() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.L1Misses) / (float64(s.Instructions) / 1000.0)
}

// UsedPct is the fraction of transferred data the application touched,
// as a percentage (Table 1's USED%).
func (s *Stats) UsedPct() float64 {
	d := s.DataTotal()
	if d == 0 {
		return 0
	}
	return 100 * float64(s.UsedDataBytes) / float64(d)
}

// MissRatePct is misses per access, as a percentage.
func (s *Stats) MissRatePct() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 100 * float64(s.L1Misses) / float64(s.Accesses)
}

// RecordFill updates the block-granularity histogram for a fill of the
// given word count.
func (s *Stats) RecordFill(words int) {
	if words >= 1 && words <= MaxBlockWords {
		s.BlockSizeHist[words-1]++
	}
}

// BlockDistBuckets aggregates the histogram into the paper's Figure 12
// buckets: 1-2, 3-4, 5-6 and 7-8 words (wider blocks from 128-byte
// geometries fold into the last bucket), returned as percentages.
func (s *Stats) BlockDistBuckets() [4]float64 {
	var counts [4]uint64
	var total uint64
	for i, n := range s.BlockSizeHist {
		words := i + 1
		b := (words - 1) / 2
		if b > 3 {
			b = 3
		}
		counts[b] += n
		total += n
	}
	var out [4]float64
	if total == 0 {
		return out
	}
	for i := range counts {
		out[i] = 100 * float64(counts[i]) / float64(total)
	}
	return out
}

// RecordMissLatency accrues one miss's latency in cycles.
func (s *Stats) RecordMissLatency(cycles uint64) {
	s.MissLatencySum += cycles
	if cycles > s.MissLatencyMax {
		s.MissLatencyMax = cycles
	}
	b := 0
	for v := cycles; v > 1 && b < len(s.MissLatencyHist)-1; v >>= 1 {
		b++
	}
	s.MissLatencyHist[b]++
}

// AvgMissLatency is the mean L1 miss latency in cycles.
func (s *Stats) AvgMissLatency() float64 {
	if s.L1Misses == 0 {
		return 0
	}
	return float64(s.MissLatencySum) / float64(s.L1Misses)
}

// MissLatencyP (p in (0,100]) approximates a latency percentile from
// the log2 histogram: the upper bound of the bucket containing it,
// clamped to the observed maximum so 0/1-cycle latencies and the
// overflow bucket never report a bound above any recorded latency.
func (s *Stats) MissLatencyP(p float64) uint64 {
	var total uint64
	for _, c := range s.MissLatencyHist {
		total += c
	}
	if total == 0 {
		return 0
	}
	threshold := uint64(float64(total) * p / 100)
	if threshold == 0 {
		threshold = 1
	}
	var cum uint64
	for b, c := range s.MissLatencyHist {
		cum += c
		if cum >= threshold {
			bound := uint64(1) << uint(b+1)
			if bound > s.MissLatencyMax {
				bound = s.MissLatencyMax
			}
			return bound
		}
	}
	return s.MissLatencyMax
}

// OwnerMix returns the Figure 11 percentages: accesses to Owned-state
// directory entries with exactly one owner and no sharers, one owner
// plus sharers, and more than one owner.
func (s *Stats) OwnerMix() (oneOnly, onePlus, multi float64) {
	total := s.DirOwnerOneOnly + s.DirOwnerPlusSharers + s.DirMultiOwner
	if total == 0 {
		return 0, 0, 0
	}
	f := func(v uint64) float64 { return 100 * float64(v) / float64(total) }
	return f(s.DirOwnerOneOnly), f(s.DirOwnerPlusSharers), f(s.DirMultiOwner)
}
