package stats

import (
	"reflect"
	"testing"
)

// fillDistinct sets every mergeable field of a Stats to a distinct
// nonzero value derived from its field index, so a dropped or
// double-counted field shows up as a wrong sum.
func fillDistinct(s *Stats, base uint64) {
	v := reflect.ValueOf(s).Elem()
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(base + uint64(i))
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(base + uint64(i*100+j))
			}
		case reflect.Slice: // PerCore
			for j := 0; j < f.Len(); j++ {
				cs := f.Index(j)
				for k := 0; k < cs.NumField(); k++ {
					cs.Field(k).SetUint(base + uint64(i*100+j*10+k))
				}
			}
		}
	}
}

// TestMergeCoversEveryField merges two fully populated Stats and walks
// the result reflectively: every additive field must be the exact sum,
// and the two max-semantics fields the maximum. Because Merge panics on
// a field kind it does not recognize, this test also fails the build of
// any future Stats field that silently falls outside the merge.
func TestMergeCoversEveryField(t *testing.T) {
	a := &Stats{PerCore: make([]CoreStats, 2)}
	b := &Stats{PerCore: make([]CoreStats, 2)}
	fillDistinct(a, 1000)
	fillDistinct(b, 5000)
	// Pre-merge copy for expectations; the slice must be deep-copied or
	// it would alias the merged-in-place PerCore backing array.
	pre := *a
	pre.PerCore = append([]CoreStats(nil), a.PerCore...)
	av := reflect.ValueOf(pre)
	a.Merge(b)

	rv := reflect.ValueOf(a).Elem()
	bv := reflect.ValueOf(b).Elem()
	ty := rv.Type()
	for i := 0; i < ty.NumField(); i++ {
		name := ty.Field(i).Name
		got, was, other := rv.Field(i), av.Field(i), bv.Field(i)
		switch {
		case name == "MissLatencyMax" || name == "ExecCycles":
			want := was.Uint()
			if other.Uint() > want {
				want = other.Uint()
			}
			if got.Uint() != want {
				t.Errorf("%s = %d, want max %d", name, got.Uint(), want)
			}
		case got.Kind() == reflect.Uint64:
			if got.Uint() != was.Uint()+other.Uint() {
				t.Errorf("%s = %d, want %d", name, got.Uint(), was.Uint()+other.Uint())
			}
		case got.Kind() == reflect.Array:
			for j := 0; j < got.Len(); j++ {
				if got.Index(j).Uint() != was.Index(j).Uint()+other.Index(j).Uint() {
					t.Errorf("%s[%d] = %d, want %d", name, j,
						got.Index(j).Uint(), was.Index(j).Uint()+other.Index(j).Uint())
				}
			}
		case got.Kind() == reflect.Slice:
			for j := 0; j < got.Len(); j++ {
				gc, wc, oc := got.Index(j), was.Index(j), other.Index(j)
				for k := 0; k < gc.NumField(); k++ {
					if gc.Field(k).Uint() != wc.Field(k).Uint()+oc.Field(k).Uint() {
						t.Errorf("%s[%d].%s = %d, want %d", name, j, gc.Type().Field(k).Name,
							gc.Field(k).Uint(), wc.Field(k).Uint()+oc.Field(k).Uint())
					}
				}
			}
		default:
			t.Errorf("field %s has kind %s the coverage walk does not model", name, got.Kind())
		}
	}
}

func TestMergePerCoreLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched PerCore lengths did not panic")
		}
	}()
	a := &Stats{PerCore: make([]CoreStats, 2)}
	b := &Stats{PerCore: make([]CoreStats, 3)}
	a.Merge(b)
}
