package stats

import (
	"encoding/json"
	"testing"
)

// Stats is plain exported data, so it must round-trip through JSON for
// external tooling (protozoa-sim -json).
func TestStatsJSONRoundTrip(t *testing.T) {
	s := Stats{
		Instructions: 1000, Accesses: 500, Loads: 300, Stores: 200,
		L1Hits: 400, L1Misses: 100, Invalidations: 7,
		UsedDataBytes: 800, UnusedDataBytes: 200,
		FlitHops: 999, ExecCycles: 12345,
		PerCore: []CoreStats{{Accesses: 500, Hits: 400, Misses: 100}},
	}
	s.AddControl(ClassREQ, 8)
	s.RecordFill(4)

	buf, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var got Stats
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Accesses != s.Accesses || got.ControlBytes != s.ControlBytes ||
		got.BlockSizeHist != s.BlockSizeHist || len(got.PerCore) != 1 ||
		got.PerCore[0] != s.PerCore[0] {
		t.Errorf("round trip mismatch:\n%+v\n%+v", s, got)
	}
	if got.MPKI() != s.MPKI() {
		t.Errorf("derived MPKI differs after round trip")
	}
}
