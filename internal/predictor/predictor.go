// Package predictor implements the spatial-locality predictor that
// decides the Start/End range an L1 miss requests — the PC-based
// predictor of the Amoeba-Cache paper that Protozoa leverages
// (Section 4: "we also leverage the PC-predictor discussed in the
// Amoeba-cache paper").
//
// The predictor learns, per miss PC, how far around the missing word
// the application actually reads before the block dies. Each entry
// stores left/right word extents relative to the trigger word; on
// every block eviction or invalidation the observed touch bitmap is
// fed back and the extents move toward the observation. A cold entry
// predicts the full region, so well-behaved streaming code starts with
// MESI-like spatial prefetching and sparse code quickly shrinks to
// word-sized fetches.
package predictor

import "protozoa/internal/mem"

// Predictor chooses a fetch range for a miss and learns from evicted
// blocks' usage.
type Predictor interface {
	// Predict returns the range to request for a miss at word w of the
	// region, triggered by instruction pc. The result always contains w.
	Predict(pc uint64, region mem.RegionID, w uint8) mem.Range
	// Train feeds back a dead block: the PC and word that fetched it,
	// the region it lived in, and the words the core actually touched
	// while it was resident.
	Train(pc uint64, region mem.RegionID, trigger uint8, touched mem.Bitmap, r mem.Range)
}

// Fixed always predicts the full region: the fixed-granularity
// behaviour of the MESI baseline.
type Fixed struct {
	Geom mem.Geometry
}

// Predict returns the full region regardless of history.
func (f Fixed) Predict(uint64, mem.RegionID, uint8) mem.Range { return f.Geom.FullRange() }

// Train is a no-op for the fixed predictor.
func (f Fixed) Train(uint64, mem.RegionID, uint8, mem.Bitmap, mem.Range) {}

// Spatial is the PC-indexed adaptive predictor.
type Spatial struct {
	geom    mem.Geometry
	entries []spatialEntry
}

// Region is the region-history variant the Amoeba-Cache paper also
// evaluates: instead of indexing by miss PC, it remembers each
// region's last observed usage bitmap and predicts the contiguous run
// around the missing word. It captures data-structure-specific layouts
// the PC predictor blurs (one PC touching differently shaped objects),
// at the cost of one entry per hot region.
type Region struct {
	geom    mem.Geometry
	entries []regionEntry
}

type regionEntry struct {
	region mem.RegionID
	valid  bool
	usage  mem.Bitmap
}

// NewRegion builds a region-history predictor with the given
// direct-mapped table size (rounded up to a power of two).
func NewRegion(geom mem.Geometry, tableSize int) *Region {
	if tableSize <= 0 {
		tableSize = DefaultTableSize
	}
	n := 1
	for n < tableSize {
		n <<= 1
	}
	return &Region{geom: geom, entries: make([]regionEntry, n)}
}

func (r *Region) slot(region mem.RegionID) *regionEntry {
	h := uint64(region) * 0x9E3779B97F4A7C15
	return &r.entries[h>>32&uint64(len(r.entries)-1)]
}

// Predict returns the remembered contiguous usage run around w, the
// full region when the history is cold, or a single word when the
// history says w was not used before (a fresh access pattern).
func (r *Region) Predict(_ uint64, region mem.RegionID, w uint8) mem.Range {
	e := r.slot(region)
	if !e.valid || e.region != region {
		return r.geom.FullRange()
	}
	if run, ok := e.usage.RunContaining(w, r.geom); ok {
		return run
	}
	return mem.OneWord(w)
}

// Train replaces the block's span of the region's remembered usage
// with the observed bitmap, so the entry converges to the region's
// live footprint even when several blocks cover it.
func (r *Region) Train(_ uint64, region mem.RegionID, _ uint8, touched mem.Bitmap, rng mem.Range) {
	e := r.slot(region)
	if !e.valid || e.region != region {
		*e = regionEntry{region: region, valid: true, usage: touched.Intersect(rng.Bitmap())}
		return
	}
	e.usage = e.usage.Intersect(rng.Bitmap() ^ mem.Bitmap(0xFFFF)).Union(touched.Intersect(rng.Bitmap()))
}

type spatialEntry struct {
	pc          uint64
	valid       bool
	left, right uint8 // predicted extent around the trigger word
	shrink      uint8 // consecutive narrower-than-predicted observations
}

// DefaultTableSize matches a small direct-mapped hardware table.
const DefaultTableSize = 512

// NewSpatial builds a spatial predictor with the given direct-mapped
// table size (rounded up to a power of two).
func NewSpatial(geom mem.Geometry, tableSize int) *Spatial {
	if tableSize <= 0 {
		tableSize = DefaultTableSize
	}
	n := 1
	for n < tableSize {
		n <<= 1
	}
	return &Spatial{geom: geom, entries: make([]spatialEntry, n)}
}

func (s *Spatial) slot(pc uint64) *spatialEntry {
	h := pc * 0x9E3779B97F4A7C15
	return &s.entries[h>>32&uint64(len(s.entries)-1)]
}

// Predict returns the learned extent around w, clamped to the region,
// or the full region when the PC has no history.
func (s *Spatial) Predict(pc uint64, _ mem.RegionID, w uint8) mem.Range {
	e := s.slot(pc)
	if !e.valid || e.pc != pc {
		return s.geom.FullRange()
	}
	start := 0
	if int(w) > int(e.left) {
		start = int(w) - int(e.left)
	}
	end := int(w) + int(e.right)
	if maxW := s.geom.WordsPerRegion() - 1; end > maxW {
		end = maxW
	}
	return mem.Range{Start: uint8(start), End: uint8(end)}
}

// shrinkAfter is the hysteresis threshold: only after this many
// consecutive narrower observations does the predicted extent shrink.
// Blocks that die young — typically killed by a coherence invalidation
// before the core finished walking them (the paper's false-sharing
// workloads do this constantly) — would otherwise train the extent
// into a 1-word death spiral: shorter fills mean more misses, more
// misses mean more invalidation deaths, and so on.
const shrinkAfter = 4

// Train updates the PC's extents from the observed usage. Wider
// observations grow the prediction immediately (missed spatial
// locality is the expensive mistake); narrower ones shrink it only
// after shrinkAfter consecutive confirmations.
func (s *Spatial) Train(pc uint64, _ mem.RegionID, trigger uint8, touched mem.Bitmap, r mem.Range) {
	// Observed extents: distance from the trigger word to the farthest
	// touched words. An untouched block trains toward a single word.
	left, right := 0, 0
	for w := r.Start; ; w++ {
		if touched.Has(w) {
			if d := int(trigger) - int(w); d > left {
				left = d
			}
			if d := int(w) - int(trigger); d > right {
				right = d
			}
		}
		if w == r.End {
			break
		}
	}
	e := s.slot(pc)
	if !e.valid || e.pc != pc {
		*e = spatialEntry{pc: pc, valid: true, left: uint8(left), right: uint8(right)}
		return
	}
	if left >= int(e.left) && right >= int(e.right) {
		e.left, e.right = uint8(left), uint8(right)
		e.shrink = 0
		return
	}
	e.shrink++
	if e.shrink >= shrinkAfter {
		e.left = uint8((int(e.left) + left + 1) / 2)
		e.right = uint8((int(e.right) + right + 1) / 2)
		e.shrink = 0
	}
}
