package predictor

import (
	"testing"
	"testing/quick"

	"protozoa/internal/mem"
)

func TestRegionColdPredictsFullRegion(t *testing.T) {
	p := NewRegion(mem.DefaultGeometry, 64)
	if got := p.Predict(0, 7, 3); got != mem.DefaultGeometry.FullRange() {
		t.Errorf("cold Predict = %v, want full region", got)
	}
}

func TestRegionLearnsUsageRun(t *testing.T) {
	p := NewRegion(mem.DefaultGeometry, 64)
	used := mem.Bitmap(0).Set(2).Set(3).Set(4)
	p.Train(0, 7, 2, used, mem.DefaultGeometry.FullRange())
	if got := p.Predict(0, 7, 3); got != (mem.Range{Start: 2, End: 4}) {
		t.Errorf("Predict = %v, want {2,4}", got)
	}
	// A miss outside the remembered usage predicts a single word.
	if got := p.Predict(0, 7, 6); got != mem.OneWord(6) {
		t.Errorf("Predict outside usage = %v, want one word", got)
	}
}

func TestRegionAccumulatesMultiBlockFootprint(t *testing.T) {
	p := NewRegion(mem.DefaultGeometry, 64)
	// Two blocks of the same region die with disjoint usage.
	p.Train(0, 9, 0, mem.Bitmap(0).Set(0).Set(1), mem.Range{Start: 0, End: 1})
	p.Train(0, 9, 5, mem.Bitmap(0).Set(5), mem.Range{Start: 5, End: 6})
	if got := p.Predict(0, 9, 0); got != (mem.Range{Start: 0, End: 1}) {
		t.Errorf("Predict left run = %v, want {0,1}", got)
	}
	if got := p.Predict(0, 9, 5); got != mem.OneWord(5) {
		t.Errorf("Predict right run = %v, want {5,5}", got)
	}
}

func TestRegionRetrainReplacesSpan(t *testing.T) {
	p := NewRegion(mem.DefaultGeometry, 64)
	full := mem.DefaultGeometry.FullRange()
	p.Train(0, 9, 0, full.Bitmap(), full)
	// Retraining the same span with one touched word shrinks it.
	p.Train(0, 9, 0, mem.OneWord(3).Bitmap(), full)
	if got := p.Predict(0, 9, 3); got != mem.OneWord(3) {
		t.Errorf("Predict after retrain = %v, want one word", got)
	}
}

func TestRegionCollisionReplaces(t *testing.T) {
	p := NewRegion(mem.DefaultGeometry, 1) // everything collides
	p.Train(0, 1, 0, mem.OneWord(0).Bitmap(), mem.DefaultGeometry.FullRange())
	p.Train(0, 2, 7, mem.OneWord(7).Bitmap(), mem.DefaultGeometry.FullRange())
	if got := p.Predict(0, 1, 0); got != mem.DefaultGeometry.FullRange() {
		t.Errorf("evicted region should be cold, got %v", got)
	}
	if got := p.Predict(0, 2, 7); got != mem.OneWord(7) {
		t.Errorf("resident region Predict = %v", got)
	}
}

func TestQuickRegionPredictionValid(t *testing.T) {
	g := mem.DefaultGeometry
	p := NewRegion(g, 128)
	f := func(region uint16, trigger, w uint8, bits uint16) bool {
		trigger %= 8
		w %= 8
		p.Train(0, mem.RegionID(region), trigger, mem.Bitmap(bits), g.FullRange())
		got := p.Predict(0, mem.RegionID(region), w)
		return got.Valid(g) && got.Contains(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
