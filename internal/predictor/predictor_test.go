package predictor

import (
	"testing"
	"testing/quick"

	"protozoa/internal/mem"
)

func TestFixedAlwaysFullRegion(t *testing.T) {
	f := Fixed{Geom: mem.DefaultGeometry}
	for w := uint8(0); w < 8; w++ {
		if got := f.Predict(0x400, 7, w); got != mem.DefaultGeometry.FullRange() {
			t.Errorf("Fixed.Predict(w=%d) = %v, want full range", w, got)
		}
	}
	f.Train(0x400, 0, 0, 0, mem.DefaultGeometry.FullRange()) // must not panic
}

func TestSpatialColdPredictsFullRegion(t *testing.T) {
	p := NewSpatial(mem.DefaultGeometry, 64)
	if got := p.Predict(0x400, 1, 3); got != mem.DefaultGeometry.FullRange() {
		t.Errorf("cold Predict = %v, want full region", got)
	}
}

func TestSpatialLearnsSingleWordPattern(t *testing.T) {
	p := NewSpatial(mem.DefaultGeometry, 64)
	// The app only ever touches the trigger word (false-sharing counter).
	for i := 0; i < 6; i++ {
		p.Train(0x400, 0, 3, mem.OneWord(3).Bitmap(), mem.DefaultGeometry.FullRange())
	}
	got := p.Predict(0x400, 9, 5)
	if got != mem.OneWord(5) {
		t.Errorf("Predict after single-word training = %v, want {5,5}", got)
	}
}

func TestSpatialLearnsStreamingPattern(t *testing.T) {
	p := NewSpatial(mem.DefaultGeometry, 64)
	full := mem.DefaultGeometry.FullRange()
	// The app touches the whole region starting at word 0.
	for i := 0; i < 6; i++ {
		p.Train(0x800, 0, 0, full.Bitmap(), full)
	}
	if got := p.Predict(0x800, 9, 0); got != full {
		t.Errorf("Predict after streaming training = %v, want full region", got)
	}
}

func TestSpatialExtentsAreRelativeToTrigger(t *testing.T) {
	p := NewSpatial(mem.DefaultGeometry, 64)
	// Touch trigger word and one to its right.
	pattern := mem.Bitmap(0).Set(2).Set(3)
	for i := 0; i < 6; i++ {
		p.Train(0xC00, 0, 2, pattern, mem.Range{Start: 2, End: 3})
	}
	// Miss at word 5 should predict 5-6 (0 left, 1 right).
	if got := p.Predict(0xC00, 1, 5); got != (mem.Range{Start: 5, End: 6}) {
		t.Errorf("Predict = %v, want {5,6}", got)
	}
	// At the region edge the prediction clamps.
	if got := p.Predict(0xC00, 1, 7); got != (mem.Range{Start: 7, End: 7}) {
		t.Errorf("Predict at edge = %v, want {7,7}", got)
	}
}

func TestSpatialUntouchedBlockTrainsTowardOneWord(t *testing.T) {
	p := NewSpatial(mem.DefaultGeometry, 64)
	for i := 0; i < 8; i++ {
		p.Train(0x123, 0, 4, 0, mem.DefaultGeometry.FullRange())
	}
	if got := p.Predict(0x123, 0, 4); got != mem.OneWord(4) {
		t.Errorf("Predict after untouched training = %v, want single word", got)
	}
}

func TestSpatialDistinctPCsIndependent(t *testing.T) {
	p := NewSpatial(mem.DefaultGeometry, 1024)
	full := mem.DefaultGeometry.FullRange()
	for i := 0; i < 6; i++ {
		p.Train(0x1000, 0, 0, full.Bitmap(), full)
		p.Train(0x2000, 0, 3, mem.OneWord(3).Bitmap(), full)
	}
	if got := p.Predict(0x1000, 0, 0); got.Words() < 4 {
		t.Errorf("streaming PC shrunk to %v", got)
	}
	if got := p.Predict(0x2000, 0, 3); got.Words() != 1 {
		t.Errorf("sparse PC predicts %v, want 1 word", got)
	}
}

func TestSpatialTableCollisionReplaces(t *testing.T) {
	p := NewSpatial(mem.DefaultGeometry, 1) // every PC collides
	full := mem.DefaultGeometry.FullRange()
	p.Train(0x1, 0, 0, full.Bitmap(), full)
	p.Train(0x2, 0, 3, mem.OneWord(3).Bitmap(), full)
	// After replacement, PC 0x2's pattern rules and PC 0x1 is cold again.
	if got := p.Predict(0x2, 0, 3); got.Words() != 1 {
		t.Errorf("Predict(0x2) = %v, want 1 word", got)
	}
	if got := p.Predict(0x1, 0, 0); got != full {
		t.Errorf("evicted PC should predict cold full region, got %v", got)
	}
}

func TestQuickPredictionAlwaysValidAndContainsTrigger(t *testing.T) {
	for _, sz := range []int{16, 32, 64, 128} {
		g := mem.MustGeometry(sz)
		p := NewSpatial(g, 128)
		f := func(pc uint64, trigger, w uint8, bits uint16) bool {
			trigger %= uint8(g.WordsPerRegion())
			w %= uint8(g.WordsPerRegion())
			p.Train(pc, 0, trigger, mem.Bitmap(bits), g.FullRange())
			got := p.Predict(pc, 0, w)
			return got.Valid(g) && got.Contains(w)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("geometry %d: %v", sz, err)
		}
	}
}
