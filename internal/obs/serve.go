package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// LiveServer exposes a running simulation's gauges over HTTP in
// Prometheus text format. The simulator is single-goroutine, so the
// HTTP handlers never touch live machine state: the simulation thread
// calls Publish with an evaluated snapshot (typically from the
// timeline sample hook), and handlers render the last published
// snapshot under a read lock.
//
// Endpoints:
//
//	GET /metrics  — Prometheus text format; every gauge prefixed
//	                "protozoa_", plus protozoa_sim_cycle (the snapshot's
//	                simulated cycle) and protozoa_snapshots_total.
//	GET /healthz  — 200 "ok\n" once the server is up.
//
// Close shuts the listener down gracefully, letting in-flight
// responses finish.
type LiveServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{} // Serve returned

	mu        sync.RWMutex
	descs     []MetricDesc
	cycle     uint64
	values    []float64
	published uint64
}

// NewLiveServer listens on addr (host:port; port 0 picks a free port —
// read the result from Addr) and starts serving the given metric set.
// Values arrive later via Publish; until then /metrics reports only
// the snapshot counters.
func NewLiveServer(addr string, descs []MetricDesc) (*LiveServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: live server: %w", err)
	}
	s := &LiveServer{
		ln:    ln,
		descs: append([]MetricDesc(nil), descs...),
		done:  make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on shutdown
	}()
	return s, nil
}

// Addr reports the bound listen address (resolves ":0" requests).
func (s *LiveServer) Addr() string { return s.ln.Addr().String() }

// Publish installs a new snapshot: the simulated cycle it was taken at
// and one value per descriptor, in descriptor order. The slice is
// copied, so callers may reuse their buffer. Safe to call from the
// simulation goroutine while handlers are serving.
func (s *LiveServer) Publish(cycle uint64, values []float64) {
	s.mu.Lock()
	s.cycle = cycle
	if cap(s.values) < len(values) {
		s.values = make([]float64, len(values))
	}
	s.values = s.values[:len(values)]
	copy(s.values, values)
	s.published++
	s.mu.Unlock()
}

// Close gracefully shuts the server down: stop accepting, let
// in-flight responses complete (bounded at 5 s), then return.
func (s *LiveServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	return err
}

func (s *LiveServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "ok\n")
}

func (s *LiveServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	cycle, published := s.cycle, s.published
	values := append([]float64(nil), s.values...)
	s.mu.RUnlock()

	var b strings.Builder
	writeGauge(&b, "protozoa_sim_cycle", "simulated cycle of the last published snapshot", float64(cycle))
	writeGauge(&b, "protozoa_snapshots_total", "snapshots published by the simulation thread", float64(published))
	for i, d := range s.descs {
		if i >= len(values) {
			break
		}
		writeGauge(&b, "protozoa_"+sanitizeMetricName(d.Name), d.Help, values[i])
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

func writeGauge(b *strings.Builder, name, help string, v float64) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, strings.ReplaceAll(help, "\n", " "))
	}
	fmt.Fprintf(b, "# TYPE %s gauge\n", name)
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	b.WriteByte('\n')
}

// sanitizeMetricName maps a registry name onto the Prometheus metric
// charset [a-zA-Z0-9_:] (registry names are snake_case already; this
// guards custom gauges).
func sanitizeMetricName(name string) string {
	ok := true
	for i := 0; i < len(name); i++ {
		if !isMetricChar(name[i], i == 0) {
			ok = false
			break
		}
	}
	if ok && name != "" {
		return name
	}
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		if isMetricChar(name[i], b.Len() == 0) {
			b.WriteByte(name[i])
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

func isMetricChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}
