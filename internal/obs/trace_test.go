package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"protozoa/internal/engine"
)

func msgPair(sendAt, deliverAt uint64, sub uint8, src, dst int16, region uint64) []Event {
	return []Event{
		{Cycle: engine.Cycle(sendAt), Kind: KindMsgSend, Sub: sub, Node: src, Peer: dst, Region: region},
		{Cycle: engine.Cycle(deliverAt), Kind: KindMsgDeliver, Sub: sub, Node: src, Peer: dst, Region: region},
	}
}

func TestChromeTracePairsSlices(t *testing.T) {
	var events []Event
	events = append(events, Event{Cycle: 10, Kind: KindMissStart, Sub: 1, Node: 2, Peer: -1, Region: 7})
	events = append(events, msgPair(10, 24, 1, 2, 5, 7)...)
	events = append(events, Event{Cycle: 24, Kind: KindTxnStart, Sub: 1, Node: 5, Peer: -1, Region: 7, Txn: 3})
	events = append(events, Event{Cycle: 60, Kind: KindTxnEnd, Node: 5, Peer: -1, Region: 7, Txn: 3})
	events = append(events, Event{Cycle: 55, Kind: KindMissEnd, Node: 2, Peer: -1, Region: 7})

	tr := BuildChromeTrace(events, 0, TraceOptions{
		SubName: func(k Kind, sub uint8) string { return "GETX" },
	})

	var miss, msg, txn *ChromeEvent
	for i := range tr.TraceEvents {
		e := &tr.TraceEvents[i]
		switch e.Name {
		case "miss GETX":
			miss = e
		case "GETX":
			msg = e
		case "txn GETX":
			txn = e
		}
	}
	if miss == nil || miss.Ph != "X" || miss.Ts != 10 || miss.Dur != 45 || miss.Tid != 2 {
		t.Fatalf("miss slice wrong: %+v", miss)
	}
	if msg == nil || msg.Ph != "X" || msg.Ts != 10 || msg.Dur != 14 || msg.Tid != 5 {
		t.Fatalf("message flight wrong: %+v", msg)
	}
	if txn == nil || txn.Ph != "X" || txn.Ts != 24 || txn.Dur != 36 || txn.Tid != DirTrackBase+5 {
		t.Fatalf("txn slice wrong: %+v", txn)
	}
	// Track metadata: core 2, dir 5, and the dst core 5 must be named.
	names := map[int]string{}
	for _, e := range tr.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			names[e.Tid] = e.Args["name"].(string)
		}
	}
	if names[2] != "core 2" || names[DirTrackBase+5] != "dir 5" {
		t.Fatalf("track names wrong: %v", names)
	}
}

func TestChromeTraceUnmatchedDegradesToInstant(t *testing.T) {
	events := []Event{
		// A deliver whose send was overwritten by ring wrap, and a send
		// still in flight when recording stopped.
		{Cycle: 5, Kind: KindMsgDeliver, Sub: 0, Node: 1, Peer: 2},
		{Cycle: 9, Kind: KindMsgSend, Sub: 0, Node: 2, Peer: 3},
		{Cycle: 9, Kind: KindMissStart, Sub: 0, Node: 4, Peer: -1},
	}
	tr := BuildChromeTrace(events, 12, TraceOptions{})
	instants := 0
	for _, e := range tr.TraceEvents {
		if e.Ph == "i" {
			instants++
		}
		if e.Ph == "X" {
			t.Fatalf("unmatched events must not produce slices: %+v", e)
		}
	}
	if instants != 3 {
		t.Fatalf("%d instants, want 3", instants)
	}
	if tr.OtherData["dropped_events"] != uint64(12) {
		t.Fatalf("dropped_events missing: %v", tr.OtherData)
	}
}

// TestChromeTraceRoundTrip is the acceptance check: the written JSON
// parses back into the same document.
func TestChromeTraceRoundTrip(t *testing.T) {
	var events []Event
	events = append(events, msgPair(0, 9, 2, 0, 3, 11)...)
	events = append(events, msgPair(12, 30, 5, 3, 0, 11)...)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events, 0, TraceOptions{}); err != nil {
		t.Fatal(err)
	}
	var parsed ChromeTrace
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("written trace does not parse: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" || len(parsed.TraceEvents) == 0 {
		t.Fatalf("parsed trace incomplete: %+v", parsed)
	}
	again, err := json.Marshal(parsed)
	if err != nil {
		t.Fatal(err)
	}
	var reparsed ChromeTrace
	if err := json.Unmarshal(again, &reparsed); err != nil {
		t.Fatalf("re-marshalled trace does not parse: %v", err)
	}
	if len(reparsed.TraceEvents) != len(parsed.TraceEvents) {
		t.Fatalf("round trip lost events: %d vs %d", len(reparsed.TraceEvents), len(parsed.TraceEvents))
	}
}
