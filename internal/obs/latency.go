package obs

import "fmt"

// Phase is one segment of a coherence transaction's life, from the L1
// issuing the miss to the fill (or grant) installing. The five phases
// tile the interval exactly, so their per-miss sums always add up to
// the miss's total latency — the invariant the report checks against
// stats.AvgMissLatency.
type Phase uint8

const (
	// PhaseReqNoC is the request's network flight: L1 issue to the
	// home directory accepting (or queueing) it.
	PhaseReqNoC Phase = iota
	// PhaseDirQueue is time spent queued behind an earlier transaction
	// on the same region (zero when the region was idle).
	PhaseDirQueue
	// PhaseL2Access is the directory's L2 lookup, including the
	// one-time memory fetch on a region's first touch.
	PhaseL2Access
	// PhaseFanOut is the probe round trip: FWD/INV fan-out until the
	// last ack returns (zero when no sharer needed probing).
	PhaseFanOut
	// PhaseData is response assembly and flight until the L1 installs
	// the fill (or applies the upgrade grant).
	PhaseData
	NumPhases
)

var phaseNames = [NumPhases]string{
	"req-noc", "dir-queue", "l2-access", "fanout-acks", "data-fill",
}

// String names the phase.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "Phase(?)"
}

// Fixed-bucket total-latency histogram geometry: LatBuckets buckets of
// LatBucketWidth cycles each; the last bucket absorbs the overflow.
const (
	LatBucketWidth = 32
	LatBuckets     = 128
)

// txnStamps is one in-flight miss's phase timestamps, slotted per core
// (the in-order cores have one outstanding miss each). A reissued
// upgrade overwrites the directory-side stamps; Complete clamps the
// chain monotone, so the first round's time folds into PhaseReqNoC and
// the phases still sum to the true miss latency.
type txnStamps struct {
	issue     uint64
	dirAccept uint64
	activate  uint64
	process   uint64
	lastAck   uint64
	live      bool
}

// LatencyBreakdown accumulates per-phase miss-latency sums and a
// fixed-bucket histogram of total latency, per system (one protocol).
type LatencyBreakdown struct {
	open []txnStamps // per core

	PhaseSum [NumPhases]uint64
	Count    uint64
	TotalSum uint64
	MaxLat   uint64
	Hist     [LatBuckets]uint64
}

// NewLatencyBreakdown sizes the per-core stamp table.
func NewLatencyBreakdown(cores int) *LatencyBreakdown {
	return &LatencyBreakdown{open: make([]txnStamps, cores)}
}

// Issue stamps a miss leaving core's L1.
func (l *LatencyBreakdown) Issue(core int, now uint64) {
	l.open[core] = txnStamps{issue: now, live: true}
}

// DirAccept stamps the home directory receiving the request.
func (l *LatencyBreakdown) DirAccept(core int, now uint64) {
	l.open[core].dirAccept = now
}

// Activate stamps the request leaving the region's queue.
func (l *LatencyBreakdown) Activate(core int, now uint64) {
	l.open[core].activate = now
}

// Process stamps the directory state machine running (L2 access paid).
func (l *LatencyBreakdown) Process(core int, now uint64) {
	l.open[core].process = now
}

// LastAck stamps the final probe reply retiring the fan-out.
func (l *LatencyBreakdown) LastAck(core int, now uint64) {
	l.open[core].lastAck = now
}

// Complete closes the miss at fill/grant time and accrues its phases.
// Stamps are clamped into a monotone chain so a stale stamp from an
// abandoned round (upgrade reissue) can never produce a negative
// phase; the clamped diffs always sum to now - issue.
func (l *LatencyBreakdown) Complete(core int, now uint64) {
	o := &l.open[core]
	if !o.live {
		return
	}
	o.live = false
	chain := [NumPhases + 1]uint64{o.issue, o.dirAccept, o.activate, o.process, o.lastAck, now}
	for i := 1; i <= int(NumPhases); i++ {
		if chain[i] < chain[i-1] {
			chain[i] = chain[i-1]
		}
	}
	for p := 0; p < int(NumPhases); p++ {
		l.PhaseSum[p] += chain[p+1] - chain[p]
	}
	total := now - o.issue
	l.Count++
	l.TotalSum += total
	if total > l.MaxLat {
		l.MaxLat = total
	}
	b := total / LatBucketWidth
	if b >= LatBuckets {
		b = LatBuckets - 1
	}
	l.Hist[b]++
}

// Merge folds another breakdown's accumulated totals into l (the open
// stamp tables are not merged; merge finished runs only).
func (l *LatencyBreakdown) Merge(other *LatencyBreakdown) {
	for p := range l.PhaseSum {
		l.PhaseSum[p] += other.PhaseSum[p]
	}
	l.Count += other.Count
	l.TotalSum += other.TotalSum
	if other.MaxLat > l.MaxLat {
		l.MaxLat = other.MaxLat
	}
	for b := range l.Hist {
		l.Hist[b] += other.Hist[b]
	}
}

// AvgPhase is the mean cycles per completed miss spent in the phase.
func (l *LatencyBreakdown) AvgPhase(p Phase) float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.PhaseSum[p]) / float64(l.Count)
}

// AvgTotal is the mean total miss latency; by construction it equals
// the sum of the per-phase averages.
func (l *LatencyBreakdown) AvgTotal() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.TotalSum) / float64(l.Count)
}

// Percentile returns the upper bound of the histogram bucket holding
// the p-th percentile (p in (0,100]), clamped to the observed maximum.
func (l *LatencyBreakdown) Percentile(p float64) uint64 {
	if l.Count == 0 {
		return 0
	}
	threshold := uint64(float64(l.Count) * p / 100)
	if threshold == 0 {
		threshold = 1
	}
	var cum uint64
	for b, c := range l.Hist {
		cum += c
		if cum >= threshold {
			bound := uint64(b+1) * LatBucketWidth
			if b == LatBuckets-1 || bound > l.MaxLat {
				// The overflow bucket is unbounded above; report the
				// observed maximum (likewise when the bucket edge
				// exceeds every recorded latency).
				bound = l.MaxLat
			}
			return bound
		}
	}
	return l.MaxLat
}

// Row renders the decomposition as one aligned text line: per-phase
// averages, the total, and the latency tail.
func (l *LatencyBreakdown) Row() string {
	s := ""
	for p := Phase(0); p < NumPhases; p++ {
		s += fmt.Sprintf(" %11.1f", l.AvgPhase(p))
	}
	return s + fmt.Sprintf(" %11.1f  p50<=%-6d p95<=%-6d p99<=%-6d",
		l.AvgTotal(), l.Percentile(50), l.Percentile(95), l.Percentile(99))
}
