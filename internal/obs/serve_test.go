package obs

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestLiveServerServesPublishedSnapshot(t *testing.T) {
	descs := []MetricDesc{
		{Name: "mshr_live", Help: "misses outstanding"},
		{Name: "util_pct", Help: "fill utilization"},
	}
	s, err := NewLiveServer("127.0.0.1:0", descs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if got := getBody(t, base+"/healthz"); got != "ok\n" {
		t.Errorf("healthz body %q", got)
	}

	// Before any Publish, only the snapshot counters report.
	body := getBody(t, base+"/metrics")
	if !strings.Contains(body, "protozoa_snapshots_total 0\n") {
		t.Errorf("pre-publish body missing zero snapshot counter:\n%s", body)
	}

	s.Publish(12000, []float64{3, 41.5})
	body = getBody(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE protozoa_sim_cycle gauge",
		"protozoa_sim_cycle 12000",
		"protozoa_snapshots_total 1",
		"# HELP protozoa_mshr_live misses outstanding",
		"protozoa_mshr_live 3",
		"protozoa_util_pct 41.5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q:\n%s", want, body)
		}
	}

	// Every non-comment line must be well-formed Prometheus text.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if _, err := strconv.ParseFloat(parts[1], 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		for i := 0; i < len(parts[0]); i++ {
			if !isMetricChar(parts[0][i], i == 0) {
				t.Fatalf("bad metric name %q", parts[0])
			}
		}
	}
}

// TestLiveServerConcurrentPublishAndScrape hammers Publish from the
// simulation side while scrapers pull /metrics, under -race in CI: the
// snapshot swap must be safe against concurrent readers, and every
// scrape must observe a coherent (cycle, values) pair — never a torn
// mix of two publishes.
func TestLiveServerConcurrentPublishAndScrape(t *testing.T) {
	s, err := NewLiveServer("127.0.0.1:0", []MetricDesc{
		{Name: "a", Help: "cycle echo"},
		{Name: "b", Help: "cycle echo times two"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	const publishes = 400
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i <= publishes; i++ {
			c := float64(i)
			s.Publish(uint64(i), []float64{c, 2 * c})
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body := getBody(t, base+"/metrics")
				var cycle, a, b float64
				for _, line := range strings.Split(body, "\n") {
					var f *float64
					switch {
					case strings.HasPrefix(line, "protozoa_sim_cycle "):
						f = &cycle
					case strings.HasPrefix(line, "protozoa_a "):
						f = &a
					case strings.HasPrefix(line, "protozoa_b "):
						f = &b
					default:
						continue
					}
					v, err := strconv.ParseFloat(strings.Fields(line)[1], 64)
					if err != nil {
						t.Errorf("unparseable line %q: %v", line, err)
						return
					}
					*f = v
				}
				if a != cycle || b != 2*cycle {
					t.Errorf("torn scrape: cycle=%v a=%v b=%v", cycle, a, b)
					return
				}
			}
		}()
	}
	wg.Wait()
	<-done

	body := getBody(t, base+"/metrics")
	if !strings.Contains(body, "protozoa_snapshots_total 400\n") {
		t.Errorf("lost publishes:\n%s", body)
	}
}

func TestLiveServerCloseIsGracefulAndFinal(t *testing.T) {
	s, err := NewLiveServer("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	getBody(t, "http://"+addr+"/healthz")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still accepting connections after Close")
	}
}

func TestLiveServerPublishCopiesValues(t *testing.T) {
	s, err := NewLiveServer("127.0.0.1:0", []MetricDesc{{Name: "g"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := []float64{7}
	s.Publish(1, buf)
	buf[0] = 99 // caller reuses its buffer; snapshot must be unaffected
	body := getBody(t, "http://"+s.Addr()+"/metrics")
	if !strings.Contains(body, "protozoa_g 7\n") {
		t.Errorf("published value not snapshotted:\n%s", body)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"event_queue_depth": "event_queue_depth",
		"weird name-1":      "weird_name_1",
		"1starts_numeric":   "_starts_numeric",
		"":                  "_",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
