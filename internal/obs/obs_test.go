package obs

import (
	"testing"

	"protozoa/internal/engine"
)

func ev(cycle uint64, k Kind, node int16) Event {
	return Event{Cycle: engine.Cycle(cycle), Kind: k, Node: node, Peer: -1}
}

func TestRecorderNoWrap(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Record(ev(uint64(i), KindMissStart, int16(i)))
	}
	if r.Len() != 5 || r.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d, want 5/0", r.Len(), r.Dropped())
	}
	snap := r.Snapshot()
	if len(snap) != 5 {
		t.Fatalf("snapshot has %d events", len(snap))
	}
	for i, e := range snap {
		if e.Cycle != engine.Cycle(i) {
			t.Fatalf("event %d at cycle %d, want %d", i, e.Cycle, i)
		}
	}
}

func TestRecorderWrapKeepsNewest(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(ev(uint64(i), KindMsgSend, 0))
	}
	if r.Len() != 4 {
		t.Fatalf("len=%d, want capacity 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped=%d, want 6", r.Dropped())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if want := engine.Cycle(6 + i); e.Cycle != want {
			t.Fatalf("snapshot[%d] cycle %d, want %d (oldest-first after wrap)", i, e.Cycle, want)
		}
	}
}

func TestRecorderDefaultCap(t *testing.T) {
	r := NewRecorder(0)
	if len(r.buf) != DefaultRecorderCap {
		t.Fatalf("default capacity %d, want %d", len(r.buf), DefaultRecorderCap)
	}
}

// TestRecordDoesNotAllocate is the zero-cost contract: recording into
// the preallocated ring performs no heap allocation.
func TestRecordDoesNotAllocate(t *testing.T) {
	r := NewRecorder(1024)
	e := ev(1, KindMsgSend, 3)
	allocs := testing.AllocsPerRun(1000, func() { r.Record(e) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f objects per call, want 0", allocs)
	}
}

func TestKindNames(t *testing.T) {
	if KindMsgSend.String() != "msg-send" || KindLinkStall.String() != "link-stall" {
		t.Fatal("kind names wrong")
	}
	if numKinds != Kind(len(kindNames)) {
		t.Fatal("kindNames out of sync with kinds")
	}
}
