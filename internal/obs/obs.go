// Package obs is the simulator's observability layer: a preallocated
// ring-buffer event recorder (exported as Chrome trace-event JSON for
// Perfetto), a per-transaction miss-latency phase breakdown, and a
// registry of named metrics sampled on the timeline hook.
//
// The layer is strictly zero-cost when disabled: every emit site in
// the simulator guards the call with a single nil check, and nothing
// here is constructed unless an Enable* method was called on the
// system. When enabled, recording stays allocation-free — the ring
// buffer is preallocated at capacity and one Record is a slot store.
//
// The package deliberately knows nothing about the coherence protocol:
// events carry small integer fields (kind, sub-kind, node, peer,
// region, transaction id) and the caller supplies naming callbacks at
// export time, so core can depend on obs without a cycle.
package obs

import "protozoa/internal/engine"

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindMsgSend marks a coherence message entering the network
	// (Node = source tile, Peer = destination, Sub = message type).
	KindMsgSend Kind = iota
	// KindMsgDeliver marks a message arriving at its destination
	// controller (same fields as KindMsgSend).
	KindMsgDeliver
	// KindMissStart marks an L1 miss issuing (Node = core, Sub =
	// request message type).
	KindMissStart
	// KindMissEnd marks the miss's fill or grant completing at the L1.
	KindMissEnd
	// KindTxnStart marks a directory transaction activating for a
	// region (Node = home tile, Sub = request message type).
	KindTxnStart
	// KindTxnEnd marks the region reopening at the directory (the
	// requester's unblock arrived, or a recall retired).
	KindTxnEnd
	// KindLinkStall marks a message delayed behind busy mesh links
	// (contention model only); Txn carries the stall length in cycles.
	KindLinkStall
	numKinds
)

var kindNames = [...]string{
	"msg-send", "msg-deliver", "miss-start", "miss-end",
	"txn-start", "txn-end", "link-stall",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "Kind(?)"
}

// Event is one fixed-size observability record. Field meaning varies
// by Kind (see the Kind constants); unused fields are zero.
type Event struct {
	Cycle  engine.Cycle
	Kind   Kind
	Sub    uint8 // kind-specific subtype (e.g. coherence message type)
	Node   int16 // originating track: core or home tile
	Peer   int16 // counterpart node (message destination), -1 if none
	Region uint64
	Txn    uint64
}

// Recorder is a bounded ring of events, preallocated at capacity so
// recording never allocates. When the ring wraps, the oldest events
// are overwritten and counted as dropped.
type Recorder struct {
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// DefaultRecorderCap bounds the recorder when the caller passes a
// non-positive capacity: 1 Mi events (~40 MB), enough for every
// message of a scale-1 workload.
const DefaultRecorderCap = 1 << 20

// NewRecorder returns a recorder holding the most recent capacity
// events (capacity <= 0 selects DefaultRecorderCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest when full.
func (r *Recorder) Record(ev Event) {
	if r.wrapped {
		r.dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Len reports how many events are currently held.
func (r *Recorder) Len() int {
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Dropped reports how many events were overwritten by ring wrap.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// AddDropped accounts drops that happened outside this recorder — the
// PDES merge uses it to carry per-partition ring wraps into the merged
// recorder's total.
func (r *Recorder) AddDropped(n uint64) { r.dropped += n }

// Snapshot returns the held events oldest-first in a fresh slice.
func (r *Recorder) Snapshot() []Event {
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}
