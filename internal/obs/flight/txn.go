package flight

// Transaction reconstruction: fold a merged record stream back into
// per-miss timelines with per-phase dwell times. The phase algebra is
// the same as obs.LatencyBreakdown — stamps are overwritten as records
// arrive (so an abandoned round's stamps fold away exactly like a
// reissued upgrade's do) and then clamped into a monotone chain — so
// the reconstructed dwell sums reconcile exactly against the PR 3
// latency breakdown: summed per phase over completed transactions they
// equal LatencyBreakdown.PhaseSum, and each transaction's dwells sum to
// its complete-issue latency.

// NumPhases and the phase names mirror obs.Phase.
const NumPhases = 5

// PhaseNames names the five phases in order.
var PhaseNames = [NumPhases]string{
	"req-noc", "dir-queue", "l2-access", "fanout-acks", "data-fill",
}

// Txn is one reconstructed miss transaction.
type Txn struct {
	Core   int
	Region uint64
	Sub    uint8 // request message code at issue
	Issue  uint64
	// Complete is the fill/grant cycle; zero when Open.
	Complete uint64
	// Chain is the monotone-clamped stamp chain: issue, dir-accept,
	// activate, process, last-ack, complete.
	Chain [NumPhases + 1]uint64
	// Dwell[p] = Chain[p+1] - Chain[p]; the dwells sum to
	// Complete - Issue exactly.
	Dwell [NumPhases]uint64
	// Open marks a transaction still outstanding when the log ended —
	// the stall watchdog's quarry.
	Open bool
}

// Total is the transaction's full latency (0 while Open).
func (t *Txn) Total() uint64 {
	if t.Open {
		return 0
	}
	return t.Complete - t.Issue
}

// Reconstruct folds a cycle-ordered record stream (Recorder.Records or
// a parsed log) into per-miss transactions, in completion order, with
// still-open transactions appended last. The in-order cores have at
// most one miss outstanding each, so tracking is a per-core slot, like
// obs.LatencyBreakdown's stamp table. Directory-phase records tie to
// the requesting core via Req; inclusion recalls (Req < 0) have no
// requesting miss and are skipped.
func Reconstruct(recs []Record) []Txn {
	open := map[int]*Txn{}
	var out []Txn
	for i := range recs {
		r := &recs[i]
		switch r.Kind {
		case KindMissStart:
			open[int(r.Src)] = &Txn{
				Core: int(r.Src), Region: r.Region, Sub: r.Sub,
				Issue: uint64(r.Cycle), Open: true,
			}
		case KindDirAccept, KindTxnStart, KindTxnProcess, KindTxnLastAck:
			t := open[int(r.Req)]
			if t == nil || t.Region != r.Region {
				continue
			}
			// Overwrite semantics: a reissued request restamps, and the
			// clamp below folds the abandoned round into req-noc.
			switch r.Kind {
			case KindDirAccept:
				t.Chain[1] = uint64(r.Cycle)
			case KindTxnStart:
				t.Chain[2] = uint64(r.Cycle)
			case KindTxnProcess:
				t.Chain[3] = uint64(r.Cycle)
			case KindTxnLastAck:
				t.Chain[4] = uint64(r.Cycle)
			}
		case KindMissEnd:
			t := open[int(r.Src)]
			if t == nil {
				continue
			}
			delete(open, int(r.Src))
			t.Complete = uint64(r.Cycle)
			t.Open = false
			t.close()
			out = append(out, *t)
		}
	}
	// Still-open transactions keep Open=true and their raw stamps; sort
	// order (by issue) is deterministic because map iteration is not.
	stalled := make([]*Txn, 0, len(open))
	for _, t := range open {
		stalled = append(stalled, t)
	}
	for i := 1; i < len(stalled); i++ {
		for j := i; j > 0 && less(stalled[j], stalled[j-1]); j-- {
			stalled[j], stalled[j-1] = stalled[j-1], stalled[j]
		}
	}
	for _, t := range stalled {
		out = append(out, *t)
	}
	return out
}

func less(a, b *Txn) bool {
	if a.Issue != b.Issue {
		return a.Issue < b.Issue
	}
	return a.Core < b.Core
}

// close clamps the stamp chain monotone and derives the dwells —
// exactly obs.LatencyBreakdown.Complete's algebra.
func (t *Txn) close() {
	t.Chain[0] = t.Issue
	t.Chain[NumPhases] = t.Complete
	for i := 1; i <= NumPhases; i++ {
		if t.Chain[i] < t.Chain[i-1] {
			t.Chain[i] = t.Chain[i-1]
		}
	}
	for p := 0; p < NumPhases; p++ {
		t.Dwell[p] = t.Chain[p+1] - t.Chain[p]
	}
}
