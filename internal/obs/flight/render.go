package flight

import (
	"fmt"
	"io"
	"strings"
)

// Names resolves the Sub codes a machine recorded with. The flight
// package is protocol-agnostic: the coherence message vocabulary is
// supplied by the machine (internal/core passes its MsgType names).
type Names struct {
	Msgs []string
}

// Sub renders a Sub code: a message-type name, a cause name, or empty.
func (n *Names) Sub(sub uint8) string {
	switch {
	case sub == SubNone:
		return ""
	case n != nil && int(sub) < len(n.Msgs):
		return n.Msgs[sub]
	case sub == CauseLoad:
		return "Load"
	case sub == CauseStore:
		return "Store"
	case sub == CauseReissue:
		return "GrantReissue"
	}
	return fmt.Sprintf("sub#%d", sub)
}

// Format renders one record as a transcript line, in the style of the
// paper's transaction diagrams:
//
//	@2041     t3  msg-send     GETX       C0->T3 region 7 txn 12 [0--3]
//	@2055     t3  l1-state     GETX       core 3 region 7 I -> I_IM
func (r Record) Format(n *Names) string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%-8d t%-2d %-12s %-10s", r.Cycle, r.Tile, r.Kind, n.Sub(r.Sub))
	switch r.Kind {
	case KindMsgSend, KindMsgDeliver, KindMsgFree:
		fmt.Fprintf(&b, " C%d->T%d region %d", r.Src, r.Dst, r.Region)
		if r.Txn != 0 {
			fmt.Fprintf(&b, " txn %d", r.Txn)
		}
		fmt.Fprintf(&b, " [%s]", r.R)
		if c := r.Valid.Count(); c > 0 {
			fmt.Fprintf(&b, " %dw", c)
		}
		if r.Flags&(FlagStillSharer|FlagStillOwner) != 0 {
			fmt.Fprintf(&b, " sharer=%v owner=%v",
				r.Flags&FlagStillSharer != 0, r.Flags&FlagStillOwner != 0)
		}
		if r.Flags&FlagDirect != 0 {
			b.WriteString(" direct")
		}
		if r.Flags&FlagForwarded != 0 {
			b.WriteString(" forwarded")
		}
	case KindMissStart, KindMissEnd:
		fmt.Fprintf(&b, " core %d region %d", r.Src, r.Region)
		if r.Kind == KindMissStart {
			fmt.Fprintf(&b, " [%s]", r.R)
		}
	case KindDirAccept, KindQueuePark, KindQueueUnpark,
		KindTxnStart, KindTxnProcess, KindTxnLastAck, KindTxnEnd:
		fmt.Fprintf(&b, " dir %d region %d", r.Tile, r.Region)
		if r.Txn != 0 {
			fmt.Fprintf(&b, " txn %d", r.Txn)
		}
		if r.Req >= 0 {
			fmt.Fprintf(&b, " req C%d", r.Req)
		}
	case KindL1State:
		fmt.Fprintf(&b, " core %d region %d %s -> %s",
			r.Src, r.Region, L1StateName(r.From), L1StateName(r.To))
	case KindDirState:
		fmt.Fprintf(&b, " dir %d region %d %s -> %s",
			r.Tile, r.Region, DirStateName(r.From), DirStateName(r.To))
	}
	return b.String()
}

// WriteTranscript renders records one per line.
func WriteTranscript(w io.Writer, recs []Record, n *Names) error {
	for _, r := range recs {
		if _, err := fmt.Fprintln(w, r.Format(n)); err != nil {
			return err
		}
	}
	return nil
}

// Transcript renders records into one string (convenience for error
// messages and goldens).
func Transcript(recs []Record, n *Names) string {
	var b strings.Builder
	for _, r := range recs {
		b.WriteString(r.Format(n))
		b.WriteByte('\n')
	}
	return b.String()
}
