package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"protozoa/internal/engine"
	"protozoa/internal/mem"
)

// On-disk flight-log format (.pzfl): one JSON object header line
// carrying the machine shape and the name tables, then one compact JSON
// array per record. Line-oriented so logs stream, diff, and grep; the
// header's vocabularies make the file self-describing, so
// protozoa-inspect needs no knowledge of the recording binary's enums.
//
// The header deliberately omits anything that varies with the execution
// strategy (worker count, wall time): a log recorded at -workers 1 and
// -workers 4 must be byte-identical.

// FormatName / FormatVersion identify the file format.
const (
	FormatName    = "protozoa-flight"
	FormatVersion = 1
)

// Meta is the log header.
type Meta struct {
	Format      string   `json:"format"`
	Version     int      `json:"version"`
	Protocol    string   `json:"protocol"`
	Cores       int      `json:"cores"`
	RegionBytes int      `json:"region_bytes"`
	Records     int      `json:"records"`
	Dropped     uint64   `json:"dropped"`
	Kinds       []string `json:"kinds"`
	Msgs        []string `json:"msgs"`
	L1States    []string `json:"l1_states"`
	DirStates   []string `json:"dir_states"`
	Fields      []string `json:"fields"`
}

// recordFields documents the per-record array layout, in order.
var recordFields = []string{
	"cycle", "seq", "tile", "kind", "sub", "src", "dst", "req",
	"region", "txn", "from", "to", "flags", "r_start", "r_end",
	"valid", "dirty",
}

const numFields = 17

// Names returns the header's Sub vocabulary for rendering.
func (m *Meta) Names() *Names { return &Names{Msgs: m.Msgs} }

// WriteLog writes the header and records. meta's Records/Dropped/Kinds/
// Fields are filled in here; the caller supplies the machine shape and
// message vocabulary.
func WriteLog(w io.Writer, meta Meta, recs []Record) error {
	meta.Format = FormatName
	meta.Version = FormatVersion
	meta.Records = len(recs)
	meta.Kinds = KindNames()
	meta.L1States = L1StateNames()
	meta.DirStates = DirStateNames()
	meta.Fields = recordFields
	bw := bufio.NewWriter(w)
	head, err := json.Marshal(&meta)
	if err != nil {
		return err
	}
	bw.Write(head)
	bw.WriteByte('\n')
	for i := range recs {
		r := &recs[i]
		fmt.Fprintf(bw, "[%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d]\n",
			r.Cycle, r.Seq, r.Tile, r.Kind, r.Sub, r.Src, r.Dst, r.Req,
			r.Region, r.Txn, r.From, r.To, r.Flags, r.R.Start, r.R.End,
			r.Valid, r.Dirty)
	}
	return bw.Flush()
}

// ReadLog parses a flight log written by WriteLog.
func ReadLog(r io.Reader) (Meta, []Record, error) {
	var meta Meta
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return meta, nil, err
		}
		return meta, nil, fmt.Errorf("flight: empty log")
	}
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return meta, nil, fmt.Errorf("flight: bad header: %w", err)
	}
	if meta.Format != FormatName {
		return meta, nil, fmt.Errorf("flight: not a flight log (format %q)", meta.Format)
	}
	if meta.Version != FormatVersion {
		return meta, nil, fmt.Errorf("flight: unsupported version %d (want %d)", meta.Version, FormatVersion)
	}
	recs := make([]Record, 0, meta.Records)
	line := 1
	for sc.Scan() {
		line++
		var f [numFields]int64
		v := f[:0]
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			return meta, nil, fmt.Errorf("flight: line %d: %w", line, err)
		}
		if len(v) != numFields {
			return meta, nil, fmt.Errorf("flight: line %d: %d fields (want %d)", line, len(v), numFields)
		}
		recs = append(recs, Record{
			Cycle: engine.Cycle(v[0]), Seq: uint64(v[1]), Tile: int16(v[2]),
			Kind: Kind(v[3]), Sub: uint8(v[4]),
			Src: int16(v[5]), Dst: int16(v[6]), Req: int16(v[7]),
			Region: uint64(v[8]), Txn: uint64(v[9]),
			From: uint8(v[10]), To: uint8(v[11]), Flags: uint8(v[12]),
			R:     mem.Range{Start: uint8(v[13]), End: uint8(v[14])},
			Valid: mem.Bitmap(v[15]), Dirty: mem.Bitmap(v[16]),
		})
	}
	if err := sc.Err(); err != nil {
		return meta, nil, err
	}
	return meta, recs, nil
}
