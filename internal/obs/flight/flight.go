// Package flight is the coherence-transaction flight recorder: a
// bounded, per-tile ring of fixed-size records capturing every protocol
// step the machine takes — message send/deliver/free, MSHR open/retire,
// directory accept/park/unpark/activate/process/last-ack/end, and L1 /
// directory state transitions (stable + transient). The recorder is
// opt-in and nil-check-hooked: a disabled machine pays one branch per
// potential record.
//
// Determinism contract: each ring is single-goroutine (one per PDES
// tile, or one shared ring in sequential mode) and stamps records with
// a per-ring sequence number. Records() merges the rings with a stable
// sort on cycle only, so ties keep tile order and the merged transcript
// is byte-identical at any worker count >= 1 — the same contract the
// event-trace merge in internal/core relies on.
package flight

import (
	"sort"

	"protozoa/internal/engine"
	"protozoa/internal/mem"
)

// Kind classifies one flight record.
type Kind uint8

const (
	// KindMsgSend / KindMsgDeliver / KindMsgFree bracket a message's
	// lifecycle: put on the mesh, handed to its destination controller,
	// and recycled into a pool. Free records are emitted before the
	// message is zeroed, so a record never aliases a recycled message.
	KindMsgSend Kind = iota
	KindMsgDeliver
	KindMsgFree
	// KindMissStart / KindMissEnd bracket an L1 MSHR's life (Src = the
	// core; Sub = the request type at issue).
	KindMissStart
	KindMissEnd
	// KindDirAccept marks the home directory receiving a request
	// (stamped even when the region is busy and the request parks).
	KindDirAccept
	// KindQueuePark / KindQueueUnpark bracket a request's wait in a busy
	// region's directory queue.
	KindQueuePark
	KindQueueUnpark
	// KindTxnStart / KindTxnProcess / KindTxnLastAck / KindTxnEnd are
	// the directory transaction's phase edges: activation (L2 access
	// begins), state-machine processing (probes fly), the final probe
	// ack, and the region reopening.
	KindTxnStart
	KindTxnProcess
	KindTxnLastAck
	KindTxnEnd
	// KindL1State / KindDirState record a stable+transient state change
	// (From/To are codes; see L1StateName / DirStateName).
	KindL1State
	KindDirState

	numKinds
)

var kindNames = [numKinds]string{
	"msg-send", "msg-deliver", "msg-free",
	"miss-start", "miss-end",
	"dir-accept", "queue-park", "queue-unpark",
	"txn-start", "txn-process", "txn-last-ack", "txn-end",
	"l1-state", "dir-state",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// KindNames returns the kind vocabulary in code order (for log headers).
func KindNames() []string { return append([]string(nil), kindNames[:]...) }

// Flags bits carried by message records.
const (
	FlagStillSharer uint8 = 1 << iota
	FlagStillOwner
	FlagDirect
	FlagForwarded
)

// SubNone marks a record whose Sub field carries no message or cause
// code (e.g. miss-end).
const SubNone uint8 = 0xff

// Cause codes for state-transition records whose trigger is not a
// message type: a core-side load/store, or the L1 re-issuing a GETX
// after a Grant raced with an invalidation. They live above any
// realistic message-type code so the two vocabularies share Sub.
const (
	CauseLoad uint8 = 0x40 + iota
	CauseStore
	CauseReissue
)

// L1 transient codes (the MSHR's contribution to an L1 state code).
const (
	TransNone uint8 = iota
	TransIS
	TransIM
	TransSM
)

// L1Code packs an L1 region state: the strongest resident stable state
// (0..3 = I/S/E/M, matching cache.State) in the low bits, the MSHR
// transient above it.
func L1Code(stable, transient uint8) uint8 { return stable&3 | transient<<2 }

var l1Stable = [4]string{"I", "S", "E", "M"}
var l1Trans = [4]string{"", "_IS", "_IM", "_SM"}

// L1StateName renders an L1 state code like the protocol tables
// ("I_IM", "S_SM", "M_IS" — the Figure 6 race state).
func L1StateName(c uint8) string { return l1Stable[c&3] + l1Trans[(c>>2)&3] }

// Directory state codes (Table 2: O+ is Protozoa-MW's multi-owner).
const (
	DirI uint8 = iota
	DirSS
	DirO
	DirOPlus
)

var dirNames = [4]string{"I", "SS", "O", "O+"}

// DirStateName renders a directory state code.
func DirStateName(c uint8) string { return dirNames[c&3] }

// L1StateNames / DirStateNames return the state vocabularies in code
// order (for log headers). L1 names cover the full packed code space.
func L1StateNames() []string {
	out := make([]string, 16)
	for c := range out {
		out[c] = L1StateName(uint8(c))
	}
	return out
}

func DirStateNames() []string { return append([]string(nil), dirNames[:]...) }

// Record is one fixed-size flight-recorder entry. Field meaning varies
// by Kind; unused fields are zero (Req is -1 when no core is behind the
// step, e.g. inclusion recalls).
type Record struct {
	Cycle  engine.Cycle
	Seq    uint64 // per-ring sequence number, stamped by Ring.Record
	Region uint64
	Txn    uint64 // directory transaction ID (0 = none)
	Valid  mem.Bitmap
	Dirty  mem.Bitmap
	Tile   int16 // tile that recorded the step
	Src    int16 // message source / core for miss records
	Dst    int16 // message destination (-1 when none)
	Req    int16 // requesting core for txn-phase records (-1 = none)
	Kind   Kind
	Sub    uint8 // message type or transition cause (SubNone = none)
	From   uint8 // state code before (state-transition records)
	To     uint8 // state code after
	Flags  uint8
	R      mem.Range
}

// Ring is one tile's bounded record buffer. Capacity bounds memory; the
// buffer grows lazily up to it and then wraps, evicting the oldest
// record (counted in dropped). Single-goroutine by construction.
type Ring struct {
	buf     []Record
	cap     int
	next    int
	wrapped bool
	seq     uint64
	dropped uint64
}

func newRing(capacity int) *Ring { return &Ring{cap: capacity} }

// Record appends one record, stamping its sequence number.
func (r *Ring) Record(rec Record) {
	rec.Seq = r.seq
	r.seq++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	r.wrapped = true
	r.dropped++
}

// Len reports the records currently held.
func (r *Ring) Len() int { return len(r.buf) }

// Dropped reports records evicted by ring wrap.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Snapshot returns the held records oldest-first.
func (r *Ring) Snapshot() []Record {
	if !r.wrapped {
		return append([]Record(nil), r.buf...)
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// DefaultCap is the record capacity when the caller passes <= 0
// (~32k records, a few MiB once populated).
const DefaultCap = 1 << 15

// Recorder owns the per-tile rings and the deterministic merge.
type Recorder struct {
	rings []*Ring
}

// NewRecorder builds a recorder with rings rings splitting capacity
// evenly (capacity <= 0 selects DefaultCap). Sequential machines pass
// rings=1 and share the single ring across tiles, preserving exact
// execution order; PDES machines pass one ring per tile.
func NewRecorder(rings, capacity int) *Recorder {
	if rings < 1 {
		rings = 1
	}
	if capacity <= 0 {
		capacity = DefaultCap
	}
	per := capacity / rings
	if per < 1 {
		per = 1
	}
	r := &Recorder{rings: make([]*Ring, rings)}
	for i := range r.rings {
		r.rings[i] = newRing(per)
	}
	return r
}

// Ring returns ring i (i is the tile index, or 0 when shared).
func (r *Recorder) Ring(i int) *Ring { return r.rings[i] }

// Rings reports the ring count.
func (r *Recorder) Rings() int { return len(r.rings) }

// Dropped sums ring-wrap evictions across all rings.
func (r *Recorder) Dropped() uint64 {
	var n uint64
	for _, ring := range r.rings {
		n += ring.dropped
	}
	return n
}

// Len sums held records across all rings.
func (r *Recorder) Len() int {
	n := 0
	for _, ring := range r.rings {
		n += ring.Len()
	}
	return n
}

// Records merges every ring into one cycle-ordered transcript. The
// concat walks rings in tile order and the sort is stable on cycle
// alone, so same-cycle records keep tile order — the merged output is
// identical at any worker count, and identical to the single shared
// ring's order in sequential mode (each ring is already cycle-sorted).
func (r *Recorder) Records() []Record {
	if len(r.rings) == 1 {
		return r.rings[0].Snapshot()
	}
	var out []Record
	for _, ring := range r.rings {
		out = append(out, ring.Snapshot()...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Cycle < out[j].Cycle })
	return out
}
