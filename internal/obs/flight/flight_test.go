package flight

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"protozoa/internal/mem"
)

func TestRingWrapDropsOldest(t *testing.T) {
	r := newRing(4)
	for c := 0; c < 7; c++ {
		r.Record(Record{Cycle: 10 * 7, Region: uint64(c)})
	}
	if r.Len() != 4 {
		t.Fatalf("ring holds %d records, want 4", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3", r.Dropped())
	}
	snap := r.Snapshot()
	for i, rec := range snap {
		if rec.Region != uint64(3+i) {
			t.Fatalf("snapshot[%d].Region = %d, want %d (oldest-first after wrap)", i, rec.Region, 3+i)
		}
		if rec.Seq != uint64(3+i) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, rec.Seq, 3+i)
		}
	}
}

// TestRecorderMergeStable pins the determinism contract: the merge is a
// stable sort on cycle alone, so same-cycle records from different
// rings keep ring (tile) order.
func TestRecorderMergeStable(t *testing.T) {
	r := NewRecorder(3, 300)
	// Ring 2 records cycle 5 first in wall-clock terms, but ring order
	// must win the tie.
	r.Ring(2).Record(Record{Cycle: 5, Region: 21})
	r.Ring(0).Record(Record{Cycle: 5, Region: 1})
	r.Ring(0).Record(Record{Cycle: 7, Region: 2})
	r.Ring(1).Record(Record{Cycle: 5, Region: 11})
	merged := r.Records()
	var got []uint64
	for _, rec := range merged {
		got = append(got, rec.Region)
	}
	// The stable sort keeps ring order among the cycle-5 records:
	// 1 (ring0), 11 (ring1), 21 (ring2) — then the cycle-7 record.
	want := []uint64{1, 11, 21, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged regions = %v, want %v", got, want)
	}
}

func TestRecorderCapacitySplit(t *testing.T) {
	r := NewRecorder(4, 8)
	for i := 0; i < 4; i++ {
		for c := 0; c < 5; c++ {
			r.Ring(i).Record(Record{Cycle: 1})
		}
	}
	if r.Len() != 8 {
		t.Fatalf("total held %d, want 8 (capacity split 2 per ring)", r.Len())
	}
	if r.Dropped() != 12 {
		t.Fatalf("dropped %d, want 12", r.Dropped())
	}
}

func TestStateNames(t *testing.T) {
	if got := L1StateName(L1Code(0, TransIM)); got != "I_IM" {
		t.Errorf("L1 I+IM = %q", got)
	}
	if got := L1StateName(L1Code(3, TransIS)); got != "M_IS" {
		t.Errorf("L1 M+IS = %q (the Figure 6 race state)", got)
	}
	if got := L1StateName(L1Code(1, TransNone)); got != "S" {
		t.Errorf("L1 S = %q", got)
	}
	if got := DirStateName(DirOPlus); got != "O+" {
		t.Errorf("dir O+ = %q", got)
	}
}

func TestFormatRecords(t *testing.T) {
	n := &Names{Msgs: []string{"GETS", "GETX"}}
	send := Record{Cycle: 2041, Tile: 3, Kind: KindMsgSend, Sub: 1,
		Src: 0, Dst: 3, Region: 7, Txn: 12,
		R: mem.Range{Start: 0, End: 3}, Valid: 0xf,
		Flags: FlagDirect}
	line := send.Format(n)
	for _, want := range []string{"@2041", "t3", "msg-send", "GETX", "C0->T3", "region 7", "txn 12", "[0--3]", "4w", "direct"} {
		if !strings.Contains(line, want) {
			t.Errorf("send line %q missing %q", line, want)
		}
	}
	st := Record{Cycle: 9, Tile: 0, Kind: KindL1State, Sub: CauseStore,
		Src: 0, Region: 5, From: L1Code(0, TransNone), To: L1Code(0, TransIM)}
	line = st.Format(n)
	for _, want := range []string{"l1-state", "Store", "core 0", "region 5", "I -> I_IM"} {
		if !strings.Contains(line, want) {
			t.Errorf("state line %q missing %q", line, want)
		}
	}
}

func TestLogRoundTrip(t *testing.T) {
	recs := []Record{
		{Cycle: 1, Seq: 0, Tile: 2, Kind: KindMsgSend, Sub: 1, Src: 0, Dst: 2,
			Req: -1, Region: 77, Txn: 5, Flags: FlagStillOwner,
			R: mem.Range{Start: 2, End: 6}, Valid: 0x7c, Dirty: 0x40},
		{Cycle: 3, Seq: 1, Tile: 2, Kind: KindDirState, Sub: SubNone,
			Req: 4, Region: 77, From: DirSS, To: DirO},
	}
	var buf bytes.Buffer
	meta := Meta{Protocol: "mw", Cores: 16, RegionBytes: 64,
		Dropped: 9, Msgs: []string{"GETS", "GETX"}}
	if err := WriteLog(&buf, meta, recs); err != nil {
		t.Fatal(err)
	}
	gotMeta, gotRecs, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gotMeta.Protocol != "mw" || gotMeta.Cores != 16 || gotMeta.Dropped != 9 ||
		gotMeta.Records != 2 || len(gotMeta.Kinds) != int(numKinds) {
		t.Fatalf("meta round trip: %+v", gotMeta)
	}
	if !reflect.DeepEqual(gotRecs, recs) {
		t.Fatalf("records round trip:\ngot  %+v\nwant %+v", gotRecs, recs)
	}
	if _, _, err := ReadLog(strings.NewReader("{\"format\":\"nope\"}\n")); err == nil {
		t.Fatal("foreign format accepted")
	}
}

// TestReconstruct pins the phase algebra against a hand-built
// transcript, including the reissue-overwrite + monotone-clamp case
// obs.LatencyBreakdown documents.
func TestReconstruct(t *testing.T) {
	recs := []Record{
		// Core 1: a clean 4-phase miss on region 7.
		{Cycle: 100, Kind: KindMissStart, Src: 1, Req: 1, Region: 7, Sub: 1},
		{Cycle: 110, Kind: KindDirAccept, Req: 1, Region: 7},
		{Cycle: 112, Kind: KindTxnStart, Req: 1, Region: 7},
		{Cycle: 126, Kind: KindTxnProcess, Req: 1, Region: 7},
		{Cycle: 140, Kind: KindTxnLastAck, Req: 1, Region: 7},
		{Cycle: 150, Kind: KindMissEnd, Src: 1, Region: 7},
		// Core 2: stamps from an abandoned round overwritten by a
		// reissue that never reached last-ack; the clamp folds the gap.
		{Cycle: 200, Kind: KindMissStart, Src: 2, Req: 2, Region: 9, Sub: 1},
		{Cycle: 210, Kind: KindDirAccept, Req: 2, Region: 9},
		{Cycle: 212, Kind: KindTxnStart, Req: 2, Region: 9},
		{Cycle: 230, Kind: KindDirAccept, Req: 2, Region: 9}, // reissue
		{Cycle: 232, Kind: KindTxnStart, Req: 2, Region: 9},
		{Cycle: 246, Kind: KindTxnProcess, Req: 2, Region: 9},
		{Cycle: 260, Kind: KindMissEnd, Src: 2, Region: 9},
		// Core 3: still open at end of log.
		{Cycle: 300, Kind: KindMissStart, Src: 3, Req: 3, Region: 1, Sub: 0},
		// A recall transaction (no requesting core) must be ignored.
		{Cycle: 305, Kind: KindTxnStart, Req: -1, Region: 1},
	}
	txns := Reconstruct(recs)
	if len(txns) != 3 {
		t.Fatalf("reconstructed %d txns, want 3", len(txns))
	}
	a := txns[0]
	if a.Core != 1 || a.Total() != 50 {
		t.Fatalf("txn A: %+v", a)
	}
	if want := [NumPhases]uint64{10, 2, 14, 14, 10}; a.Dwell != want {
		t.Fatalf("txn A dwell %v, want %v", a.Dwell, want)
	}
	b := txns[1]
	// last-ack never stamped: clamp pulls it up to process (246), so
	// fanout-acks is 0 and data-fill absorbs 260-246.
	if want := [NumPhases]uint64{30, 2, 14, 0, 14}; b.Dwell != want {
		t.Fatalf("txn B dwell %v, want %v", b.Dwell, want)
	}
	var sum uint64
	for _, d := range b.Dwell {
		sum += d
	}
	if sum != b.Total() {
		t.Fatalf("txn B dwells sum to %d, total %d", sum, b.Total())
	}
	c := txns[2]
	if !c.Open || c.Core != 3 {
		t.Fatalf("txn C should be open for core 3: %+v", c)
	}
}
