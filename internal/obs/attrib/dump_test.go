package attrib

import (
	"encoding/json"
	"reflect"
	"testing"
)

// buildTracker populates a tracker with a mix of patterns: a private
// region, a false-shared region with an offender, a read-only region,
// and a recall invalidation.
func buildTracker() *Tracker {
	t := New(4)
	// Region 1: private to core 0.
	for i := 0; i < 10; i++ {
		t.Access(0, 1, uint8(i%4), i%3 == 0)
	}
	t.Fill(0, 1, 8)
	t.Death(0, 1, 5, 8)
	// Region 2: word-disjoint writers with heavy churn (false-shared).
	for i := 0; i < 50; i++ {
		t.Access(1, 2, 0, true)
		t.Access(2, 2, 8, true)
		t.Invalidation(2, 1, 2, 4)
		t.Upgrade(1, 2)
	}
	t.Fill(1, 2, 16)
	t.Fill(2, 2, 16)
	t.Death(1, 2, 2, 16)
	t.Death(2, 2, 2, 16)
	t.Fanout(2, 3)
	// Region 3: read-only sharing plus a recall invalidation.
	t.Access(0, 3, 0, false)
	t.Access(3, 3, 1, false)
	t.Fill(3, 3, 4)
	t.Death(3, 3, 4, 4)
	t.Invalidation(3, -1, 3, 2)
	return t
}

func TestDumpRoundTrip(t *testing.T) {
	orig := buildTracker()
	d := orig.Dump()

	// Through JSON, as the result cache stores it.
	enc, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Dump
	if err := json.Unmarshal(enc, &decoded); err != nil {
		t.Fatal(err)
	}
	restored, err := FromDump(&decoded)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := restored.Summarize(), orig.Summarize(); got != want {
		t.Fatalf("Summarize mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got, want := restored.TopOffenders(0), orig.TopOffenders(0); !reflect.DeepEqual(got, want) {
		t.Fatalf("TopOffenders mismatch:\n got %+v\nwant %+v", got, want)
	}
	if !reflect.DeepEqual(restored.InvByOffender, orig.InvByOffender) ||
		!reflect.DeepEqual(restored.InvByVictim, orig.InvByVictim) ||
		!reflect.DeepEqual(restored.UpgradesByCore, orig.UpgradesByCore) {
		t.Fatal("per-core slices mismatch")
	}
	if err := restored.Reconcile(); err != nil {
		t.Fatalf("restored tracker fails reconciliation: %v", err)
	}
	// Patterns must recompute identically.
	if got, want := restored.PatternOf(2), orig.PatternOf(2); got != want {
		t.Fatalf("region 2 pattern = %v, want %v", got, want)
	}
}

// TestDumpCanonical pins that dumping the same logical state twice
// yields identical bytes — required for the cache's byte-identical
// warm-output contract.
func TestDumpCanonical(t *testing.T) {
	a, _ := json.Marshal(buildTracker().Dump())
	b, _ := json.Marshal(buildTracker().Dump())
	if string(a) != string(b) {
		t.Fatal("dump encoding is not canonical")
	}
	// And dump-of-restored matches dump-of-original.
	var d Dump
	if err := json.Unmarshal(a, &d); err != nil {
		t.Fatal(err)
	}
	restored, err := FromDump(&d)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := json.Marshal(restored.Dump())
	if string(a) != string(c) {
		t.Fatal("restored tracker dumps differently from original")
	}
}

func TestFromDumpValidates(t *testing.T) {
	if _, err := FromDump(&Dump{Cores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
	bad := buildTracker().Dump()
	bad.Regions[0].Foot = bad.Regions[0].Foot[:1]
	if _, err := FromDump(bad); err == nil {
		t.Fatal("short footprint accepted")
	}
}
