package attrib

import (
	"sync"
	"testing"

	"protozoa/internal/mem"
)

func TestClassification(t *testing.T) {
	const cores = 4
	cases := []struct {
		name string
		feed func(tr *Tracker)
		want Pattern
	}{
		{"untouched", func(tr *Tracker) {
			tr.Fanout(1, 2) // probes create state but record no access
		}, Untouched},
		{"private", func(tr *Tracker) {
			tr.Access(0, 1, 0, false)
			tr.Access(0, 1, 1, true)
		}, Private},
		{"read-only", func(tr *Tracker) {
			tr.Access(0, 1, 0, false)
			tr.Access(1, 1, 0, false)
		}, ReadOnly},
		{"partitioned", func(tr *Tracker) {
			// Word-disjoint writers, no invalidations: the MW view of
			// the Figure 1 counter line.
			tr.Access(0, 1, 0, true)
			tr.Access(0, 1, 0, false)
			tr.Access(1, 1, 1, true)
			tr.Access(1, 1, 1, false)
		}, Partitioned},
		{"false-shared", func(tr *Tracker) {
			// Same footprint, but the protocol invalidated someone:
			// the MESI view of the same line.
			tr.Access(0, 1, 0, true)
			tr.Access(1, 1, 1, true)
			tr.Invalidation(1, 0, 1, 1)
		}, FalseShared},
		{"migratory", func(tr *Tracker) {
			// Every core RMWs the same word (atomic counter).
			tr.Access(0, 1, 0, true)
			tr.Access(0, 1, 0, false)
			tr.Access(1, 1, 0, true)
			tr.Access(1, 1, 0, false)
			tr.Invalidation(1, 1, 0, 1)
		}, Migratory},
		{"read-write", func(tr *Tracker) {
			// Producer/consumer: one writer, distinct readers.
			tr.Access(0, 1, 0, true)
			tr.Access(1, 1, 0, false)
			tr.Access(2, 1, 0, false)
		}, ReadWrite},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := New(cores)
			tc.feed(tr)
			if got := tr.PatternOf(1); got != tc.want {
				t.Errorf("pattern = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestShardTrackersMergeUnderRace mirrors the PDES deployment —
// per-tile trackers recording concurrently, then folded into one — so
// the tier-1 -race pass actually exercises the concurrent publish
// pattern drivers rely on (each shard private to its goroutine, Merge
// on the collector side only).
func TestShardTrackersMergeUnderRace(t *testing.T) {
	const cores, shards = 4, 8
	trackers := make([]*Tracker, shards)
	var wg sync.WaitGroup
	for i := range trackers {
		trackers[i] = New(cores)
		wg.Add(1)
		go func(tr *Tracker, seed int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				region := mem.RegionID(1 + (seed+j)%16)
				core := (seed + j) % cores
				tr.Access(core, region, uint8(j%16), j%3 == 0)
				if j%7 == 0 {
					tr.Fill(core, region, 4)
					tr.Death(core, region, 2, 4)
				}
				if j%11 == 0 {
					tr.Invalidation(region, core, (core+1)%cores, 2)
				}
			}
		}(trackers[i], i)
	}
	wg.Wait()
	merged := New(cores)
	var wantInv uint64
	for _, tr := range trackers {
		wantInv += tr.Invalidations
		merged.Merge(tr)
	}
	if merged.Invalidations != wantInv {
		t.Errorf("merged invalidations %d, want %d", merged.Invalidations, wantInv)
	}
	if merged.RegionCount() == 0 {
		t.Error("merge dropped all regions")
	}
	if err := merged.Reconcile(); err != nil {
		t.Errorf("merged tracker does not reconcile: %v", err)
	}
}

func TestPatternCountsIncremental(t *testing.T) {
	tr := New(2)
	tr.Access(0, 7, 0, false)
	if c := tr.PatternCounts(); c[Private] != 1 {
		t.Fatalf("counts after first access: %v", c)
	}
	// Second core joins read-only; counts must move, not accumulate.
	tr.Access(1, 7, 1, false)
	c := tr.PatternCounts()
	if c[Private] != 0 || c[ReadOnly] != 1 {
		t.Fatalf("counts after second reader: %v", c)
	}
	// A write flips it again.
	tr.Access(1, 7, 1, true)
	c = tr.PatternCounts()
	if c[ReadOnly] != 0 || c[Partitioned] != 1 {
		t.Fatalf("counts after write: %v", c)
	}
	total := uint64(0)
	for _, n := range c {
		total += n
	}
	if total != uint64(tr.RegionCount()) {
		t.Fatalf("pattern counts sum %d != %d regions", total, tr.RegionCount())
	}
}

func TestFillDeathReconciles(t *testing.T) {
	tr := New(2)
	tr.Fill(0, 3, 8)
	tr.Fill(1, 3, 4)
	tr.Death(0, 3, 5, 8)
	tr.Death(1, 3, 1, 4)
	if err := tr.Reconcile(); err != nil {
		t.Fatal(err)
	}
	if tr.FetchedWords != 12 || tr.UsedWords != 6 || tr.UnusedWords != 6 {
		t.Fatalf("totals fetched/used/unused = %d/%d/%d",
			tr.FetchedWords, tr.UsedWords, tr.UnusedWords)
	}
	if got := tr.UtilPct(); got != 50 {
		t.Fatalf("UtilPct = %v, want 50", got)
	}
	if got := tr.WastedBytes(); got != 6*mem.WordBytes {
		t.Fatalf("WastedBytes = %d", got)
	}
	// A fill with no death yet must fail reconciliation.
	tr.Fill(0, 9, 2)
	if err := tr.Reconcile(); err == nil {
		t.Fatal("Reconcile passed with an undied fill outstanding")
	}
}

func TestInvalidationAttribution(t *testing.T) {
	tr := New(4)
	tr.Access(1, 5, 0, true)
	tr.Invalidation(5, 2, 1, 3) // core 2's request took 3 words from core 1
	tr.Invalidation(5, 2, 3, 1)
	tr.Invalidation(5, -1, 1, 2) // inclusion recall: no offender core
	if tr.Invalidations != 3 || tr.InvWordsLost != 6 {
		t.Fatalf("invals/words = %d/%d", tr.Invalidations, tr.InvWordsLost)
	}
	if tr.InvByOffender[2] != 2 || tr.RecallInvalidations != 1 {
		t.Fatalf("offender attribution: %v, recalls %d", tr.InvByOffender, tr.RecallInvalidations)
	}
	if tr.InvByVictim[1] != 2 || tr.InvByVictim[3] != 1 {
		t.Fatalf("victim attribution: %v", tr.InvByVictim)
	}
	infos := tr.TopOffenders(1)
	if len(infos) != 1 || infos[0].Region != 5 || infos[0].Offender != 2 {
		t.Fatalf("top offender: %+v", infos)
	}
}

func TestTopOffendersDeterministicOrder(t *testing.T) {
	tr := New(2)
	// Three regions with identical scores: order must fall back to id.
	for _, id := range []mem.RegionID{30, 10, 20} {
		tr.Fill(0, id, 8)
		tr.Death(0, id, 4, 8)
	}
	got := tr.TopOffenders(0)
	if len(got) != 3 || got[0].Region != 10 || got[1].Region != 20 || got[2].Region != 30 {
		t.Fatalf("order: %v, %v, %v", got[0].Region, got[1].Region, got[2].Region)
	}
	// A higher-waste region jumps the queue.
	tr.Fill(0, 40, 16)
	tr.Death(0, 40, 0, 16)
	if got := tr.TopOffenders(2); got[0].Region != 40 {
		t.Fatalf("scored order: %v first, want 40", got[0].Region)
	}
}

func TestSummaryAdd(t *testing.T) {
	a := New(2)
	a.Fill(0, 1, 8)
	a.Death(0, 1, 8, 8)
	b := New(2)
	b.Fill(0, 2, 8)
	b.Death(0, 2, 0, 8)
	b.Access(0, 2, 0, false)

	s := a.Summarize()
	s.Add(b.Summarize())
	if s.FetchedWords != 16 || s.UtilPct != 50 {
		t.Fatalf("merged summary: %+v", s)
	}
	if s.Regions != 2 || s.WastedBytes != 8*mem.WordBytes {
		t.Fatalf("merged summary: %+v", s)
	}
}
