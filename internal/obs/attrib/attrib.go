// Package attrib attributes coherence traffic to the regions and cores
// that cause it. A Tracker accumulates, per region, the word-level
// reader/writer footprint of every core, the fetched-vs-used word
// balance of every fill, and the invalidations and upgrades the region
// suffered — enough to answer the two questions the paper's motivation
// rests on: what fraction of fetched data is ever used (§1-2 cache
// utilization), and which sharing pattern explains the traffic
// (private, read-only, false-shared, migratory, read-write).
//
// Like the rest of internal/obs, the package knows nothing about the
// protocol engine: the core wires nil-checked hooks into its L1 and
// directory paths (see core.System.EnableAttribution), so a run with
// attribution disabled pays one predictable branch per site.
//
// Accounting discipline: fetched words are counted once per fill, and
// classified used/unused exactly once when the block dies (eviction,
// invalidation, or the end-of-run residual flush) — so after a
// complete run, FetchedWords == UsedWords + UnusedWords holds exactly
// (Reconcile checks it, globally and per region).
package attrib

import (
	"fmt"
	"sort"

	"protozoa/internal/mem"
)

// Pattern classifies a region's observed sharing behaviour from its
// reader/writer word footprints and invalidation history.
type Pattern uint8

const (
	// Untouched: no recorded accesses (a region seen only via probes).
	Untouched Pattern = iota
	// Private: exactly one core touched the region.
	Private
	// ReadOnly: multiple cores, no writer.
	ReadOnly
	// Partitioned: multiple cores with word-disjoint footprints that
	// the protocol resolved without sustained coherence churn
	// (Protozoa-MW on the Figure 1 counter line — at most a cold-start
	// transient while the predictor converges).
	Partitioned
	// FalseShared: word-disjoint sharing that still causes sustained
	// invalidation/upgrade churn — cores fight over a region none of
	// whose words they actually share (what region-granularity
	// coherence does to the Figure 1 counter line).
	FalseShared
	// Migratory: cores conflict on words they both read and write —
	// the read-modify-write token (lock, shared counter) that migrates
	// core to core.
	Migratory
	// ReadWrite: true word-level read-write sharing (producer/consumer
	// and everything else).
	ReadWrite

	// NumPatterns sizes per-pattern count arrays.
	NumPatterns
)

func (p Pattern) String() string {
	switch p {
	case Untouched:
		return "untouched"
	case Private:
		return "private"
	case ReadOnly:
		return "read-only"
	case Partitioned:
		return "partitioned"
	case FalseShared:
		return "false-shared"
	case Migratory:
		return "migratory"
	case ReadWrite:
		return "read-write"
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// regionState is one region's accumulated attribution. The foot slice
// packs per-core reader bitmaps at [c] and writer bitmaps at [cores+c]
// so a region costs two allocations (struct + one slice).
type regionState struct {
	id   mem.RegionID
	foot []mem.Bitmap

	accesses              uint64 // CPU references (churn-rate denominator)
	fetched, used, unused uint64 // words
	fills, deaths         uint64
	invals                uint64 // invalidation events that took words from an L1
	invWords              uint64 // words those events took
	upgrades              uint64
	probes                uint64 // directory probe messages fanned out

	invByCore  []uint32 // requester core behind each invalidation event
	recallInvs uint32   // invalidations from L2 inclusion recalls (no core)

	pattern Pattern
	dirty   bool // footprint or invals changed since last classify
}

// Tracker accumulates attribution for one run. It is single-goroutine
// like the machine it observes; snapshot methods (Summary, TopOffenders,
// PatternCounts, ...) may be called mid-run or after.
//
// The exported counter fields are hot-path-updated totals; treat them
// as read-only outside this package.
type Tracker struct {
	cores   int
	regions map[mem.RegionID]*regionState

	// last memoizes the most recent region lookup: consecutive
	// accesses hit the same region almost always.
	last *regionState

	// dirtyList holds regions whose classification is stale; flushed
	// lazily so the per-access cost stays a bitmap OR plus a flag.
	dirtyList     []*regionState
	patternCounts [NumPatterns]uint64

	// Run totals, in words unless noted.
	FetchedWords uint64 // words brought into L1s by fills
	UsedWords    uint64 // fetched words touched before their block died
	UnusedWords  uint64 // fetched words never touched (wasted NoC bytes)
	Fills        uint64
	Deaths       uint64

	Invalidations       uint64 // events where a probe took words from an L1
	InvWordsLost        uint64 // words those events took
	Upgrades            uint64 // write-to-Shared upgrade misses
	ProbeMsgs           uint64 // directory probe messages fanned out
	RecallInvalidations uint64 // invalidations from L2 inclusion recalls

	InvByOffender  []uint64 // per requester core whose request invalidated others
	InvByVictim    []uint64 // per core that lost words (== stats.PerCore Invalidations)
	UpgradesByCore []uint64
}

// New returns a Tracker for a machine with the given core count.
func New(cores int) *Tracker {
	return &Tracker{
		cores:          cores,
		regions:        make(map[mem.RegionID]*regionState),
		InvByOffender:  make([]uint64, cores),
		InvByVictim:    make([]uint64, cores),
		UpgradesByCore: make([]uint64, cores),
	}
}

// Cores reports the tracked machine's core count.
func (t *Tracker) Cores() int { return t.cores }

// RegionCount reports how many distinct regions have attribution state.
func (t *Tracker) RegionCount() int { return len(t.regions) }

func (t *Tracker) state(id mem.RegionID) *regionState {
	if r := t.last; r != nil && r.id == id {
		return r
	}
	r := t.regions[id]
	if r == nil {
		r = &regionState{
			id:        id,
			foot:      make([]mem.Bitmap, 2*t.cores),
			invByCore: make([]uint32, t.cores),
		}
		t.regions[id] = r
		t.markDirty(r)
		t.patternCounts[Untouched]++
	}
	t.last = r
	return r
}

func (t *Tracker) markDirty(r *regionState) {
	if !r.dirty {
		r.dirty = true
		t.dirtyList = append(t.dirtyList, r)
	}
}

// Access records one CPU reference: core touched word w of the region,
// reading or writing. Called on L1 hits and misses alike — it tracks
// the program's footprint, not the protocol's behaviour.
func (t *Tracker) Access(core int, region mem.RegionID, w uint8, write bool) {
	r := t.state(region)
	r.accesses++
	idx := core
	if write {
		idx += t.cores
	}
	if !r.foot[idx].Has(w) {
		r.foot[idx] = r.foot[idx].Set(w)
		t.markDirty(r)
	}
}

// Fill records a data fill of the given word count into core's L1.
func (t *Tracker) Fill(core int, region mem.RegionID, words int) {
	r := t.state(region)
	r.fetched += uint64(words)
	r.fills++
	t.FetchedWords += uint64(words)
	t.Fills++
}

// Death records a block leaving an L1 (eviction, invalidation, or the
// end-of-run residual flush): used of its total words were touched.
func (t *Tracker) Death(core int, region mem.RegionID, used, total int) {
	r := t.state(region)
	r.used += uint64(used)
	r.unused += uint64(total - used)
	r.deaths++
	t.UsedWords += uint64(used)
	t.UnusedWords += uint64(total - used)
	t.Deaths++
}

// Invalidation records a probe taking wordsLost words from victim's L1
// on behalf of requester core offender (-1 when no core is behind it —
// an L2 inclusion recall).
func (t *Tracker) Invalidation(region mem.RegionID, offender, victim, wordsLost int) {
	r := t.state(region)
	r.invals++
	r.invWords += uint64(wordsLost)
	t.Invalidations++
	t.InvWordsLost += uint64(wordsLost)
	t.InvByVictim[victim]++
	if offender >= 0 {
		r.invByCore[offender]++
		t.InvByOffender[offender]++
	} else {
		r.recallInvs++
		t.RecallInvalidations++
	}
	t.markDirty(r)
}

// Upgrade records a write-to-Shared upgrade miss by core on the region.
func (t *Tracker) Upgrade(core int, region mem.RegionID) {
	t.state(region).upgrades++
	t.Upgrades++
	t.UpgradesByCore[core]++
}

// Fanout records the directory probing `probes` L1s for the region.
func (t *Tracker) Fanout(region mem.RegionID, probes int) {
	t.state(region).probes += uint64(probes)
	t.ProbeMsgs += uint64(probes)
}

// Merge folds another tracker's state into t — the PDES shard merge.
// Every per-region input is a sum or bitmap union and classification
// is recomputed lazily from the merged state, so folding shards in any
// order reproduces exactly the state one shared tracker would hold.
// Both trackers must have the same core count.
func (t *Tracker) Merge(o *Tracker) {
	if o.cores != t.cores {
		panic(fmt.Sprintf("attrib: merging trackers with %d and %d cores", o.cores, t.cores))
	}
	for id, or := range o.regions {
		r := t.state(id)
		for i := range or.foot {
			r.foot[i] = r.foot[i].Union(or.foot[i])
		}
		r.accesses += or.accesses
		r.fetched += or.fetched
		r.used += or.used
		r.unused += or.unused
		r.fills += or.fills
		r.deaths += or.deaths
		r.invals += or.invals
		r.invWords += or.invWords
		r.upgrades += or.upgrades
		r.probes += or.probes
		for c := range or.invByCore {
			r.invByCore[c] += or.invByCore[c]
		}
		r.recallInvs += or.recallInvs
		t.markDirty(r)
	}
	t.FetchedWords += o.FetchedWords
	t.UsedWords += o.UsedWords
	t.UnusedWords += o.UnusedWords
	t.Fills += o.Fills
	t.Deaths += o.Deaths
	t.Invalidations += o.Invalidations
	t.InvWordsLost += o.InvWordsLost
	t.Upgrades += o.Upgrades
	t.ProbeMsgs += o.ProbeMsgs
	t.RecallInvalidations += o.RecallInvalidations
	for c := 0; c < t.cores; c++ {
		t.InvByOffender[c] += o.InvByOffender[c]
		t.InvByVictim[c] += o.InvByVictim[c]
		t.UpgradesByCore[c] += o.UpgradesByCore[c]
	}
}

// falseShareAccessesPerChurn is the sustained-churn gate for the
// false-shared label: more than one invalidation or upgrade per this
// many accesses to the region. Steady ping-pong invalidates every few
// accesses (rate ~1 churn per 2 accesses per writer); a cold-start
// transient is a constant, so its rate falls below any fixed threshold
// as the run grows.
const falseShareAccessesPerChurn = 64

// classify derives the region's sharing pattern from its footprints.
func (t *Tracker) classify(r *regionState) Pattern {
	touchers, writers := 0, 0
	for c := 0; c < t.cores; c++ {
		rd, wr := r.foot[c], r.foot[t.cores+c]
		if rd|wr != 0 {
			touchers++
		}
		if wr != 0 {
			writers++
		}
	}
	switch {
	case touchers == 0:
		return Untouched
	case touchers == 1:
		return Private
	case writers == 0:
		return ReadOnly
	}
	// Word-level conflict scan: a conflict word is written by someone
	// and touched by at least one other core. Migratory sharing is the
	// special conflict where every core on the word also writes it
	// (the RMW token); one writer plus readers is producer/consumer.
	conflict, migratory := false, true
	for w := uint8(0); w < mem.MaxRegionWords; w++ {
		wTouch, wWrite := 0, 0
		readerOnly := false
		for c := 0; c < t.cores; c++ {
			rd, wr := r.foot[c].Has(w), r.foot[t.cores+c].Has(w)
			if rd || wr {
				wTouch++
			}
			if wr {
				wWrite++
			}
			if rd && !wr {
				readerOnly = true
			}
		}
		if wWrite >= 1 && wTouch >= 2 {
			conflict = true
			if readerOnly || wWrite < 2 {
				migratory = false
			}
		}
	}
	if !conflict {
		// Word-disjoint sharing: whether it was a problem is empirical.
		// Region-granularity coherence churns over it (sustained
		// invalidations, or upgrade ping-pong under single-writer
		// revocation); word-granularity coherence lets the cores
		// coexist after a bounded cold-start transient. The rate gate
		// separates the two: real false-sharing churn scales with the
		// access count, a predictor-convergence transient is O(1), so
		// its rate vanishes on any run long enough to matter.
		if (r.invals+r.upgrades)*falseShareAccessesPerChurn > r.accesses {
			return FalseShared
		}
		return Partitioned
	}
	if migratory {
		return Migratory
	}
	return ReadWrite
}

// flushDirty re-classifies every region whose inputs changed since the
// last snapshot and maintains the per-pattern counts incrementally.
func (t *Tracker) flushDirty() {
	for _, r := range t.dirtyList {
		if np := t.classify(r); np != r.pattern {
			t.patternCounts[r.pattern]--
			t.patternCounts[np]++
			r.pattern = np
		}
		r.dirty = false
	}
	t.dirtyList = t.dirtyList[:0]
}

// PatternCounts reports how many regions currently classify under each
// pattern.
func (t *Tracker) PatternCounts() [NumPatterns]uint64 {
	t.flushDirty()
	return t.patternCounts
}

// FalseSharedRegions reports the regions currently classified
// false-shared.
func (t *Tracker) FalseSharedRegions() uint64 {
	t.flushDirty()
	return t.patternCounts[FalseShared]
}

// PatternOf reports a region's current classification (Untouched when
// the region has no attribution state).
func (t *Tracker) PatternOf(region mem.RegionID) Pattern {
	r := t.regions[region]
	if r == nil {
		return Untouched
	}
	t.flushDirty()
	return r.pattern
}

// UtilPct is the fill-side cache utilization: the percentage of
// fetched words touched before their block died. 100 when nothing was
// fetched.
func (t *Tracker) UtilPct() float64 {
	if t.FetchedWords == 0 {
		return 100
	}
	return 100 * float64(t.UsedWords) / float64(t.FetchedWords)
}

// WastedBytes is the NoC payload bytes fetched but never used.
func (t *Tracker) WastedBytes() uint64 { return t.UnusedWords * mem.WordBytes }

// Summary is a whole-run attribution rollup.
type Summary struct {
	Regions                              int
	FetchedWords, UsedWords, UnusedWords uint64
	UtilPct                              float64
	WastedBytes                          uint64
	Invalidations, InvWordsLost          uint64
	Upgrades, ProbeMsgs                  uint64
	RecallInvalidations                  uint64
	Patterns                             [NumPatterns]uint64
}

// Summarize rolls the tracker up.
func (t *Tracker) Summarize() Summary {
	return Summary{
		Regions:             len(t.regions),
		FetchedWords:        t.FetchedWords,
		UsedWords:           t.UsedWords,
		UnusedWords:         t.UnusedWords,
		UtilPct:             t.UtilPct(),
		WastedBytes:         t.WastedBytes(),
		Invalidations:       t.Invalidations,
		InvWordsLost:        t.InvWordsLost,
		Upgrades:            t.Upgrades,
		ProbeMsgs:           t.ProbeMsgs,
		RecallInvalidations: t.RecallInvalidations,
		Patterns:            t.PatternCounts(),
	}
}

// Add accumulates another summary into s (cross-workload rollups).
func (s *Summary) Add(o Summary) {
	s.Regions += o.Regions
	s.FetchedWords += o.FetchedWords
	s.UsedWords += o.UsedWords
	s.UnusedWords += o.UnusedWords
	s.Invalidations += o.Invalidations
	s.InvWordsLost += o.InvWordsLost
	s.Upgrades += o.Upgrades
	s.ProbeMsgs += o.ProbeMsgs
	s.RecallInvalidations += o.RecallInvalidations
	for i := range s.Patterns {
		s.Patterns[i] += o.Patterns[i]
	}
	if s.FetchedWords == 0 {
		s.UtilPct = 100
	} else {
		s.UtilPct = 100 * float64(s.UsedWords) / float64(s.FetchedWords)
	}
	s.WastedBytes = s.UnusedWords * mem.WordBytes
}

// RegionInfo is one region's attribution snapshot.
type RegionInfo struct {
	Region  mem.RegionID
	Pattern Pattern
	Sharers int // cores that touched the region

	FetchedWords, UsedWords, UnusedWords uint64
	Fills                                uint64
	Invalidations, InvWordsLost          uint64
	Upgrades, ProbeMsgs                  uint64

	// Offender is the core whose requests invalidated others most
	// often (-1 when the region saw no core-attributed invalidation).
	Offender int

	// Score ranks offenders: bytes the region wasted (fetched-unused)
	// plus bytes churned by invalidations.
	Score uint64
}

func (t *Tracker) info(r *regionState) RegionInfo {
	sharers := 0
	for c := 0; c < t.cores; c++ {
		if r.foot[c]|r.foot[t.cores+c] != 0 {
			sharers++
		}
	}
	offender, best := -1, uint32(0)
	for c, n := range r.invByCore {
		if n > best {
			offender, best = c, n
		}
	}
	return RegionInfo{
		Region: r.id, Pattern: r.pattern, Sharers: sharers,
		FetchedWords: r.fetched, UsedWords: r.used, UnusedWords: r.unused,
		Fills:         r.fills,
		Invalidations: r.invals, InvWordsLost: r.invWords,
		Upgrades: r.upgrades, ProbeMsgs: r.probes,
		Offender: offender,
		Score:    (r.unused + r.invWords) * mem.WordBytes,
	}
}

// TopOffenders returns the n regions responsible for the most wasted
// and invalidation-churned bytes, worst first. Ordering is
// deterministic: score, then invalidations, then region id.
func (t *Tracker) TopOffenders(n int) []RegionInfo {
	t.flushDirty()
	out := make([]RegionInfo, 0, len(t.regions))
	for _, r := range t.regions {
		out = append(out, t.info(r))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Invalidations != b.Invalidations {
			return a.Invalidations > b.Invalidations
		}
		return a.Region < b.Region
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Reconcile checks the accounting invariant — every fetched word was
// classified used or unused exactly once — globally and per region.
// It holds after a complete run (core.System.Run flushes residual
// blocks); mid-run, fills that haven't died yet make fetched exceed
// used+unused and Reconcile reports it.
func (t *Tracker) Reconcile() error {
	if t.FetchedWords != t.UsedWords+t.UnusedWords {
		return fmt.Errorf("attrib: fetched %d words != used %d + unused %d",
			t.FetchedWords, t.UsedWords, t.UnusedWords)
	}
	var fetched, used, unused, invals uint64
	for _, r := range t.regions {
		if r.fetched != r.used+r.unused {
			return fmt.Errorf("attrib: region %d: fetched %d words != used %d + unused %d",
				r.id, r.fetched, r.used, r.unused)
		}
		fetched += r.fetched
		used += r.used
		unused += r.unused
		invals += r.invals
	}
	if fetched != t.FetchedWords || used != t.UsedWords || unused != t.UnusedWords {
		return fmt.Errorf("attrib: per-region sums (%d/%d/%d) disagree with totals (%d/%d/%d)",
			fetched, used, unused, t.FetchedWords, t.UsedWords, t.UnusedWords)
	}
	if invals != t.Invalidations {
		return fmt.Errorf("attrib: per-region invalidations %d != total %d", invals, t.Invalidations)
	}
	return nil
}
