package attrib

import (
	"fmt"
	"sort"

	"protozoa/internal/mem"
)

// RegionDump is one region's serialized attribution state. Every field
// is integral, so a JSON round-trip is exact.
type RegionDump struct {
	ID   mem.RegionID
	Foot []mem.Bitmap // reader bitmaps [0,cores), writer bitmaps [cores,2*cores)

	Accesses uint64
	Fetched  uint64
	Used     uint64
	Unused   uint64
	Fills    uint64
	Deaths   uint64
	Invals   uint64
	InvWords uint64
	Upgrades uint64
	Probes   uint64

	// InvByCore is omitted (nil) when the region saw no core-attributed
	// invalidation — the common case — to keep payloads small.
	InvByCore  []uint32 `json:",omitempty"`
	RecallInvs uint32   `json:",omitempty"`
}

// Dump is a Tracker's complete serializable state, used by the result
// cache to persist attribution alongside a cell's stats. Regions are
// sorted by ID so the encoding is canonical: the same tracker state
// always serializes to the same bytes.
type Dump struct {
	Cores   int
	Regions []RegionDump

	FetchedWords uint64
	UsedWords    uint64
	UnusedWords  uint64
	Fills        uint64
	Deaths       uint64

	Invalidations       uint64
	InvWordsLost        uint64
	Upgrades            uint64
	ProbeMsgs           uint64
	RecallInvalidations uint64

	InvByOffender  []uint64
	InvByVictim    []uint64
	UpgradesByCore []uint64
}

// Dump snapshots the tracker into a serializable form. Classification
// state (patterns, dirty lists) is intentionally not captured: FromDump
// rebuilds it deterministically from the footprints, exactly as the
// PDES shard merge does.
func (t *Tracker) Dump() *Dump {
	d := &Dump{
		Cores:               t.cores,
		Regions:             make([]RegionDump, 0, len(t.regions)),
		FetchedWords:        t.FetchedWords,
		UsedWords:           t.UsedWords,
		UnusedWords:         t.UnusedWords,
		Fills:               t.Fills,
		Deaths:              t.Deaths,
		Invalidations:       t.Invalidations,
		InvWordsLost:        t.InvWordsLost,
		Upgrades:            t.Upgrades,
		ProbeMsgs:           t.ProbeMsgs,
		RecallInvalidations: t.RecallInvalidations,
		InvByOffender:       append([]uint64(nil), t.InvByOffender...),
		InvByVictim:         append([]uint64(nil), t.InvByVictim...),
		UpgradesByCore:      append([]uint64(nil), t.UpgradesByCore...),
	}
	for _, r := range t.regions {
		rd := RegionDump{
			ID:         r.id,
			Foot:       append([]mem.Bitmap(nil), r.foot...),
			Accesses:   r.accesses,
			Fetched:    r.fetched,
			Used:       r.used,
			Unused:     r.unused,
			Fills:      r.fills,
			Deaths:     r.deaths,
			Invals:     r.invals,
			InvWords:   r.invWords,
			Upgrades:   r.upgrades,
			Probes:     r.probes,
			RecallInvs: r.recallInvs,
		}
		for _, n := range r.invByCore {
			if n != 0 {
				rd.InvByCore = append([]uint32(nil), r.invByCore...)
				break
			}
		}
		d.Regions = append(d.Regions, rd)
	}
	sort.Slice(d.Regions, func(i, j int) bool { return d.Regions[i].ID < d.Regions[j].ID })
	return d
}

// FromDump reconstructs a Tracker from a Dump. Every region starts
// dirty, so pattern classification is recomputed from the restored
// footprints on the next snapshot — the rebuilt tracker is
// indistinguishable from the one that produced the dump.
func FromDump(d *Dump) (*Tracker, error) {
	if d.Cores <= 0 {
		return nil, fmt.Errorf("attrib: dump has invalid core count %d", d.Cores)
	}
	t := New(d.Cores)
	copy(t.InvByOffender, d.InvByOffender)
	copy(t.InvByVictim, d.InvByVictim)
	copy(t.UpgradesByCore, d.UpgradesByCore)
	t.FetchedWords = d.FetchedWords
	t.UsedWords = d.UsedWords
	t.UnusedWords = d.UnusedWords
	t.Fills = d.Fills
	t.Deaths = d.Deaths
	t.Invalidations = d.Invalidations
	t.InvWordsLost = d.InvWordsLost
	t.Upgrades = d.Upgrades
	t.ProbeMsgs = d.ProbeMsgs
	t.RecallInvalidations = d.RecallInvalidations
	for i := range d.Regions {
		rd := &d.Regions[i]
		if len(rd.Foot) != 2*d.Cores {
			return nil, fmt.Errorf("attrib: region %d footprint has %d entries, want %d",
				rd.ID, len(rd.Foot), 2*d.Cores)
		}
		if rd.InvByCore != nil && len(rd.InvByCore) != d.Cores {
			return nil, fmt.Errorf("attrib: region %d invByCore has %d entries, want %d",
				rd.ID, len(rd.InvByCore), d.Cores)
		}
		r := t.state(rd.ID) // registers the region and marks it dirty
		copy(r.foot, rd.Foot)
		r.accesses = rd.Accesses
		r.fetched = rd.Fetched
		r.used = rd.Used
		r.unused = rd.Unused
		r.fills = rd.Fills
		r.deaths = rd.Deaths
		r.invals = rd.Invals
		r.invWords = rd.InvWords
		r.upgrades = rd.Upgrades
		r.probes = rd.Probes
		copy(r.invByCore, rd.InvByCore)
		r.recallInvs = rd.RecallInvs
	}
	return t, nil
}
