package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: the recorder's ring renders as a JSON
// trace loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
// Simulated cycles map 1:1 onto trace microseconds. Layout:
//
//   - one track per core (tid = core): L1 miss slices, named by the
//     request type, plus every message arriving at the tile;
//   - one track per directory slice (tid = DirTrackBase + tile):
//     transaction-occupancy slices from activation to unblock;
//   - message flights as complete events on the destination track,
//     spanning send to delivery, with src/dst/region/txn in args.
//
// Start/end events are paired at export time (the hot path records
// flat instants only); ends whose start was overwritten by ring wrap
// degrade to instant events rather than being dropped.

// DirTrackBase offsets directory-track thread IDs past any plausible
// core ID so the two groups sort apart in the viewer.
const DirTrackBase = 4096

// TraceOptions names the trace's tracks and event subtypes.
type TraceOptions struct {
	// SubName renders an event's Sub field (e.g. the coherence message
	// type) for slice names; nil falls back to a numeric form.
	SubName func(k Kind, sub uint8) string
	// Process names the trace's single process; empty = "protozoa".
	Process string
}

func (o TraceOptions) subName(k Kind, sub uint8) string {
	if o.SubName != nil {
		return o.SubName(k, sub)
	}
	return fmt.Sprintf("sub%d", sub)
}

// ChromeEvent is one trace-event JSON object. Exported so tests (and
// the trace-smoke tool) can round-trip a written trace.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the top-level trace-event JSON document.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// BuildChromeTrace pairs the recorder's events into slices and returns
// the trace document. Events must be oldest-first (Recorder.Snapshot
// order).
func BuildChromeTrace(events []Event, dropped uint64, opt TraceOptions) *ChromeTrace {
	tr := &ChromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"clock":          "1 simulated cycle = 1us",
			"dropped_events": dropped,
		},
	}
	if opt.Process == "" {
		opt.Process = "protozoa"
	}
	tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": opt.Process},
	})
	namedTracks := map[int]bool{}
	track := func(tid int) {
		if namedTracks[tid] {
			return
		}
		namedTracks[tid] = true
		name := fmt.Sprintf("core %d", tid)
		if tid >= DirTrackBase {
			name = fmt.Sprintf("dir %d", tid-DirTrackBase)
		}
		tr.TraceEvents = append(tr.TraceEvents, ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	type msgKey struct {
		src, dst int16
		sub      uint8
	}
	type txnKey struct {
		node   int16
		region uint64
	}
	// Pending starts awaiting their end event. Message channels are
	// FIFO per (src, dst, type) — the mesh's ordering guarantee — so a
	// queue per key pairs sends to deliveries in order.
	msgQ := map[msgKey][]Event{}
	missOpen := map[int16]Event{}
	txnOpen := map[txnKey]Event{}

	emit := func(ev ChromeEvent) {
		track(ev.Tid)
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	instant := func(e Event, name string, tid int) {
		emit(ChromeEvent{
			Name: name, Ph: "i", Ts: uint64(e.Cycle), Pid: 0, Tid: tid, S: "t",
			Args: eventArgs(e),
		})
	}

	for _, e := range events {
		switch e.Kind {
		case KindMsgSend:
			k := msgKey{e.Node, e.Peer, e.Sub}
			msgQ[k] = append(msgQ[k], e)
		case KindMsgDeliver:
			k := msgKey{e.Node, e.Peer, e.Sub}
			name := opt.subName(e.Kind, e.Sub)
			if q := msgQ[k]; len(q) > 0 {
				send := q[0]
				msgQ[k] = q[1:]
				emit(ChromeEvent{
					Name: name, Ph: "X", Ts: uint64(send.Cycle),
					Dur: uint64(e.Cycle - send.Cycle), Pid: 0, Tid: int(e.Peer),
					Args: eventArgs(e),
				})
			} else {
				// The matching send was overwritten by ring wrap.
				instant(e, name, int(e.Peer))
			}
		case KindMissStart:
			missOpen[e.Node] = e
		case KindMissEnd:
			if start, ok := missOpen[e.Node]; ok {
				delete(missOpen, e.Node)
				emit(ChromeEvent{
					Name: "miss " + opt.subName(KindMissStart, start.Sub),
					Ph:   "X", Ts: uint64(start.Cycle),
					Dur: uint64(e.Cycle - start.Cycle), Pid: 0, Tid: int(e.Node),
					Args: eventArgs(start),
				})
			} else {
				instant(e, "miss-end", int(e.Node))
			}
		case KindTxnStart:
			txnOpen[txnKey{e.Node, e.Region}] = e
		case KindTxnEnd:
			k := txnKey{e.Node, e.Region}
			if start, ok := txnOpen[k]; ok {
				delete(txnOpen, k)
				emit(ChromeEvent{
					Name: "txn " + opt.subName(KindTxnStart, start.Sub),
					Ph:   "X", Ts: uint64(start.Cycle),
					Dur: uint64(e.Cycle - start.Cycle), Pid: 0,
					Tid:  DirTrackBase + int(e.Node),
					Args: eventArgs(start),
				})
			} else {
				instant(e, "txn-end", DirTrackBase+int(e.Node))
			}
		case KindLinkStall:
			instant(e, "link-stall", int(e.Node))
		default:
			instant(e, e.Kind.String(), int(e.Node))
		}
	}
	// Starts with no recorded end (in flight when recording stopped)
	// degrade to instants so nothing silently vanishes.
	for _, q := range msgQ {
		for _, e := range q {
			instant(e, opt.subName(e.Kind, e.Sub), int(e.Node))
		}
	}
	for _, e := range missOpen {
		instant(e, "miss-start", int(e.Node))
	}
	for _, e := range txnOpen {
		instant(e, "txn-start", DirTrackBase+int(e.Node))
	}
	return tr
}

func eventArgs(e Event) map[string]any {
	a := map[string]any{"region": e.Region}
	if e.Peer >= 0 {
		a["src"] = e.Node
		a["dst"] = e.Peer
	}
	if e.Txn != 0 {
		a["txn"] = e.Txn
	}
	return a
}

// WriteChromeTrace builds the trace and writes it as indented JSON.
func WriteChromeTrace(w io.Writer, events []Event, dropped uint64, opt TraceOptions) error {
	return EncodeChromeTrace(w, BuildChromeTrace(events, dropped, opt))
}

// EncodeChromeTrace writes an already-built trace document as indented
// JSON — the shared writer behind the machine trace and the selfprof
// meta-trace.
func EncodeChromeTrace(w io.Writer, tr *ChromeTrace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}
