package selfprof

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestWidthHistBuckets(t *testing.T) {
	var h WidthHist
	cases := []struct {
		w      uint64
		bucket int
	}{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3},
		{9, 4}, {64, 6}, {65536, 16}, {1 << 20, widthBuckets - 1},
	}
	for _, c := range cases {
		before := h.Buckets[c.bucket]
		h.Observe(c.w)
		if h.Buckets[c.bucket] != before+1 {
			t.Errorf("Observe(%d): bucket %d not incremented", c.w, c.bucket)
		}
	}
	if h.N != uint64(len(cases)) {
		t.Errorf("N = %d, want %d", h.N, len(cases))
	}
	if h.Max != 1<<20 {
		t.Errorf("Max = %d, want %d", h.Max, 1<<20)
	}
	// Zero widths clamp to 1 rather than corrupting the index math.
	h.Observe(0)
	if h.Buckets[0] != 2 {
		t.Errorf("Observe(0): bucket 0 = %d, want 2", h.Buckets[0])
	}
}

func TestWidthHistQuantile(t *testing.T) {
	var h WidthHist
	for i := 0; i < 90; i++ {
		h.Observe(6) // bucket 3 (le 8)
	}
	for i := 0; i < 10; i++ {
		h.Observe(60000) // bucket 16 (le 65536)
	}
	if q := h.Quantile(0.5); q != 8 {
		t.Errorf("p50 = %d, want 8", q)
	}
	if q := h.Quantile(0.99); q != 65536 {
		t.Errorf("p99 = %d, want 65536", q)
	}
	var empty WidthHist
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %d, want 0", q)
	}
}

func TestSpanRingWrapKeepsNewest(t *testing.T) {
	r := spanRing{buf: make([]Span, 4)}
	for i := uint64(1); i <= 10; i++ {
		r.record(Span{Round: i})
	}
	got := r.snapshot()
	if len(got) != 4 {
		t.Fatalf("kept %d spans, want 4", len(got))
	}
	for i, sp := range got {
		if want := uint64(7 + i); sp.Round != want {
			t.Errorf("span[%d].Round = %d, want %d (oldest-first)", i, sp.Round, want)
		}
	}
	if r.dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.dropped())
	}
}

func TestReportAggregatesTiles(t *testing.T) {
	p := New(2, 4, 8)
	p.Mode = "pdes"
	p.LookaheadW = 6
	p.Rounds = 10
	p.Tiles[0].BusyRounds = 7
	p.Tiles[0].IdleRounds = 3
	p.Tiles[0].Events = 70
	p.Tiles[0].Queue.RingPushes = 50
	p.Tiles[0].MicroHits = 20
	p.Tiles[0].Queue.RingHigh = 9
	p.Tiles[1].BusyRounds = 4
	p.Tiles[1].IdleRounds = 6
	p.Tiles[1].SkippedWithWork = 2
	p.Tiles[1].Events = 30
	p.Tiles[1].Queue.FarPushes = 10
	p.Tiles[1].Queue.RingHigh = 5
	p.Width.Observe(6)
	p.LoopNs = 100
	p.RunNs = 60

	r := p.Report()
	if r.Queue.RingPushes != 50 || r.Queue.FarPushes != 10 || r.Queue.MicroHits != 20 {
		t.Errorf("queue totals = %+v", r.Queue)
	}
	if r.Queue.RingHigh != 9 {
		t.Errorf("RingHigh = %d, want max 9", r.Queue.RingHigh)
	}
	if r.SkippedTileRounds != 2 {
		t.Errorf("SkippedTileRounds = %d, want 2", r.SkippedTileRounds)
	}
	if r.BookkeepingNs != 40 {
		t.Errorf("BookkeepingNs = %d, want 40", r.BookkeepingNs)
	}
	if got := r.Tiles[0].EvPerRound; got != 10 {
		t.Errorf("tile 0 ev/round = %v, want 10", got)
	}
	// Reconciliation shape the core-level test depends on: each tile's
	// busy+idle covers every coordinator round.
	for _, tr := range r.Tiles {
		if tr.BusyRounds+tr.IdleRounds != r.Rounds {
			t.Errorf("tile %d: busy %d + idle %d != rounds %d",
				tr.ID, tr.BusyRounds, tr.IdleRounds, r.Rounds)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Report
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if round.Rounds != 10 || round.Queue.MicroHits != 20 {
		t.Errorf("round-tripped report lost fields: %+v", round)
	}

	buf.Reset()
	r.WriteSummary(&buf)
	out := buf.String()
	for _, want := range []string{"self-profile (pdes", "rounds 10", "zero-delay 20", "tile"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestChromeTraceSpans(t *testing.T) {
	p := New(2, 1, 8)
	p.Tiles[0].RecordSpan(Span{Round: 1, StartNs: 1000, DurNs: 2000, Bound: 12, Clock: 11, Events: 5})
	p.Tiles[0].RecordSpan(Span{Round: 2, StartNs: 5000, DurNs: 100, Events: 1})
	p.RecordRound(Span{Round: 1, StartNs: 900, DurNs: 2500, Events: 5})

	tr := p.BuildChromeTrace()
	var runs, rounds, names int
	for _, ev := range tr.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Name == "run":
			runs++
			if ev.Dur == 0 {
				t.Error("zero-duration span should clamp to 1us")
			}
		case ev.Ph == "X" && ev.Name == "round":
			rounds++
			if ev.Tid != coordTrack {
				t.Errorf("round span on tid %d, want %d", ev.Tid, coordTrack)
			}
		case ev.Ph == "M":
			names++
		}
	}
	if runs != 2 || rounds != 1 {
		t.Errorf("got %d run spans, %d round spans; want 2, 1", runs, rounds)
	}
	if names < 3 { // process + coordinator + tile 0
		t.Errorf("only %d metadata events", names)
	}

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("meta-trace is not valid JSON: %v", err)
	}
}

func TestCollectorConcurrentAdd(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add(&Report{
					Mode: "pdes", Rounds: 2, TotalEvents: 10,
					Queue: QueueTotals{RingPushes: 3, MicroHits: 1, RingHigh: j},
				})
			}
		}()
	}
	wg.Wait()
	if c.Runs() != 800 {
		t.Fatalf("runs = %d, want 800", c.Runs())
	}
	agg := c.Totals()
	if agg.Rounds != 1600 || agg.TotalEvents != 8000 || agg.Queue.RingPushes != 2400 {
		t.Errorf("totals wrong: %+v", agg)
	}
	if agg.Queue.RingHigh != 99 {
		t.Errorf("RingHigh = %d, want max 99", agg.Queue.RingHigh)
	}
	var buf bytes.Buffer
	c.WriteSummary(&buf)
	if !strings.Contains(buf.String(), "800 simulated cells") {
		t.Errorf("summary: %s", buf.String())
	}
}
