// Package selfprof is the simulator's self-profiling layer: where
// internal/obs observes the simulated machine, selfprof observes the
// simulator itself — the PDES window loop's round structure, the
// per-tile event queues' occupancy, and the wall-clock split between
// running events, waiting at barriers, and coordinator bookkeeping.
//
// It exists to answer questions like the one PR 8 left open: the
// workers=1 window loop runs ~1.44x slower than the sequential engine
// on the same event stream — where do those cycles go? The layer is
// strictly opt-in (System.EnableSelfProf before Run); every hot-path
// site in core and engine guards on a single nil check, and recording
// is allocation-free: shards are padded per-tile structs bumped by the
// goroutine that owns the tile for the round, and round spans land in
// preallocated rings.
//
// Synchronization rides the window loop's existing happens-before
// chain: the coordinator writes a shard's round fields before the
// epoch counter release, the worker running the tile writes its run
// fields before its done-counter store, and the coordinator reads
// after the done acquire — no additional atomics, race-detector clean.
package selfprof

import (
	"math/bits"
	"time"

	"protozoa/internal/engine"
)

// DefaultSpanCap bounds each span ring (one per tile, plus the
// coordinator's): 4096 rounds ≈ 160 KB/tile of spans, enough to see
// the steady-state round texture without growing with the run.
const DefaultSpanCap = 4096

// Span is one wall-clock execution span: a tile running one PDES round
// (or, on the coordinator ring, one whole round including the barrier).
type Span struct {
	Round   uint64 // coordinator round number (1-based)
	StartNs int64  // wall-clock offset from Profile.Start
	DurNs   int64
	Bound   uint64 // window bound the run was given (exclusive cycle)
	Clock   uint64 // tile clock (or round simNow) when the span ended
	Events  uint64 // events processed inside the span
}

// spanRing is a fixed-capacity overwrite-oldest span buffer.
type spanRing struct {
	buf   []Span
	next  int
	total uint64 // spans ever recorded; dropped = total - len(kept)
}

func (r *spanRing) record(sp Span) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = sp
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.total++
}

// snapshot returns the retained spans oldest-first.
func (r *spanRing) snapshot() []Span {
	if r.total >= uint64(len(r.buf)) {
		out := make([]Span, 0, len(r.buf))
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	out := make([]Span, r.next)
	copy(out, r.buf[:r.next])
	return out
}

func (r *spanRing) dropped() uint64 {
	if kept := uint64(len(r.buf)); r.total > kept {
		return r.total - kept
	}
	return 0
}

// TileShard is one tile's self-profiling accumulator. The embedded
// engine.Prof is attached to the tile's event queue via SetProf; the
// round counters are maintained by the window-loop coordinator; the
// run-side fields (Events, WallNs, spans) are written by whichever
// goroutine executes the tile's window, which the epoch/done atomics
// order against the coordinator's reads. Padding inside engine.Prof
// plus the trailing pad keep adjacent shards off shared cache lines.
type TileShard struct {
	Queue engine.Prof // ring/far/micro occupancy, refusals, limit cuts

	BusyRounds      uint64 // rounds this tile executed a window
	IdleRounds      uint64 // rounds it did not (empty queue, or skipped)
	SkippedWithWork uint64 // idle rounds where work was queued but the bound didn't clear its peek
	Events          uint64 // events processed across busy rounds
	WallNs          int64  // wall-clock inside RunUntil across busy rounds
	MicroHits       uint64 // zero-delay fast-path hits (engine.MicroHits, filled at finish)

	// CurRound is the round number this tile was dealt into, written by
	// the coordinator before the epoch release so the executing worker
	// can stamp the span without touching coordinator state.
	CurRound uint64

	// Epoch anchors span timestamps (copy of Profile.Start).
	Epoch time.Time

	spans spanRing

	_ [64]byte // keep neighbouring shards apart
}

// RecordSpan appends one round-execution span to the tile's ring.
func (ts *TileShard) RecordSpan(sp Span) { ts.spans.record(sp) }

// Spans returns the retained spans oldest-first.
func (ts *TileShard) Spans() []Span { return ts.spans.snapshot() }

// WorkerShard is one crew worker's wall-clock split, written only by
// that worker (the coordinator's wait lives in Profile.CoordWaitNs).
type WorkerShard struct {
	SpinNs int64  // waiting for a new epoch between rounds
	BusyNs int64  // running the tiles dealt to this worker
	Rounds uint64 // epochs this worker processed

	_ [64]byte
}

// widthBuckets is the round-width histogram size: log2 buckets with
// upper bounds 2^0 .. 2^(widthBuckets-1) cycles; the last bucket also
// absorbs anything wider. 18 buckets cover the soloSlice cap (2^16)
// with headroom.
const widthBuckets = 18

// WidthHist is a log2 histogram of PDES round widths (the window
// granted to the round's minimum tile, in cycles).
type WidthHist struct {
	Buckets [widthBuckets]uint64
	Sum     uint64
	Max     uint64
	N       uint64
}

// Observe files one round width.
func (h *WidthHist) Observe(w uint64) {
	if w == 0 {
		w = 1
	}
	idx := bits.Len64(w - 1) // ceil(log2(w)): 1→0, 2→1, 3..4→2, …
	if idx >= widthBuckets {
		idx = widthBuckets - 1
	}
	h.Buckets[idx]++
	h.Sum += w
	h.N++
	if w > h.Max {
		h.Max = w
	}
}

// Quantile returns the upper bound of the bucket holding quantile q
// (0 < q <= 1) — a coarse percentile, exact to the log2 bucketing.
func (h *WidthHist) Quantile(q float64) uint64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(q * float64(h.N))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			return uint64(1) << i
		}
	}
	return uint64(1) << (widthBuckets - 1)
}

// Profile is the run-wide self-profiling state. The coordinator owns
// every field except the tile shards' run-side fields and the worker
// shards; see the package comment for the synchronization story.
type Profile struct {
	Mode       string // "pdes" or "sequential"
	Workers    int    // crew size (PDES), 0 in sequential mode
	LookaheadW uint64 // mesh lookahead W used for window bounds

	Start time.Time

	Rounds             uint64 // window-loop iterations that ran at least one tile
	InlineRounds       uint64 // rounds run on the coordinator without dispatching the crew
	SoloExtendedRounds uint64 // rounds whose minimum tile got a window beyond min1+W
	BarrierReleases    uint64 // global-barrier count-and-release events
	InjectedMsgs       uint64 // cross-tile messages moved from outboxes at round edges

	Width WidthHist

	// Wall-clock decomposition of the window loop. BookkeepingNs is
	// derived at report time: LoopNs - RunNs (scan, bounds, injection,
	// peek refresh, barrier accounting).
	LoopNs      int64 // total windowLoop wall-clock
	RunNs       int64 // run phase (inline tile runs or pool dispatch+wait)
	CoordWaitNs int64 // coordinator polling worker done-counters (within RunNs)
	MergeNs     int64 // mergePDES (shard fold) wall-clock

	TotalEvents uint64 // EventsProcessed() at finish
	TotalNs     int64  // wall-clock of the whole Run

	Tiles      []TileShard
	WorkerWait []WorkerShard // indexed by crew worker; [0] unused (coordinator)

	coord spanRing // whole-round spans on the coordinator
}

// New returns a profile for a machine with the given tile and crew
// counts. spanCap <= 0 selects DefaultSpanCap; spanCap == 1 keeps the
// rings but minimal (tests).
func New(tiles, workers, spanCap int) *Profile {
	if spanCap <= 0 {
		spanCap = DefaultSpanCap
	}
	p := &Profile{
		Start: time.Now(),
		Tiles: make([]TileShard, tiles),
		coord: spanRing{buf: make([]Span, spanCap)},
	}
	p.Workers = workers
	if workers > 1 {
		p.WorkerWait = make([]WorkerShard, workers)
	}
	for i := range p.Tiles {
		p.Tiles[i].Epoch = p.Start
		p.Tiles[i].spans = spanRing{buf: make([]Span, spanCap)}
	}
	return p
}

// RecordRound appends one whole-round span to the coordinator ring.
func (p *Profile) RecordRound(sp Span) { p.coord.record(sp) }

// CoordSpans returns the retained coordinator round spans oldest-first.
func (p *Profile) CoordSpans() []Span { return p.coord.snapshot() }
