package selfprof

import (
	"fmt"
	"io"
	"sync"
)

// Collector aggregates self-profile reports across many runs — the
// sweep's -self-prof surface, fed from runner worker goroutines, so it
// is the one synchronized type in the package. It keeps machine-level
// totals only: per-tile detail is a single-run concern, and cells in a
// grid can have different tile counts.
type Collector struct {
	mu    sync.Mutex
	runs  int
	agg   Report
	modes map[string]int
}

// Add folds one run's report into the totals. Cached cells never call
// Add (they did not simulate), so the totals cover simulated work only.
func (c *Collector) Add(r *Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs++
	if c.modes == nil {
		c.modes = make(map[string]int)
	}
	c.modes[r.Mode]++
	a := &c.agg
	a.Rounds += r.Rounds
	a.InlineRounds += r.InlineRounds
	a.SoloExtendedRounds += r.SoloExtendedRounds
	a.BarrierReleases += r.BarrierReleases
	a.InjectedMsgs += r.InjectedMsgs
	a.SkippedTileRounds += r.SkippedTileRounds
	a.LoopNs += r.LoopNs
	a.RunNs += r.RunNs
	a.CoordWaitNs += r.CoordWaitNs
	a.BookkeepingNs += r.BookkeepingNs
	a.MergeNs += r.MergeNs
	a.TotalNs += r.TotalNs
	a.TotalEvents += r.TotalEvents
	a.Queue.RingPushes += r.Queue.RingPushes
	a.Queue.FarPushes += r.Queue.FarPushes
	a.Queue.MicroHits += r.Queue.MicroHits
	a.Queue.Refusals += r.Queue.Refusals
	a.Queue.LimitCuts += r.Queue.LimitCuts
	if r.Queue.RingHigh > a.Queue.RingHigh {
		a.Queue.RingHigh = r.Queue.RingHigh
	}
	if r.Queue.FarHigh > a.Queue.FarHigh {
		a.Queue.FarHigh = r.Queue.FarHigh
	}
	if r.Queue.MicroHigh > a.Queue.MicroHigh {
		a.Queue.MicroHigh = r.Queue.MicroHigh
	}
	if r.WidthMax > a.WidthMax {
		a.WidthMax = r.WidthMax
	}
}

// Runs reports how many reports have been folded in.
func (c *Collector) Runs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

// Totals returns a copy of the aggregated report.
func (c *Collector) Totals() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.agg
}

// WriteSummary renders the grid-level rollup.
func (c *Collector) WriteSummary(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(w, "self-profile: %d simulated cells", c.runs)
	if n := c.modes["pdes"]; n > 0 {
		fmt.Fprintf(w, " (%d pdes)", n)
	}
	fmt.Fprintf(w, ", %d events in %s total wall\n", c.agg.TotalEvents, ns(c.agg.TotalNs))
	if c.agg.Rounds > 0 {
		fmt.Fprintf(w, " rounds %d (inline %d, solo-extended %d, skipped tile-rounds %d, injected msgs %d)\n",
			c.agg.Rounds, c.agg.InlineRounds, c.agg.SoloExtendedRounds,
			c.agg.SkippedTileRounds, c.agg.InjectedMsgs)
		fmt.Fprintf(w, " wall: loop %s = run %s + bookkeeping %s; coord-wait %s; merge %s\n",
			ns(c.agg.LoopNs), ns(c.agg.RunNs), ns(c.agg.BookkeepingNs),
			ns(c.agg.CoordWaitNs), ns(c.agg.MergeNs))
	}
	fmt.Fprintf(w, " queue: ring %d, far %d, zero-delay %d, refusals %d, limit-cuts %d\n",
		c.agg.Queue.RingPushes, c.agg.Queue.FarPushes, c.agg.Queue.MicroHits,
		c.agg.Queue.Refusals, c.agg.Queue.LimitCuts)
}
