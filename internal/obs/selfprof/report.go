package selfprof

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// Report is the serializable snapshot of a Profile — what -self-prof
// dumps as JSON and renders as the summary table. Take it only after
// Run has returned (the live shards are not synchronized for readers
// outside the window loop's happens-before chain).
type Report struct {
	Mode       string `json:"mode"`
	Workers    int    `json:"workers"`
	LookaheadW uint64 `json:"lookahead_w"`

	Rounds             uint64 `json:"rounds"`
	InlineRounds       uint64 `json:"inline_rounds"`
	SoloExtendedRounds uint64 `json:"solo_extended_rounds"`
	BarrierReleases    uint64 `json:"barrier_releases"`
	InjectedMsgs       uint64 `json:"injected_msgs"`
	SkippedTileRounds  uint64 `json:"skipped_tile_rounds"`

	WidthAvg  float64       `json:"width_avg_cycles"`
	WidthP50  uint64        `json:"width_p50_cycles"`
	WidthMax  uint64        `json:"width_max_cycles"`
	WidthHist []WidthBucket `json:"width_hist,omitempty"`

	LoopNs        int64 `json:"loop_ns"`
	RunNs         int64 `json:"run_ns"`
	CoordWaitNs   int64 `json:"coord_wait_ns"`
	BookkeepingNs int64 `json:"bookkeeping_ns"`
	MergeNs       int64 `json:"merge_ns"`
	TotalNs       int64 `json:"total_ns"`

	TotalEvents uint64 `json:"total_events"`

	Queue      QueueTotals    `json:"queue"`
	WorkerWait []WorkerReport `json:"worker_wait,omitempty"`
	Tiles      []TileReport   `json:"tiles,omitempty"`
}

// WidthBucket is one log2 histogram bucket: rounds whose window width
// was <= Le cycles (and > the previous bucket's Le).
type WidthBucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// QueueTotals aggregates the engine introspection counters across all
// tile queues.
type QueueTotals struct {
	RingPushes uint64 `json:"ring_pushes"`
	FarPushes  uint64 `json:"far_pushes"`
	MicroHits  uint64 `json:"micro_hits"`
	Refusals   uint64 `json:"refusals"`
	LimitCuts  uint64 `json:"limit_cuts"`
	RingHigh   int    `json:"ring_high"`
	FarHigh    int    `json:"far_high"`
	MicroHigh  int    `json:"micro_high"`
}

func (q *QueueTotals) add(ts *TileShard) {
	q.RingPushes += ts.Queue.RingPushes
	q.FarPushes += ts.Queue.FarPushes
	q.MicroHits += ts.MicroHits
	q.Refusals += ts.Queue.Refusals
	q.LimitCuts += ts.Queue.LimitCuts
	if ts.Queue.RingHigh > q.RingHigh {
		q.RingHigh = ts.Queue.RingHigh
	}
	if ts.Queue.FarHigh > q.FarHigh {
		q.FarHigh = ts.Queue.FarHigh
	}
	if ts.Queue.MicroHigh > q.MicroHigh {
		q.MicroHigh = ts.Queue.MicroHigh
	}
}

// WorkerReport is one crew worker's wall-clock split.
type WorkerReport struct {
	Worker int    `json:"worker"`
	SpinNs int64  `json:"spin_ns"`
	BusyNs int64  `json:"busy_ns"`
	Rounds uint64 `json:"rounds"`
}

// TileReport is one tile's accumulated telemetry.
type TileReport struct {
	ID              int     `json:"id"`
	BusyRounds      uint64  `json:"busy_rounds"`
	IdleRounds      uint64  `json:"idle_rounds"`
	SkippedWithWork uint64  `json:"skipped_with_work"`
	Events          uint64  `json:"events"`
	EvPerRound      float64 `json:"ev_per_round"`
	WallNs          int64   `json:"wall_ns"`
	RingPushes      uint64  `json:"ring_pushes"`
	FarPushes       uint64  `json:"far_pushes"`
	MicroHits       uint64  `json:"micro_hits"`
	Refusals        uint64  `json:"refusals"`
	LimitCuts       uint64  `json:"limit_cuts"`
	RingHigh        int     `json:"ring_high"`
	FarHigh         int     `json:"far_high"`
	MicroHigh       int     `json:"micro_high"`
	SpansKept       int     `json:"spans_kept"`
	SpansDropped    uint64  `json:"spans_dropped"`
}

// Report snapshots the profile. Call after Run.
func (p *Profile) Report() *Report {
	r := &Report{
		Mode:               p.Mode,
		Workers:            p.Workers,
		LookaheadW:         p.LookaheadW,
		Rounds:             p.Rounds,
		InlineRounds:       p.InlineRounds,
		SoloExtendedRounds: p.SoloExtendedRounds,
		BarrierReleases:    p.BarrierReleases,
		InjectedMsgs:       p.InjectedMsgs,
		LoopNs:             p.LoopNs,
		RunNs:              p.RunNs,
		CoordWaitNs:        p.CoordWaitNs,
		MergeNs:            p.MergeNs,
		TotalNs:            p.TotalNs,
		TotalEvents:        p.TotalEvents,
	}
	if r.LoopNs > r.RunNs {
		r.BookkeepingNs = r.LoopNs - r.RunNs
	}
	if p.Width.N > 0 {
		r.WidthAvg = float64(p.Width.Sum) / float64(p.Width.N)
		r.WidthP50 = p.Width.Quantile(0.5)
		r.WidthMax = p.Width.Max
		for i, c := range p.Width.Buckets {
			if c > 0 {
				r.WidthHist = append(r.WidthHist, WidthBucket{Le: 1 << i, Count: c})
			}
		}
	}
	for w := 1; w < len(p.WorkerWait); w++ {
		ws := &p.WorkerWait[w]
		r.WorkerWait = append(r.WorkerWait, WorkerReport{
			Worker: w, SpinNs: ws.SpinNs, BusyNs: ws.BusyNs, Rounds: ws.Rounds,
		})
	}
	for i := range p.Tiles {
		ts := &p.Tiles[i]
		r.Queue.add(ts)
		r.SkippedTileRounds += ts.SkippedWithWork
		tr := TileReport{
			ID:              i,
			BusyRounds:      ts.BusyRounds,
			IdleRounds:      ts.IdleRounds,
			SkippedWithWork: ts.SkippedWithWork,
			Events:          ts.Events,
			WallNs:          ts.WallNs,
			RingPushes:      ts.Queue.RingPushes,
			FarPushes:       ts.Queue.FarPushes,
			MicroHits:       ts.MicroHits,
			Refusals:        ts.Queue.Refusals,
			LimitCuts:       ts.Queue.LimitCuts,
			RingHigh:        ts.Queue.RingHigh,
			FarHigh:         ts.Queue.FarHigh,
			MicroHigh:       ts.Queue.MicroHigh,
			SpansKept:       len(ts.Spans()),
			SpansDropped:    ts.spans.dropped(),
		}
		if ts.BusyRounds > 0 {
			tr.EvPerRound = float64(ts.Events) / float64(ts.BusyRounds)
		}
		r.Tiles = append(r.Tiles, tr)
	}
	return r
}

// WriteJSON dumps the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

func ns(d int64) string {
	return time.Duration(d).Round(10 * time.Microsecond).String()
}

// WriteSummary renders the human-readable table -self-prof prints.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "self-profile (%s", r.Mode)
	if r.Mode == "pdes" {
		fmt.Fprintf(w, ", workers=%d, W=%d", r.Workers, r.LookaheadW)
	}
	fmt.Fprintf(w, "): %d events in %s\n", r.TotalEvents, ns(r.TotalNs))

	if r.Mode == "pdes" {
		fmt.Fprintf(w, " rounds %d (inline %d, solo-extended %d, barrier releases %d, injected msgs %d, skipped tile-rounds %d)\n",
			r.Rounds, r.InlineRounds, r.SoloExtendedRounds, r.BarrierReleases,
			r.InjectedMsgs, r.SkippedTileRounds)
		fmt.Fprintf(w, " window width: avg %.1f cycles, p50 <=%d, max %d\n",
			r.WidthAvg, r.WidthP50, r.WidthMax)
		fmt.Fprintf(w, " wall: loop %s = run %s + bookkeeping %s; coord-wait %s; merge %s\n",
			ns(r.LoopNs), ns(r.RunNs), ns(r.BookkeepingNs), ns(r.CoordWaitNs), ns(r.MergeNs))
	}
	fmt.Fprintf(w, " queue: ring %d, far %d, zero-delay %d, refusals %d, limit-cuts %d, high ring/far/micro %d/%d/%d\n",
		r.Queue.RingPushes, r.Queue.FarPushes, r.Queue.MicroHits,
		r.Queue.Refusals, r.Queue.LimitCuts,
		r.Queue.RingHigh, r.Queue.FarHigh, r.Queue.MicroHigh)

	if len(r.WorkerWait) > 0 {
		tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
		fmt.Fprintln(tw, " worker\tspin\tbusy\trounds")
		for _, ws := range r.WorkerWait {
			fmt.Fprintf(tw, " %d\t%s\t%s\t%d\n", ws.Worker, ns(ws.SpinNs), ns(ws.BusyNs), ws.Rounds)
		}
		tw.Flush()
	}
	if r.Mode == "pdes" && len(r.Tiles) > 0 {
		tw := tabwriter.NewWriter(w, 2, 2, 2, ' ', 0)
		fmt.Fprintln(tw, " tile\tbusy\tidle\tskip\tevents\tev/round\twall\trefusals\tlimit-cuts")
		for _, t := range r.Tiles {
			fmt.Fprintf(tw, " %d\t%d\t%d\t%d\t%d\t%.1f\t%s\t%d\t%d\n",
				t.ID, t.BusyRounds, t.IdleRounds, t.SkippedWithWork,
				t.Events, t.EvPerRound, ns(t.WallNs), t.Refusals, t.LimitCuts)
		}
		tw.Flush()
	}
}
