package selfprof

import (
	"io"
	"strconv"

	"protozoa/internal/obs"
)

// Chrome meta-track export: the profile's round spans render as a
// trace-event JSON document on a dedicated "pdes" process — one track
// per tile plus a coordinator track carrying whole-round spans — so
// barrier skew (a straggler tile's span stretching past its peers
// while the round span waits on it) is visually obvious in Perfetto.
//
// Unlike the machine trace (1 simulated cycle = 1 µs), the meta-track
// is WALL-clock: timestamps are nanoseconds since the profile started,
// rendered as microseconds. The two traces are written to separate
// files for exactly that reason — mixing clocks in one document would
// misalign every slice, and appending tracks to the machine trace
// would break the byte-identical -self-prof on/off contract.

// coordTrack is the coordinator's thread ID in the meta-trace; tile
// spans use tid = tile ID, which the machine keeps well below this.
const coordTrack = 4095

// BuildChromeTrace renders the profile's retained spans as a Chrome
// trace document.
func (p *Profile) BuildChromeTrace() *obs.ChromeTrace {
	var droppedSpans uint64
	for i := range p.Tiles {
		droppedSpans += p.Tiles[i].spans.dropped()
	}
	droppedSpans += p.coord.dropped()

	tr := &obs.ChromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]any{
			"clock":         "wall time, 1ns span resolution rendered as us",
			"dropped_spans": droppedSpans,
		},
	}
	tr.TraceEvents = append(tr.TraceEvents, obs.ChromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "protozoa pdes self-profile"},
	})
	track := func(tid int, name string) {
		tr.TraceEvents = append(tr.TraceEvents, obs.ChromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	span := func(tid int, name string, sp Span) {
		dur := uint64(sp.DurNs) / 1000
		if dur == 0 {
			dur = 1 // sub-µs rounds still render as visible slices
		}
		tr.TraceEvents = append(tr.TraceEvents, obs.ChromeEvent{
			Name: name, Ph: "X",
			Ts: uint64(sp.StartNs) / 1000, Dur: dur,
			Pid: 1, Tid: tid,
			Args: map[string]any{
				"round":  sp.Round,
				"bound":  sp.Bound,
				"clock":  sp.Clock,
				"events": sp.Events,
			},
		})
	}

	if spans := p.coord.snapshot(); len(spans) > 0 {
		track(coordTrack, "coordinator")
		for _, sp := range spans {
			span(coordTrack, "round", sp)
		}
	}
	for i := range p.Tiles {
		spans := p.Tiles[i].Spans()
		if len(spans) == 0 {
			continue
		}
		track(i, "tile "+strconv.Itoa(i))
		for _, sp := range spans {
			span(i, "run", sp)
		}
	}
	return tr
}

// WriteChromeTrace writes the meta-trace as indented JSON.
func (p *Profile) WriteChromeTrace(w io.Writer) error {
	return obs.EncodeChromeTrace(w, p.BuildChromeTrace())
}
