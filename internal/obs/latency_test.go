package obs

import "testing"

func TestLatencyPhasesSumToTotal(t *testing.T) {
	l := NewLatencyBreakdown(2)
	l.Issue(0, 100)
	l.DirAccept(0, 110)
	l.Activate(0, 110)
	l.Process(0, 124)
	l.LastAck(0, 160)
	l.Complete(0, 175)

	if l.Count != 1 {
		t.Fatalf("count %d", l.Count)
	}
	want := map[Phase]uint64{
		PhaseReqNoC:   10,
		PhaseDirQueue: 0,
		PhaseL2Access: 14,
		PhaseFanOut:   36,
		PhaseData:     15,
	}
	var sum uint64
	for p, w := range want {
		if l.PhaseSum[p] != w {
			t.Errorf("%s = %d, want %d", p, l.PhaseSum[p], w)
		}
		sum += l.PhaseSum[p]
	}
	if sum != 75 || l.TotalSum != 75 {
		t.Fatalf("phase sum %d / total %d, want 75", sum, l.TotalSum)
	}
}

// TestLatencyStaleStampClamped models the upgrade-reissue race: the
// second round's directory stamps come after a stale LastAck from the
// abandoned first round. The clamped chain must keep every phase
// non-negative and still sum to the full latency.
func TestLatencyStaleStampClamped(t *testing.T) {
	l := NewLatencyBreakdown(1)
	l.Issue(0, 0)
	l.DirAccept(0, 10)
	l.Activate(0, 10)
	l.Process(0, 24)
	l.LastAck(0, 50) // first round's fan-out
	// Grant failed; retry observed by the directory:
	l.DirAccept(0, 80)
	l.Activate(0, 81)
	l.Process(0, 95)
	// No probes this round: lastAck (50) is now stale, behind process.
	l.Complete(0, 120)

	var sum uint64
	for p := Phase(0); p < NumPhases; p++ {
		sum += l.PhaseSum[p]
	}
	if sum != 120 || l.TotalSum != 120 {
		t.Fatalf("phases sum to %d (total %d), want 120", sum, l.TotalSum)
	}
	if l.PhaseSum[PhaseFanOut] != 0 {
		t.Errorf("stale LastAck produced fan-out time %d, want 0", l.PhaseSum[PhaseFanOut])
	}
	if l.PhaseSum[PhaseData] != 25 {
		t.Errorf("data phase %d, want 25 (120-95)", l.PhaseSum[PhaseData])
	}
}

func TestLatencyCompleteWithoutIssueIgnored(t *testing.T) {
	l := NewLatencyBreakdown(1)
	l.Complete(0, 99)
	if l.Count != 0 {
		t.Fatal("complete without live miss must not accrue")
	}
	// Double-complete: second is a no-op.
	l.Issue(0, 0)
	l.Complete(0, 10)
	l.Complete(0, 20)
	if l.Count != 1 || l.TotalSum != 10 {
		t.Fatalf("count=%d total=%d after double complete", l.Count, l.TotalSum)
	}
}

func TestLatencyPercentilesAndMerge(t *testing.T) {
	a := NewLatencyBreakdown(1)
	// 90 fast misses at ~16 cycles, 10 slow at ~1000.
	for i := 0; i < 90; i++ {
		a.Issue(0, 0)
		a.Complete(0, 16)
	}
	b := NewLatencyBreakdown(1)
	for i := 0; i < 10; i++ {
		b.Issue(0, 0)
		b.Complete(0, 1000)
	}
	a.Merge(b)
	if a.Count != 100 {
		t.Fatalf("merged count %d", a.Count)
	}
	if p50 := a.Percentile(50); p50 != LatBucketWidth {
		t.Errorf("p50 = %d, want %d (upper bound of the first bucket)", p50, LatBucketWidth)
	}
	if p95 := a.Percentile(95); p95 != 1000 {
		t.Errorf("p95 = %d, want 1000", p95)
	}
	if p99 := a.Percentile(99); p99 != 1000 {
		t.Errorf("p99 = %d, want 1000", p99)
	}
	if got := a.AvgTotal(); got != (90*16+10*1000)/100.0 {
		t.Errorf("avg %f", got)
	}
}

func TestLatencyOverflowBucket(t *testing.T) {
	l := NewLatencyBreakdown(1)
	huge := uint64(LatBuckets*LatBucketWidth) * 3
	l.Issue(0, 0)
	l.Complete(0, huge)
	if l.Hist[LatBuckets-1] != 1 {
		t.Fatal("overflow latency not in last bucket")
	}
	if p := l.Percentile(99); p != huge {
		t.Fatalf("overflow percentile %d, want clamped max %d", p, huge)
	}
}
