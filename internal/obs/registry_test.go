package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestRegistrySampling(t *testing.T) {
	var r Registry
	depth := 0.0
	r.Register("queue_depth", "events pending", func() float64 { return depth })
	r.Register("hits", "pool hits", func() float64 { return 42 })

	depth = 3
	r.Sample(100)
	depth = 7
	r.Sample(200)

	s := r.Samples()
	if len(s) != 2 {
		t.Fatalf("%d samples", len(s))
	}
	if s[0].Cycle != 100 || s[0].Values[0] != 3 || s[1].Values[0] != 7 {
		t.Fatalf("sample rows wrong: %+v", s)
	}
	if got := r.Names(); len(got) != 2 || got[0] != "queue_depth" {
		t.Fatalf("names %v", got)
	}
}

func TestRegistryRejectsDuplicatesAndLateRegistration(t *testing.T) {
	var r Registry
	r.Register("a", "", func() float64 { return 0 })
	mustPanic(t, "duplicate", func() { r.Register("a", "", func() float64 { return 0 }) })
	r.Sample(1)
	mustPanic(t, "late registration", func() { r.Register("b", "", func() float64 { return 0 }) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	fn()
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	var r Registry
	v := 1.5
	r.Register("gauge", "a gauge", func() float64 { return v })
	r.Sample(10)
	v = 2.5

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc MetricsDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics.json does not parse: %v", err)
	}
	if len(doc.Metrics) != 1 || doc.Metrics[0].Name != "gauge" || doc.Metrics[0].Help != "a gauge" {
		t.Fatalf("descriptors wrong: %+v", doc.Metrics)
	}
	if len(doc.Samples) != 1 || doc.Samples[0].Values[0] != 1.5 {
		t.Fatalf("samples wrong: %+v", doc.Samples)
	}
	if doc.Final["gauge"] != 2.5 {
		t.Fatalf("final values wrong: %+v", doc.Final)
	}
}

func TestRegistryEmptySamplesMarshalsAsArray(t *testing.T) {
	var r Registry
	r.Register("g", "", func() float64 { return 0 })
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"samples": []`)) {
		t.Fatalf("samples must be [] not null:\n%s", buf.String())
	}
}
