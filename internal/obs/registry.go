package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Registry is a named set of metric gauges sampled over a run. Each
// metric is a closure over live simulator state (event-queue depth,
// pool hit rate, directory occupancy, ...); Sample evaluates every
// metric at one simulated cycle and appends a row. The registry is
// single-goroutine like the machine it observes.
type Registry struct {
	metrics []metric
	samples []MetricSample
}

type metric struct {
	name string
	help string
	fn   func() float64
}

// MetricSample is one sampling tick: the values of every registered
// metric, in registration order, at one cycle.
type MetricSample struct {
	Cycle  uint64    `json:"cycle"`
	Values []float64 `json:"values"`
}

// Register adds a named gauge. Registration order is the column order
// of every sample; registering after the first Sample panics (the
// rows would no longer line up).
func (r *Registry) Register(name, help string, fn func() float64) {
	if len(r.samples) > 0 {
		panic(fmt.Sprintf("obs: metric %q registered after sampling started", name))
	}
	for _, m := range r.metrics {
		if m.name == name {
			panic(fmt.Sprintf("obs: duplicate metric %q", name))
		}
	}
	r.metrics = append(r.metrics, metric{name: name, help: help, fn: fn})
}

// Names lists the registered metrics in column order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.name
	}
	return out
}

// Descs lists the registered metric descriptors in column order.
func (r *Registry) Descs() []MetricDesc {
	out := make([]MetricDesc, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = MetricDesc{Name: m.name, Help: m.help}
	}
	return out
}

// Eval evaluates every metric without recording a sample row — the
// live-endpoint path, where the consumer keeps its own history.
func (r *Registry) Eval() []float64 {
	out := make([]float64, len(r.metrics))
	for i, m := range r.metrics {
		out[i] = m.fn()
	}
	return out
}

// Sample evaluates every metric at the given cycle and appends a row.
func (r *Registry) Sample(cycle uint64) {
	row := MetricSample{Cycle: cycle, Values: make([]float64, len(r.metrics))}
	for i, m := range r.metrics {
		row.Values[i] = m.fn()
	}
	r.samples = append(r.samples, row)
}

// Samples returns the collected rows in time order.
func (r *Registry) Samples() []MetricSample { return r.samples }

// MetricsDoc is the metrics.json schema: metric descriptors, the
// sampled time series, and a final evaluation of every metric at dump
// time (so a run with sampling disabled still reports end-state).
type MetricsDoc struct {
	Metrics []MetricDesc       `json:"metrics"`
	Samples []MetricSample     `json:"samples"`
	Final   map[string]float64 `json:"final"`
}

// MetricDesc describes one registered metric.
type MetricDesc struct {
	Name string `json:"name"`
	Help string `json:"help"`
}

// Doc evaluates the final values and assembles the dump document.
func (r *Registry) Doc() *MetricsDoc {
	doc := &MetricsDoc{
		Samples: r.samples,
		Final:   make(map[string]float64, len(r.metrics)),
	}
	if doc.Samples == nil {
		doc.Samples = []MetricSample{}
	}
	for _, m := range r.metrics {
		doc.Metrics = append(doc.Metrics, MetricDesc{Name: m.name, Help: m.help})
		doc.Final[m.name] = m.fn()
	}
	return doc
}

// WriteJSON dumps the registry as indented metrics.json.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r.Doc())
}
