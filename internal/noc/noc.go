// Package noc models the on-chip interconnect of Table 4: a 4x4 mesh
// with 16-byte flits, 2-cycle links (the NoC runs at 1.5 GHz, half the
// 3 GHz core clock, so one link traversal costs 4 core cycles), and
// dimension-ordered XY routing. Messages between a (src, dst, vnet)
// pair are delivered in FIFO order, which is the ordering property the
// protocol's race handling relies on — the same property GEMS' Garnet
// network provides.
//
// The mesh accounts flit-hops, the paper's Figure 15 proxy for
// interconnect dynamic energy.
package noc

import (
	"fmt"

	"protozoa/internal/engine"
	"protozoa/internal/obs"
	"protozoa/internal/stats"
)

// DefaultFlitBytes is the Table 4 flit size.
const DefaultFlitBytes = 16

// Topology selects the interconnect shape.
type Topology uint8

const (
	// TopoMesh is the paper's 4x4 mesh with XY routing (default).
	TopoMesh Topology = iota
	// TopoRing is a bidirectional ring: cheaper links, more hops —
	// the layout many commercial CMPs of the era shipped.
	TopoRing
	// TopoCrossbar gives every pair a direct link: one hop, no shared
	// contention — an idealized upper bound on the interconnect.
	TopoCrossbar
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopoMesh:
		return "mesh"
	case TopoRing:
		return "ring"
	case TopoCrossbar:
		return "crossbar"
	}
	return "Topology(?)"
}

// Config sizes a mesh.
type Config struct {
	Topology   Topology     // interconnect shape (default mesh)
	DimX, DimY int          // mesh dimensions; DimX*DimY nodes
	FlitBytes  int          // flit size in bytes
	HopLatency engine.Cycle // core cycles per link traversal
	RouterLat  engine.Cycle // fixed per-message pipeline latency
	SerialLat  engine.Cycle // extra core cycles per flit beyond the first
	LocalLat   engine.Cycle // latency when src == dst (same tile)

	// ModelContention serializes messages over shared mesh links
	// (wormhole-style: a message occupies each link of its XY path for
	// its flit count), so hot links add queueing delay — the network
	// contention the paper's industry report motivates. Off by default:
	// the baseline evaluation model is latency/FIFO only.
	ModelContention bool
}

// DefaultConfig is the paper's 4x4 mesh with 2-cycle links at 1.5 GHz,
// expressed in 3 GHz core cycles.
func DefaultConfig() Config {
	return Config{
		DimX: 4, DimY: 4,
		FlitBytes:  DefaultFlitBytes,
		HopLatency: 4, // 2 NoC cycles x 2 core cycles each
		RouterLat:  2,
		SerialLat:  2,
		LocalLat:   1,
	}
}

// numVnets is the number of virtual networks the mesh tracks FIFO
// state for (requests, forwards, responses).
const numVnets = 3

// Mesh is the interconnect instance. It is not safe for concurrent
// use; the whole simulator is single-goroutine by design.
//
// FIFO-channel and link occupancy state are dense slices indexed by
// (src, dst, vnet) and (from, to) — the node count is small and fixed,
// so this replaces two map lookups per message on the hot path.
type Mesh struct {
	cfg   Config
	eng   *engine.Engine
	st    *stats.Stats
	last  []engine.Cycle // per (src*nodes+dst)*numVnets+vnet: last delivery cycle
	links []engine.Cycle // per from*nodes+to: busy-until (contention mode)
	nodes int
	rec   *obs.Recorder // nil unless event tracing is enabled
}

// SetRecorder attaches an event recorder; contention stalls emit
// KindLinkStall events into it. Pass nil to detach.
func (m *Mesh) SetRecorder(rec *obs.Recorder) { m.rec = rec }

// LinkCount reports how many directed links the topology has — the
// denominator for the link-utilization gauge. Mesh links are the
// directed nearest-neighbour edges; ring nodes have two neighbours
// each; the crossbar gives every ordered pair its own link.
func (m *Mesh) LinkCount() int {
	switch m.cfg.Topology {
	case TopoRing:
		return 2 * m.nodes
	case TopoCrossbar:
		return m.nodes * (m.nodes - 1)
	}
	x, y := m.cfg.DimX, m.cfg.DimY
	return 2 * (x*(y-1) + y*(x-1))
}

// New builds a mesh over the given engine, accruing network counters
// into st.
func New(cfg Config, eng *engine.Engine, st *stats.Stats) (*Mesh, error) {
	if cfg.DimX <= 0 || cfg.DimY <= 0 {
		return nil, fmt.Errorf("noc: bad dimensions %dx%d", cfg.DimX, cfg.DimY)
	}
	if cfg.FlitBytes <= 0 {
		return nil, fmt.Errorf("noc: bad flit size %d", cfg.FlitBytes)
	}
	nodes := cfg.DimX * cfg.DimY
	return &Mesh{
		cfg:   cfg,
		eng:   eng,
		st:    st,
		last:  make([]engine.Cycle, nodes*nodes*numVnets),
		links: make([]engine.Cycle, nodes*nodes),
		nodes: nodes,
	}, nil
}

// Path returns the route from src to dst as node hops (excluding src
// itself): dimension-ordered XY on the mesh (X fully before Y, the
// deadlock-free discipline), shortest direction on the ring, and the
// direct hop on the crossbar.
func (m *Mesh) Path(src, dst int) []int {
	if src == dst {
		return nil
	}
	switch m.cfg.Topology {
	case TopoRing:
		var path []int
		step := 1
		if (dst-src+m.nodes)%m.nodes > m.nodes/2 {
			step = -1
		}
		for n := src; n != dst; {
			n = (n + step + m.nodes) % m.nodes
			path = append(path, n)
		}
		return path
	case TopoCrossbar:
		return []int{dst}
	}
	var path []int
	x, y := src%m.cfg.DimX, src/m.cfg.DimX
	dx, dy := dst%m.cfg.DimX, dst/m.cfg.DimX
	for x != dx {
		if x < dx {
			x++
		} else {
			x--
		}
		path = append(path, y*m.cfg.DimX+x)
	}
	for y != dy {
		if y < dy {
			y++
		} else {
			y--
		}
		path = append(path, y*m.cfg.DimX+x)
	}
	return path
}

// Nodes reports the node count.
func (m *Mesh) Nodes() int { return m.nodes }

// Hops returns the routed hop count between two nodes: Manhattan
// distance on the mesh, shortest direction on the ring, one on the
// crossbar.
func (m *Mesh) Hops(src, dst int) int {
	if src == dst {
		return 0
	}
	switch m.cfg.Topology {
	case TopoRing:
		d := abs(src - dst)
		if wrap := m.nodes - d; wrap < d {
			return wrap
		}
		return d
	case TopoCrossbar:
		return 1
	}
	sx, sy := src%m.cfg.DimX, src/m.cfg.DimX
	dx, dy := dst%m.cfg.DimX, dst/m.cfg.DimX
	return abs(sx-dx) + abs(sy-dy)
}

// Flits returns how many flits a message of the given size occupies.
func (m *Mesh) Flits(bytes int) int {
	if bytes <= 0 {
		return 1
	}
	return (bytes + m.cfg.FlitBytes - 1) / m.cfg.FlitBytes
}

// Latency computes the delivery latency for a message, excluding FIFO
// back-pressure.
func (m *Mesh) Latency(src, dst, bytes int) engine.Cycle {
	if src == dst {
		return m.cfg.LocalLat
	}
	hops := engine.Cycle(m.Hops(src, dst))
	flits := engine.Cycle(m.Flits(bytes))
	return m.cfg.RouterLat + hops*m.cfg.HopLatency + (flits-1)*m.cfg.SerialLat
}

// Lookahead is the PDES lookahead contract: no message between two
// distinct tiles can arrive sooner than this many core cycles after it
// was sent. Any cross-tile route costs at least RouterLat plus one
// link traversal (hops >= 1, flits >= 1, serialization and FIFO floors
// only add delay), so partitions may run RouterLat+HopLatency cycles
// apart without missing an incoming message.
func (m *Mesh) Lookahead() engine.Cycle {
	return m.cfg.RouterLat + m.cfg.HopLatency
}

// LookaheadBetween is the per-pair refinement of Lookahead: no message
// from src to dst can arrive sooner than this many core cycles after
// it was sent, because the route costs at least RouterLat plus one
// HopLatency per hop of the topology's shortest path. Hop distances
// are metrics (symmetric, triangle inequality) on every topology, so
// relayed causality is never faster than the direct pair bound:
// LookaheadBetween(a,b) + LookaheadBetween(b,c) >= LookaheadBetween(a,c).
// The PDES window loop uses the full pair matrix to give distant tiles
// wider windows than the uniform worst case allows.
func (m *Mesh) LookaheadBetween(src, dst int) engine.Cycle {
	return m.cfg.RouterLat + engine.Cycle(m.Hops(src, dst))*m.cfg.HopLatency
}

// Send delivers a message of the given byte size from src to dst on
// virtual network vnet, invoking deliver when it arrives. Deliveries
// on the same (src, dst, vnet) channel never reorder. Flit-hop and
// message counters accrue immediately.
func (m *Mesh) Send(src, dst, vnet, bytes int, deliver func()) {
	at := m.Arrival(m.eng.Now(), src, dst, vnet, bytes, m.st)
	m.eng.ScheduleAt(at, deliver)
}

// SendRunner is Send for a pre-bound engine.Runner: the allocation-free
// path the coherence layer uses (the message itself is the runner).
func (m *Mesh) SendRunner(src, dst, vnet, bytes int, deliver engine.Runner) {
	at := m.Arrival(m.eng.Now(), src, dst, vnet, bytes, m.st)
	m.eng.ScheduleRunnerAt(at, deliver)
}

// Arrival accounts the message into st and computes its delivery cycle
// for a send at cycle now, including FIFO back-pressure on the (src,
// dst, vnet) channel. Exposed so the PDES executor can compute
// arrivals with a partition's local clock and stats shard: the FIFO
// state it touches is indexed by source node, so concurrent calls from
// different source partitions never share a slot. The contention model
// is the exception — it reserves globally shared links — and is
// rejected at system construction when partitions run concurrently.
func (m *Mesh) Arrival(now engine.Cycle, src, dst, vnet, bytes int, st *stats.Stats) engine.Cycle {
	if src < 0 || src >= m.nodes || dst < 0 || dst >= m.nodes {
		panic(fmt.Sprintf("noc: node out of range: src=%d dst=%d nodes=%d", src, dst, m.nodes))
	}
	if vnet < 0 || vnet >= numVnets {
		panic(fmt.Sprintf("noc: vnet out of range: %d", vnet))
	}
	flits := m.Flits(bytes)
	hops := m.Hops(src, dst)
	st.Messages++
	st.Flits += uint64(flits)
	st.FlitHops += uint64(flits * hops)

	var at engine.Cycle
	if m.cfg.ModelContention && src != dst {
		at = m.reserve(now, src, dst, flits, st)
	} else {
		at = now + m.Latency(src, dst, bytes)
	}
	// last holds (previous delivery cycle + 1), so the zero value means
	// "channel never used" and preserves FIFO order otherwise.
	idx := (src*m.nodes+dst)*numVnets + vnet
	if floor := m.last[idx]; at < floor {
		at = floor
	}
	m.last[idx] = at + 1
	return at
}

// reserve walks the XY path claiming each link in turn (wormhole
// style): the head flit waits for the link to drain, then the message
// occupies it for one serialization slot per flit. The returned cycle
// is the tail's arrival at the destination; queueing beyond the
// uncontended latency accrues to the LinkStallCycles counter.
func (m *Mesh) reserve(now engine.Cycle, src, dst int, flits int, st *stats.Stats) engine.Cycle {
	occupancy := engine.Cycle(flits) * m.cfg.SerialLat
	if occupancy == 0 {
		occupancy = 1
	}
	head := now + m.cfg.RouterLat
	prev := src
	for _, next := range m.Path(src, dst) {
		l := prev*m.nodes + next
		start := head
		if busy := m.links[l]; busy > start {
			start = busy
		}
		m.links[l] = start + occupancy
		head = start + m.cfg.HopLatency
		prev = next
	}
	arrival := head + engine.Cycle(flits-1)*m.cfg.SerialLat
	base := now + m.Latency(src, dst, flits*m.cfg.FlitBytes)
	if arrival > base {
		st.LinkStallCycles += uint64(arrival - base)
		if m.rec != nil {
			m.rec.Record(obs.Event{
				Cycle: now,
				Kind:  obs.KindLinkStall,
				Node:  int16(src),
				Peer:  int16(dst),
				Txn:   uint64(arrival - base),
			})
		}
	}
	return arrival
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
