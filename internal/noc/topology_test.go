package noc

import (
	"testing"

	"protozoa/internal/engine"
	"protozoa/internal/stats"
)

func topoMesh(t *testing.T, topo Topology) *Mesh {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Topology = topo
	m, err := New(cfg, engine.New(), &stats.Stats{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRingHops(t *testing.T) {
	m := topoMesh(t, TopoRing)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 8, 8}, {0, 15, 1}, {0, 9, 7}, {3, 13, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("ring Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestCrossbarHops(t *testing.T) {
	m := topoMesh(t, TopoCrossbar)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			want := 1
			if src == dst {
				want = 0
			}
			if got := m.Hops(src, dst); got != want {
				t.Fatalf("crossbar Hops(%d,%d) = %d, want %d", src, dst, got, want)
			}
		}
	}
}

func TestRingPathShortestDirection(t *testing.T) {
	m := topoMesh(t, TopoRing)
	// 0 -> 15 goes backwards (one hop).
	p := m.Path(0, 15)
	if len(p) != 1 || p[0] != 15 {
		t.Errorf("Path(0,15) = %v, want [15]", p)
	}
	// 0 -> 3 forward.
	p = m.Path(0, 3)
	if len(p) != 3 || p[0] != 1 || p[2] != 3 {
		t.Errorf("Path(0,3) = %v", p)
	}
	if len(m.Path(4, 4)) != 0 {
		t.Error("self path not empty")
	}
}

func TestPathLengthMatchesHopsAllTopologies(t *testing.T) {
	for _, topo := range []Topology{TopoMesh, TopoRing, TopoCrossbar} {
		m := topoMesh(t, topo)
		for src := 0; src < 16; src++ {
			for dst := 0; dst < 16; dst++ {
				if got, want := len(m.Path(src, dst)), m.Hops(src, dst); got != want {
					t.Fatalf("%v: |Path(%d,%d)| = %d, Hops = %d", topo, src, dst, got, want)
				}
			}
		}
	}
}

func TestTopologyString(t *testing.T) {
	for topo, want := range map[Topology]string{
		TopoMesh: "mesh", TopoRing: "ring", TopoCrossbar: "crossbar",
	} {
		if topo.String() != want {
			t.Errorf("%d.String() = %q", topo, topo.String())
		}
	}
}

func TestTopologyFlitHopCosts(t *testing.T) {
	// The same message costs more flit-hops on the ring and fewer on
	// the crossbar than on the mesh (corner-to-corner traffic).
	cost := func(topo Topology) uint64 {
		eng := engine.New()
		st := &stats.Stats{}
		cfg := DefaultConfig()
		cfg.Topology = topo
		m, err := New(cfg, eng, st)
		if err != nil {
			t.Fatal(err)
		}
		m.Send(0, 10, 0, 72, func() {})
		eng.Run(0)
		return st.FlitHops
	}
	mesh, ring, xbar := cost(TopoMesh), cost(TopoRing), cost(TopoCrossbar)
	if !(xbar < mesh && mesh < ring) {
		t.Errorf("flit-hops crossbar %d < mesh %d < ring %d violated", xbar, mesh, ring)
	}
}
