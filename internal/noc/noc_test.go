package noc

import (
	"testing"
	"testing/quick"

	"protozoa/internal/engine"
	"protozoa/internal/stats"
)

func newMesh(t *testing.T) (*Mesh, *engine.Engine, *stats.Stats) {
	t.Helper()
	eng := engine.New()
	st := &stats.Stats{}
	m, err := New(DefaultConfig(), eng, st)
	if err != nil {
		t.Fatal(err)
	}
	return m, eng, st
}

func TestNewRejectsBadConfig(t *testing.T) {
	eng := engine.New()
	st := &stats.Stats{}
	if _, err := New(Config{DimX: 0, DimY: 4, FlitBytes: 16}, eng, st); err == nil {
		t.Error("zero DimX accepted")
	}
	if _, err := New(Config{DimX: 4, DimY: 4, FlitBytes: 0}, eng, st); err == nil {
		t.Error("zero FlitBytes accepted")
	}
}

func TestHopsManhattan(t *testing.T) {
	m, _, _ := newMesh(t)
	cases := []struct {
		src, dst, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},
		{0, 5, 2},
		{0, 15, 6}, // corner to corner on 4x4
		{3, 12, 6},
		{5, 6, 1},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	m, _, _ := newMesh(t)
	f := func(a, b uint8) bool {
		s, d := int(a)%16, int(b)%16
		return m.Hops(s, d) == m.Hops(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlits(t *testing.T) {
	m, _, _ := newMesh(t)
	cases := []struct{ bytes, want int }{
		{0, 1}, {1, 1}, {8, 1}, {16, 1}, {17, 2}, {32, 2}, {72, 5},
	}
	for _, c := range cases {
		if got := m.Flits(c.bytes); got != c.want {
			t.Errorf("Flits(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestSendAccrualAndDelivery(t *testing.T) {
	m, eng, st := newMesh(t)
	delivered := false
	m.Send(0, 15, 0, 72, func() { delivered = true }) // 5 flits x 6 hops
	if st.FlitHops != 30 {
		t.Errorf("FlitHops = %d, want 30", st.FlitHops)
	}
	if st.Flits != 5 || st.Messages != 1 {
		t.Errorf("Flits/Messages = %d/%d, want 5/1", st.Flits, st.Messages)
	}
	eng.Run(0)
	if !delivered {
		t.Fatal("message never delivered")
	}
}

func TestLocalDeliveryZeroFlitHops(t *testing.T) {
	m, eng, st := newMesh(t)
	m.Send(3, 3, 0, 64, func() {})
	if st.FlitHops != 0 {
		t.Errorf("local FlitHops = %d, want 0", st.FlitHops)
	}
	eng.Run(0)
	if eng.Now() != engine.Cycle(DefaultConfig().LocalLat) {
		t.Errorf("local latency = %d, want %d", eng.Now(), DefaultConfig().LocalLat)
	}
}

func TestFIFOOrderingSameChannel(t *testing.T) {
	m, eng, _ := newMesh(t)
	var got []int
	// Big message first (slow), small second (would be faster): FIFO must
	// still deliver in send order.
	m.Send(0, 15, 1, 160, func() { got = append(got, 1) })
	m.Send(0, 15, 1, 8, func() { got = append(got, 2) })
	eng.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delivery order = %v, want [1 2]", got)
	}
}

func TestDifferentVnetsMayReorder(t *testing.T) {
	m, eng, _ := newMesh(t)
	var got []int
	m.Send(0, 15, 0, 160, func() { got = append(got, 1) }) // slow, vnet 0
	m.Send(0, 15, 2, 8, func() { got = append(got, 2) })   // fast, vnet 2
	eng.Run(0)
	if len(got) != 2 || got[0] != 2 {
		t.Fatalf("delivery order = %v, want fast vnet-2 message first", got)
	}
}

func TestLatencyScalesWithHopsAndFlits(t *testing.T) {
	m, _, _ := newMesh(t)
	cfg := DefaultConfig()
	oneFlitOneHop := m.Latency(0, 1, 8)
	want := cfg.RouterLat + cfg.HopLatency
	if oneFlitOneHop != want {
		t.Errorf("Latency(0,1,8) = %d, want %d", oneFlitOneHop, want)
	}
	if m.Latency(0, 1, 80) <= oneFlitOneHop {
		t.Error("more flits should cost more")
	}
	if m.Latency(0, 15, 8) <= oneFlitOneHop {
		t.Error("more hops should cost more")
	}
}

func TestSendPanicsOnBadNode(t *testing.T) {
	m, _, _ := newMesh(t)
	defer func() {
		if recover() == nil {
			t.Error("Send with out-of-range node did not panic")
		}
	}()
	m.Send(0, 99, 0, 8, func() {})
}
