package noc

import (
	"testing"

	"protozoa/internal/engine"
	"protozoa/internal/stats"
)

func contMesh(t *testing.T) (*Mesh, *engine.Engine, *stats.Stats) {
	t.Helper()
	eng := engine.New()
	st := &stats.Stats{}
	cfg := DefaultConfig()
	cfg.ModelContention = true
	m, err := New(cfg, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	return m, eng, st
}

func TestPathXYRouting(t *testing.T) {
	m, _, _ := contMesh(t)
	// 0 (0,0) -> 15 (3,3): X first then Y.
	want := []int{1, 2, 3, 7, 11, 15}
	got := m.Path(0, 15)
	if len(got) != len(want) {
		t.Fatalf("Path(0,15) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Path(0,15) = %v, want %v", got, want)
		}
	}
	if len(m.Path(5, 5)) != 0 {
		t.Error("self-path not empty")
	}
	// Westward + northward.
	got = m.Path(15, 0)
	if got[0] != 14 || got[len(got)-1] != 0 {
		t.Errorf("Path(15,0) = %v", got)
	}
}

func TestContentionDelaysSharedLink(t *testing.T) {
	m, eng, st := contMesh(t)
	var order []int
	// Two long messages over the same link 0->1 back to back.
	m.Send(0, 1, 0, 160, func() { order = append(order, 1) }) // 10 flits
	m.Send(0, 1, 1, 160, func() { order = append(order, 2) }) // different vnet: no FIFO coupling
	eng.Run(0)
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("order = %v", order)
	}
	if st.LinkStallCycles == 0 {
		t.Error("no stall cycles recorded on a contended link")
	}
}

func TestNoContentionOnDisjointPaths(t *testing.T) {
	m, eng, st := contMesh(t)
	m.Send(0, 1, 0, 160, func() {})
	m.Send(14, 15, 0, 160, func() {}) // disjoint links
	eng.Run(0)
	if st.LinkStallCycles != 0 {
		t.Errorf("stalls = %d on disjoint paths, want 0", st.LinkStallCycles)
	}
}

func TestContentionMatchesBaseLatencyWhenIdle(t *testing.T) {
	// An uncontended message must arrive no earlier than the analytic
	// latency and within one serialization slot of it.
	m, eng, _ := contMesh(t)
	base := engine.New()
	stB := &stats.Stats{}
	mb, err := New(DefaultConfig(), base, stB)
	if err != nil {
		t.Fatal(err)
	}
	var at, atBase engine.Cycle
	m.Send(0, 15, 0, 72, func() { at = eng.Now() })
	mb.Send(0, 15, 0, 72, func() { atBase = base.Now() })
	eng.Run(0)
	base.Run(0)
	if at < atBase {
		t.Errorf("contended idle delivery %d earlier than base %d", at, atBase)
	}
	if at > atBase+DefaultConfig().SerialLat {
		t.Errorf("idle delivery %d far beyond base %d", at, atBase)
	}
}

func TestContentionLocalDeliveryUnaffected(t *testing.T) {
	m, eng, st := contMesh(t)
	m.Send(3, 3, 0, 64, func() {})
	eng.Run(0)
	if st.LinkStallCycles != 0 {
		t.Error("local delivery stalled")
	}
	if eng.Now() != engine.Cycle(DefaultConfig().LocalLat) {
		t.Errorf("local latency = %d", eng.Now())
	}
}
