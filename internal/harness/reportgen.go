package harness

import (
	"fmt"
	"io"

	"protozoa/internal/core"
	"protozoa/internal/mem"
	"protozoa/internal/profile"
	"protozoa/internal/runner"
	"protozoa/internal/stats"
	"protozoa/internal/trace"
	"protozoa/internal/workloads"
)

// GenerateReport reproduces the paper's full evaluation in one pass
// and writes it as a self-contained markdown document: the Section 2
// motivation profile, Table 1, Figures 9-15, the headline geomeans,
// and a random-tester verification of every protocol. This is the
// one-command reproduction artifact behind cmd/protozoa-report.
func GenerateReport(o Options, w io.Writer) error {
	if o.Cores == 0 {
		o.Cores = 16
	}
	fmt.Fprintf(w, "# Protozoa reproduction report\n\n")
	fmt.Fprintf(w, "Configuration: %d cores, workload scale %d, %d workloads.\n\n",
		o.Cores, o.Scale, len(o.workloadList()))

	// Correctness first: the Section 3.6 random tester.
	fmt.Fprintf(w, "## Protocol verification (random tester)\n\n```\n")
	for _, p := range core.AllProtocols {
		loads, checks, err := verifyProtocol(p, o.Cores)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-15s %7d loads checked, %7d quiescent scans: OK\n", p, loads, checks)
	}
	fmt.Fprintf(w, "```\n\n")

	// Section 2 motivation.
	fmt.Fprintf(w, "## Section 2: sharing and locality profile\n\n```\n")
	fmt.Fprintf(w, "%-18s %9s %10s %13s %12s %10s\n",
		"workload", "private", "read-only", "false-shared", "true-shared", "footprint")
	for _, name := range o.workloadList() {
		spec, err := workloads.Get(name)
		if err != nil {
			return err
		}
		r := profile.Analyze(spec.Streams(o.Cores, o.Scale), mem.DefaultGeometry)
		fmt.Fprintf(w, "%-18s %8.1f%% %9.1f%% %12.1f%% %11.1f%% %9.0f%%\n",
			name, r.ClassPct(profile.Private), r.ClassPct(profile.ReadOnlyShared),
			r.ClassPct(profile.FalseShared), r.ClassPct(profile.TrueShared), r.FootprintPct())
	}
	fmt.Fprintf(w, "```\n\n")

	// Table 1.
	t1, err := CollectTable1(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "## Table 1: MESI vs fixed block size\n\n```\n%s```\n\n", t1.Render())

	// The protocol matrix and every figure.
	m, err := Collect(o)
	if err != nil {
		return err
	}
	figs := []struct {
		title  string
		render func() string
	}{
		{"Figure 9: traffic breakdown", m.Fig9Traffic},
		{"Figure 10: control breakdown", m.Fig10Control},
		{"Figure 11: directory owner mix", m.Fig11Owners},
		{"Figure 12: block-size distribution", m.Fig12BlockDist},
		{"Figure 13: miss rate", m.Fig13MPKI},
		{"Figure 14: execution time", m.Fig14Exec},
		{"Figure 15: interconnect energy", m.Fig15FlitHops},
		{"Miss classification (beyond the paper)", m.FigMissClass},
	}
	for _, f := range figs {
		fmt.Fprintf(w, "## %s\n\n```\n%s```\n\n", f.title, f.render())
	}

	// Observability: where the miss cycles go, per protocol. The phase
	// averages tile the miss interval, so phase-sum equals avg-lat.
	fmt.Fprintf(w, "## Miss-latency phase decomposition (avg cycles/miss)\n\n```\n%s```\n\n",
		m.PhaseDecomposition())

	// Attribution: who caused the traffic. The summary shows the
	// adaptive protocols converting MESI's wasted fetches into
	// utilization; the offender table names the regions behind what
	// waste remains under the MESI baseline.
	fmt.Fprintf(w, "## Traffic attribution: utilization and sharing patterns\n\n```\n%s```\n\n",
		m.AttributionSummary())
	fmt.Fprintf(w, "### Fill utilization by workload\n\n```\n%s```\n\n", m.UtilizationTable())
	fmt.Fprintf(w, "### Top offender regions (MESI)\n\n```\n%s```\n\n",
		m.TopOffendersTable(core.MESI, 10))

	// Headline summary.
	fmt.Fprintf(w, "## Headline geomeans vs MESI\n\n")
	fmt.Fprintf(w, "| metric | SW | SW+MR | MW |\n|---|---|---|---|\n")
	row := func(name string, metric func(*stats.Stats) float64) {
		fmt.Fprintf(w, "| %s |", name)
		for _, p := range []core.Protocol{core.ProtozoaSW, core.ProtozoaSWMR, core.ProtozoaMW} {
			fmt.Fprintf(w, " %+.0f%% |", 100*(m.GeoMeanRatio(p, metric)-1))
		}
		fmt.Fprintf(w, "\n")
	}
	row("traffic", TrafficBytes)
	row("misses", func(s *stats.Stats) float64 { return float64(s.L1Misses) })
	row("flit-hops", FlitHops)
	row("execution time", ExecCycles)
	return nil
}

// verifyProtocol runs a seeded random stress with the checker attached
// and returns the validated load and scan counts.
func verifyProtocol(p core.Protocol, cores int) (loads, checks int, err error) {
	cfg := core.DefaultConfig(p)
	if err := runner.ConfigureCores(&cfg, cores); err != nil {
		return 0, 0, fmt.Errorf("harness: %w", err)
	}
	streams := make([]trace.Stream, cores)
	for c := 0; c < cores; c++ {
		rng := trace.NewRNG(uint64(4242 + c))
		recs := make([]trace.Access, 0, 1000)
		for i := 0; i < 1000; i++ {
			kind := trace.Load
			switch r := rng.Intn(100); {
			case r < 30:
				kind = trace.Store
			case r < 40:
				kind = trace.RMW
			}
			recs = append(recs, trace.Access{
				Kind: kind,
				Addr: mem.Addr(rng.Intn(12)*64 + rng.Intn(8)*8),
				PC:   uint64(0x400 + rng.Intn(8)*4),
			})
		}
		streams[c] = trace.NewSliceStream(recs)
	}
	sys, err := core.NewSystem(cfg, streams)
	if err != nil {
		return 0, 0, err
	}
	chk := core.NewChecker(sys)
	if err := sys.Run(); err != nil {
		return 0, 0, err
	}
	if err := chk.Err(); err != nil {
		return 0, 0, err
	}
	return chk.Loads, chk.Checks, nil
}
