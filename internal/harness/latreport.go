package harness

import (
	"fmt"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/obs"
)

// mergedBreakdown folds every workload's breakdown for one protocol
// into a single accumulator.
func (m *Matrix) mergedBreakdown(p core.Protocol) *obs.LatencyBreakdown {
	merged := &obs.LatencyBreakdown{}
	for _, w := range m.Workloads {
		if b := m.Breakdowns[w][p]; b != nil {
			merged.Merge(b)
		}
	}
	return merged
}

// PhaseDecomposition renders the per-protocol miss-latency phase
// table: average cycles per miss in each transaction phase, their sum,
// and the stats-side average miss latency they must reconcile with
// (the phases tile the miss interval, so the two columns agree to
// rounding — the cross-check the observability layer is built around).
func (m *Matrix) PhaseDecomposition() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s", "protocol")
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		fmt.Fprintf(&b, " %11s", p)
	}
	fmt.Fprintf(&b, " %11s %11s %8s %10s  %s\n", "phase-sum", "avg-lat", "q-high", "zero-delay", "tail")
	for _, p := range m.Protocols {
		lat := m.mergedBreakdown(p)
		var misses, latSum, qHigh, zeroDelay uint64
		for _, w := range m.Workloads {
			if s := m.Get(w, p); s != nil {
				misses += s.L1Misses
				latSum += s.MissLatencySum
				// Queue high-water is a per-run peak, not additive;
				// report the deepest any workload's queue got.
				if s.EventQueueHighWater > qHigh {
					qHigh = s.EventQueueHighWater
				}
				zeroDelay += s.ZeroDelayHits
			}
		}
		avg := 0.0
		if misses > 0 {
			avg = float64(latSum) / float64(misses)
		}
		var phaseSum float64
		for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
			phaseSum += lat.AvgPhase(ph)
		}
		fmt.Fprintf(&b, "%-15s", p)
		for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
			fmt.Fprintf(&b, " %11.1f", lat.AvgPhase(ph))
		}
		fmt.Fprintf(&b, " %11.1f %11.1f %8d %10d  p50<=%d p95<=%d p99<=%d\n",
			phaseSum, avg, qHigh, zeroDelay,
			lat.Percentile(50), lat.Percentile(95), lat.Percentile(99))
	}
	return b.String()
}
