package harness

// Snapshot regression: the simulator is fully deterministic, so the
// exact miss counts of representative (workload, protocol) cells are
// pinned. Any change to protocol behaviour, predictor training, cache
// replacement, workload generation, or event ordering that alters
// these counts fails here first — on purpose. If a change is
// intentional, regenerate the table (the values are printed on
// failure) and account for the shift in EXPERIMENTS.md.

import (
	"testing"

	"protozoa/internal/core"
)

// snapshotMisses holds L1 miss counts at 4 cores, scale 1, in
// AllProtocols order (MESI, SW, SW+MR, MW).
var snapshotMisses = map[string][4]uint64{
	"linear-regression": {859, 1309, 679, 111},
	"histogram":         {3091, 3414, 2311, 969},
	"canneal":           {12003, 8947, 8947, 8947},
	"matrix-multiply":   {792, 792, 792, 792},
	"barnes":            {3647, 4157, 3670, 3472},
	"apache":            {3465, 3852, 3844, 3844},
}

func TestSnapshotDeterminism(t *testing.T) {
	for w, want := range snapshotMisses {
		for i, p := range core.AllProtocols {
			st, err := Run(w, p, Options{Cores: 4, Scale: 1})
			if err != nil {
				t.Fatal(err)
			}
			if st.L1Misses != want[i] {
				t.Errorf("%s under %v: misses = %d, want %d (behavioural drift — regenerate if intentional)",
					w, p, st.L1Misses, want[i])
			}
		}
	}
}

// TestSnapshotRepeatability: two runs of the same cell are bit-equal
// on every counter that matters, not just misses.
func TestSnapshotRepeatability(t *testing.T) {
	run := func() [6]uint64 {
		st, err := Run("barnes", core.ProtozoaMW, Options{Cores: 4, Scale: 1})
		if err != nil {
			t.Fatal(err)
		}
		return [6]uint64{
			st.L1Misses, st.TrafficTotal(), st.FlitHops,
			st.ExecCycles, st.Invalidations, st.MissLatencySum,
		}
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("nondeterministic run: %v vs %v", a, b)
	}
}
