// Package harness regenerates the paper's evaluation: Table 1 (MESI
// behaviour across fixed block sizes) and Figures 9-15 (traffic
// breakdown, control breakdown, directory owner occupancy, block-size
// distribution, miss rates, execution time, and interconnect energy).
// Each experiment runs the full simulator over the synthetic workload
// suite and renders the same rows/series the paper reports as text
// tables.
package harness

import (
	"errors"
	"fmt"
	"io"

	"protozoa/internal/core"
	"protozoa/internal/obs"
	"protozoa/internal/obs/attrib"
	"protozoa/internal/resultcache"
	"protozoa/internal/runner"
	"protozoa/internal/stats"
	"protozoa/internal/workloads"
)

// Options sizes an experiment run.
type Options struct {
	Cores     int      // simulated cores (paper: 16)
	Scale     int      // workload iteration multiplier
	Workloads []string // nil = the full suite
	MaxEvents uint64   // watchdog; 0 = derived from workload size
	TraceSeed uint64   // trace-randomization seed (0 = canonical streams)

	// Jobs bounds how many matrix cells Collect/CollectTable1 simulate
	// concurrently (<=0 = GOMAXPROCS). Results are identical at any
	// setting: each cell owns its engine and stats.
	Jobs int
	// Workers, when > 0, runs each machine with the parallel window loop
	// on that many goroutines (core.Config.Workers). Results are
	// byte-identical for every Workers >= 1; 0 keeps the sequential
	// engine.
	Workers int
	// Progress, when non-nil, receives per-cell completion lines and
	// an aggregate summary from the runner.
	Progress io.Writer

	// Cache, when non-nil, memoizes matrix cells in the
	// content-addressed result cache: repeated cells are answered from
	// it without simulating, with byte-identical output (see
	// runner.Pool.Cache and runner.OpenCache).
	Cache *resultcache.Cache
}

func (o Options) pool() runner.Pool {
	return runner.Pool{Jobs: o.Jobs, Progress: o.Progress, Cache: o.Cache}
}

// DefaultOptions is the paper's 16-core configuration at a scale that
// finishes the full matrix in tens of seconds.
func DefaultOptions() Options {
	return Options{Cores: 16, Scale: 2}
}

func (o Options) workloadList() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return workloads.Names()
}

func (o Options) cores() int {
	if o.Cores == 0 {
		return 16
	}
	return o.Cores
}

// cellConfig resolves the machine configuration for one matrix cell —
// the value both the builder and the cache key derive from.
func cellConfig(p core.Protocol, o Options) (core.Config, error) {
	cfg := core.DefaultConfig(p)
	cfg.Workers = o.Workers
	cfg.MaxEvents = o.MaxEvents
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 200_000_000
	}
	if err := runner.ConfigureCores(&cfg, o.cores()); err != nil {
		return core.Config{}, fmt.Errorf("harness: %w", err)
	}
	return cfg, nil
}

// cellKey derives a matrix cell's cache key; unknown workloads or
// unresolvable configs yield the zero (uncacheable) key, leaving the
// error to surface from Build with the cell's own label.
func cellKey(workload string, p core.Protocol, o Options, needAttrib, needLatency bool) resultcache.Key {
	spec, err := workloads.Get(workload)
	if err != nil {
		return resultcache.Key{}
	}
	cfg, err := cellConfig(p, o)
	if err != nil {
		return resultcache.Key{}
	}
	return runner.CellSpec{
		Config:      cfg,
		Workload:    spec.Name,
		Scale:       o.Scale,
		Seed:        o.TraceSeed,
		NeedAttrib:  needAttrib,
		NeedLatency: needLatency,
	}.Key()
}

// buildSystem assembles the machine for one matrix cell.
func buildSystem(workload string, p core.Protocol, o Options) (*core.System, error) {
	spec, err := workloads.Get(workload)
	if err != nil {
		return nil, err
	}
	cfg, err := cellConfig(p, o)
	if err != nil {
		return nil, err
	}
	return core.NewSystem(cfg, spec.StreamsSeeded(o.cores(), o.Scale, o.TraceSeed))
}

// Run simulates one workload under one protocol and returns its stats.
func Run(workload string, p core.Protocol, o Options) (*stats.Stats, error) {
	sys, err := buildSystem(workload, p, o)
	if err != nil {
		return nil, err
	}
	if err := sys.Run(); err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %w", workload, p, err)
	}
	return sys.Stats(), nil
}

// Matrix holds the stats of every (workload, protocol) pair so all the
// per-protocol figures derive from one set of runs.
type Matrix struct {
	Workloads []string
	Protocols []core.Protocol
	Cells     map[string]map[core.Protocol]*stats.Stats

	// Breakdowns holds each cell's miss-latency phase decomposition,
	// captured by Collect via the observability layer.
	Breakdowns map[string]map[core.Protocol]*obs.LatencyBreakdown

	// Attribs holds each cell's coherence-traffic attribution —
	// word utilization, sharing patterns, and offender rankings.
	Attribs map[string]map[core.Protocol]*attrib.Tracker
}

// Collect runs the full workload x protocol matrix, fanning the cells
// out over Options.Jobs workers. All cells run even if some fail; the
// joined error then reports every failing cell at once.
func Collect(o Options) (*Matrix, error) {
	m := &Matrix{
		Workloads:  o.workloadList(),
		Protocols:  core.AllProtocols,
		Cells:      make(map[string]map[core.Protocol]*stats.Stats),
		Breakdowns: make(map[string]map[core.Protocol]*obs.LatencyBreakdown),
		Attribs:    make(map[string]map[core.Protocol]*attrib.Tracker),
	}
	var cells []runner.Cell
	for _, w := range m.Workloads {
		for _, p := range m.Protocols {
			cells = append(cells, runner.Cell{
				Label:    w + "/" + p.String(),
				Workload: w,
				Protocol: p,
				Key:      cellKey(w, p, o, true, true),
				// The figures need attribution and the phase breakdown;
				// the pool delivers both, live or from the cache.
				NeedAttrib:  true,
				NeedLatency: true,
				Build:       func() (*core.System, error) { return buildSystem(w, p, o) },
			})
		}
	}
	results, _ := o.pool().Run(cells)
	var errs []error
	i := 0
	for _, w := range m.Workloads {
		m.Cells[w] = make(map[core.Protocol]*stats.Stats)
		m.Breakdowns[w] = make(map[core.Protocol]*obs.LatencyBreakdown)
		m.Attribs[w] = make(map[core.Protocol]*attrib.Tracker)
		for _, p := range m.Protocols {
			r := results[i]
			i++
			if r.Err != nil {
				errs = append(errs, r.Err)
				continue
			}
			m.Breakdowns[w][p] = r.Latency
			m.Attribs[w][p] = r.Attrib
			m.Cells[w][p] = r.Stats
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("harness: %w", errors.Join(errs...))
	}
	return m, nil
}

// Get returns the stats cell for a pair.
func (m *Matrix) Get(w string, p core.Protocol) *stats.Stats { return m.Cells[w][p] }

// geoMean computes the geometric mean of positive ratios; zero or
// negative inputs are skipped.
func geoMean(vals []float64) float64 {
	prod, n := 1.0, 0
	for _, v := range vals {
		if v > 0 {
			prod *= v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	// n-th root via successive halving is overkill; use math.Pow.
	return pow(prod, 1.0/float64(n))
}

// GeoMeanRatio computes the geometric mean across workloads of
// metric(p)/metric(MESI).
func (m *Matrix) GeoMeanRatio(p core.Protocol, metric func(*stats.Stats) float64) float64 {
	var ratios []float64
	for _, w := range m.Workloads {
		base := metric(m.Get(w, core.MESI))
		v := metric(m.Get(w, p))
		if base > 0 {
			ratios = append(ratios, v/base)
		}
	}
	return geoMean(ratios)
}

// Metric helpers shared by figures and benches.

// TrafficBytes is total L1 traffic (Figure 9's denominator).
func TrafficBytes(s *stats.Stats) float64 { return float64(s.TrafficTotal()) }

// MPKI is misses per kilo-instruction (Figure 13).
func MPKI(s *stats.Stats) float64 { return s.MPKI() }

// ExecCycles is runtime (Figure 14).
func ExecCycles(s *stats.Stats) float64 { return float64(s.ExecCycles) }

// FlitHops is the interconnect energy proxy (Figure 15).
func FlitHops(s *stats.Stats) float64 { return float64(s.FlitHops) }
