package harness

// Robustness across trace randomizations: the headline shapes must not
// depend on the canonical seed. Each seed yields a different concrete
// access sequence with the same sharing/locality signature.

import (
	"testing"

	"protozoa/internal/core"
	"protozoa/internal/workloads"
)

func TestSeededStreamsDiffer(t *testing.T) {
	spec := workloads.MustGet("canneal")
	a := spec.StreamsSeeded(2, 1, 0)
	b := spec.StreamsSeeded(2, 1, 1)
	sameCount, total := 0, 0
	for {
		ra, okA := a[0].Next()
		rb, okB := b[0].Next()
		if okA != okB {
			t.Fatal("seeded streams have different lengths")
		}
		if !okA {
			break
		}
		total++
		if ra.Addr == rb.Addr {
			sameCount++
		}
	}
	if total == 0 || sameCount == total {
		t.Errorf("seeds 0 and 1 agree on %d/%d addresses; want different sequences", sameCount, total)
	}
}

func TestSeedZeroIsCanonical(t *testing.T) {
	spec := workloads.MustGet("barnes")
	a := spec.Streams(2, 1)
	b := spec.StreamsSeeded(2, 1, 0)
	for {
		ra, okA := a[0].Next()
		rb, okB := b[0].Next()
		if okA != okB || ra != rb {
			t.Fatal("StreamsSeeded(.., 0) diverges from Streams")
		}
		if !okA {
			return
		}
	}
}

func TestHeadlineShapeRobustAcrossSeeds(t *testing.T) {
	// The linear-regression MW win must hold for every trace seed.
	for seed := uint64(0); seed < 3; seed++ {
		o := Options{Cores: 4, Scale: 1, TraceSeed: seed}
		mesi, err := Run("linear-regression", core.MESI, o)
		if err != nil {
			t.Fatal(err)
		}
		mw, err := Run("linear-regression", core.ProtozoaMW, o)
		if err != nil {
			t.Fatal(err)
		}
		if mw.L1Misses*3 > mesi.L1Misses {
			t.Errorf("seed %d: MW misses %d not << MESI %d", seed, mw.L1Misses, mesi.L1Misses)
		}
	}
}

func TestCannealCapacityShapeRobustAcrossSeeds(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		o := Options{Cores: 4, Scale: 1, TraceSeed: seed}
		mesi, err := Run("canneal", core.MESI, o)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := Run("canneal", core.ProtozoaSW, o)
		if err != nil {
			t.Fatal(err)
		}
		if sw.UsedPct() < 1.5*mesi.UsedPct() {
			t.Errorf("seed %d: SW used%% %.1f not well above MESI %.1f", seed, sw.UsedPct(), mesi.UsedPct())
		}
	}
}
