package harness

import (
	"fmt"
	"sort"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/obs/attrib"
)

// mergedAttribution folds every workload's attribution summary for one
// protocol into a single rollup.
func (m *Matrix) mergedAttribution(p core.Protocol) attrib.Summary {
	var sum attrib.Summary
	for _, w := range m.Workloads {
		if tr := m.Attribs[w][p]; tr != nil {
			sum.Add(tr.Summarize())
		}
	}
	return sum
}

// AttributionSummary renders the per-protocol utilization and
// sharing-pattern rollup: what fraction of fetched words each protocol
// actually used, the bytes it wasted on the NoC, its coherence churn,
// and how the region population classifies. The adaptive protocols'
// utilization climbing toward 100% while false-shared regions drop to
// zero is the paper's §1-2 motivation, measured.
func (m *Matrix) AttributionSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %8s %12s %9s %9s %8s", "protocol", "util", "wasted-B", "invals", "upgrades", "probes")
	for pat := attrib.Pattern(0); pat < attrib.NumPatterns; pat++ {
		fmt.Fprintf(&b, " %12s", pat)
	}
	fmt.Fprintf(&b, "\n")
	for _, p := range m.Protocols {
		s := m.mergedAttribution(p)
		fmt.Fprintf(&b, "%-15s %7.1f%% %12d %9d %9d %8d", p,
			s.UtilPct, s.WastedBytes, s.Invalidations, s.Upgrades, s.ProbeMsgs)
		for pat := attrib.Pattern(0); pat < attrib.NumPatterns; pat++ {
			fmt.Fprintf(&b, " %12d", s.Patterns[pat])
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// UtilizationTable renders the workloads x protocols fill-utilization
// grid (percent of fetched words used before their block died).
func (m *Matrix) UtilizationTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "workload")
	for _, p := range m.Protocols {
		fmt.Fprintf(&b, " %14s", p)
	}
	fmt.Fprintf(&b, "\n")
	for _, w := range m.Workloads {
		fmt.Fprintf(&b, "%-18s", w)
		for _, p := range m.Protocols {
			if tr := m.Attribs[w][p]; tr != nil {
				fmt.Fprintf(&b, " %13.1f%%", tr.UtilPct())
			} else {
				fmt.Fprintf(&b, " %14s", "-")
			}
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}

// offenderRow pairs a region's attribution with the workload it came
// from, so cross-workload rankings stay readable.
type offenderRow struct {
	workload string
	info     attrib.RegionInfo
}

// TopOffendersTable ranks the protocol's worst regions across all
// workloads by wasted plus invalidation-churned bytes, worst first.
func (m *Matrix) TopOffendersTable(p core.Protocol, n int) string {
	var rows []offenderRow
	for _, w := range m.Workloads {
		if tr := m.Attribs[w][p]; tr != nil {
			for _, info := range tr.TopOffenders(n) {
				rows = append(rows, offenderRow{w, info})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.info.Score != b.info.Score {
			return a.info.Score > b.info.Score
		}
		if a.info.Invalidations != b.info.Invalidations {
			return a.info.Invalidations > b.info.Invalidations
		}
		if a.workload != b.workload {
			return a.workload < b.workload
		}
		return a.info.Region < b.info.Region
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %8s %-12s %7s %9s %8s %7s %7s %8s %9s\n",
		"workload", "region", "pattern", "sharers", "fetched-w", "unused-w", "fills", "invals", "offender", "score-B")
	for _, r := range rows {
		offender := "-"
		if r.info.Offender >= 0 {
			offender = fmt.Sprintf("core%d", r.info.Offender)
		}
		fmt.Fprintf(&b, "%-18s %8d %-12s %7d %9d %8d %7d %7d %8s %9d\n",
			r.workload, r.info.Region, r.info.Pattern, r.info.Sharers,
			r.info.FetchedWords, r.info.UnusedWords, r.info.Fills,
			r.info.Invalidations, offender, r.info.Score)
	}
	return b.String()
}

// RenderAttribution renders one run's attribution report — the
// summary block plus the top-N offender table — for single-cell
// drivers (protozoa-sim -attrib).
func RenderAttribution(tr *attrib.Tracker, topN int) string {
	s := tr.Summarize()
	var b strings.Builder
	fmt.Fprintf(&b, "attribution: %d regions, %d fills\n", s.Regions, tr.Fills)
	fmt.Fprintf(&b, "  words fetched %d, used %d, unused %d (util %.1f%%, %d bytes wasted)\n",
		s.FetchedWords, s.UsedWords, s.UnusedWords, s.UtilPct, s.WastedBytes)
	fmt.Fprintf(&b, "  invalidations %d (%d words lost, %d from recalls), upgrades %d, probes %d\n",
		s.Invalidations, s.InvWordsLost, s.RecallInvalidations, s.Upgrades, s.ProbeMsgs)
	fmt.Fprintf(&b, "  patterns:")
	for pat := attrib.Pattern(0); pat < attrib.NumPatterns; pat++ {
		if s.Patterns[pat] > 0 {
			fmt.Fprintf(&b, " %s=%d", pat, s.Patterns[pat])
		}
	}
	fmt.Fprintf(&b, "\n")
	offenders := tr.TopOffenders(topN)
	if len(offenders) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "top offenders (wasted + invalidation-churned bytes):\n")
	fmt.Fprintf(&b, "  %8s %-12s %7s %9s %8s %7s %7s %8s %9s\n",
		"region", "pattern", "sharers", "fetched-w", "unused-w", "fills", "invals", "offender", "score-B")
	for _, r := range offenders {
		offender := "-"
		if r.Offender >= 0 {
			offender = fmt.Sprintf("core%d", r.Offender)
		}
		fmt.Fprintf(&b, "  %8d %-12s %7d %9d %8d %7d %7d %8s %9d\n",
			r.Region, r.Pattern, r.Sharers, r.FetchedWords, r.UnusedWords,
			r.Fills, r.Invalidations, offender, r.Score)
	}
	return b.String()
}
