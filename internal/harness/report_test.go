package harness

import (
	"strings"
	"testing"

	"protozoa/internal/core"
)

func TestRenderStatsContent(t *testing.T) {
	st, err := Run("histogram", core.ProtozoaMW, fast)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderStats("histogram", core.ProtozoaMW, st)
	for _, want := range []string{
		"workload histogram under Protozoa-MW",
		"instructions",
		"L1 hits/misses",
		"miss classes",
		"invalidations",
		"data traffic",
		"control traffic",
		"NACK=",
		"fill granularity",
		"dir O-state mix",
		"miss latency",
		"engine queue",
		"zero-delay hits",
		"energy (est.)",
		"per core",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderStats missing %q", want)
		}
	}
	// Per-core table has one row per core.
	if got := strings.Count(out, "\n"); got < 16 {
		t.Errorf("report only %d lines", got)
	}
}
