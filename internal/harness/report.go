package harness

import (
	"fmt"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/stats"
)

// RenderStats formats one run's measurements as a human-readable
// report (used by cmd/protozoa-sim and the quickstart example).
func RenderStats(workload string, p core.Protocol, s *stats.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workload %s under %s\n", workload, p)
	fmt.Fprintf(&b, "  instructions      %12d\n", s.Instructions)
	fmt.Fprintf(&b, "  accesses          %12d (%d loads, %d stores)\n", s.Accesses, s.Loads, s.Stores)
	fmt.Fprintf(&b, "  L1 hits/misses    %12d / %d (%.2f MPKI, %.2f%% miss rate)\n",
		s.L1Hits, s.L1Misses, s.MPKI(), s.MissRatePct())
	fmt.Fprintf(&b, "  miss classes      %12d cold, %d capacity, %d coherence, %d granularity\n",
		s.MissesCold, s.MissesCapacity, s.MissesCoherence, s.MissesGranularity)
	fmt.Fprintf(&b, "  upgrade misses    %12d\n", s.UpgradeMisses)
	fmt.Fprintf(&b, "  invalidations     %12d (%d INV probes)\n", s.Invalidations, s.InvMsgs)
	fmt.Fprintf(&b, "  evictions         %12d (%d writebacks)\n", s.Evictions, s.Writebacks)
	fmt.Fprintf(&b, "  data traffic      %12d B used, %d B unused (%.1f%% used)\n",
		s.UsedDataBytes, s.UnusedDataBytes, s.UsedPct())
	fmt.Fprintf(&b, "  control traffic   %12d B:", s.ControlTotal())
	for c := 0; c < stats.NumClasses; c++ {
		fmt.Fprintf(&b, " %s=%d", stats.Class(c), s.ControlBytes[c])
	}
	fmt.Fprintf(&b, "\n")
	fmt.Fprintf(&b, "  total traffic     %12d B\n", s.TrafficTotal())
	fmt.Fprintf(&b, "  network           %12d messages, %d flits, %d flit-hops\n",
		s.Messages, s.Flits, s.FlitHops)
	d := s.BlockDistBuckets()
	fmt.Fprintf(&b, "  fill granularity  1-2w %.1f%%  3-4w %.1f%%  5-6w %.1f%%  7-8w %.1f%%\n",
		d[0], d[1], d[2], d[3])
	one, plus, multi := s.OwnerMix()
	fmt.Fprintf(&b, "  dir O-state mix   1owner %.1f%%  1owner+sharers %.1f%%  >1owner %.1f%%\n",
		one, plus, multi)
	fmt.Fprintf(&b, "  miss latency      %12.1f cycles avg, p50 <= %d, p95 <= %d, max %d\n",
		s.AvgMissLatency(), s.MissLatencyP(50), s.MissLatencyP(95), s.MissLatencyMax)
	fmt.Fprintf(&b, "  execution         %12d cycles\n", s.ExecCycles)
	fmt.Fprintf(&b, "  engine queue      %12d high-water, %d zero-delay hits\n",
		s.EventQueueHighWater, s.ZeroDelayHits)
	fmt.Fprintf(&b, "  energy (est.)     %s\n", stats.DefaultEnergyModel().Estimate(s))
	if len(s.PerCore) > 0 {
		fmt.Fprintf(&b, "  per core          %6s %10s %10s %10s %8s\n",
			"core", "accesses", "hits", "misses", "invals")
		for c := range s.PerCore {
			cs := &s.PerCore[c]
			fmt.Fprintf(&b, "                    %6d %10d %10d %10d %8d\n",
				c, cs.Accesses, cs.Hits, cs.Misses, cs.Invalidations)
		}
	}
	return b.String()
}
