package harness

import (
	"strings"
	"testing"

	"protozoa/internal/obs"
)

// TestPhaseDecompositionReconciles pins the report's headline
// invariant through the full Collect path: for every protocol, the
// merged breakdown's miss count and total cycles equal the stats-side
// counters, so the rendered phase-sum column equals AvgMissLatency.
func TestPhaseDecompositionReconciles(t *testing.T) {
	m := collect(t, "histogram", "swaptions")
	for _, p := range m.Protocols {
		lat := m.mergedBreakdown(p)
		var misses, latSum uint64
		for _, w := range m.Workloads {
			st := m.Get(w, p)
			misses += st.L1Misses
			latSum += st.MissLatencySum
			if b := m.Breakdowns[w][p]; b == nil {
				t.Fatalf("%s/%s: Collect did not capture a breakdown", w, p)
			}
		}
		if lat.Count != misses {
			t.Errorf("%s: breakdown count %d, stats misses %d", p, lat.Count, misses)
		}
		if lat.TotalSum != latSum {
			t.Errorf("%s: breakdown total %d, stats latency sum %d", p, lat.TotalSum, latSum)
		}
		var phases uint64
		for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
			phases += lat.PhaseSum[ph]
		}
		if phases != lat.TotalSum {
			t.Errorf("%s: phases sum to %d, total %d", p, phases, lat.TotalSum)
		}
	}

	table := m.PhaseDecomposition()
	for _, p := range m.Protocols {
		if !strings.Contains(table, p.String()) {
			t.Errorf("decomposition table missing protocol %s:\n%s", p, table)
		}
	}
	for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
		if !strings.Contains(table, ph.String()) {
			t.Errorf("decomposition table missing phase %s:\n%s", ph, table)
		}
	}
}
