package harness

import (
	"errors"
	"fmt"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/resultcache"
	"protozoa/internal/runner"
	"protozoa/internal/workloads"
)

// BlockSizes is the Table 1 sweep: conventional MESI with fixed blocks
// of 16 to 128 bytes (block = region = coherence granularity).
var BlockSizes = []int{16, 32, 64, 128}

// Table1Cell holds one workload x block-size measurement.
type Table1Cell struct {
	MPKI    float64
	Inv     uint64
	UsedPct float64
}

// Table1Result is the full sweep.
type Table1Result struct {
	Workloads []string
	Cells     map[string]map[int]Table1Cell // workload -> block size
}

// CollectTable1 sweeps MESI across the four block sizes, fanning the
// workload x block-size cells out over Options.Jobs workers.
func CollectTable1(o Options) (*Table1Result, error) {
	res := &Table1Result{
		Workloads: o.workloadList(),
		Cells:     make(map[string]map[int]Table1Cell),
	}
	var cells []runner.Cell
	for _, w := range res.Workloads {
		for _, bs := range BlockSizes {
			cells = append(cells, runner.Cell{
				Label:    fmt.Sprintf("table1 %s@%dB", w, bs),
				Workload: w,
				Protocol: core.MESI,
				Region:   bs,
				Key:      table1Key(w, bs, o),
				Build:    func() (*core.System, error) { return buildMESIWithBlock(w, bs, o) },
			})
		}
	}
	results, _ := o.pool().Run(cells)
	var errs []error
	i := 0
	for _, w := range res.Workloads {
		res.Cells[w] = make(map[int]Table1Cell)
		for _, bs := range BlockSizes {
			r := results[i]
			i++
			if r.Err != nil {
				errs = append(errs, r.Err)
				continue
			}
			st := r.Stats
			res.Cells[w][bs] = Table1Cell{MPKI: st.MPKI(), Inv: st.Invalidations, UsedPct: st.UsedPct()}
		}
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("harness: %w", errors.Join(errs...))
	}
	return res, nil
}

// table1Config is cellConfig with the Table 1 twist: the region size
// is the fixed MESI block size under sweep.
func table1Config(blockBytes int, o Options) (core.Config, error) {
	cfg, err := cellConfig(core.MESI, o)
	if err != nil {
		return core.Config{}, err
	}
	cfg.RegionBytes = blockBytes
	cfg.Workers = 0 // Table 1 cells always use the sequential engine
	return cfg, nil
}

func table1Key(workload string, blockBytes int, o Options) resultcache.Key {
	spec, err := workloads.Get(workload)
	if err != nil {
		return resultcache.Key{}
	}
	cfg, err := table1Config(blockBytes, o)
	if err != nil {
		return resultcache.Key{}
	}
	return runner.CellSpec{
		Config:   cfg,
		Workload: spec.Name,
		Scale:    o.Scale,
		Seed:     o.TraceSeed,
	}.Key()
}

func buildMESIWithBlock(workload string, blockBytes int, o Options) (*core.System, error) {
	spec, err := workloads.Get(workload)
	if err != nil {
		return nil, err
	}
	cfg, err := table1Config(blockBytes, o)
	if err != nil {
		return nil, err
	}
	return core.NewSystem(cfg, spec.StreamsSeeded(o.cores(), o.Scale, o.TraceSeed))
}

// trend classifies a metric change with the paper's Table 1 notation:
// "~" within 10%, single arrow 10-33%, double 33-50%, triple over 50%.
func trend(from, to float64) string {
	if from == 0 {
		if to == 0 {
			return "~"
		}
		return "^^"
	}
	r := to / from
	switch {
	case r >= 1.50:
		return "^^^"
	case r >= 1.33:
		return "^^"
	case r >= 1.10:
		return "^"
	case r > 0.90:
		return "~"
	case r > 0.67:
		return "v"
	case r > 0.50:
		return "vv"
	default:
		return "vvv"
	}
}

// Optimal picks the block size minimizing MPKI; when the best two are
// within 5% it reports "*" (no application-wide optimum), as the paper
// does for cholesky, kmeans, etc.
func (r *Table1Result) Optimal(w string) string {
	best, second := 0, 0
	bestV, secondV := 0.0, 0.0
	for _, bs := range BlockSizes {
		v := r.Cells[w][bs].MPKI
		if best == 0 || v < bestV {
			second, secondV = best, bestV
			best, bestV = bs, v
		} else if second == 0 || v < secondV {
			second, secondV = bs, v
		}
	}
	_ = second
	if bestV == 0 {
		return "*"
	}
	if secondV > 0 && (secondV-bestV)/bestV < 0.05 {
		return "*"
	}
	return fmt.Sprintf("%d", best)
}

// Render prints the sweep in the paper's Table 1 format: per-workload
// MPKI and INV trends between adjacent block sizes, the optimal size,
// and the used-data percentage at 64 bytes.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: MESI behaviour vs fixed block size (trends: ~ <10%%, ^/v 10-33%%, ^^/vv 33-50%%, ^^^/vvv >50%%)\n")
	fmt.Fprintf(&b, "%-18s %-10s %-10s %-10s %-8s %-7s\n",
		"app", "16->32", "32->64", "64->128", "optimal", "used%@64")
	for _, w := range r.Workloads {
		fmt.Fprintf(&b, "%-18s", w)
		for i := 0; i+1 < len(BlockSizes); i++ {
			a, c := r.Cells[w][BlockSizes[i]], r.Cells[w][BlockSizes[i+1]]
			fmt.Fprintf(&b, " %-4s %-4s ", trend(a.MPKI, c.MPKI), trend(float64(a.Inv), float64(c.Inv)))
		}
		fmt.Fprintf(&b, " %-7s %6.0f%%\n", r.Optimal(w), r.Cells[w][64].UsedPct)
	}
	fmt.Fprintf(&b, "(per pair: MPKI trend then INV trend)\n")
	return b.String()
}
