package harness

import (
	"fmt"
	"math"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/stats"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }

// shortName compresses workload names to the paper's column labels.
func shortName(w string) string {
	if len(w) > 8 {
		return w[:7] + "."
	}
	return w
}

func protoShort(p core.Protocol) string {
	switch p {
	case core.MESI:
		return "MESI"
	case core.ProtozoaSW:
		return "SW"
	case core.ProtozoaSWMR:
		return "SW+MR"
	case core.ProtozoaMW:
		return "MW"
	}
	return p.String()
}

// Fig9Traffic renders the Figure 9 breakdown: bytes sent/received at
// the L1s split into Used DATA, Unused DATA, and Control, four bars
// per workload, normalized to the MESI total.
func (m *Matrix) Fig9Traffic() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: L1 traffic breakdown (%% of MESI total traffic)\n")
	fmt.Fprintf(&b, "%-9s %-6s %8s %8s %8s %8s\n", "app", "proto", "used", "unused", "ctrl", "total")
	for _, w := range m.Workloads {
		base := float64(m.Get(w, core.MESI).TrafficTotal())
		if base == 0 {
			base = 1
		}
		for _, p := range m.Protocols {
			s := m.Get(w, p)
			pc := func(v uint64) float64 { return 100 * float64(v) / base }
			fmt.Fprintf(&b, "%-9s %-6s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
				shortName(w), protoShort(p),
				pc(s.UsedDataBytes), pc(s.UnusedDataBytes), pc(s.ControlTotal()), pc(s.TrafficTotal()))
		}
	}
	for _, p := range []core.Protocol{core.ProtozoaSW, core.ProtozoaSWMR, core.ProtozoaMW} {
		r := m.GeoMeanRatio(p, TrafficBytes)
		fmt.Fprintf(&b, "geomean traffic %-14s: %5.1f%% of MESI (%.0f%% reduction)\n",
			protoShort(p), 100*r, 100*(1-r))
	}
	return b.String()
}

// Fig10Control renders the Figure 10 control-message breakdown by
// class, normalized to the MESI total traffic of each workload.
func (m *Matrix) Fig10Control() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: control bytes by class (%% of MESI total traffic)\n")
	fmt.Fprintf(&b, "%-9s %-6s", "app", "proto")
	for c := 0; c < stats.NumClasses; c++ {
		fmt.Fprintf(&b, " %7s", stats.Class(c))
	}
	fmt.Fprintf(&b, " %7s\n", "sum")
	for _, w := range m.Workloads {
		base := float64(m.Get(w, core.MESI).TrafficTotal())
		if base == 0 {
			base = 1
		}
		for _, p := range m.Protocols {
			s := m.Get(w, p)
			fmt.Fprintf(&b, "%-9s %-6s", shortName(w), protoShort(p))
			for c := 0; c < stats.NumClasses; c++ {
				fmt.Fprintf(&b, " %6.2f%%", 100*float64(s.ControlBytes[c])/base)
			}
			fmt.Fprintf(&b, " %6.2f%%\n", 100*float64(s.ControlTotal())/base)
		}
	}
	return b.String()
}

// Fig11Owners renders the Figure 11 directory owner-state occupancy
// under Protozoa-MW.
func (m *Matrix) Fig11Owners() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: directory O-state access mix under Protozoa-MW\n")
	fmt.Fprintf(&b, "%-18s %12s %16s %10s\n", "app", "1owner-only", "1owner+sharers", ">1owner")
	for _, w := range m.Workloads {
		a, s, mu := m.Get(w, core.ProtozoaMW).OwnerMix()
		fmt.Fprintf(&b, "%-18s %11.1f%% %15.1f%% %9.1f%%\n", w, a, s, mu)
	}
	return b.String()
}

// Fig12BlockDist renders the Figure 12 block-granularity distribution
// of L1 fills under Protozoa-MW.
func (m *Matrix) Fig12BlockDist() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: L1 block size distribution under Protozoa-MW\n")
	fmt.Fprintf(&b, "%-18s %9s %9s %9s %9s\n", "app", "1-2w", "3-4w", "5-6w", "7-8w")
	for _, w := range m.Workloads {
		d := m.Get(w, core.ProtozoaMW).BlockDistBuckets()
		fmt.Fprintf(&b, "%-18s %8.1f%% %8.1f%% %8.1f%% %8.1f%%\n", w, d[0], d[1], d[2], d[3])
	}
	return b.String()
}

// FigMissClass renders the miss-classification breakdown (a beyond-
// the-paper analysis figure): the fraction of each protocol's misses
// that are cold, capacity, coherence, and granularity. It makes the
// mechanism of every headline result visible — Protozoa-MW removes
// the coherence column on false-sharing apps, Protozoa-SW trades
// capacity misses for granularity misses on sparse apps.
func (m *Matrix) FigMissClass() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Miss classification (%% of each cell's misses)\n")
	fmt.Fprintf(&b, "%-9s %-6s %8s %9s %10s %12s\n", "app", "proto", "cold", "capacity", "coherence", "granularity")
	for _, w := range m.Workloads {
		for _, p := range m.Protocols {
			s := m.Get(w, p)
			total := float64(s.L1Misses)
			if total == 0 {
				total = 1
			}
			pc := func(v uint64) float64 { return 100 * float64(v) / total }
			fmt.Fprintf(&b, "%-9s %-6s %7.1f%% %8.1f%% %9.1f%% %11.1f%%\n",
				shortName(w), protoShort(p),
				pc(s.MissesCold), pc(s.MissesCapacity), pc(s.MissesCoherence), pc(s.MissesGranularity))
		}
	}
	return b.String()
}

// Fig13MPKI renders the Figure 13 miss-rate comparison.
func (m *Matrix) Fig13MPKI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 13: miss rate (MPKI)\n")
	fmt.Fprintf(&b, "%-18s %8s %8s %8s %8s\n", "app", "MESI", "SW", "SW+MR", "MW")
	for _, w := range m.Workloads {
		fmt.Fprintf(&b, "%-18s", w)
		for _, p := range m.Protocols {
			fmt.Fprintf(&b, " %8.2f", m.Get(w, p).MPKI())
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, p := range []core.Protocol{core.ProtozoaSW, core.ProtozoaSWMR, core.ProtozoaMW} {
		r := m.GeoMeanRatio(p, func(s *stats.Stats) float64 { return float64(s.L1Misses) })
		fmt.Fprintf(&b, "geomean misses %-14s: %5.1f%% of MESI (%.0f%% reduction)\n",
			protoShort(p), 100*r, 100*(1-r))
	}
	return b.String()
}

// Fig14Exec renders the Figure 14 execution-time comparison,
// normalized to MESI; like the paper, it flags workloads whose
// change exceeds 3%.
func (m *Matrix) Fig14Exec() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 14: execution time relative to MESI\n")
	fmt.Fprintf(&b, "%-18s %8s %8s %8s %9s\n", "app", "SW", "SW+MR", "MW", ">3%-chg")
	for _, w := range m.Workloads {
		base := float64(m.Get(w, core.MESI).ExecCycles)
		if base == 0 {
			base = 1
		}
		vals := make([]float64, 0, 3)
		fmt.Fprintf(&b, "%-18s", w)
		for _, p := range []core.Protocol{core.ProtozoaSW, core.ProtozoaSWMR, core.ProtozoaMW} {
			r := float64(m.Get(w, p).ExecCycles) / base
			vals = append(vals, r)
			fmt.Fprintf(&b, " %8.3f", r)
		}
		flag := ""
		for _, v := range vals {
			if v < 0.97 || v > 1.03 {
				flag = "*"
			}
		}
		fmt.Fprintf(&b, " %9s\n", flag)
	}
	r := m.GeoMeanRatio(core.ProtozoaMW, ExecCycles)
	fmt.Fprintf(&b, "geomean exec time MW: %.3f of MESI\n", r)
	return b.String()
}

// Fig15FlitHops renders the Figure 15 interconnect dynamic energy
// proxy: flit-hops normalized to MESI.
func (m *Matrix) Fig15FlitHops() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 15: interconnect traffic (flit-hops) relative to MESI\n")
	fmt.Fprintf(&b, "%-18s %8s %8s %8s\n", "app", "SW", "SW+MR", "MW")
	for _, w := range m.Workloads {
		base := float64(m.Get(w, core.MESI).FlitHops)
		if base == 0 {
			base = 1
		}
		fmt.Fprintf(&b, "%-18s", w)
		for _, p := range []core.Protocol{core.ProtozoaSW, core.ProtozoaSWMR, core.ProtozoaMW} {
			fmt.Fprintf(&b, " %8.3f", float64(m.Get(w, p).FlitHops)/base)
		}
		fmt.Fprintf(&b, "\n")
	}
	for _, p := range []core.Protocol{core.ProtozoaSW, core.ProtozoaSWMR, core.ProtozoaMW} {
		r := m.GeoMeanRatio(p, FlitHops)
		fmt.Fprintf(&b, "geomean flit-hops %-14s: %5.1f%% of MESI (%.0f%% reduction)\n",
			protoShort(p), 100*r, 100*(1-r))
	}
	return b.String()
}
