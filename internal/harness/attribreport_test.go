package harness

import (
	"strings"
	"testing"

	"protozoa/internal/core"
	"protozoa/internal/obs/attrib"
)

func collectAttribMatrix(t *testing.T, workloads []string) *Matrix {
	t.Helper()
	m, err := Collect(Options{Cores: 4, Scale: 1, Workloads: workloads})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAdaptiveUtilizationBeatsMESI is the ISSUE's acceptance check:
// on a false-sharing-heavy and a sparse-access workload, every
// adaptive protocol's fill utilization strictly exceeds the MESI
// baseline — fetching only predicted-useful words must waste less.
func TestAdaptiveUtilizationBeatsMESI(t *testing.T) {
	m := collectAttribMatrix(t, []string{"linear-regression", "blackscholes"})
	for _, w := range m.Workloads {
		base := m.Attribs[w][core.MESI]
		if base == nil {
			t.Fatalf("%s: no MESI tracker", w)
		}
		if err := base.Reconcile(); err != nil {
			t.Fatalf("%s/MESI: %v", w, err)
		}
		for _, p := range []core.Protocol{core.ProtozoaSW, core.ProtozoaSWMR, core.ProtozoaMW} {
			tr := m.Attribs[w][p]
			if tr == nil {
				t.Fatalf("%s/%s: no tracker", w, p)
			}
			if err := tr.Reconcile(); err != nil {
				t.Errorf("%s/%s: %v", w, p, err)
			}
			if tr.UtilPct() <= base.UtilPct() {
				t.Errorf("%s: %s utilization %.1f%% not above MESI %.1f%%",
					w, p, tr.UtilPct(), base.UtilPct())
			}
		}
	}
}

// TestAttributionTablesRender sanity-checks the three report renderers
// on a small matrix: every protocol row appears, the utilization grid
// covers every workload, and the offender table is non-empty for MESI
// (whose fixed-granularity fills always waste something here).
func TestAttributionTablesRender(t *testing.T) {
	m := collectAttribMatrix(t, []string{"histogram"})

	summary := m.AttributionSummary()
	for _, p := range m.Protocols {
		if !strings.Contains(summary, p.String()) {
			t.Errorf("AttributionSummary missing %s:\n%s", p, summary)
		}
	}
	for _, col := range []string{"util", "wasted-B", "false-shared"} {
		if !strings.Contains(summary, col) {
			t.Errorf("AttributionSummary missing column %q:\n%s", col, summary)
		}
	}

	grid := m.UtilizationTable()
	if !strings.Contains(grid, "histogram") {
		t.Errorf("UtilizationTable missing workload row:\n%s", grid)
	}

	offenders := m.TopOffendersTable(core.MESI, 5)
	lines := strings.Count(strings.TrimSpace(offenders), "\n")
	if lines < 1 || lines > 5 {
		t.Errorf("TopOffendersTable want 1..5 data rows, got %d:\n%s", lines, offenders)
	}
	if !strings.Contains(offenders, "histogram") {
		t.Errorf("TopOffendersTable rows not labelled by workload:\n%s", offenders)
	}
}

// TestRenderAttributionSingleRun covers the single-cell renderer the
// sim driver uses for -attrib.
func TestRenderAttributionSingleRun(t *testing.T) {
	tr := attrib.New(2)
	tr.Access(0, 7, 0, true)
	tr.Fill(0, 7, 8)
	tr.Death(0, 7, 1, 8)
	out := RenderAttribution(tr, 5)
	for _, want := range []string{"util 12.5%", "top offenders", "private"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderAttribution missing %q:\n%s", want, out)
		}
	}
}
