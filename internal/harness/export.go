package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"protozoa/internal/core"
	"protozoa/internal/stats"
)

// ExportCSV writes the matrix in long format — one row per (workload,
// protocol, metric) — for external plotting tools. The metrics cover
// every figure: traffic components, control classes, MPKI, misses,
// invalidations, flit-hops, execution cycles, block-size buckets, and
// the directory owner mix.
func (m *Matrix) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "protocol", "metric", "value"}); err != nil {
		return err
	}
	emit := func(wl string, p core.Protocol, metric string, v float64) {
		cw.Write([]string{wl, p.String(), metric, strconv.FormatFloat(v, 'g', -1, 64)})
	}
	for _, wl := range m.Workloads {
		for _, p := range m.Protocols {
			s := m.Get(wl, p)
			emit(wl, p, "used_bytes", float64(s.UsedDataBytes))
			emit(wl, p, "unused_bytes", float64(s.UnusedDataBytes))
			emit(wl, p, "control_bytes", float64(s.ControlTotal()))
			for c := 0; c < stats.NumClasses; c++ {
				emit(wl, p, "control_"+stats.Class(c).String(), float64(s.ControlBytes[c]))
			}
			emit(wl, p, "mpki", s.MPKI())
			emit(wl, p, "misses", float64(s.L1Misses))
			emit(wl, p, "misses_cold", float64(s.MissesCold))
			emit(wl, p, "misses_capacity", float64(s.MissesCapacity))
			emit(wl, p, "misses_coherence", float64(s.MissesCoherence))
			emit(wl, p, "misses_granularity", float64(s.MissesGranularity))
			emit(wl, p, "invalidations", float64(s.Invalidations))
			emit(wl, p, "flit_hops", float64(s.FlitHops))
			emit(wl, p, "exec_cycles", float64(s.ExecCycles))
			d := s.BlockDistBuckets()
			for i, label := range []string{"1_2w", "3_4w", "5_6w", "7_8w"} {
				emit(wl, p, "blocks_"+label, d[i])
			}
			one, plus, multi := s.OwnerMix()
			emit(wl, p, "owner_one", one)
			emit(wl, p, "owner_plus_sharers", plus)
			emit(wl, p, "owner_multi", multi)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ExportCSV writes the Table 1 sweep in long format: one row per
// (workload, block size, metric).
func (r *Table1Result) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"workload", "block_bytes", "metric", "value"}); err != nil {
		return err
	}
	for _, wl := range r.Workloads {
		for _, bs := range BlockSizes {
			c := r.Cells[wl][bs]
			b := fmt.Sprintf("%d", bs)
			cw.Write([]string{wl, b, "mpki", strconv.FormatFloat(c.MPKI, 'g', -1, 64)})
			cw.Write([]string{wl, b, "invalidations", strconv.FormatUint(c.Inv, 10)})
			cw.Write([]string{wl, b, "used_pct", strconv.FormatFloat(c.UsedPct, 'g', -1, 64)})
		}
	}
	cw.Flush()
	return cw.Error()
}
