package harness

import (
	"fmt"
	"strings"

	"protozoa/internal/core"
)

// bar renders a horizontal bar proportional to v/max using eighth
// block characters, so adjacent protocol bars are comparable at a
// glance in a terminal.
func bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return ""
	}
	eighths := int(v/max*float64(width)*8 + 0.5)
	if eighths > width*8 {
		eighths = width * 8
	}
	full := eighths / 8
	rem := eighths % 8
	partials := []string{"", "▏", "▎", "▍", "▌", "▋", "▊", "▉"}
	return strings.Repeat("█", full) + partials[rem]
}

// chart renders one bar-chart block: per workload, one bar per
// protocol of metric(stats), normalized to the row group's maximum.
func (m *Matrix) chart(title, unit string, metric func(w string, p core.Protocol) float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	const width = 40
	for _, w := range m.Workloads {
		max := 0.0
		for _, p := range m.Protocols {
			if v := metric(w, p); v > max {
				max = v
			}
		}
		fmt.Fprintf(&b, "%s\n", w)
		for _, p := range m.Protocols {
			v := metric(w, p)
			fmt.Fprintf(&b, "  %-6s %10.2f %s %s\n", protoShort(p), v, unit, bar(v, max, width))
		}
	}
	return b.String()
}

// ChartMPKI renders Figure 13 as terminal bars.
func (m *Matrix) ChartMPKI() string {
	return m.chart("Figure 13 (chart): miss rate", "MPKI", func(w string, p core.Protocol) float64 {
		return m.Get(w, p).MPKI()
	})
}

// ChartTraffic renders Figure 9's totals as terminal bars.
func (m *Matrix) ChartTraffic() string {
	return m.chart("Figure 9 (chart): total L1 traffic", "KB", func(w string, p core.Protocol) float64 {
		return float64(m.Get(w, p).TrafficTotal()) / 1024
	})
}

// ChartFlitHops renders Figure 15 as terminal bars.
func (m *Matrix) ChartFlitHops() string {
	return m.chart("Figure 15 (chart): flit-hops", "hops", func(w string, p core.Protocol) float64 {
		return float64(m.Get(w, p).FlitHops)
	})
}
