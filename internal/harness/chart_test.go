package harness

import (
	"strings"
	"testing"
)

func TestBarScaling(t *testing.T) {
	if bar(0, 100, 10) != "" {
		t.Errorf("zero bar = %q", bar(0, 100, 10))
	}
	full := bar(100, 100, 10)
	if strings.Count(full, "█") != 10 {
		t.Errorf("full bar = %q", full)
	}
	half := bar(50, 100, 10)
	if strings.Count(half, "█") != 5 {
		t.Errorf("half bar = %q", half)
	}
	// Overflow clamps; degenerate max yields empty.
	if strings.Count(bar(200, 100, 10), "█") != 10 {
		t.Error("overflow bar not clamped")
	}
	if bar(5, 0, 10) != "" {
		t.Error("zero max not empty")
	}
}

func TestBarMonotonic(t *testing.T) {
	prev := -1
	for v := 0; v <= 100; v += 5 {
		n := len(bar(float64(v), 100, 20))
		if n < prev {
			t.Fatalf("bar length decreased at %d", v)
		}
		prev = n
	}
}

func TestChartsRender(t *testing.T) {
	m := collect(t, "swaptions", "histogram")
	for name, out := range map[string]string{
		"mpki":    m.ChartMPKI(),
		"traffic": m.ChartTraffic(),
		"flits":   m.ChartFlitHops(),
	} {
		if !strings.Contains(out, "histogram") || !strings.Contains(out, "MESI") {
			t.Errorf("%s chart incomplete:\n%s", name, out)
		}
		if !strings.Contains(out, "█") {
			t.Errorf("%s chart has no bars", name)
		}
	}
}
