package harness

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestMatrixExportCSV(t *testing.T) {
	m := collect(t, "swaptions")
	var b strings.Builder
	if err := m.ExportCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("no data rows")
	}
	header := strings.Join(rows[0], ",")
	if header != "workload,protocol,metric,value" {
		t.Errorf("header = %q", header)
	}
	// 4 protocols x at least 15 metrics for the single workload.
	if len(rows)-1 < 4*15 {
		t.Errorf("rows = %d, want >= 60", len(rows)-1)
	}
	seen := map[string]bool{}
	for _, r := range rows[1:] {
		if len(r) != 4 {
			t.Fatalf("bad row %v", r)
		}
		if r[0] != "swaptions" {
			t.Fatalf("unexpected workload %q", r[0])
		}
		seen[r[2]] = true
	}
	for _, metric := range []string{"used_bytes", "mpki", "flit_hops", "control_NACK", "blocks_7_8w"} {
		if !seen[metric] {
			t.Errorf("metric %q missing", metric)
		}
	}
}

func TestTable1ExportCSV(t *testing.T) {
	o := fast
	o.Workloads = []string{"word-count"}
	res, err := CollectTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := res.ExportCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// Header + 4 block sizes x 3 metrics.
	if len(rows) != 1+4*3 {
		t.Errorf("rows = %d, want 13", len(rows))
	}
}
