package harness

import (
	"strings"
	"testing"
)

func TestGenerateReport(t *testing.T) {
	var b strings.Builder
	o := Options{Cores: 4, Scale: 1, Workloads: []string{"swaptions", "histogram"}}
	if err := GenerateReport(o, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Protozoa reproduction report",
		"Protocol verification",
		"quiescent scans: OK",
		"Section 2: sharing and locality profile",
		"Table 1: MESI vs fixed block size",
		"Figure 9: traffic breakdown",
		"Figure 15: interconnect energy",
		"Headline geomeans vs MESI",
		"histogram",
		"swaptions",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every protocol verified.
	for _, p := range []string{"MESI", "Protozoa-SW", "Protozoa-SW+MR", "Protozoa-MW"} {
		if !strings.Contains(out, p) {
			t.Errorf("report missing protocol %s", p)
		}
	}
}

func TestVerifyProtocolRejectsBadCores(t *testing.T) {
	if _, _, err := verifyProtocol(0, 7); err == nil {
		t.Error("bad core count accepted")
	}
}
