package harness

// These tests assert the *shapes* of the paper's results on a reduced
// 4-core configuration: who wins, by roughly what factor, and where
// the crossovers fall. Absolute numbers differ from the paper (its
// substrate was a 16-core GEMS model over real binaries); the relative
// behaviour is what the reproduction must preserve.

import (
	"strings"
	"testing"

	"protozoa/internal/core"
)

var fast = Options{Cores: 4, Scale: 1}

func collect(t *testing.T, names ...string) *Matrix {
	t.Helper()
	o := fast
	o.Workloads = names
	m, err := Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunUnknownWorkload(t *testing.T) {
	if _, err := Run("nope", core.MESI, fast); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunBadCoreCount(t *testing.T) {
	o := fast
	o.Cores = 7
	if _, err := Run("fft", core.MESI, o); err == nil {
		t.Error("unsupported core count accepted")
	}
}

func TestLinearRegressionHeadlineResult(t *testing.T) {
	// The paper's headline: Protozoa-MW eliminates the false sharing
	// that dominates linear-regression — up to 99% miss reduction and a
	// 2.2x speedup. At our scale, demand far better than 3x fewer
	// misses, >30% faster, and >3x fewer flit-hops.
	m := collect(t, "linear-regression")
	mesi := m.Get("linear-regression", core.MESI)
	mw := m.Get("linear-regression", core.ProtozoaMW)
	if mw.L1Misses*3 > mesi.L1Misses {
		t.Errorf("MW misses %d not << MESI %d", mw.L1Misses, mesi.L1Misses)
	}
	if float64(mw.ExecCycles) > 0.7*float64(mesi.ExecCycles) {
		t.Errorf("MW cycles %d not well below MESI %d", mw.ExecCycles, mesi.ExecCycles)
	}
	if mw.FlitHops*3 > mesi.FlitHops {
		t.Errorf("MW flit-hops %d not << MESI %d", mw.FlitHops, mesi.FlitHops)
	}
	// SW+MR sits between SW and MW (single writer still ping-pongs).
	swmr := m.Get("linear-regression", core.ProtozoaSWMR)
	if !(mw.L1Misses < swmr.L1Misses) {
		t.Errorf("MW misses %d not below SW+MR %d", mw.L1Misses, swmr.L1Misses)
	}
}

func TestLinearRegressionTrafficOrdering(t *testing.T) {
	// Traffic: MESI > SW > SW+MR > MW on the false-sharing workload.
	m := collect(t, "linear-regression")
	get := func(p core.Protocol) uint64 { return m.Get("linear-regression", p).TrafficTotal() }
	if !(get(core.MESI) > get(core.ProtozoaSW) &&
		get(core.ProtozoaSW) > get(core.ProtozoaSWMR) &&
		get(core.ProtozoaSWMR) > get(core.ProtozoaMW)) {
		t.Errorf("traffic ordering broken: MESI=%d SW=%d SW+MR=%d MW=%d",
			get(core.MESI), get(core.ProtozoaSW), get(core.ProtozoaSWMR), get(core.ProtozoaMW))
	}
}

func TestCannealUnusedDataShape(t *testing.T) {
	// canneal is the paper's worst used-data case under MESI (~16%);
	// Protozoa-SW eliminates most unused data.
	m := collect(t, "canneal")
	mesi := m.Get("canneal", core.MESI)
	sw := m.Get("canneal", core.ProtozoaSW)
	if mesi.UsedPct() > 30 {
		t.Errorf("canneal MESI used%% = %.1f, want low (< 30)", mesi.UsedPct())
	}
	if sw.UsedPct() < 1.5*mesi.UsedPct() {
		t.Errorf("SW used%% = %.1f not well above MESI %.1f", sw.UsedPct(), mesi.UsedPct())
	}
	if sw.UnusedDataBytes*2 > mesi.UnusedDataBytes {
		t.Errorf("SW unused %d not well below MESI %d", sw.UnusedDataBytes, mesi.UnusedDataBytes)
	}
}

func TestMatrixMultiplyNeutralShape(t *testing.T) {
	// Embarrassingly parallel + full locality: everything behaves like
	// MESI and nearly all data is used.
	m := collect(t, "matrix-multiply")
	mesi := m.Get("matrix-multiply", core.MESI)
	if mesi.UsedPct() < 90 {
		t.Errorf("matrix-multiply used%% = %.1f, want ~99", mesi.UsedPct())
	}
	for _, p := range core.AllProtocols {
		s := m.Get("matrix-multiply", p)
		if s.L1Misses != mesi.L1Misses {
			t.Errorf("%v misses %d != MESI %d on private workload", p, s.L1Misses, mesi.L1Misses)
		}
	}
	// No directory O-state churn (paper: no owned-state lookups).
	mw := m.Get("matrix-multiply", core.ProtozoaMW)
	if n := mw.DirOwnerOneOnly + mw.DirOwnerPlusSharers + mw.DirMultiOwner; n != 0 {
		t.Errorf("matrix-multiply had %d owned-state lookups, want 0", n)
	}
}

func TestHistogramFalseSharingShape(t *testing.T) {
	// The paper: histogram's miss rate drops 71% under MW while SW
	// cannot eliminate them (it may even add misses by underfetching).
	m := collect(t, "histogram")
	mesi := m.Get("histogram", core.MESI)
	sw := m.Get("histogram", core.ProtozoaSW)
	mw := m.Get("histogram", core.ProtozoaMW)
	if float64(mw.L1Misses) > 0.5*float64(mesi.L1Misses) {
		t.Errorf("MW misses %d not < 50%% of MESI %d", mw.L1Misses, mesi.L1Misses)
	}
	if sw.L1Misses < mw.L1Misses {
		t.Errorf("SW misses %d below MW %d; SW should not fix false sharing", sw.L1Misses, mw.L1Misses)
	}
	if mw.TrafficTotal() >= sw.TrafficTotal() {
		t.Errorf("MW traffic %d not below SW %d", mw.TrafficTotal(), sw.TrafficTotal())
	}
}

func TestStringMatchMultiOwner(t *testing.T) {
	// With 16 cores, adjacent flag words belong to different writers:
	// the paper reports >90% of O-state lookups finding >1 owner.
	o := Options{Cores: 16, Scale: 1, Workloads: []string{"string-match"}}
	st, err := Run("string-match", core.ProtozoaMW, o)
	if err != nil {
		t.Fatal(err)
	}
	_, _, multi := st.OwnerMix()
	if multi < 50 {
		t.Errorf("string-match >1-owner lookups = %.1f%%, want majority", multi)
	}
}

func TestSwaptionsLowMissRate(t *testing.T) {
	m := collect(t, "swaptions")
	if mpki := m.Get("swaptions", core.MESI).MPKI(); mpki > 30 {
		t.Errorf("swaptions MESI MPKI = %.1f, want small working set (low)", mpki)
	}
}

func TestFigureRenderings(t *testing.T) {
	m := collect(t, "linear-regression", "canneal")
	for name, out := range map[string]string{
		"Fig9":  m.Fig9Traffic(),
		"Fig10": m.Fig10Control(),
		"Fig11": m.Fig11Owners(),
		"Fig12": m.Fig12BlockDist(),
		"Fig13": m.Fig13MPKI(),
		"Fig14": m.Fig14Exec(),
		"Fig15": m.Fig15FlitHops(),
	} {
		if len(out) == 0 {
			t.Errorf("%s: empty rendering", name)
			continue
		}
		if !strings.Contains(out, "canneal") {
			t.Errorf("%s: missing workload row:\n%s", name, out)
		}
	}
	if !strings.Contains(m.Fig10Control(), "NACK") {
		t.Error("Fig10 missing NACK column")
	}
	if !strings.Contains(m.Fig12BlockDist(), "7-8w") {
		t.Error("Fig12 missing bucket header")
	}
}

func TestFigMissClassRendering(t *testing.T) {
	m := collect(t, "linear-regression")
	out := m.FigMissClass()
	for _, want := range []string{"coherence", "granularity", "linear-."} {
		if !strings.Contains(out, want) {
			t.Errorf("FigMissClass missing %q:\n%s", want, out)
		}
	}
	// MESI's false-sharing misses must show up as coherence; MW's
	// coherence share must be far smaller in absolute terms.
	mesi := m.Get("linear-regression", core.MESI)
	mw := m.Get("linear-regression", core.ProtozoaMW)
	if mesi.MissesCoherence < mesi.L1Misses/2 {
		t.Errorf("MESI coherence misses %d of %d, want majority", mesi.MissesCoherence, mesi.L1Misses)
	}
	if mw.MissesCoherence*5 > mesi.MissesCoherence {
		t.Errorf("MW coherence misses %d not << MESI %d", mw.MissesCoherence, mesi.MissesCoherence)
	}
}

func TestNewWorkloadShapes(t *testing.T) {
	// h2 and radix: second-half workloads with MW wins. radix's
	// word-interleaved scatter needs the paper's 16 cores for its
	// false sharing to bite (at 4 cores each core owns two words per
	// region and trained fills span them).
	o := Options{Cores: 16, Scale: 1}
	for _, w := range []string{"h2", "radix"} {
		mesi, err := Run(w, core.MESI, o)
		if err != nil {
			t.Fatal(err)
		}
		mw, err := Run(w, core.ProtozoaMW, o)
		if err != nil {
			t.Fatal(err)
		}
		if float64(mw.L1Misses) > 0.8*float64(mesi.L1Misses) {
			t.Errorf("%s: MW misses %d not well below MESI %d", w, mw.L1Misses, mesi.L1Misses)
		}
	}
}

func TestGeoMeanRatio(t *testing.T) {
	m := collect(t, "linear-regression", "matrix-multiply")
	r := m.GeoMeanRatio(core.ProtozoaMW, TrafficBytes)
	if r <= 0 || r >= 1 {
		t.Errorf("geomean traffic ratio = %.3f, want in (0,1)", r)
	}
	if rm := m.GeoMeanRatio(core.MESI, TrafficBytes); rm != 1 {
		t.Errorf("geomean MESI/MESI = %.3f, want 1", rm)
	}
}

func TestTable1Shapes(t *testing.T) {
	o := fast
	o.Workloads = []string{"matrix-multiply", "blackscholes"}
	res, err := CollectTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	// linear-regression needs the paper's 16 cores: at 64 bytes eight
	// threads' accumulators false-share each block.
	o16 := Options{Cores: 16, Scale: 1, Workloads: []string{"linear-regression"}}
	res16, err := CollectTable1(o16)
	if err != nil {
		t.Fatal(err)
	}
	lr := res16.Cells["linear-regression"]
	if lr[16].MPKI >= lr[64].MPKI {
		t.Errorf("linreg MPKI@16 %.1f not below @64 %.1f", lr[16].MPKI, lr[64].MPKI)
	}
	if got := res16.Optimal("linear-regression"); got != "16" {
		t.Errorf("linreg optimal = %s, want 16", got)
	}
	// matrix-multiply: coarse blocks exploit the streaming locality.
	mm := res.Cells["matrix-multiply"]
	if mm[64].MPKI >= mm[16].MPKI {
		t.Errorf("matmul MPKI@64 %.1f not below @16 %.1f", mm[64].MPKI, mm[16].MPKI)
	}
	if mm[64].UsedPct < 90 {
		t.Errorf("matmul used%%@64 = %.1f, want ~99", mm[64].UsedPct)
	}
	// blackscholes: sparse fields waste most of a 64-byte block.
	if bs := res.Cells["blackscholes"][64].UsedPct; bs > 45 {
		t.Errorf("blackscholes used%%@64 = %.1f, want low", bs)
	}
	out := res16.Render()
	if !strings.Contains(out, "linear-regression") || !strings.Contains(out, "optimal") {
		t.Errorf("Table 1 rendering incomplete:\n%s", out)
	}
}

func TestTrendNotation(t *testing.T) {
	cases := []struct {
		from, to float64
		want     string
	}{
		{100, 100, "~"}, {100, 105, "~"}, {100, 120, "^"}, {100, 140, "^^"},
		{100, 200, "^^^"}, {100, 85, "v"}, {100, 60, "vv"}, {100, 40, "vvv"},
		{0, 0, "~"}, {0, 5, "^^"},
	}
	for _, c := range cases {
		if got := trend(c.from, c.to); got != c.want {
			t.Errorf("trend(%v,%v) = %s, want %s", c.from, c.to, got, c.want)
		}
	}
}
