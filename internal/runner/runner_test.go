package runner

import (
	"bytes"
	"strings"
	"testing"

	"protozoa/internal/core"
	"protozoa/internal/workloads"
)

// testGrid is a 24-cell grid (2 workloads x 4 protocols x 3 regions)
// small enough to run twice in a test yet wide enough that parallel
// completion order differs from cell order.
func testGrid() Grid {
	return Grid{
		Workloads: []string{"swaptions", "histogram"},
		Protocols: core.AllProtocols,
		Regions:   []int{32, 64, 128},
		Cores:     4,
		Scale:     1,
	}
}

// TestDeterministicAcrossJobs is the runner's core guarantee: the CSV
// a grid produces is byte-identical whether the cells run serially or
// on eight workers, because every cell owns its engine and stats.
func TestDeterministicAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("24-cell grid x2 skipped in -short mode")
	}
	run := func(jobs int) []byte {
		cells, err := testGrid().Cells()
		if err != nil {
			t.Fatal(err)
		}
		if len(cells) != 24 {
			t.Fatalf("grid expanded to %d cells, want 24", len(cells))
		}
		results, sum := Pool{Jobs: jobs}.Run(cells)
		if sum.Failed != 0 {
			t.Fatalf("jobs=%d: %d cells failed", jobs, sum.Failed)
		}
		if sum.Cells != 24 || sum.Events == 0 || sum.SimCycles == 0 {
			t.Fatalf("jobs=%d: implausible summary %+v", jobs, sum)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, results); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("CSV differs between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s--- jobs=8 ---\n%s", serial, parallel)
	}
	if lines := strings.Count(string(serial), "\n"); lines != 25 { // header + 24 rows
		t.Errorf("CSV has %d lines, want 25", lines)
	}
}

// TestFailedCellKeepsOtherResults injects a mid-grid failure (a
// watchdog trip during simulation) and asserts the surviving cells'
// rows still come out — the regression test for protozoa-sweep's old
// exit-without-flush loss.
func TestFailedCellKeepsOtherResults(t *testing.T) {
	g := testGrid()
	g.Workloads = []string{"swaptions"}
	g.Protocols = []core.Protocol{core.MESI}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("grid expanded to %d cells, want 3", len(cells))
	}
	spec, err := workloads.Get("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	cells[1].Build = func() (*core.System, error) {
		cfg := core.DefaultConfig(core.MESI)
		cfg.MaxEvents = 50 // trips the livelock watchdog almost immediately
		if err := ConfigureCores(&cfg, 4); err != nil {
			return nil, err
		}
		return core.NewSystem(cfg, spec.Streams(4, 1))
	}

	var progress bytes.Buffer
	results, sum := Pool{Jobs: 2, Progress: &progress}.Run(cells)
	if sum.Failed != 1 {
		t.Fatalf("summary.Failed = %d, want 1", sum.Failed)
	}
	if results[1].Err == nil || results[1].Stats != nil {
		t.Fatalf("injected cell: err=%v stats=%v", results[1].Err, results[1].Stats)
	}
	if !strings.Contains(results[1].Err.Error(), cells[1].Label) {
		t.Errorf("error %q does not name the failing cell %q", results[1].Err, cells[1].Label)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil || results[i].Stats == nil {
			t.Errorf("cell %d lost to a neighbour's failure: err=%v", i, results[i].Err)
		}
	}
	// The failed cell stopped at an arbitrary point, so its events must
	// not pollute the summary total (which feeds reproducible reports).
	if results[1].Events == 0 {
		t.Errorf("watchdog-tripped cell recorded no events; the injection is broken")
	}
	if want := results[0].Events + results[2].Events; sum.Events != want {
		t.Errorf("summary.Events = %d, want %d (successful cells only)", sum.Events, want)
	}

	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 { // header + 2 surviving rows
		t.Errorf("CSV has %d lines, want 3 (completed rows must survive a failure):\n%s", lines, buf.String())
	}
	if !strings.Contains(progress.String(), "FAIL") || !strings.Contains(progress.String(), "1 failed") {
		t.Errorf("progress stream missing failure report:\n%s", progress.String())
	}
}

// TestBuildErrorCaptured covers the other failure point: Build itself
// erroring (e.g. an invalid config) without aborting the pool.
func TestBuildErrorCaptured(t *testing.T) {
	boom := Cell{
		Label: "boom",
		Build: func() (*core.System, error) {
			var cfg core.Config
			return nil, ConfigureCores(&cfg, 3)
		},
	}
	results, sum := Pool{Jobs: 1}.Run([]Cell{boom})
	if sum.Failed != 1 || results[0].Err == nil {
		t.Fatalf("build error not captured: %+v", results[0])
	}
}

func TestPoolEmptyGrid(t *testing.T) {
	results, sum := Pool{}.Run(nil)
	if len(results) != 0 || sum.Cells != 0 || sum.Failed != 0 {
		t.Fatalf("empty grid: results=%v summary=%+v", results, sum)
	}
	// The pool's width is GOMAXPROCS here; the old clamp reported it as
	// zero on an empty grid.
	if sum.Jobs <= 0 {
		t.Errorf("empty grid reports Jobs = %d, want the pool width", sum.Jobs)
	}
}

// TestGridDeduplicatesWorkloads: a workload repeated on the command
// line used to duplicate every row it expands into.
func TestGridDeduplicatesWorkloads(t *testing.T) {
	g := testGrid()
	g.Workloads = []string{"histogram", " histogram", "swaptions", "histogram"}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 24 { // 2 distinct workloads x 4 protocols x 3 regions
		t.Fatalf("grid with duplicate workloads expanded to %d cells, want 24", len(cells))
	}
	if cells[0].Workload != "histogram" || cells[12].Workload != "swaptions" {
		t.Errorf("first-appearance order lost: %q then %q", cells[0].Workload, cells[12].Workload)
	}
}

// TestWriteCSVRejectsUnranCell: a result slot with neither stats nor an
// error (a cell that never ran) used to vanish from the CSV silently,
// misreporting the sweep as complete.
func TestWriteCSVRejectsUnranCell(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []Result{{Cell: Cell{Label: "ghost"}}})
	if err == nil {
		t.Fatal("WriteCSV accepted a cell with no stats and no error")
	}
	if !strings.Contains(err.Error(), "ghost") {
		t.Errorf("error %q does not name the cell", err)
	}
}

func TestGridValidatesUpfront(t *testing.T) {
	if _, err := (Grid{Workloads: []string{"no-such-workload"}}).Cells(); err == nil {
		t.Error("unknown workload not rejected")
	}
	if _, err := (Grid{Workloads: []string{"fft"}, Knobs: []string{"warp-drive"}}).Cells(); err == nil {
		t.Error("unknown knob not rejected")
	}
	if _, err := (Grid{Workloads: []string{"fft"}, Cores: 7}).Cells(); err == nil {
		t.Error("unsupported core count not rejected")
	}
}
