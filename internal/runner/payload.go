package runner

import (
	"encoding/json"
	"fmt"

	"protozoa/internal/obs"
	"protozoa/internal/obs/attrib"
	"protozoa/internal/stats"
)

// cachedResult is the on-disk shape of one cell's outcome. Every field
// it stores is integral (stats counters, attribution word counts,
// latency histogram buckets), so a JSON round-trip reproduces the
// simulated values exactly — which is what lets a warm run render
// byte-identical CSV/report output. Schema changes are caught by the
// key's payload fingerprint, not by versioning the payload itself.
type cachedResult struct {
	Events  uint64
	Stats   *stats.Stats
	Latency *obs.LatencyBreakdown `json:",omitempty"`
	Attrib  *attrib.Dump          `json:",omitempty"`
	Extra   []byte                `json:",omitempty"`
}

// encodeResult serializes a successful result for the cache.
func encodeResult(r *Result) ([]byte, error) {
	cr := cachedResult{
		Events:  r.Events,
		Stats:   r.Stats,
		Latency: r.Latency,
		Extra:   r.Extra,
	}
	if r.Attrib != nil {
		cr.Attrib = r.Attrib.Dump()
	}
	return json.Marshal(cr)
}

// decodeResult reconstructs a result for cell c from a cached payload.
// A payload missing an observation the cell requires is an error — the
// caller treats it as a miss and re-simulates.
func decodeResult(i int, c Cell, payload []byte) (Result, error) {
	var cr cachedResult
	if err := json.Unmarshal(payload, &cr); err != nil {
		return Result{}, fmt.Errorf("decode cached result: %w", err)
	}
	if cr.Stats == nil {
		return Result{}, fmt.Errorf("cached result has no stats")
	}
	r := Result{
		Index:  i,
		Cell:   c,
		Stats:  cr.Stats,
		Events: cr.Events,
		Extra:  cr.Extra,
		Cached: true,
	}
	if c.NeedAttrib {
		if cr.Attrib == nil {
			return Result{}, fmt.Errorf("cached result lacks attribution")
		}
		tr, err := attrib.FromDump(cr.Attrib)
		if err != nil {
			return Result{}, err
		}
		r.Attrib = tr
	}
	if c.NeedLatency {
		if cr.Latency == nil {
			return Result{}, fmt.Errorf("cached result lacks latency breakdown")
		}
		r.Latency = cr.Latency
	}
	return r, nil
}
