package runner

import (
	"reflect"
	"testing"

	"protozoa/internal/core"
)

func TestParseProtocolsDeduplicates(t *testing.T) {
	tests := []struct {
		in   string
		want []core.Protocol
	}{
		{"mesi", []core.Protocol{core.MESI}},
		{"mesi,mesi", []core.Protocol{core.MESI}},
		{"all", core.AllProtocols},
		// The old sweep parser appended MESI twice here, doubling its rows.
		{"all,mesi", core.AllProtocols},
		{"mw,all", []core.Protocol{core.ProtozoaMW, core.MESI, core.ProtozoaSW, core.ProtozoaSWMR}},
		{"sw+mr, MW ", []core.Protocol{core.ProtozoaSWMR, core.ProtozoaMW}},
	}
	for _, tc := range tests {
		got, err := ParseProtocols(tc.in)
		if err != nil {
			t.Errorf("ParseProtocols(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseProtocols(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if _, err := ParseProtocols("mesi,mosi"); err == nil {
		t.Error("unknown protocol not rejected")
	}
}

func TestParseRegions(t *testing.T) {
	got, err := ParseRegions(" 32,64 ,128")
	if err != nil || !reflect.DeepEqual(got, []int{32, 64, 128}) {
		t.Errorf("ParseRegions = %v, %v", got, err)
	}
	// A repeated size used to survive parsing and duplicate every row of
	// its sweep slice; first-appearance order must win.
	got, err = ParseRegions("64,32,64,32,64")
	if err != nil || !reflect.DeepEqual(got, []int{64, 32}) {
		t.Errorf("ParseRegions with duplicates = %v, %v, want [64 32]", got, err)
	}
	for _, bad := range []string{"x", "", "64,-8", "64,0"} {
		if _, err := ParseRegions(bad); err == nil {
			t.Errorf("ParseRegions(%q) accepted", bad)
		}
	}
}

func TestParseKnobs(t *testing.T) {
	got, err := ParseKnobs("baseline, threehop,baseline")
	if err != nil || !reflect.DeepEqual(got, []string{"baseline", "threehop"}) {
		t.Errorf("ParseKnobs = %v, %v", got, err)
	}
	if _, err := ParseKnobs("baseline,warp-drive"); err == nil {
		t.Error("unknown knob not rejected")
	}
	names := KnobNames()
	if len(names) != len(Knobs) {
		t.Errorf("KnobNames lists %d of %d knobs", len(names), len(Knobs))
	}
}

func TestConfigureCores(t *testing.T) {
	for cores, dims := range map[int][2]int{16: {4, 4}, 4: {2, 2}, 2: {2, 1}, 1: {1, 1}} {
		cfg := core.DefaultConfig(core.MESI)
		if err := ConfigureCores(&cfg, cores); err != nil {
			t.Fatalf("ConfigureCores(%d): %v", cores, err)
		}
		if cfg.Cores != cores || cfg.Noc.DimX != dims[0] || cfg.Noc.DimY != dims[1] {
			t.Errorf("cores=%d: got cores=%d mesh %dx%d, want %dx%d",
				cores, cfg.Cores, cfg.Noc.DimX, cfg.Noc.DimY, dims[0], dims[1])
		}
	}
	var cfg core.Config
	if err := ConfigureCores(&cfg, 8); err == nil {
		t.Error("8 cores accepted")
	}
}
