package runner

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles turns on the standard pprof instrumentation behind the
// CLI tools' -cpuprofile/-memprofile flags. Either path may be empty.
// The returned stop function must run exactly once at process exit
// (before os.Exit): it flushes the CPU profile and, after a GC to fold
// dead objects out of the picture, writes the heap profile.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // fold freed objects out of the live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
