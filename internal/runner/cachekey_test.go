package runner

import (
	"testing"

	"protozoa/internal/core"
	"protozoa/internal/predictor"
)

// fixedSpec is the golden cell: a fully-resolved 16-core MESI config
// with canonical workload identity. Any change to its ConfigHash means
// the key schema moved and every persisted cache entry is (correctly)
// orphaned — bump resultcache.SchemaVersion when that is intentional.
func fixedSpec(t *testing.T) CellSpec {
	t.Helper()
	cfg := core.DefaultConfig(core.MESI)
	cfg.RegionBytes = 64
	if err := ConfigureCores(&cfg, 16); err != nil {
		t.Fatalf("ConfigureCores: %v", err)
	}
	return CellSpec{
		Config:     cfg,
		Workload:   "linear-regression",
		Scale:      2,
		Seed:       7,
		NeedAttrib: true,
	}
}

// goldenConfigHash pins the canonical hash of fixedSpec. It is
// intentionally a literal: if this test fails, either the key
// derivation or core.Config's field set changed, and on-disk cache
// entries from earlier builds will all miss. That is the designed
// invalidation behaviour — update the literal only once you've
// confirmed the change to the hashed surface is deliberate.
const goldenConfigHash = "8938c7dcf17d40b5e57e912616ac2758a9e197a799589bc400a33ac233d07c30"

func TestConfigHashGolden(t *testing.T) {
	h, err := fixedSpec(t).ConfigHash()
	if err != nil {
		t.Fatalf("ConfigHash: %v", err)
	}
	if h.String() != goldenConfigHash {
		t.Errorf("canonical config hash changed:\n got %s\nwant %s\n"+
			"(key schema moved — existing cache entries will be orphaned; "+
			"bump resultcache.SchemaVersion if intentional, then repin)",
			h.String(), goldenConfigHash)
	}
}

// TestConfigHashSensitivity checks that every input that can change a
// cell's result changes its hash, and that Workers — which by the PDES
// determinism contract cannot — does not.
func TestConfigHashSensitivity(t *testing.T) {
	base, err := fixedSpec(t).ConfigHash()
	if err != nil {
		t.Fatalf("ConfigHash: %v", err)
	}

	mutations := map[string]func(*CellSpec){
		"protocol":     func(s *CellSpec) { s.Config = core.DefaultConfig(core.ProtozoaMW); s.Config.RegionBytes = 64 },
		"region knob":  func(s *CellSpec) { s.Config.RegionBytes = 128 },
		"l1 geometry":  func(s *CellSpec) { s.Config.L1Sets *= 2 },
		"workload":     func(s *CellSpec) { s.Workload = "histogram" },
		"scale":        func(s *CellSpec) { s.Scale = 3 },
		"seed":         func(s *CellSpec) { s.Seed = 8 },
		"extra pair":   func(s *CellSpec) { s.Extra = [][2]string{{"stores", "30"}} },
		"need.attrib":  func(s *CellSpec) { s.NeedAttrib = false },
		"need.latency": func(s *CellSpec) { s.NeedLatency = true },
		"extract tag":  func(s *CellSpec) { s.Extract = "checker-summary-v1" },
	}
	for name, mutate := range mutations {
		s := fixedSpec(t)
		mutate(&s)
		h, err := s.ConfigHash()
		if err != nil {
			t.Fatalf("%s: ConfigHash: %v", name, err)
		}
		if h == base {
			t.Errorf("%s: mutation did not change the config hash", name)
		}
	}

	s := fixedSpec(t)
	s.Config.Workers = 4
	h, err := s.ConfigHash()
	if err != nil {
		t.Fatalf("workers: ConfigHash: %v", err)
	}
	if h != base {
		t.Errorf("Workers changed the config hash; all worker counts must share one entry")
	}
}

func TestKeyIncludesCodeStampAndIsStable(t *testing.T) {
	s := fixedSpec(t)
	k1, k2 := s.Key(), s.Key()
	if k1.IsZero() {
		t.Fatal("fixed spec produced the zero (uncacheable) key")
	}
	if k1 != k2 {
		t.Errorf("Key not deterministic: %s vs %s", k1, k2)
	}
	ch, _ := s.ConfigHash()
	if k1 == ch {
		t.Error("Key must differ from ConfigHash (it folds in the code stamp)")
	}
}

// A config carrying an injected hook can't be canonicalized; its cell
// must come out uncacheable (zero key) rather than colliding with the
// default-predictor cell.
func TestKeyZeroForUncacheableConfig(t *testing.T) {
	s := fixedSpec(t)
	s.Config.PredictorOverride = func(int) predictor.Predictor { return nil }
	if _, err := s.ConfigHash(); err == nil {
		t.Error("ConfigHash accepted a config with a function-valued hook")
	}
	if k := s.Key(); !k.IsZero() {
		t.Errorf("Key for uncacheable config = %s, want zero", k)
	}
}

// Every cell a grid expands to must get its own non-zero key: the
// sweep drivers rely on per-cell identity for dedup and resume.
func TestGridCellKeysDistinct(t *testing.T) {
	g := Grid{
		Workloads: []string{"linear-regression"},
		Regions:   []int{32, 64},
		Scale:     1,
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatalf("Cells: %v", err)
	}
	seen := make(map[string]string)
	for _, c := range cells {
		if c.Key.IsZero() {
			t.Errorf("cell %s: zero cache key", c.Label)
			continue
		}
		if prev, dup := seen[c.Key.String()]; dup {
			t.Errorf("cells %s and %s share a cache key", prev, c.Label)
		}
		seen[c.Key.String()] = c.Label
	}

	// Same grid at a different worker count: keys must be identical
	// cell for cell (shared entries across -workers settings).
	g.Workers = 2
	wcells, err := g.Cells()
	if err != nil {
		t.Fatalf("Cells(workers=2): %v", err)
	}
	for i := range cells {
		if cells[i].Key != wcells[i].Key {
			t.Errorf("cell %s: key depends on Workers", cells[i].Label)
		}
	}
}
