package runner

import (
	"fmt"

	"protozoa/internal/resultcache"
)

// VersionString renders the build provenance every driver's -version
// flag prints: the result cache's schema version and code stamp (main
// module version plus VCS revision/dirty bit when the binary carries
// them). Two binaries printing the same string derive the same cache
// keys, so this is how cached-result provenance is checked from the
// CLI.
func VersionString() string {
	return fmt.Sprintf("result-cache schema v%d\ncode stamp: %s",
		resultcache.SchemaVersion, resultcache.CodeStamp())
}
