package runner

import (
	"bytes"
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"protozoa/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSweepCSVGolden pins the sweep CSV byte-for-byte: schema order,
// number formatting, and the miss-latency percentile columns. The
// simulator is deterministic, so any drift here is a real output
// change — regenerate deliberately with `go test -run Golden -update`.
func TestSweepCSVGolden(t *testing.T) {
	g := Grid{
		Workloads: []string{"histogram"},
		Protocols: []core.Protocol{core.MESI, core.ProtozoaMW},
		Regions:   []int{64},
		Cores:     4,
		Scale:     1,
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results, sum := Pool{Jobs: 1}.Run(cells)
	if sum.Failed != 0 {
		t.Fatalf("%d cells failed", sum.Failed)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "sweep_golden.csv")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("sweep CSV drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestSweepCSVLatencyColumns checks the percentile columns are present,
// ordered p50 <= p95 <= p99, and consistent with the cell's stats.
func TestSweepCSVLatencyColumns(t *testing.T) {
	g := Grid{
		Workloads: []string{"histogram"},
		Protocols: []core.Protocol{core.MESI},
		Regions:   []int{64},
		Cores:     4,
		Scale:     1,
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results, sum := Pool{Jobs: 1}.Run(cells)
	if sum.Failed != 0 {
		t.Fatalf("%d cells failed", sum.Failed)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, name := range []string{"miss_lat_p50", "miss_lat_p95", "miss_lat_p99"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("header missing %s: %v", name, rows[0])
		}
	}
	row := rows[1]
	p50, _ := strconv.ParseUint(row[col["miss_lat_p50"]], 10, 64)
	p95, _ := strconv.ParseUint(row[col["miss_lat_p95"]], 10, 64)
	p99, _ := strconv.ParseUint(row[col["miss_lat_p99"]], 10, 64)
	if p50 == 0 || p50 > p95 || p95 > p99 {
		t.Errorf("percentiles not ordered: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
	st := results[0].Stats
	if p50 != st.MissLatencyP(50) || p95 != st.MissLatencyP(95) || p99 != st.MissLatencyP(99) {
		t.Errorf("CSV percentiles disagree with stats: %d/%d/%d vs %d/%d/%d",
			p50, p95, p99, st.MissLatencyP(50), st.MissLatencyP(95), st.MissLatencyP(99))
	}
}

// TestSweepCSVAttributionColumns checks the attribution columns render
// sane values consistent with the cell's tracker, and that a result
// without a tracker leaves them empty rather than zero (so rows from
// attribution-free runs are distinguishable from perfectly-utilized
// ones).
func TestSweepCSVAttributionColumns(t *testing.T) {
	g := Grid{
		Workloads: []string{"histogram"},
		Protocols: []core.Protocol{core.MESI},
		Regions:   []int{64},
		Cores:     4,
		Scale:     1,
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results, sum := Pool{Jobs: 1}.Run(cells)
	if sum.Failed != 0 {
		t.Fatalf("%d cells failed", sum.Failed)
	}
	if results[0].Attrib == nil {
		t.Fatal("grid cell ran without an attribution tracker")
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, name := range []string{"util_pct", "wasted_bytes", "false_shared_regions"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("header missing %s: %v", name, rows[0])
		}
	}
	row := rows[1]
	tr := results[0].Attrib
	util, err := strconv.ParseFloat(row[col["util_pct"]], 64)
	if err != nil {
		t.Fatalf("util_pct %q: %v", row[col["util_pct"]], err)
	}
	if util <= 0 || util > 100 {
		t.Errorf("util_pct %v out of range", util)
	}
	wasted, _ := strconv.ParseUint(row[col["wasted_bytes"]], 10, 64)
	if wasted != tr.WastedBytes() {
		t.Errorf("wasted_bytes %d disagrees with tracker %d", wasted, tr.WastedBytes())
	}
	fs, _ := strconv.ParseUint(row[col["false_shared_regions"]], 10, 64)
	if fs != tr.FalseSharedRegions() {
		t.Errorf("false_shared_regions %d disagrees with tracker %d", fs, tr.FalseSharedRegions())
	}

	// A row whose cell ran without attribution renders the columns empty.
	bare := results[0]
	bare.Attrib = nil
	got := CSVRow(bare)
	for _, idx := range []int{col["util_pct"], col["wasted_bytes"], col["false_shared_regions"]} {
		if got[idx] != "" {
			t.Errorf("column %d = %q without a tracker, want empty", idx, got[idx])
		}
	}
	if len(got) != len(CSVHeader) {
		t.Errorf("row has %d fields, header %d", len(got), len(CSVHeader))
	}
}
