package runner

import (
	"bytes"
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"protozoa/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestSweepCSVGolden pins the sweep CSV byte-for-byte: schema order,
// number formatting, and the miss-latency percentile columns. The
// simulator is deterministic, so any drift here is a real output
// change — regenerate deliberately with `go test -run Golden -update`.
func TestSweepCSVGolden(t *testing.T) {
	g := Grid{
		Workloads: []string{"histogram"},
		Protocols: []core.Protocol{core.MESI, core.ProtozoaMW},
		Regions:   []int{64},
		Cores:     4,
		Scale:     1,
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results, sum := Pool{Jobs: 1}.Run(cells)
	if sum.Failed != 0 {
		t.Fatalf("%d cells failed", sum.Failed)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "sweep_golden.csv")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("sweep CSV drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestSweepCSVLatencyColumns checks the percentile columns are present,
// ordered p50 <= p95 <= p99, and consistent with the cell's stats.
func TestSweepCSVLatencyColumns(t *testing.T) {
	g := Grid{
		Workloads: []string{"histogram"},
		Protocols: []core.Protocol{core.MESI},
		Regions:   []int{64},
		Cores:     4,
		Scale:     1,
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results, sum := Pool{Jobs: 1}.Run(cells)
	if sum.Failed != 0 {
		t.Fatalf("%d cells failed", sum.Failed)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	col := map[string]int{}
	for i, name := range rows[0] {
		col[name] = i
	}
	for _, name := range []string{"miss_lat_p50", "miss_lat_p95", "miss_lat_p99"} {
		if _, ok := col[name]; !ok {
			t.Fatalf("header missing %s: %v", name, rows[0])
		}
	}
	row := rows[1]
	p50, _ := strconv.ParseUint(row[col["miss_lat_p50"]], 10, 64)
	p95, _ := strconv.ParseUint(row[col["miss_lat_p95"]], 10, 64)
	p99, _ := strconv.ParseUint(row[col["miss_lat_p99"]], 10, 64)
	if p50 == 0 || p50 > p95 || p95 > p99 {
		t.Errorf("percentiles not ordered: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
	st := results[0].Stats
	if p50 != st.MissLatencyP(50) || p95 != st.MissLatencyP(95) || p99 != st.MissLatencyP(99) {
		t.Errorf("CSV percentiles disagree with stats: %d/%d/%d vs %d/%d/%d",
			p50, p95, p99, st.MissLatencyP(50), st.MissLatencyP(95), st.MissLatencyP(99))
	}
}
