// Package runner fans a grid of independent simulation cells out over
// a bounded worker pool.
//
// Each cell owns a complete core.System — its own event engine, stats
// block, and workload streams — so cells share no mutable state and a
// grid's results are bit-identical at any worker count; only the wall
// time changes. Results come back in cell order regardless of
// completion order, and a failing cell records its error in its own
// result slot instead of aborting the process, so one bad
// configuration cannot discard the rest of the grid's output.
//
// The package also owns the grid vocabulary the drivers share:
// protocol/knob/region parsing (see parse.go), the sweep cross
// product, and its CSV schema (see grid.go).
package runner

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"protozoa/internal/core"
	"protozoa/internal/obs"
	"protozoa/internal/obs/attrib"
	"protozoa/internal/resultcache"
	"protozoa/internal/stats"
)

// Cell is one simulation to run: a labelled constructor for a fresh
// machine plus the grid coordinates drivers report rows under.
type Cell struct {
	Label string // progress/error identifier, e.g. "histogram/MESI/baseline/r64"

	// Grid coordinates; drivers that don't sweep a dimension leave it zero.
	Workload string
	Protocol core.Protocol
	Knob     string
	Region   int

	// Key, when non-zero, identifies the cell's fully-resolved
	// configuration in the result cache (see CellSpec.Key). A pool
	// with a cache consults it before building the machine; the zero
	// key marks the cell uncacheable and always simulates.
	Key resultcache.Key

	// NeedAttrib and NeedLatency request the respective observations;
	// the pool enables them before the run and delivers the trackers
	// in the result (from the live system or a cached payload alike).
	NeedAttrib  bool
	NeedLatency bool

	// Build constructs the cell's machine. It runs on a worker
	// goroutine and must return a system no other cell touches.
	Build func() (*core.System, error)

	// Observe, when non-nil, runs between Build and the simulation —
	// the hook drivers use to attach a core.Checker. Observations made
	// this way are invisible to the result cache; pair Observe with
	// Extract to make their outcome cacheable.
	Observe func(*core.System)

	// Extract, when non-nil, serializes driver-specific outcome state
	// after a successful run (e.g. verify's checker summary) into
	// Result.Extra, which the cache stores and replays verbatim. Cells
	// with an Extract must name it in their CellSpec so the codec is
	// part of the key.
	Extract func(*core.System) ([]byte, error)

	// AfterRun, when non-nil, observes the live machine after a
	// successful simulation, on the worker goroutine. Cache hits never
	// invoke it — nothing was simulated, so there is no machine to
	// observe. Drivers use it to collect self-profiling aggregates;
	// like Observe, its outcome is invisible to the result cache.
	AfterRun func(*core.System)
}

// Result is one cell's outcome, delivered in the slot matching the
// cell's index regardless of completion order.
type Result struct {
	Index   int
	Cell    Cell
	Stats   *stats.Stats          // nil when Err != nil
	Attrib  *attrib.Tracker       // non-nil when the cell requested attribution
	Latency *obs.LatencyBreakdown // non-nil when the cell requested the breakdown
	Extra   []byte                // Cell.Extract output, replayed verbatim on cache hits
	Err     error                 // build or simulation failure, wrapped with the label
	Events  uint64                // events the cell's engine processed
	Cached  bool                  // result came from the cache, nothing was simulated
	Wall    time.Duration         // wall-clock time the cell took
}

// Summary aggregates one pool run.
type Summary struct {
	Cells     int           // cells executed
	Failed    int           // cells that returned an error
	Cached    int           // cells answered from the result cache
	Jobs      int           // worker-pool width actually used
	Events    uint64        // engine events across all cells
	SimCycles uint64        // simulated cycles across completed cells
	Wall      time.Duration // wall-clock time for the whole grid
}

func (s Summary) String() string {
	return fmt.Sprintf("%d cells (%d failed, %d cached), %d events, %d simulated cycles, %s wall on %d jobs",
		s.Cells, s.Failed, s.Cached, s.Events, s.SimCycles, s.Wall.Round(time.Millisecond), s.Jobs)
}

// Pool executes cells on a bounded number of worker goroutines.
type Pool struct {
	Jobs     int       // concurrent workers; <=0 means GOMAXPROCS
	Progress io.Writer // per-cell completion lines plus a summary; nil = silent

	// Cache, when non-nil, memoizes cells with a non-zero Key: hits
	// skip Build and the simulation entirely, misses write back on
	// success, and identical concurrent cells collapse into one
	// simulation (singleflight). Results are byte-identical with and
	// without the cache — that is the content-addressing contract.
	Cache *resultcache.Cache

	// OnResult, when non-nil, observes each result as its cell
	// finishes (completion order, serialized under the pool's mutex).
	// Drivers use it to feed live aggregates; it must not block.
	OnResult func(Result)
}

// Run executes every cell and returns the results in cell order, with
// per-cell errors captured in place. It never aborts early: cells
// after a failure still run, and the summary counts the failures.
func (p Pool) Run(cells []Cell) ([]Result, Summary) {
	start := time.Now()
	results := make([]Result, len(cells))
	jobs := p.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	// Don't report a zero-width pool for an empty grid; the clamp only
	// applies when there are cells to spread over the workers.
	if len(cells) > 0 && jobs > len(cells) {
		jobs = len(cells)
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex // guards Progress interleaving and done
		done int
		idx  = make(chan int)
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := p.runCell(i, cells[i])
				results[i] = r
				if p.Progress != nil || p.OnResult != nil {
					mu.Lock()
					done++
					if p.Progress != nil {
						status := "ok"
						if r.Err != nil {
							status = "FAIL: " + r.Err.Error()
						} else if r.Cached {
							status = "cached"
						}
						fmt.Fprintf(p.Progress, "[%d/%d] %s: %s (%d events, %s)\n",
							done, len(cells), r.Cell.Label, status, r.Events, r.Wall.Round(time.Millisecond))
					}
					if p.OnResult != nil {
						p.OnResult(r)
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()

	sum := Summary{Cells: len(cells), Jobs: jobs, Wall: time.Since(start)}
	for _, r := range results {
		if r.Cached {
			sum.Cached++
		}
		if r.Err != nil {
			sum.Failed++
		} else {
			// Failed cells stop at an arbitrary point (build error, or a
			// watchdog/deadlock mid-run), so their event counts would
			// make the summary's totals non-reproducible noise.
			sum.Events += r.Events
			sum.SimCycles += r.Stats.ExecCycles
		}
	}
	if p.Progress != nil {
		fmt.Fprintln(p.Progress, sum)
	}
	return results, sum
}

// runCell resolves one cell: from the cache when possible, by
// simulating otherwise. Any cache-side failure — undecodable payload,
// a concurrent leader's error — degrades to a plain simulation, never
// to a failed cell the simulator itself wouldn't have failed.
func (p Pool) runCell(i int, c Cell) Result {
	if p.Cache == nil || c.Key.IsZero() {
		return simCell(i, c)
	}
	start := time.Now()
	var (
		ran  bool
		self Result
	)
	payload, _, err := p.Cache.Do(c.Key, func() ([]byte, error) {
		ran = true
		self = simCell(i, c)
		if self.Err != nil {
			return nil, self.Err
		}
		return encodeResult(&self)
	})
	if ran {
		// We were the leader: our own simulation outcome stands whether
		// or not the write-back succeeded (errors are never cached, and
		// an encode failure just leaves the entry unwritten).
		return self
	}
	if err != nil {
		// A concurrent leader failed. The failure is deterministic, but
		// re-running produces this cell's own correctly-labelled error.
		return simCell(i, c)
	}
	r, derr := decodeResult(i, c, payload)
	if derr != nil {
		// Payload doesn't carry what this cell needs (or is garbled in
		// a way the disk checksum can't see) — fall back to simulating.
		return simCell(i, c)
	}
	r.Wall = time.Since(start)
	return r
}

// simCell builds and runs one cell's machine.
func simCell(i int, c Cell) Result {
	start := time.Now()
	r := Result{Index: i, Cell: c}
	sys, err := c.Build()
	if err != nil {
		r.Err = fmt.Errorf("%s: %w", c.Label, err)
		r.Wall = time.Since(start)
		return r
	}
	var lat *obs.LatencyBreakdown
	if c.NeedAttrib {
		sys.EnableAttribution()
	}
	if c.NeedLatency {
		lat = sys.EnableLatencyBreakdown()
	}
	if c.Observe != nil {
		c.Observe(sys)
	}
	if err := sys.Run(); err != nil {
		r.Err = fmt.Errorf("%s: %w", c.Label, err)
	} else {
		r.Stats = sys.Stats()
		r.Attrib = sys.Attribution()
		r.Latency = lat
		if c.Extract != nil {
			if r.Extra, err = c.Extract(sys); err != nil {
				r.Err = fmt.Errorf("%s: extract: %w", c.Label, err)
				r.Stats, r.Attrib, r.Latency = nil, nil, nil
			}
		}
		if r.Err == nil && c.AfterRun != nil {
			c.AfterRun(sys)
		}
	}
	r.Events = sys.EventsProcessed()
	r.Wall = time.Since(start)
	return r
}
