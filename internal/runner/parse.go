package runner

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/noc"
)

// ParseProtocols parses a comma-separated protocol list: mesi, sw,
// swmr (or sw+mr), mw, and the shorthand all. Duplicates are dropped
// while first-appearance order is preserved, so "-protocols all,mesi"
// simulates MESI once, not twice.
func ParseProtocols(s string) ([]core.Protocol, error) {
	var out []core.Protocol
	seen := make(map[core.Protocol]bool)
	add := func(p core.Protocol) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, tok := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(tok)) {
		case "mesi":
			add(core.MESI)
		case "sw":
			add(core.ProtozoaSW)
		case "swmr", "sw+mr":
			add(core.ProtozoaSWMR)
		case "mw":
			add(core.ProtozoaMW)
		case "all":
			for _, p := range core.AllProtocols {
				add(p)
			}
		default:
			return nil, fmt.Errorf("unknown protocol %q", tok)
		}
	}
	return out, nil
}

// ParseRegions parses a comma-separated list of RMAX region sizes in
// bytes, deduplicating while preserving first-appearance order — a
// repeated size would otherwise duplicate every row of its sweep slice.
func ParseRegions(s string) ([]int, error) {
	var out []int
	seen := make(map[int]bool)
	for _, tok := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad region size %q", tok)
		}
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// Knobs is the sweepable design-knob vocabulary: each knob mutates a
// default config toward one §6 extension or NoC alternative.
var Knobs = map[string]func(*core.Config){
	"baseline":     func(*core.Config) {},
	"threehop":     func(c *core.Config) { c.ThreeHop = true },
	"bloom":        func(c *core.Config) { c.Directory = core.DirBloom },
	"merge":        func(c *core.Config) { c.MergeL1Blocks = true },
	"noninclusive": func(c *core.Config) { c.NonInclusiveL2 = true },
	"contention":   func(c *core.Config) { c.Noc.ModelContention = true },
	"ring":         func(c *core.Config) { c.Noc.Topology = noc.TopoRing },
	"crossbar":     func(c *core.Config) { c.Noc.Topology = noc.TopoCrossbar },
}

// KnobNames returns the knob vocabulary sorted, for usage strings.
func KnobNames() []string {
	names := make([]string, 0, len(Knobs))
	for k := range Knobs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// ParseKnobs validates a comma-separated knob list against Knobs,
// deduplicating while preserving first-appearance order.
func ParseKnobs(s string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	for _, tok := range strings.Split(s, ",") {
		k := strings.TrimSpace(tok)
		if _, ok := Knobs[k]; !ok {
			return nil, fmt.Errorf("unknown knob %q", tok)
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out, nil
}

// ConfigureCores sets cfg.Cores and the matching mesh dimensions for
// the supported core counts (16 keeps the default 4x4 mesh).
func ConfigureCores(cfg *core.Config, cores int) error {
	switch cores {
	case 16:
	case 4:
		cfg.Noc.DimX, cfg.Noc.DimY = 2, 2
	case 2:
		cfg.Noc.DimX, cfg.Noc.DimY = 2, 1
	case 1:
		cfg.Noc.DimX, cfg.Noc.DimY = 1, 1
	default:
		return fmt.Errorf("cores must be 1, 2, 4, or 16 (got %d)", cores)
	}
	cfg.Cores = cores
	return nil
}
