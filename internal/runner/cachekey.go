package runner

import (
	"strconv"

	"protozoa/internal/core"
	"protozoa/internal/obs"
	"protozoa/internal/obs/attrib"
	"protozoa/internal/resultcache"
	"protozoa/internal/stats"
)

// CellSpec is everything that determines a cell's result: the fully
// resolved machine configuration, the workload/trace identity, and
// which observations the driver asked for. It exists to derive the
// cell's content-addressed cache key.
type CellSpec struct {
	// Config is the resolved machine configuration — after defaults,
	// core counts, and knobs have been applied. Workers is excluded
	// from the hash: results are byte-identical at any worker count
	// (the PR 6 contract), so all -workers settings share one entry.
	Config core.Config

	// Workload names the trace source; Scale and Seed parameterize the
	// deterministic stream generators. Drivers with bespoke streams
	// (protozoa-verify) describe them in Extra instead.
	Workload string
	Scale    int
	Seed     uint64

	// Extra carries driver-specific identity as ordered name/value
	// pairs — e.g. verify's access-count/store-percentage/region-pool
	// parameters that aren't part of Config.
	Extra [][2]string

	// Observation shape. Cells that request different observations
	// store different payloads, so the flags are part of the key.
	NeedAttrib  bool
	NeedLatency bool

	// Extract names the driver's Extract serialization ("" when the
	// cell has none); the name doubles as that codec's version tag.
	Extract string
}

// ConfigHash canonically hashes the spec — configuration, workload
// identity, and observation shape, but not the code version. This is
// the stable half of the key: it changes exactly when the cell's
// inputs change, and the golden test pins it. A spec whose config
// can't be canonicalized (an injected PredictorOverride hook) is
// uncacheable and reports the error.
func (s CellSpec) ConfigHash() (resultcache.Key, error) {
	b := resultcache.NewBuilder()
	hc := s.Config
	hc.Workers = 0 // byte-identical at any worker count
	if err := resultcache.AddStruct(b, "config", hc); err != nil {
		return resultcache.Key{}, err
	}
	b.Field("workload", s.Workload)
	b.Field("scale", strconv.Itoa(s.Scale))
	b.Field("seed", strconv.FormatUint(s.Seed, 10))
	for _, kv := range s.Extra {
		b.Field("extra."+kv[0], kv[1])
	}
	b.Field("need.attrib", boolStr(s.NeedAttrib))
	b.Field("need.latency", boolStr(s.NeedLatency))
	b.Field("extract", s.Extract)
	return b.Sum(), nil
}

// payloadFingerprint pins the shape of everything a cached payload can
// carry: a field added to (or removed from) any of these types changes
// every key, so stale payloads from older schemas are never decoded.
var payloadFingerprint = func() string {
	return resultcache.TypeFingerprint(stats.Stats{}) +
		resultcache.TypeFingerprint(attrib.Dump{}) +
		resultcache.TypeFingerprint(obs.LatencyBreakdown{})
}()

// Key derives the cell's cache key: the ConfigHash plus the code
// version stamp and the payload schema fingerprint. The zero Key
// (spec uncacheable) disables caching for the cell.
func (s CellSpec) Key() resultcache.Key {
	ch, err := s.ConfigHash()
	if err != nil {
		return resultcache.Key{}
	}
	b := resultcache.NewBuilder()
	b.Field("confighash", ch.String())
	b.Field("codestamp", resultcache.CodeStamp())
	b.Field("payloadfp", payloadFingerprint)
	return b.Sum()
}

// OpenCache resolves the shared -cache/-cache-dir flag semantics:
// disabled returns no cache at all; enabled without a directory runs
// the in-memory tier only (per-process dedup); a directory adds the
// persistent tier that makes grids resumable across processes.
func OpenCache(enabled bool, dir string) (*resultcache.Cache, error) {
	if !enabled {
		return nil, nil
	}
	return resultcache.Open(dir, 0)
}

func boolStr(v bool) string {
	if v {
		return "true"
	}
	return "false"
}
