package runner

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"protozoa/internal/core"
	"protozoa/internal/workloads"
)

// Grid is the sweep cross product: workloads x protocols x design
// knobs x RMAX region sizes, expanded in row order (workload
// outermost, region innermost) — the order the CSV reports.
type Grid struct {
	Workloads []string
	Protocols []core.Protocol // nil = the full family
	Knobs     []string        // nil = baseline only
	Regions   []int           // nil = the 64 B default
	Cores     int             // 0 = 16
	Scale     int             // 0 = 1
	TraceSeed uint64          // 0 = canonical traces

	// Workers, when > 0, runs each cell's machine with the parallel
	// window loop on that many goroutines (core.Config.Workers);
	// composes with Pool.Jobs, which bounds how many cells run at once.
	// Cell results are byte-identical for every Workers >= 1.
	Workers int
}

// Cells validates the grid and expands it into runnable cells. Every
// vocabulary error — unknown workload or knob, unsupported core count
// — surfaces here, before any simulation runs.
func (g Grid) Cells() ([]Cell, error) {
	if g.Cores == 0 {
		g.Cores = 16
	}
	if g.Scale == 0 {
		g.Scale = 1
	}
	if len(g.Protocols) == 0 {
		g.Protocols = core.AllProtocols
	}
	if len(g.Knobs) == 0 {
		g.Knobs = []string{"baseline"}
	}
	if len(g.Regions) == 0 {
		g.Regions = []int{64}
	}
	var scratch core.Config
	if err := ConfigureCores(&scratch, g.Cores); err != nil {
		return nil, err
	}
	for _, k := range g.Knobs {
		if _, ok := Knobs[k]; !ok {
			return nil, fmt.Errorf("unknown knob %q", k)
		}
	}

	var cells []Cell
	seen := make(map[string]bool)
	for _, w := range g.Workloads {
		spec, err := workloads.Get(strings.TrimSpace(w))
		if err != nil {
			return nil, err
		}
		// A workload repeated on the command line (or two aliases of the
		// same spec) would duplicate every row it expands into; keep the
		// first appearance only.
		if seen[spec.Name] {
			continue
		}
		seen[spec.Name] = true
		for _, p := range g.Protocols {
			for _, knob := range g.Knobs {
				set := Knobs[knob]
				for _, rb := range g.Regions {
					// Resolve the cell's configuration once: the result
					// cache keys on the fully-resolved config, and Build
					// hands a copy of the same value to the machine.
					cfg := core.DefaultConfig(p)
					cfg.RegionBytes = rb
					cfg.Workers = g.Workers
					if err := ConfigureCores(&cfg, g.Cores); err != nil {
						return nil, err
					}
					set(&cfg)
					cells = append(cells, Cell{
						Label:    fmt.Sprintf("%s/%s/%s/r%d", spec.Name, p, knob, rb),
						Workload: spec.Name,
						Protocol: p,
						Knob:     knob,
						Region:   rb,
						Key: CellSpec{
							Config:   cfg,
							Workload: spec.Name,
							Scale:    g.Scale,
							Seed:     g.TraceSeed,
							// Attribution backs the util_pct / wasted_bytes /
							// false_shared_regions CSV columns.
							NeedAttrib: true,
						}.Key(),
						NeedAttrib: true,
						Build: func() (*core.System, error) {
							return core.NewSystem(cfg, spec.StreamsSeeded(g.Cores, g.Scale, g.TraceSeed))
						},
					})
				}
			}
		}
	}
	return cells, nil
}

// CSVHeader is the sweep CSV schema.
var CSVHeader = []string{
	"workload", "protocol", "knob", "region_bytes",
	"misses", "mpki", "traffic_bytes", "used_pct", "flit_hops", "exec_cycles",
	"miss_lat_p50", "miss_lat_p95", "miss_lat_p99",
	"util_pct", "wasted_bytes", "false_shared_regions",
}

// CSVRow renders one completed cell as a sweep CSV record. The
// attribution columns render empty when the cell ran without a
// tracker, so ad-hoc grids stay loadable by the same schema.
func CSVRow(r Result) []string {
	st := r.Stats
	utilPct, wastedBytes, falseShared := "", "", ""
	if tr := r.Attrib; tr != nil {
		utilPct = strconv.FormatFloat(tr.UtilPct(), 'f', 1, 64)
		wastedBytes = strconv.FormatUint(tr.WastedBytes(), 10)
		falseShared = strconv.FormatUint(tr.FalseSharedRegions(), 10)
	}
	return []string{
		r.Cell.Workload, r.Cell.Protocol.String(), r.Cell.Knob, strconv.Itoa(r.Cell.Region),
		strconv.FormatUint(st.L1Misses, 10),
		strconv.FormatFloat(st.MPKI(), 'f', 3, 64),
		strconv.FormatUint(st.TrafficTotal(), 10),
		strconv.FormatFloat(st.UsedPct(), 'f', 1, 64),
		strconv.FormatUint(st.FlitHops, 10),
		strconv.FormatUint(st.ExecCycles, 10),
		strconv.FormatUint(st.MissLatencyP(50), 10),
		strconv.FormatUint(st.MissLatencyP(95), 10),
		strconv.FormatUint(st.MissLatencyP(99), 10),
		utilPct, wastedBytes, falseShared,
	}
}

// WriteCSV emits the header and every completed cell's row in cell
// order, flushing before returning so finished rows survive even when
// other cells failed (the caller reports those separately).
func WriteCSV(w io.Writer, results []Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		if r.Stats == nil {
			// A cell with neither a result nor an error never ran; a
			// silently shorter CSV would misreport the sweep as complete.
			return fmt.Errorf("runner: cell %q has no stats and no error (never ran?)", r.Cell.Label)
		}
		if err := cw.Write(CSVRow(r)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
