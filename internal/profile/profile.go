// Package profile analyzes a workload's access streams without
// simulating a machine: the Section 2 motivation methodology. For each
// region it classifies the sharing pattern (private, read-only shared,
// false shared, true shared) and measures the spatial footprint
// (distinct words touched), the numbers behind the paper's claims that
// storage/communication and coherence granularity need independent,
// per-application regulation.
package profile

import (
	"fmt"
	"strings"

	"protozoa/internal/directory"
	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

// Sharing classifies one region's access pattern.
type Sharing uint8

const (
	// Private: a single core touches the region.
	Private Sharing = iota
	// ReadOnlyShared: several cores touch it, nobody writes.
	ReadOnlyShared
	// FalseShared: several cores touch it and at least one writes, but
	// no single word is touched by two cores with a writer among them —
	// the sharing exists only at region granularity.
	FalseShared
	// TrueShared: some word is accessed by multiple cores with at least
	// one writer: communication the coherence protocol must mediate at
	// any granularity.
	TrueShared
)

// String returns the classification label.
func (s Sharing) String() string {
	switch s {
	case Private:
		return "private"
	case ReadOnlyShared:
		return "read-only"
	case FalseShared:
		return "false-shared"
	case TrueShared:
		return "true-shared"
	}
	return fmt.Sprintf("Sharing(%d)", uint8(s))
}

// Report is a workload's sharing/locality profile.
type Report struct {
	Geom     mem.Geometry
	Accesses uint64
	Loads    uint64
	Stores   uint64

	Regions        int
	RegionsByClass [4]int // indexed by Sharing

	// AccessesByClass attributes every access to its region's class:
	// the paper's observation that false sharing can dominate even when
	// few regions exhibit it.
	AccessesByClass [4]uint64

	// WordsTouchedHist[k-1] counts regions whose lifetime footprint is
	// exactly k distinct words: the upper bound any spatial predictor
	// can exploit.
	WordsTouchedHist [mem.MaxRegionWords]uint64
}

// regionInfo accumulates per-region facts during analysis.
type regionInfo struct {
	cores    directory.NodeSet
	writers  directory.NodeSet
	accesses uint64
	// per-word touched/written core sets
	wordCores   [mem.MaxRegionWords]directory.NodeSet
	wordWriters [mem.MaxRegionWords]directory.NodeSet
}

// Analyze drains the streams and builds the profile. Streams are
// consumed; pass freshly built ones.
func Analyze(streams []trace.Stream, geom mem.Geometry) *Report {
	r := &Report{Geom: geom}
	regions := make(map[mem.RegionID]*regionInfo)
	for coreID, s := range streams {
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if a.Kind == trace.Barrier {
				continue
			}
			r.Accesses++
			if a.Kind == trace.Store {
				r.Stores++
			} else {
				r.Loads++
			}
			reg, w := geom.Region(a.Addr), geom.WordOffset(a.Addr)
			info := regions[reg]
			if info == nil {
				info = &regionInfo{}
				regions[reg] = info
			}
			info.accesses++
			info.cores = info.cores.Add(coreID)
			info.wordCores[w] = info.wordCores[w].Add(coreID)
			if a.Kind == trace.Store {
				info.writers = info.writers.Add(coreID)
				info.wordWriters[w] = info.wordWriters[w].Add(coreID)
			}
		}
	}

	r.Regions = len(regions)
	words := geom.WordsPerRegion()
	for _, info := range regions {
		class := classify(info, words)
		r.RegionsByClass[class]++
		r.AccessesByClass[class] += info.accesses
		touched := 0
		for w := 0; w < words; w++ {
			if !info.wordCores[w].Empty() {
				touched++
			}
		}
		if touched >= 1 {
			r.WordsTouchedHist[touched-1]++
		}
	}
	return r
}

func classify(info *regionInfo, words int) Sharing {
	if info.cores.Count() <= 1 {
		return Private
	}
	if info.writers.Empty() {
		return ReadOnlyShared
	}
	for w := 0; w < words; w++ {
		if info.wordCores[w].Count() > 1 && !info.wordWriters[w].Empty() {
			return TrueShared
		}
	}
	return FalseShared
}

// AvgWordsTouched is the mean lifetime footprint of a touched region,
// in words.
func (r *Report) AvgWordsTouched() float64 {
	var sum, n uint64
	for i, c := range r.WordsTouchedHist {
		sum += uint64(i+1) * c
		n += c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// FootprintPct is the fraction of each touched region's words the
// application ever uses, as a percentage — the upper bound on USED%.
func (r *Report) FootprintPct() float64 {
	return 100 * r.AvgWordsTouched() / float64(r.Geom.WordsPerRegion())
}

// ClassPct returns the fraction of regions in the class, in percent.
func (r *Report) ClassPct(s Sharing) float64 {
	if r.Regions == 0 {
		return 0
	}
	return 100 * float64(r.RegionsByClass[s]) / float64(r.Regions)
}

// AccessPct returns the fraction of accesses hitting the class.
func (r *Report) AccessPct(s Sharing) float64 {
	if r.Accesses == 0 {
		return 0
	}
	return 100 * float64(r.AccessesByClass[s]) / float64(r.Accesses)
}

// Render formats the profile as a table.
func (r *Report) Render(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile %s: %d accesses (%d loads, %d stores), %d regions touched\n",
		name, r.Accesses, r.Loads, r.Stores, r.Regions)
	fmt.Fprintf(&b, "  %-14s %10s %10s\n", "sharing", "regions", "accesses")
	for s := Private; s <= TrueShared; s++ {
		fmt.Fprintf(&b, "  %-14s %9.1f%% %9.1f%%\n", s, r.ClassPct(s), r.AccessPct(s))
	}
	fmt.Fprintf(&b, "  region footprint: %.1f of %d words (%.0f%%)\n",
		r.AvgWordsTouched(), r.Geom.WordsPerRegion(), r.FootprintPct())
	return b.String()
}
