package profile

import (
	"strings"
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
	"protozoa/internal/workloads"
)

func streamsOf(recs ...[]trace.Access) []trace.Stream {
	out := make([]trace.Stream, len(recs))
	for i, r := range recs {
		out[i] = trace.NewSliceStream(r)
	}
	return out
}

func ld(a mem.Addr) trace.Access { return trace.Access{Kind: trace.Load, Addr: a, PC: 1} }
func st(a mem.Addr) trace.Access { return trace.Access{Kind: trace.Store, Addr: a, PC: 2} }

func TestClassifyPrivate(t *testing.T) {
	r := Analyze(streamsOf(
		[]trace.Access{ld(0x0), st(0x8)},
		[]trace.Access{ld(0x40)},
	), mem.DefaultGeometry)
	if r.RegionsByClass[Private] != 2 || r.Regions != 2 {
		t.Errorf("regions = %d, private = %d, want 2/2", r.Regions, r.RegionsByClass[Private])
	}
}

func TestClassifyReadOnlyShared(t *testing.T) {
	r := Analyze(streamsOf(
		[]trace.Access{ld(0x0)},
		[]trace.Access{ld(0x8)},
	), mem.DefaultGeometry)
	if r.RegionsByClass[ReadOnlyShared] != 1 {
		t.Errorf("read-only = %d, want 1", r.RegionsByClass[ReadOnlyShared])
	}
}

func TestClassifyFalseShared(t *testing.T) {
	// Two cores write disjoint words of one region.
	r := Analyze(streamsOf(
		[]trace.Access{st(0x0)},
		[]trace.Access{st(0x8)},
	), mem.DefaultGeometry)
	if r.RegionsByClass[FalseShared] != 1 {
		t.Errorf("false-shared = %d, want 1", r.RegionsByClass[FalseShared])
	}
}

func TestClassifyTrueShared(t *testing.T) {
	// One core writes a word another reads.
	r := Analyze(streamsOf(
		[]trace.Access{st(0x0)},
		[]trace.Access{ld(0x0)},
	), mem.DefaultGeometry)
	if r.RegionsByClass[TrueShared] != 1 {
		t.Errorf("true-shared = %d, want 1", r.RegionsByClass[TrueShared])
	}
	// Reader-reader on a word with a writer elsewhere in the region is
	// still false sharing.
	r = Analyze(streamsOf(
		[]trace.Access{st(0x0), ld(0x10)},
		[]trace.Access{ld(0x10)},
	), mem.DefaultGeometry)
	if r.RegionsByClass[FalseShared] != 1 {
		t.Errorf("false-shared = %d, want 1 (shared word has no writer)", r.RegionsByClass[FalseShared])
	}
}

func TestFootprintHistogram(t *testing.T) {
	r := Analyze(streamsOf(
		[]trace.Access{ld(0x0), ld(0x8), ld(0x10)}, // 3 words of region 0
		[]trace.Access{ld(0x40)},                   // 1 word of region 1
	), mem.DefaultGeometry)
	if r.WordsTouchedHist[2] != 1 || r.WordsTouchedHist[0] != 1 {
		t.Errorf("hist = %v", r.WordsTouchedHist)
	}
	if got := r.AvgWordsTouched(); got != 2 {
		t.Errorf("AvgWordsTouched = %v, want 2", got)
	}
	if got := r.FootprintPct(); got != 25 {
		t.Errorf("FootprintPct = %v, want 25", got)
	}
}

func TestBarriersIgnored(t *testing.T) {
	r := Analyze(streamsOf(
		[]trace.Access{{Kind: trace.Barrier}, ld(0x0)},
	), mem.DefaultGeometry)
	if r.Accesses != 1 {
		t.Errorf("accesses = %d, want 1", r.Accesses)
	}
}

func TestSharingString(t *testing.T) {
	for s, want := range map[Sharing]string{
		Private: "private", ReadOnlyShared: "read-only",
		FalseShared: "false-shared", TrueShared: "true-shared",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestRender(t *testing.T) {
	r := Analyze(streamsOf([]trace.Access{st(0x0)}), mem.DefaultGeometry)
	out := r.Render("demo")
	for _, want := range []string{"demo", "private", "false-shared", "footprint"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

// Workload signatures, the Section 2 motivation numbers.

func TestWorkloadProfiles(t *testing.T) {
	profile := func(name string) *Report {
		return Analyze(workloads.MustGet(name).Streams(16, 1), mem.DefaultGeometry)
	}

	lr := profile("linear-regression")
	if lr.AccessesByClass[FalseShared] == 0 {
		t.Error("linear-regression shows no false-shared accesses")
	}
	if lr.AccessPct(TrueShared) > 5 {
		t.Errorf("linear-regression true-shared accesses = %.1f%%, want ~0", lr.AccessPct(TrueShared))
	}

	mm := profile("matrix-multiply")
	if mm.ClassPct(Private) < 99 {
		t.Errorf("matrix-multiply private regions = %.1f%%, want ~100", mm.ClassPct(Private))
	}
	if mm.FootprintPct() < 90 {
		t.Errorf("matrix-multiply footprint = %.1f%%, want ~100", mm.FootprintPct())
	}

	bs := profile("blackscholes")
	if bs.FootprintPct() > 40 {
		t.Errorf("blackscholes footprint = %.1f%%, want sparse", bs.FootprintPct())
	}

	sc := profile("streamcluster")
	if sc.ClassPct(ReadOnlyShared) < 30 {
		t.Errorf("streamcluster read-only shared regions = %.1f%%, want large", sc.ClassPct(ReadOnlyShared))
	}

	sm := profile("string-match")
	if sm.RegionsByClass[FalseShared] == 0 {
		t.Error("string-match shows no false-shared regions")
	}
}
