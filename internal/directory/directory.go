// Package directory provides the sharer-tracking primitives of the
// in-cache coherence directory. As in the paper, sharers are tracked
// at REGION granularity with a precise P-bit vector (16 bits for the
// 16-core configuration). Protozoa-MW doubles the entry by keeping a
// second vector that distinguishes writers (owners) from readers;
// Protozoa-SW+MR needs only the single-writer identity.
package directory

import (
	"fmt"
	"strings"
)

// NodeSet is a bit vector of up to 32 node IDs.
type NodeSet uint32

// MaxNodes is the largest node ID a NodeSet can hold plus one.
const MaxNodes = 32

// Add returns the set with node i added.
func (s NodeSet) Add(i int) NodeSet { return s | 1<<uint(i) }

// Remove returns the set with node i removed.
func (s NodeSet) Remove(i int) NodeSet { return s &^ (1 << uint(i)) }

// Has reports whether node i is in the set.
func (s NodeSet) Has(i int) bool { return s&(1<<uint(i)) != 0 }

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool { return s == 0 }

// Count returns the number of members.
func (s NodeSet) Count() int {
	n := 0
	for v := s; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// Only reports whether the set contains exactly node i.
func (s NodeSet) Only(i int) bool { return s == 1<<uint(i) }

// Without returns the set minus every member of o.
func (s NodeSet) Without(o NodeSet) NodeSet { return s &^ o }

// Union returns the union of two sets.
func (s NodeSet) Union(o NodeSet) NodeSet { return s | o }

// ForEach calls fn for every member in ascending node order.
func (s NodeSet) ForEach(fn func(i int)) {
	for i := 0; i < MaxNodes; i++ {
		if s.Has(i) {
			fn(i)
		}
	}
}

// String renders the set like "{0,3,7}".
func (s NodeSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
