package directory

import (
	"testing"
	"testing/quick"
)

func TestAddRemoveHas(t *testing.T) {
	var s NodeSet
	s = s.Add(3).Add(15).Add(0)
	if !s.Has(3) || !s.Has(15) || !s.Has(0) || s.Has(1) {
		t.Error("Add/Has wrong")
	}
	s = s.Remove(3)
	if s.Has(3) || s.Count() != 2 {
		t.Error("Remove wrong")
	}
	s = s.Remove(3) // idempotent
	if s.Count() != 2 {
		t.Error("double Remove changed the set")
	}
}

func TestEmptyAndOnly(t *testing.T) {
	var s NodeSet
	if !s.Empty() {
		t.Error("zero set not empty")
	}
	s = s.Add(5)
	if s.Empty() || !s.Only(5) || s.Only(4) {
		t.Error("Only wrong")
	}
	s = s.Add(6)
	if s.Only(5) {
		t.Error("Only true with two members")
	}
}

func TestWithoutAndUnion(t *testing.T) {
	a := NodeSet(0).Add(1).Add(2).Add(3)
	b := NodeSet(0).Add(2).Add(4)
	if got := a.Without(b); got.Has(2) || !got.Has(1) || !got.Has(3) {
		t.Errorf("Without = %v", got)
	}
	if got := a.Union(b); got.Count() != 4 {
		t.Errorf("Union count = %d, want 4", got.Count())
	}
}

func TestForEachAscending(t *testing.T) {
	s := NodeSet(0).Add(7).Add(1).Add(31)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{1, 7, 31}
	if len(got) != 3 {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	if got := (NodeSet(0).Add(0).Add(3)).String(); got != "{0,3}" {
		t.Errorf("String = %q, want {0,3}", got)
	}
	if got := NodeSet(0).String(); got != "{}" {
		t.Errorf("String = %q, want {}", got)
	}
}

func TestQuickCountMatchesMembership(t *testing.T) {
	f := func(v uint32) bool {
		s := NodeSet(v)
		n := 0
		for i := 0; i < MaxNodes; i++ {
			if s.Has(i) {
				n++
			}
		}
		return n == s.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddRemoveInverse(t *testing.T) {
	f := func(v uint32, i uint8) bool {
		node := int(i) % MaxNodes
		s := NodeSet(v)
		return s.Add(node).Remove(node) == s.Remove(node)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
