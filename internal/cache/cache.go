// Package cache implements the private L1 storage used by every
// protocol in the family: an Amoeba-Cache (Kumar et al., MICRO 2012)
// that stores variable-granularity blocks, each a 4-tuple
// <Region tag, Start, End, Data> whose boundaries never cross a REGION.
//
// Capacity is modeled the way the Amoeba paper charges it: each set has
// a byte budget (288 B in Table 4) and every resident block costs its
// data bytes plus a tag overhead (8 B), so fine-grain blocks let a set
// hold more useful words while coarse blocks amortize the tag. A
// fixed-granularity cache for the MESI baseline is the degenerate case
// in which every block covers the full region: with 64-byte regions a
// 288-byte set holds exactly 4 ways.
//
// The package also provides the multi-step snoop support of Section
// 3.1/Figure 3: ExtractOverlapping is the CHECK + GATHER sequence that
// removes every resident sub-block overlapping a coherence request so
// the protocol can treat them as a single writeback.
package cache

import (
	"fmt"

	"protozoa/internal/mem"
)

// State is a block's MESI stable state. Transient states live in the
// L1 controller's MSHRs, not in the storage.
type State uint8

const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns the one-letter state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Dirty reports whether the state implies dirty data.
func (s State) Dirty() bool { return s == Modified }

// Block is one resident Amoeba block.
type Block struct {
	Region    mem.RegionID
	R         mem.Range
	State     State
	Touched   mem.Bitmap // words accessed by the core since fill
	FetchPC   uint64     // PC of the miss that fetched the block (predictor training)
	FetchWord uint8      // word offset of the miss that fetched the block
	Data      []uint64   // word values, len == R.Words()

	lru uint64
}

// Word returns the value of word w (region offset), which must lie in
// the block's range.
func (b *Block) Word(w uint8) uint64 {
	return b.Data[w-b.R.Start]
}

// SetWord stores v into word w, which must lie in the block's range.
func (b *Block) SetWord(w uint8, v uint64) {
	b.Data[w-b.R.Start] = v
}

// Touch marks word w as used by the core.
func (b *Block) Touch(w uint8) {
	b.Touched = b.Touched.Set(w)
}

// UsedWords reports how many of the block's words the core touched.
func (b *Block) UsedWords() int { return b.Touched.CountIn(b.R) }

// Config sizes a cache.
type Config struct {
	Sets           int // number of sets; blocks of a region map to one set
	SetBudgetBytes int // storage budget per set, tags included
	TagBytes       int // per-block tag/metadata overhead
	Geom           mem.Geometry

	// MergeBlocks coalesces a freshly inserted block with adjacent
	// same-state blocks of its region, as the Amoeba-Cache hardware
	// does: fragments left by partial fills re-join, saving one tag per
	// merge and keeping lookups short.
	MergeBlocks bool
}

// DefaultL1Config is Table 4's Amoeba L1: 256 sets x 288 B/set with
// 8-byte tags over 64-byte regions.
func DefaultL1Config() Config {
	return Config{Sets: 256, SetBudgetBytes: 288, TagBytes: 8, Geom: mem.DefaultGeometry}
}

type set struct {
	blocks    []*Block
	bytesUsed int
}

// Cache is a single private L1's storage. Not safe for concurrent use.
type Cache struct {
	cfg  Config
	sets []set
	tick uint64

	// Reusable result buffers for the snoop-query methods, so the
	// protocol hot path performs no per-query slice allocations. Each
	// method documents that its result is valid only until its next
	// call; the three are separate because a snoop holds an extraction
	// result while issuing region queries.
	regionScratch  []*Block // BlocksInRegion
	extractScratch []Block  // ExtractOverlapping / ExtractRegion
	victimScratch  []Block  // Insert
}

// New builds a cache. The set budget must fit at least one full-region
// block so fixed-granularity configurations are always serviceable.
func New(cfg Config) (*Cache, error) {
	if cfg.Sets <= 0 {
		return nil, fmt.Errorf("cache: bad set count %d", cfg.Sets)
	}
	minBudget := cfg.TagBytes + cfg.Geom.RegionBytes
	if cfg.SetBudgetBytes < minBudget {
		return nil, fmt.Errorf("cache: set budget %d cannot hold one full region (%d)", cfg.SetBudgetBytes, minBudget)
	}
	return &Cache{cfg: cfg, sets: make([]set, cfg.Sets)}, nil
}

// MustNew is New for known-good configurations.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Cost is the storage charge for a block covering range r.
func (c *Cache) Cost(r mem.Range) int { return c.cfg.TagBytes + r.Bytes() }

func (c *Cache) setFor(region mem.RegionID) *set {
	return &c.sets[uint64(region)%uint64(c.cfg.Sets)]
}

// Lookup finds the block holding word w of the region, bumping its LRU
// recency. It returns nil on miss.
func (c *Cache) Lookup(region mem.RegionID, w uint8) *Block {
	s := c.setFor(region)
	for _, b := range s.blocks {
		if b.Region == region && b.R.Contains(w) {
			c.tick++
			b.lru = c.tick
			return b
		}
	}
	return nil
}

// Peek is Lookup without the LRU update.
func (c *Cache) Peek(region mem.RegionID, w uint8) *Block {
	for _, b := range c.setFor(region).blocks {
		if b.Region == region && b.R.Contains(w) {
			return b
		}
	}
	return nil
}

// BlocksInRegion returns the resident blocks of a region (the CHECK
// step of a multi-block snoop). The returned slice is reused by the
// next BlocksInRegion call; the Block pointers themselves stay valid
// until the next mutation.
func (c *Cache) BlocksInRegion(region mem.RegionID) []*Block {
	out := c.regionScratch[:0]
	for _, b := range c.setFor(region).blocks {
		if b.Region == region {
			out = append(out, b)
		}
	}
	c.regionScratch = out
	return out
}

// HasRegion reports whether any block of the region is resident.
func (c *Cache) HasRegion(region mem.RegionID) bool {
	for _, b := range c.setFor(region).blocks {
		if b.Region == region {
			return true
		}
	}
	return false
}

// TrimFill shrinks a predicted fill range so it does not overlap any
// resident block of the region while still containing the missing word
// w. The Protozoa protocols never create overlapping blocks: a fill
// that would overlap a resident sub-block is trimmed to the free gap
// around the miss word.
func (c *Cache) TrimFill(region mem.RegionID, want mem.Range, w uint8) mem.Range {
	if !want.Contains(w) {
		want = want.Span(mem.OneWord(w))
	}
	resident := mem.Bitmap(0)
	for _, b := range c.setFor(region).blocks {
		if b.Region == region {
			resident = resident.Union(b.R.Bitmap())
		}
	}
	start, end := w, w
	for start > want.Start && !resident.Has(start-1) {
		start--
	}
	for end < want.End && !resident.Has(end+1) {
		end++
	}
	return mem.Range{Start: start, End: end}
}

// Insert places a new block, evicting least-recently-used blocks from
// the set until it fits. Victims are returned for the protocol to
// write back (if dirty) or drop silently (if clean). Insert panics if
// the block would overlap a resident block of the same region — the
// protocol must TrimFill first — or if its range is invalid.
func (c *Cache) Insert(b Block) []Block {
	if !b.R.Valid(c.cfg.Geom) {
		panic(fmt.Sprintf("cache: invalid range %v", b.R))
	}
	if len(b.Data) != b.R.Words() {
		panic(fmt.Sprintf("cache: data length %d != range words %d", len(b.Data), b.R.Words()))
	}
	s := c.setFor(b.Region)
	for _, rb := range s.blocks {
		if rb.Region == b.Region && rb.R.Overlaps(b.R) {
			panic(fmt.Sprintf("cache: inserting %v overlaps resident %v in region %d", b.R, rb.R, b.Region))
		}
	}
	cost := c.Cost(b.R)
	victims := c.victimScratch[:0]
	for s.bytesUsed+cost > c.cfg.SetBudgetBytes {
		v := c.evictLRU(s)
		if v == nil {
			panic("cache: set budget exhausted with no victims")
		}
		victims = append(victims, *v)
	}
	c.victimScratch = victims
	c.tick++
	nb := b
	nb.lru = c.tick
	s.blocks = append(s.blocks, &nb)
	s.bytesUsed += cost
	if c.cfg.MergeBlocks {
		c.mergeAround(s, &nb)
	}
	return victims
}

// mergeAround coalesces the freshly inserted block with same-region,
// same-state blocks exactly adjacent to it, repeating until no
// neighbour qualifies. Merging never overlaps (the non-overlap
// invariant holds before and after) and releases one tag per merge.
func (c *Cache) mergeAround(s *set, nb *Block) {
	for {
		merged := false
		for i, ob := range s.blocks {
			if ob == nb || ob.Region != nb.Region || ob.State != nb.State {
				continue
			}
			var lo, hi *Block
			switch {
			case ob.R.End+1 == nb.R.Start:
				lo, hi = ob, nb
			case nb.R.End+1 == ob.R.Start:
				lo, hi = nb, ob
			default:
				continue
			}
			// Splice the two data arrays and union the metadata into nb.
			data := make([]uint64, 0, lo.R.Words()+hi.R.Words())
			data = append(data, lo.Data...)
			data = append(data, hi.Data...)
			nb.R = mem.Range{Start: lo.R.Start, End: hi.R.End}
			nb.Data = data
			nb.Touched = lo.Touched.Union(hi.Touched)
			// Remove the absorbed block; one tag's bytes come back.
			s.blocks = append(s.blocks[:i], s.blocks[i+1:]...)
			s.bytesUsed -= c.cfg.TagBytes
			merged = true
			break
		}
		if !merged {
			return
		}
	}
}

func (c *Cache) evictLRU(s *set) *Block {
	if len(s.blocks) == 0 {
		return nil
	}
	vi := 0
	for i, b := range s.blocks {
		if b.lru < s.blocks[vi].lru {
			vi = i
		}
	}
	v := s.blocks[vi]
	s.blocks = append(s.blocks[:vi], s.blocks[vi+1:]...)
	s.bytesUsed -= c.Cost(v.R)
	return v
}

// ExtractOverlapping removes and returns every resident block of the
// region overlapping r: the CHECK + GATHER steps of Figure 3. The
// protocol treats the gathered blocks as a single coherence operation.
// The returned slice is reused by the next Extract* call.
func (c *Cache) ExtractOverlapping(region mem.RegionID, r mem.Range) []Block {
	s := c.setFor(region)
	out := c.extractScratch[:0]
	kept := s.blocks[:0]
	for _, b := range s.blocks {
		if b.Region == region && b.R.Overlaps(r) {
			out = append(out, *b)
			s.bytesUsed -= c.Cost(b.R)
		} else {
			kept = append(kept, b)
		}
	}
	s.blocks = kept
	c.extractScratch = out
	return out
}

// ExtractRegion removes and returns every resident block of the region
// (a full-region snoop, as in MESI and Protozoa-SW invalidations).
func (c *Cache) ExtractRegion(region mem.RegionID) []Block {
	return c.ExtractOverlapping(region, c.cfg.Geom.FullRange())
}

// Remove removes the specific resident block (identified by region and
// exact range). It reports whether the block was found.
func (c *Cache) Remove(region mem.RegionID, r mem.Range) bool {
	s := c.setFor(region)
	for i, b := range s.blocks {
		if b.Region == region && b.R == r {
			s.blocks = append(s.blocks[:i], s.blocks[i+1:]...)
			s.bytesUsed -= c.Cost(b.R)
			return true
		}
	}
	return false
}

// Blocks calls fn for every resident block; used for end-of-run
// classification and invariant checks.
func (c *Cache) Blocks(fn func(*Block)) {
	for i := range c.sets {
		for _, b := range c.sets[i].blocks {
			fn(b)
		}
	}
}

// Usage reports the live utilization view: how many data words are
// resident and how many of those the core has touched since their
// fill — the instantaneous counterpart of the end-of-life used/unused
// classification.
func (c *Cache) Usage() (resident, touched int) {
	for i := range c.sets {
		for _, b := range c.sets[i].blocks {
			resident += b.R.Words()
			touched += b.UsedWords()
		}
	}
	return resident, touched
}

// BytesUsed reports the current storage occupancy, tags included.
func (c *Cache) BytesUsed() int {
	t := 0
	for i := range c.sets {
		t += c.sets[i].bytesUsed
	}
	return t
}

// CheckInvariants validates the structural invariants: ranges valid,
// no overlapping blocks within a region, set byte accounting exact,
// and every block mapped to its home set. It returns the first
// violation found.
func (c *Cache) CheckInvariants() error {
	for si := range c.sets {
		s := &c.sets[si]
		bytes := 0
		for i, b := range s.blocks {
			if !b.R.Valid(c.cfg.Geom) {
				return fmt.Errorf("set %d: block %d has invalid range %v", si, i, b.R)
			}
			if int(uint64(b.Region)%uint64(c.cfg.Sets)) != si {
				return fmt.Errorf("set %d: block region %d mapped to wrong set", si, b.Region)
			}
			if len(b.Data) != b.R.Words() {
				return fmt.Errorf("set %d: block %d data/range mismatch", si, i)
			}
			bytes += c.Cost(b.R)
			for j := i + 1; j < len(s.blocks); j++ {
				ob := s.blocks[j]
				if ob.Region == b.Region && ob.R.Overlaps(b.R) {
					return fmt.Errorf("set %d: overlapping blocks %v and %v in region %d", si, b.R, ob.R, b.Region)
				}
			}
		}
		if bytes != s.bytesUsed {
			return fmt.Errorf("set %d: bytesUsed %d != actual %d", si, s.bytesUsed, bytes)
		}
		if s.bytesUsed > c.cfg.SetBudgetBytes {
			return fmt.Errorf("set %d: over budget: %d > %d", si, s.bytesUsed, c.cfg.SetBudgetBytes)
		}
	}
	return nil
}
