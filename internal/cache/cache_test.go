package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"protozoa/internal/mem"
)

func mkBlock(region mem.RegionID, r mem.Range, st State) Block {
	return Block{Region: region, R: r, State: st, Data: make([]uint64, r.Words())}
}

func small(t *testing.T) *Cache {
	t.Helper()
	// 1 set, budget for exactly two full-region blocks (2 x (8+64)).
	return MustNew(Config{Sets: 1, SetBudgetBytes: 144, TagBytes: 8, Geom: mem.DefaultGeometry})
}

func TestNewRejectsBadConfigs(t *testing.T) {
	if _, err := New(Config{Sets: 0, SetBudgetBytes: 288, TagBytes: 8, Geom: mem.DefaultGeometry}); err == nil {
		t.Error("zero sets accepted")
	}
	if _, err := New(Config{Sets: 4, SetBudgetBytes: 32, TagBytes: 8, Geom: mem.DefaultGeometry}); err == nil {
		t.Error("budget below one region accepted")
	}
}

func TestInsertAndLookup(t *testing.T) {
	c := small(t)
	c.Insert(mkBlock(7, mem.Range{Start: 2, End: 5}, Shared))
	if b := c.Lookup(7, 3); b == nil || b.R != (mem.Range{Start: 2, End: 5}) {
		t.Fatal("Lookup(7,3) missed")
	}
	if c.Lookup(7, 1) != nil {
		t.Error("Lookup(7,1) hit outside the block range")
	}
	if c.Lookup(8, 3) != nil {
		t.Error("Lookup(8,3) hit the wrong region")
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
	if !Modified.Dirty() || Shared.Dirty() {
		t.Error("Dirty() wrong")
	}
}

func TestWordAccess(t *testing.T) {
	b := mkBlock(1, mem.Range{Start: 2, End: 5}, Modified)
	b.SetWord(3, 42)
	if b.Word(3) != 42 {
		t.Errorf("Word(3) = %d, want 42", b.Word(3))
	}
	b.Touch(3)
	b.Touch(5)
	if b.UsedWords() != 2 {
		t.Errorf("UsedWords = %d, want 2", b.UsedWords())
	}
}

func TestInsertOverlapPanics(t *testing.T) {
	c := small(t)
	c.Insert(mkBlock(7, mem.Range{Start: 2, End: 5}, Shared))
	defer func() {
		if recover() == nil {
			t.Error("overlapping insert did not panic")
		}
	}()
	c.Insert(mkBlock(7, mem.Range{Start: 5, End: 7}, Shared))
}

func TestInsertEvictsLRU(t *testing.T) {
	c := small(t)
	full := mem.DefaultGeometry.FullRange()
	c.Insert(mkBlock(1, full, Shared))
	c.Insert(mkBlock(2, full, Modified))
	c.Lookup(1, 0) // make region 1 most recently used
	victims := c.Insert(mkBlock(3, full, Shared))
	if len(victims) != 1 || victims[0].Region != 2 {
		t.Fatalf("victims = %+v, want region 2 evicted", victims)
	}
	if !c.HasRegion(1) || c.HasRegion(2) || !c.HasRegion(3) {
		t.Error("wrong residency after eviction")
	}
}

func TestInsertEvictsMultipleSmallBlocks(t *testing.T) {
	// Budget 144: five 2-word blocks cost 5 x 24 = 120. A full-region
	// block costs 72, so two 24-byte victims must go (120+72-144 = 48).
	c := small(t)
	for i := 0; i < 5; i++ {
		r := mem.Range{Start: uint8(i), End: uint8(i + 1)}
		c.Insert(mkBlock(mem.RegionID(i+10), r, Shared))
	}
	victims := c.Insert(mkBlock(99, mem.DefaultGeometry.FullRange(), Shared))
	if len(victims) != 2 {
		t.Fatalf("victims = %d, want 2", len(victims))
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrimFill(t *testing.T) {
	c := small(t)
	c.Insert(mkBlock(5, mem.Range{Start: 1, End: 3}, Shared))
	full := mem.DefaultGeometry.FullRange()
	// Miss on word 5 wanting 0-7: resident 1-3 trims the left side.
	got := c.TrimFill(5, full, 5)
	if got != (mem.Range{Start: 4, End: 7}) {
		t.Errorf("TrimFill = %v, want {4,7}", got)
	}
	// Miss on word 0: only word 0 free to the left.
	got = c.TrimFill(5, full, 0)
	if got != (mem.Range{Start: 0, End: 0}) {
		t.Errorf("TrimFill = %v, want {0,0}", got)
	}
	// Empty region: no trimming.
	if got := c.TrimFill(6, full, 4); got != full {
		t.Errorf("TrimFill on empty region = %v, want full", got)
	}
	// Want range not containing the miss word gets widened first.
	got = c.TrimFill(6, mem.Range{Start: 0, End: 1}, 5)
	if !got.Contains(5) {
		t.Errorf("TrimFill must contain the miss word, got %v", got)
	}
}

func TestExtractOverlapping(t *testing.T) {
	c := small(t)
	c.Insert(mkBlock(9, mem.Range{Start: 1, End: 3}, Modified))
	c.Insert(mkBlock(9, mem.Range{Start: 5, End: 6}, Modified))
	before := c.BytesUsed()
	got := c.ExtractOverlapping(9, mem.Range{Start: 0, End: 7})
	if len(got) != 2 {
		t.Fatalf("extracted %d blocks, want 2 (Figure 3 writeback)", len(got))
	}
	if c.HasRegion(9) {
		t.Error("region still resident after full extract")
	}
	if c.BytesUsed() >= before {
		t.Error("bytes not released")
	}
}

func TestExtractOverlappingPartial(t *testing.T) {
	c := small(t)
	c.Insert(mkBlock(9, mem.Range{Start: 1, End: 3}, Modified))
	c.Insert(mkBlock(9, mem.Range{Start: 5, End: 6}, Shared))
	got := c.ExtractOverlapping(9, mem.Range{Start: 0, End: 2})
	if len(got) != 1 || got[0].R != (mem.Range{Start: 1, End: 3}) {
		t.Fatalf("extracted %+v, want only the 1-3 block", got)
	}
	if len(c.BlocksInRegion(9)) != 1 {
		t.Error("non-overlapping block should remain")
	}
}

func TestExtractRegion(t *testing.T) {
	c := small(t)
	c.Insert(mkBlock(9, mem.Range{Start: 1, End: 3}, Modified))
	c.Insert(mkBlock(9, mem.Range{Start: 5, End: 6}, Shared))
	if got := c.ExtractRegion(9); len(got) != 2 {
		t.Fatalf("ExtractRegion returned %d blocks, want 2", len(got))
	}
}

func TestRemove(t *testing.T) {
	c := small(t)
	c.Insert(mkBlock(9, mem.Range{Start: 1, End: 3}, Shared))
	if !c.Remove(9, mem.Range{Start: 1, End: 3}) {
		t.Fatal("Remove failed on resident block")
	}
	if c.Remove(9, mem.Range{Start: 1, End: 3}) {
		t.Fatal("Remove succeeded twice")
	}
	if c.BytesUsed() != 0 {
		t.Error("bytes not released by Remove")
	}
}

func TestPeekDoesNotBumpLRU(t *testing.T) {
	c := small(t)
	full := mem.DefaultGeometry.FullRange()
	c.Insert(mkBlock(1, full, Shared))
	c.Insert(mkBlock(2, full, Shared))
	c.Peek(1, 0) // must NOT protect region 1
	victims := c.Insert(mkBlock(3, full, Shared))
	if len(victims) != 1 || victims[0].Region != 1 {
		t.Fatalf("victims = %+v, want region 1 (Peek must not touch LRU)", victims)
	}
}

func TestSetIndexingSeparatesRegions(t *testing.T) {
	c := MustNew(Config{Sets: 4, SetBudgetBytes: 144, TagBytes: 8, Geom: mem.DefaultGeometry})
	full := mem.DefaultGeometry.FullRange()
	// Regions 0..7 spread over 4 sets; each set fits two full blocks, so
	// no evictions should occur.
	for i := 0; i < 8; i++ {
		if v := c.Insert(mkBlock(mem.RegionID(i), full, Shared)); len(v) != 0 {
			t.Fatalf("unexpected eviction inserting region %d", i)
		}
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultL1ConfigWays(t *testing.T) {
	c := MustNew(DefaultL1Config())
	full := mem.DefaultGeometry.FullRange()
	// Regions i*256 all map to set 0; the 288-byte budget holds exactly
	// four full 64-byte blocks (4 x 72 = 288).
	for i := 0; i < 4; i++ {
		if v := c.Insert(mkBlock(mem.RegionID(i*256), full, Shared)); len(v) != 0 {
			t.Fatalf("eviction at way %d", i)
		}
	}
	if v := c.Insert(mkBlock(mem.RegionID(4*256), full, Shared)); len(v) != 1 {
		t.Fatalf("fifth way fit: victims = %d, want 1", len(v))
	}
}

func TestQuickInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(Config{Sets: 4, SetBudgetBytes: 160, TagBytes: 8, Geom: mem.DefaultGeometry})
		for op := 0; op < 300; op++ {
			region := mem.RegionID(rng.Intn(16))
			w := uint8(rng.Intn(8))
			switch rng.Intn(3) {
			case 0: // fill
				want := c.TrimFill(region, mem.DefaultGeometry.FullRange(), w)
				if c.Peek(region, w) == nil {
					c.Insert(mkBlock(region, want, State(1+rng.Intn(3))))
				}
			case 1: // snoop
				start := uint8(rng.Intn(8))
				end := start + uint8(rng.Intn(8-int(start)))
				c.ExtractOverlapping(region, mem.Range{Start: start, End: end})
			case 2: // lookup
				c.Lookup(region, w)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQuickTrimFillNeverOverlapsResident(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(Config{Sets: 1, SetBudgetBytes: 288, TagBytes: 8, Geom: mem.DefaultGeometry})
		region := mem.RegionID(3)
		for i := 0; i < 8; i++ {
			w := uint8(rng.Intn(8))
			if c.Peek(region, w) != nil {
				continue
			}
			r := c.TrimFill(region, mem.DefaultGeometry.FullRange(), w)
			if !r.Contains(w) {
				return false
			}
			for _, b := range c.BlocksInRegion(region) {
				if b.R.Overlaps(r) {
					return false
				}
			}
			c.Insert(mkBlock(region, r, Shared))
		}
		return c.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
