package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"protozoa/internal/mem"
)

func merging(t *testing.T) *Cache {
	t.Helper()
	return MustNew(Config{Sets: 1, SetBudgetBytes: 288, TagBytes: 8, Geom: mem.DefaultGeometry, MergeBlocks: true})
}

func TestMergeAdjacentSameState(t *testing.T) {
	c := merging(t)
	c.Insert(mkBlock(5, mem.Range{Start: 0, End: 2}, Shared))
	c.Insert(mkBlock(5, mem.Range{Start: 3, End: 5}, Shared))
	blocks := c.BlocksInRegion(5)
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 merged", len(blocks))
	}
	if blocks[0].R != (mem.Range{Start: 0, End: 5}) {
		t.Errorf("merged range = %v, want {0,5}", blocks[0].R)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeReleasesTagBytes(t *testing.T) {
	c := merging(t)
	c.Insert(mkBlock(5, mem.Range{Start: 0, End: 2}, Shared))
	before := c.BytesUsed()
	c.Insert(mkBlock(5, mem.Range{Start: 3, End: 5}, Shared))
	// Second block adds tag+24 data bytes, then merging releases the tag.
	if got := c.BytesUsed(); got != before+24 {
		t.Errorf("bytes = %d, want %d (one tag released)", got, before+24)
	}
}

func TestMergePreservesDataAndTouch(t *testing.T) {
	c := merging(t)
	b1 := mkBlock(5, mem.Range{Start: 0, End: 1}, Modified)
	b1.Data[0], b1.Data[1] = 10, 11
	b1.Touched = b1.Touched.Set(0)
	c.Insert(b1)
	b2 := mkBlock(5, mem.Range{Start: 2, End: 3}, Modified)
	b2.Data[0], b2.Data[1] = 12, 13
	b2.Touched = b2.Touched.Set(3)
	c.Insert(b2)
	m := c.BlocksInRegion(5)[0]
	for w, want := range map[uint8]uint64{0: 10, 1: 11, 2: 12, 3: 13} {
		if got := m.Word(w); got != want {
			t.Errorf("word %d = %d, want %d", w, got, want)
		}
	}
	if !m.Touched.Has(0) || !m.Touched.Has(3) || m.Touched.Has(1) {
		t.Errorf("touched bitmap = %b", m.Touched)
	}
}

func TestNoMergeAcrossStates(t *testing.T) {
	c := merging(t)
	c.Insert(mkBlock(5, mem.Range{Start: 0, End: 2}, Shared))
	c.Insert(mkBlock(5, mem.Range{Start: 3, End: 5}, Modified))
	if n := len(c.BlocksInRegion(5)); n != 2 {
		t.Errorf("blocks = %d, want 2 (states differ)", n)
	}
}

func TestNoMergeAcrossGapsOrRegions(t *testing.T) {
	c := merging(t)
	c.Insert(mkBlock(5, mem.Range{Start: 0, End: 1}, Shared))
	c.Insert(mkBlock(5, mem.Range{Start: 3, End: 4}, Shared)) // gap at word 2
	c.Insert(mkBlock(6, mem.Range{Start: 2, End: 2}, Shared)) // other region
	if n := len(c.BlocksInRegion(5)); n != 2 {
		t.Errorf("region 5 blocks = %d, want 2", n)
	}
	if n := len(c.BlocksInRegion(6)); n != 1 {
		t.Errorf("region 6 blocks = %d, want 1", n)
	}
}

func TestMergeChains(t *testing.T) {
	// Filling the middle gap must collapse three fragments into one.
	c := merging(t)
	c.Insert(mkBlock(5, mem.Range{Start: 0, End: 1}, Shared))
	c.Insert(mkBlock(5, mem.Range{Start: 4, End: 5}, Shared))
	c.Insert(mkBlock(5, mem.Range{Start: 2, End: 3}, Shared))
	blocks := c.BlocksInRegion(5)
	if len(blocks) != 1 || blocks[0].R != (mem.Range{Start: 0, End: 5}) {
		t.Fatalf("blocks = %+v, want single {0,5}", blocks)
	}
}

func TestQuickMergeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(Config{Sets: 2, SetBudgetBytes: 200, TagBytes: 8, Geom: mem.DefaultGeometry, MergeBlocks: true})
		for op := 0; op < 200; op++ {
			region := mem.RegionID(rng.Intn(6))
			w := uint8(rng.Intn(8))
			switch rng.Intn(3) {
			case 0:
				if c.Peek(region, w) == nil {
					r := c.TrimFill(region, mem.DefaultGeometry.FullRange(), w)
					c.Insert(mkBlock(region, r, State(1+rng.Intn(3))))
				}
			case 1:
				start := uint8(rng.Intn(8))
				end := start + uint8(rng.Intn(8-int(start)))
				c.ExtractOverlapping(region, mem.Range{Start: start, End: end})
			case 2:
				c.Lookup(region, w)
			}
			if err := c.CheckInvariants(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
