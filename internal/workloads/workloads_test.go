package workloads

import (
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

func drain(s trace.Stream) []trace.Access {
	var out []trace.Access
	for {
		a, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 28 {
		t.Fatalf("registry has %d workloads, want the paper's 28: %v", len(names), names)
	}
	for _, n := range names {
		s := MustGet(n)
		if s.Models == "" || s.Suite == "" || s.About == "" {
			t.Errorf("%s: incomplete spec %+v", n, s)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-workload"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestAllMatchesNames(t *testing.T) {
	all := All()
	names := Names()
	if len(all) != len(names) {
		t.Fatalf("All() = %d specs, Names() = %d", len(all), len(names))
	}
	for i := range all {
		if all[i].Name != names[i] {
			t.Errorf("All()[%d] = %s, Names()[%d] = %s", i, all[i].Name, i, names[i])
		}
	}
}

func TestStreamsDeterministic(t *testing.T) {
	for _, spec := range All() {
		a := spec.Streams(4, 1)
		b := spec.Streams(4, 1)
		for c := 0; c < 4; c++ {
			ra, rb := drain(a[c]), drain(b[c])
			if len(ra) != len(rb) {
				t.Fatalf("%s core %d: lengths differ %d vs %d", spec.Name, c, len(ra), len(rb))
			}
			for i := range ra {
				if ra[i] != rb[i] {
					t.Fatalf("%s core %d record %d: %+v vs %+v", spec.Name, c, i, ra[i], rb[i])
				}
			}
		}
	}
}

func TestStreamsNonEmptyAndAligned(t *testing.T) {
	for _, spec := range All() {
		streams := spec.Streams(4, 1)
		for c, s := range streams {
			recs := drain(s)
			if len(recs) == 0 {
				t.Errorf("%s core %d: empty stream", spec.Name, c)
				continue
			}
			for i, r := range recs {
				if r.Kind == trace.Barrier {
					continue
				}
				if r.Addr%8 != 0 {
					t.Fatalf("%s core %d record %d: unaligned address %#x", spec.Name, c, i, r.Addr)
				}
				if r.PC == 0 {
					t.Fatalf("%s core %d record %d: zero PC", spec.Name, c, i)
				}
			}
		}
	}
}

func TestScaleGrowsStreams(t *testing.T) {
	for _, spec := range All() {
		n1 := len(drain(spec.Streams(2, 1)[0]))
		n3 := len(drain(spec.Streams(2, 3)[0]))
		if n3 < 2*n1 {
			t.Errorf("%s: scale 3 stream (%d) not ~3x scale 1 (%d)", spec.Name, n3, n1)
		}
	}
	// Scale below 1 clamps.
	n0 := len(drain(MustGet("fft").Streams(2, 0)[0]))
	n1 := len(drain(MustGet("fft").Streams(2, 1)[0]))
	if n0 != n1 {
		t.Errorf("scale 0 stream length %d != scale 1 length %d", n0, n1)
	}
}

func TestBarrierWorkloadsEmitAlignedBarriers(t *testing.T) {
	for _, name := range []string{"kmeans", "fluidanimate", "fft"} {
		streams := MustGet(name).Streams(4, 1)
		var counts []int
		for _, s := range streams {
			n := 0
			for _, r := range drain(s) {
				if r.Kind == trace.Barrier {
					n++
				}
			}
			counts = append(counts, n)
		}
		for _, n := range counts {
			if n == 0 || n != counts[0] {
				t.Fatalf("%s: unbalanced barrier counts %v", name, counts)
			}
		}
	}
}

// regionsOf collects the distinct regions a stream touches.
func regionsOf(recs []trace.Access) map[mem.RegionID]bool {
	g := mem.DefaultGeometry
	out := make(map[mem.RegionID]bool)
	for _, r := range recs {
		if r.Kind != trace.Barrier {
			out[g.Region(r.Addr)] = true
		}
	}
	return out
}

func TestLinearRegressionAccumulatorsFalseShare(t *testing.T) {
	// Eight cores x 6-word structs = 48 words = 6 regions, and every
	// region must be written by at least two cores (false sharing).
	streams := MustGet("linear-regression").Streams(8, 1)
	g := mem.DefaultGeometry
	writers := make(map[mem.RegionID]map[int]bool)
	for c, s := range streams {
		for _, r := range drain(s) {
			if r.Kind != trace.Store {
				continue
			}
			reg := g.Region(r.Addr)
			if writers[reg] == nil {
				writers[reg] = make(map[int]bool)
			}
			writers[reg][c] = true
		}
	}
	if len(writers) != 6 {
		t.Errorf("accumulator stores span %d regions, want 6", len(writers))
	}
	for reg, ws := range writers {
		if len(ws) < 2 {
			t.Errorf("region %d written by %d cores, want false sharing (>= 2)", reg, len(ws))
		}
	}
}

func TestMatrixMultiplyIsPrivate(t *testing.T) {
	// No region may be touched by two cores.
	streams := MustGet("matrix-multiply").Streams(4, 1)
	seen := make(map[mem.RegionID]int)
	for c, s := range streams {
		for r := range regionsOf(drain(s)) {
			if prev, ok := seen[r]; ok && prev != c {
				t.Fatalf("region %d touched by cores %d and %d", r, prev, c)
			}
			seen[r] = c
		}
	}
}

func TestStreamclusterSharesReadOnlyPoints(t *testing.T) {
	// All cores must overlap heavily on the shared point arena.
	streams := MustGet("streamcluster").Streams(4, 1)
	r0 := regionsOf(drain(streams[0]))
	r1 := regionsOf(drain(streams[1]))
	shared := 0
	for r := range r0 {
		if r1[r] {
			shared++
		}
	}
	if shared < 10 {
		t.Errorf("cores 0 and 1 share only %d regions, want >= 10", shared)
	}
}

func TestStringMatchInterleavesWriters(t *testing.T) {
	// Adjacent flag words must belong to different cores: find a region
	// written by more than one core.
	streams := MustGet("string-match").Streams(4, 1)
	g := mem.DefaultGeometry
	writers := make(map[mem.RegionID]map[int]bool)
	for c, s := range streams {
		for _, r := range drain(s) {
			if r.Kind != trace.Store {
				continue
			}
			reg := g.Region(r.Addr)
			if writers[reg] == nil {
				writers[reg] = make(map[int]bool)
			}
			writers[reg][c] = true
		}
	}
	multi := 0
	for _, ws := range writers {
		if len(ws) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-writer regions in string-match")
	}
}
