// Package workloads provides the benchmark suite: twenty-eight
// deterministic synthetic workloads — one per application of the
// paper's SPLASH-2 / PARSEC / Phoenix / DaCapo / commercial / parkd
// suite — each reproducing the sharing and spatial-locality signature
// the paper reports for its namesake (Table 1 and Section 4). They
// replace the Pin-traced real binaries of the paper's methodology:
// Protozoa's results depend only on the access streams' locality and
// sharing granularity, which these generators control directly.
//
// Every generator is a pure function of (cores, scale, workload name):
// two runs produce byte-identical streams, so experiments are exactly
// reproducible.
package workloads

import (
	"fmt"
	"sort"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

// Spec describes one workload.
type Spec struct {
	Name   string // short name used in figures (paper's label)
	Models string // the paper application it reproduces
	Suite  string // paper benchmark suite
	About  string // one-line sharing/locality signature

	gen func(b *builder)
}

// Names returns all workload names in the order the paper's figures
// list them (alphabetical).
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get looks up a workload by name, covering both the paper suite and
// the micro-benchmarks.
func Get(name string) (Spec, error) {
	if s, ok := registry[name]; ok {
		return s, nil
	}
	if s, ok := microRegistry[name]; ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("workloads: unknown workload %q (have %v and micros %v)", name, Names(), MicroNames())
}

// MustGet is Get for known-good names.
func MustGet(name string) Spec {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// All returns every workload spec, alphabetically.
func All() []Spec {
	var out []Spec
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// Streams materializes the per-core access streams. scale multiplies
// the iteration counts (scale 1 is a quick run, the harness uses
// larger scales for figures).
func (s Spec) Streams(cores, scale int) []trace.Stream {
	return s.StreamsSeeded(cores, scale, 0)
}

// StreamsSeeded materializes the streams with a trace-randomization
// seed: the same sharing/locality signature, a different concrete
// access sequence. Seed 0 is the canonical trace (identical to
// Streams); sweeping seeds gives run-to-run robustness intervals for
// the figures.
func (s Spec) StreamsSeeded(cores, scale int, seed uint64) []trace.Stream {
	if scale < 1 {
		scale = 1
	}
	b := &builder{cores: cores, scale: scale, seed: seed, recs: make([][]trace.Access, cores)}
	s.gen(b)
	streams := make([]trace.Stream, cores)
	for i := range streams {
		streams[i] = trace.NewSliceStream(b.recs[i])
	}
	return streams
}

// builder accumulates per-core records with per-site PCs.
type builder struct {
	cores int
	scale int
	seed  uint64
	recs  [][]trace.Access
}

// rng derives a deterministic generator from the workload-specific
// salt, the core, and the trace seed (seed 0 reproduces the canonical
// streams bit for bit).
func (b *builder) rng(salt, core int) *trace.RNG {
	return trace.NewRNG(uint64(salt+core) + b.seed*0x9E3779B9)
}

func (b *builder) load(core int, addr mem.Addr, pc uint64, think uint16) {
	b.recs[core] = append(b.recs[core], trace.Access{Kind: trace.Load, Addr: addr, PC: pc, Think: think})
}

func (b *builder) store(core int, addr mem.Addr, pc uint64, think uint16) {
	b.recs[core] = append(b.recs[core], trace.Access{Kind: trace.Store, Addr: addr, PC: pc, Think: think})
}

// barrier synchronizes every core.
func (b *builder) barrier() {
	for c := 0; c < b.cores; c++ {
		b.recs[c] = append(b.recs[c], trace.Access{Kind: trace.Barrier})
	}
}

// word returns the byte address of word w of a structure at base.
func word(base mem.Addr, w int) mem.Addr { return base + mem.Addr(w*8) }

// Address-space bases: each logical data structure gets its own arena.
const (
	arena0 mem.Addr = 0x0010_0000
	arena1 mem.Addr = 0x0100_0000
	arena2 mem.Addr = 0x0200_0000
	arena3 mem.Addr = 0x0300_0000
)

var registry = map[string]Spec{}

func register(s Spec) {
	if _, dup := registry[s.Name]; dup {
		panic("workloads: duplicate " + s.Name)
	}
	registry[s.Name] = s
}

func init() {
	register(Spec{
		Name: "linear-regression", Models: "linear_regression", Suite: "Phoenix",
		About: "adjacent per-thread accumulators: pure false sharing, tiny working set",
		gen:   genLinearRegression,
	})
	register(Spec{
		Name: "histogram", Models: "histogram", Suite: "Phoenix",
		About: "streaming read-only input + fine-grain shared RW bins",
		gen:   genHistogram,
	})
	register(Spec{
		Name: "string-match", Models: "string_match", Suite: "Phoenix",
		About: "extreme fine-grain multi-writer sharing of interleaved flags",
		gen:   genStringMatch,
	})
	register(Spec{
		Name: "matrix-multiply", Models: "matrix_multiply", Suite: "Phoenix",
		About: "embarrassingly parallel, full spatial locality (~99% used)",
		gen:   genMatrixMultiply,
	})
	register(Spec{
		Name: "word-count", Models: "word_count", Suite: "Phoenix",
		About: "private streaming with high spatial locality",
		gen:   genWordCount,
	})
	register(Spec{
		Name: "kmeans", Models: "kmeans", Suite: "Phoenix",
		About: "read-only shared centroids + fine-grain shared accumulators",
		gen:   genKmeans,
	})
	register(Spec{
		Name: "blackscholes", Models: "blackscholes", Suite: "PARSEC",
		About: "sparse fields of private records: 1-2 useful words per block",
		gen:   genBlackscholes,
	})
	register(Spec{
		Name: "bodytrack", Models: "bodytrack", Suite: "PARSEC",
		About: "irregular single-word reads over a large array (~21% used)",
		gen:   genBodytrack,
	})
	register(Spec{
		Name: "canneal", Models: "canneal", Suite: "PARSEC",
		About: "pointer chasing with random swaps: lowest used-data fraction",
		gen:   genCanneal,
	})
	register(Spec{
		Name: "raytrace", Models: "raytrace", Suite: "PARSEC",
		About: "read-only scene + single-producer/single-consumer tiles",
		gen:   genRaytrace,
	})
	register(Spec{
		Name: "streamcluster", Models: "streamcluster", Suite: "PARSEC",
		About: "shared read-only points streamed by all + fine-grain RW assignments",
		gen:   genStreamcluster,
	})
	register(Spec{
		Name: "fluidanimate", Models: "fluidanimate", Suite: "PARSEC",
		About: "partitioned grid with false-shared partition borders",
		gen:   genFluidanimate,
	})
	register(Spec{
		Name: "barnes", Models: "barnes", Suite: "SPLASH-2",
		About: "fine-grain read-write sharing of tree bodies",
		gen:   genBarnes,
	})
	register(Spec{
		Name: "fft", Models: "fft", Suite: "SPLASH-2",
		About: "blocked streaming plus strided transpose phase",
		gen:   genFFT,
	})
	register(Spec{
		Name: "swaptions", Models: "swaptions", Suite: "PARSEC",
		About: "read-only, high locality, tiny working set: very low miss rate",
		gen:   genSwaptions,
	})
	register(Spec{
		Name: "apache", Models: "apache", Suite: "commercial",
		About: "irregular sharing with unpredictable access granularity",
		gen:   genApache,
	})
}

// --- generators -----------------------------------------------------------

// genLinearRegression is the Figure 1 pathology. Each thread owns a
// 6-word (48-byte) accumulator struct (SX, SY, SXX, SYY, SXY plus a
// count) and the structs pack contiguously, as in Phoenix. The layout
// reproduces the paper's Table 1 row exactly: 16-byte blocks never
// straddle a thread boundary (no false sharing), 32-byte blocks
// straddle odd boundaries (misses jump), and 64/128-byte blocks pack
// pieces of two or more threads' structs into every block (pure false
// sharing). Word-granularity coherence (Protozoa-MW) removes the
// sharing entirely. A small private input chunk streams alongside.
func genLinearRegression(b *builder) {
	iters := 150 * b.scale
	const accWords = 6     // thread struct size in words (48 bytes)
	const inputWords = 512 // 4 KB per-thread input chunk, fits the L1
	for c := 0; c < b.cores; c++ {
		accBase := word(arena0, c*accWords)
		inBase := arena1 + mem.Addr(c)*0x40000
		for i := 0; i < iters; i++ {
			b.load(c, word(inBase, i%inputWords), 0x1000, 2)
			for f := 0; f < accWords; f++ {
				fa := accBase + mem.Addr(f*8)
				b.load(c, fa, uint64(0x1010+f*0x20), 1)
				b.store(c, fa, uint64(0x1018+f*0x20), 1)
			}
		}
	}
}

// genHistogram streams a private input partition with perfect spatial
// locality and scatters increments over a shared bin array. Each core
// processes its own image chunk, so it mostly hits its own bin subset;
// the subsets interleave word-by-word across the bin array, making the
// sharing almost entirely false sharing (the paper's histogram drops
// 71% of its misses under Protozoa-MW) with a small true-sharing tail.
func genHistogram(b *builder) {
	iters := 500 * b.scale
	const binGroups = 16 // bins = binGroups * cores words
	for c := 0; c < b.cores; c++ {
		rng := b.rng(1700, c)
		inBase := arena1 + mem.Addr(c)*0x40000
		for i := 0; i < iters; i++ {
			b.load(c, word(inBase, i), 0x2000, 2) // sequential stream
			// Mostly this core's interleaved bins; rarely a collision.
			bin := rng.Intn(binGroups)*b.cores + c
			if rng.Intn(100) < 5 {
				bin = rng.Intn(binGroups * b.cores)
			}
			ba := word(arena0, bin)
			b.load(c, ba, 0x2010, 1)
			b.store(c, ba, 0x2020, 1)
		}
	}
}

// genStringMatch interleaves per-match flag writes word-by-word across
// cores: >90% of owned directory entries see multiple owners, the
// paper's extreme fine-grain sharing case.
func genStringMatch(b *builder) {
	iters := 500 * b.scale
	const keyWords = 1024
	for c := 0; c < b.cores; c++ {
		keyBase := arena1 + mem.Addr(c)*0x40000
		for i := 0; i < iters; i++ {
			b.load(c, word(keyBase, i%keyWords), 0x3000, 2)
			// Flag slot i*cores+c: adjacent words belong to different
			// cores, so every flag region is multi-writer.
			flag := word(arena0, (i*b.cores+c)%(64*b.cores))
			b.store(c, flag, 0x3010, 1)
		}
	}
}

// genMatrixMultiply walks private row/column panels sequentially and
// writes a private output partition: no sharing, maximal locality.
func genMatrixMultiply(b *builder) {
	iters := 700 * b.scale
	for c := 0; c < b.cores; c++ {
		aBase := arena1 + mem.Addr(c)*0x80000
		bBase := arena2 + mem.Addr(c)*0x80000
		cBase := arena3 + mem.Addr(c)*0x80000
		for i := 0; i < iters; i++ {
			b.load(c, word(aBase, i), 0x4000, 1)
			b.load(c, word(bBase, i), 0x4010, 1)
			if i%4 == 3 {
				b.store(c, word(cBase, i/4), 0x4020, 2)
			}
		}
	}
}

// genWordCount streams a private partition and updates a small private
// table with good locality.
func genWordCount(b *builder) {
	iters := 700 * b.scale
	const tableWords = 128
	for c := 0; c < b.cores; c++ {
		rng := b.rng(4200, c)
		inBase := arena1 + mem.Addr(c)*0x80000
		tbl := arena2 + mem.Addr(c)*0x10000
		for i := 0; i < iters; i++ {
			b.load(c, word(inBase, i), 0x5000, 1)
			if i%3 == 0 {
				slot := rng.Intn(tableWords/8) * 8 // region-aligned clusters
				b.load(c, word(tbl, slot), 0x5010, 1)
				b.store(c, word(tbl, slot), 0x5020, 1)
			}
		}
	}
}

// genKmeans alternates a read phase over shared read-only centroids
// (high locality, read by everyone) with an update phase into shared
// per-cluster accumulators (fine-grain RW), separated by barriers.
func genKmeans(b *builder) {
	rounds := 12 * b.scale
	const k = 16 // clusters, centroid = 8 words = 1 region
	const pointsPerRound = 24
	for r := 0; r < rounds; r++ {
		for c := 0; c < b.cores; c++ {
			rng := b.rng(r*100, c)
			ptBase := arena1 + mem.Addr(c)*0x80000
			for p := 0; p < pointsPerRound; p++ {
				// A point is 4 contiguous feature words.
				for f := 0; f < 4; f++ {
					b.load(c, word(ptBase, (r*pointsPerRound+p)*4+f), 0x6000, 1)
				}
				// Compare against two centroids' features: contiguous
				// walks over full read-only regions (high locality).
				for _, cl := range []int{p % k, (p + 7) % k} {
					for f := 0; f < 8; f += 2 {
						b.load(c, word(arena0, cl*8+f), 0x6010, 1)
					}
				}
				// Accumulate locally, as map-reduce kmeans does; the
				// merge is the barrier phase below.
				cl := rng.Intn(k)
				acc := word(arena2+mem.Addr(c)*0x1000, cl)
				b.load(c, acc, 0x6020, 1)
				b.store(c, acc, 0x6030, 1)
			}
		}
		b.barrier()
	}
}

// genBlackscholes repeatedly prices a private option array (PARSEC
// loops NUM_RUNS times over all options), touching two sparse fields
// of each 64-byte record: the classic 1-2-useful-words pattern
// (optimal block 16 B) in the capacity regime where the records
// overflow a fixed-granularity L1 but the useful fields fit Amoeba.
func genBlackscholes(b *builder) {
	passes := 3 * b.scale
	const options = 1400 // 64 B each: 87 KB footprint per core
	for c := 0; c < b.cores; c++ {
		base := arena1 + mem.Addr(c)*0x100000
		out := arena2 + mem.Addr(c)*0x100000
		for pass := 0; pass < passes; pass++ {
			for i := 0; i < options; i++ {
				rec := base + mem.Addr(i*64)
				b.load(c, rec, 0x7000, 2)    // field 0
				b.load(c, rec+40, 0x7010, 2) // field 5
				b.store(c, out+mem.Addr(i%64*64), 0x7020, 1)
			}
		}
	}
}

// genBodytrack reads one hot field word per 64-byte record, hopping
// randomly over a private record pool whose region footprint exceeds
// the fixed-granularity L1 but whose useful words fit an Amoeba L1:
// poor spatial locality, ~1/8 used data, and the capacity gap that
// gives Protozoa its miss-rate win on the paper's high-MPKI apps.
func genBodytrack(b *builder) {
	iters := 4000 * b.scale
	const records = 1400 // 64 B each: 87 KB footprint vs 64 KB fixed L1
	for c := 0; c < b.cores; c++ {
		rng := b.rng(8800, c)
		base := arena1 + mem.Addr(c)*0x200000
		for i := 0; i < iters; i++ {
			rec := rng.Intn(records)
			b.load(c, word(base, rec*8+rec%3), 0x8000, 2)
			if i%16 == 15 {
				b.store(c, word(arena2+mem.Addr(c)*0x1000, rng.Intn(64)), 0x8010, 1)
			}
		}
	}
}

// genCanneal chases pointers through a netlist of 64-byte elements,
// reading one header word per hop. Each core hops mostly within its
// own hot partition — too many regions for a fixed-granularity L1,
// comfortably cacheable at word granularity — with a cold tail over
// the whole shared netlist and occasional swap writes: the paper's
// lowest used-data application.
func genCanneal(b *builder) {
	iters := 4000 * b.scale
	const hotElems = 1400  // per-core hot partition (87 KB of regions)
	const allElems = 32768 // whole shared netlist (2 MB, covers all partitions)
	for c := 0; c < b.cores; c++ {
		rng := b.rng(9900, c)
		hotBase := c * hotElems
		for i := 0; i < iters; i++ {
			var el int
			if rng.Intn(100) < 90 {
				el = hotBase + rng.Intn(hotElems)
			} else {
				el = rng.Intn(allElems)
			}
			b.load(c, word(arena1, el*8), 0x9000, 2)
			if i%8 == 7 {
				// Swap: write the headers of two random hot elements.
				b.store(c, word(arena1, (hotBase+rng.Intn(hotElems))*8), 0x9010, 1)
				b.store(c, word(arena1, rng.Intn(allElems)*8), 0x9020, 1)
			}
		}
	}
}

// genRaytrace mixes medium-locality read-only scene traversal with a
// single-producer/single-consumer tile queue: most owned directory
// entries have exactly one owner.
func genRaytrace(b *builder) {
	iters := 4000 * b.scale
	// Scene nodes are 64-byte records of which a bounce reads the
	// 3-word header: too many regions for a fixed-granularity L1, but
	// the headers fit an Amoeba L1 (the capacity regime where the paper
	// reports Protozoa-SW's miss-rate win).
	const sceneNodes = 1500
	for c := 0; c < b.cores; c++ {
		rng := b.rng(3100, c)
		for i := 0; i < iters; i++ {
			n := rng.Intn(sceneNodes) * 8
			b.load(c, word(arena1, n), 0xA000, 1)
			b.load(c, word(arena1, n+1), 0xA010, 1)
			b.load(c, word(arena1, n+2), 0xA020, 1)
			// Producer: each core writes its own tile slot; consumer
			// core 0 polls them.
			if c != 0 {
				b.store(c, word(arena0, c*8+(i%8)), 0xA030, 2)
			} else {
				src := 1 + rng.Intn(maxInt(b.cores-1, 1))
				b.load(c, word(arena0, src*8+(i%8)), 0xA040, 2)
			}
		}
	}
}

// genStreamcluster streams one shared read-only point set through all
// cores (read sharing, high locality) and updates fine-grain shared
// assignment words.
func genStreamcluster(b *builder) {
	iters := 600 * b.scale
	const ptWords = 1 << 13
	for c := 0; c < b.cores; c++ {
		rng := b.rng(5600, c)
		for i := 0; i < iters; i++ {
			// All cores stream the same shared points (offset start).
			b.load(c, word(arena1, (i+c*64)%ptWords), 0xB000, 1)
			if i%4 == 3 {
				// Assignment slots interleave across cores word-by-word:
				// false sharing with a small true-sharing tail.
				slot := rng.Intn(16)*b.cores + c
				if rng.Intn(100) < 5 {
					slot = rng.Intn(16 * b.cores)
				}
				a := word(arena0, slot)
				b.load(c, a, 0xB010, 1)
				b.store(c, a, 0xB020, 1)
			}
		}
	}
}

// genFluidanimate updates a partitioned grid: interior cells are
// private with good locality; cells at partition borders are written
// by one core and read by its neighbour, and borders of adjacent
// partitions share regions (read-write false sharing).
func genFluidanimate(b *builder) {
	rounds := 6 * b.scale
	const cellsPerCore = 64 // words of interior per core per round
	for r := 0; r < rounds; r++ {
		for c := 0; c < b.cores; c++ {
			interior := arena1 + mem.Addr(c)*0x40000
			for i := 0; i < cellsPerCore; i++ {
				b.load(c, word(interior, (r*cellsPerCore+i)%2048), 0xC000, 1)
				b.store(c, word(interior, (r*cellsPerCore+i)%2048), 0xC010, 1)
			}
			// Border: core c owns words [c*4, c*4+4) of the shared border
			// array; it writes its own and reads its neighbour's — border
			// slots of adjacent cores share a region.
			for i := 0; i < 4; i++ {
				b.store(c, word(arena0, c*4+i), 0xC020, 1)
				nb := (c + 1) % b.cores
				b.load(c, word(arena0, nb*4+i), 0xC030, 1)
			}
		}
		b.barrier()
	}
}

// genBarnes reads random 4-word bodies from a shared tree and writes
// back its own subset: mixed fine-grain read-write sharing.
func genBarnes(b *builder) {
	iters := 500 * b.scale
	const bodies = 1024 // 4 words each
	for c := 0; c < b.cores; c++ {
		rng := b.rng(6400, c)
		for i := 0; i < iters; i++ {
			bd := rng.Intn(bodies)
			b.load(c, word(arena1, bd*4), 0xD000, 1)
			b.load(c, word(arena1, bd*4+1), 0xD010, 1)
			// Update bodies this core owns (bd % cores == c).
			own := (rng.Intn(bodies/b.cores))*b.cores + c
			b.load(c, word(arena1, own*4+2), 0xD020, 1)
			b.store(c, word(arena1, own*4+2), 0xD030, 1)
		}
	}
}

// genFFT alternates a sequential butterfly phase over a private
// partition with a strided transpose phase that touches one word per
// region.
func genFFT(b *builder) {
	rounds := 3 * b.scale
	const rowWords = 256
	for r := 0; r < rounds; r++ {
		for c := 0; c < b.cores; c++ {
			base := arena1 + mem.Addr(c)*0x100000
			// Butterfly: sequential read-modify-write.
			for i := 0; i < rowWords; i++ {
				b.load(c, word(base, i), 0xE000, 1)
				b.store(c, word(base, i), 0xE010, 1)
			}
			// Transpose: stride of one region (8 words): poor locality.
			for i := 0; i < rowWords/4; i++ {
				b.load(c, word(base, 2048+i*8), 0xE020, 1)
			}
		}
		b.barrier()
	}
}

// genSwaptions re-reads a tiny private working set with high locality:
// nearly everything hits after warm-up.
func genSwaptions(b *builder) {
	iters := 900 * b.scale
	const wsWords = 512 // 4 KB per core
	for c := 0; c < b.cores; c++ {
		base := arena1 + mem.Addr(c)*0x10000
		for i := 0; i < iters; i++ {
			b.load(c, word(base, (i*3)%wsWords), 0xF000, 2)
			b.load(c, word(base, (i*3+1)%wsWords), 0xF010, 1)
		}
	}
}

// genApache issues irregular accesses with random extents at a handful
// of PCs over shared request structures: the predictor cannot settle,
// reproducing the paper's "unpredictable access pattern" residual
// unused data.
func genApache(b *builder) {
	iters := 900 * b.scale
	// Shared pool of request objects, one per region, touched through
	// three handler paths with jittering extents: the footprint
	// overflows every L1, only part of each region is ever useful, the
	// predictor can never settle exactly, and the 25%-store tail keeps
	// coherence churning (the paper's apache keeps ~15% unused data
	// and gains no execution time under Protozoa).
	const objects = 3000
	paths := []struct {
		pc     uint64
		extent int
	}{{0x1100, 2}, {0x1110, 4}, {0x1120, 5}}
	for c := 0; c < b.cores; c++ {
		rng := b.rng(7300, c)
		for i := 0; i < iters; i++ {
			o := rng.Intn(objects)
			p := paths[o%len(paths)]
			extent := p.extent + rng.Intn(3) - 1
			if extent < 1 {
				extent = 1
			}
			start := o*8 + o%3 // object's fields within its region
			for w := 0; w < extent; w++ {
				b.load(c, word(arena1, start+w), p.pc, 1)
			}
			if rng.Intn(100) < 25 {
				b.store(c, word(arena1, start), 0x1140, 1)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
