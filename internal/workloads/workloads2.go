package workloads

// The second half of the suite: the remaining applications of the
// paper's Table 1 / Figure 9 benchmark list (SPLASH-2 lu/ocean/radix/
// water/cholesky, PARSEC facesim/x264, Phoenix reverse-index, DaCapo
// h2/tradebeans, SPECjbb, and the parkd k-D tree builder).

import (
	"protozoa/internal/mem"
)

func init() {
	register(Spec{
		Name: "lu", Models: "lu", Suite: "SPLASH-2",
		About: "blocked dense factorization: streaming panels, coarse blocks win",
		gen:   genLU,
	})
	register(Spec{
		Name: "ocean", Models: "ocean", Suite: "SPLASH-2",
		About: "stencil sweeps over private grid partitions with neighbour halos",
		gen:   genOcean,
	})
	register(Spec{
		Name: "radix", Models: "radix", Suite: "SPLASH-2",
		About: "scatter phase with irregular writes into a shared permutation",
		gen:   genRadix,
	})
	register(Spec{
		Name: "water", Models: "water-spatial", Suite: "SPLASH-2",
		About: "molecule structs mostly private, pairwise force reads, low used%",
		gen:   genWater,
	})
	register(Spec{
		Name: "cholesky", Models: "cholesky", Suite: "SPLASH-2",
		About: "sparse supernodes: mixed granularity, no application-wide optimum",
		gen:   genCholesky,
	})
	register(Spec{
		Name: "facesim", Models: "facesim", Suite: "PARSEC",
		About: "high-locality private physics with a small shared frontier",
		gen:   genFacesim,
	})
	register(Spec{
		Name: "x264", Models: "x264", Suite: "PARSEC",
		About: "motion search reads over reference frames, private encode writes",
		gen:   genX264,
	})
	register(Spec{
		Name: "rev-index", Models: "reverse_index", Suite: "Phoenix",
		About: "link lists appended by all cores: invalidation-heavy, many NACKs",
		gen:   genRevIndex,
	})
	register(Spec{
		Name: "h2", Models: "h2", Suite: "DaCapo",
		About: "database pages with false-shared row headers and hot locks",
		gen:   genH2,
	})
	register(Spec{
		Name: "tradebeans", Models: "tradebeans", Suite: "DaCapo",
		About: "object graph churn, moderate locality, minimal sharing",
		gen:   genTradebeans,
	})
	register(Spec{
		Name: "jbb", Models: "spec-jbb", Suite: "commercial",
		About: "warehouse transactions: irregular shared reads, coarse helps some",
		gen:   genJBB,
	})
	register(Spec{
		Name: "parkd", Models: "parkd", Suite: "Denovo",
		About: "parallel k-D tree build: phase-partitioned writes, streaming reads",
		gen:   genParkd,
	})
}

// genLU streams 64-byte panel rows sequentially (read-modify-write)
// with a small shared pivot row read by everyone.
func genLU(b *builder) {
	rounds := 4 * b.scale
	const panelWords = 512
	for r := 0; r < rounds; r++ {
		for c := 0; c < b.cores; c++ {
			base := arena1 + mem.Addr(c)*0x100000
			// Pivot row: shared read-only this round, high locality.
			for w := 0; w < 16; w++ {
				b.load(c, word(arena0, r*16+w), 0x10000, 1)
			}
			for i := 0; i < panelWords/2; i++ {
				w := (r*panelWords/2 + i) % 4096
				b.load(c, word(base, w), 0x10010, 1)
				b.store(c, word(base, w), 0x10020, 1)
			}
		}
		b.barrier()
	}
}

// genOcean alternates red/black stencil sweeps over a private grid
// partition; the first and last rows are halos read by the neighbour.
func genOcean(b *builder) {
	rounds := 5 * b.scale
	const rowWords = 32
	const rowsPerCore = 12
	for r := 0; r < rounds; r++ {
		for c := 0; c < b.cores; c++ {
			// grid rows laid out contiguously core after core, so halo
			// rows of adjacent partitions share regions at the seams.
			rowBase := c * rowsPerCore
			for row := 0; row < rowsPerCore; row++ {
				for wdx := r % 2; wdx < rowWords; wdx += 8 {
					w := (rowBase+row)*rowWords + wdx
					b.load(c, word(arena1, w), 0x11000, 1)
					b.store(c, word(arena1, w), 0x11010, 1)
				}
			}
			// Halo reads from the neighbour's first row.
			nb := (c + 1) % b.cores
			for wdx := 0; wdx < rowWords; wdx += 8 {
				b.load(c, word(arena1, nb*rowsPerCore*rowWords+wdx), 0x11020, 1)
			}
		}
		b.barrier()
	}
}

// genRadix reads private keys sequentially and scatters them to a
// shared output array at rank positions: single-word writes all over
// shared regions.
func genRadix(b *builder) {
	iters := 700 * b.scale
	const outWords = 1 << 13
	for c := 0; c < b.cores; c++ {
		rng := b.rng(12000, c)
		keyBase := arena1 + mem.Addr(c)*0x80000
		for i := 0; i < iters; i++ {
			b.load(c, word(keyBase, i), 0x12000, 1)
			// Rank positions interleave across cores (each core owns a
			// digit bucket but buckets interleave in memory).
			slot := rng.Intn(outWords/b.cores)*b.cores + c
			b.store(c, word(arena2, slot), 0x12010, 1)
		}
	}
}

// genWater updates private molecule structs (2 hot words of a 64-byte
// record) and reads random other molecules pairwise.
func genWater(b *builder) {
	iters := 600 * b.scale
	const molecules = 1024 // shared array of 64-byte molecule records
	for c := 0; c < b.cores; c++ {
		rng := b.rng(13000, c)
		for i := 0; i < iters; i++ {
			// Own molecule (molecules are statically partitioned).
			own := (rng.Intn(molecules/b.cores))*b.cores + c
			b.load(c, word(arena1, own*8), 0x13000, 1)
			b.store(c, word(arena1, own*8), 0x13010, 1)
			// Pairwise force: read 2 words of a random other molecule.
			other := rng.Intn(molecules)
			b.load(c, word(arena1, other*8+2), 0x13020, 1)
			b.load(c, word(arena1, other*8+3), 0x13030, 1)
		}
	}
}

// genCholesky mixes dense supernode streaming with sparse single-word
// column updates: the paper's "no application-wide optimum" case.
func genCholesky(b *builder) {
	iters := 300 * b.scale
	const sparseWords = 1 << 12
	for c := 0; c < b.cores; c++ {
		rng := b.rng(14000, c)
		dense := arena1 + mem.Addr(c)*0x80000
		for i := 0; i < iters; i++ {
			// Dense supernode: an 8-word burst.
			base := (i * 8) % 2048
			for w := 0; w < 8; w++ {
				b.load(c, word(dense, base+w), 0x14000, 1)
			}
			// Sparse update: one word somewhere in the shared frontal
			// matrix.
			s := word(arena2, rng.Intn(sparseWords))
			b.load(c, s, 0x14010, 1)
			b.store(c, s, 0x14020, 1)
		}
	}
}

// genFacesim runs high-locality private element updates with a small
// shared frontier of single words.
func genFacesim(b *builder) {
	iters := 500 * b.scale
	for c := 0; c < b.cores; c++ {
		rng := b.rng(15000, c)
		base := arena1 + mem.Addr(c)*0x80000
		for i := 0; i < iters; i++ {
			e := (i * 4) % 2048
			for w := 0; w < 4; w++ {
				b.load(c, word(base, e+w), 0x15000, 1)
			}
			b.store(c, word(base, e), 0x15010, 1)
			if i%8 == 7 {
				f := word(arena0, rng.Intn(32)*b.cores+c)
				b.load(c, f, 0x15020, 1)
				b.store(c, f, 0x15030, 1)
			}
		}
	}
}

// genX264 reads 4-word motion-search windows at random offsets in a
// shared read-only reference frame and writes a private output
// stream.
func genX264(b *builder) {
	iters := 600 * b.scale
	const frameWords = 1 << 13
	for c := 0; c < b.cores; c++ {
		rng := b.rng(16000, c)
		out := arena2 + mem.Addr(c)*0x80000
		for i := 0; i < iters; i++ {
			n := rng.Intn(frameWords - 4)
			for w := 0; w < 4; w++ {
				b.load(c, word(arena1, n+w), 0x16000, 1)
			}
			b.store(c, word(out, i%2048), 0x16010, 1)
		}
	}
}

// genRevIndex appends to shared per-key link lists: cores write list
// tail words all over shared regions and re-read heads, generating
// the invalidation/NACK churn the paper reports for rev-index.
func genRevIndex(b *builder) {
	iters := 600 * b.scale
	const lists = 512
	for c := 0; c < b.cores; c++ {
		rng := b.rng(17000, c)
		inBase := arena1 + mem.Addr(c)*0x80000
		for i := 0; i < iters; i++ {
			b.load(c, word(inBase, i), 0x17000, 1) // scan private input
			l := rng.Intn(lists)
			head := word(arena0, l)
			b.load(c, head, 0x17010, 1)  // read list head
			b.store(c, head, 0x17020, 1) // append (update head)
		}
	}
}

// genH2 touches database pages: a row header word (false-shared, rows
// of different cores pack into the same page region) plus a 4-word
// row body read, and a hot lock word per page group.
func genH2(b *builder) {
	iters := 500 * b.scale
	const pages = 64
	for c := 0; c < b.cores; c++ {
		rng := b.rng(18000, c)
		for i := 0; i < iters; i++ {
			pg := rng.Intn(pages)
			// Row header: word interleaved per core within the page's
			// header region -> false sharing.
			hdr := word(arena0, pg*b.cores*2+(c*2)%(b.cores*2))
			b.load(c, hdr, 0x18000, 1)
			if rng.Intn(100) < 40 {
				b.store(c, hdr, 0x18010, 1)
			}
			// Row body in the core's own partition of the page arena.
			body := arena1 + mem.Addr(c)*0x40000
			off := (pg*64 + rng.Intn(8)*8) % 4096
			for w := 0; w < 4; w++ {
				b.load(c, word(body, off+w), 0x18020, 1)
			}
		}
	}
}

// genTradebeans churns a private object graph with moderate locality
// and almost no sharing.
func genTradebeans(b *builder) {
	iters := 600 * b.scale
	const objects = 1024 // 4-word objects, private
	for c := 0; c < b.cores; c++ {
		rng := b.rng(19000, c)
		base := arena1 + mem.Addr(c)*0x80000
		for i := 0; i < iters; i++ {
			o := rng.Intn(objects)
			b.load(c, word(base, o*4), 0x19000, 1)
			b.load(c, word(base, o*4+1), 0x19010, 1)
			if i%4 == 3 {
				b.store(c, word(base, o*4+2), 0x19020, 1)
			}
		}
	}
}

// genJBB mixes irregular shared warehouse-object reads (2-3 words)
// with private transaction logs.
func genJBB(b *builder) {
	iters := 600 * b.scale
	const whWords = 1 << 14 // 128 KB: overflows a fixed-granularity L1
	for c := 0; c < b.cores; c++ {
		rng := b.rng(20000, c)
		logBase := arena2 + mem.Addr(c)*0x80000
		for i := 0; i < iters; i++ {
			n := rng.Intn(whWords - 4)
			ext := 2 + rng.Intn(2)
			for w := 0; w < ext; w++ {
				b.load(c, word(arena1, n+w), 0x20000, 1)
			}
			b.store(c, word(logBase, i%1024), 0x20010, 1)
			if rng.Intn(100) < 10 {
				b.store(c, word(arena1, n), 0x20020, 1)
			}
		}
	}
}

// genParkd builds a k-D tree in phases: every core streams the shared
// point set read-only, then writes its own contiguous slice of the
// node array; slice boundaries false-share regions.
func genParkd(b *builder) {
	rounds := 4 * b.scale
	const points = 2048
	const nodesPerCore = 40
	for r := 0; r < rounds; r++ {
		for c := 0; c < b.cores; c++ {
			// Stream a slice of the shared points with full locality.
			start := (c * points / b.cores)
			for i := 0; i < points/b.cores; i++ {
				b.load(c, word(arena1, start+i), 0x21000, 1)
			}
			// Write this round's node slice (unaligned boundaries).
			nodeBase := (r*b.cores + c) * nodesPerCore
			for i := 0; i < nodesPerCore; i++ {
				b.store(c, word(arena2, (nodeBase+i)%(8*1024)), 0x21010, 1)
			}
		}
		b.barrier()
	}
}
