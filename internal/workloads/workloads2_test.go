package workloads

import (
	"testing"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

func TestSecondHalfRegistered(t *testing.T) {
	for _, n := range []string{
		"lu", "ocean", "radix", "water", "cholesky", "facesim", "x264",
		"rev-index", "h2", "tradebeans", "jbb", "parkd",
	} {
		if _, err := Get(n); err != nil {
			t.Errorf("missing workload %s: %v", n, err)
		}
	}
}

func TestTradebeansIsPrivate(t *testing.T) {
	streams := MustGet("tradebeans").Streams(4, 1)
	seen := make(map[mem.RegionID]int)
	for c, s := range streams {
		for r := range regionsOf(drain(s)) {
			if prev, ok := seen[r]; ok && prev != c {
				t.Fatalf("region %d touched by cores %d and %d", r, prev, c)
			}
			seen[r] = c
		}
	}
}

func TestRadixScattersAcrossCores(t *testing.T) {
	// The output array must have regions written by multiple cores.
	streams := MustGet("radix").Streams(4, 1)
	g := mem.DefaultGeometry
	writers := make(map[mem.RegionID]map[int]bool)
	for c, s := range streams {
		for _, r := range drain(s) {
			if r.Kind != trace.Store {
				continue
			}
			reg := g.Region(r.Addr)
			if writers[reg] == nil {
				writers[reg] = make(map[int]bool)
			}
			writers[reg][c] = true
		}
	}
	multi := 0
	for _, ws := range writers {
		if len(ws) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("radix scatter produced no multi-writer regions")
	}
}

func TestX264SharesReferenceFrame(t *testing.T) {
	streams := MustGet("x264").Streams(4, 1)
	r0 := regionsOf(drain(streams[0]))
	r1 := regionsOf(drain(streams[1]))
	shared := 0
	for r := range r0 {
		if r1[r] {
			shared++
		}
	}
	if shared < 20 {
		t.Errorf("cores share only %d reference-frame regions", shared)
	}
}

func TestOceanReadsNeighbourHalo(t *testing.T) {
	// Core 0 must read at least one region that core 1 writes.
	streams := MustGet("ocean").Streams(4, 1)
	g := mem.DefaultGeometry
	c1writes := make(map[mem.RegionID]bool)
	for _, r := range drain(streams[1]) {
		if r.Kind == trace.Store {
			c1writes[g.Region(r.Addr)] = true
		}
	}
	overlap := false
	for _, r := range drain(streams[0]) {
		if r.Kind == trace.Load && c1writes[g.Region(r.Addr)] {
			overlap = true
			break
		}
	}
	if !overlap {
		t.Error("ocean core 0 never reads core 1's halo rows")
	}
}

func TestBarrierPhasedWorkloadsBalanced(t *testing.T) {
	for _, name := range []string{"lu", "ocean", "parkd"} {
		streams := MustGet(name).Streams(4, 1)
		var counts []int
		for _, s := range streams {
			n := 0
			for _, r := range drain(s) {
				if r.Kind == trace.Barrier {
					n++
				}
			}
			counts = append(counts, n)
		}
		for _, n := range counts {
			if n == 0 || n != counts[0] {
				t.Fatalf("%s: unbalanced barriers %v", name, counts)
			}
		}
	}
}

func TestH2HeaderFalseSharing(t *testing.T) {
	// Header words of different cores must pack into common regions.
	streams := MustGet("h2").Streams(8, 1)
	g := mem.DefaultGeometry
	writers := make(map[mem.RegionID]map[int]bool)
	for c, s := range streams {
		for _, r := range drain(s) {
			if r.Kind != trace.Store {
				continue
			}
			reg := g.Region(r.Addr)
			if writers[reg] == nil {
				writers[reg] = make(map[int]bool)
			}
			writers[reg][c] = true
		}
	}
	multi := 0
	for _, ws := range writers {
		if len(ws) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("h2 headers are not false-shared")
	}
}
