package workloads

import (
	"testing"

	"protozoa/internal/trace"
)

func TestMicroRegistry(t *testing.T) {
	names := MicroNames()
	if len(names) != 3 {
		t.Fatalf("micros = %v, want 3", names)
	}
	for _, n := range names {
		s, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Suite != "micro" {
			t.Errorf("%s suite = %q", n, s.Suite)
		}
	}
	if len(Micros()) != len(names) {
		t.Error("Micros()/MicroNames() mismatch")
	}
}

func TestMicrosExcludedFromPaperSuite(t *testing.T) {
	for _, n := range Names() {
		if _, micro := microRegistry[n]; micro {
			t.Errorf("micro %s leaked into the paper suite", n)
		}
	}
	if len(Names()) != 28 {
		t.Errorf("paper suite = %d workloads, want 28", len(Names()))
	}
}

func TestAtomicCounterIsAllRMW(t *testing.T) {
	streams := MustGet("micro-atomic-counter").Streams(4, 1)
	for c, s := range streams {
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if a.Kind != trace.RMW {
				t.Fatalf("core %d: non-RMW record %+v", c, a)
			}
			if a.Addr != 0x0010_0000 {
				t.Fatalf("core %d: counter at %#x", c, a.Addr)
			}
		}
	}
}

func TestTicketLockShape(t *testing.T) {
	streams := MustGet("micro-ticket-lock").Streams(2, 1)
	recs := drain(streams[0])
	rmws, loads, stores := 0, 0, 0
	for _, a := range recs {
		switch a.Kind {
		case trace.RMW:
			rmws++
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		}
	}
	// Per iteration: 2 RMWs (ticket + release), 3 spins + 4 CS loads,
	// 4 CS stores.
	if rmws != 2*60 || loads != 7*60 || stores != 4*60 {
		t.Errorf("shape = %d RMW / %d loads / %d stores", rmws, loads, stores)
	}
}

func TestProducerConsumerPairsDisjoint(t *testing.T) {
	streams := MustGet("micro-producer-consumer").Streams(4, 1)
	// Pair 0 (cores 0,1) and pair 1 (cores 2,3) must not share regions.
	r0 := regionsOf(drain(streams[0]))
	r2 := regionsOf(drain(streams[2]))
	for r := range r0 {
		if r2[r] {
			t.Fatalf("pairs share region %d", r)
		}
	}
}
