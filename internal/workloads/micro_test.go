package workloads

import (
	"testing"

	"protozoa/internal/trace"
)

func TestMicroRegistry(t *testing.T) {
	names := MicroNames()
	if len(names) != 4 {
		t.Fatalf("micros = %v, want 4", names)
	}
	for _, n := range names {
		s, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Suite != "micro" {
			t.Errorf("%s suite = %q", n, s.Suite)
		}
	}
	if len(Micros()) != len(names) {
		t.Error("Micros()/MicroNames() mismatch")
	}
}

func TestMicrosExcludedFromPaperSuite(t *testing.T) {
	for _, n := range Names() {
		if _, micro := microRegistry[n]; micro {
			t.Errorf("micro %s leaked into the paper suite", n)
		}
	}
	if len(Names()) != 28 {
		t.Errorf("paper suite = %d workloads, want 28", len(Names()))
	}
}

func TestAtomicCounterIsAllRMW(t *testing.T) {
	streams := MustGet("micro-atomic-counter").Streams(4, 1)
	for c, s := range streams {
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if a.Kind != trace.RMW {
				t.Fatalf("core %d: non-RMW record %+v", c, a)
			}
			if a.Addr != 0x0010_0000 {
				t.Fatalf("core %d: counter at %#x", c, a.Addr)
			}
		}
	}
}

func TestTicketLockShape(t *testing.T) {
	streams := MustGet("micro-ticket-lock").Streams(2, 1)
	recs := drain(streams[0])
	rmws, loads, stores := 0, 0, 0
	for _, a := range recs {
		switch a.Kind {
		case trace.RMW:
			rmws++
		case trace.Load:
			loads++
		case trace.Store:
			stores++
		}
	}
	// Per iteration: 2 RMWs (ticket + release), 3 spins + 4 CS loads,
	// 4 CS stores.
	if rmws != 2*60 || loads != 7*60 || stores != 4*60 {
		t.Errorf("shape = %d RMW / %d loads / %d stores", rmws, loads, stores)
	}
}

func TestBarrierSkewShape(t *testing.T) {
	streams := MustGet("micro-barrier-skew").Streams(4, 1)
	recs := make([][]trace.Access, len(streams))
	for c := range streams {
		recs[c] = drain(streams[c])
	}
	// Every core sees the same number of barriers (one per phase).
	barriers := 0
	for _, a := range recs[0] {
		if a.Kind == trace.Barrier {
			barriers++
		}
	}
	if barriers != 40 {
		t.Fatalf("core 0 barriers = %d, want 40", barriers)
	}
	for c := 1; c < len(recs); c++ {
		n := 0
		for _, a := range recs[c] {
			if a.Kind == trace.Barrier {
				n++
			}
		}
		if n != barriers {
			t.Fatalf("core %d barriers = %d, core 0 = %d", c, n, barriers)
		}
	}
	// The straggler rotates, so over 40 phases on 4 cores every core is
	// the straggler 10 times: per-core totals are equal, but any single
	// phase is lopsided. Check phase 0: core 0 runs 64+1 accesses
	// before its first barrier, everyone else 2+1.
	firstPhase := func(c int) int {
		n := 0
		for _, a := range recs[c] {
			if a.Kind == trace.Barrier {
				break
			}
			n++
		}
		return n
	}
	if got := firstPhase(0); got != 65 {
		t.Errorf("straggler phase-0 accesses = %d, want 65", got)
	}
	for c := 1; c < 4; c++ {
		if got := firstPhase(c); got != 3 {
			t.Errorf("idle core %d phase-0 accesses = %d, want 3", c, got)
		}
	}
}

func TestProducerConsumerPairsDisjoint(t *testing.T) {
	streams := MustGet("micro-producer-consumer").Streams(4, 1)
	// Pair 0 (cores 0,1) and pair 1 (cores 2,3) must not share regions.
	r0 := regionsOf(drain(streams[0]))
	r2 := regionsOf(drain(streams[2]))
	for r := range r0 {
		if r2[r] {
			t.Fatalf("pairs share region %d", r)
		}
	}
}
