package workloads

// Micro-benchmarks: synchronization-heavy kernels that exercise the
// coherence primitives directly (hot lock words, true-shared atomics,
// flag handoffs). They are deliberately kept out of the figure suite —
// Names()/All() return only the paper's 28 applications — but are
// available through Get for protozoa-sim and directed studies.

import (
	"sort"

	"protozoa/internal/mem"
	"protozoa/internal/trace"
)

var microRegistry = map[string]Spec{}

func registerMicro(s Spec) {
	if _, dup := microRegistry[s.Name]; dup {
		panic("workloads: duplicate micro " + s.Name)
	}
	microRegistry[s.Name] = s
}

// MicroNames lists the micro-benchmarks.
func MicroNames() []string {
	names := make([]string, 0, len(microRegistry))
	for n := range microRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Micros returns every micro-benchmark spec, alphabetically.
func Micros() []Spec {
	var out []Spec
	for _, n := range MicroNames() {
		out = append(out, microRegistry[n])
	}
	return out
}

func init() {
	registerMicro(Spec{
		Name: "micro-atomic-counter", Models: "fetch-and-add loop", Suite: "micro",
		About: "all cores increment one shared counter: pure true sharing, no protocol helps",
		gen:   genAtomicCounter,
	})
	registerMicro(Spec{
		Name: "micro-ticket-lock", Models: "ticket spinlock", Suite: "micro",
		About: "RMW ticket grab, spin on now-serving, short critical section",
		gen:   genTicketLock,
	})
	registerMicro(Spec{
		Name: "micro-barrier-skew", Models: "fork-join straggler phases", Suite: "micro",
		About: "frequent barriers with one rotating straggler per phase: most cores idle at the barrier while one runs far ahead",
		gen:   genBarrierSkew,
	})
	registerMicro(Spec{
		Name: "micro-producer-consumer", Models: "flag handoff", Suite: "micro",
		About: "core pairs hand a 4-word payload through a flag word",
		gen:   genProducerConsumer,
	})
}

// genAtomicCounter: the counterpoint to linear-regression — the same
// loop shape but with one TRUE-shared counter. Every protocol
// ping-pongs it; Protozoa merely moves one word instead of a block.
func genAtomicCounter(b *builder) {
	iters := 300 * b.scale
	for c := 0; c < b.cores; c++ {
		for i := 0; i < iters; i++ {
			b.recs[c] = append(b.recs[c], trace.Access{
				Kind: trace.RMW, Addr: word(arena0, 0), PC: 0x30000, Think: 2,
			})
		}
	}
}

// genTicketLock: each acquisition grabs a ticket with an RMW, spins on
// the now-serving word, touches a 4-word protected structure, and
// bumps now-serving. The lock words sit in one region (a realistic,
// unpadded lock struct), so lock traffic is also false-shared against
// the protected data in the next region.
func genTicketLock(b *builder) {
	iters := 60 * b.scale
	ticket := word(arena0, 0)
	serving := word(arena0, 1)
	for c := 0; c < b.cores; c++ {
		for i := 0; i < iters; i++ {
			b.recs[c] = append(b.recs[c], trace.Access{Kind: trace.RMW, Addr: ticket, PC: 0x31000, Think: 1})
			// Bounded spin on now-serving (static traces cannot spin
			// conditionally; a handful of polls models the contention).
			for p := 0; p < 3; p++ {
				b.load(c, serving, 0x31010, 1)
			}
			// Critical section: 4 protected words.
			for wdx := 0; wdx < 4; wdx++ {
				a := word(arena0, 8+wdx)
				b.load(c, a, 0x31020, 1)
				b.store(c, a, 0x31030, 1)
			}
			// Release: bump now-serving.
			b.recs[c] = append(b.recs[c], trace.Access{Kind: trace.RMW, Addr: serving, PC: 0x31040, Think: 1})
		}
	}
}

// genBarrierSkew: a fork-join loop whose phases are deliberately
// lopsided — every phase, one rotating straggler core does ~30x the
// work of its siblings, and a shared phase counter forces real
// coherence traffic across the join. The interesting consumer is the
// PDES window loop: fifteen tiles hit the barrier almost immediately
// and drain their queues, so the straggler must be driven through
// extended (window-skipping) solo rounds, the idle tiles must stay
// off the worker crew, and the barrier release must pick the same
// deterministic resume cycle whatever the worker count.
func genBarrierSkew(b *builder) {
	phases := 40 * b.scale
	for ph := 0; ph < phases; ph++ {
		straggler := ph % b.cores
		counter := word(arena0, ph%8)
		for c := 0; c < b.cores; c++ {
			n := 2
			if c == straggler {
				n = 64
			}
			base := arena1 + mem.Addr(c)<<12
			for i := 0; i < n; i++ {
				b.load(c, word(base, (ph*n+i)%64), 0x33000, uint16(1+(c+i)%4))
			}
			// Everyone bumps the shared phase counter before the join,
			// so the straggler's long tail overlaps its siblings'
			// coherence traffic on the way in.
			b.recs[c] = append(b.recs[c], trace.Access{Kind: trace.RMW, Addr: counter, PC: 0x33010, Think: 1})
		}
		b.barrier()
	}
}

// genProducerConsumer: odd cores produce 4-word payloads and set a
// flag; the preceding even core polls the flag and reads the payload.
// Payload and flag share a region: the handoff moves exactly one
// region's worth of useful words per iteration.
func genProducerConsumer(b *builder) {
	iters := 100 * b.scale
	for c := 0; c < b.cores; c++ {
		pair := c / 2
		base := word(arena0, pair*8)
		flag := word(arena0, pair*8+5)
		for i := 0; i < iters; i++ {
			if c%2 == 1 { // producer
				for wdx := 0; wdx < 4; wdx++ {
					b.store(c, base+mem.Addr(wdx*8), 0x32000, 1)
				}
				b.store(c, flag, 0x32010, 1)
			} else { // consumer
				for p := 0; p < 2; p++ {
					b.load(c, flag, 0x32020, 1)
				}
				for wdx := 0; wdx < 4; wdx++ {
					b.load(c, base+mem.Addr(wdx*8), 0x32030, 1)
				}
			}
		}
	}
}
