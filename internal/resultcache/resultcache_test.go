package resultcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"protozoa/internal/obs"
)

func testKey(b byte) Key {
	var k Key
	k[0] = b
	k[31] = ^b
	return k
}

func TestMemoryTierRoundTrip(t *testing.T) {
	c, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	payload := []byte("hello world")
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	ctr := c.Counters()
	if ctr.MemHits != 1 || ctr.Misses != 1 || ctr.Puts != 1 {
		t.Fatalf("counters = %+v", ctr)
	}
}

func TestDiskTierRoundTripAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	k := testKey(2)
	payload := []byte("persisted payload")

	c1, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(k, payload); err != nil {
		t.Fatal(err)
	}

	// A fresh instance (fresh process in real life) must hit on disk.
	c2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("disk Get = %q, %v", got, ok)
	}
	if ctr := c2.Counters(); ctr.DiskHits != 1 || ctr.BytesRead != uint64(len(payload)) {
		t.Fatalf("counters = %+v", ctr)
	}
	// Promoted into memory: second Get is a memory hit.
	if _, ok := c2.Get(k); !ok {
		t.Fatal("promoted entry missing")
	}
	if ctr := c2.Counters(); ctr.MemHits != 1 {
		t.Fatalf("promotion missing: %+v", ctr)
	}
}

// entryFile finds the single on-disk entry under dir.
func entryFile(t *testing.T, dir string) string {
	t.Helper()
	var found string
	err := filepath.Walk(dir, func(p string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && filepath.Ext(p) == ".pzc" {
			found = p
		}
		return err
	})
	if err != nil || found == "" {
		t.Fatalf("no entry file under %s (err=%v)", dir, err)
	}
	return found
}

func TestCorruptEntryFallsBackToMiss(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(data []byte) []byte
	}{
		{"flipped-payload-byte", func(d []byte) []byte {
			d[len(d)-1] ^= 0xff
			return d
		}},
		{"truncated", func(d []byte) []byte { return d[:len(d)-3] }},
		{"bad-magic", func(d []byte) []byte {
			d[0] = 'X'
			return d
		}},
		{"empty", func(d []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			k := testKey(3)
			payload := []byte("payload that will be damaged")
			c, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Put(k, payload); err != nil {
				t.Fatal(err)
			}
			f := entryFile(t, dir)
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(f, tc.corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			// Fresh instance so the memory tier can't mask the damage.
			c2, err := Open(dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			if got, ok := c2.Get(k); ok {
				t.Fatalf("corrupt entry served as hit: %q", got)
			}
			if ctr := c2.Counters(); ctr.Misses != 1 {
				t.Fatalf("counters = %+v", ctr)
			}
			// Re-Put repairs the entry.
			if err := c2.Put(k, payload); err != nil {
				t.Fatal(err)
			}
			c3, _ := Open(dir, 0)
			if got, ok := c3.Get(k); !ok || !bytes.Equal(got, payload) {
				t.Fatalf("repaired Get = %q, %v", got, ok)
			}
		})
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := Open("", 100)
	if err != nil {
		t.Fatal(err)
	}
	pay := func(b byte) []byte { return bytes.Repeat([]byte{b}, 40) }
	c.Put(testKey(1), pay(1))
	c.Put(testKey(2), pay(2))
	c.Get(testKey(1)) // make key 1 most recently used
	c.Put(testKey(3), pay(3))
	if _, ok := c.Get(testKey(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(testKey(1)); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := c.Get(testKey(3)); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestDoSingleflight(t *testing.T) {
	c, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(4)
	var computes atomic.Int64
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	results := make([][]byte, n)
	hits := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, hit, err := c.Do(k, func() ([]byte, error) {
				computes.Add(1)
				<-release
				return []byte("computed once"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], hits[i] = p, hit
		}(i)
	}
	// Let goroutines pile up on the flight, then release the leader.
	for computes.Load() == 0 {
	}
	close(release)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	nonHits := 0
	for i := range results {
		if !bytes.Equal(results[i], []byte("computed once")) {
			t.Fatalf("result[%d] = %q", i, results[i])
		}
		if !hits[i] {
			nonHits++
		}
	}
	if nonHits != 1 {
		t.Fatalf("%d callers reported a fresh compute, want exactly 1 (the leader)", nonHits)
	}
}

func TestDoComputeErrorNotCached(t *testing.T) {
	c, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(5)
	wantErr := fmt.Errorf("simulated failure")
	if _, _, err := c.Do(k, func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// The failed compute must not poison the key.
	p, hit, err := c.Do(k, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || !bytes.Equal(p, []byte("ok")) {
		t.Fatalf("retry = %q, hit=%v, err=%v", p, hit, err)
	}
}

// TestConcurrentGetPutHammer drives many goroutines at the same keys
// through both tiers simultaneously — the -race pass over this package
// is the regression net for the shared-cache-dir corruption fix.
func TestConcurrentGetPutHammer(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// A second instance sharing the directory models a concurrent grid
	// process racing on the same entries.
	c2, err := Open(dir, 2048)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4
	payloads := make([][]byte, keys)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte(i + 1)}, 128+i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inst := c
			if g%2 == 1 {
				inst = c2
			}
			for iter := 0; iter < 200; iter++ {
				i := (g + iter) % keys
				k := testKey(byte(i))
				switch iter % 3 {
				case 0:
					if err := inst.Put(k, payloads[i]); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				case 1:
					if p, ok := inst.Get(k); ok && !bytes.Equal(p, payloads[i]) {
						t.Errorf("Get key %d returned wrong payload", i)
						return
					}
				case 2:
					p, _, err := inst.Do(k, func() ([]byte, error) { return payloads[i], nil })
					if err != nil || !bytes.Equal(p, payloads[i]) {
						t.Errorf("Do key %d: %q, %v", i, p, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// After the dust settles every key must read back intact from disk.
	c3, _ := Open(dir, 0)
	for i := 0; i < keys; i++ {
		if p, ok := c3.Get(testKey(byte(i))); !ok || !bytes.Equal(p, payloads[i]) {
			t.Fatalf("key %d corrupt or missing after hammer", i)
		}
	}
}

func TestBuilderCanonical(t *testing.T) {
	b1 := NewBuilder()
	b1.Field("a", "xy")
	b1.Field("b", "z")
	b2 := NewBuilder()
	b2.Field("a", "x")
	b2.Field("yb", "z")
	if b1.Sum() == b2.Sum() {
		t.Fatal("length prefixing failed: shifted field boundaries alias")
	}
	b3 := NewBuilder()
	b3.Field("a", "xy")
	b3.Field("b", "z")
	if b1.Sum() != b3.Sum() {
		t.Fatal("identical field sequences must hash identically")
	}
}

func TestAddStruct(t *testing.T) {
	type inner struct {
		Lat int
	}
	type cfg struct {
		Name    string
		Cores   int
		Ratio   float64
		Flags   []bool
		Nested  inner
		hidden  int // unexported: ignored
		PtrView *inner
	}
	_ = cfg{}.hidden
	hash := func(c cfg) Key {
		b := NewBuilder()
		if err := AddStruct(b, "cfg", c); err != nil {
			t.Fatal(err)
		}
		return b.Sum()
	}
	base := cfg{Name: "mesi", Cores: 16, Ratio: 0.5, Flags: []bool{true}, Nested: inner{3}}
	if hash(base) != hash(base) {
		t.Fatal("not deterministic")
	}
	vary := []cfg{
		{Name: "mw", Cores: 16, Ratio: 0.5, Flags: []bool{true}, Nested: inner{3}},
		{Name: "mesi", Cores: 4, Ratio: 0.5, Flags: []bool{true}, Nested: inner{3}},
		{Name: "mesi", Cores: 16, Ratio: 0.25, Flags: []bool{true}, Nested: inner{3}},
		{Name: "mesi", Cores: 16, Ratio: 0.5, Flags: []bool{false}, Nested: inner{3}},
		{Name: "mesi", Cores: 16, Ratio: 0.5, Flags: nil, Nested: inner{3}},
		{Name: "mesi", Cores: 16, Ratio: 0.5, Flags: []bool{true}, Nested: inner{4}},
		{Name: "mesi", Cores: 16, Ratio: 0.5, Flags: []bool{true}, Nested: inner{3}, PtrView: &inner{0}},
	}
	seen := map[Key]int{hash(base): -1}
	for i, v := range vary {
		k := hash(v)
		if prev, dup := seen[k]; dup {
			t.Fatalf("variant %d collides with %d", i, prev)
		}
		seen[k] = i
	}
}

func TestAddStructRejectsFuncFields(t *testing.T) {
	type cfg struct {
		Hook func()
	}
	b := NewBuilder()
	if err := AddStruct(b, "cfg", cfg{Hook: func() {}}); err == nil {
		t.Fatal("non-nil func field must be uncacheable")
	}
	b2 := NewBuilder()
	if err := AddStruct(b2, "cfg", cfg{}); err != nil {
		t.Fatalf("nil func field should hash fine: %v", err)
	}
}

func TestTypeFingerprintSensitivity(t *testing.T) {
	type v1 struct{ A, B uint64 }
	type v2 struct{ A, B, C uint64 }
	type v3 struct {
		A uint64
		B uint32
	}
	f1, f2, f3 := TypeFingerprint(v1{}), TypeFingerprint(v2{}), TypeFingerprint(v3{})
	if f1 == f2 || f1 == f3 || f2 == f3 {
		t.Fatalf("fingerprints collide: %s %s %s", f1, f2, f3)
	}
	if f1 != TypeFingerprint(v1{}) {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestRegisterMetricsOnObsRegistry(t *testing.T) {
	c, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	var reg obs.Registry
	c.RegisterMetrics(&reg)
	c.Put(testKey(9), []byte("x"))
	c.Get(testKey(9))
	c.Get(testKey(10))
	vals := reg.Eval()
	names := reg.Names()
	byName := map[string]float64{}
	for i, n := range names {
		byName[n] = vals[i]
	}
	if byName["cache_hits"] != 1 || byName["cache_misses"] != 1 || byName["cache_puts"] != 1 {
		t.Fatalf("gauges = %v", byName)
	}
}
