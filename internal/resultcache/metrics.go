package resultcache

// GaugeRegistry is the registration surface of obs.Registry, restated
// structurally so the cache stays dependency-free.
type GaugeRegistry interface {
	Register(name, help string, fn func() float64)
}

// RegisterMetrics mounts the cache's activity counters as gauges on an
// obs metrics registry; every sample (and Prometheus scrape through an
// obs.LiveServer) then reports the live hit/miss/byte totals.
func (c *Cache) RegisterMetrics(reg GaugeRegistry) {
	reg.Register("cache_hits", "result-cache lookup hits (memory + disk tiers)",
		func() float64 { return float64(c.Counters().Hits()) })
	reg.Register("cache_misses", "result-cache lookup misses",
		func() float64 { return float64(c.misses.Load()) })
	reg.Register("cache_puts", "result-cache entries written",
		func() float64 { return float64(c.puts.Load()) })
	reg.Register("cache_put_errors", "result-cache disk writes that failed",
		func() float64 { return float64(c.putErrors.Load()) })
	reg.Register("cache_bytes_read", "payload bytes read from the disk tier",
		func() float64 { return float64(c.bytesRead.Load()) })
	reg.Register("cache_bytes_written", "payload bytes written to the disk tier",
		func() float64 { return float64(c.bytesWritten.Load()) })
}
