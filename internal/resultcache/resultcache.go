// Package resultcache is a two-tier content-addressed store for
// simulation results: an in-memory LRU in front of an optional
// persistent on-disk tier. Entries are keyed by a canonical SHA-256 of
// the fully-resolved cell configuration (see Builder and AddStruct), so
// a cell's result is looked up — not re-simulated — whenever the same
// configuration is requested again, in this process or any later one.
//
// The determinism contract makes this safe: a cell's output is a pure
// function of its resolved configuration plus the code version, both of
// which the key covers (see CodeStamp and SchemaVersion). The store
// itself is payload-agnostic — callers serialize whatever a "result"
// means to them; internal/runner owns the cell payload codec.
//
// Concurrency: every method is safe for concurrent use, and the on-disk
// tier tolerates many processes sharing one directory — entries are
// written to a temp file and renamed into place (atomic on POSIX), and
// every read is checksum-validated, so a torn or truncated entry is
// indistinguishable from a miss and falls back to re-simulation. Do
// adds per-key singleflight so identical cells queued concurrently in
// one grid simulate once.
package resultcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
)

// SchemaVersion is the explicit cache-invalidation knob: bump it when a
// change alters simulation results or the payload encoding without
// otherwise touching the hashed configuration (a protocol fix, a stats
// semantics change, a codec change). It is folded into every key, so a
// bump orphans all existing entries instead of serving stale results.
const SchemaVersion = 1

// Key is a canonical content hash identifying one cell configuration.
// The zero Key means "uncacheable" everywhere the type appears.
type Key [sha256.Size]byte

// IsZero reports whether the key is the uncacheable sentinel.
func (k Key) IsZero() bool { return k == Key{} }

// String renders the key as lowercase hex (the on-disk file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Builder accumulates named fields into a canonical hash. Fields are
// length-prefixed (so no separator collision can alias two different
// configurations) and order-sensitive; callers must emit them in a
// deterministic order — struct field order via AddStruct, or explicit
// call order.
type Builder struct {
	buf []byte
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Field appends one name/value pair.
func (b *Builder) Field(name, value string) {
	b.buf = binary.AppendUvarint(b.buf, uint64(len(name)))
	b.buf = append(b.buf, name...)
	b.buf = binary.AppendUvarint(b.buf, uint64(len(value)))
	b.buf = append(b.buf, value...)
}

// Sum finalizes the key.
func (b *Builder) Sum() Key { return sha256.Sum256(b.buf) }

// AddStruct canonically encodes every exported field of a struct value
// (recursing into nested structs) into the builder, prefixing each
// field's path with prefix. Field names are part of the encoding, so
// renames and reorders change the key — conservative by design: a
// config struct change invalidates the cache rather than risking a
// stale hit.
//
// It returns an error for any field it cannot canonicalize — a non-nil
// func (an injected hook makes the cell's behaviour unhashable), a map,
// a channel, or a non-nil interface. Callers treat that as "this cell
// is uncacheable".
func AddStruct(b *Builder, prefix string, v any) error {
	return addValue(b, prefix, reflect.ValueOf(v))
}

func addValue(b *Builder, path string, v reflect.Value) error {
	switch v.Kind() {
	case reflect.Bool:
		b.Field(path, strconv.FormatBool(v.Bool()))
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		b.Field(path, strconv.FormatInt(v.Int(), 10))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		b.Field(path, strconv.FormatUint(v.Uint(), 10))
	case reflect.Float32, reflect.Float64:
		b.Field(path, strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		b.Field(path, v.String())
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			if err := addValue(b, path+"."+f.Name, v.Field(i)); err != nil {
				return err
			}
		}
	case reflect.Ptr:
		if v.IsNil() {
			b.Field(path, "nil")
			return nil
		}
		return addValue(b, path, v.Elem())
	case reflect.Slice, reflect.Array:
		b.Field(path+".len", strconv.Itoa(v.Len()))
		for i := 0; i < v.Len(); i++ {
			if err := addValue(b, path+"["+strconv.Itoa(i)+"]", v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Func, reflect.Interface, reflect.Chan, reflect.Map:
		if v.IsNil() {
			b.Field(path, "nil")
			return nil
		}
		return fmt.Errorf("resultcache: field %s has uncacheable kind %s", path, v.Kind())
	default:
		return fmt.Errorf("resultcache: field %s has uncacheable kind %s", path, v.Kind())
	}
	return nil
}

// TypeFingerprint canonically describes a type's exported shape — the
// field paths and kinds AddStruct would emit — so a key can embed the
// schema of a result struct (e.g. stats.Stats): adding, removing, or
// retyping a field changes the fingerprint and invalidates entries
// whose stored payloads no longer match the code's expectations.
func TypeFingerprint(v any) string {
	var buf bytes.Buffer
	fingerprintType(&buf, "", reflect.TypeOf(v))
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
}

func fingerprintType(buf *bytes.Buffer, path string, t reflect.Type) {
	switch t.Kind() {
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			fingerprintType(buf, path+"."+f.Name, f.Type)
		}
	case reflect.Ptr, reflect.Slice, reflect.Array:
		if t.Kind() == reflect.Array {
			fmt.Fprintf(buf, "%s:[%d]", path, t.Len())
		}
		fingerprintType(buf, path+"[]", t.Elem())
	default:
		fmt.Fprintf(buf, "%s:%s;", path, t.Kind())
	}
}

// CodeStamp identifies the running build for key derivation: the main
// module version plus VCS revision/dirty state when the binary carries
// them, plus SchemaVersion. Dev builds ("(devel)", no VCS stamp) hash
// identically across rebuilds — the explicit SchemaVersion bump is the
// invalidation knob for behaviour changes during development.
func CodeStamp() string {
	stamp := "schema=" + strconv.Itoa(SchemaVersion)
	if info, ok := debug.ReadBuildInfo(); ok {
		stamp += ";mod=" + info.Main.Path + "@" + info.Main.Version
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision", "vcs.modified":
				stamp += ";" + s.Key + "=" + s.Value
			}
		}
	}
	return stamp
}

// Counters is a snapshot of the cache's activity.
type Counters struct {
	MemHits, DiskHits, Misses uint64 // Get outcomes
	Puts, PutErrors           uint64 // writes and failed writes
	BytesRead, BytesWritten   uint64 // payload bytes through the disk tier
}

// Hits is the total lookup hits across both tiers.
func (c Counters) Hits() uint64 { return c.MemHits + c.DiskHits }

// DefaultMemBytes bounds the in-memory tier (payload bytes).
const DefaultMemBytes = 256 << 20

// Cache is the two-tier store. The zero value is not usable; construct
// with Open.
type Cache struct {
	dir      string // "" = memory tier only
	maxBytes int64

	mu       sync.Mutex
	entries  map[Key]*list.Element
	lru      *list.List // front = most recently used
	memBytes int64
	inflight map[Key]*flight

	memHits, diskHits, misses atomic.Uint64
	puts, putErrors           atomic.Uint64
	bytesRead, bytesWritten   atomic.Uint64
}

type memEntry struct {
	key     Key
	payload []byte
}

type flight struct {
	done    chan struct{}
	payload []byte
	err     error
}

// Open returns a cache backed by dir (created if missing); an empty dir
// selects the memory tier only. maxMemBytes <= 0 uses DefaultMemBytes.
func Open(dir string, maxMemBytes int64) (*Cache, error) {
	if maxMemBytes <= 0 {
		maxMemBytes = DefaultMemBytes
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("resultcache: %w", err)
		}
	}
	return &Cache{
		dir:      dir,
		maxBytes: maxMemBytes,
		entries:  make(map[Key]*list.Element),
		lru:      list.New(),
		inflight: make(map[Key]*flight),
	}, nil
}

// Dir reports the disk tier's directory ("" when memory-only).
func (c *Cache) Dir() string { return c.dir }

// Counters snapshots the activity counters.
func (c *Cache) Counters() Counters {
	return Counters{
		MemHits:      c.memHits.Load(),
		DiskHits:     c.diskHits.Load(),
		Misses:       c.misses.Load(),
		Puts:         c.puts.Load(),
		PutErrors:    c.putErrors.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
	}
}

// Get looks the key up in memory, then on disk (promoting a disk hit
// into the memory tier). The returned payload is shared; callers must
// treat it as read-only.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		payload := el.Value.(*memEntry).payload
		c.mu.Unlock()
		c.memHits.Add(1)
		return payload, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		c.misses.Add(1)
		return nil, false
	}
	payload, ok := c.readDisk(k)
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.diskHits.Add(1)
	c.bytesRead.Add(uint64(len(payload)))
	c.insertMem(k, payload)
	return payload, true
}

// Put stores the payload under the key in both tiers. Disk failures are
// counted and returned but leave the memory tier populated — a broken
// disk degrades to a per-process cache rather than failing the run.
func (c *Cache) Put(k Key, payload []byte) error {
	c.puts.Add(1)
	c.insertMem(k, payload)
	if c.dir == "" {
		return nil
	}
	if err := c.writeDisk(k, payload); err != nil {
		c.putErrors.Add(1)
		return err
	}
	c.bytesWritten.Add(uint64(len(payload)))
	return nil
}

// Do returns the cached payload for the key, or computes, stores, and
// returns it. Concurrent Do calls for the same key collapse into one
// compute (singleflight): the first caller runs compute, the rest block
// and share its outcome. hit reports whether the payload came from the
// cache (including from a concurrent leader); a compute error is
// returned to every collapsed caller and nothing is stored.
func (c *Cache) Do(k Key, compute func() ([]byte, error)) (payload []byte, hit bool, err error) {
	if p, ok := c.Get(k); ok {
		return p, true, nil
	}
	c.mu.Lock()
	if f, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.payload, true, nil
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[k] = f
	c.mu.Unlock()

	defer func() {
		c.mu.Lock()
		delete(c.inflight, k)
		c.mu.Unlock()
		close(f.done)
	}()
	// Re-check under singleflight ownership: another process may have
	// written the entry between our miss and here.
	if p, ok := c.Get(k); ok {
		f.payload = p
		return p, true, nil
	}
	f.payload, f.err = compute()
	if f.err != nil {
		return nil, false, f.err
	}
	_ = c.Put(k, f.payload) // disk errors already counted; memory tier holds it
	return f.payload, false, nil
}

func (c *Cache) insertMem(k Key, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.memBytes += int64(len(payload)) - int64(len(el.Value.(*memEntry).payload))
		el.Value.(*memEntry).payload = payload
		c.lru.MoveToFront(el)
	} else {
		c.entries[k] = c.lru.PushFront(&memEntry{key: k, payload: payload})
		c.memBytes += int64(len(payload))
	}
	for c.memBytes > c.maxBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*memEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		c.memBytes -= int64(len(e.payload))
	}
}

// On-disk entry format, designed so any torn write is detectable:
//
//	PZRC1\n
//	<64 hex chars: sha256 of payload>\n
//	<decimal payload length>\n
//	<payload bytes>
//
// Entries are sharded into 256 subdirectories by the key's first byte
// to keep directory listings manageable at large grid counts.
const diskMagic = "PZRC1\n"

func (c *Cache) path(k Key) string {
	h := k.String()
	return filepath.Join(c.dir, h[:2], h+".pzc")
}

func (c *Cache) readDisk(k Key) ([]byte, bool) {
	data, err := os.ReadFile(c.path(k))
	if err != nil {
		return nil, false
	}
	rest, ok := bytes.CutPrefix(data, []byte(diskMagic))
	if !ok {
		return nil, false
	}
	sumLine, rest, ok := bytes.Cut(rest, []byte("\n"))
	if !ok || len(sumLine) != 2*sha256.Size {
		return nil, false
	}
	lenLine, payload, ok := bytes.Cut(rest, []byte("\n"))
	if !ok {
		return nil, false
	}
	n, err := strconv.Atoi(string(lenLine))
	if err != nil || n != len(payload) {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(sumLine) {
		return nil, false
	}
	return payload, true
}

func (c *Cache) writeDisk(k Key, payload []byte) error {
	final := c.path(k)
	dir := filepath.Dir(final)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Temp file in the destination directory so the rename stays on one
	// filesystem and is atomic: concurrent writers of the same key race
	// benignly (identical content), and readers never observe a partial
	// entry under the final name.
	tmp, err := os.CreateTemp(dir, "."+k.String()+".tmp-*")
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	_, werr := fmt.Fprintf(tmp, "%s%x\n%d\n", diskMagic, sum, len(payload))
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), final)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return nil
}
