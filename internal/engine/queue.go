package engine

import (
	"math/bits"
	"sync"
)

// This file holds the two queue implementations behind Engine.
//
// heapQueue is the legacy binary min-heap, now with direct typed
// sift-up/sift-down (no container/heap, no interface{} boxing per
// push/pop). It remains the differential-testing reference and the
// far-future overflow structure of the bucketed queue.
//
// bucketQueue is the production queue: a ring of numBuckets per-cycle
// FIFO buckets covering the window [start, start+numBuckets), plus a
// heapQueue for events beyond the window. Almost every event in the
// simulator lands within a few hundred cycles of now (the largest
// Table 4 latency is the 300-cycle memory access), so pushes and pops
// are O(1) appends/reads of reused slices at steady state. When the
// window empties, the queue jumps to the earliest far-future event and
// drains the heap into the new window.

// heapQueue is a typed binary min-heap ordered by item.before.
type heapQueue struct {
	items []item
}

func (h *heapQueue) push(it item) {
	h.items = append(h.items, it)
	h.siftUp(len(h.items) - 1)
}

func (h *heapQueue) pop() (item, bool) {
	n := len(h.items)
	if n == 0 {
		return item{}, false
	}
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items[n-1] = item{} // release closure/runner references
	h.items = h.items[:n-1]
	if len(h.items) > 1 {
		h.siftDown(0)
	}
	return top, true
}

func (h *heapQueue) peekAt() (Cycle, bool) {
	if len(h.items) == 0 {
		return 0, false
	}
	return h.items[0].at, true
}

// popBefore pops the earliest item only when its cycle is below limit.
// On refusal it reports the earliest queued cycle (hasNext false means
// the queue is empty), so the caller can prime its peek cache without
// a second scan.
func (h *heapQueue) popBefore(limit Cycle) (it item, ok bool, next Cycle, hasNext bool) {
	if len(h.items) == 0 {
		return item{}, false, 0, false
	}
	if at := h.items[0].at; at >= limit {
		return item{}, false, at, true
	}
	it, _ = h.pop()
	return it, true, 0, false
}

func (h *heapQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.items[i].before(h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *heapQueue) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.items[l].before(h.items[min]) {
			min = l
		}
		if r < n && h.items[r].before(h.items[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.items[i], h.items[min] = h.items[min], h.items[i]
		i = min
	}
}

// bucketBits sizes the near-future window: 512 cycles comfortably
// covers every latency the machine model schedules (memory is 300),
// and the smaller ring keeps all 16 PDES tile rings cache-resident.
const (
	bucketBits = 9
	numBuckets = 1 << bucketBits
	bucketMask = numBuckets - 1
)

// bucket holds the events of exactly one cycle within the current
// window, in push order (which is seq order, preserving determinism).
// head is the next unpopped index; the slice is reset and reused once
// the cycle has been fully drained.
type bucket struct {
	items []item
	head  int
}

type bucketQueue struct {
	buckets []bucket
	occ     []uint64      // occupancy bitmap: bit b set ⇔ buckets[b] has unpopped items
	store   *queueStorage // pooled backing for buckets; nil after release
	start   Cycle         // inclusive lower bound of the window
	cursor  Cycle         // cycle of the last pop; every queued item is at >= cursor
	inWin   int           // unpopped items currently in buckets
	far     heapQueue
	size    int
	prof    *Prof // queue-introspection shard (Engine.SetProf); nil when disabled
}

// queueStorage is the poolable part of a bucketQueue: the ring itself
// plus every per-bucket items slice its buckets have grown, plus the
// occupancy bitmap. A fresh ring costs one 4096-bucket allocation up
// front and then one lazy slice allocation per distinct active cycle —
// the fixed per-engine overhead that made PDES (16 tile engines per
// run) pay ~2.5x the sequential mode's allocations. Recycling the
// storage across runs makes that a one-time cost per process instead
// of per run.
type queueStorage struct {
	buckets []bucket
	occ     []uint64
}

var storagePool = sync.Pool{
	New: func() any {
		return &queueStorage{
			buckets: make([]bucket, numBuckets),
			occ:     make([]uint64, numBuckets/64),
		}
	},
}

func (q *bucketQueue) init() {
	q.store = storagePool.Get().(*queueStorage)
	q.buckets = q.store.buckets
	q.occ = q.store.occ
}

// release returns the ring to the shared pool. Callers guarantee the
// queue is empty; every occupied slot was already zeroed when its item
// popped, so resetting lengths and heads is enough to hand the storage
// to the next engine without leaking event references.
func (q *bucketQueue) release() {
	if q.store == nil {
		return
	}
	for i := range q.buckets {
		b := &q.buckets[i]
		b.items = b.items[:0]
		b.head = 0
	}
	for i := range q.occ {
		q.occ[i] = 0
	}
	storagePool.Put(q.store)
	q.store = nil
	q.buckets = nil
	q.occ = nil
}

// push files the item into its cycle's bucket when the cycle falls in
// the current window, and into the far-future heap otherwise. Callers
// guarantee it.at >= the last popped cycle, so it.at >= q.cursor.
func (q *bucketQueue) push(it item) {
	q.size++
	if it.at < q.start+numBuckets {
		slot := uint64(it.at) & bucketMask
		b := &q.buckets[slot]
		b.items = append(b.items, it)
		q.occ[slot>>6] |= 1 << (slot & 63)
		q.inWin++
		if q.prof != nil {
			q.prof.RingPushes++
			if q.inWin > q.prof.RingHigh {
				q.prof.RingHigh = q.inWin
			}
		}
	} else {
		q.far.push(it)
		if q.prof != nil {
			q.prof.FarPushes++
			if len(q.far.items) > q.prof.FarHigh {
				q.prof.FarHigh = len(q.far.items)
			}
		}
	}
}

// takeAt pops the front of cycle c's bucket, clearing the occupancy
// bit and recycling the slice when the cycle drains. Callers guarantee
// the bucket is non-empty. Nothing can arrive behind a drained cycle
// (pushes land at >= the last popped cycle), so the reset is final
// until the ring wraps back around.
func (q *bucketQueue) takeAt(c Cycle) item {
	slot := uint64(c) & bucketMask
	b := &q.buckets[slot]
	it := b.items[b.head]
	b.items[b.head] = item{} // release closure/runner references
	b.head++
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
		q.occ[slot>>6] &^= 1 << (slot & 63)
	}
	q.inWin--
	q.size--
	return it
}

// nextOccupied reports the earliest non-empty bucket cycle in
// [from, start+numBuckets), skipping empty buckets a 64-cycle word at
// a time via the occupancy bitmap instead of probing them one by one.
func (q *bucketQueue) nextOccupied(from Cycle) (Cycle, bool) {
	span := uint64(q.start + numBuckets - from) // window cycles left to scan
	slot := uint64(from) & bucketMask
	if word := q.occ[slot>>6] >> (slot & 63); word != 0 {
		if d := uint64(bits.TrailingZeros64(word)); d < span {
			return from + Cycle(d), true
		}
		return 0, false
	}
	for covered := 64 - (slot & 63); covered < span; covered += 64 {
		if word := q.occ[((slot+covered)&bucketMask)>>6]; word != 0 {
			if d := covered + uint64(bits.TrailingZeros64(word)); d < span {
				return from + Cycle(d), true
			}
			return 0, false
		}
	}
	return 0, false
}

// pop returns the globally earliest item in (cycle, seq) order.
func (q *bucketQueue) pop() (item, bool) {
	if q.size == 0 {
		return item{}, false
	}
	for {
		if q.inWin > 0 {
			// inWin > 0 guarantees an occupied bucket in the window.
			c, _ := q.nextOccupied(q.cursor)
			q.cursor = c
			return q.takeAt(c), true
		}
		// Window empty: jump to the earliest far-future event and drain
		// the heap into the new window. Heap pops come out in (cycle,
		// seq) order, so each bucket receives its items in seq order.
		at, ok := q.far.peekAt()
		if !ok {
			return item{}, false // unreachable while size > 0
		}
		q.start = at
		q.cursor = at
		q.refill()
	}
}

// refill drains far-future events landing in the (just repositioned)
// window into their buckets. Heap pops come out in (cycle, seq) order,
// so each bucket receives its items in seq order. Migrated events were
// already counted as FarPushes when first filed, so only the ring
// high-water mark is refreshed here — never the push counters.
func (q *bucketQueue) refill() {
	for {
		nextAt, ok := q.far.peekAt()
		if !ok || nextAt >= q.start+numBuckets {
			return
		}
		it, _ := q.far.pop()
		slot := uint64(it.at) & bucketMask
		b := &q.buckets[slot]
		b.items = append(b.items, it)
		q.occ[slot>>6] |= 1 << (slot & 63)
		q.inWin++
		if q.prof != nil && q.inWin > q.prof.RingHigh {
			q.prof.RingHigh = q.inWin
		}
	}
}

// peekAt reports the earliest queued cycle without mutating the queue.
func (q *bucketQueue) peekAt() (Cycle, bool) {
	if q.size == 0 {
		return 0, false
	}
	if q.inWin > 0 {
		c, _ := q.nextOccupied(q.cursor)
		return c, true
	}
	return q.far.peekAt()
}

// popBefore is pop restricted to cycles below limit. On refusal it
// reports the earliest queued cycle (hasNext false means the queue is
// empty), so the caller can prime its peek cache without a second
// scan. The cursor is NOT advanced on refusal: later pushes may still
// land between the last popped cycle and the refused one.
func (q *bucketQueue) popBefore(limit Cycle) (it item, ok bool, next Cycle, hasNext bool) {
	if q.size == 0 {
		return item{}, false, 0, false
	}
	for {
		if q.inWin > 0 {
			c, _ := q.nextOccupied(q.cursor)
			if c >= limit {
				// Every cycle below limit is drained; the rest can wait.
				return item{}, false, c, true
			}
			q.cursor = c
			return q.takeAt(c), true, 0, false
		}
		at, farOK := q.far.peekAt()
		if !farOK {
			return item{}, false, 0, false
		}
		if at >= limit {
			return item{}, false, at, true
		}
		q.start = at
		q.cursor = at
		q.refill()
	}
}
