package engine

import "testing"

// TestProfCountsReconcile pins the queue-introspection accounting: on a
// bucketed engine every scheduled event is exactly one of a ring push,
// a far-future push, or a zero-delay micro hit, so the three counters
// must sum to the schedule count — and the high-water marks bound the
// final totals.
func TestProfCountsReconcile(t *testing.T) {
	e := NewBucketed()
	var prof Prof
	e.SetProf(&prof)

	const nearEvents = 50
	const farEvents = 7
	scheduled := 0
	ran := 0

	// Near-future events inside the 512-cycle ring window.
	for i := 0; i < nearEvents; i++ {
		e.Schedule(Cycle(1+i%100), func() { ran++ })
		scheduled++
	}
	// Far-future events beyond the ring.
	for i := 0; i < farEvents; i++ {
		e.Schedule(Cycle(numBuckets+10+i), func() { ran++ })
		scheduled++
	}
	// Zero-delay chains: each event schedules a same-cycle follower.
	for i := 0; i < 5; i++ {
		e.Schedule(Cycle(3+i), func() {
			e.Schedule(0, func() { ran++ })
			scheduled++
			ran++
		})
		scheduled++
	}

	if !e.Run(0) {
		t.Fatal("queue did not drain")
	}
	if ran != scheduled {
		t.Fatalf("ran %d of %d scheduled events", ran, scheduled)
	}

	total := prof.RingPushes + prof.FarPushes + e.MicroHits()
	if total != uint64(scheduled) {
		t.Errorf("ring %d + far %d + micro %d = %d, want %d scheduled",
			prof.RingPushes, prof.FarPushes, e.MicroHits(), total, scheduled)
	}
	if prof.FarPushes != farEvents {
		t.Errorf("FarPushes = %d, want %d", prof.FarPushes, farEvents)
	}
	if e.MicroHits() != 5 {
		t.Errorf("MicroHits = %d, want 5", e.MicroHits())
	}
	if prof.MicroHigh < 1 {
		t.Errorf("MicroHigh = %d, want >= 1", prof.MicroHigh)
	}
	if prof.RingHigh < 1 || prof.RingHigh > scheduled {
		t.Errorf("RingHigh = %d out of range [1, %d]", prof.RingHigh, scheduled)
	}
	if prof.FarHigh != farEvents {
		t.Errorf("FarHigh = %d, want %d", prof.FarHigh, farEvents)
	}
}

// TestProfHeapEngineCountsFarPushes pins the legacy heap engine's
// accounting: every non-zero-delay schedule is a FarPush there.
func TestProfHeapEngineCountsFarPushes(t *testing.T) {
	e := NewWithHeap()
	var prof Prof
	e.SetProf(&prof)

	for i := 0; i < 10; i++ {
		e.Schedule(Cycle(1+i), func() {})
	}
	if !e.Run(0) {
		t.Fatal("queue did not drain")
	}
	if prof.FarPushes != 10 {
		t.Errorf("FarPushes = %d, want 10", prof.FarPushes)
	}
	if prof.FarHigh != 10 {
		t.Errorf("FarHigh = %d, want 10", prof.FarHigh)
	}
	if prof.RingPushes != 0 {
		t.Errorf("RingPushes = %d, want 0 on a heap engine", prof.RingPushes)
	}
}

// TestProfRefusalsAndLimitCuts pins the window-bound counters: a
// RunUntil stopped by its bound with work queued counts one refusal,
// and only LimitTo calls that actually tighten the bound count cuts.
func TestProfRefusalsAndLimitCuts(t *testing.T) {
	e := NewBucketed()
	var prof Prof
	e.SetProf(&prof)

	e.Schedule(5, func() {})
	e.Schedule(20, func() {})

	e.RunUntil(10) // runs the cycle-5 event, refuses at the cycle-20 one
	if prof.Refusals != 1 {
		t.Fatalf("Refusals = %d after bounded run, want 1", prof.Refusals)
	}

	// An event that tightens the bound mid-window: the second LimitTo is
	// not below the running bound, so only one cut counts.
	e.Schedule(2, func() {
		e.LimitTo(10) // cuts 100 -> 10
		e.LimitTo(50) // no-op: never raises
	})
	e.RunUntil(100)
	if prof.LimitCuts != 1 {
		t.Errorf("LimitCuts = %d, want 1", prof.LimitCuts)
	}
	if prof.Refusals != 2 {
		t.Errorf("Refusals = %d after the cut window, want 2", prof.Refusals)
	}

	e.RunUntil(1000) // drains; no refusal (queue empties)
	if prof.Refusals != 2 {
		t.Errorf("Refusals = %d after full drain, want 2", prof.Refusals)
	}
}
