// Package engine implements the deterministic discrete-event core of
// the simulator. All timing in the system — core issue, cache access,
// network hops, directory occupancy — is expressed as events scheduled
// on a single queue of (cycle, sequence) pairs, where the sequence
// number makes same-cycle ordering stable and runs reproducible.
//
// This replaces the SIMICS/GEMS execution-driven engine the paper used:
// the memory-system results depend only on event ordering and the
// Table 4 latencies, both of which this engine reproduces exactly.
//
// Two queue implementations back the engine. The default is a two-level
// bucketed queue: a ring of per-cycle FIFO buckets covers the near
// future (push and pop are O(1) with no per-event allocation), and a
// typed min-heap holds the far-future overflow, drained window by
// window. The original binary-heap queue is retained for differential
// testing — construct it with NewWithHeap, or set the environment
// variable PROTOZOA_EVENT_QUEUE=heap to make New return it. Both
// implement the exact same (cycle, sequence) total order, so a run is
// bit-identical under either.
package engine

import "os"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a specific cycle.
type Event func()

// Runner is the allocation-free alternative to Event: callers that
// would otherwise capture state in a fresh closure per event implement
// Run on a reusable struct and pass it to ScheduleRunner. Scheduling a
// pointer-shaped Runner does not allocate.
type Runner interface{ Run() }

// Prof is the engine's opt-in queue-introspection block (the simulator
// self-profiling layer, internal/obs/selfprof). Attach one with SetProf
// before running; every counter site in the hot path guards on a single
// nil check, so an engine without a Prof pays one predictable branch —
// the same contract as the internal/obs hooks. All fields are written
// only by the goroutine running the engine; readers synchronize at the
// PDES round barrier (or after Run), so plain integers suffice.
//
// The trailing pad pushes adjacent Profs in a slice onto separate cache
// lines: under PDES each tile's engine bumps its own shard while other
// workers bump theirs, and false sharing here would bill the
// measurement to the thing being measured.
type Prof struct {
	RingPushes uint64 // events filed into the near-future bucket ring
	FarPushes  uint64 // events filed into the far-future (or legacy) heap
	Refusals   uint64 // RunUntil stopped by the window bound with work still queued
	LimitCuts  uint64 // LimitTo calls that actually tightened the running bound
	MicroHigh  int    // deepest the zero-delay micro FIFO has been
	RingHigh   int    // most unpopped events the bucket ring has held
	FarHigh    int    // deepest the far-future heap has been

	_ [64]byte // keep neighbouring shards off this cache line
}

// item is one queued event: either r (preferred) or fn is set.
type item struct {
	at  Cycle
	seq uint64
	fn  Event
	r   Runner
}

// before is the engine's total order: cycle first, then schedule
// sequence, so same-cycle events run in scheduling order.
func (it item) before(other item) bool {
	if it.at != other.at {
		return it.at < other.at
	}
	return it.seq < other.seq
}

// Engine is a deterministic event queue. The zero value is NOT ready to
// use; construct with New (bucketed queue) or NewWithHeap.
type Engine struct {
	now     Cycle
	seq     uint64
	events  uint64
	size    int    // queued events right now (all levels)
	high    int    // deepest the queue has ever been
	micros  uint64 // zero-delay fast-path hits (micro FIFO pushes)
	useHeap bool
	heap    heapQueue
	bq      bucketQueue

	// prof, when non-nil, receives the queue-introspection counters
	// (SetProf). One nil check per site when disabled.
	prof *Prof

	// micro is the zero-delay fast path: a run-to-completion FIFO for
	// events scheduled at exactly the current cycle. Same-cycle chains
	// (ScheduleRunner(0, …), gather-free probe replies, directory
	// activate->process handoffs) append and pop here instead of round-
	// tripping the bucket ring or heap. Order is preserved exactly:
	// every event already queued for cycle `now` in the underlying
	// queue was pushed earlier (now only advances on pops), so it
	// carries a smaller seq than every micro item and drains first;
	// micro items then run in push (== seq) order among themselves.
	micro     []item
	microHead int

	// limit is the bound of the RunUntil call currently executing, kept
	// as a field so handlers can lower it mid-window (LimitTo) — the
	// PDES window loop's dynamic cut-off for extended solo windows.
	limit Cycle

	// Cached earliest cycle queued in the underlying two-level queue
	// (the micro FIFO is excluded: its items are always at `now`),
	// maintained so the PDES window loop can take the minimum over many
	// partitions without rescanning the bucket ring each time. Pops
	// invalidate it; pushes keep it exact.
	peekValid bool
	peekMin   Cycle
}

// QueueEnvVar selects the queue implementation for New: set it to
// "heap" to get the legacy binary-heap queue (differential testing).
const QueueEnvVar = "PROTOZOA_EVENT_QUEUE"

// New returns a fresh engine at cycle zero, using the bucketed queue
// unless PROTOZOA_EVENT_QUEUE=heap is set in the environment.
func New() *Engine {
	if os.Getenv(QueueEnvVar) == "heap" {
		return NewWithHeap()
	}
	return NewBucketed()
}

// NewBucketed returns an engine backed by the two-level bucketed queue.
func NewBucketed() *Engine {
	e := &Engine{}
	e.bq.init()
	return e
}

// NewWithHeap returns an engine backed by the legacy binary-heap queue
// (kept for differential testing against the bucketed queue).
func NewWithHeap() *Engine { return &Engine{useHeap: true} }

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Processed reports how many events have run.
func (e *Engine) Processed() uint64 { return e.events }

func (e *Engine) push(it item) {
	e.seq++
	it.seq = e.seq
	if it.at == e.now {
		// Zero-delay fast path: the event is due this very cycle, so it
		// never needs the two-level queue — it goes on the micro FIFO
		// and runs after everything already queued for this cycle. The
		// peekMin cache tracks the underlying queue only, so it is
		// deliberately NOT updated here.
		e.micro = append(e.micro, it)
		e.micros++
		if e.prof != nil {
			if d := len(e.micro) - e.microHead; d > e.prof.MicroHigh {
				e.prof.MicroHigh = d
			}
		}
	} else {
		if e.useHeap {
			e.heap.push(it)
			if e.prof != nil {
				e.prof.FarPushes++
				if len(e.heap.items) > e.prof.FarHigh {
					e.prof.FarHigh = len(e.heap.items)
				}
			}
		} else {
			e.bq.push(it)
		}
		if e.peekValid && it.at < e.peekMin {
			e.peekMin = it.at
		}
	}
	e.size++
	if e.size > e.high {
		e.high = e.size
	}
}

// nextAtNow returns the next event due at the current cycle while the
// micro FIFO is non-empty, in exact (cycle, seq) order: underlying-
// queue items at `now` were all scheduled before any micro item (now
// only advances on pops), so they drain first; popBefore(now+1) probes
// just the current cycle's bucket (or the heap top), O(1) either way.
func (e *Engine) nextAtNow() item {
	var it item
	var ok bool
	if e.useHeap {
		it, ok, _, _ = e.heap.popBefore(e.now + 1)
	} else {
		it, ok, _, _ = e.bq.popBefore(e.now + 1)
	}
	if !ok {
		return e.popMicro()
	}
	e.peekValid = false
	return it
}

// popMicro removes and returns the front of the micro FIFO; callers
// must have checked it is non-empty.
func (e *Engine) popMicro() item {
	it := e.micro[e.microHead]
	e.micro[e.microHead] = item{}
	e.microHead++
	if e.microHead == len(e.micro) {
		e.micro = e.micro[:0]
		e.microHead = 0
	}
	return it
}

// peekUnderlying is PeekCycle restricted to the two-level queue,
// excluding the micro FIFO; it maintains the same cache.
func (e *Engine) peekUnderlying() (Cycle, bool) {
	if e.peekValid {
		return e.peekMin, true
	}
	var at Cycle
	var ok bool
	if e.useHeap {
		at, ok = e.heap.peekAt()
	} else {
		at, ok = e.bq.peekAt()
	}
	if ok {
		e.peekMin = at
		e.peekValid = true
	}
	return at, ok
}

// Schedule runs fn delay cycles from now. Events scheduled for the
// same cycle run in scheduling order.
func (e *Engine) Schedule(delay Cycle, fn Event) {
	e.push(item{at: e.now + delay, fn: fn})
}

// ScheduleAt runs fn at the given absolute cycle, which must not be in
// the past; a past cycle is clamped to now.
func (e *Engine) ScheduleAt(at Cycle, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.push(item{at: at, fn: fn})
}

// ScheduleRunner runs r delay cycles from now, without allocating: the
// hot-path equivalent of Schedule for pre-bound event structs.
func (e *Engine) ScheduleRunner(delay Cycle, r Runner) {
	e.push(item{at: e.now + delay, r: r})
}

// ScheduleRunnerAt is ScheduleAt for a Runner; past cycles clamp to now.
func (e *Engine) ScheduleRunnerAt(at Cycle, r Runner) {
	if at < e.now {
		at = e.now
	}
	e.push(item{at: at, r: r})
}

// HighWater reports the deepest the queue has ever been — the
// event-queue depth gauge the observability registry exposes.
func (e *Engine) HighWater() int { return e.high }

// MicroHits reports how many events rode the zero-delay fast path (the
// same-cycle micro FIFO) instead of the two-level queue. Always
// counted — the increment shares the fast path's existing branch.
func (e *Engine) MicroHits() uint64 { return e.micros }

// SetProf attaches a queue-introspection shard: every hot-path counter
// site guards on one nil check, so engines without a Prof pay a single
// predictable branch per site. Pass nil to detach. Counters accumulate;
// attach a zeroed Prof per run for per-run numbers.
func (e *Engine) SetProf(p *Prof) {
	e.prof = p
	e.bq.prof = p
}

// Prof returns the attached introspection shard, or nil.
func (e *Engine) Prof() *Prof { return e.prof }

// Pending reports the number of queued events.
func (e *Engine) Pending() int {
	n := len(e.micro) - e.microHead
	if e.useHeap {
		return n + len(e.heap.items)
	}
	return n + e.bq.size
}

// PeekCycle reports the cycle of the earliest queued event without
// popping it. The result is cached until the next pop, so repeated
// peeks (the PDES window-minimum scan) cost one comparison.
func (e *Engine) PeekCycle() (Cycle, bool) {
	if e.microHead < len(e.micro) {
		return e.now, true
	}
	return e.peekUnderlying()
}

// Step runs the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	if e.microHead < len(e.micro) {
		it := e.nextAtNow()
		e.events++
		e.size--
		if it.r != nil {
			it.r.Run()
		} else {
			it.fn()
		}
		return true
	}
	e.peekValid = false
	var it item
	var ok bool
	if e.useHeap {
		it, ok = e.heap.pop()
	} else {
		it, ok = e.bq.pop()
	}
	if !ok {
		return false
	}
	e.now = it.at
	e.events++
	e.size--
	if it.r != nil {
		it.r.Run()
	} else {
		it.fn()
	}
	return true
}

// RunUntil runs every queued event with cycle < limit in (cycle, seq)
// order, leaving later events queued; now ends at the last event run.
// This is the PDES window body: events pushed while running (all at
// cycles >= now) execute in the same call when they land before limit.
//
// The bound is kept in a field so an event handler can tighten it
// mid-call with LimitTo — the window loop's dynamic cut-off when an
// extended solo window parks a cross-tile message.
func (e *Engine) RunUntil(limit Cycle) {
	e.limit = limit
	for {
		if e.microHead < len(e.micro) {
			if e.now >= e.limit {
				return
			}
			it := e.nextAtNow()
			e.events++
			e.size--
			if it.r != nil {
				it.r.Run()
			} else {
				it.fn()
			}
			continue
		}
		var it item
		var ok, hasNext bool
		var next Cycle
		if e.useHeap {
			it, ok, next, hasNext = e.heap.popBefore(e.limit)
		} else {
			it, ok, next, hasNext = e.bq.popBefore(e.limit)
		}
		if !ok {
			// The refusal already found the earliest remaining cycle;
			// prime the peek cache with it so the window loop's
			// post-round peek is O(1) instead of a rescan. push keeps
			// the cache coherent if earlier events arrive afterwards.
			if hasNext {
				e.peekMin = next
				e.peekValid = true
				if e.prof != nil {
					e.prof.Refusals++
				}
			}
			return
		}
		// Invalidate lazily, only once something actually popped: a
		// no-op RunUntil (idle partition) keeps its cached minimum so
		// the window loop's peek stays O(1).
		e.peekValid = false
		e.now = it.at
		e.events++
		e.size--
		if it.r != nil {
			it.r.Run()
		} else {
			it.fn()
		}
	}
}

// LimitTo tightens the bound of the RunUntil call currently executing
// on this engine: events at cycles >= c stay queued for a later window.
// It never raises the bound, and never cuts below the cycle in
// progress (events already due this cycle still run, keeping windows
// cycle-complete). Callable only from inside an event handler.
func (e *Engine) LimitTo(c Cycle) {
	if c <= e.now {
		c = e.now + 1
	}
	if c < e.limit {
		e.limit = c
		if e.prof != nil {
			e.prof.LimitCuts++
		}
	}
}

// Recycle returns the bucketed queue's ring storage to a process-wide
// pool once the engine has fully drained. The engine remains readable
// (Now, Processed, Pending, HighWater, PeekCycle all stay valid) but
// must not schedule further events. Recycle is a no-op on heap-backed
// engines, on engines with events still queued, and on engines already
// recycled — callers on error paths can skip it and lose nothing but
// the reuse.
func (e *Engine) Recycle() {
	if e.useHeap || e.bq.size != 0 || e.microHead < len(e.micro) {
		return
	}
	e.bq.release()
}

// Run drains the queue. It stops after maxEvents events when
// maxEvents > 0 (a watchdog against protocol livelock) and reports
// whether the queue drained completely.
func (e *Engine) Run(maxEvents uint64) bool {
	start := e.events
	for e.Step() {
		if maxEvents > 0 && e.events-start >= maxEvents {
			return e.Pending() == 0
		}
	}
	return true
}
