// Package engine implements the deterministic discrete-event core of
// the simulator. All timing in the system — core issue, cache access,
// network hops, directory occupancy — is expressed as events scheduled
// on a single queue of (cycle, sequence) pairs, where the sequence
// number makes same-cycle ordering stable and runs reproducible.
//
// This replaces the SIMICS/GEMS execution-driven engine the paper used:
// the memory-system results depend only on event ordering and the
// Table 4 latencies, both of which this engine reproduces exactly.
//
// Two queue implementations back the engine. The default is a two-level
// bucketed queue: a ring of per-cycle FIFO buckets covers the near
// future (push and pop are O(1) with no per-event allocation), and a
// typed min-heap holds the far-future overflow, drained window by
// window. The original binary-heap queue is retained for differential
// testing — construct it with NewWithHeap, or set the environment
// variable PROTOZOA_EVENT_QUEUE=heap to make New return it. Both
// implement the exact same (cycle, sequence) total order, so a run is
// bit-identical under either.
package engine

import "os"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a specific cycle.
type Event func()

// Runner is the allocation-free alternative to Event: callers that
// would otherwise capture state in a fresh closure per event implement
// Run on a reusable struct and pass it to ScheduleRunner. Scheduling a
// pointer-shaped Runner does not allocate.
type Runner interface{ Run() }

// item is one queued event: either r (preferred) or fn is set.
type item struct {
	at  Cycle
	seq uint64
	fn  Event
	r   Runner
}

// before is the engine's total order: cycle first, then schedule
// sequence, so same-cycle events run in scheduling order.
func (it item) before(other item) bool {
	if it.at != other.at {
		return it.at < other.at
	}
	return it.seq < other.seq
}

// Engine is a deterministic event queue. The zero value is NOT ready to
// use; construct with New (bucketed queue) or NewWithHeap.
type Engine struct {
	now     Cycle
	seq     uint64
	events  uint64
	high    int // deepest the queue has ever been
	useHeap bool
	heap    heapQueue
	bq      bucketQueue

	// Cached earliest queued cycle, maintained so the PDES window loop
	// can take the minimum over many partitions without rescanning the
	// bucket ring each time. Pops invalidate it; pushes keep it exact.
	peekValid bool
	peekMin   Cycle
}

// QueueEnvVar selects the queue implementation for New: set it to
// "heap" to get the legacy binary-heap queue (differential testing).
const QueueEnvVar = "PROTOZOA_EVENT_QUEUE"

// New returns a fresh engine at cycle zero, using the bucketed queue
// unless PROTOZOA_EVENT_QUEUE=heap is set in the environment.
func New() *Engine {
	if os.Getenv(QueueEnvVar) == "heap" {
		return NewWithHeap()
	}
	return NewBucketed()
}

// NewBucketed returns an engine backed by the two-level bucketed queue.
func NewBucketed() *Engine {
	e := &Engine{}
	e.bq.init()
	return e
}

// NewWithHeap returns an engine backed by the legacy binary-heap queue
// (kept for differential testing against the bucketed queue).
func NewWithHeap() *Engine { return &Engine{useHeap: true} }

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Processed reports how many events have run.
func (e *Engine) Processed() uint64 { return e.events }

func (e *Engine) push(it item) {
	e.seq++
	it.seq = e.seq
	if e.useHeap {
		e.heap.push(it)
	} else {
		e.bq.push(it)
	}
	if e.peekValid && it.at < e.peekMin {
		e.peekMin = it.at
	}
	if p := e.Pending(); p > e.high {
		e.high = p
	}
}

// Schedule runs fn delay cycles from now. Events scheduled for the
// same cycle run in scheduling order.
func (e *Engine) Schedule(delay Cycle, fn Event) {
	e.push(item{at: e.now + delay, fn: fn})
}

// ScheduleAt runs fn at the given absolute cycle, which must not be in
// the past; a past cycle is clamped to now.
func (e *Engine) ScheduleAt(at Cycle, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.push(item{at: at, fn: fn})
}

// ScheduleRunner runs r delay cycles from now, without allocating: the
// hot-path equivalent of Schedule for pre-bound event structs.
func (e *Engine) ScheduleRunner(delay Cycle, r Runner) {
	e.push(item{at: e.now + delay, r: r})
}

// ScheduleRunnerAt is ScheduleAt for a Runner; past cycles clamp to now.
func (e *Engine) ScheduleRunnerAt(at Cycle, r Runner) {
	if at < e.now {
		at = e.now
	}
	e.push(item{at: at, r: r})
}

// HighWater reports the deepest the queue has ever been — the
// event-queue depth gauge the observability registry exposes.
func (e *Engine) HighWater() int { return e.high }

// Pending reports the number of queued events.
func (e *Engine) Pending() int {
	if e.useHeap {
		return len(e.heap.items)
	}
	return e.bq.size
}

// PeekCycle reports the cycle of the earliest queued event without
// popping it. The result is cached until the next pop, so repeated
// peeks (the PDES window-minimum scan) cost one comparison.
func (e *Engine) PeekCycle() (Cycle, bool) {
	if e.peekValid {
		return e.peekMin, true
	}
	var at Cycle
	var ok bool
	if e.useHeap {
		at, ok = e.heap.peekAt()
	} else {
		at, ok = e.bq.peekAt()
	}
	if ok {
		e.peekMin = at
		e.peekValid = true
	}
	return at, ok
}

// Step runs the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	e.peekValid = false
	var it item
	var ok bool
	if e.useHeap {
		it, ok = e.heap.pop()
	} else {
		it, ok = e.bq.pop()
	}
	if !ok {
		return false
	}
	e.now = it.at
	e.events++
	if it.r != nil {
		it.r.Run()
	} else {
		it.fn()
	}
	return true
}

// RunUntil runs every queued event with cycle < limit in (cycle, seq)
// order, leaving later events queued; now ends at the last event run.
// This is the PDES window body: events pushed while running (all at
// cycles >= now) execute in the same call when they land before limit.
func (e *Engine) RunUntil(limit Cycle) {
	for {
		var it item
		var ok bool
		if e.useHeap {
			it, ok = e.heap.popBefore(limit)
		} else {
			it, ok = e.bq.popBefore(limit)
		}
		if !ok {
			return
		}
		// Invalidate lazily, only once something actually popped: a
		// no-op RunUntil (idle partition) keeps its cached minimum so
		// the window loop's peek stays O(1).
		e.peekValid = false
		e.now = it.at
		e.events++
		if it.r != nil {
			it.r.Run()
		} else {
			it.fn()
		}
	}
}

// Recycle returns the bucketed queue's ring storage to a process-wide
// pool once the engine has fully drained. The engine remains readable
// (Now, Processed, Pending, HighWater, PeekCycle all stay valid) but
// must not schedule further events. Recycle is a no-op on heap-backed
// engines, on engines with events still queued, and on engines already
// recycled — callers on error paths can skip it and lose nothing but
// the reuse.
func (e *Engine) Recycle() {
	if e.useHeap || e.bq.size != 0 {
		return
	}
	e.bq.release()
}

// Run drains the queue. It stops after maxEvents events when
// maxEvents > 0 (a watchdog against protocol livelock) and reports
// whether the queue drained completely.
func (e *Engine) Run(maxEvents uint64) bool {
	start := e.events
	for e.Step() {
		if maxEvents > 0 && e.events-start >= maxEvents {
			return e.Pending() == 0
		}
	}
	return true
}
