// Package engine implements the deterministic discrete-event core of
// the simulator. All timing in the system — core issue, cache access,
// network hops, directory occupancy — is expressed as events scheduled
// on a single queue of (cycle, sequence) pairs, where the sequence
// number makes same-cycle ordering stable and runs reproducible.
//
// This replaces the SIMICS/GEMS execution-driven engine the paper used:
// the memory-system results depend only on event ordering and the
// Table 4 latencies, both of which this engine reproduces exactly.
package engine

import "container/heap"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// Event is a callback scheduled to run at a specific cycle.
type Event func()

type item struct {
	at  Cycle
	seq uint64
	fn  Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a deterministic event queue. The zero value is ready to use.
type Engine struct {
	now    Cycle
	seq    uint64
	queue  eventHeap
	events uint64
}

// New returns a fresh engine at cycle zero.
func New() *Engine { return &Engine{} }

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Processed reports how many events have run.
func (e *Engine) Processed() uint64 { return e.events }

// Schedule runs fn delay cycles from now. Events scheduled for the
// same cycle run in scheduling order.
func (e *Engine) Schedule(delay Cycle, fn Event) {
	e.seq++
	heap.Push(&e.queue, item{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt runs fn at the given absolute cycle, which must not be in
// the past; a past cycle is clamped to now.
func (e *Engine) ScheduleAt(at Cycle, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.queue, item{at: at, seq: e.seq, fn: fn})
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Step runs the next event; it reports false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	it := heap.Pop(&e.queue).(item)
	e.now = it.at
	e.events++
	it.fn()
	return true
}

// Run drains the queue. It stops after maxEvents events when
// maxEvents > 0 (a watchdog against protocol livelock) and reports
// whether the queue drained completely.
func (e *Engine) Run(maxEvents uint64) bool {
	start := e.events
	for e.Step() {
		if maxEvents > 0 && e.events-start >= maxEvents {
			return len(e.queue) == 0
		}
	}
	return true
}
