package engine

import (
	"math/rand"
	"testing"
)

func TestScheduleRunsInTimeOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %d, want 30", e.Now())
	}
}

func TestSameCycleEventsRunInScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle order broken: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New()
	var trace []string
	e.Schedule(1, func() {
		trace = append(trace, "a")
		e.Schedule(2, func() { trace = append(trace, "c") })
		e.Schedule(1, func() { trace = append(trace, "b") })
	})
	e.Run(0)
	if len(trace) != 3 || trace[0] != "a" || trace[1] != "b" || trace[2] != "c" {
		t.Fatalf("trace = %v", trace)
	}
	if e.Now() != 3 {
		t.Errorf("Now() = %d, want 3", e.Now())
	}
}

func TestScheduleAtClampsPast(t *testing.T) {
	e := New()
	ran := false
	e.Schedule(10, func() {
		e.ScheduleAt(5, func() { ran = true }) // in the past: clamp to now
	})
	e.Run(0)
	if !ran {
		t.Fatal("clamped event never ran")
	}
	if e.Now() != 10 {
		t.Errorf("Now() = %d, want 10", e.Now())
	}
}

func TestRunWatchdogStops(t *testing.T) {
	e := New()
	var tick func()
	tick = func() { e.Schedule(1, tick) } // infinite self-rescheduling
	e.Schedule(1, tick)
	drained := e.Run(100)
	if drained {
		t.Fatal("Run reported drained on an infinite event chain")
	}
	if e.Processed() != 100 {
		t.Errorf("Processed() = %d, want 100", e.Processed())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	e := New()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int {
		e := New()
		rng := rand.New(rand.NewSource(seed))
		var got []int
		for i := 0; i < 200; i++ {
			i := i
			e.Schedule(Cycle(rng.Intn(50)), func() { got = append(got, i) })
		}
		e.Run(0)
		return got
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPendingCount(t *testing.T) {
	e := New()
	e.Schedule(1, func() {})
	e.Schedule(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", e.Pending())
	}
}
