package engine

import (
	"math/rand"
	"testing"
)

// testRunner records its firing order; the minimal Runner for queue
// tests.
type testRunner struct {
	id  int
	out *[]int
}

func (r *testRunner) Run() { *r.out = append(*r.out, r.id) }

func TestScheduleRunnerOrdering(t *testing.T) {
	e := New()
	var got []int
	e.ScheduleRunner(30, &testRunner{3, &got})
	e.Schedule(10, func() { got = append(got, 1) })
	e.ScheduleRunner(20, &testRunner{2, &got})
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

func TestRunnerAndClosureInterleaveBySeq(t *testing.T) {
	// Runners and closures scheduled for the same cycle must fire in
	// schedule order regardless of which API queued them.
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			e.ScheduleRunner(5, &testRunner{i, &got})
		} else {
			i := i
			e.Schedule(5, func() { got = append(got, i) })
		}
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("mixed same-cycle order broken: %v", got)
		}
	}
}

func TestBucketQueueFarFuture(t *testing.T) {
	// Delays beyond the bucket window land in the overflow heap and
	// must still fire in exact (cycle, seq) order, including events
	// scheduled into a far window from within it.
	e := NewBucketed()
	var got []Cycle
	note := func() { got = append(got, e.Now()) }
	e.Schedule(numBuckets*3+7, note) // far future
	e.Schedule(1, func() {
		note()
		e.Schedule(numBuckets*2, note) // far from cycle 1
		e.Schedule(5, note)            // near
	})
	e.Run(0)
	want := []Cycle{1, 6, numBuckets*2 + 1, numBuckets*3 + 7}
	if len(got) != len(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired at %v, want %v", got, want)
		}
	}
}

// TestQueueDifferential drives the bucketed queue and the reference
// heap with an identical random schedule — including nested scheduling
// and far-future delays straddling the window boundary — and requires
// the exact same execution order from both.
func TestQueueDifferential(t *testing.T) {
	run := func(e *Engine, seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		var got []int
		n := 0
		var kick func()
		kick = func() {
			id := n
			n++
			got = append(got, id)
			for i := 0; i < rng.Intn(4); i++ {
				delay := Cycle(rng.Intn(10))
				switch rng.Intn(3) {
				case 0: // straddle the window boundary
					delay = numBuckets - 2 + Cycle(rng.Intn(5))
				case 1: // deep overflow
					delay = numBuckets*2 + Cycle(rng.Intn(100))
				}
				if n < 3000 {
					e.Schedule(delay, kick)
				}
			}
		}
		for i := 0; i < 50; i++ {
			e.Schedule(Cycle(rng.Intn(int(numBuckets)*3)), kick)
		}
		e.Run(0)
		return got
	}
	for seed := int64(0); seed < 5; seed++ {
		a := run(NewBucketed(), seed)
		b := run(NewWithHeap(), seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: bucketed ran %d events, heap ran %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: queues diverge at event %d: %d vs %d", seed, i, a[i], b[i])
			}
		}
	}
}

// TestRunUntilDifferentialAcrossWindowWrap drives both queues the way
// the PDES window loop does — PeekCycle for the next horizon, then
// RunUntil in short windows — with a schedule that repeatedly crosses
// the bucket ring's wrap boundary while far-future events sit in the
// overflow heap. The bucketed queue's cursor advance and far-future
// refill must yield the heap's exact order, and the peeks driving the
// window placement must agree at every step.
func TestRunUntilDifferentialAcrossWindowWrap(t *testing.T) {
	const lookahead = 6 // the production NoC lookahead
	run := func(e *Engine, seed int64) ([]int, []Cycle) {
		rng := rand.New(rand.NewSource(seed))
		var got []int
		var peeks []Cycle
		n := 0
		var kick func()
		kick = func() {
			id := n
			n++
			got = append(got, id)
			for i := 0; i < rng.Intn(4); i++ {
				delay := Cycle(rng.Intn(2 * lookahead))
				switch rng.Intn(4) {
				case 0: // land just around the ring wrap
					delay = numBuckets - 3 + Cycle(rng.Intn(6))
				case 1: // deep into the overflow heap
					delay = numBuckets*2 + Cycle(rng.Intn(50))
				}
				if n < 2000 {
					e.Schedule(delay, kick)
				}
			}
		}
		// Seed events across several ring generations, plus immediate work.
		for i := 0; i < 30; i++ {
			e.Schedule(Cycle(rng.Intn(int(numBuckets)*3)), kick)
		}
		for {
			at, ok := e.PeekCycle()
			if !ok {
				break
			}
			peeks = append(peeks, at)
			e.RunUntil(at + lookahead)
		}
		return got, peeks
	}
	for seed := int64(0); seed < 5; seed++ {
		a, ap := run(NewBucketed(), seed)
		b, bp := run(NewWithHeap(), seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: bucketed ran %d events, heap ran %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: queues diverge at event %d: %d vs %d", seed, i, a[i], b[i])
			}
		}
		if len(ap) != len(bp) {
			t.Fatalf("seed %d: bucketed saw %d windows, heap saw %d", seed, len(ap), len(bp))
		}
		for i := range ap {
			if ap[i] != bp[i] {
				t.Fatalf("seed %d: peeks diverge at window %d: %d vs %d", seed, i, ap[i], bp[i])
			}
		}
	}
}

func TestQueueEnvSelectsHeap(t *testing.T) {
	t.Setenv(QueueEnvVar, "heap")
	e := New()
	if !e.useHeap {
		t.Fatalf("%s=heap did not select the heap queue", QueueEnvVar)
	}
	var got []int
	e.Schedule(2, func() { got = append(got, 2) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("heap engine order = %v", got)
	}
}

func TestBucketQueueWindowReuse(t *testing.T) {
	// Cycle through many windows to exercise bucket reset and window
	// jumps; Pending must track exactly.
	e := NewBucketed()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.Schedule(numBuckets/2+3, tick)
		}
	}
	e.Schedule(0, tick)
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run(0)
	if count != 100 {
		t.Fatalf("ran %d ticks, want 100", count)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", e.Pending())
	}
}

// TestZeroDelayDifferential stresses the zero-delay micro-FIFO fast
// path against the reference heap: random event cascades that mix
// Schedule(0, …) chains (which ride the micro FIFO) with 1-cycle and
// far-future delays (which round-trip the real queue) must execute in
// the identical order on both engines. This is the scheduling-order
// guarantee the fused access events rely on — a zero-delay follow-up
// runs after everything already queued for the current cycle, in
// schedule order among its peers, whichever queue backs the engine.
func TestZeroDelayDifferential(t *testing.T) {
	run := func(e *Engine, seed int64) []int {
		rng := rand.New(rand.NewSource(seed))
		var got []int
		n := 0
		var kick func()
		kick = func() {
			id := n
			n++
			got = append(got, id)
			if n >= 4000 {
				return
			}
			for i := 0; i < rng.Intn(4); i++ {
				var delay Cycle
				switch rng.Intn(5) {
				case 0, 1: // zero-delay chain: micro-FIFO territory
					delay = 0
				case 2: // next cycle: forces a real queue round trip
					delay = 1
				case 3: // in-window
					delay = Cycle(1 + rng.Intn(20))
				default: // far future, straddling the ring boundary
					delay = numBuckets - 2 + Cycle(rng.Intn(5))
				}
				if rng.Intn(2) == 0 {
					e.Schedule(delay, kick)
				} else {
					e.ScheduleRunner(delay, &kickRunner{kick})
				}
			}
		}
		for i := 0; i < 30; i++ {
			e.Schedule(Cycle(rng.Intn(int(numBuckets))), kick)
		}
		e.Run(0)
		return got
	}
	for seed := int64(0); seed < 5; seed++ {
		a := run(NewBucketed(), seed)
		b := run(NewWithHeap(), seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: bucketed ran %d events, heap ran %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: queues diverge at event %d: %d vs %d", seed, i, a[i], b[i])
			}
		}
	}
}

// kickRunner adapts a closure to the Runner interface so differential
// tests can exercise both scheduling APIs.
type kickRunner struct{ fn func() }

func (r *kickRunner) Run() { r.fn() }

// TestSameCycleTieBreakAcrossRingWrap pins the (cycle, seq) tie-break
// for same-cycle events whose target lies beyond the bucket ring: they
// detour through the far-future overflow heap and are refilled into a
// ring window that has wrapped around modulo numBuckets. The refill
// must hand each bucket its items in seq order — interleaved closures
// and runners, scheduled from different points in time, all landing on
// one far cycle — and a neighbour event one full ring period earlier
// (same slot index, different window) must not perturb them.
func TestSameCycleTieBreakAcrossRingWrap(t *testing.T) {
	for _, mk := range []struct {
		name string
		newE func() *Engine
	}{{"bucketed", NewBucketed}, {"heap", NewWithHeap}} {
		t.Run(mk.name, func(t *testing.T) {
			e := mk.newE()
			const target = Cycle(numBuckets*3 + 5) // well past two wraps
			var got []int
			// Same slot index as target, two ring periods earlier: drains
			// first and forces the window to jump (wrap) before target.
			e.ScheduleAt(target-numBuckets*2, func() {
				got = append(got, -1)
				// Late joiners scheduled mid-run, after some peers are
				// already in the far heap: seq order must still win.
				e.ScheduleAt(target, func() { got = append(got, 2) })
				e.ScheduleRunnerAt(target, &testRunner{3, &got})
			})
			e.ScheduleAt(target, func() { got = append(got, 0) })
			e.ScheduleRunnerAt(target, &testRunner{1, &got})
			e.ScheduleAt(target+1, func() { got = append(got, 4) })
			e.Run(0)
			want := []int{-1, 0, 1, 2, 3, 4}
			if len(got) != len(want) {
				t.Fatalf("fired %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fired %v, want %v", got, want)
				}
			}
			if e.Now() != target+1 {
				t.Fatalf("ended at cycle %d, want %d", e.Now(), target+1)
			}
		})
	}
}
