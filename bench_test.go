package protozoa_test

// One benchmark per table and figure of the paper's evaluation. Each
// bench regenerates its experiment at the paper's 16-core
// configuration, prints the same rows the paper reports (once), and
// publishes the headline numbers as benchmark metrics:
//
//	BenchmarkTable1BlockSweep          Table 1
//	BenchmarkFig9TrafficBreakdown      Figure 9
//	BenchmarkFig10ControlBreakdown     Figure 10
//	BenchmarkFig11OwnerDistribution    Figure 11
//	BenchmarkFig12BlockSizeDistribution Figure 12
//	BenchmarkFig13MissRate             Figure 13
//	BenchmarkFig14ExecutionTime        Figure 14
//	BenchmarkFig15FlitHops             Figure 15
//
// plus the DESIGN.md ablations (predictor and region size) and a raw
// simulator-throughput bench per protocol.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"protozoa"
	"protozoa/internal/core"
	"protozoa/internal/harness"
	"protozoa/internal/mem"
	"protozoa/internal/noc"
	"protozoa/internal/predictor"
	"protozoa/internal/stats"
	"protozoa/internal/workloads"
)

// wl resolves a built-in workload spec.
func wl(name string) (workloads.Spec, error) { return workloads.Get(name) }

var (
	matrixOnce sync.Once
	matrix     *protozoa.Matrix
	matrixErr  error
)

// benchMatrix collects the full workload x protocol grid once and
// shares it across the figure benches.
func benchMatrix(b *testing.B) *protozoa.Matrix {
	b.Helper()
	matrixOnce.Do(func() {
		matrix, matrixErr = protozoa.Collect(protozoa.Options{Cores: 16, Scale: 1})
	})
	if matrixErr != nil {
		b.Fatal(matrixErr)
	}
	return matrix
}

var printOnce sync.Map

// emit prints an experiment's rows exactly once per test binary run.
func emit(name, out string) {
	if _, dup := printOnce.LoadOrStore(name, true); !dup {
		fmt.Fprintf(os.Stdout, "\n%s\n", out)
	}
}

func BenchmarkTable1BlockSweep(b *testing.B) {
	var res *protozoa.Table1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = protozoa.CollectTable1(protozoa.Options{Cores: 16, Scale: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	emit("table1", res.Render())
	// Headline: linear-regression's used% collapse from 16B to 128B.
	b.ReportMetric(res.Cells["linear-regression"][16].UsedPct, "linreg-used%@16B")
	b.ReportMetric(res.Cells["linear-regression"][128].UsedPct, "linreg-used%@128B")
	b.ReportMetric(res.Cells["canneal"][64].UsedPct, "canneal-used%@64B")
}

func BenchmarkFig9TrafficBreakdown(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Fig9Traffic()
	}
	emit("fig9", m.Fig9Traffic())
	for _, p := range []protozoa.Protocol{protozoa.ProtozoaSW, protozoa.ProtozoaSWMR, protozoa.ProtozoaMW} {
		r := m.GeoMeanRatio(p, harness.TrafficBytes)
		b.ReportMetric(100*(1-r), "traffic-reduction%-"+p.String())
	}
}

func BenchmarkFig10ControlBreakdown(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Fig10Control()
	}
	emit("fig10", m.Fig10Control())
	ctrl := func(s *stats.Stats) float64 { return float64(s.ControlTotal()) }
	b.ReportMetric(100*m.GeoMeanRatio(protozoa.ProtozoaSW, ctrl), "SW-ctrl%-of-MESI")
	b.ReportMetric(100*m.GeoMeanRatio(protozoa.ProtozoaMW, ctrl), "MW-ctrl%-of-MESI")
}

func BenchmarkFig11OwnerDistribution(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Fig11Owners()
	}
	emit("fig11", m.Fig11Owners())
	_, _, multi := m.Get("string-match", protozoa.ProtozoaMW).OwnerMix()
	b.ReportMetric(multi, "string-match->1owner%")
}

func BenchmarkFig12BlockSizeDistribution(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Fig12BlockDist()
	}
	emit("fig12", m.Fig12BlockDist())
	d := m.Get("blackscholes", protozoa.ProtozoaMW).BlockDistBuckets()
	b.ReportMetric(d[0], "blackscholes-1-2word%")
	d = m.Get("matrix-multiply", protozoa.ProtozoaMW).BlockDistBuckets()
	b.ReportMetric(d[3], "matmul-7-8word%")
}

func BenchmarkFig13MissRate(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Fig13MPKI()
	}
	emit("fig13", m.Fig13MPKI())
	misses := func(s *stats.Stats) float64 { return float64(s.L1Misses) }
	b.ReportMetric(100*(1-m.GeoMeanRatio(protozoa.ProtozoaSW, misses)), "SW-miss-reduction%")
	b.ReportMetric(100*(1-m.GeoMeanRatio(protozoa.ProtozoaMW, misses)), "MW-miss-reduction%")
	lr := float64(m.Get("linear-regression", protozoa.ProtozoaMW).L1Misses) /
		float64(m.Get("linear-regression", protozoa.MESI).L1Misses)
	b.ReportMetric(100*(1-lr), "linreg-MW-miss-reduction%")
}

func BenchmarkFig14ExecutionTime(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Fig14Exec()
	}
	emit("fig14", m.Fig14Exec())
	b.ReportMetric(m.GeoMeanRatio(protozoa.ProtozoaMW, harness.ExecCycles), "MW-exec-vs-MESI")
	lr := float64(m.Get("linear-regression", protozoa.MESI).ExecCycles) /
		float64(m.Get("linear-regression", protozoa.ProtozoaMW).ExecCycles)
	b.ReportMetric(lr, "linreg-MW-speedup-x")
}

func BenchmarkFig15FlitHops(b *testing.B) {
	m := benchMatrix(b)
	for i := 0; i < b.N; i++ {
		_ = m.Fig15FlitHops()
	}
	emit("fig15", m.Fig15FlitHops())
	for _, p := range []protozoa.Protocol{protozoa.ProtozoaSW, protozoa.ProtozoaSWMR, protozoa.ProtozoaMW} {
		r := m.GeoMeanRatio(p, harness.FlitHops)
		b.ReportMetric(100*(1-r), "flithop-reduction%-"+p.String())
	}
}

// BenchmarkAblationPredictor compares the fetch-range policies on the
// Protozoa-SW substrate: fixed full-region, the PC spatial predictor,
// and a pessimal always-one-word policy (DESIGN.md ablation).
func BenchmarkAblationPredictor(b *testing.B) {
	type policy struct {
		name     string
		override func(int) predictor.Predictor
		spatial  bool
	}
	geom := mem.DefaultGeometry
	policies := []policy{
		{"fixed-region", func(int) predictor.Predictor { return predictor.Fixed{Geom: geom} }, false},
		{"pc-spatial", nil, true},
		{"region-history", func(int) predictor.Predictor { return predictor.NewRegion(geom, predictor.DefaultTableSize) }, false},
		{"one-word", func(int) predictor.Predictor { return oneWordPredictor{} }, false},
	}
	for _, pol := range policies {
		pol := pol
		b.Run(pol.name, func(b *testing.B) {
			var traffic, misses float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.ProtozoaSW)
				cfg.SpatialPredictor = pol.spatial
				cfg.PredictorOverride = pol.override
				st := runWorkloadWith(b, cfg, "blackscholes")
				traffic = float64(st.TrafficTotal())
				misses = float64(st.L1Misses)
			}
			b.ReportMetric(traffic, "traffic-bytes")
			b.ReportMetric(misses, "misses")
		})
	}
}

// BenchmarkAblationRegionSize varies RMAX for Protozoa-MW (DESIGN.md
// ablation): the directory granularity and maximum block size.
func BenchmarkAblationRegionSize(b *testing.B) {
	for _, rb := range []int{32, 64, 128} {
		rb := rb
		b.Run(fmt.Sprintf("RMAX%d", rb), func(b *testing.B) {
			var traffic float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.ProtozoaMW)
				cfg.RegionBytes = rb
				st := runWorkloadWith(b, cfg, "histogram")
				traffic = float64(st.TrafficTotal())
			}
			b.ReportMetric(traffic, "traffic-bytes")
		})
	}
}

// BenchmarkExtensionThreeHop compares 4-hop and 3-hop transaction
// routing (Section 6) on a migratory-sharing workload.
func BenchmarkExtensionThreeHop(b *testing.B) {
	for _, threeHop := range []bool{false, true} {
		name := "4hop"
		if threeHop {
			name = "3hop"
		}
		threeHop := threeHop
		b.Run(name, func(b *testing.B) {
			var cycles, forwards float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.ProtozoaMW)
				cfg.ThreeHop = threeHop
				st := runWorkloadWith(b, cfg, "barnes")
				cycles = float64(st.ExecCycles)
				forwards = float64(st.DirectForwards)
			}
			b.ReportMetric(cycles, "exec-cycles")
			b.ReportMetric(forwards, "direct-forwards")
		})
	}
}

// BenchmarkExtensionBloomDirectory compares the precise in-cache
// directory with the Section 6 TL-style bloom filter: same misses,
// extra false-positive probe traffic.
func BenchmarkExtensionBloomDirectory(b *testing.B) {
	for _, kind := range []core.DirectoryKind{core.DirPrecise, core.DirBloom} {
		name := "precise"
		if kind == core.DirBloom {
			name = "bloom"
		}
		kind := kind
		b.Run(name, func(b *testing.B) {
			var ctrl, nacks float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.ProtozoaMW)
				cfg.Directory = kind
				// A deliberately small filter (16 buckets x 2 hashes) so
				// aliasing-induced false-positive probes are visible.
				cfg.BloomHashes = 2
				cfg.BloomBuckets = 16
				st := runWorkloadWith(b, cfg, "histogram")
				ctrl = float64(st.ControlTotal())
				nacks = float64(st.ControlBytes[stats.ClassNACK])
			}
			b.ReportMetric(ctrl, "control-bytes")
			b.ReportMetric(nacks, "nack-bytes")
		})
	}
}

// BenchmarkExtensionBlockMerging measures Amoeba block coalescing on
// the fragmentation-prone apache workload.
func BenchmarkExtensionBlockMerging(b *testing.B) {
	for _, merge := range []bool{false, true} {
		name := "trim-only"
		if merge {
			name = "merge"
		}
		merge := merge
		b.Run(name, func(b *testing.B) {
			var misses float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.ProtozoaSW)
				cfg.MergeL1Blocks = merge
				st := runWorkloadWith(b, cfg, "apache")
				misses = float64(st.L1Misses)
			}
			b.ReportMetric(misses, "misses")
		})
	}
}

// BenchmarkExtensionContention compares the latency-only mesh with the
// wormhole contention model on a traffic-heavy workload.
func BenchmarkExtensionContention(b *testing.B) {
	for _, contention := range []bool{false, true} {
		name := "latency-only"
		if contention {
			name = "wormhole"
		}
		contention := contention
		b.Run(name, func(b *testing.B) {
			var cycles, stalls float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.MESI)
				cfg.Noc.ModelContention = contention
				st := runWorkloadWith(b, cfg, "canneal")
				cycles = float64(st.ExecCycles)
				stalls = float64(st.LinkStallCycles)
			}
			b.ReportMetric(cycles, "exec-cycles")
			b.ReportMetric(stalls, "link-stall-cycles")
		})
	}
}

// BenchmarkAblationTopology compares interconnect shapes under
// Protozoa-MW: the paper's mesh vs a ring vs an ideal crossbar.
func BenchmarkAblationTopology(b *testing.B) {
	for _, topo := range []noc.Topology{noc.TopoMesh, noc.TopoRing, noc.TopoCrossbar} {
		topo := topo
		b.Run(topo.String(), func(b *testing.B) {
			var hops, cycles float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.ProtozoaMW)
				cfg.Noc.Topology = topo
				st := runWorkloadWith(b, cfg, "streamcluster")
				hops = float64(st.FlitHops)
				cycles = float64(st.ExecCycles)
			}
			b.ReportMetric(hops, "flit-hops")
			b.ReportMetric(cycles, "exec-cycles")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed per
// protocol in simulated accesses per second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for _, p := range protozoa.Protocols() {
		p := p
		b.Run(p.String(), func(b *testing.B) {
			var accesses uint64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(p)
				st := runWorkloadWith(b, cfg, "barnes")
				accesses = st.Accesses
			}
			b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}

// BenchmarkSimulatorThroughputParallel measures the parallel window
// loop's scaling on a single run: the same workload under the
// sequential engine and under PDES at 1, 2, 4, and 8 workers. The
// workers1 case prices the partitioned machine's window overhead; the
// higher counts show the speedup real parallelism buys back.
func BenchmarkSimulatorThroughputParallel(b *testing.B) {
	for _, w := range []int{0, 1, 2, 4, 8} {
		name := fmt.Sprintf("workers%d", w)
		if w == 0 {
			name = "sequential"
		}
		w := w
		b.Run(name, func(b *testing.B) {
			var accesses uint64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(core.ProtozoaMW)
				cfg.Workers = w
				st := runWorkloadWith(b, cfg, "barnes")
				accesses = st.Accesses
			}
			b.ReportMetric(float64(accesses)*float64(b.N)/b.Elapsed().Seconds(), "accesses/s")
		})
	}
}

// oneWordPredictor always fetches exactly the missing word.
type oneWordPredictor struct{}

func (oneWordPredictor) Predict(_ uint64, _ mem.RegionID, w uint8) mem.Range {
	return mem.OneWord(w)
}
func (oneWordPredictor) Train(uint64, mem.RegionID, uint8, mem.Bitmap, mem.Range) {}

// runWorkloadWith runs one built-in workload on a custom system config.
func runWorkloadWith(b *testing.B, cfg core.Config, workload string) *stats.Stats {
	b.Helper()
	spec, err := wl(workload)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(cfg, spec.Streams(cfg.Cores, 1))
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		b.Fatal(err)
	}
	return sys.Stats()
}
