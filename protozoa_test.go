package protozoa_test

import (
	"strings"
	"testing"

	"protozoa"
)

func TestPublicRun(t *testing.T) {
	o := protozoa.Options{Cores: 4, Scale: 1}
	st, err := protozoa.Run("linear-regression", protozoa.ProtozoaMW, o)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses == 0 || st.ExecCycles == 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestPublicWorkloadCatalog(t *testing.T) {
	names := protozoa.WorkloadNames()
	specs := protozoa.Workloads()
	if len(names) != 28 || len(specs) != len(names) {
		t.Fatalf("catalog sizes: %d names, %d specs", len(names), len(specs))
	}
	for i, s := range specs {
		if s.Name != names[i] || s.Suite == "" || s.About == "" {
			t.Errorf("spec %d incomplete: %+v", i, s)
		}
	}
}

func TestPublicProtocols(t *testing.T) {
	ps := protozoa.Protocols()
	if len(ps) != 4 || ps[0] != protozoa.MESI || ps[3] != protozoa.ProtozoaMW {
		t.Errorf("Protocols() = %v", ps)
	}
	if !strings.Contains(protozoa.ProtozoaSWMR.String(), "SW+MR") {
		t.Errorf("SW+MR name = %s", protozoa.ProtozoaSWMR)
	}
}

func TestPublicCustomTrace(t *testing.T) {
	// The Figure 1 counter example through the public API: two cores
	// increment adjacent words; under Protozoa-MW there are no
	// invalidations after warm-up.
	cfg := protozoa.DefaultSystemConfig(protozoa.ProtozoaMW)
	cfg.Cores = 16
	streams := make([]protozoa.Stream, cfg.Cores)
	for c := range streams {
		var recs []protozoa.Access
		addr := protozoa.Addr(0x8000 + c*8)
		for i := 0; i < 100; i++ {
			recs = append(recs, protozoa.Access{Kind: protozoa.Store, Addr: addr, PC: 0x10})
		}
		streams[c] = protozoa.NewSliceStream(recs)
	}
	sys, err := protozoa.NewSystem(cfg, streams)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Stores != 1600 {
		t.Errorf("stores = %d, want 1600", sys.Stats().Stores)
	}
}

func TestPublicCollectRendersFigures(t *testing.T) {
	o := protozoa.Options{Cores: 4, Scale: 1, Workloads: []string{"swaptions"}}
	m, err := protozoa.Collect(o)
	if err != nil {
		t.Fatal(err)
	}
	if out := m.Fig13MPKI(); !strings.Contains(out, "swaptions") {
		t.Errorf("Fig13 missing workload:\n%s", out)
	}
}

func TestPublicProfile(t *testing.T) {
	r, err := protozoa.Profile("matrix-multiply", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Accesses == 0 || r.FootprintPct() < 90 {
		t.Errorf("profile = %+v", r)
	}
	if _, err := protozoa.Profile("nope", 4, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPublicEnergyModel(t *testing.T) {
	st, err := protozoa.Run("fft", protozoa.MESI, protozoa.Options{Cores: 4, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	e := protozoa.DefaultEnergyModel().Estimate(st)
	if e.Total() <= 0 || e.NetworkNJ <= 0 {
		t.Errorf("energy = %+v", e)
	}
}

func TestPublicTable1(t *testing.T) {
	o := protozoa.Options{Cores: 4, Scale: 1, Workloads: []string{"word-count"}}
	res, err := protozoa.CollectTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	if out := res.Render(); !strings.Contains(out, "word-count") {
		t.Errorf("Table1 missing workload:\n%s", out)
	}
}
