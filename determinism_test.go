package protozoa_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"protozoa"
	"protozoa/internal/engine"
)

// marshalRun executes one workload and returns its full marshaled
// statistics — every counter, histogram, and derived figure — so two
// runs can be compared byte for byte.
func marshalRun(t *testing.T, workload string, p protozoa.Protocol) []byte {
	t.Helper()
	st, err := protozoa.Run(workload, p, protozoa.Options{Cores: 16, Scale: 1})
	if err != nil {
		t.Fatalf("%v on %s: %v", p, workload, err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	return b
}

// TestRunDeterminism runs every protocol twice on the same workload
// and requires bit-identical statistics: the simulator must be a pure
// function of its inputs (the property the sweep's byte-identical-CSV
// guarantee and all ablation comparisons rest on).
func TestRunDeterminism(t *testing.T) {
	for _, p := range protozoa.Protocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			a := marshalRun(t, "barnes", p)
			b := marshalRun(t, "barnes", p)
			if !bytes.Equal(a, b) {
				t.Fatalf("two identical runs produced different stats:\n%s\n---\n%s", a, b)
			}
		})
	}
}

// TestQueueImplementationsAgree runs the same simulations under the
// bucketed event queue (default) and the reference binary heap
// (PROTOZOA_EVENT_QUEUE=heap) and requires bit-identical statistics:
// the bucketed queue must preserve the exact (cycle, sequence) total
// order of the original heap.
func TestQueueImplementationsAgree(t *testing.T) {
	for _, p := range protozoa.Protocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			bucketed := marshalRun(t, "barnes", p)
			t.Setenv(engine.QueueEnvVar, "heap")
			heap := marshalRun(t, "barnes", p)
			if !bytes.Equal(bucketed, heap) {
				t.Fatalf("bucketed and heap event queues diverge:\n%s\n---\n%s", bucketed, heap)
			}
		})
	}
}
