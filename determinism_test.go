package protozoa_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"protozoa"
	"protozoa/internal/core"
	"protozoa/internal/engine"
	"protozoa/internal/runner"
	"protozoa/internal/workloads"
)

// marshalRun executes one workload and returns its full marshaled
// statistics — every counter, histogram, and derived figure — so two
// runs can be compared byte for byte.
func marshalRun(t *testing.T, workload string, p protozoa.Protocol) []byte {
	t.Helper()
	return marshalRunWorkers(t, workload, p, 0)
}

// marshalRunWorkers is marshalRun with an explicit execution mode:
// workers 0 is the sequential engine, workers >= 1 the parallel window
// loop with that many goroutines.
func marshalRunWorkers(t *testing.T, workload string, p protozoa.Protocol, workers int) []byte {
	t.Helper()
	st, err := protozoa.Run(workload, p, protozoa.Options{Cores: 16, Scale: 1, Workers: workers})
	if err != nil {
		t.Fatalf("%v on %s (workers %d): %v", p, workload, workers, err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal stats: %v", err)
	}
	return b
}

// TestRunDeterminism runs every protocol twice on the same workload
// and requires bit-identical statistics: the simulator must be a pure
// function of its inputs (the property the sweep's byte-identical-CSV
// guarantee and all ablation comparisons rest on).
func TestRunDeterminism(t *testing.T) {
	for _, p := range protozoa.Protocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			a := marshalRun(t, "barnes", p)
			b := marshalRun(t, "barnes", p)
			if !bytes.Equal(a, b) {
				t.Fatalf("two identical runs produced different stats:\n%s\n---\n%s", a, b)
			}
		})
	}
}

// TestWorkerCountsAgree runs the parallel window loop at 1, 2, 4 and 8
// workers for every protocol across four workloads and requires
// bit-identical statistics: partitioned execution must be a pure
// function of the configuration, never of the goroutine schedule. (The
// sequential mode is a different — equally deterministic — schedule of
// same-cycle cross-tile events, so it is not compared here; its own
// guarantee is TestRunDeterminism.)
//
// micro-barrier-skew is the adversarial case for the window-skipping
// coordinator: nearly every tile sits idle at a barrier each phase
// while one straggler runs through extended solo windows, so barrier
// release cycles, idle-tile skipping, and the extended-window self-cap
// all land on the determinism-critical path.
func TestWorkerCountsAgree(t *testing.T) {
	workloads := []string{"barnes", "ocean", "lu", "micro-barrier-skew"}
	for _, w := range workloads {
		for _, p := range protozoa.Protocols() {
			w, p := w, p
			t.Run(w+"/"+p.String(), func(t *testing.T) {
				base := marshalRunWorkers(t, w, p, 1)
				for _, n := range []int{2, 4, 8} {
					got := marshalRunWorkers(t, w, p, n)
					if !bytes.Equal(base, got) {
						t.Fatalf("workers=1 and workers=%d diverge:\n%s\n---\n%s", n, base, got)
					}
				}
			})
		}
	}
}

// TestWorkerCountsAgreeOnFlightLog extends the worker-count guarantee
// to the flight recorder: the serialized flight log — header and every
// record, including ring-wrap drops — must be byte-identical at any
// workers >= 1, even though each tile records into its own ring and the
// transcript is merged on export. micro-barrier-skew again stresses the
// adversarial schedule (idle-window skipping, extended solo windows).
func TestWorkerCountsAgreeOnFlightLog(t *testing.T) {
	logAt := func(t *testing.T, w string, p core.Protocol, workers int) []byte {
		t.Helper()
		spec, err := workloads.Get(w)
		if err != nil {
			t.Fatal(err)
		}
		cfg := core.DefaultConfig(p)
		cfg.Workers = workers
		if err := runner.ConfigureCores(&cfg, 16); err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(cfg, spec.Streams(16, 1))
		if err != nil {
			t.Fatal(err)
		}
		sys.EnableFlightRecorder(1 << 15)
		if err := sys.Run(); err != nil {
			t.Fatalf("%v on %s (workers %d): %v", p, w, workers, err)
		}
		var buf bytes.Buffer
		if err := sys.WriteFlightLog(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	for _, w := range []string{"barnes", "micro-barrier-skew"} {
		for _, p := range []core.Protocol{core.MESI, core.ProtozoaMW} {
			w, p := w, p
			t.Run(w+"/"+p.String(), func(t *testing.T) {
				base := logAt(t, w, p, 1)
				for _, n := range []int{2, 4} {
					if got := logAt(t, w, p, n); !bytes.Equal(base, got) {
						t.Fatalf("flight log diverges between workers=1 and workers=%d (%d vs %d bytes)",
							n, len(base), len(got))
					}
				}
			})
		}
	}
}

// TestQueueImplementationsAgree runs the same simulations under the
// bucketed event queue (default) and the reference binary heap
// (PROTOZOA_EVENT_QUEUE=heap) and requires bit-identical statistics:
// the bucketed queue must preserve the exact (cycle, sequence) total
// order of the original heap.
func TestQueueImplementationsAgree(t *testing.T) {
	for _, p := range protozoa.Protocols() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			bucketed := marshalRun(t, "barnes", p)
			t.Setenv(engine.QueueEnvVar, "heap")
			heap := marshalRun(t, "barnes", p)
			if !bytes.Equal(bucketed, heap) {
				t.Fatalf("bucketed and heap event queues diverge:\n%s\n---\n%s", bucketed, heap)
			}
		})
	}
}
